package rightsizing

// The benchmark harness regenerates every paper artefact (DESIGN.md's
// experiment index): one benchmark per figure (F1-F5) and per theorem
// experiment (E1-E8). Run a single artefact with e.g.
//
//	go test -bench BenchmarkE5 -benchtime 1x
//
// and the whole study with `go test -bench . -benchmem`. Each iteration
// executes the full experiment, including its bound assertions; a violated
// bound fails the benchmark.

import (
	"testing"

	"repro/internal/experiments"
)

func requirePass(b *testing.B, rep experiments.Report) {
	b.Helper()
	if !rep.Pass {
		b.Fatalf("experiment %s violated its proven bound:\n%s", rep.ID, rep.Table)
	}
}

// ---------- figures ----------

func BenchmarkF1FigureAlgorithmA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.F1())
	}
}

func BenchmarkF2FigureBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.F2())
	}
}

func BenchmarkF3FigureAlgorithmB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.F3())
	}
}

func BenchmarkF4FigureGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.F4())
	}
}

func BenchmarkF5FigureApproxConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.F5())
	}
}

// ---------- theorems ----------

func BenchmarkE1CompetitiveA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E1CompetitiveA(1, 12))
	}
}

func BenchmarkE2CompetitiveAConstant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E2ConstantCosts(2, 12))
	}
}

func BenchmarkE3CompetitiveB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E3CompetitiveB(3, 12))
	}
}

func BenchmarkE4CompetitiveC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E4CompetitiveC(4, 8))
	}
}

func BenchmarkE5ApproxRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E5ApproxRatio(5, 10))
	}
}

func BenchmarkE5ApproxRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E5ApproxRuntime())
	}
}

func BenchmarkE6TimeVarying(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E6TimeVarying(6, 6))
	}
}

func BenchmarkE7AdversarialRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E7Adversarial())
	}
}

func BenchmarkE8CostSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E8CostSavings(8))
	}
}

func BenchmarkE9IntegralityGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E9IntegralityGap(9, 5))
	}
}

func BenchmarkE10ScaledTracker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E10ScaledTracker(10, 4))
	}
}

// ---------- end-to-end micro-benchmarks on the public API ----------

func benchmarkInstance(T int) *Instance {
	return &Instance{
		Types: []ServerType{
			{Name: "cpu", Count: 24, SwitchCost: 2, MaxLoad: 1,
				Cost: Static{F: Power{Idle: 1, Coef: 0.6, Exp: 2}}},
			{Name: "gpu", Count: 6, SwitchCost: 15, MaxLoad: 4,
				Cost: Static{F: Affine{Idle: 4, Rate: 0.3}}},
		},
		Lambda: Diurnal(T, 3, 40, 24, 0),
	}
}

func BenchmarkSolveOptimalPublic(b *testing.B) {
	ins := benchmarkInstance(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveOptimal(ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveApproxPublic(b *testing.B) {
	ins := benchmarkInstance(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveApprox(ins, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmAPublic(b *testing.B) {
	ins := benchmarkInstance(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg, err := NewAlgorithmA(ins.Types)
		if err != nil {
			b.Fatal(err)
		}
		Run(alg, ins)
	}
}

func BenchmarkAlgorithmBPublic(b *testing.B) {
	ins := benchmarkInstance(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg, err := NewAlgorithmB(ins.Types)
		if err != nil {
			b.Fatal(err)
		}
		Run(alg, ins)
	}
}

func BenchmarkAlgorithmCPublic(b *testing.B) {
	ins := benchmarkInstance(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg, err := NewAlgorithmC(ins.Types, 1)
		if err != nil {
			b.Fatal(err)
		}
		Run(alg, ins)
	}
}

func BenchmarkE11RoundingBlowup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E11RoundingBlowup(11, 8))
	}
}

func BenchmarkE12ProofTerms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E12ProofTerms(12, 12))
	}
}

// ---------- scenario engine ----------

// benchmarkSuite runs the whole stock registry through the engine with
// the given worker count; serial vs. parallel quantifies the suite
// runner's fan-out win (results are bit-identical either way).
func benchmarkSuite(b *testing.B, workers int) {
	scs := Scenarios()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunSuite(scs, SuiteOptions{Workers: workers, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Results) != len(scs) {
			b.Fatalf("got %d results for %d scenarios", len(res.Results), len(scs))
		}
	}
}

func BenchmarkSuiteSerial(b *testing.B)   { benchmarkSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchmarkSuite(b, AutoWorkers) }

// ---------- live advisory sessions ----------

// benchmarkStreamSession drives the full session loop — validation,
// algorithm step, cost accounting and (optionally) the prefix-optimum
// telemetry tracker — over a two-day trace, the per-slot hot path of
// `rightsize -stream`.
func benchmarkStreamSession(b *testing.B, opts SessionOptions) {
	ins := benchmarkInstance(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess, err := OpenSession("alg-b", ins.Types, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range ins.Lambda {
			if _, err := sess.FeedDemand(l); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sess.Close(); err != nil {
			b.Fatal(err)
		}
		if sess.Decided() != ins.T() {
			b.Fatalf("decided %d slots, want %d", sess.Decided(), ins.T())
		}
	}
}

func BenchmarkStreamSession(b *testing.B) { benchmarkStreamSession(b, SessionOptions{}) }
func BenchmarkStreamSessionNoTelemetry(b *testing.B) {
	benchmarkStreamSession(b, SessionOptions{DisableOpt: true})
}

// BenchmarkScaleApproxT720 exercises production scale: a month of hourly
// slots over a 2000-server fleet, solvable only because the reduced
// lattice keeps the per-slot work logarithmic (Theorem 21).
func BenchmarkScaleApproxT720(b *testing.B) {
	ins := &Instance{
		Types: []ServerType{
			{Name: "cpu", Count: 1500, SwitchCost: 2, MaxLoad: 1,
				Cost: Static{F: Affine{Idle: 1, Rate: 1}}},
			{Name: "gpu", Count: 500, SwitchCost: 12, MaxLoad: 4,
				Cost: Static{F: Affine{Idle: 3, Rate: 0.4}}},
		},
		Lambda: Diurnal(720, 100, 3000, 24, 0),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := SolveApprox(ins, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := ins.Feasible(res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}
