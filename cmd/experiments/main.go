// Command experiments runs the full reproduction study and writes it as
// markdown (the source of EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-o EXPERIMENTS.md] [-id E5a]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	out := flag.String("o", "", "output file (default stdout)")
	id := flag.String("id", "", "run a single experiment by ID (e.g. E1, F3)")
	flag.Parse()

	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	b.WriteString(`Reproduction study for "Algorithms for Right-Sizing Heterogeneous Data
Centers" (Albers & Quedenfeld, SPAA 2021). The paper is theory-only: it
proves worst-case guarantees and prints five illustrative figures, but runs
no experiments. Each section below therefore pairs a paper artefact — a
figure or a theorem's bound — with what this implementation measures.
Regenerate with:

    go run ./cmd/experiments -o EXPERIMENTS.md

All randomness is seeded; the study is deterministic up to machine timing
in E5b's runtime column.

`)
	failures := 0
	for _, rep := range experiments.All() {
		if *id != "" && rep.ID != *id {
			continue
		}
		b.WriteString(rep.Render())
		b.WriteString("\n")
		if !rep.Pass {
			failures++
			log.Printf("experiment %s FAILED its bound check", rep.ID)
		}
	}
	if *id == "" {
		if err := writeSuite(&b); err != nil {
			log.Fatal(err)
		}
	}
	b.WriteString(fmt.Sprintf("---\n\nSummary: every proven bound was respected: %v\n", failures == 0))

	if *out == "" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// writeSuite appends the stock scenario suite, run through the unified
// engine, as a markdown appendix. The fixed seed and the engine's
// determinism guarantee make the section reproducible byte for byte.
func writeSuite(b *strings.Builder) error {
	b.WriteString(`## Scenario suite — every stock workload vs. every algorithm

One run of the scenario engine (` + "`internal/engine`" + `) over the stock
registry: each instance's optimum is solved exactly once and every
applicable algorithm is measured against it. Regenerate or reformat with
` + "`go run ./cmd/rightsize -suite -seed 1 -format markdown`" + `.

`)
	res, err := engine.RunSuite(engine.Scenarios(), engine.SuiteOptions{
		Workers: engine.AutoWorkers,
		Seed:    1,
	})
	if err != nil {
		return err
	}
	return engine.MarkdownSink{}.Emit(b, res)
}
