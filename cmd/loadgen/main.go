// Command loadgen drives a live rightsized daemon over HTTP with many
// concurrent advisory sessions and reports aggregate throughput: the
// load harness of the serving tier.
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8080] [-sessions 16] [-slots 512]
//	        [-batch 1] [-alg alg-b] [-fleet quickstart] [-seed 1]
//
// One goroutine per session opens a fresh session, pushes -slots demand
// values (the fleet scenario's trace, cycled) in batches of -batch, and
// deletes the session. On exit loadgen prints total slots, wall time,
// aggregate slots/sec, client-observed push latency quantiles —
// p50/p90/p99 over HTTP round-trips, so daemon-side time (the healthz
// quantiles) plus transport — and the generator's own allocation rate,
// so a noisy client never masquerades as daemon-side regression.
// Compare -batch 1 against -batch 16 to see the round-trip
// amortization, and scale -sessions to probe shard contention.
//
// The client is built not to be the bottleneck: push bodies are encoded
// with the zero-reflection internal/wire encoder into a per-worker
// buffer reused across requests, responses drain into a reused buffer,
// and the transport keeps one idle connection per session so steady
// state never redials.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	rightsizing "repro"
	"repro/internal/serve"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	url := flag.String("url", "http://127.0.0.1:8080", "rightsized base URL")
	sessions := flag.Int("sessions", 16, "concurrent sessions")
	slots := flag.Int("slots", 512, "slots to push per session")
	batch := flag.Int("batch", 1, "slots per push request (1 = the single-slot wire form)")
	alg := flag.String("alg", "alg-b", "algorithm (registry name)")
	fleet := flag.String("fleet", "quickstart", "fleet scenario name")
	seed := flag.Int64("seed", 1, "scenario seed")
	flag.Parse()
	if *sessions < 1 || *slots < 1 || *batch < 1 {
		log.Fatal("-sessions, -slots and -batch must all be >= 1")
	}

	sc, ok := rightsizing.LookupScenario(*fleet)
	if !ok {
		log.Fatalf("unknown fleet scenario %q", *fleet)
	}
	trace := sc.Instance(*seed).Lambda

	cl := newClient(strings.TrimRight(*url, "/"), *sessions)
	var health struct {
		OK bool `json:"ok"`
	}
	if err := cl.call("GET", "/v1/healthz", nil, &health); err != nil || !health.OK {
		log.Fatalf("daemon not healthy at %s: %v", *url, err)
	}

	type result struct {
		lats []time.Duration
		err  error
	}
	results := make([]result, *sessions)
	var wg sync.WaitGroup
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveSession(cl, fmt.Sprintf("loadgen-%d-%03d", os.Getpid(), i), *alg, *fleet, *seed, trace, *slots, *batch)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	var lats []time.Duration
	for i, r := range results {
		if r.err != nil {
			log.Fatalf("session %d: %v", i, r.err)
		}
		lats = append(lats, r.lats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	total := *sessions * *slots
	fmt.Printf("sessions=%d slots/session=%d batch=%d\n", *sessions, *slots, *batch)
	fmt.Printf("pushed %d slots in %v: %.0f slots/sec aggregate (%d HTTP pushes)\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds(), len(lats))
	fmt.Printf("push latency p50=%v p90=%v p99=%v max=%v\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	// Client-side allocation rate across the whole run (loadgen's own
	// bookkeeping included): if this climbs, the generator is eating the
	// machine and the slots/sec above stops being a daemon measurement.
	fmt.Printf("client allocs: %.0f allocs/push, %.0f B/push\n",
		float64(after.Mallocs-before.Mallocs)/float64(len(lats)),
		float64(after.TotalAlloc-before.TotalAlloc)/float64(len(lats)))
}

// driveSession opens one session, pushes slots demands in batches and
// deletes it, timing every HTTP push round-trip. The push body is
// wire-encoded into a buffer owned by this worker and reused for every
// request, so the generator allocates next to nothing per push.
func driveSession(cl *client, id, alg, fleet string, seed int64, trace []float64, slots, batch int) (res struct {
	lats []time.Duration
	err  error
}) {
	open := serve.OpenRequest{ID: id, Alg: alg}
	open.Fleet.Scenario = fleet
	open.Fleet.Seed = seed
	if err := cl.call("POST", "/v1/sessions", open, nil); err != nil {
		res.err = err
		return
	}
	defer func() {
		if err := cl.call("DELETE", "/v1/sessions/"+id, nil, nil); err != nil && res.err == nil {
			res.err = err
		}
	}()

	path := "/v1/sessions/" + id + "/push"
	res.lats = make([]time.Duration, 0, (slots+batch-1)/batch)
	reqs := make([]serve.PushRequest, 0, batch)
	w := newPushWorker()
	fed := 0
	for fed < slots {
		reqs = reqs[:0]
		for len(reqs) < batch && fed+len(reqs) < slots {
			reqs = append(reqs, serve.PushRequest{Lambda: trace[(fed+len(reqs))%len(trace)]})
		}
		var err error
		if batch == 1 {
			w.body, err = wire.AppendPushRequest(w.body[:0], &reqs[0])
		} else {
			w.body, err = wire.AppendPushRequests(w.body[:0], reqs)
		}
		if err != nil {
			res.err = err
			return
		}
		t0 := time.Now()
		err = cl.push(path, w)
		res.lats = append(res.lats, time.Since(t0))
		if err != nil {
			res.err = err
			return
		}
		fed += len(reqs)
	}
	return
}

// pushWorker holds one session goroutine's reusable push state: the
// encoded body, the reader handed to the transport, and the response
// drain buffer. None of it is reallocated between pushes.
type pushWorker struct {
	body []byte
	rd   *bytes.Reader
	resp bytes.Buffer
}

func newPushWorker() *pushWorker {
	return &pushWorker{body: make([]byte, 0, 512), rd: bytes.NewReader(nil)}
}

// client is a minimal JSON-over-HTTP caller for the rightsized API. Its
// transport keeps one idle connection per concurrent session
// (DefaultTransport caps at 2 per host, which would force most workers
// to redial every push).
type client struct {
	base string
	http http.Client
}

func newClient(base string, sessions int) *client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = sessions + 2
	tr.MaxIdleConnsPerHost = sessions + 2
	return &client{base: base, http: http.Client{Transport: tr}}
}

// push posts the worker's encoded body and drains the response into the
// worker's buffer, reusing both across calls.
func (c *client) push(path string, w *pushWorker) error {
	w.rd.Reset(w.body)
	req, err := http.NewRequest("POST", c.base+path, w.rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	w.resp.Reset()
	if _, err := w.resp.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(w.resp.Bytes(), &eb) == nil && eb.Error != "" {
			return fmt.Errorf("POST %s: %s (HTTP %d)", path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("POST %s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}

func (c *client) call(method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(data, into)
}
