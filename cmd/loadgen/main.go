// Command loadgen drives a live rightsized daemon over HTTP with many
// concurrent advisory sessions and reports aggregate throughput: the
// load harness of the serving tier.
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8080] [-sessions 16] [-slots 512]
//	        [-batch 1] [-alg alg-b] [-fleet quickstart] [-seed 1]
//
// One goroutine per session opens a fresh session, pushes -slots demand
// values (the fleet scenario's trace, cycled) in batches of -batch, and
// deletes the session. On exit loadgen prints total slots, wall time,
// aggregate slots/sec and client-observed push latency quantiles —
// p50/p90/p99 over HTTP round-trips, so daemon-side time (the healthz
// quantiles) plus transport. Compare -batch 1 against -batch 16 to see
// the round-trip amortization, and scale -sessions to probe shard
// contention.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	rightsizing "repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	url := flag.String("url", "http://127.0.0.1:8080", "rightsized base URL")
	sessions := flag.Int("sessions", 16, "concurrent sessions")
	slots := flag.Int("slots", 512, "slots to push per session")
	batch := flag.Int("batch", 1, "slots per push request (1 = the single-slot wire form)")
	alg := flag.String("alg", "alg-b", "algorithm (registry name)")
	fleet := flag.String("fleet", "quickstart", "fleet scenario name")
	seed := flag.Int64("seed", 1, "scenario seed")
	flag.Parse()
	if *sessions < 1 || *slots < 1 || *batch < 1 {
		log.Fatal("-sessions, -slots and -batch must all be >= 1")
	}

	sc, ok := rightsizing.LookupScenario(*fleet)
	if !ok {
		log.Fatalf("unknown fleet scenario %q", *fleet)
	}
	trace := sc.Instance(*seed).Lambda

	cl := &client{base: strings.TrimRight(*url, "/")}
	var health struct {
		OK bool `json:"ok"`
	}
	if err := cl.call("GET", "/v1/healthz", nil, &health); err != nil || !health.OK {
		log.Fatalf("daemon not healthy at %s: %v", *url, err)
	}

	type result struct {
		lats []time.Duration
		err  error
	}
	results := make([]result, *sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveSession(cl, fmt.Sprintf("loadgen-%d-%03d", os.Getpid(), i), *alg, *fleet, *seed, trace, *slots, *batch)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var lats []time.Duration
	for i, r := range results {
		if r.err != nil {
			log.Fatalf("session %d: %v", i, r.err)
		}
		lats = append(lats, r.lats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	total := *sessions * *slots
	fmt.Printf("sessions=%d slots/session=%d batch=%d\n", *sessions, *slots, *batch)
	fmt.Printf("pushed %d slots in %v: %.0f slots/sec aggregate (%d HTTP pushes)\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds(), len(lats))
	fmt.Printf("push latency p50=%v p90=%v p99=%v max=%v\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
}

// driveSession opens one session, pushes slots demands in batches and
// deletes it, timing every HTTP push round-trip.
func driveSession(cl *client, id, alg, fleet string, seed int64, trace []float64, slots, batch int) (res struct {
	lats []time.Duration
	err  error
}) {
	open := serve.OpenRequest{ID: id, Alg: alg}
	open.Fleet.Scenario = fleet
	open.Fleet.Seed = seed
	if err := cl.call("POST", "/v1/sessions", open, nil); err != nil {
		res.err = err
		return
	}
	defer func() {
		if err := cl.call("DELETE", "/v1/sessions/"+id, nil, nil); err != nil && res.err == nil {
			res.err = err
		}
	}()

	path := "/v1/sessions/" + id + "/push"
	res.lats = make([]time.Duration, 0, (slots+batch-1)/batch)
	reqs := make([]serve.PushRequest, 0, batch)
	fed := 0
	for fed < slots {
		reqs = reqs[:0]
		for len(reqs) < batch && fed+len(reqs) < slots {
			reqs = append(reqs, serve.PushRequest{Lambda: trace[(fed+len(reqs))%len(trace)]})
		}
		t0 := time.Now()
		var err error
		if batch == 1 {
			err = cl.call("POST", path, reqs[0], nil)
		} else {
			err = cl.call("POST", path, reqs, nil)
		}
		res.lats = append(res.lats, time.Since(t0))
		if err != nil {
			res.err = err
			return
		}
		fed += len(reqs)
	}
	return
}

// client is a minimal JSON-over-HTTP caller for the rightsized API.
type client struct {
	base string
	http http.Client
}

func (c *client) call(method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(data, into)
}
