// Command loadgen drives a live rightsized daemon over HTTP with many
// concurrent advisory sessions and reports aggregate throughput: the
// load harness of the serving tier.
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8080] [-sessions 16] [-slots 512]
//	        [-batch 1] [-alg alg-b] [-fleet quickstart] [-seed 1]
//	        [-retries 8] [-subscribe] [-ack-file FILE]
//	        [-overload] [-offered 2000] [-steps 5] [-step 2s]
//
// One goroutine per session opens a fresh session, pushes -slots demand
// values (the fleet scenario's trace, cycled) in batches of -batch, and
// deletes the session. On exit loadgen prints total slots, wall time,
// aggregate slots/sec, client-observed push latency quantiles —
// p50/p90/p99 over HTTP round-trips, so daemon-side time (the healthz
// quantiles) plus transport — and the generator's own allocation rate,
// so a noisy client never masquerades as daemon-side regression.
// Compare -batch 1 against -batch 16 to see the round-trip
// amortization, and scale -sessions to probe shard contention.
//
// Against a daemon running admission control (rightsized -rate /
// -max-inflight / -push-deadline), loadgen is a well-behaved client:
// shed pushes (429/503) honor the server's Retry-After with jitter,
// timeouts (504) retry with jittered exponential backoff — both are
// safe, a shed or timed-out push fed nothing — and the summary splits
// served / shed / timeout / hard-error counts so an overloaded run is
// interpretable instead of one opaque failure total.
//
// -subscribe attaches one SSE consumer per session (GET
// /v1/sessions/{id}/stream) before any slot is pushed and measures
// advisory delivery latency: the wall time from a slot's push request
// leaving the client to its advisory event arriving on the stream —
// push round-trip plus fan-out, the end-to-end number a dashboard
// consumer actually experiences. The summary adds an "advisory
// delivery" line with event counts and p50/p90/p99, and every stream
// must terminate with the server's end event (reason "deleted", fired
// by the session delete) or the run reports it.
//
// -ack-file turns loadgen into the load half of a crash harness (see
// the README's "Durability" section): every session's acknowledged
// (2xx) slot count is written to FILE as "id count" lines, sessions are
// left open instead of deleted, and the daemon dying mid-push — the
// whole point of a kill test — ends the run cleanly instead of
// aborting it. After restarting the daemon, compare each session's
// recovered fed count against the file: with -wal-sync always, fed must
// be at least the acknowledged count for every session.
//
// -overload switches to the saturation probe: instead of a fixed slot
// budget it paces an aggregate offered load starting at -offered
// slots/sec and doubles it -steps times, -step long each, WITHOUT
// retrying shed pushes (the point is to drive past the knee, not to
// comply). Each step prints offered vs. served slots/sec, the shed /
// timeout split, and served-push p99. Against a rate-limited daemon the
// served column plateaus at the configured rate while offered keeps
// doubling, shed responses all carry Retry-After, and the served p99
// stays bounded — overload degrades into cheap refusals, not collapse.
//
// The client is built not to be the bottleneck: push bodies are encoded
// with the zero-reflection internal/wire encoder into a per-worker
// buffer reused across requests, responses drain into a reused buffer,
// and the transport keeps one idle connection per session so steady
// state never redials.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	rightsizing "repro"
	"repro/internal/serve"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	url := flag.String("url", "http://127.0.0.1:8080", "rightsized base URL")
	sessions := flag.Int("sessions", 16, "concurrent sessions")
	slots := flag.Int("slots", 512, "slots to push per session")
	batch := flag.Int("batch", 1, "slots per push request (1 = the single-slot wire form)")
	alg := flag.String("alg", "alg-b", "algorithm (registry name)")
	fleet := flag.String("fleet", "quickstart", "fleet scenario name")
	seed := flag.Int64("seed", 1, "scenario seed")
	retries := flag.Int("retries", 8, "retry budget per push for shed (429/503) and timed-out (504) responses")
	subscribe := flag.Bool("subscribe", false, "attach one SSE advisory consumer per session and report delivery latency")
	ackFile := flag.String("ack-file", "", "crash-harness mode: record per-session acked slot counts here, keep sessions open, tolerate daemon death")
	overload := flag.Bool("overload", false, "saturation probe: pace offered load past the knee instead of pushing a slot budget")
	offered := flag.Float64("offered", 2000, "overload mode: first step's offered load, slots/sec")
	steps := flag.Int("steps", 5, "overload mode: number of load-doubling steps")
	stepDur := flag.Duration("step", 2*time.Second, "overload mode: duration of each step")
	flag.Parse()
	if *sessions < 1 || *slots < 1 || *batch < 1 {
		log.Fatal("-sessions, -slots and -batch must all be >= 1")
	}
	if *ackFile != "" && (*subscribe || *overload) {
		log.Fatal("-ack-file is a crash harness; it does not combine with -subscribe or -overload")
	}

	sc, ok := rightsizing.LookupScenario(*fleet)
	if !ok {
		log.Fatalf("unknown fleet scenario %q", *fleet)
	}
	trace := sc.Instance(*seed).Lambda

	cl := newClient(strings.TrimRight(*url, "/"), *sessions)
	var health struct {
		OK bool `json:"ok"`
	}
	if err := cl.call("GET", "/v1/healthz", nil, &health); err != nil || !health.OK {
		log.Fatalf("daemon not healthy at %s: %v", *url, err)
	}

	if *overload {
		runOverload(cl, trace, *sessions, *batch, *alg, *fleet, *seed, *offered, *steps, *stepDur)
		return
	}

	results := make([]tally, *sessions)
	var subs []*streamTally
	if *subscribe {
		subs = make([]*streamTally, *sessions)
		for i := range subs {
			subs[i] = newStreamTally(*slots)
		}
	}
	ids := make([]string, *sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("loadgen-%d-%03d", os.Getpid(), i)
	}
	var wg sync.WaitGroup
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var st *streamTally
			if subs != nil {
				st = subs[i]
			}
			results[i] = driveSession(cl, ids[i], *alg, *fleet, *seed, trace, *slots, *batch, *retries, st, *ackFile != "")
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	var sum tally
	interrupted := 0
	for i := range results {
		if results[i].err != nil {
			log.Fatalf("session %d: %v", i, results[i].err)
		}
		if results[i].interrupted {
			interrupted++
		}
		sum.add(&results[i])
	}
	// The ack file is the durability ledger: write it before any summary
	// so a crash-harness checker always finds it, even if the run was
	// cut short enough that the statistics below have nothing to say.
	if *ackFile != "" {
		var ledger strings.Builder
		for i := range ids {
			fmt.Fprintf(&ledger, "%s %d\n", ids[i], results[i].acked)
		}
		if err := os.WriteFile(*ackFile, []byte(ledger.String()), 0o644); err != nil {
			log.Fatalf("writing -ack-file: %v", err)
		}
		fmt.Printf("acked %d slots across %d sessions (%d interrupted by daemon death) -> %s\n",
			sum.acked, *sessions, interrupted, *ackFile)
		if len(sum.lats) == 0 {
			return
		}
	}
	sort.Slice(sum.lats, func(i, j int) bool { return sum.lats[i] < sum.lats[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(sum.lats)))
		if i >= len(sum.lats) {
			i = len(sum.lats) - 1
		}
		return sum.lats[i]
	}
	total := *sessions * *slots
	if *ackFile != "" {
		total = sum.acked // an interrupted run pushed only what was acked
	}
	fmt.Printf("sessions=%d slots/session=%d batch=%d\n", *sessions, *slots, *batch)
	fmt.Printf("pushed %d slots in %v: %.0f slots/sec aggregate (%d served HTTP pushes)\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds(), len(sum.lats))
	fmt.Printf("push latency p50=%v p90=%v p99=%v max=%v\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), sum.lats[len(sum.lats)-1].Round(time.Microsecond))
	// The failure breakdown: shed and timed-out pushes were retried (up
	// to -retries) and are NOT in the throughput above; a lumped "errors"
	// count would make an overloaded run unreadable.
	fmt.Printf("shed: %d throttled (429) + %d overloaded (503), %d/%d carrying Retry-After; timeouts: %d (504); hard errors: 0\n",
		sum.throttled, sum.overloaded, sum.shedWithRA, sum.throttled+sum.overloaded, sum.timeouts)
	// Client-side allocation rate across the whole run (loadgen's own
	// bookkeeping included): if this climbs, the generator is eating the
	// machine and the slots/sec above stops being a daemon measurement.
	fmt.Printf("client allocs: %.0f allocs/push, %.0f B/push\n",
		float64(after.Mallocs-before.Mallocs)/float64(len(sum.lats)),
		float64(after.TotalAlloc-before.TotalAlloc)/float64(len(sum.lats)))

	if *subscribe {
		var dl []time.Duration
		events := 0
		for i, st := range subs {
			if err := st.wait(10 * time.Second); err != nil {
				log.Fatalf("stream %d: %v", i, err)
			}
			if st.reason != "deleted" {
				log.Printf("WARNING: stream %d ended with reason %q, want \"deleted\"", i, st.reason)
			}
			dl = append(dl, st.lats...)
			events += st.events
		}
		if len(dl) == 0 {
			log.Fatal("subscribed streams delivered no advisories")
		}
		sort.Slice(dl, func(i, j int) bool { return dl[i] < dl[j] })
		dq := func(p float64) time.Duration {
			i := int(p * float64(len(dl)))
			if i >= len(dl) {
				i = len(dl) - 1
			}
			return dl[i]
		}
		fmt.Printf("advisory delivery: %d events over %d streams, latency p50=%v p90=%v p99=%v max=%v\n",
			events, len(subs),
			dq(0.50).Round(time.Microsecond), dq(0.90).Round(time.Microsecond),
			dq(0.99).Round(time.Microsecond), dl[len(dl)-1].Round(time.Microsecond))
	}
}

// tally is one worker's (or the aggregate) outcome breakdown.
type tally struct {
	lats        []time.Duration // served pushes only
	acked       int             // slots acknowledged with 2xx
	throttled   int             // 429 responses
	overloaded  int             // 503 responses
	shedWithRA  int             // shed responses that carried Retry-After
	timeouts    int             // 504 responses
	retried     int             // total retry attempts
	interrupted bool            // the daemon died under us (-ack-file mode only)
	err         error
}

func (t *tally) add(o *tally) {
	t.lats = append(t.lats, o.lats...)
	t.acked += o.acked
	t.throttled += o.throttled
	t.overloaded += o.overloaded
	t.shedWithRA += o.shedWithRA
	t.timeouts += o.timeouts
	t.retried += o.retried
}

// classify files one non-2xx push response into the tally and reports
// whether the push may be retried (shed and deadline responses fed
// nothing by contract; anything else is a hard error).
func (t *tally) classify(o pushOutcome) (retryable bool) {
	switch o.status {
	case http.StatusTooManyRequests:
		t.throttled++
	case http.StatusServiceUnavailable:
		t.overloaded++
	case http.StatusGatewayTimeout:
		t.timeouts++
		return true
	default:
		return false
	}
	if o.hasRetryAfter {
		t.shedWithRA++
	}
	return true
}

// driveSession opens one session, pushes slots demands in batches and
// deletes it, timing every served HTTP push round-trip. Shed (429/503)
// pushes wait out the server's Retry-After with jitter; timeouts (504)
// back off exponentially with jitter; both then retry the identical
// body — the wire encoding is reused, not rebuilt. The push body is
// wire-encoded into a buffer owned by this worker and reused for every
// request, so the generator allocates next to nothing per push.
//
// With a non-nil st (-subscribe), an SSE consumer is attached after the
// open and before the first push — a subscription only sees advisories
// published after it exists — and every push attempt stamps its slots'
// send times so the consumer can measure delivery latency.
func driveSession(cl *client, id, alg, fleet string, seed int64, trace []float64, slots, batch, retries int, st *streamTally, keep bool) (res tally) {
	open := serve.OpenRequest{ID: id, Alg: alg}
	open.Fleet.Scenario = fleet
	open.Fleet.Seed = seed
	if err := cl.call("POST", "/v1/sessions", open, nil); err != nil {
		res.err = err
		return
	}
	if !keep {
		defer func() {
			if err := cl.call("DELETE", "/v1/sessions/"+id, nil, nil); err != nil && res.err == nil {
				res.err = err
			}
		}()
	}
	if st != nil {
		if err := st.start(cl, "/v1/sessions/"+id+"/stream"); err != nil {
			res.err = err
			return
		}
	}

	path := "/v1/sessions/" + id + "/push"
	res.lats = make([]time.Duration, 0, (slots+batch-1)/batch)
	reqs := make([]serve.PushRequest, 0, batch)
	w := newPushWorker()
	rng := rand.New(rand.NewSource(int64(len(id)) ^ seed<<16))
	fed := 0
	for fed < slots {
		reqs = reqs[:0]
		for len(reqs) < batch && fed+len(reqs) < slots {
			reqs = append(reqs, serve.PushRequest{Lambda: trace[(fed+len(reqs))%len(trace)]})
		}
		var err error
		if batch == 1 {
			w.body, err = wire.AppendPushRequest(w.body[:0], &reqs[0])
		} else {
			w.body, err = wire.AppendPushRequests(w.body[:0], reqs)
		}
		if err != nil {
			res.err = err
			return
		}
		backoff := 50 * time.Millisecond
		for attempt := 0; ; attempt++ {
			if st != nil {
				st.stamp(fed, len(reqs))
			}
			t0 := time.Now()
			o, err := cl.push(path, w)
			if err != nil {
				// A transport error is the daemon gone mid-request. In
				// crash-harness mode that is the experiment, not a failure:
				// the push was never acknowledged, so it simply isn't
				// counted, and the run ends here for this session.
				if keep {
					res.interrupted = true
					return
				}
				res.err = err
				return
			}
			if o.status < 300 {
				res.lats = append(res.lats, time.Since(t0))
				res.acked += len(reqs)
				break
			}
			if !res.classify(o) || attempt >= retries {
				res.err = fmt.Errorf("POST %s: %s (HTTP %d, %d retries)", path, o.errMsg, o.status, attempt)
				return
			}
			res.retried++
			wait := backoff
			if o.hasRetryAfter {
				wait = o.retryAfter
			} else if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			// Full jitter over the upper half: desynchronizes the retry
			// herd while never retrying before half the advertised wait.
			wait = wait/2 + time.Duration(rng.Int63n(int64(wait/2)+1))
			time.Sleep(wait)
		}
		fed += len(reqs)
	}
	return
}

// runOverload paces an aggregate offered load across the worker pool,
// doubling it each step, and reports served vs. offered per step. Shed
// pushes are dropped, not retried: compliance would cap offered load at
// the server's rate and hide the plateau this mode exists to show.
func runOverload(cl *client, trace []float64, sessions, batch int, alg, fleet string, seed int64, offered float64, steps int, stepDur time.Duration) {
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("loadgen-ov-%d-%03d", os.Getpid(), i)
		open := serve.OpenRequest{ID: ids[i], Alg: alg}
		open.Fleet.Scenario = fleet
		open.Fleet.Seed = seed
		if err := cl.call("POST", "/v1/sessions", open, nil); err != nil {
			log.Fatalf("open %s: %v", ids[i], err)
		}
	}
	defer func() {
		for _, id := range ids {
			if err := cl.call("DELETE", "/v1/sessions/"+id, nil, nil); err != nil {
				log.Printf("delete %s: %v", id, err)
			}
		}
	}()

	fmt.Printf("overload probe: %d sessions, batch %d, %v per step\n", sessions, batch, stepDur)
	fmt.Printf("%14s %12s %12s %8s %8s %8s %12s\n",
		"offered/s", "attempted/s", "served/s", "shed", "timeout", "hard", "p99(served)")

	fedPos := make([]int, sessions) // per-worker trace cursor, continuous across steps
	for s := 0; s < steps; s++ {
		rate := offered * float64(int(1)<<s)
		interval := time.Duration(float64(batch) * float64(time.Second) / rate)
		tallies := make([]tally, sessions)
		var hard atomic.Int64
		var ticks atomic.Int64
		start := time.Now()
		deadline := start.Add(stepDur)

		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w := newPushWorker()
				path := "/v1/sessions/" + ids[i] + "/push"
				reqs := make([]serve.PushRequest, batch)
				for {
					// Claim the next slot of the shared pace schedule.
					k := ticks.Add(1) - 1
					sendAt := start.Add(time.Duration(k) * interval)
					if sendAt.After(deadline) {
						ticks.Add(-1) // unclaimed: keep attempted/s honest
						return
					}
					if d := time.Until(sendAt); d > 0 {
						time.Sleep(d)
					}
					for j := range reqs {
						reqs[j] = serve.PushRequest{Lambda: trace[fedPos[i]%len(trace)]}
						fedPos[i]++
					}
					var err error
					if batch == 1 {
						w.body, err = wire.AppendPushRequest(w.body[:0], &reqs[0])
					} else {
						w.body, err = wire.AppendPushRequests(w.body[:0], reqs)
					}
					if err != nil {
						log.Fatalf("encode: %v", err)
					}
					t0 := time.Now()
					o, perr := cl.push(path, w)
					if perr != nil {
						hard.Add(1)
						continue
					}
					if o.status < 300 {
						tallies[i].lats = append(tallies[i].lats, time.Since(t0))
						continue
					}
					if !tallies[i].classify(o) {
						hard.Add(1)
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var sum tally
		for i := range tallies {
			sum.add(&tallies[i])
		}
		sort.Slice(sum.lats, func(a, b int) bool { return sum.lats[a] < sum.lats[b] })
		p99 := time.Duration(0)
		if n := len(sum.lats); n > 0 {
			i := int(0.99 * float64(n))
			if i >= n {
				i = n - 1
			}
			p99 = sum.lats[i]
		}
		attempted := ticks.Load()
		shed := sum.throttled + sum.overloaded
		fmt.Printf("%14.0f %12.0f %12.0f %8d %8d %8d %12v\n",
			rate,
			float64(attempted*int64(batch))/elapsed.Seconds(),
			float64(len(sum.lats)*batch)/elapsed.Seconds(),
			shed, sum.timeouts, hard.Load(), p99.Round(time.Microsecond))
		if shed > 0 && sum.shedWithRA < shed {
			log.Printf("WARNING: %d/%d shed responses missing Retry-After", shed-sum.shedWithRA, shed)
		}
	}
}

// streamTally is one session's SSE consumer: a goroutine reading the
// advisory stream, matching each advisory event's id (the slot number)
// against the slot's stamped send time. sendAt entries are atomics
// because the pusher stamps while the consumer reads.
type streamTally struct {
	sendAt []int64 // unix nanos per slot, atomic
	lats   []time.Duration
	events int    // advisory frames seen (stamped or not)
	reason string // the end event's reason
	done   chan struct{}
	err    error
}

func newStreamTally(slots int) *streamTally {
	return &streamTally{sendAt: make([]int64, slots), done: make(chan struct{})}
}

// stamp records now as slots [first, first+n)'s send time; a retried
// push re-stamps, so latency is measured from the attempt that served.
func (st *streamTally) stamp(first, n int) {
	now := time.Now().UnixNano()
	for i := first; i < first+n && i < len(st.sendAt); i++ {
		atomic.StoreInt64(&st.sendAt[i], now)
	}
}

// start subscribes and spawns the reader; it returns once the server
// has acknowledged the stream (HTTP 200), so advisories for pushes made
// after start cannot be missed.
func (st *streamTally) start(c *client, path string) error {
	req, err := http.NewRequest("GET", c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	go st.consume(resp.Body)
	return nil
}

func (st *streamTally) consume(body io.ReadCloser) {
	defer close(st.done)
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var event, id, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // frame boundary: dispatch what accumulated
			switch event {
			case "advisory":
				st.events++
				if slot, err := strconv.Atoi(id); err == nil && slot >= 0 && slot < len(st.sendAt) {
					if ns := atomic.LoadInt64(&st.sendAt[slot]); ns > 0 {
						st.lats = append(st.lats, time.Since(time.Unix(0, ns)))
					}
				}
			case "end":
				var eb struct {
					Reason string `json:"reason"`
				}
				_ = json.Unmarshal([]byte(data), &eb)
				st.reason = eb.Reason
				return
			}
			event, id, data = "", "", ""
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			id = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
	st.err = sc.Err()
	if st.err == nil {
		st.err = fmt.Errorf("stream closed without an end event")
	}
}

// wait blocks until the stream's end event (or reader failure), bounded
// by timeout.
func (st *streamTally) wait(timeout time.Duration) error {
	select {
	case <-st.done:
		return st.err
	case <-time.After(timeout):
		return fmt.Errorf("stream still open %v after the session delete", timeout)
	}
}

// pushWorker holds one session goroutine's reusable push state: the
// encoded body, the reader handed to the transport, and the response
// drain buffer. None of it is reallocated between pushes.
type pushWorker struct {
	body []byte
	rd   *bytes.Reader
	resp bytes.Buffer
}

func newPushWorker() *pushWorker {
	return &pushWorker{body: make([]byte, 0, 512), rd: bytes.NewReader(nil)}
}

// client is a minimal JSON-over-HTTP caller for the rightsized API. Its
// transport keeps one idle connection per concurrent session
// (DefaultTransport caps at 2 per host, which would force most workers
// to redial every push).
type client struct {
	base string
	http http.Client
}

func newClient(base string, sessions int) *client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = sessions + 2
	tr.MaxIdleConnsPerHost = sessions + 2
	return &client{base: base, http: http.Client{Transport: tr}}
}

// pushOutcome is one push response, classified enough for the retry
// loop: the status, the parsed Retry-After (if any) and the server's
// error prose for hard failures.
type pushOutcome struct {
	status        int
	retryAfter    time.Duration
	hasRetryAfter bool
	errMsg        string
}

// push posts the worker's encoded body and drains the response into the
// worker's buffer, reusing both across calls. Transport failures are
// the returned error; HTTP-level failures come back in the outcome for
// the caller to classify.
func (c *client) push(path string, w *pushWorker) (pushOutcome, error) {
	w.rd.Reset(w.body)
	req, err := http.NewRequest("POST", c.base+path, w.rd)
	if err != nil {
		return pushOutcome{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return pushOutcome{}, err
	}
	defer resp.Body.Close()
	w.resp.Reset()
	if _, err := w.resp.ReadFrom(resp.Body); err != nil {
		return pushOutcome{}, err
	}
	o := pushOutcome{status: resp.StatusCode}
	if resp.StatusCode >= 300 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				o.retryAfter = time.Duration(secs) * time.Second
				o.hasRetryAfter = true
			}
		}
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(w.resp.Bytes(), &eb) == nil && eb.Error != "" {
			o.errMsg = eb.Error
		} else {
			o.errMsg = "HTTP " + strconv.Itoa(resp.StatusCode)
		}
	}
	return o, nil
}

func (c *client) call(method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(data, into)
}
