// Command paperfig regenerates the five figures of Albers & Quedenfeld
// (SPAA 2021) as ASCII renderings, driven by the production algorithm
// implementations.
//
// Usage:
//
//	paperfig           # all figures
//	paperfig -fig 3    # one figure
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/figures"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 0, "figure number (1-5); 0 renders all")
	flag.Parse()

	renderers := map[int]func() string{
		1: figures.RenderFigure1,
		2: figures.RenderFigure2,
		3: figures.RenderFigure3,
		4: figures.RenderFigure4,
		5: figures.RenderFigure5,
	}
	if *fig != 0 {
		r, ok := renderers[*fig]
		if !ok {
			log.Fatalf("paperfig: no figure %d (have 1-5)", *fig)
		}
		fmt.Println(r())
		return
	}
	for i := 1; i <= 5; i++ {
		fmt.Println(renderers[i]())
		fmt.Println()
	}
}
