// Command paperfig regenerates the five figures of Albers & Quedenfeld
// (SPAA 2021) as ASCII renderings, driven by the production algorithm
// implementations, and — beyond the paper — renders any scenario from the
// engine's registry the same way: the optimal schedule chart plus the
// measured algorithm table.
//
// Usage:
//
//	paperfig             # all five paper figures
//	paperfig -fig 3      # one paper figure
//	paperfig -scenario diurnal [-seed 1]   # a registry workload as a "figure"
//	paperfig -list       # figures and scenarios available
package main

import (
	"flag"
	"fmt"
	"log"

	rightsizing "repro"
	"repro/internal/figures"
	"repro/internal/sim"
)

var renderers = map[int]func() string{
	1: figures.RenderFigure1,
	2: figures.RenderFigure2,
	3: figures.RenderFigure3,
	4: figures.RenderFigure4,
	5: figures.RenderFigure5,
}

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 0, "figure number (1-5); 0 renders all")
	scenario := flag.String("scenario", "", "render a registered scenario instead of a paper figure")
	seed := flag.Int64("seed", 1, "scenario seed")
	list := flag.Bool("list", false, "list available figures and scenarios")
	flag.Parse()

	switch {
	case *list:
		fmt.Println("paper figures: 1 2 3 4 5 (-fig N)")
		fmt.Println("registry scenarios (-scenario NAME):")
		for _, sc := range rightsizing.Scenarios() {
			fmt.Printf("  %s  %s\n", sc.Name, sc.Doc)
		}
	case *scenario != "":
		renderScenario(*scenario, *seed)
	case *fig != 0:
		r, ok := renderers[*fig]
		if !ok {
			log.Fatalf("paperfig: no figure %d (have 1-5)", *fig)
		}
		fmt.Println(r())
	default:
		for i := 1; i <= 5; i++ {
			fmt.Println(renderers[i]())
			fmt.Println()
		}
	}
}

// renderScenario draws a registry workload through the engine: the metric
// table for every applicable algorithm and the optimal schedule chart.
func renderScenario(name string, seed int64) {
	sc, ok := rightsizing.LookupScenario(name)
	if !ok {
		log.Fatalf("paperfig: unknown scenario %q (-list shows the registry)", name)
	}
	res, err := rightsizing.RunSuite([]rightsizing.Scenario{sc}, rightsizing.SuiteOptions{
		Seed:          seed,
		KeepSchedules: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := res.Results[0]
	fmt.Printf("Scenario %s (seed %d): %s\n\n", sc.Name, seed, sc.Doc)
	fmt.Print(r.Table())
	for _, s := range r.Skipped {
		fmt.Printf("(skipped %s)\n", s)
	}
	ins := sc.Instance(seed)
	fmt.Println("\noptimal schedule:")
	fmt.Print(sim.RenderSchedule(ins, r.Schedules[0], 96))
}
