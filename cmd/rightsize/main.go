// Command rightsize solves data-center right-sizing workloads: either a
// JSON instance file, a named scenario from the engine's registry, or a
// live demand stream advised slot-by-slot.
//
// Usage:
//
//	rightsize -input instance.json [-mode optimal|approx|online-a|online-b|online-c]
//	          [-eps 0.5] [-schedule] [-render] [-compare]
//	rightsize -scenario diurnal [-seed 1] [-format text|json|csv|markdown] [-render]
//	rightsize -suite [-workers N] [-seed 1] [-format text|json|csv|markdown]
//	rightsize -stream [-alg algA] [-fleet quickstart | -input instance.json]
//	          [-replay] [-interval 500ms] [-checkpoint cp.json | -resume cp.json]
//	          [-serve-url http://localhost:8080] [-batch 16]
//	rightsize -list
//	rightsize -list-algs
//
// Modes (with -input):
//
//	optimal   exact offline optimum (Section 4.1; default)
//	approx    (1+ε)-approximation (Section 4.2)
//	online-a  Algorithm A (time-independent costs, Section 2)
//	online-b  Algorithm B (Section 3.1)
//	online-c  Algorithm C (Section 3.2, uses -eps)
//
// Stream mode opens a live advisory session: demand values are read one
// per line from stdin (or replayed from -input's trace with -replay) and
// one JSON advisory is emitted per decided slot — the configuration to
// run plus running cost and competitive-ratio telemetry. The algorithm is
// resolved by name through the registry (-list-algs shows it; spellings
// like "algA", "alg-a" and "AlgorithmA" are equivalent). -checkpoint
// writes the session's replay log on exit; -resume rebuilds a session
// from such a log before reading further input. With -serve-url the same
// stream drives a remote rightsized daemon over its HTTP API instead of
// an in-process session — identical replay files, identical advisories.
// -batch N amortizes per-push overhead by feeding N demands per push
// (one session acquire in-process, one HTTP round-trip remotely);
// advisories are identical for any batch size.
//
// -schedule prints the slot-by-slot configurations; -compare runs every
// applicable algorithm through the scenario engine and prints a table.
// -scenario runs one registered scenario; -suite runs the whole registry
// concurrently (deterministic for any -workers value).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	rightsizing "repro"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rightsize: ")

	input := flag.String("input", "", "path to an instance JSON file")
	mode := flag.String("mode", "optimal", "optimal | approx | online-a | online-b | online-c")
	eps := flag.Float64("eps", 0.5, "accuracy parameter for approx and online-c")
	printSched := flag.Bool("schedule", false, "print the slot-by-slot schedule")
	render := flag.Bool("render", false, "draw the schedule as a stacked ASCII chart")
	compare := flag.Bool("compare", false, "run all applicable algorithms and print a table")
	scenario := flag.String("scenario", "", "run a named scenario from the registry")
	suite := flag.Bool("suite", false, "run every registered scenario")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	listAlgs := flag.Bool("list-algs", false, "list registered algorithms and exit")
	seed := flag.Int64("seed", 1, "scenario seed (workload randomness)")
	workers := flag.Int("workers", rightsizing.AutoWorkers, "suite worker pool size (-1 = one per CPU)")
	format := flag.String("format", "text", "result format: text | json | csv | markdown")
	streamMode := flag.Bool("stream", false, "advise a live demand stream (stdin lines or -replay)")
	alg := flag.String("alg", "alg-a", "stream algorithm (registry name; see -list-algs)")
	fleet := flag.String("fleet", "quickstart", "stream fleet template: scenario name (or use -input)")
	replay := flag.Bool("replay", false, "stream the -input (or -fleet scenario) trace instead of stdin")
	interval := flag.Duration("interval", 0, "pause between replayed slots (e.g. 500ms)")
	checkpoint := flag.String("checkpoint", "", "write the session checkpoint JSON here on exit")
	resume := flag.String("resume", "", "resume a session from a checkpoint JSON before reading input")
	serveURL := flag.String("serve-url", "", "drive a rightsized daemon at this base URL instead of an in-process session")
	batch := flag.Int("batch", 1, "stream mode: feed demands in batches of this size")
	flag.Parse()

	switch {
	case *list:
		listScenarios()
	case *listAlgs:
		listAlgorithms()
	case *streamMode:
		// Streams default to serial trackers (per-slot lattices are small);
		// an explicit -workers is plumbed into the algorithm's prefix
		// tracker and the session's telemetry tracker.
		streamWorkers := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				streamWorkers = *workers
			}
		})
		if *batch < 1 {
			log.Fatalf("-batch must be >= 1, got %d", *batch)
		}
		if *serveURL != "" {
			runStreamRemote(*serveURL, *alg, *fleet, *input, *seed, *replay, *interval, *checkpoint, *resume, *batch)
		} else {
			runStream(*alg, *fleet, *input, *seed, *replay, *interval, *checkpoint, *resume, streamWorkers, *batch)
		}
	case *suite:
		runScenarios(rightsizing.Scenarios(), *seed, *workers, *format, false)
	case *scenario != "":
		sc, ok := rightsizing.LookupScenario(*scenario)
		if !ok {
			log.Fatalf("unknown scenario %q; -list shows the registry", *scenario)
		}
		runScenarios([]rightsizing.Scenario{sc}, *seed, *workers, *format, *render)
	case *input != "":
		runInstanceFile(*input, *mode, *eps, *printSched, *render, *compare, *workers)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func listScenarios() {
	scs := rightsizing.Scenarios()
	width := 0
	for _, sc := range scs {
		if len(sc.Name) > width {
			width = len(sc.Name)
		}
	}
	for _, sc := range scs {
		fmt.Printf("%-*s  %s\n", width, sc.Name, sc.Doc)
	}
}

func listAlgorithms() {
	t := rightsizing.NewTable("key", "name", "bound", "applies to", "stream", "description")
	for _, s := range rightsizing.Algorithms() {
		streamable := "yes"
		if !s.Streamable() {
			streamable = "no"
		}
		t.Add(s.Key, s.Name, s.Bound, s.Applies, streamable, s.Doc)
	}
	fmt.Print(t)
}

// streamFleet resolves the stream mode's fleet template and optional
// replay trace.
func streamFleet(fleet, input string, seed int64) ([]rightsizing.ServerType, []float64) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			log.Fatal(err)
		}
		ins, err := rightsizing.ParseInstance(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		return ins.Types, ins.Lambda
	}
	sc, ok := rightsizing.LookupScenario(fleet)
	if !ok {
		log.Fatalf("unknown fleet scenario %q; -list shows the registry", fleet)
	}
	ins := sc.Instance(seed)
	return ins.Types, ins.Lambda
}

// runStream drives a live advisory session: demand arrives on stdin (one
// value per line) or from the replayed trace, and one JSON advisory is
// written per decided slot. Demands are fed in batches of batch slots
// (Session.PushBatch); advisories are identical for any batch size.
func runStream(alg, fleet, input string, seed int64, replay bool, interval time.Duration, checkpointPath, resumePath string, workers, batch int) {
	types, trace := streamFleet(fleet, input, seed)
	opts := rightsizing.SessionOptions{Workers: workers}

	var sess *rightsizing.Session
	var err error
	if resumePath != "" {
		// The checkpoint names the algorithm; an explicit -alg alongside
		// -resume is a conflict, not a silent override.
		algSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "alg" {
				algSet = true
			}
		})
		if algSet {
			log.Fatal("-alg cannot be combined with -resume: the checkpoint determines the algorithm")
		}
		data, rerr := os.ReadFile(resumePath)
		if rerr != nil {
			log.Fatal(rerr)
		}
		var cp rightsizing.SessionCheckpoint
		if jerr := json.Unmarshal(data, &cp); jerr != nil {
			log.Fatal(jerr)
		}
		sess, err = rightsizing.ResumeSession(&cp, types, opts)
		if err == nil {
			fmt.Fprintf(os.Stderr, "rightsize: resumed %s at slot %d (cum cost %.4f)\n",
				sess.Name(), sess.Fed(), sess.CumCost())
		}
	} else {
		sess, err = rightsizing.OpenSession(alg, types, opts)
	}
	if err != nil {
		log.Fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(advs []rightsizing.Advisory) {
		for _, adv := range advs {
			if err := enc.Encode(adv); err != nil {
				log.Fatal(err)
			}
		}
	}

	pending := make([]rightsizing.SlotInput, 0, batch)
	advBuf := make([]rightsizing.Advisory, batch)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		n, err := sess.PushBatch(pending, advBuf)
		if err != nil {
			log.Fatal(err)
		}
		emit(advBuf[:n])
		pending = pending[:0]
	}
	feed := func(lambda float64) {
		pending = append(pending, rightsizing.SlotInput{Lambda: lambda})
		if len(pending) >= batch {
			flush()
		}
	}

	if replay {
		// A resumed session already holds its checkpointed prefix; replay
		// only the remainder of the trace so slots are not fed twice.
		if done := sess.Fed(); done < len(trace) {
			trace = trace[done:]
		} else {
			trace = nil
		}
		for _, lambda := range trace {
			feed(lambda)
			if interval > 0 && len(pending) == 0 { // a batch just flushed
				time.Sleep(interval)
			}
		}
	} else {
		scan := bufio.NewScanner(os.Stdin)
		for scan.Scan() {
			line := strings.TrimSpace(scan.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			lambda, err := strconv.ParseFloat(line, 64)
			if err != nil {
				log.Fatalf("bad demand line %q: %v", line, err)
			}
			feed(lambda)
		}
		if err := scan.Err(); err != nil {
			log.Fatal(err)
		}
	}
	flush()

	advs, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	emit(advs)
	fmt.Fprintf(os.Stderr, "rightsize: %s advised %d slots, total cost %.4f\n",
		sess.Name(), sess.Decided(), sess.CumCost())

	if checkpointPath != "" {
		cp := sess.Checkpoint()
		if !cp.Portable() {
			log.Fatal("session fed explicit cost functions; checkpoint is not JSON-portable")
		}
		data, err := json.MarshalIndent(cp, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(checkpointPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rightsize: checkpoint written to %s\n", checkpointPath)
	}
}

// runScenarios routes one or all scenarios through the engine's suite
// runner and the selected result sink.
func runScenarios(scs []rightsizing.Scenario, seed int64, workers int, format string, render bool) {
	sink, err := rightsizing.NewSink(format)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rightsizing.RunSuite(scs, rightsizing.SuiteOptions{
		Workers:       workers,
		Seed:          seed,
		KeepSchedules: render,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Emit(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	if render {
		for i := range res.Results {
			r := &res.Results[i]
			sc, _ := rightsizing.LookupScenario(r.Scenario)
			ins := sc.Instance(r.Seed)
			fmt.Printf("\noptimal schedule for %s:\n", r.Scenario)
			fmt.Print(sim.RenderSchedule(ins, r.Schedules[0], 96))
		}
	}
}

func runInstanceFile(input, mode string, eps float64, printSched, render, compare bool, workers int) {
	f, err := os.Open(input)
	if err != nil {
		log.Fatal(err)
	}
	ins, err := rightsizing.ParseInstance(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d server types, %d time slots\n", ins.D(), ins.T())

	if compare {
		runComparison(ins, eps)
		return
	}

	var sched rightsizing.Schedule
	switch mode {
	case "optimal":
		res, err := rightsizing.Solve(ins, rightsizing.SolveOptions{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		sched = res.Schedule
		fmt.Printf("optimal cost %.4f (operating %.4f, switching %.4f), lattice %d\n",
			res.Cost(), res.Breakdown.Operating, res.Breakdown.Switching, res.LatticeSize)
	case "approx":
		if eps <= 0 {
			log.Fatalf("approx needs -eps > 0, got %g", eps)
		}
		// Theorem 21's γ = 1 + ε/2 (SolveApprox), with the worker pool.
		res, err := rightsizing.Solve(ins, rightsizing.SolveOptions{Gamma: 1 + eps/2, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		sched = res.Schedule
		fmt.Printf("(1+%g)-approx cost %.4f (operating %.4f, switching %.4f), lattice %d\n",
			eps, res.Cost(), res.Breakdown.Operating, res.Breakdown.Switching, res.LatticeSize)
	case "online-a", "online-b", "online-c":
		var alg rightsizing.Online
		switch mode {
		case "online-a":
			alg, err = rightsizing.NewAlgorithmA(ins.Types)
		case "online-b":
			alg, err = rightsizing.NewAlgorithmB(ins.Types)
		default:
			alg, err = rightsizing.NewAlgorithmC(ins.Types, eps)
		}
		if err != nil {
			log.Fatal(err)
		}
		sched = rightsizing.Run(alg, ins)
		m := rightsizing.Measure(ins, sched, alg.Name(), 0)
		fmt.Printf("%s cost %.4f (operating %.4f, switching %.4f)\n",
			m.Name, m.Total, m.Operating, m.Switching)
		if opt, err := rightsizing.OptimalCost(ins); err == nil {
			fmt.Printf("hindsight optimum %.4f -> ratio %.4f\n", opt, m.Total/opt)
		}
	default:
		log.Fatalf("unknown mode %q", mode)
	}

	if err := ins.Feasible(sched); err != nil {
		log.Fatalf("internal error: produced schedule is infeasible: %v", err)
	}
	if printSched {
		fmt.Println("\nslot  demand  configuration")
		for t := 1; t <= ins.T(); t++ {
			fmt.Printf("%4d  %6.2f  %v\n", t, ins.Lambda[t-1], sched[t-1])
		}
	}
	if render {
		fmt.Println()
		fmt.Print(sim.RenderSchedule(ins, sched, 96))
	}
}

// runComparison measures every applicable algorithm on the instance as a
// one-off engine scenario (OPT solved once, ε from the command line for
// Algorithm C), resolving the line-up from the algorithm registry.
func runComparison(ins *rightsizing.Instance, eps float64) {
	lineup := make([]rightsizing.AlgSpec, 0, 7)
	for _, key := range []string{"alg-a", "alg-b"} {
		s, ok := rightsizing.LookupAlgorithm(key)
		if !ok {
			log.Fatalf("stock algorithm %q missing from registry", key)
		}
		lineup = append(lineup, s)
	}
	lineup = append(lineup, rightsizing.AlgorithmCSpec(eps))
	for _, key := range []string{"all-on", "load-tracking", "ski-rental", "lcp"} {
		s, ok := rightsizing.LookupAlgorithm(key)
		if !ok {
			log.Fatalf("stock algorithm %q missing from registry", key)
		}
		lineup = append(lineup, s)
	}
	sc := rightsizing.Scenario{
		Name:       "instance",
		Instance:   func(int64) *rightsizing.Instance { return ins },
		Algorithms: lineup,
	}
	res, err := rightsizing.EvaluateScenario(sc, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	for _, s := range res.Skipped {
		fmt.Printf("(skipped %s)\n", s)
	}
}
