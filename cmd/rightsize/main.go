// Command rightsize solves a data-center right-sizing instance described
// as JSON (see the repository README for the schema).
//
// Usage:
//
//	rightsize -input instance.json [-mode optimal|approx|online-a|online-b|online-c]
//	          [-eps 0.5] [-schedule] [-compare]
//
// Modes:
//
//	optimal   exact offline optimum (Section 4.1; default)
//	approx    (1+ε)-approximation (Section 4.2)
//	online-a  Algorithm A (time-independent costs, Section 2)
//	online-b  Algorithm B (Section 3.1)
//	online-c  Algorithm C (Section 3.2, uses -eps)
//
// -schedule prints the slot-by-slot configurations; -compare runs every
// applicable algorithm and prints a comparison table.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	rightsizing "repro"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rightsize: ")

	input := flag.String("input", "", "path to the instance JSON (required)")
	mode := flag.String("mode", "optimal", "optimal | approx | online-a | online-b | online-c")
	eps := flag.Float64("eps", 0.5, "accuracy parameter for approx and online-c")
	printSched := flag.Bool("schedule", false, "print the slot-by-slot schedule")
	render := flag.Bool("render", false, "draw the schedule as a stacked ASCII chart")
	compare := flag.Bool("compare", false, "run all applicable algorithms and print a table")
	flag.Parse()

	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		log.Fatal(err)
	}
	ins, err := rightsizing.ParseInstance(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d server types, %d time slots\n", ins.D(), ins.T())

	if *compare {
		runComparison(ins, *eps)
		return
	}

	var sched rightsizing.Schedule
	switch *mode {
	case "optimal":
		res, err := rightsizing.SolveOptimal(ins)
		if err != nil {
			log.Fatal(err)
		}
		sched = res.Schedule
		fmt.Printf("optimal cost %.4f (operating %.4f, switching %.4f), lattice %d\n",
			res.Cost(), res.Breakdown.Operating, res.Breakdown.Switching, res.LatticeSize)
	case "approx":
		res, err := rightsizing.SolveApprox(ins, *eps)
		if err != nil {
			log.Fatal(err)
		}
		sched = res.Schedule
		fmt.Printf("(1+%g)-approx cost %.4f (operating %.4f, switching %.4f), lattice %d\n",
			*eps, res.Cost(), res.Breakdown.Operating, res.Breakdown.Switching, res.LatticeSize)
	case "online-a", "online-b", "online-c":
		var alg rightsizing.Online
		switch *mode {
		case "online-a":
			alg, err = rightsizing.NewAlgorithmA(ins)
		case "online-b":
			alg, err = rightsizing.NewAlgorithmB(ins)
		default:
			alg, err = rightsizing.NewAlgorithmC(ins, *eps)
		}
		if err != nil {
			log.Fatal(err)
		}
		sched = rightsizing.Run(alg)
		br := rightsizing.NewEvaluator(ins).Cost(sched)
		fmt.Printf("%s cost %.4f (operating %.4f, switching %.4f)\n",
			alg.Name(), br.Total(), br.Operating, br.Switching)
		if opt, err := rightsizing.OptimalCost(ins); err == nil {
			fmt.Printf("hindsight optimum %.4f -> ratio %.4f\n", opt, br.Total()/opt)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	if err := ins.Feasible(sched); err != nil {
		log.Fatalf("internal error: produced schedule is infeasible: %v", err)
	}
	if *printSched {
		fmt.Println("\nslot  demand  configuration")
		for t := 1; t <= ins.T(); t++ {
			fmt.Printf("%4d  %6.2f  %v\n", t, ins.Lambda[t-1], sched[t-1])
		}
	}
	if *render {
		fmt.Println()
		fmt.Print(sim.RenderSchedule(ins, sched, 96))
	}
}

func runComparison(ins *rightsizing.Instance, eps float64) {
	cmp, err := rightsizing.NewComparison(ins)
	if err != nil {
		log.Fatal(err)
	}
	if ins.TimeIndependent() {
		if a, err := rightsizing.NewAlgorithmA(ins); err == nil {
			cmp.RunOnline(a)
		}
	}
	if b, err := rightsizing.NewAlgorithmB(ins); err == nil {
		cmp.RunOnline(b)
	}
	if c, err := rightsizing.NewAlgorithmC(ins, eps); err == nil {
		cmp.RunOnline(c)
	} else {
		fmt.Printf("(Algorithm C skipped: %v)\n", err)
	}
	for _, mk := range []func(*rightsizing.Instance) (rightsizing.Online, error){
		rightsizing.NewAllOn,
		rightsizing.NewLoadTracking,
		rightsizing.NewSkiRental,
	} {
		if alg, err := mk(ins); err == nil {
			cmp.RunOnline(alg)
		}
	}
	if ins.D() == 1 {
		if l, err := rightsizing.NewLCP(ins); err == nil {
			cmp.RunOnline(l)
		}
	}
	fmt.Println(cmp.Table())
}
