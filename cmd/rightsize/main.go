// Command rightsize solves data-center right-sizing workloads: either a
// JSON instance file or a named scenario from the engine's registry.
//
// Usage:
//
//	rightsize -input instance.json [-mode optimal|approx|online-a|online-b|online-c]
//	          [-eps 0.5] [-schedule] [-render] [-compare]
//	rightsize -scenario diurnal [-seed 1] [-format text|json|csv|markdown] [-render]
//	rightsize -suite [-workers N] [-seed 1] [-format text|json|csv|markdown]
//	rightsize -list
//
// Modes (with -input):
//
//	optimal   exact offline optimum (Section 4.1; default)
//	approx    (1+ε)-approximation (Section 4.2)
//	online-a  Algorithm A (time-independent costs, Section 2)
//	online-b  Algorithm B (Section 3.1)
//	online-c  Algorithm C (Section 3.2, uses -eps)
//
// -schedule prints the slot-by-slot configurations; -compare runs every
// applicable algorithm through the scenario engine and prints a table.
// -scenario runs one registered scenario; -suite runs the whole registry
// concurrently (deterministic for any -workers value).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	rightsizing "repro"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rightsize: ")

	input := flag.String("input", "", "path to an instance JSON file")
	mode := flag.String("mode", "optimal", "optimal | approx | online-a | online-b | online-c")
	eps := flag.Float64("eps", 0.5, "accuracy parameter for approx and online-c")
	printSched := flag.Bool("schedule", false, "print the slot-by-slot schedule")
	render := flag.Bool("render", false, "draw the schedule as a stacked ASCII chart")
	compare := flag.Bool("compare", false, "run all applicable algorithms and print a table")
	scenario := flag.String("scenario", "", "run a named scenario from the registry")
	suite := flag.Bool("suite", false, "run every registered scenario")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	seed := flag.Int64("seed", 1, "scenario seed (workload randomness)")
	workers := flag.Int("workers", rightsizing.AutoWorkers, "suite worker pool size (-1 = one per CPU)")
	format := flag.String("format", "text", "result format: text | json | csv | markdown")
	flag.Parse()

	switch {
	case *list:
		listScenarios()
	case *suite:
		runScenarios(rightsizing.Scenarios(), *seed, *workers, *format, false)
	case *scenario != "":
		sc, ok := rightsizing.LookupScenario(*scenario)
		if !ok {
			log.Fatalf("unknown scenario %q; -list shows the registry", *scenario)
		}
		runScenarios([]rightsizing.Scenario{sc}, *seed, *workers, *format, *render)
	case *input != "":
		runInstanceFile(*input, *mode, *eps, *printSched, *render, *compare)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func listScenarios() {
	scs := rightsizing.Scenarios()
	width := 0
	for _, sc := range scs {
		if len(sc.Name) > width {
			width = len(sc.Name)
		}
	}
	for _, sc := range scs {
		fmt.Printf("%-*s  %s\n", width, sc.Name, sc.Doc)
	}
}

// runScenarios routes one or all scenarios through the engine's suite
// runner and the selected result sink.
func runScenarios(scs []rightsizing.Scenario, seed int64, workers int, format string, render bool) {
	sink, err := rightsizing.NewSink(format)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rightsizing.RunSuite(scs, rightsizing.SuiteOptions{
		Workers:       workers,
		Seed:          seed,
		KeepSchedules: render,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Emit(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	if render {
		for i := range res.Results {
			r := &res.Results[i]
			sc, _ := rightsizing.LookupScenario(r.Scenario)
			ins := sc.Instance(r.Seed)
			fmt.Printf("\noptimal schedule for %s:\n", r.Scenario)
			fmt.Print(sim.RenderSchedule(ins, r.Schedules[0], 96))
		}
	}
}

func runInstanceFile(input, mode string, eps float64, printSched, render, compare bool) {
	f, err := os.Open(input)
	if err != nil {
		log.Fatal(err)
	}
	ins, err := rightsizing.ParseInstance(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d server types, %d time slots\n", ins.D(), ins.T())

	if compare {
		runComparison(ins, eps)
		return
	}

	var sched rightsizing.Schedule
	switch mode {
	case "optimal":
		res, err := rightsizing.SolveOptimal(ins)
		if err != nil {
			log.Fatal(err)
		}
		sched = res.Schedule
		fmt.Printf("optimal cost %.4f (operating %.4f, switching %.4f), lattice %d\n",
			res.Cost(), res.Breakdown.Operating, res.Breakdown.Switching, res.LatticeSize)
	case "approx":
		res, err := rightsizing.SolveApprox(ins, eps)
		if err != nil {
			log.Fatal(err)
		}
		sched = res.Schedule
		fmt.Printf("(1+%g)-approx cost %.4f (operating %.4f, switching %.4f), lattice %d\n",
			eps, res.Cost(), res.Breakdown.Operating, res.Breakdown.Switching, res.LatticeSize)
	case "online-a", "online-b", "online-c":
		var alg rightsizing.Online
		switch mode {
		case "online-a":
			alg, err = rightsizing.NewAlgorithmA(ins)
		case "online-b":
			alg, err = rightsizing.NewAlgorithmB(ins)
		default:
			alg, err = rightsizing.NewAlgorithmC(ins, eps)
		}
		if err != nil {
			log.Fatal(err)
		}
		sched = rightsizing.Run(alg)
		m := rightsizing.Measure(ins, sched, alg.Name(), 0)
		fmt.Printf("%s cost %.4f (operating %.4f, switching %.4f)\n",
			m.Name, m.Total, m.Operating, m.Switching)
		if opt, err := rightsizing.OptimalCost(ins); err == nil {
			fmt.Printf("hindsight optimum %.4f -> ratio %.4f\n", opt, m.Total/opt)
		}
	default:
		log.Fatalf("unknown mode %q", mode)
	}

	if err := ins.Feasible(sched); err != nil {
		log.Fatalf("internal error: produced schedule is infeasible: %v", err)
	}
	if printSched {
		fmt.Println("\nslot  demand  configuration")
		for t := 1; t <= ins.T(); t++ {
			fmt.Printf("%4d  %6.2f  %v\n", t, ins.Lambda[t-1], sched[t-1])
		}
	}
	if render {
		fmt.Println()
		fmt.Print(sim.RenderSchedule(ins, sched, 96))
	}
}

// runComparison measures every applicable algorithm on the instance as a
// one-off engine scenario (OPT solved once, ε from the command line for
// Algorithm C).
func runComparison(ins *rightsizing.Instance, eps float64) {
	sc := rightsizing.Scenario{
		Name:     "instance",
		Instance: func(int64) *rightsizing.Instance { return ins },
		Algorithms: []rightsizing.AlgSpec{
			rightsizing.SpecAlgorithmA(),
			rightsizing.SpecAlgorithmB(),
			rightsizing.SpecAlgorithmC(eps),
			rightsizing.SpecAllOn(),
			rightsizing.SpecLoadTracking(),
			rightsizing.SpecSkiRental(),
			rightsizing.SpecLCP(),
		},
	}
	res, err := rightsizing.EvaluateScenario(sc, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	for _, s := range res.Skipped {
		fmt.Printf("(skipped %s)\n", s)
	}
}
