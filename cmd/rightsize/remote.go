package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	rightsizing "repro"
	"repro/internal/serve"
)

// runStreamRemote is -stream -serve-url: the same demand stream (stdin
// lines or a replayed trace) drives a rightsized daemon through its HTTP
// API instead of an in-process session. Advisories print identically, so
// the two paths are drop-in replacements for each other. With batch > 1
// demands are sent as JSON arrays — one HTTP round-trip per batch.
func runStreamRemote(baseURL, alg, fleet, input string, seed int64, replay bool, interval time.Duration, checkpointPath, resumePath string, batch int) {
	cl := &client{base: strings.TrimRight(baseURL, "/")}

	req := serve.OpenRequest{Alg: alg}
	var trace []float64
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			log.Fatal(err)
		}
		ins, err := rightsizing.ParseInstance(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		types, err := rightsizing.EncodeFleet(ins.Types)
		if err != nil {
			log.Fatalf("-input fleet is not servable: %v (use a -fleet scenario for time-dependent templates)", err)
		}
		req.Fleet.Types = types
		trace = ins.Lambda
	} else {
		sc, ok := rightsizing.LookupScenario(fleet)
		if !ok {
			log.Fatalf("unknown fleet scenario %q; -list shows the registry", fleet)
		}
		req.Fleet.Scenario = fleet
		req.Fleet.Seed = seed
		trace = sc.Instance(seed).Lambda
	}

	if resumePath != "" {
		// The checkpoint names the algorithm; an explicit -alg alongside
		// -resume is a conflict, not a silent override (same rule as the
		// in-process path).
		algSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "alg" {
				algSet = true
			}
		})
		if algSet {
			log.Fatal("-alg cannot be combined with -resume: the checkpoint determines the algorithm")
		}
		data, err := os.ReadFile(resumePath)
		if err != nil {
			log.Fatal(err)
		}
		var cp rightsizing.SessionCheckpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			log.Fatal(err)
		}
		req.Alg = ""
		req.Checkpoint = &cp
	}

	var info serve.SessionInfo
	if err := cl.call("POST", "/v1/sessions", req, &info); err != nil {
		log.Fatal(err)
	}
	if req.Checkpoint != nil {
		fmt.Fprintf(os.Stderr, "rightsize: resumed %s on %s at slot %d (cum cost %.4f)\n",
			info.Name, cl.base, info.Fed, info.CumCost)
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(advs ...rightsizing.Advisory) {
		for _, adv := range advs {
			if err := enc.Encode(adv); err != nil {
				log.Fatal(err)
			}
		}
	}
	pushPath := "/v1/sessions/" + info.ID + "/push"
	pending := make([]serve.PushRequest, 0, batch)
	flush := func() {
		switch {
		case len(pending) == 0:
		case len(pending) == 1 && batch == 1:
			// The single-slot wire form: object in, object out.
			var res serve.PushResult
			if err := cl.call("POST", pushPath, pending[0], &res); err != nil {
				log.Fatal(err)
			}
			if res.Decided {
				emit(*res.Advisory)
			}
		default:
			// The batch wire form: array in, array out.
			var results []serve.PushResult
			if err := cl.call("POST", pushPath, pending, &results); err != nil {
				log.Fatal(err)
			}
			for _, res := range results {
				if res.Decided {
					emit(*res.Advisory)
				}
			}
		}
		pending = pending[:0]
	}
	push := func(lambda float64) {
		pending = append(pending, serve.PushRequest{Lambda: lambda})
		if len(pending) >= batch {
			flush()
		}
	}

	if replay {
		// A resumed session already holds its checkpointed prefix; replay
		// only the remainder of the trace so slots are not fed twice.
		if done := info.Fed; done < len(trace) {
			trace = trace[done:]
		} else {
			trace = nil
		}
		for _, lambda := range trace {
			push(lambda)
			if interval > 0 && len(pending) == 0 { // a batch just flushed
				time.Sleep(interval)
			}
		}
	} else {
		scan := bufio.NewScanner(os.Stdin)
		for scan.Scan() {
			line := strings.TrimSpace(scan.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			lambda, err := strconv.ParseFloat(line, 64)
			if err != nil {
				log.Fatalf("bad demand line %q: %v", line, err)
			}
			push(lambda)
		}
		if err := scan.Err(); err != nil {
			log.Fatal(err)
		}
	}
	flush()

	if checkpointPath != "" {
		var snap serve.Snapshot
		if err := cl.call("POST", "/v1/sessions/"+info.ID+"/checkpoint", nil, &snap); err != nil {
			log.Fatal(err)
		}
		// The local file format stays the stream checkpoint, so a remote
		// checkpoint resumes in-process (and vice versa).
		data, err := json.MarshalIndent(snap.Checkpoint, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(checkpointPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rightsize: checkpoint written to %s\n", checkpointPath)
	}

	var closed serve.CloseResult
	if err := cl.call("DELETE", "/v1/sessions/"+info.ID, nil, &closed); err != nil {
		log.Fatal(err)
	}
	emit(closed.Advisories...)
	fmt.Fprintf(os.Stderr, "rightsize: %s advised %d slots via %s, total cost %.4f\n",
		closed.Info.Name, closed.Info.Decided, cl.base, closed.Info.CumCost)
}

// client is a minimal JSON-over-HTTP caller for the rightsized API.
type client struct {
	base string
	http http.Client
}

func (c *client) call(method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(data, into)
}
