package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/stream"
)

// TestKillRecovery is the real-process crash test: it builds the
// rightsized binary, runs it with -wal-dir and -wal-sync always, drives
// HTTP sessions while counting every acknowledged (2xx) push, SIGKILLs
// the daemon mid-load, restarts it over the same directories, and
// asserts the durability contract the flags advertise — no acknowledged
// slot is lost, and every recovered session continues bit-identically
// to an uninterrupted serial feed.
func TestKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real daemon process")
	}
	bin := buildDaemon(t)
	work := t.TempDir()
	snapDir := filepath.Join(work, "snaps")
	walDir := filepath.Join(work, "wal")

	const sessions = 3
	sc, ok := engine.Lookup("quickstart")
	if !ok {
		t.Fatal("quickstart scenario missing")
	}
	ins := sc.Instance(1)

	d := startDaemon(t, bin, snapDir, walDir)

	// One pusher per session feeds slots one at a time, counting each
	// 2xx ack. A transport error is the daemon dying underneath us —
	// expected, that is the test — so the pusher just stops.
	ids := make([]string, sessions)
	var acked [sessions]atomic.Int64
	var wg sync.WaitGroup
	var totalAcked atomic.Int64
	for i := 0; i < sessions; i++ {
		ids[i] = fmt.Sprintf("kill-%d", i)
		openSession(t, d.url, ids[i])
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for slot := 0; ; slot++ {
				lam := ins.Lambda[slot%len(ins.Lambda)]
				body, _ := json.Marshal(serve.PushRequest{Lambda: lam})
				resp, err := http.Post(d.url+"/v1/sessions/"+ids[i]+"/push", "application/json", bytes.NewReader(body))
				if err != nil {
					return // daemon is gone
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 300 {
					t.Errorf("session %s push %d: HTTP %d", ids[i], slot+1, resp.StatusCode)
					return
				}
				acked[i].Add(1)
				totalAcked.Add(1)
			}
		}(i)
	}

	// Let every session bank some acknowledged slots, then kill the
	// process dead — no drain, no checkpoint, the hard-stop a power cut
	// or OOM kill delivers.
	deadline := time.Now().Add(20 * time.Second)
	for totalAcked.Load() < sessions*5 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d slots acked before deadline", totalAcked.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	wg.Wait()
	err := d.cmd.Wait()
	if ee, ok := err.(*exec.ExitError); !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("daemon exit = %v, want SIGKILL", err)
	}
	if t.Failed() {
		t.Fatalf("pushes failed before the kill\ndaemon log:\n%s", d.logs())
	}

	// Restart over the same dirs: startup recovery folds each WAL into
	// the snapshot store before traffic is served.
	d2 := startDaemon(t, bin, snapDir, walDir)
	for i := 0; i < sessions; i++ {
		var info serve.SessionInfo
		getJSON(t, d2.url+"/v1/sessions/"+ids[i], &info)
		want := int(acked[i].Load())
		if info.Fed < want {
			t.Fatalf("session %s recovered with fed=%d, lost %d acknowledged slot(s)\nrecovery log:\n%s",
				ids[i], info.Fed, want-info.Fed, d2.logs())
		}
		// fed may exceed acked by the in-flight push the kill cut off —
		// it reached the WAL, its ack did not reach us. Never by more.
		if info.Fed > want+1 {
			t.Fatalf("session %s recovered with fed=%d, acked only %d", ids[i], info.Fed, want)
		}

		// Bit-identical continuation: an uninterrupted serial session fed
		// the same prefix agrees exactly on decided count and cumulative
		// cost, and the recovered session keeps accepting from fed+1.
		ref, err := engine.OpenSession("alg-b", ins.Types, stream.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var adv stream.Advisory
		for s := 0; s < info.Fed; s++ {
			if _, err := ref.Push(model.SlotInput{Lambda: ins.Lambda[s%len(ins.Lambda)]}, &adv); err != nil {
				t.Fatal(err)
			}
		}
		if info.Decided != ref.Decided() || info.CumCost != ref.CumCost() {
			t.Fatalf("session %s recovered at decided=%d cost=%v, serial feed of %d slots gives decided=%d cost=%v",
				ids[i], info.Decided, info.CumCost, info.Fed, ref.Decided(), ref.CumCost())
		}
		next := serve.PushRequest{Lambda: ins.Lambda[info.Fed%len(ins.Lambda)]}
		body, _ := json.Marshal(next)
		resp, err := http.Post(d2.url+"/v1/sessions/"+ids[i]+"/push", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("session %s push after recovery: HTTP %d", ids[i], resp.StatusCode)
		}
	}
	if !strings.Contains(d2.logs(), "wal recovery: recovered") {
		t.Fatalf("restart did not log a recovery report:\n%s", d2.logs())
	}
	d2.stop(t)
}

// daemon is one running rightsized process under test.
type daemon struct {
	cmd *exec.Cmd
	url string
	out *lockedBuf
}

type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func (d *daemon) logs() string { return d.out.String() }

// stop shuts the daemon down gracefully and waits for it.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\n%s", err, d.logs())
	}
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rightsized")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on a fresh loopback port with the WAL
// at full durability and waits until /v1/healthz answers.
func startDaemon(t *testing.T, bin, snapDir, walDir string) *daemon {
	t.Helper()
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	cmd := exec.Command(bin,
		"-addr", addr,
		"-snapshot-dir", snapDir,
		"-wal-dir", walDir,
		"-wal-sync", "always",
		"-idle-evict", "0",
		"-drain-timeout", "5s",
	)
	out := &lockedBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	d := &daemon{cmd: cmd, url: "http://" + addr, out: out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(d.url + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy at %s:\n%s", addr, d.logs())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// freePort grabs an ephemeral loopback port and releases it for the
// daemon to bind. The tiny reuse race is acceptable in a test.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

func openSession(t *testing.T, url, id string) {
	t.Helper()
	open := serve.OpenRequest{ID: id, Alg: "alg-b"}
	open.Fleet.Scenario = "quickstart"
	open.Fleet.Seed = 1
	body, _ := json.Marshal(open)
	resp, err := http.Post(url+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("open %s: HTTP %d", id, resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
