// Command rightsized is the right-sizing advisory daemon: it serves many
// concurrent live sessions over an HTTP JSON API, multiplexing the
// streaming core (internal/stream) behind internal/serve's session
// manager.
//
// Usage:
//
//	rightsized [-addr :8080] [-max-sessions 256] [-idle-evict 10m]
//	           [-snapshot-dir DIR] [-wal-dir DIR] [-wal-sync always]
//	           [-wal-sync-interval 100ms] [-workers N] [-shards N]
//	           [-rate N] [-burst N] [-session-rate N] [-session-burst N]
//	           [-max-inflight N] [-push-deadline D] [-drain-timeout 30s]
//	           [-stream-buffer N] [-stream-heartbeat 15s]
//
// Endpoints (see the README's "Serving" section for curl examples):
//
//	POST   /v1/sessions                 open a session {"alg": "...", "fleet": {...}}
//	GET    /v1/sessions                 list live sessions
//	GET    /v1/sessions/{id}            session state
//	POST   /v1/sessions/{id}/push       feed one slot {"lambda": 7.5} or a JSON array of slots
//	POST   /v1/sessions/{id}/checkpoint persist + return the session snapshot
//	DELETE /v1/sessions/{id}            close the session
//	GET    /v1/sessions/{id}/stream     live advisory stream (Server-Sent Events)
//	GET    /v1/algs                     the algorithm registry
//	GET    /v1/healthz                  liveness + aggregate counters
//	GET    /metrics                     Prometheus text exposition
//
// The stream endpoint pushes every advisory the session decides as an
// SSE event the moment it exists; -stream-buffer bounds each
// subscriber's backlog (a consumer that falls further behind is
// disconnected with an "end" event, reason "lagged") and
// -stream-heartbeat paces comment keepalives through idle stretches.
// /metrics exports the same counters as /v1/healthz plus per-shard
// occupancy, stream subscriptions, solver memo hit rates, and the full
// push-latency histogram; see the README's "Observability" section.
//
// Sessions idle longer than -idle-evict are checkpointed to the snapshot
// store (-snapshot-dir for on-disk JSON, in-memory otherwise) and
// transparently resumed by their next push. On SIGINT/SIGTERM the daemon
// drains in-flight requests and checkpoints every live session, so with
// -snapshot-dir a restart resumes exactly where it stopped; -drain-timeout
// bounds the whole drain, abandoning stragglers rather than hanging
// shutdown on a wedged store.
//
// -wal-dir additionally write-ahead-logs every accepted slot before the
// algorithm sees it, closing the crash window a graceful drain cannot:
// after a SIGKILL or power cut the next start scans the WAL dir, rebuilds
// each session as snapshot + log delta, and re-checkpoints it — with
// -wal-sync always, no acknowledged slot is ever lost. -wal-sync interval
// groups fsyncs at -wal-sync-interval; -wal-sync never leaves durability
// to the page cache (survives process death, not power loss). See the
// README's "Durability" section for the full survives-what matrix.
//
// Overload control (see the README's "Reliability" section): -rate/-burst
// bound admitted slots/sec globally, -session-rate/-session-burst per
// session, and -max-inflight caps concurrent pushes. Requests beyond a
// limit are shed with 429/503 and a Retry-After header. -push-deadline
// bounds each push end to end, answering 504 instead of stalling.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rightsized: ")

	addr := flag.String("addr", ":8080", "listen address")
	maxSessions := flag.Int("max-sessions", 256, "live session limit (evicted snapshots don't count)")
	idleEvict := flag.Duration("idle-evict", 10*time.Minute, "evict sessions idle this long (0 disables the janitor)")
	snapshotDir := flag.String("snapshot-dir", "", "persist evicted sessions as JSON here (default: in-memory)")
	walDir := flag.String("wal-dir", "", "write-ahead-log every accepted slot here; recovered on startup (default: off)")
	walSync := flag.String("wal-sync", "always", "WAL append durability: always | interval | never")
	walSyncInterval := flag.Duration("wal-sync-interval", 0, "fsync cadence for -wal-sync interval (0 = 100ms)")
	workers := flag.Int("workers", 0, "per-session solver worker pool size (0 = serial)")
	shards := flag.Int("shards", 0, "session registry lock stripes, rounded up to a power of two (0 = one per CPU)")
	rate := flag.Float64("rate", 0, "admitted slots/sec across all sessions, shed with 429 beyond (0 = unlimited)")
	burst := flag.Int("burst", 0, "global rate-limit burst capacity (0 = one second of -rate)")
	sessionRate := flag.Float64("session-rate", 0, "admitted slots/sec per session (0 = unlimited)")
	sessionBurst := flag.Int("session-burst", 0, "per-session burst capacity (0 = one second of -session-rate)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent push budget, shed with 503 beyond (0 = unlimited)")
	pushDeadline := flag.Duration("push-deadline", 0, "per-push deadline, answered with 504 past it (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "overall shutdown-drain deadline; stragglers are logged and abandoned (0 = wait forever)")
	streamBuffer := flag.Int("stream-buffer", 0, "per-subscriber advisory backlog before a lagging stream is dropped (0 = 256)")
	streamHeartbeat := flag.Duration("stream-heartbeat", 0, "SSE keepalive comment cadence on idle streams (0 = 15s)")
	flag.Parse()

	opts := serve.Options{
		MaxSessions: *maxSessions, Workers: *workers, Shards: *shards,
		GlobalRate: *rate, GlobalBurst: *burst,
		SessionRate: *sessionRate, SessionBurst: *sessionBurst,
		MaxInFlight: *maxInflight, PushDeadline: *pushDeadline,
		StreamBuffer: *streamBuffer, StreamHeartbeat: *streamHeartbeat,
	}
	if *snapshotDir != "" {
		store, err := serve.NewDirStore(*snapshotDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = store
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			log.Fatal(err)
		}
		opts.WALDir = *walDir
		opts.WALSync = policy
		opts.WALSyncInterval = *walSyncInterval
	}
	m := serve.NewManager(opts)

	// Fold crash residue back into the snapshot store before any traffic:
	// every leftover WAL becomes a resumable snapshot (or is quarantined).
	if *walDir != "" {
		rep, err := m.RecoverWAL()
		if err != nil {
			log.Fatalf("wal recovery: %v", err)
		}
		if rep.Sessions > 0 || rep.Corrupt > 0 || rep.TornTails > 0 || len(rep.Failed) > 0 {
			log.Printf("wal recovery: %s", rep)
		}
		for _, id := range rep.Failed {
			log.Printf("wal recovery: session %q failed; log kept for the next start", id)
		}
	}

	// The janitor turns the idle-evict policy into store traffic: every
	// quarter period it sheds sessions whose last push is at least one
	// period old, bounding resident algorithm state by activity, not by
	// session count.
	stopJanitor := make(chan struct{})
	if *idleEvict > 0 {
		go func() {
			tick := time.NewTicker(max(*idleEvict/4, time.Second))
			defer tick.Stop()
			for {
				select {
				case <-stopJanitor:
					return
				case <-tick.C:
					if n, err := m.EvictIdle(*idleEvict); err != nil {
						log.Printf("idle eviction: %v", err)
					} else if n > 0 {
						log.Printf("evicted %d idle session(s)", n)
					}
				}
			}
		}()
	}

	// The WAL flusher makes the interval policy's loss bound hold on idle
	// sessions: Append only fsyncs when appends arrive, so without a
	// background sweep a session whose pushes stop would keep its
	// unsynced tail dirty indefinitely.
	stopFlusher := make(chan struct{})
	if opts.WALDir != "" && opts.WALSync == wal.SyncInterval {
		cadence := opts.WALSyncInterval
		if cadence <= 0 {
			cadence = 100 * time.Millisecond
		}
		go func() {
			tick := time.NewTicker(cadence)
			defer tick.Stop()
			for {
				select {
				case <-stopFlusher:
					return
				case <-tick.C:
					if _, err := m.SyncWALs(); err != nil {
						log.Printf("wal flush: %v", err)
					}
				}
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(m)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (max %d sessions, idle-evict %v)", *addr, *maxSessions, *idleEvict)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	close(stopJanitor)
	close(stopFlusher)

	// One deadline bounds the whole drain — in-flight HTTP requests plus
	// the checkpoint of every live session. Without it a single wedged
	// store write would block shutdown forever; with it stragglers are
	// logged and abandoned (a durable store still resumes every session
	// that did checkpoint).
	drainCtx := context.Background()
	if *drainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, *drainTimeout)
		defer cancel()
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	closed := make(chan error, 1)
	go func() { closed <- m.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			log.Printf("checkpointing live sessions: %v", err)
		}
	case <-drainCtx.Done():
		log.Printf("drain timeout %v elapsed; abandoning %d unsaved session(s)",
			*drainTimeout, m.Metrics().LiveSessions)
	}
	met := m.Metrics()
	log.Printf("served %d slots across %d sessions (%d resumed, %d evicted)",
		met.SlotsPushed, met.SessionsOpened, met.SessionsResumed, met.SessionsEvicted)
}
