// Command tracegen generates synthetic workload traces and complete
// instance files for cmd/rightsize — including its stream mode.
//
// Usage:
//
//	tracegen -kind diurnal -T 48 -peak 16 -base 2 -period 24 > trace.json
//	tracegen -kind bursty -T 96 -peak 20 -base 3 -prob 0.15 -seed 7 -instance > instance.json
//	tracegen -scenario price-modulated -seed 3 > instance.json
//	tracegen -list
//
// With -scenario the output is the named registry scenario's instance,
// serialised as JSON — any workload registered with the engine becomes a
// file cmd/rightsize can solve or stream-replay. With -instance the
// output is a full two-type (cpu+gpu) instance JSON; otherwise it is a
// bare array of job volumes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	rightsizing "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	kind := flag.String("kind", "diurnal", "diurnal | bursty | steps | onoff | walk")
	T := flag.Int("T", 48, "number of time slots")
	base := flag.Float64("base", 2, "baseline load")
	peak := flag.Float64("peak", 16, "peak load")
	period := flag.Int("period", 24, "diurnal period in slots")
	noise := flag.Float64("noise", 0, "diurnal noise fraction")
	prob := flag.Float64("prob", 0.1, "burst probability per slot")
	dwell := flag.Int("dwell", 6, "steps: dwell per level; onoff: phase length")
	seed := flag.Int64("seed", 1, "random seed")
	asInstance := flag.Bool("instance", false, "emit a complete two-type instance JSON")
	scenario := flag.String("scenario", "", "emit a registered scenario's instance JSON")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	flag.Parse()

	if *list {
		for _, sc := range rightsizing.Scenarios() {
			fmt.Printf("%s  %s\n", sc.Name, sc.Doc)
		}
		return
	}
	if *scenario != "" {
		sc, ok := rightsizing.LookupScenario(*scenario)
		if !ok {
			log.Fatalf("unknown scenario %q; -list shows the registry", *scenario)
		}
		ins := sc.Instance(*seed)
		if err := ins.Validate(); err != nil {
			log.Fatal(err)
		}
		if err := rightsizing.EncodeInstance(os.Stdout, ins); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: scenario %s, %d types, %d slots\n",
			sc.Name, ins.D(), ins.T())
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	var trace []float64
	switch *kind {
	case "diurnal":
		if *noise > 0 {
			trace = rightsizing.DiurnalNoisy(rng, *T, *base, *peak, *period, *noise)
		} else {
			trace = rightsizing.Diurnal(*T, *base, *peak, *period, 0)
		}
	case "bursty":
		trace = rightsizing.Bursty(rng, *T, *base, *peak, *prob)
	case "steps":
		trace = rightsizing.Steps(*T, []float64{*base, *peak}, *dwell)
	case "onoff":
		trace = rightsizing.OnOff(*T, *peak, *base, *dwell, *dwell)
	case "walk":
		trace = rightsizing.RandomWalk(rng, *T, (*base+*peak)/2, (*peak-*base)/10, *base, *peak)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	if !*asInstance {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(trace); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Size a two-type fleet that covers the peak with ~25% headroom.
	cpus := int(*peak*0.75) + 1
	gpus := int(*peak/4*0.5) + 1
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "cpu", Count: cpus, SwitchCost: 2, MaxLoad: 1,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1, Rate: 1}}},
			{Name: "gpu", Count: gpus, SwitchCost: 12, MaxLoad: 4,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 3, Rate: 0.4}}},
		},
		Lambda: trace,
	}
	if err := ins.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := rightsizing.EncodeInstance(os.Stdout, ins); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d slots, %d cpus, %d gpus\n", *T, cpus, gpus)
}
