package rightsizing

import (
	"io"

	"repro/internal/model"
)

// The JSON instance codec lives in internal/model (shared with the
// serving layer's fleet descriptions); the historical names are
// re-exported here.

// InstanceJSON is the on-disk description of a problem instance consumed
// by cmd/rightsize and produced by EncodeInstance. Time-dependence can be
// expressed per type either with an explicit per-slot cost list ("costs")
// or a base cost plus per-slot scale factors ("cost" + "scale").
type InstanceJSON = model.InstanceJSON

// ServerTypeJSON mirrors ServerType.
type ServerTypeJSON = model.ServerTypeJSON

// CostFuncJSON is a tagged union of the cost-function families.
type CostFuncJSON = model.CostFuncJSON

// ParseInstance decodes and validates an instance from JSON.
func ParseInstance(r io.Reader) (*Instance, error) { return model.ParseInstance(r) }

// EncodeInstance writes an instance as JSON. Cost profiles round-trip for
// the built-in families; opaque user-defined CostFuncs are rejected.
func EncodeInstance(w io.Writer, ins *Instance) error { return model.EncodeInstance(w, ins) }

// EncodeFleet describes a fleet template portably (static cost profiles
// of the built-in families only) — the form the serving layer's HTTP API
// accepts for inline fleets.
func EncodeFleet(types []ServerType) ([]ServerTypeJSON, error) { return model.EncodeFleet(types) }

// FleetTemplate materialises a streaming fleet template from its portable
// description (the inverse of EncodeFleet).
func FleetTemplate(types []ServerTypeJSON) ([]ServerType, error) {
	return model.FleetTemplate(types)
}
