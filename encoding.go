package rightsizing

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/costfn"
	"repro/internal/model"
)

// InstanceJSON is the on-disk description of a problem instance consumed
// by cmd/rightsize and produced by EncodeInstance. Time-dependence can be
// expressed per type either with an explicit per-slot cost list ("costs")
// or a base cost plus per-slot scale factors ("cost" + "scale").
type InstanceJSON struct {
	Types  []ServerTypeJSON `json:"types"`
	Lambda []float64        `json:"lambda"`
	Counts [][]int          `json:"counts,omitempty"`
}

// ServerTypeJSON mirrors ServerType.
type ServerTypeJSON struct {
	Name       string         `json:"name"`
	Count      int            `json:"count"`
	SwitchCost float64        `json:"switchCost"`
	MaxLoad    float64        `json:"maxLoad"`
	Cost       *CostFuncJSON  `json:"cost,omitempty"`
	Costs      []CostFuncJSON `json:"costs,omitempty"`
	Scale      []float64      `json:"scale,omitempty"`
}

// CostFuncJSON is a tagged union of the cost-function families.
type CostFuncJSON struct {
	Kind string `json:"kind"` // "constant" | "affine" | "power" | "piecewise"

	// constant
	C float64 `json:"c,omitempty"`
	// affine / power
	Idle float64 `json:"idle,omitempty"`
	Rate float64 `json:"rate,omitempty"`
	Coef float64 `json:"coef,omitempty"`
	Exp  float64 `json:"exp,omitempty"`
	// piecewise
	Z []float64 `json:"z,omitempty"`
	V []float64 `json:"v,omitempty"`
}

// Func materialises the described cost function.
func (c *CostFuncJSON) Func() (CostFunc, error) {
	switch c.Kind {
	case "constant":
		return costfn.Constant{C: c.C}, nil
	case "affine":
		return costfn.Affine{Idle: c.Idle, Rate: c.Rate}, nil
	case "power":
		return costfn.Power{Idle: c.Idle, Coef: c.Coef, Exp: c.Exp}, nil
	case "piecewise":
		return costfn.NewPiecewiseLinear(c.Z, c.V)
	default:
		return nil, fmt.Errorf("rightsizing: unknown cost kind %q", c.Kind)
	}
}

// ParseInstance decodes and validates an instance from JSON.
func ParseInstance(r io.Reader) (*Instance, error) {
	var spec InstanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("rightsizing: decoding instance: %w", err)
	}
	return spec.Instance()
}

// Instance materialises and validates the described instance.
func (spec *InstanceJSON) Instance() (*Instance, error) {
	ins := &Instance{
		Lambda: spec.Lambda,
		Counts: spec.Counts,
	}
	for i, st := range spec.Types {
		profile, err := st.profile(len(spec.Lambda))
		if err != nil {
			return nil, fmt.Errorf("rightsizing: type %d (%s): %w", i, st.Name, err)
		}
		ins.Types = append(ins.Types, ServerType{
			Name:       st.Name,
			Count:      st.Count,
			SwitchCost: st.SwitchCost,
			MaxLoad:    st.MaxLoad,
			Cost:       profile,
		})
	}
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return ins, nil
}

func (st *ServerTypeJSON) profile(T int) (CostProfile, error) {
	switch {
	case st.Cost != nil && len(st.Costs) > 0:
		return nil, fmt.Errorf("specify either cost or costs, not both")
	case len(st.Costs) > 0:
		if len(st.Costs) != T {
			return nil, fmt.Errorf("costs has %d entries, want %d", len(st.Costs), T)
		}
		fs := make([]CostFunc, T)
		for t, c := range st.Costs {
			f, err := c.Func()
			if err != nil {
				return nil, fmt.Errorf("slot %d: %w", t+1, err)
			}
			fs[t] = f
		}
		return Varying{Fs: fs}, nil
	case st.Cost != nil:
		f, err := st.Cost.Func()
		if err != nil {
			return nil, err
		}
		if len(st.Scale) > 0 {
			if len(st.Scale) != T {
				return nil, fmt.Errorf("scale has %d entries, want %d", len(st.Scale), T)
			}
			return Modulated{F: f, Scale: st.Scale}, nil
		}
		return Static{F: f}, nil
	default:
		return nil, fmt.Errorf("missing cost specification")
	}
}

// EncodeInstance writes an instance as JSON. Cost profiles round-trip for
// the built-in families; opaque user-defined CostFuncs are rejected.
func EncodeInstance(w io.Writer, ins *Instance) error {
	spec := InstanceJSON{Lambda: ins.Lambda, Counts: ins.Counts}
	for i, st := range ins.Types {
		stj := ServerTypeJSON{
			Name:       st.Name,
			Count:      st.Count,
			SwitchCost: st.SwitchCost,
			MaxLoad:    st.MaxLoad,
		}
		switch p := st.Cost.(type) {
		case model.Static:
			cj, err := encodeFunc(p.F)
			if err != nil {
				return fmt.Errorf("rightsizing: type %d: %w", i, err)
			}
			stj.Cost = &cj
		case model.Modulated:
			cj, err := encodeFunc(p.F)
			if err != nil {
				return fmt.Errorf("rightsizing: type %d: %w", i, err)
			}
			stj.Cost = &cj
			stj.Scale = p.Scale
		case model.Varying:
			for t, f := range p.Fs {
				cj, err := encodeFunc(f)
				if err != nil {
					return fmt.Errorf("rightsizing: type %d slot %d: %w", i, t+1, err)
				}
				stj.Costs = append(stj.Costs, cj)
			}
		default:
			return fmt.Errorf("rightsizing: type %d: cannot encode cost profile %T", i, st.Cost)
		}
		spec.Types = append(spec.Types, stj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

func encodeFunc(f CostFunc) (CostFuncJSON, error) {
	switch v := f.(type) {
	case costfn.Constant:
		return CostFuncJSON{Kind: "constant", C: v.C}, nil
	case costfn.Affine:
		return CostFuncJSON{Kind: "affine", Idle: v.Idle, Rate: v.Rate}, nil
	case costfn.Power:
		return CostFuncJSON{Kind: "power", Idle: v.Idle, Coef: v.Coef, Exp: v.Exp}, nil
	default:
		return CostFuncJSON{}, fmt.Errorf("cannot encode cost function %T", f)
	}
}
