package rightsizing

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const sampleJSON = `{
  "types": [
    {"name": "cpu", "count": 4, "switchCost": 2, "maxLoad": 1,
     "cost": {"kind": "affine", "idle": 1, "rate": 1}},
    {"name": "gpu", "count": 2, "switchCost": 8, "maxLoad": 4,
     "cost": {"kind": "power", "idle": 3, "coef": 0.5, "exp": 2}}
  ],
  "lambda": [1, 4, 2, 0]
}`

func TestParseInstance(t *testing.T) {
	ins, err := ParseInstance(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if ins.D() != 2 || ins.T() != 4 {
		t.Fatalf("D=%d T=%d", ins.D(), ins.T())
	}
	if ins.Types[1].Cost.At(1).Value(2) != 3+0.5*4 {
		t.Error("power cost decoded wrong")
	}
	if _, err := SolveOptimal(ins); err != nil {
		t.Fatalf("decoded instance unsolvable: %v", err)
	}
}

func TestParseInstanceVariants(t *testing.T) {
	perSlot := `{
	  "types": [{"name": "a", "count": 1, "switchCost": 1, "maxLoad": 2,
	    "costs": [{"kind": "constant", "c": 1}, {"kind": "constant", "c": 5}]}],
	  "lambda": [1, 1]
	}`
	ins, err := ParseInstance(strings.NewReader(perSlot))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Types[0].Cost.At(2).Value(0) != 5 {
		t.Error("per-slot costs decoded wrong")
	}

	scaled := `{
	  "types": [{"name": "a", "count": 1, "switchCost": 1, "maxLoad": 2,
	    "cost": {"kind": "constant", "c": 2}, "scale": [1, 0.5]}],
	  "lambda": [1, 1]
	}`
	ins, err = ParseInstance(strings.NewReader(scaled))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Types[0].Cost.At(2).Value(0) != 1 {
		t.Error("scale decoded wrong")
	}

	counts := `{
	  "types": [{"name": "a", "count": 2, "switchCost": 1, "maxLoad": 2,
	    "cost": {"kind": "constant", "c": 2}}],
	  "lambda": [1, 1],
	  "counts": [[2], [1]]
	}`
	ins, err = ParseInstance(strings.NewReader(counts))
	if err != nil {
		t.Fatal(err)
	}
	if !ins.TimeVarying() || ins.CountAt(2, 0) != 1 {
		t.Error("counts decoded wrong")
	}

	piecewise := `{
	  "types": [{"name": "a", "count": 1, "switchCost": 1, "maxLoad": 1,
	    "cost": {"kind": "piecewise", "z": [0, 1], "v": [1, 3]}}],
	  "lambda": [0.5]
	}`
	ins, err = ParseInstance(strings.NewReader(piecewise))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ins.Types[0].Cost.At(1).Value(0.5)-2) > 1e-12 {
		t.Error("piecewise decoded wrong")
	}
}

func TestParseInstanceErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":     `{`,
		"unknown kind": `{"types":[{"count":1,"switchCost":1,"maxLoad":1,"cost":{"kind":"cubic"}}],"lambda":[0]}`,
		"missing cost": `{"types":[{"count":1,"switchCost":1,"maxLoad":1}],"lambda":[0]}`,
		"both costs":   `{"types":[{"count":1,"switchCost":1,"maxLoad":1,"cost":{"kind":"constant"},"costs":[{"kind":"constant"}]}],"lambda":[0]}`,
		"bad costs length": `{"types":[{"count":1,"switchCost":1,"maxLoad":1,
		  "costs":[{"kind":"constant"}]}],"lambda":[0, 0]}`,
		"bad scale length": `{"types":[{"count":1,"switchCost":1,"maxLoad":1,
		  "cost":{"kind":"constant"},"scale":[1]}],"lambda":[0, 0]}`,
		"unknown field": `{"nonsense": 1, "types":[], "lambda":[]}`,
		"infeasible":    `{"types":[{"count":1,"switchCost":1,"maxLoad":1,"cost":{"kind":"constant"}}],"lambda":[5]}`,
		"bad piecewise": `{"types":[{"count":1,"switchCost":1,"maxLoad":1,"cost":{"kind":"piecewise","z":[1],"v":[1]}}],"lambda":[0]}`,
	}
	for name, js := range cases {
		if _, err := ParseInstance(strings.NewReader(js)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := twoType()
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ParseInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := OptimalCost(ins)
	b, _ := OptimalCost(back)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("round trip changed the instance: opt %g vs %g", a, b)
	}
}

func TestEncodeModulatedAndVarying(t *testing.T) {
	ins := &Instance{
		Types: []ServerType{
			{Name: "a", Count: 1, SwitchCost: 1, MaxLoad: 1,
				Cost: Modulated{F: Constant{C: 2}, Scale: []float64{1, 0.5}}},
			{Name: "b", Count: 1, SwitchCost: 1, MaxLoad: 1,
				Cost: Varying{Fs: []CostFunc{Constant{C: 1}, Constant{C: 2}}}},
		},
		Lambda: []float64{1, 1},
	}
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ParseInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Types[0].Cost.At(2).Value(0) != 1 || back.Types[1].Cost.At(2).Value(0) != 2 {
		t.Error("modulated/varying round trip broken")
	}
}

func TestEncodeRejectsOpaqueFuncs(t *testing.T) {
	ins := &Instance{
		Types: []ServerType{{
			Count: 1, SwitchCost: 1, MaxLoad: 1,
			Cost: Static{F: Scaled{F: Constant{C: 1}, Factor: 2}},
		}},
		Lambda: []float64{0},
	}
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, ins); err == nil {
		t.Error("Scaled is not a serialisable family; expected error")
	}
}
