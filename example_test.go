package rightsizing_test

import (
	"fmt"

	rightsizing "repro"
)

// ExampleSolveOptimal solves a tiny homogeneous instance exactly: with a
// high switching cost it is cheaper to hold the server through the idle
// gap than to power-cycle it (the ski-rental structure behind the paper's
// algorithms).
func ExampleSolveOptimal() {
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{{
			Name: "srv", Count: 1, SwitchCost: 10, MaxLoad: 1,
			Cost: rightsizing.Static{F: rightsizing.Constant{C: 1}},
		}},
		Lambda: []float64{1, 0, 0, 1},
	}
	res, err := rightsizing.SolveOptimal(ins)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f\n", res.Cost())
	for t, x := range res.Schedule {
		fmt.Printf("slot %d: %d active\n", t+1, x[0])
	}
	// Output:
	// cost 14
	// slot 1: 1 active
	// slot 2: 1 active
	// slot 3: 1 active
	// slot 4: 1 active
}

// ExampleNewAlgorithmA runs the (2d+1)-competitive online algorithm and
// verifies its guarantee against the hindsight optimum.
func ExampleNewAlgorithmA() {
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "slow", Count: 4, SwitchCost: 2, MaxLoad: 1,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1, Rate: 1}}},
			{Name: "fast", Count: 1, SwitchCost: 6, MaxLoad: 4,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 2, Rate: 0.5}}},
		},
		Lambda: []float64{1, 2, 4, 3, 1, 0, 2},
	}
	alg, err := rightsizing.NewAlgorithmA(ins.Types)
	if err != nil {
		panic(err)
	}
	sched := rightsizing.Run(alg, ins)
	cost := rightsizing.NewEvaluator(ins).Cost(sched).Total()
	opt, err := rightsizing.OptimalCost(ins)
	if err != nil {
		panic(err)
	}
	fmt.Printf("within guarantee: %v\n", cost <= rightsizing.RatioBoundA(ins)*opt)
	// Output:
	// within guarantee: true
}

// ExampleSolveApprox shows the (1+ε)-approximation shrinking the
// configuration lattice on a large fleet.
func ExampleSolveApprox() {
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{{
			Name: "srv", Count: 1000, SwitchCost: 3, MaxLoad: 1,
			Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1, Rate: 1}},
		}},
		Lambda: rightsizing.Diurnal(24, 50, 900, 24, 0),
	}
	res, err := rightsizing.SolveApprox(ins, 1.0) // γ = 1.5
	if err != nil {
		panic(err)
	}
	fmt.Printf("lattice %d of %d configurations\n", res.LatticeSize, 1001)
	fmt.Printf("feasible: %v\n", ins.Feasible(res.Schedule) == nil)
	// Output:
	// lattice 34 of 1001 configurations
	// feasible: true
}

// ExampleCI computes the instance constant of Theorem 13.
func ExampleCI() {
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{{
			Name: "srv", Count: 2, SwitchCost: 8, MaxLoad: 1,
			Cost: rightsizing.Static{F: rightsizing.Constant{C: 2}},
		}},
		Lambda: []float64{1, 2},
	}
	fmt.Printf("c(I) = %.2f, Algorithm B bound = %.2f\n",
		rightsizing.CI(ins), rightsizing.RatioBoundB(ins))
	// Output:
	// c(I) = 0.25, Algorithm B bound = 3.25
}

// ExampleNewAlgorithmC shows the accuracy/effort trade-off of Section 3.2:
// smaller ε tightens the guarantee but subdivides time slots more finely.
func ExampleNewAlgorithmC() {
	price := []float64{1, 3, 1, 2} // time-varying idle costs
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{{
			Name: "srv", Count: 2, SwitchCost: 4, MaxLoad: 1,
			Cost: rightsizing.Modulated{F: rightsizing.Constant{C: 1}, Scale: price},
		}},
		Lambda: []float64{1, 2, 1, 1},
	}
	alg, err := rightsizing.NewAlgorithmC(ins.Types, 0.5)
	if err != nil {
		panic(err)
	}
	sched := rightsizing.Run(alg, ins)
	fmt.Printf("guarantee: %g-competitive\n", alg.RatioBound())
	fmt.Printf("feasible: %v\n", ins.Feasible(sched) == nil)
	// Output:
	// guarantee: 3.5-competitive
	// feasible: true
}

// ExampleSolveFractional measures the integrality gap on a sub-server
// workload, where the discrete setting must run whole servers.
func ExampleSolveFractional() {
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{{
			Name: "srv", Count: 1, SwitchCost: 2, MaxLoad: 1,
			Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1, Rate: 1}},
		}},
		Lambda: []float64{0.5},
	}
	gap, discrete, frac, err := rightsizing.IntegralityGap(ins, 8, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("discrete %.1f, fractional %.1f, gap %.2f\n", discrete, frac, gap)
	// Output:
	// discrete 3.5, fractional 2.0, gap 1.75
}

// ExampleFoldDownCosts converts power-down fees into the paper's up-only
// model (remark after Equation 2).
func ExampleFoldDownCosts() {
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{{
			Name: "srv", Count: 1, SwitchCost: 3, MaxLoad: 1,
			Cost: rightsizing.Static{F: rightsizing.Constant{C: 1}},
		}},
		Lambda: []float64{1},
	}
	folded, err := rightsizing.FoldDownCosts(ins, []float64{2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("effective switching cost: %g\n", folded.Types[0].SwitchCost)
	// Output:
	// effective switching cost: 5
}
