// Streaming autoscaler: drives Algorithm B slot by slot, the way a
// production control loop would — each tick delivers the next job volume
// and the current electricity price, and the algorithm decides how many
// servers of each type stay powered. Demonstrates the online information
// model (Section 3) and time-dependent operating costs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rightsizing "repro"
)

func main() {
	const T = 48 // two days, hourly ticks
	rng := rand.New(rand.NewSource(7))

	// Demand: diurnal with bursts layered on top.
	demand := rightsizing.DiurnalNoisy(rng, T, 1, 10, 24, 0.3)

	// Electricity price: cheap at night, expensive in the evening peak —
	// a time-dependent multiplier on every operating cost (the paper's
	// f_{t,j} generality).
	price := make([]float64, T)
	for t := range price {
		hour := t % 24
		switch {
		case hour >= 18 && hour <= 21:
			price[t] = 1.8
		case hour >= 0 && hour <= 5:
			price[t] = 0.6
		default:
			price[t] = 1.0
		}
	}

	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "standard", Count: 10, SwitchCost: 4, MaxLoad: 1,
				Cost: rightsizing.Modulated{F: rightsizing.Affine{Idle: 1, Rate: 0.8}, Scale: price}},
			{Name: "highmem", Count: 4, SwitchCost: 10, MaxLoad: 3,
				Cost: rightsizing.Modulated{F: rightsizing.Affine{Idle: 2.5, Rate: 0.4}, Scale: price}},
		},
		Lambda: demand,
	}
	if err := ins.Validate(); err != nil {
		log.Fatal(err)
	}

	alg, err := rightsizing.NewAlgorithmB(ins)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tick-by-tick decisions (Algorithm B):")
	fmt.Println("hour  demand  price  standard  highmem")
	var sched rightsizing.Schedule
	for t := 1; !alg.Done(); t++ {
		x := alg.Step() // consumes exactly one tick of input
		sched = append(sched, x)
		if t%4 == 1 { // print every 4th tick to keep the log short
			fmt.Printf("%4d  %6.2f  %5.2f  %8d  %7d\n",
				t-1, demand[t-1], price[t-1], x[0], x[1])
		}
	}

	cost := rightsizing.NewEvaluator(ins).Cost(sched)
	opt, err := rightsizing.OptimalCost(ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nonline cost %.1f (operating %.1f + switching %.1f)\n",
		cost.Total(), cost.Operating, cost.Switching)
	fmt.Printf("hindsight optimum %.1f -> achieved ratio %.3f (guarantee: %.3f)\n",
		opt, cost.Total()/opt, rightsizing.RatioBoundB(ins))
}
