// Streaming autoscaler: a live advisory session around Algorithm B, the
// way a production control loop would run it — each tick the monitoring
// system pushes the next job volume, and the session returns the
// configuration to run plus running cost/ratio telemetry against the
// streaming prefix optimum. Mid-stream the session is checkpointed and
// resumed into a fresh process image, continuing bit-identically —
// demonstrating the online information model (Section 3), time-dependent
// operating costs and the event-sourcing recovery story.
//
// The workload is the registry's stock "price-modulated" scenario; the
// final accounting runs through the engine so the ratios line up with
// every other consumer of the pipeline.
package main

import (
	"fmt"
	"log"

	rightsizing "repro"
)

func main() {
	sc, ok := rightsizing.LookupScenario("price-modulated")
	if !ok {
		log.Fatal("stock scenario missing from the registry")
	}
	const seed = 7
	ins := sc.Instance(seed)

	// Open a live session: the algorithm is resolved from the registry by
	// name and sees nothing beyond the slots we feed it.
	sess, err := rightsizing.OpenSession("alg-b", ins.Types, rightsizing.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tick-by-tick advisories (Algorithm B):")
	fmt.Println("hour  demand  standard  highmem  cum-cost  ratio")
	half := ins.T() / 2
	feed := func(from, to int) {
		for t := from; t <= to; t++ {
			advs, err := sess.FeedDemand(ins.Lambda[t-1])
			if err != nil {
				log.Fatal(err)
			}
			for _, adv := range advs {
				if adv.Slot%4 == 1 { // print every 4th tick to keep the log short
					fmt.Printf("%4d  %6.2f  %8d  %7d  %8.1f  %.3f\n",
						adv.Slot-1, adv.Lambda, adv.Config[0], adv.Config[1], adv.CumCost, adv.Ratio)
				}
			}
		}
	}
	feed(1, half)

	// Checkpoint mid-stream and resume into a brand-new session — the
	// replay log reconstructs the algorithm state bit-identically, so the
	// second half continues exactly where the first left off.
	cp := sess.Checkpoint()
	sess, err = rightsizing.ResumeSession(cp, ins.Types, rightsizing.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -- checkpointed at slot %d, resumed (cum cost %.1f) --\n", half, sess.CumCost())
	feed(half+1, ins.T())
	if _, err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session total: %.2f over %d slots\n", sess.CumCost(), sess.Decided())

	// The engine re-runs the same deterministic algorithm (plus the other
	// applicable policies) and measures everything against the hindsight
	// optimum, solved once. Batch and stream agree bit-for-bit.
	res, err := rightsizing.EvaluateScenario(sc, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table())
	for _, s := range res.Skipped {
		fmt.Printf("(skipped %s)\n", s)
	}
	for _, m := range res.Rows {
		if m.Name == "AlgorithmB" {
			fmt.Printf("\nAlgorithm B achieved ratio %.3f (guarantee: %.3f)\n",
				m.Ratio, rightsizing.RatioBoundB(ins))
		}
	}
}
