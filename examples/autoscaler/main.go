// Streaming autoscaler: drives Algorithm B slot by slot, the way a
// production control loop would — each tick delivers the next job volume
// and the current electricity price, and the algorithm decides how many
// servers of each type stay powered. Demonstrates the online information
// model (Section 3) and time-dependent operating costs.
//
// The workload is the registry's stock "price-modulated" scenario; the
// final accounting runs through the engine so the ratios line up with
// every other consumer of the pipeline.
package main

import (
	"fmt"
	"log"

	rightsizing "repro"
)

func main() {
	sc, ok := rightsizing.LookupScenario("price-modulated")
	if !ok {
		log.Fatal("stock scenario missing from the registry")
	}
	const seed = 7
	ins := sc.Instance(seed)

	alg, err := rightsizing.NewAlgorithmB(ins)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tick-by-tick decisions (Algorithm B):")
	fmt.Println("hour  demand  standard  highmem")
	for t := 1; !alg.Done(); t++ {
		x := alg.Step() // consumes exactly one tick of input
		if t%4 == 1 {   // print every 4th tick to keep the log short
			fmt.Printf("%4d  %6.2f  %8d  %7d\n", t-1, ins.Lambda[t-1], x[0], x[1])
		}
	}

	// The engine re-runs the same deterministic algorithm (plus the other
	// applicable policies) and measures everything against the hindsight
	// optimum, solved once.
	res, err := rightsizing.EvaluateScenario(sc, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table())
	for _, s := range res.Skipped {
		fmt.Printf("(skipped %s)\n", s)
	}
	for _, m := range res.Rows {
		if m.Name == "AlgorithmB" {
			fmt.Printf("\nAlgorithm B achieved ratio %.3f (guarantee: %.3f)\n",
				m.Ratio, rightsizing.RatioBoundB(ins))
		}
	}
}
