// Heterogeneous sizing study: a CPU + GPU cluster under diurnal load with
// bursts, sweeping the peak-to-mean ratio and reporting how much each
// policy saves relative to static provisioning (AllOn) — the evaluation
// style of the right-sizing literature the paper builds on.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rightsizing "repro"
)

// cluster builds a CPU+GPU instance for the given trace. GPUs process
// four units of volume per slot but idle expensively and cost a lot to
// power-cycle; CPUs are cheap but slow. The convex Power cost on the CPU
// models voltage/frequency scaling; the GPU curve is flatter.
func cluster(trace []float64) *rightsizing.Instance {
	return &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "cpu", Count: 24, SwitchCost: 2, MaxLoad: 1,
				Cost: rightsizing.Static{F: rightsizing.Power{Idle: 1, Coef: 0.6, Exp: 2}}},
			{Name: "gpu", Count: 6, SwitchCost: 15, MaxLoad: 4,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 4, Rate: 0.3}}},
		},
		Lambda: trace,
	}
}

func main() {
	rng := rand.New(rand.NewSource(2021))
	fmt.Println("cost savings vs. static provisioning (AllOn), 3 days, hourly slots")
	fmt.Println()

	for _, peakToMean := range []float64{2, 4, 8} {
		peak := 40.0
		base := peak * (2/peakToMean - 1) // mean of sinusoid = (base+peak)/2
		if base < 0 {
			base = 0
		}
		trace := rightsizing.DiurnalNoisy(rng, 72, base, peak, 24, 0.2)
		ins := cluster(trace)
		if err := ins.Validate(); err != nil {
			log.Fatal(err)
		}

		cmp, err := rightsizing.NewComparison(ins)
		if err != nil {
			log.Fatal(err)
		}
		algA, err := rightsizing.NewAlgorithmA(ins)
		if err != nil {
			log.Fatal(err)
		}
		cmp.RunOnline(algA)
		for _, mk := range []func(*rightsizing.Instance) (rightsizing.Online, error){
			rightsizing.NewAllOn,
			rightsizing.NewLoadTracking,
			rightsizing.NewSkiRental,
			func(i *rightsizing.Instance) (rightsizing.Online, error) {
				return rightsizing.NewRecedingHorizon(i, 3)
			},
		} {
			alg, err := mk(ins)
			if err != nil {
				log.Fatal(err)
			}
			cmp.RunOnline(alg)
		}

		var allOn float64
		for _, m := range cmp.Row {
			if m.Name == "AllOn" {
				allOn = m.Total
			}
		}
		fmt.Printf("peak-to-mean %.0fx (base %.0f, peak %.0f):\n", peakToMean, base, peak)
		for _, m := range cmp.Row {
			saving := (1 - m.Total/allOn) * 100
			fmt.Printf("  %-22s cost %9.1f   saving vs AllOn %6.1f%%   ratio vs OPT %.3f\n",
				m.Name, m.Total, saving, m.Ratio)
		}
		fmt.Println()
	}
}
