// Heterogeneous sizing study: a CPU + GPU cluster under diurnal load with
// bursts, sweeping the peak-to-mean ratio and reporting how much each
// policy saves relative to static provisioning (AllOn) — the evaluation
// style of the right-sizing literature the paper builds on.
//
// Each sweep point is one Scenario struct literal; the engine's suite
// runner fans them out concurrently and measures everything against the
// optimum in a single deterministic pass.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rightsizing "repro"
)

// cluster builds a CPU+GPU instance for the given trace. GPUs process
// four units of volume per slot but idle expensively and cost a lot to
// power-cycle; CPUs are cheap but slow. The convex Power cost on the CPU
// models voltage/frequency scaling; the GPU curve is flatter.
func cluster(trace []float64) *rightsizing.Instance {
	return &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "cpu", Count: 24, SwitchCost: 2, MaxLoad: 1,
				Cost: rightsizing.Static{F: rightsizing.Power{Idle: 1, Coef: 0.6, Exp: 2}}},
			{Name: "gpu", Count: 6, SwitchCost: 15, MaxLoad: 4,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 4, Rate: 0.3}}},
		},
		Lambda: trace,
	}
}

// lineup resolves registry keys into a scenario algorithm selection.
func lineup(keys ...string) []rightsizing.AlgSpec {
	out := make([]rightsizing.AlgSpec, 0, len(keys))
	for _, k := range keys {
		s, ok := rightsizing.LookupAlgorithm(k)
		if !ok {
			log.Fatalf("algorithm %q missing from the registry", k)
		}
		out = append(out, s)
	}
	return out
}

func main() {
	// One scenario per peak-to-mean ratio: the whole sweep is data.
	var sweep []rightsizing.Scenario
	for _, peakToMean := range []float64{2, 4, 8} {
		ptm := peakToMean
		sweep = append(sweep, rightsizing.Scenario{
			Name: fmt.Sprintf("peak-to-mean-%gx", ptm),
			Instance: func(seed int64) *rightsizing.Instance {
				rng := rand.New(rand.NewSource(seed))
				peak := 40.0
				base := peak * (2/ptm - 1) // mean of sinusoid = (base+peak)/2
				if base < 0 {
					base = 0
				}
				return cluster(rightsizing.DiurnalNoisy(rng, 72, base, peak, 24, 0.2))
			},
			Algorithms: lineup("alg-a", "all-on", "load-tracking", "ski-rental", "receding-horizon"),
		})
	}

	res, err := rightsizing.RunSuite(sweep, rightsizing.SuiteOptions{
		Workers: rightsizing.AutoWorkers,
		Seed:    2021,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cost savings vs. static provisioning (AllOn), 3 days, hourly slots")
	fmt.Println()
	for _, r := range res.Results {
		var allOn float64
		for _, m := range r.Rows {
			if m.Name == "AllOn" {
				allOn = m.Total
			}
		}
		fmt.Printf("%s:\n", r.Scenario)
		for _, m := range r.Rows {
			saving := (1 - m.Total/allOn) * 100
			fmt.Printf("  %-22s cost %9.1f   saving vs AllOn %6.1f%%   ratio vs OPT %.3f\n",
				m.Name, m.Total, saving, m.Ratio)
		}
		fmt.Println()
	}
}
