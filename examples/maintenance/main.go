// Maintenance windows: Section 4.3's time-varying data-center sizes.
// Part of the fleet is taken offline for maintenance mid-horizon and a
// rack of new servers is commissioned later; the offline solvers handle
// both exactly and approximately. The workload is the registry's stock
// "maintenance" scenario, measured through the engine.
package main

import (
	"fmt"
	"log"

	rightsizing "repro"
)

func main() {
	sc, ok := rightsizing.LookupScenario("maintenance")
	if !ok {
		log.Fatal("stock scenario missing from the registry")
	}
	ins := sc.Instance(1)

	// The engine solves OPT once and measures the approximation, the
	// online algorithms and the baselines against it.
	res, err := rightsizing.EvaluateScenario(sc, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	for _, m := range res.Rows {
		if m.Name == "Approx(ε=0.5)" {
			fmt.Printf("\n(1+0.5)-approx ratio %.4f (bound 1.5)\n", m.Ratio)
		}
	}

	// Slot-by-slot view: the optimal schedule never uses servers that are
	// offline for maintenance, and picks up the commissioned rack.
	opt, err := rightsizing.SolveOptimal(ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nslot  avail(old,new)  demand  optimal(old,new)")
	for t := 1; t <= ins.T(); t += 3 {
		x := opt.Schedule[t-1]
		fmt.Printf("%4d  (%2d, %d)%8s  %6.1f  (%2d, %d)\n",
			t, ins.CountAt(t, 0), ins.CountAt(t, 1), "", ins.Lambda[t-1], x[0], x[1])
	}
}
