// Maintenance windows: Section 4.3's time-varying data-center sizes.
// Part of the fleet is taken offline for maintenance mid-horizon and a
// rack of new servers is commissioned later; the offline solvers handle
// both exactly and approximately.
package main

import (
	"fmt"
	"log"

	rightsizing "repro"
)

func main() {
	const T = 36
	demand := rightsizing.Diurnal(T, 4, 20, 12, 0)

	// Baseline fleet: 24 old servers, 4 fast new ones.
	counts := make([][]int, T)
	for t := 0; t < T; t++ {
		old, new_ := 24, 4
		switch {
		case t >= 12 && t < 18:
			old = 10 // maintenance: most old servers offline
		case t >= 24:
			new_ = 8 // commissioning: the new rack doubles
		}
		counts[t] = []int{old, new_}
	}

	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "old", Count: 24, SwitchCost: 2, MaxLoad: 1,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1.2, Rate: 1}}},
			{Name: "new", Count: 8, SwitchCost: 9, MaxLoad: 4,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 2.5, Rate: 0.4}}},
		},
		Lambda: demand,
		Counts: counts,
	}
	if err := ins.Validate(); err != nil {
		log.Fatal(err)
	}

	opt, err := rightsizing.SolveOptimal(ins)
	if err != nil {
		log.Fatal(err)
	}
	apx, err := rightsizing.SolveApprox(ins, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal cost %.1f, (1+0.5)-approx %.1f (ratio %.4f, bound 1.5)\n\n",
		opt.Cost(), apx.Cost(), apx.Cost()/opt.Cost())

	fmt.Println("slot  avail(old,new)  demand  optimal(old,new)")
	for t := 1; t <= T; t += 3 {
		x := opt.Schedule[t-1]
		fmt.Printf("%4d  (%2d, %d)%8s  %6.1f  (%2d, %d)\n",
			t, ins.CountAt(t, 0), ins.CountAt(t, 1), "", demand[t-1], x[0], x[1])
	}

	// The online Algorithm B also respects shrinking fleets: prefix
	// optima never use unavailable servers.
	alg, err := rightsizing.NewAlgorithmB(ins)
	if err != nil {
		log.Fatal(err)
	}
	sched := rightsizing.Run(alg)
	if err := ins.Feasible(sched); err != nil {
		log.Fatal(err)
	}
	cost := rightsizing.NewEvaluator(ins).Cost(sched)
	fmt.Printf("\nonline (Algorithm B) cost %.1f, ratio %.3f\n",
		cost.Total(), cost.Total()/opt.Cost())
}
