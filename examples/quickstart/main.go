// Quickstart: define a small heterogeneous data center, solve it offline,
// run the online algorithms, and compare everything against the optimum.
package main

import (
	"fmt"
	"log"

	rightsizing "repro"
)

func main() {
	// Two server types, as in the paper's introduction: slow commodity
	// servers (capacity 1) and fast accelerator nodes that process four
	// times the volume but idle at triple the power.
	ins := &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "slow", Count: 8, SwitchCost: 3, MaxLoad: 1,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1, Rate: 1}}},
			{Name: "fast", Count: 3, SwitchCost: 12, MaxLoad: 4,
				Cost: rightsizing.Static{F: rightsizing.Power{Idle: 3, Coef: 0.4, Exp: 2}}},
		},
		// Two days of diurnal load, 1-hour slots.
		Lambda: rightsizing.Diurnal(48, 2, 16, 24, 0),
	}
	if err := ins.Validate(); err != nil {
		log.Fatal(err)
	}

	// Offline optimum (Section 4.1) and a (1+ε)-approximation (4.2).
	opt, err := rightsizing.SolveOptimal(ins)
	if err != nil {
		log.Fatal(err)
	}
	apx, err := rightsizing.SolveApprox(ins, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimum: %.2f (operating %.2f + switching %.2f)\n",
		opt.Cost(), opt.Breakdown.Operating, opt.Breakdown.Switching)
	fmt.Printf("(1+0.5)-approx:  %.2f on a lattice of %d configurations\n\n",
		apx.Cost(), apx.LatticeSize)

	// Online algorithms and baselines, measured against the optimum.
	cmp, err := rightsizing.NewComparison(ins)
	if err != nil {
		log.Fatal(err)
	}
	algA, err := rightsizing.NewAlgorithmA(ins)
	if err != nil {
		log.Fatal(err)
	}
	cmp.RunOnline(algA)
	algB, err := rightsizing.NewAlgorithmB(ins)
	if err != nil {
		log.Fatal(err)
	}
	cmp.RunOnline(algB)
	for _, mk := range []func(*rightsizing.Instance) (rightsizing.Online, error){
		rightsizing.NewAllOn,
		rightsizing.NewLoadTracking,
		rightsizing.NewSkiRental,
	} {
		alg, err := mk(ins)
		if err != nil {
			log.Fatal(err)
		}
		cmp.RunOnline(alg)
	}
	fmt.Println(cmp.Table())
	fmt.Printf("Theorem 8 guarantee for Algorithm A: ratio <= %g\n",
		rightsizing.RatioBoundA(ins))

	// Peek at the optimal schedule around the first peak.
	fmt.Println("\noptimal configurations around the first peak (slots 10-14):")
	for t := 10; t <= 14; t++ {
		x := opt.Schedule[t-1]
		fmt.Printf("  slot %2d: load %5.1f -> %d slow + %d fast\n",
			t, ins.Lambda[t-1], x[0], x[1])
	}
}
