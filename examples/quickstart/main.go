// Quickstart: pull the stock "quickstart" scenario from the engine's
// registry, solve it offline, and let the engine run and measure every
// applicable algorithm against the optimum — the whole run→measure→report
// pipeline in a dozen lines.
package main

import (
	"fmt"
	"log"

	rightsizing "repro"
)

func main() {
	sc, ok := rightsizing.LookupScenario("quickstart")
	if !ok {
		log.Fatal("stock scenario missing from the registry")
	}
	ins := sc.Instance(1)

	// Offline optimum (Section 4.1) and a (1+ε)-approximation (4.2).
	opt, err := rightsizing.SolveOptimal(ins)
	if err != nil {
		log.Fatal(err)
	}
	apx, err := rightsizing.SolveApprox(ins, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimum: %.2f (operating %.2f + switching %.2f)\n",
		opt.Cost(), opt.Breakdown.Operating, opt.Breakdown.Switching)
	fmt.Printf("(1+0.5)-approx:  %.2f on a lattice of %d configurations\n\n",
		apx.Cost(), apx.LatticeSize)

	// One engine call runs Algorithms A/B/C and every baseline, solving
	// OPT once as the shared yardstick and skipping whatever does not
	// apply (here: LCP, which needs a homogeneous fleet).
	res, err := rightsizing.EvaluateScenario(sc, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	for _, s := range res.Skipped {
		fmt.Printf("(skipped %s)\n", s)
	}
	fmt.Printf("\nTheorem 8 guarantee for Algorithm A: ratio <= %g\n",
		rightsizing.RatioBoundA(ins))

	// Peek at the optimal schedule around the first peak.
	fmt.Println("\noptimal configurations around the first peak (slots 10-14):")
	for t := 10; t <= 14; t++ {
		x := opt.Schedule[t-1]
		fmt.Printf("  slot %2d: load %5.1f -> %d slow + %d fast\n",
			t, ins.Lambda[t-1], x[0], x[1])
	}
}
