// Trace pipeline: from raw monitoring data to a provisioning decision.
// A realistic operations flow — minute-granularity CSV demand data is
// resampled to scheduling slots (peak-preserving), normalised to the
// cluster's capacity, smoothed, solved, and rendered — plus a look at the
// fractional relaxation and the rounding trap from the paper's
// related-work discussion.
//
// The measurement end of the flow is a custom Scenario handed to the
// engine: a real trace becomes a registry-compatible workload with one
// struct literal, including a non-stock algorithm (the γ-reduced tracker
// variant) wrapped as an AlgSpec.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	rightsizing "repro"
)

// mustAlg resolves a stock registry key.
func mustAlg(key string) rightsizing.AlgSpec {
	s, ok := rightsizing.LookupAlgorithm(key)
	if !ok {
		log.Fatalf("algorithm %q missing from the registry", key)
	}
	return s
}

func main() {
	// 1. "Raw" demand samples, as a monitoring system would export them:
	// 5-minute samples over two days with bursts (synthesised here; in
	// production this would be os.Open("demand.csv")).
	rng := rand.New(rand.NewSource(99))
	raw := rightsizing.Bursty(rng, 2*24*12, 0.3, 1.0, 0.08)
	for i, v := range rightsizing.Diurnal(len(raw), 0.2, 0.9, 24*12, 0) {
		if raw[i] < v {
			raw[i] = v
		}
	}
	var csv strings.Builder
	if err := rightsizing.TraceToCSV(&csv, raw); err != nil {
		log.Fatal(err)
	}

	// 2. Import and reshape: CSV → hourly slots (peak-preserving, so the
	// schedule covers every intra-slot sample) → smooth the burst noise
	// slightly → normalise to the cluster's expected peak of 18 units.
	samples, err := rightsizing.TraceFromCSV(strings.NewReader(csv.String()), 0)
	if err != nil {
		log.Fatal(err)
	}
	hourly, err := rightsizing.TraceResample(samples, 12, rightsizing.AggMax)
	if err != nil {
		log.Fatal(err)
	}
	smooth, err := rightsizing.TraceSmooth(hourly, 3)
	if err != nil {
		log.Fatal(err)
	}
	demand, err := rightsizing.TraceNormalize(smooth, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d raw samples -> %d hourly slots, peak %.1f\n",
		len(samples), len(demand), 18.0)

	// 3. The cluster, including a power-down cost folded into β per the
	// paper's remark after Equation (2).
	base := &rightsizing.Instance{
		Types: []rightsizing.ServerType{
			{Name: "web", Count: 20, SwitchCost: 2, MaxLoad: 1,
				Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1, Rate: 0.9}}},
			{Name: "batch", Count: 4, SwitchCost: 9, MaxLoad: 4,
				Cost: rightsizing.Static{F: rightsizing.Power{Idle: 3, Coef: 0.3, Exp: 2}}},
		},
		Lambda: demand,
	}
	ins, err := rightsizing.FoldDownCosts(base, []float64{0.5, 2})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Measure through the engine: the imported trace as a one-literal
	// scenario, with the scalable γ-tracker variant riding along as a
	// custom AlgSpec next to the stock policies.
	sc := rightsizing.Scenario{
		Name:     "imported-trace",
		Instance: func(int64) *rightsizing.Instance { return ins },
		Algorithms: []rightsizing.AlgSpec{
			mustAlg("alg-a"),
			rightsizing.OnlineSpec("AlgorithmA(γ=1.25)",
				func(types []rightsizing.ServerType) (rightsizing.Online, error) {
					return rightsizing.NewAlgorithmAWithOptions(types,
						rightsizing.AlgorithmOptions{TrackerGamma: 1.25})
				}),
			mustAlg("ski-rental"),
			mustAlg("all-on"),
		},
	}
	res, err := rightsizing.EvaluateScenario(sc, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table())

	// 5. The fractional relaxation and the integrality gap.
	gap, discrete, frac, err := rightsizing.IntegralityGap(ins, 4, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintegrality: discrete %.1f vs fractional(1/4 grid) %.1f -> gap %.4f\n",
		discrete, frac, gap)
	fmt.Println("(the paper's open problem: rounding fractional schedules cheaply;")
	fmt.Println(" at this fleet size the relaxation is nearly tight)")
}
