package rightsizing

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fractional"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/trace"
)

// This file exposes the library extensions that go beyond the paper's
// verbatim algorithms: scalable online variants, the fractional
// relaxation, randomized baselines, trace I/O and parallel solving.

// AutoWorkers selects one worker per available CPU in SolveOptions,
// AlgorithmOptions and SuiteOptions (the solver and the scenario engine
// share the sentinel value).
const AutoWorkers = solver.AutoWorkers

// AlgorithmOptions tunes the online algorithms' internal prefix-optimum
// tracker; the zero value reproduces the paper exactly. TrackerGamma > 1
// switches to the γ-reduced lattice (scalable heuristic — the competitive
// proof assumes the exact lattice; see experiment E10).
type AlgorithmOptions = core.Options

// NewAlgorithmAWithOptions is NewAlgorithmA with tracker tuning.
func NewAlgorithmAWithOptions(types []ServerType, opts AlgorithmOptions) (*AlgorithmA, error) {
	return core.NewAlgorithmAWithOptions(types, opts)
}

// NewAlgorithmBWithOptions is NewAlgorithmB with tracker tuning.
func NewAlgorithmBWithOptions(types []ServerType, opts AlgorithmOptions) (*AlgorithmB, error) {
	return core.NewAlgorithmBWithOptions(types, opts)
}

// NewRandomizedTimeout is the randomized ski-rental baseline: surplus
// servers draw their idle-cost budget from the optimal e/(e−1)
// distribution. Seeded for reproducibility.
func NewRandomizedTimeout(types []ServerType, seed int64) (Online, error) {
	return baseline.NewRandomizedTimeout(types, seed)
}

// FractionalResult is the outcome of solving the fractional relaxation on
// a 1/K grid.
type FractionalResult = fractional.Result

// SolveFractional approximates the fractional relaxation (real-valued
// server counts) by K-refinement: counts become multiples of 1/K. eps > 0
// solves the refined instance on the γ-reduced lattice (polynomial);
// eps <= 0 solves it exactly.
func SolveFractional(ins *Instance, K int, eps float64) (*FractionalResult, error) {
	return fractional.Solve(ins, K, eps)
}

// IntegralityGap measures discreteOPT / fractionalOPT(K grid) — the price
// of integrality the paper's open rounding problem would have to pay.
func IntegralityGap(ins *Instance, K int, eps float64) (gap, discrete, frac float64, err error) {
	return fractional.IntegralityGap(ins, K, eps)
}

// TraceFromCSV reads one numeric column (0-based) of CSV demand data.
func TraceFromCSV(r io.Reader, col int) ([]float64, error) { return trace.FromCSV(r, col) }

// TraceToCSV writes a trace as single-column CSV.
func TraceToCSV(w io.Writer, xs []float64) error { return trace.ToCSV(w, xs) }

// TraceAgg selects the Resample aggregation.
type TraceAgg = trace.Agg

// Aggregations for TraceResample.
const (
	AggMax  = trace.AggMax
	AggMean = trace.AggMean
)

// TraceResample coarsens a trace: every factor samples become one slot.
func TraceResample(xs []float64, factor int, agg TraceAgg) ([]float64, error) {
	return trace.Resample(xs, factor, agg)
}

// TraceNormalize rescales a trace to the given peak.
func TraceNormalize(xs []float64, peak float64) ([]float64, error) {
	return trace.Normalize(xs, peak)
}

// TraceSmooth applies a centred moving average (odd window).
func TraceSmooth(xs []float64, window int) ([]float64, error) {
	return trace.Smooth(xs, window)
}

// FoldDownCosts converts an instance with per-type power-down costs into
// the paper's up-only model (β'_j = β_j + down_j). Every schedule's cost
// under the result equals its cost in the extended model, so all
// algorithms and guarantees apply verbatim (paper, remark after Eq. 2).
func FoldDownCosts(ins *Instance, down []float64) (*Instance, error) {
	return model.FoldDownCosts(ins, down)
}
