package rightsizing

import (
	"math/rand"
	"strings"
	"testing"
)

// The facade wrappers must all be wired to the right internals; this test
// sweeps every re-export the other tests don't reach.
func TestFacadeWrappers(t *testing.T) {
	ins := twoType()

	// Solve with explicit options.
	res, err := Solve(ins, SolveOptions{Gamma: 1.5, Workers: 2, LowMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(res.Schedule); err != nil {
		t.Fatal(err)
	}

	// Algorithm B with options; randomized baseline.
	b, err := NewAlgorithmBWithOptions(ins.Types, AlgorithmOptions{TrackerGamma: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(Run(b, ins)); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRandomizedTimeout(ins.Types, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(Run(rt, ins)); err != nil {
		t.Fatal(err)
	}

	// Workload generators.
	rng := rand.New(rand.NewSource(1))
	if len(DiurnalNoisy(rng, 10, 1, 5, 5, 0.2)) != 10 {
		t.Error("DiurnalNoisy")
	}
	if len(Bursty(rng, 10, 1, 5, 0.5)) != 10 {
		t.Error("Bursty")
	}
	if len(RandomWalk(rng, 10, 3, 1, 1, 5)) != 10 {
		t.Error("RandomWalk")
	}

	// Measurement.
	m := Measure(ins, res.Schedule, "x", 1)
	if m.Total <= 0 {
		t.Error("Measure")
	}

	// Trace tooling.
	tr, err := TraceFromCSV(strings.NewReader("v\n1\n4\n2\n6\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := TraceToCSV(&sb, tr); err != nil {
		t.Fatal(err)
	}
	rs, err := TraceResample(tr, 2, AggMax)
	if err != nil || rs[0] != 4 || rs[1] != 6 {
		t.Fatalf("TraceResample: %v %v", rs, err)
	}
	rsMean, err := TraceResample(tr, 2, AggMean)
	if err != nil || rsMean[0] != 2.5 {
		t.Fatalf("TraceResample mean: %v %v", rsMean, err)
	}
	nm, err := TraceNormalize(tr, 12)
	if err != nil || nm[3] != 12 {
		t.Fatalf("TraceNormalize: %v %v", nm, err)
	}
	sm, err := TraceSmooth(tr, 3)
	if err != nil || len(sm) != 4 {
		t.Fatalf("TraceSmooth: %v %v", sm, err)
	}

	// Fractional relaxation and folding.
	gap, discrete, frac, err := IntegralityGap(ins, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gap < 1-1e-6 || discrete < frac*(1-1e-6) {
		t.Errorf("gap %g discrete %g frac %g", gap, discrete, frac)
	}
	folded, err := FoldDownCosts(ins, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if folded.Types[0].SwitchCost != ins.Types[0].SwitchCost+1 {
		t.Error("FoldDownCosts")
	}
	if AutoWorkers >= 0 {
		t.Error("AutoWorkers sentinel should be negative")
	}
}
