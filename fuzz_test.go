package rightsizing

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseInstance hardens the JSON decoder: arbitrary input must never
// panic, and successfully decoded instances must validate and solve.
func FuzzParseInstance(f *testing.F) {
	f.Add(sampleJSON)
	f.Add(`{"types":[],"lambda":[]}`)
	f.Add(`{"types":[{"count":1,"switchCost":0,"maxLoad":1,"cost":{"kind":"constant","c":1}}],"lambda":[0.5]}`)
	f.Add(`{"types":[{"count":2,"switchCost":1,"maxLoad":2,"cost":{"kind":"piecewise","z":[0,1],"v":[0,2]}}],"lambda":[1,2]}`)
	f.Fuzz(func(t *testing.T, data string) {
		ins, err := ParseInstance(strings.NewReader(data))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		// A decoded instance passed Validate inside ParseInstance; it
		// must therefore be solvable unless numerically degenerate.
		if ins.T() > 64 || ins.D() > 3 {
			return // keep the fuzz iteration cheap
		}
		size := 1
		for j := 0; j < ins.D(); j++ {
			size *= ins.Types[j].Count + 1
			if size > 4096 {
				return
			}
		}
		res, err := SolveOptimal(ins)
		if err != nil {
			t.Fatalf("validated instance failed to solve: %v", err)
		}
		if math.IsNaN(res.Cost()) || res.Cost() < 0 {
			t.Fatalf("invalid optimal cost %v", res.Cost())
		}
		if err := ins.Feasible(res.Schedule); err != nil {
			t.Fatalf("optimal schedule infeasible: %v", err)
		}
	})
}
