package rightsizing

import (
	"fmt"
	"math/rand"
	"testing"
)

// The integration matrix: every algorithm against every workload family on
// several cluster shapes. Each cell checks feasibility, the proven bound
// where one exists, and basic sanity (cost ordering against AllOn-style
// static provisioning is NOT asserted — baselines may win or lose).
func TestIntegrationMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2021))

	clusters := map[string]func(T int, peak float64) *Instance{
		"homogeneous": func(T int, peak float64) *Instance {
			return &Instance{
				Types: []ServerType{{
					Name: "srv", Count: int(peak) + 2, SwitchCost: 3, MaxLoad: 1,
					Cost: Static{F: Affine{Idle: 1, Rate: 1}},
				}},
				Lambda: nil, // filled by caller
			}
		},
		"cpu+gpu": func(T int, peak float64) *Instance {
			return &Instance{
				Types: []ServerType{
					{Name: "cpu", Count: int(peak*0.8) + 1, SwitchCost: 2, MaxLoad: 1,
						Cost: Static{F: Power{Idle: 1, Coef: 0.5, Exp: 2}}},
					{Name: "gpu", Count: int(peak/4*0.6) + 1, SwitchCost: 11, MaxLoad: 4,
						Cost: Static{F: Affine{Idle: 3, Rate: 0.4}}},
				},
			}
		},
		"three-tier": func(T int, peak float64) *Instance {
			return &Instance{
				Types: []ServerType{
					{Name: "small", Count: int(peak/2) + 1, SwitchCost: 1, MaxLoad: 0.5,
						Cost: Static{F: Constant{C: 0.6}}},
					{Name: "mid", Count: int(peak/2) + 1, SwitchCost: 3, MaxLoad: 1,
						Cost: Static{F: Affine{Idle: 1, Rate: 0.8}}},
					{Name: "big", Count: int(peak/8) + 1, SwitchCost: 9, MaxLoad: 4,
						Cost: Static{F: Power{Idle: 2.5, Coef: 0.2, Exp: 2}}},
				},
			}
		},
	}

	const T = 18
	const peak = 8.0
	workloads := map[string][]float64{
		"diurnal": Diurnal(T, 0.5, peak, T/2, 0),
		"bursty":  Bursty(rng, T, 1, peak, 0.2),
		"steps":   Steps(T, []float64{1, peak, 3}, 3),
		"onoff":   OnOff(T, peak, 0, 2, 3),
		"walk":    RandomWalk(rng, T, peak/2, peak/6, 0.2, peak),
	}

	for cname, mk := range clusters {
		for wname, lam := range workloads {
			t.Run(fmt.Sprintf("%s/%s", cname, wname), func(t *testing.T) {
				ins := mk(T, peak)
				ins.Lambda = lam
				if err := ins.Validate(); err != nil {
					t.Fatalf("instance invalid: %v", err)
				}
				opt, err := OptimalCost(ins)
				if err != nil {
					t.Fatal(err)
				}
				eval := NewEvaluator(ins)

				type entry struct {
					alg   Online
					bound float64 // 0 = no proven bound
				}
				var entries []entry
				a, err := NewAlgorithmA(ins.Types)
				if err != nil {
					t.Fatal(err)
				}
				entries = append(entries, entry{a, RatioBoundA(ins)})
				b, err := NewAlgorithmB(ins.Types)
				if err != nil {
					t.Fatal(err)
				}
				entries = append(entries, entry{b, RatioBoundB(ins)})
				c, err := NewAlgorithmC(ins.Types, 1)
				if err != nil {
					t.Fatal(err)
				}
				entries = append(entries, entry{c, 2*float64(ins.D()) + 1 + 1})
				for _, mkb := range []func() (Online, error){
					func() (Online, error) { return NewAllOn(ins.Types) },
					func() (Online, error) { return NewLoadTracking(ins.Types) },
					func() (Online, error) { return NewSkiRental(ins.Types) },
					func() (Online, error) { return NewRandomizedTimeout(ins.Types, 5) },
					func() (Online, error) { return NewLookahead(ins.Types, 3) },
				} {
					alg, err := mkb()
					if err != nil {
						t.Fatal(err)
					}
					entries = append(entries, entry{alg, 0})
				}
				if ins.D() == 1 {
					l, err := NewLCP(ins.Types)
					if err != nil {
						t.Fatal(err)
					}
					entries = append(entries, entry{l, 3}) // discrete LCP bound
				}

				for _, e := range entries {
					sched := Run(e.alg, ins)
					if err := ins.Feasible(sched); err != nil {
						t.Errorf("%s: infeasible: %v", e.alg.Name(), err)
						continue
					}
					cost := eval.Cost(sched).Total()
					if cost < opt*(1-1e-9) {
						t.Errorf("%s: cost %g below optimum %g", e.alg.Name(), cost, opt)
					}
					if e.bound > 0 && cost > e.bound*opt*(1+1e-9) {
						t.Errorf("%s: cost %g violates bound %g·OPT (opt %g)",
							e.alg.Name(), cost, e.bound, opt)
					}
				}

				// Offline variants agree with each other.
				res, err := SolveOptimal(ins)
				if err != nil {
					t.Fatal(err)
				}
				if diff := res.Cost() - opt; diff > 1e-9*(1+opt) || diff < -1e-9*(1+opt) {
					t.Errorf("SolveOptimal %g vs OptimalCost %g", res.Cost(), opt)
				}
				low, err := Solve(ins, SolveOptions{LowMemory: true})
				if err != nil {
					t.Fatal(err)
				}
				if low.Cost() != res.Cost() {
					t.Errorf("LowMemory %g vs default %g", low.Cost(), res.Cost())
				}
				apx, err := SolveApprox(ins, 0.5)
				if err != nil {
					t.Fatal(err)
				}
				if apx.Cost() > 1.5*opt*(1+1e-9) {
					t.Errorf("approx %g violates 1.5·OPT (%g)", apx.Cost(), opt)
				}
			})
		}
	}
}
