// Package adversary constructs and searches for workloads that push
// online right-sizing algorithms toward their worst case. The predecessor
// paper [Albers–Quedenfeld, CIAC 2021] proves a 2d lower bound for every
// deterministic online algorithm; this package provides
//
//   - the analytic d = 1 ski-rental spike train whose ratio approaches 2
//     in closed form, and
//   - a randomized hill-climbing search over on/off traces for d >= 1,
//     used by experiment E7 to probe how close generic adversaries get to
//     the lower bound.
package adversary

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/solver"
)

// SkiRentalSpikes builds the d = 1 adversarial instance: a single server
// type with switching cost beta and unit idle cost, and unit demand
// spikes spaced exactly t̄+1 slots apart, where t̄ = ⌈beta⌉ is Algorithm
// A's timeout. Algorithm A pays ≈ 2β per spike (power-up plus a full
// timeout of idle cost) while the optimum power-cycles for β+1, so the
// ratio approaches 2β/(β+1) → 2 as β grows.
func SkiRentalSpikes(beta float64, cycles int) (*model.Instance, float64) {
	if beta < 1 || cycles < 1 {
		panic("adversary: need beta >= 1 and at least one cycle")
	}
	tbar := int(math.Ceil(beta))
	T := cycles * (tbar + 1)
	lambda := make([]float64, T)
	for c := 0; c < cycles; c++ {
		lambda[c*(tbar+1)] = 1
	}
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 1, SwitchCost: beta, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: lambda,
	}
	predicted := (beta + float64(tbar)) / (beta + 1)
	return ins, predicted
}

// Config parameterises a hill-climbing search.
type Config struct {
	// Types of the data center under attack (counts kept small: every
	// candidate is scored with an exact offline solve).
	Types []model.ServerType
	// T is the trace length.
	T int
	// Peak is the demand level of "on" slots ("off" slots are 0).
	Peak float64
	// Iters is the number of single-slot flips attempted.
	Iters int
	// Seed drives the search deterministically.
	Seed int64
	// NewAlg builds the algorithm under attack for a candidate instance.
	NewAlg func(*model.Instance) (core.Online, error)
}

// Result is the best adversarial instance found.
type Result struct {
	Instance *model.Instance
	Trace    []float64
	Ratio    float64
	Evals    int
}

// HillClimb performs first-improvement local search over binary traces:
// start from a random on/off trace, flip one slot at a time, keep flips
// that increase the algorithm's competitive ratio. The returned instance
// is always feasible (the types must be able to cover Peak).
func HillClimb(cfg Config) (Result, error) {
	if cfg.T < 2 || cfg.Iters < 1 {
		return Result{}, fmt.Errorf("adversary: need T >= 2 and Iters >= 1")
	}
	capacity := 0.0
	for _, st := range cfg.Types {
		capacity += float64(st.Count) * st.MaxLoad
	}
	if capacity < cfg.Peak {
		return Result{}, fmt.Errorf("adversary: peak %g exceeds capacity %g", cfg.Peak, capacity)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	trace := make([]float64, cfg.T)
	for t := range trace {
		if rng.Intn(2) == 0 {
			trace[t] = cfg.Peak
		}
	}
	res := Result{Trace: append([]float64(nil), trace...)}

	score := func(tr []float64) (float64, *model.Instance, error) {
		ins := &model.Instance{
			Types:  cfg.Types,
			Lambda: append([]float64(nil), tr...),
		}
		alg, err := cfg.NewAlg(ins)
		if err != nil {
			return 0, nil, err
		}
		sched := core.Run(alg, ins)
		if err := ins.Feasible(sched); err != nil {
			return 0, nil, fmt.Errorf("adversary: algorithm infeasible: %w", err)
		}
		cost := model.NewEvaluator(ins).Cost(sched).Total()
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			return 0, nil, err
		}
		return cost / opt, ins, nil
	}

	ratio, ins, err := score(trace)
	if err != nil {
		return Result{}, err
	}
	res.Ratio, res.Instance, res.Evals = ratio, ins, 1

	for i := 0; i < cfg.Iters; i++ {
		t := rng.Intn(cfg.T)
		old := trace[t]
		if old == 0 {
			trace[t] = cfg.Peak
		} else {
			trace[t] = 0
		}
		r, cand, err := score(trace)
		res.Evals++
		if err != nil {
			return Result{}, err
		}
		if r > res.Ratio {
			res.Ratio = r
			res.Instance = cand
			copy(res.Trace, trace)
		} else {
			trace[t] = old // revert
		}
	}
	return res, nil
}
