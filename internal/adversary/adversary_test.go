package adversary

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/solver"
)

func TestSkiRentalSpikesRatioMatchesPrediction(t *testing.T) {
	for _, beta := range []float64{4, 9, 19} {
		ins, predicted := SkiRentalSpikes(beta, 6)
		a, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		sched := core.Run(a, ins)
		cost := model.NewEvaluator(ins).Cost(sched).Total()
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		measured := cost / opt
		// The closed form ignores boundary cycles; allow a few percent.
		if math.Abs(measured-predicted) > 0.12*predicted {
			t.Errorf("β=%g: measured %g, predicted %g", beta, measured, predicted)
		}
		// The ratio must climb toward 2 with β.
		if beta >= 19 && measured < 1.75 {
			t.Errorf("β=%g: ratio %g should be close to 2", beta, measured)
		}
		// And never violate Theorem 8.
		if measured > 3+1e-9 {
			t.Errorf("β=%g: ratio %g violates the 2d+1 bound", beta, measured)
		}
	}
}

func TestSkiRentalSpikesPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SkiRentalSpikes(0.5, 3) },
		func() { SkiRentalSpikes(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func searchConfig(seed int64) Config {
	return Config{
		Types: []model.ServerType{
			{Count: 1, SwitchCost: 6, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 1}}},
			{Count: 1, SwitchCost: 10, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 0.7}}},
		},
		T:     24,
		Peak:  1,
		Iters: 40,
		Seed:  seed,
		NewAlg: func(ins *model.Instance) (core.Online, error) {
			return core.NewAlgorithmA(ins.Types)
		},
	}
}

func TestHillClimbFindsAdversarialTraces(t *testing.T) {
	res, err := HillClimb(searchConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1 {
		t.Fatalf("ratio %g below 1", res.Ratio)
	}
	// Must respect the proven upper bound for d=2.
	if res.Ratio > 5+1e-9 {
		t.Fatalf("ratio %g violates 2d+1", res.Ratio)
	}
	if res.Evals != 41 {
		t.Errorf("evals = %d, want 41", res.Evals)
	}
	if res.Instance == nil || len(res.Trace) != 24 {
		t.Error("result incomplete")
	}
}

func TestHillClimbDeterministicPerSeed(t *testing.T) {
	a, err := HillClimb(searchConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(searchConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio {
		t.Error("same seed must reproduce the search")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatal("traces differ")
		}
	}
}

func TestHillClimbImprovesOverStart(t *testing.T) {
	// With many iterations the search should beat the diurnal-ish random
	// start on average. Compare against a 0-iteration run... iters >= 1
	// enforced, so use 1 vs 120.
	short, err := HillClimb(Config{
		Types: searchConfig(3).Types, T: 24, Peak: 1, Iters: 1, Seed: 3,
		NewAlg: searchConfig(3).NewAlg,
	})
	if err != nil {
		t.Fatal(err)
	}
	long, err := HillClimb(Config{
		Types: searchConfig(3).Types, T: 24, Peak: 1, Iters: 120, Seed: 3,
		NewAlg: searchConfig(3).NewAlg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if long.Ratio < short.Ratio-1e-12 {
		t.Errorf("longer search (%g) must not do worse than shorter (%g)", long.Ratio, short.Ratio)
	}
}

func TestHillClimbValidation(t *testing.T) {
	cfg := searchConfig(1)
	cfg.T = 1
	if _, err := HillClimb(cfg); err == nil {
		t.Error("T=1 should error")
	}
	cfg = searchConfig(1)
	cfg.Peak = 100
	if _, err := HillClimb(cfg); err == nil {
		t.Error("infeasible peak should error")
	}
}
