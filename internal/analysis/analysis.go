// Package analysis computes the quantities the paper's proofs manipulate,
// so the lemmas behind Theorem 8 can be verified empirically rather than
// only trusted:
//
//   - the load-dependent operating cost L_{t,j}(X) of Equation (3),
//     splitting each slot's operating cost into an idle part x·f(0) and a
//     load part x·(f(λz/x) − f(0));
//   - the block costs H_{j,i} = β_j + t̄_j·f_j(0) of Equation (4), which
//     upper-bound Algorithm A's switching-plus-idle spending per block.
//
// Lemma 5 states Σ_{t,j} L_{t,j}(X^A) <= C(OPT); Lemma 7 states
// Σ_i H_{j,i} <= 2·C(OPT) per type; Theorem 8 assembles them into
// C(X^A) <= (2d+1)·C(OPT). Experiment E12 measures every line.
package analysis

import (
	"fmt"

	"repro/internal/model"
)

// Parts decomposes a schedule's total cost.
type Parts struct {
	// LoadDependent is Σ_t Σ_j L_{t,j}(X) per Equation (3).
	LoadDependent float64
	// Idle is Σ_t Σ_j x_{t,j}·f_{t,j}(0).
	Idle float64
	// Switching is the power-up cost Σ_t Σ_j β_j(Δ_j)^+.
	Switching float64
}

// Total returns the full schedule cost; by construction it equals
// model.Evaluator.Cost up to dispatch tolerance.
func (p Parts) Total() float64 { return p.LoadDependent + p.Idle + p.Switching }

// Decompose splits a feasible schedule's cost. The load split z_{t,j}
// behind L is the optimal dispatch of each slot (the same argmin the cost
// semantics use).
func Decompose(ins *model.Instance, sched model.Schedule) (Parts, error) {
	if err := ins.Feasible(sched); err != nil {
		return Parts{}, fmt.Errorf("analysis: %w", err)
	}
	eval := model.NewEvaluator(ins)
	var p Parts
	prev := make(model.Config, ins.D())
	for t := 1; t <= ins.T(); t++ {
		x := sched[t-1]
		op := eval.G(t, x)
		idle := 0.0
		for j := range ins.Types {
			idle += float64(x[j]) * ins.Types[j].Cost.At(t).Value(0)
		}
		p.Idle += idle
		p.LoadDependent += op - idle
		p.Switching += ins.SwitchCost(prev, x)
		prev = x
	}
	return p, nil
}

// LoadDependentPerSlot returns L_{t,j}(X) for one slot and type: the
// operating cost of type j's servers above their idle floor under the
// slot's optimal dispatch.
func LoadDependentPerSlot(ins *model.Instance, t int, x model.Config) []float64 {
	eval := model.NewEvaluator(ins)
	split := eval.Split(t, x)
	return LoadDependentWithVolumes(ins, t, x, split.Y)
}

// LoadDependentWithVolumes returns L_{t,j} for configuration x when type j
// carries job volume y[j] — the load split held fixed externally.
//
// This is the form Lemma 4 actually compares: the paper's z_{t,j} is one
// common split shared by x^A and x̂^t (the proof spreads the same per-type
// volume over more servers, which Jensen makes cheaper). With each
// configuration's own optimal split the per-type inequality can fail —
// x̂'s dispatch may route type j more volume than x^A's does — a subtlety
// our empirical Lemma-4 check exposed and this API encodes.
func LoadDependentWithVolumes(ins *model.Instance, t int, x model.Config, y []float64) []float64 {
	out := make([]float64, ins.D())
	for j := range ins.Types {
		if x[j] == 0 {
			continue
		}
		f := ins.Types[j].Cost.At(t)
		load := y[j] / float64(x[j])
		out[j] = float64(x[j]) * (f.Value(load) - f.Value(0))
	}
	return out
}

// BlockCostsA computes the H_{j,i} of Equation (4) for an Algorithm A run:
// one block per powered-up server (power-ups at slot s with count k yield
// k blocks), each costing β_j + t̄_j·f_j(0). Types that never power down
// (zero idle cost, t̄ effectively infinite) account the actual remaining
// horizon instead of t̄.
func BlockCostsA(ins *model.Instance, powerUps [][]int, tbars []int) ([]float64, error) {
	if len(powerUps) != ins.D() || len(tbars) != ins.D() {
		return nil, fmt.Errorf("analysis: need per-type histories and timeouts")
	}
	out := make([]float64, ins.D())
	for j := range ins.Types {
		idle := ins.Types[j].Cost.At(1).Value(0)
		beta := ins.Types[j].SwitchCost
		for s, k := range powerUps[j] {
			if k == 0 {
				continue
			}
			span := tbars[j]
			if remaining := ins.T() - s; span > remaining {
				span = remaining // infinite-timeout servers run to the horizon
			}
			out[j] += float64(k) * (beta + float64(span)*idle)
		}
	}
	return out, nil
}
