package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/solver"
)

func randomStatic(rng *rand.Rand, maxD, maxM, maxT int) *model.Instance {
	d := 1 + rng.Intn(maxD)
	T := 2 + rng.Intn(maxT)
	types := make([]model.ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(maxM)
		capacity := 0.5 + rng.Float64()*2
		var f costfn.Func
		switch rng.Intn(3) {
		case 0:
			f = costfn.Constant{C: 0.2 + rng.Float64()*2}
		case 1:
			f = costfn.Affine{Idle: 0.2 + rng.Float64(), Rate: rng.Float64() * 2}
		default:
			f = costfn.Power{Idle: 0.2 + rng.Float64(), Coef: 0.2 + rng.Float64(), Exp: 1 + rng.Float64()*2}
		}
		types[j] = model.ServerType{
			Count: count, SwitchCost: 0.5 + rng.Float64()*6, MaxLoad: capacity,
			Cost: model.Static{F: f},
		}
		totalCap += float64(count) * capacity
	}
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = rng.Float64() * totalCap * 0.85
	}
	return &model.Instance{Types: types, Lambda: lambda}
}

// The decomposition must reassemble to the evaluator's total cost exactly.
func TestDecomposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		ins := randomStatic(rng, 3, 3, 8)
		res, err := solver.SolveOptimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Decompose(ins, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Cost()
		if !numeric.AlmostEqual(p.Total(), want, 1e-9) {
			t.Fatalf("case %d: decomposition %g != cost %g", i, p.Total(), want)
		}
		if p.LoadDependent < -1e-9 || p.Idle < -1e-9 {
			t.Fatalf("case %d: negative parts %+v", i, p)
		}
		if !numeric.AlmostEqual(p.Switching, res.Breakdown.Switching, 1e-9) {
			t.Fatalf("case %d: switching part mismatch", i)
		}
	}
}

func TestDecomposeRejectsInfeasible(t *testing.T) {
	ins := randomStatic(rand.New(rand.NewSource(2)), 1, 2, 3)
	bad := make(model.Schedule, ins.T())
	for i := range bad {
		bad[i] = make(model.Config, ins.D()) // all zeros
	}
	if _, err := Decompose(ins, bad); err == nil {
		t.Error("expected feasibility error")
	}
}

// Lemma 5: the load-dependent cost of Algorithm A's schedule is at most
// the optimal total cost.
func TestLemma5LoadDependentBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		ins := randomStatic(rng, 2, 3, 8)
		a, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		sched := core.Run(a, ins)
		p, err := Decompose(ins, sched)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.LessEqual(p.LoadDependent, opt, 1e-6) {
			t.Fatalf("case %d: Lemma 5 violated: L = %g > OPT = %g", i, p.LoadDependent, opt)
		}
	}
}

// Lemma 7: per type, the block costs Σ_i H_{j,i} are at most 2·OPT, and
// they upper-bound Algorithm A's actual idle+switching spending.
func TestLemma7BlockBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		ins := randomStatic(rng, 2, 3, 8)
		a, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		sched := core.Run(a, ins)
		tbars := make([]int, ins.D())
		for j := range tbars {
			tbars[j] = a.Timeout(j)
		}
		hs, err := BlockCostsA(ins, a.PowerUpHistory(), tbars)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		for j, h := range hs {
			if !numeric.LessEqual(h, 2*opt, 1e-6) {
				t.Fatalf("case %d type %d: Lemma 7 violated: ΣH = %g > 2·OPT = %g",
					i, j, h, 2*opt)
			}
		}
		// The H terms plus load-dependent cost upper-bound the actual
		// total (Theorem 8's assembly).
		p, err := Decompose(ins, sched)
		if err != nil {
			t.Fatal(err)
		}
		sumH := 0.0
		for _, h := range hs {
			sumH += h
		}
		if !numeric.LessEqual(p.Total(), sumH+p.LoadDependent, 1e-6) {
			t.Fatalf("case %d: C(X^A) = %g exceeds ΣH + L = %g",
				i, p.Total(), sumH+p.LoadDependent)
		}
	}
}

// Lemma 4: per slot and type, Algorithm A's load-dependent cost is at
// most the prefix optimum's — under a COMMON load split (the prefix
// optimum's dispatch), which is the reading the proof's Jensen step uses.
// The test also documents that the naive reading (each config under its
// own optimal split) fails, which is why LoadDependentWithVolumes exists.
func TestLemma4PerSlotDomination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eachOwnSplitViolated := false
	for i := 0; i < 20; i++ {
		ins := randomStatic(rng, 2, 3, 6)
		a, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		eval := model.NewEvaluator(ins)
		for tt := 1; tt <= ins.T(); tt++ {
			x := a.Step(ins.Slot(tt)).Clone()
			xhat := a.PrefixOpt()
			y := eval.Split(tt, xhat).Y // common split: x̂'s optimal dispatch
			la := LoadDependentWithVolumes(ins, tt, x, y)
			lh := LoadDependentWithVolumes(ins, tt, xhat, y)
			for j := range la {
				if !numeric.LessEqual(la[j], lh[j], 1e-6) {
					t.Fatalf("case %d slot %d type %d: L(X^A)=%g > L(X̂)=%g under common split",
						i, tt, j, la[j], lh[j])
				}
			}
			// Naive reading (own splits): record violations; they are
			// expected to occur and motivate the common-split API.
			laOwn := LoadDependentPerSlot(ins, tt, x)
			lhOwn := LoadDependentPerSlot(ins, tt, xhat)
			for j := range laOwn {
				if laOwn[j] > lhOwn[j]+1e-9 {
					eachOwnSplitViolated = true
				}
			}
		}
	}
	if !eachOwnSplitViolated {
		t.Log("note: no own-split violation sampled this run (seed-dependent)")
	}
}

func TestBlockCostsAValidation(t *testing.T) {
	ins := randomStatic(rand.New(rand.NewSource(6)), 1, 2, 3)
	if _, err := BlockCostsA(ins, nil, nil); err == nil {
		t.Error("expected dimension error")
	}
}

func TestBlockCostsInfiniteTimeoutClamped(t *testing.T) {
	// Zero idle cost: t̄ is effectively infinite; block spans clamp to the
	// horizon and H reduces to β per power-up.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 5, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 0, Rate: 1}},
		}},
		Lambda: []float64{1, 1, 1},
	}
	a, err := core.NewAlgorithmA(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(a, ins)
	hs, err := BlockCostsA(ins, a.PowerUpHistory(), []int{a.Timeout(0)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hs[0]-5) > 1e-12 {
		t.Errorf("H = %g, want 5 (single power-up, zero idle)", hs[0])
	}
}
