// Package baseline provides comparison algorithms for the experiments:
// the static and memoryless strategies a data-center operator might deploy
// without the paper's machinery, plus the homogeneous lazy-capacity
// baseline from the prior literature and a semi-online lookahead control.
// All of them implement core.Online and are fed slot data push-style.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/numeric"
)

// compile-time interface checks.
var (
	_ core.Online   = (*AllOn)(nil)
	_ core.Online   = (*LoadTracking)(nil)
	_ core.Online   = (*SkiRental)(nil)
	_ core.Online   = (*LCP)(nil)
	_ core.Online   = (*Lookahead)(nil)
	_ core.Buffered = (*Lookahead)(nil)
)

// resolveInto materialises the input's template fallbacks into the given
// scratch slices and returns a fully-resolved SlotInput.
func resolveInto(in model.SlotInput, fleet []model.ServerType, costs []costfn.Func, counts []int) model.SlotInput {
	for j := range fleet {
		costs[j] = in.Cost(j, fleet[j].Cost)
		counts[j] = in.Count(j, fleet[j].Count)
	}
	return model.SlotInput{T: in.T, Lambda: in.Lambda, Costs: costs, Counts: counts}
}

// validateFleet checks the static per-type parameters shared by every
// baseline constructor.
func validateFleet(types []model.ServerType) error {
	if len(types) == 0 {
		return fmt.Errorf("baseline: fleet has no server types")
	}
	for j, st := range types {
		if st.Count < 0 {
			return fmt.Errorf("baseline: type %d has negative count %d", j, st.Count)
		}
		if st.SwitchCost < 0 {
			return fmt.Errorf("baseline: type %d has negative switching cost %g", j, st.SwitchCost)
		}
		if st.MaxLoad <= 0 {
			return fmt.Errorf("baseline: type %d has non-positive capacity %g", j, st.MaxLoad)
		}
	}
	return nil
}

// AllOn keeps the whole fleet powered for the entire horizon: the
// "static provisioning" strategy right-sizing is measured against. With
// time-varying sizes it keeps every available server powered.
type AllOn struct {
	fleet []model.ServerType
	out   model.Config
}

// NewAllOn builds the baseline for a fleet template.
func NewAllOn(types []model.ServerType) (*AllOn, error) {
	if err := validateFleet(types); err != nil {
		return nil, err
	}
	return &AllOn{
		fleet: append([]model.ServerType(nil), types...),
		out:   make(model.Config, len(types)),
	}, nil
}

// Name implements core.Online.
func (a *AllOn) Name() string { return "AllOn" }

// Step implements core.Online.
func (a *AllOn) Step(in model.SlotInput) model.Config {
	for j := range a.out {
		a.out[j] = in.Count(j, a.fleet[j].Count)
	}
	return a.out
}

// LoadTracking picks, every slot, a configuration minimising the slot's
// operating cost g_t(x) while ignoring switching costs entirely — the
// memoryless instantaneous optimiser. It thrashes on bursty loads, which
// is exactly what the experiments need it to demonstrate. Ties break
// toward the lexicographically smallest configuration.
type LoadTracking struct {
	fleet  []model.ServerType
	eval   *model.SlotEval
	g      *grid.Grid   // lattice cached while the counts stay unchanged
	gm     []int        // counts the cached lattice was built for
	cfg    model.Config // decode scratch
	out    model.Config // scratch returned by Step
	costs  []costfn.Func
	counts []int
}

// NewLoadTracking builds the baseline for a fleet template.
func NewLoadTracking(types []model.ServerType) (*LoadTracking, error) {
	if err := validateFleet(types); err != nil {
		return nil, err
	}
	d := len(types)
	return &LoadTracking{
		fleet:  append([]model.ServerType(nil), types...),
		eval:   model.NewSlotEval(types),
		cfg:    make(model.Config, d),
		out:    make(model.Config, d),
		costs:  make([]costfn.Func, d),
		counts: make([]int, d),
	}, nil
}

// Name implements core.Online.
func (l *LoadTracking) Name() string { return "LoadTracking" }

// Step implements core.Online.
func (l *LoadTracking) Step(in model.SlotInput) model.Config {
	rin := resolveInto(in, l.fleet, l.costs, l.counts)
	return l.bestConfig(rin)
}

// lattice returns the slot's full configuration lattice, rebuilding only
// when the counts changed (static fleets keep one grid for the whole run).
func (l *LoadTracking) lattice(counts []int) *grid.Grid {
	if l.g == nil || !numeric.EqualInts(counts, l.gm) {
		l.g = grid.NewFull(counts)
		l.gm = append(l.gm[:0], counts...)
	}
	return l.g
}

// bestConfig scans the slot's full lattice for the cheapest configuration.
func (l *LoadTracking) bestConfig(in model.SlotInput) model.Config {
	g := l.lattice(in.Counts)
	best := math.Inf(1)
	bestIdx := -1
	for idx := 0; idx < g.Size(); idx++ {
		g.Decode(idx, l.cfg)
		if v := l.eval.G(in, l.cfg); v < best {
			best = v
			bestIdx = idx
		}
	}
	if bestIdx < 0 {
		panic(fmt.Sprintf("baseline: no feasible configuration at slot %d", in.T))
	}
	g.Decode(bestIdx, l.out)
	return l.out
}

// SkiRental is the classic timeout heuristic: follow the load-tracking
// target upward immediately, but keep surplus servers powered until their
// accumulated idle cost since becoming surplus exceeds the switching cost
// β_j (per type), then release them. It is Algorithm B's power-down rule
// glued to a memoryless power-up rule — competitive in neither sense, but
// the natural operator policy.
type SkiRental struct {
	lt    *LoadTracking
	fleet []model.ServerType
	x     model.Config
	acc   []float64 // accumulated idle cost while surplus, per type
}

// NewSkiRental builds the baseline for a fleet template.
func NewSkiRental(types []model.ServerType) (*SkiRental, error) {
	lt, err := NewLoadTracking(types)
	if err != nil {
		return nil, err
	}
	return &SkiRental{
		lt:    lt,
		fleet: lt.fleet,
		x:     make(model.Config, len(types)),
		acc:   make([]float64, len(types)),
	}, nil
}

// Name implements core.Online.
func (s *SkiRental) Name() string { return "SkiRental" }

// Step implements core.Online.
func (s *SkiRental) Step(in model.SlotInput) model.Config {
	target := s.lt.Step(in) // shares the per-slot lattice scan
	for j := range s.x {
		// Respect shrinking fleets before anything else.
		if m := in.Count(j, s.fleet[j].Count); s.x[j] > m {
			s.x[j] = m
			s.acc[j] = 0
		}
		switch {
		case s.x[j] < target[j]:
			s.x[j] = target[j]
			s.acc[j] = 0
		case s.x[j] == target[j]:
			s.acc[j] = 0
		default: // surplus servers: rent until the budget is spent
			s.acc[j] += in.Cost(j, s.fleet[j].Cost).Value(0)
			if s.acc[j] > s.fleet[j].SwitchCost {
				s.x[j] = target[j]
				s.acc[j] = 0
			}
		}
	}
	return s.x
}
