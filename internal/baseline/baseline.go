// Package baseline provides comparison algorithms for the experiments:
// the static and memoryless strategies a data-center operator might deploy
// without the paper's machinery, plus the homogeneous lazy-capacity
// baseline from the prior literature and a semi-online receding-horizon
// control. All of them implement core.Online and are driven slot-by-slot.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/model"
)

// compile-time interface checks.
var (
	_ core.Online = (*AllOn)(nil)
	_ core.Online = (*LoadTracking)(nil)
	_ core.Online = (*SkiRental)(nil)
	_ core.Online = (*LCP)(nil)
	_ core.Online = (*RecedingHorizon)(nil)
)

// AllOn keeps the whole fleet powered for the entire horizon: the
// "static provisioning" strategy right-sizing is measured against. With
// time-varying sizes it keeps every available server powered.
type AllOn struct {
	ins *model.Instance
	t   int
}

// NewAllOn builds the baseline.
func NewAllOn(ins *model.Instance) (*AllOn, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return &AllOn{ins: ins}, nil
}

// Name implements core.Online.
func (a *AllOn) Name() string { return "AllOn" }

// Done implements core.Online.
func (a *AllOn) Done() bool { return a.t >= a.ins.T() }

// Step implements core.Online.
func (a *AllOn) Step() model.Config {
	if a.Done() {
		panic("baseline: AllOn stepped past the last slot")
	}
	a.t++
	x := make(model.Config, a.ins.D())
	for j := range x {
		x[j] = a.ins.CountAt(a.t, j)
	}
	return x
}

// LoadTracking picks, every slot, a configuration minimising the slot's
// operating cost g_t(x) while ignoring switching costs entirely — the
// memoryless instantaneous optimiser. It thrashes on bursty loads, which
// is exactly what the experiments need it to demonstrate. Ties break
// toward the lexicographically smallest configuration.
type LoadTracking struct {
	ins    *model.Instance
	eval   *model.Evaluator
	static *grid.Grid // cached lattice when fleet sizes are static
	t      int
	cfg    model.Config
}

// NewLoadTracking builds the baseline.
func NewLoadTracking(ins *model.Instance) (*LoadTracking, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	lt := &LoadTracking{
		ins:  ins,
		eval: model.NewEvaluator(ins),
		cfg:  make(model.Config, ins.D()),
	}
	if !ins.TimeVarying() {
		lt.static = grid.NewFull(countsAt(ins, 1))
	}
	return lt, nil
}

// Name implements core.Online.
func (l *LoadTracking) Name() string { return "LoadTracking" }

// Done implements core.Online.
func (l *LoadTracking) Done() bool { return l.t >= l.ins.T() }

// Step implements core.Online.
func (l *LoadTracking) Step() model.Config {
	if l.Done() {
		panic("baseline: LoadTracking stepped past the last slot")
	}
	l.t++
	return l.bestConfig(l.t)
}

// bestConfig scans the slot's full lattice for the cheapest configuration.
func (l *LoadTracking) bestConfig(t int) model.Config {
	g := l.static
	if g == nil {
		g = grid.NewFull(countsAt(l.ins, t))
	}
	best := math.Inf(1)
	bestIdx := -1
	for idx := 0; idx < g.Size(); idx++ {
		g.Decode(idx, l.cfg)
		if v := l.eval.G(t, l.cfg); v < best {
			best = v
			bestIdx = idx
		}
	}
	if bestIdx < 0 {
		panic(fmt.Sprintf("baseline: no feasible configuration at slot %d", t))
	}
	out := make(model.Config, l.ins.D())
	g.Decode(bestIdx, out)
	return out
}

// SkiRental is the classic timeout heuristic: follow the load-tracking
// target upward immediately, but keep surplus servers powered until their
// accumulated idle cost since becoming surplus exceeds the switching cost
// β_j (per type), then release them. It is Algorithm B's power-down rule
// glued to a memoryless power-up rule — competitive in neither sense, but
// the natural operator policy.
type SkiRental struct {
	lt  *LoadTracking
	ins *model.Instance
	t   int
	x   model.Config
	acc []float64 // accumulated idle cost while surplus, per type
}

// NewSkiRental builds the baseline.
func NewSkiRental(ins *model.Instance) (*SkiRental, error) {
	lt, err := NewLoadTracking(ins)
	if err != nil {
		return nil, err
	}
	return &SkiRental{
		lt:  lt,
		ins: ins,
		x:   make(model.Config, ins.D()),
		acc: make([]float64, ins.D()),
	}, nil
}

// Name implements core.Online.
func (s *SkiRental) Name() string { return "SkiRental" }

// Done implements core.Online.
func (s *SkiRental) Done() bool { return s.t >= s.ins.T() }

// Step implements core.Online.
func (s *SkiRental) Step() model.Config {
	target := s.lt.Step() // advances the shared slot counter
	s.t++
	for j := range s.x {
		// Respect shrinking fleets before anything else.
		if m := s.ins.CountAt(s.t, j); s.x[j] > m {
			s.x[j] = m
			s.acc[j] = 0
		}
		switch {
		case s.x[j] < target[j]:
			s.x[j] = target[j]
			s.acc[j] = 0
		case s.x[j] == target[j]:
			s.acc[j] = 0
		default: // surplus servers: rent until the budget is spent
			s.acc[j] += s.ins.Types[j].Cost.At(s.t).Value(0)
			if s.acc[j] > s.ins.Types[j].SwitchCost {
				s.x[j] = target[j]
				s.acc[j] = 0
			}
		}
	}
	return s.x.Clone()
}

// countsAt materialises the per-slot fleet sizes.
func countsAt(ins *model.Instance, t int) []int {
	m := make([]int, ins.D())
	for j := range m {
		m[j] = ins.CountAt(t, j)
	}
	return m
}
