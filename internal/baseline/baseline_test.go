package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/solver"
	"repro/internal/workload"
)

func smallInstance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{
			{Name: "slow", Count: 3, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Name: "fast", Count: 2, SwitchCost: 8, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.5}}},
		},
		Lambda: []float64{1, 4, 2, 0, 3},
	}
}

func homogeneousInstance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{{
			Count: 5, SwitchCost: 3, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 0.5}},
		}},
		Lambda: workload.Diurnal(30, 0.5, 4.5, 10, 0),
	}
}

func runAll(t *testing.T, ins *model.Instance, algs ...core.Online) map[string]model.Schedule {
	t.Helper()
	out := map[string]model.Schedule{}
	for _, a := range algs {
		s := core.Run(a, ins)
		if err := ins.Feasible(s); err != nil {
			t.Fatalf("%s: infeasible schedule: %v", a.Name(), err)
		}
		out[a.Name()] = s
	}
	return out
}

func TestAllOnKeepsFleetUp(t *testing.T) {
	ins := smallInstance()
	a, err := NewAllOn(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.Run(a, ins)
	for tt, x := range sched {
		if x[0] != 3 || x[1] != 2 {
			t.Fatalf("slot %d: %v, want (3, 2)", tt+1, x)
		}
	}
}

func TestAllOnTimeVarying(t *testing.T) {
	ins := smallInstance()
	ins.Counts = [][]int{{3, 2}, {2, 2}, {3, 1}, {3, 2}, {3, 2}}
	a, _ := NewAllOn(ins.Types)
	sched := core.Run(a, ins)
	if sched[1][0] != 2 || sched[2][1] != 1 {
		t.Error("AllOn should track available counts")
	}
	if err := ins.Feasible(sched); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTrackingMinimisesSlotCost(t *testing.T) {
	ins := smallInstance()
	lt, err := NewLoadTracking(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	eval := model.NewEvaluator(ins)
	for tt := 1; tt <= ins.T(); tt++ {
		x := lt.Step(ins.Slot(tt))
		got := eval.G(tt, x)
		// Exhaustively verify optimality.
		best := math.Inf(1)
		for a := 0; a <= 3; a++ {
			for b := 0; b <= 2; b++ {
				if v := eval.G(tt, model.Config{a, b}); v < best {
					best = v
				}
			}
		}
		if !numeric.AlmostEqual(got, best, 1e-9) {
			t.Fatalf("slot %d: G=%g, best=%g", tt, got, best)
		}
	}
}

func TestLoadTrackingZeroDemandShutsDown(t *testing.T) {
	ins := smallInstance() // slot 4 has λ=0 and positive idle costs
	lt, _ := NewLoadTracking(ins.Types)
	sched := core.Run(lt, ins)
	if !sched[3].IsZero() {
		t.Errorf("slot 4 config %v, want all-off at zero demand", sched[3])
	}
}

func TestSkiRentalHoldsThenReleases(t *testing.T) {
	// One type, β=2, idle 1: surplus servers survive exactly two extra
	// slots (accumulated idle 2 not > 2) and drop on the third.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 2, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{2, 0, 0, 0, 0},
	}
	s, err := NewSkiRental(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.Run(s, ins)
	want := []int{2, 2, 2, 0, 0}
	for i := range want {
		if sched[i][0] != want[i] {
			t.Fatalf("trace %v, want %v", sched, want)
		}
	}
}

func TestSkiRentalFeasibleOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		ins := randomInstance(rng)
		s, err := NewSkiRental(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		sched := core.Run(s, ins)
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestSkiRentalTimeVaryingClamp(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 3, SwitchCost: 100, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{3, 1, 1},
		Counts: [][]int{{3}, {1}, {3}},
	}
	s, _ := NewSkiRental(ins.Types)
	sched := core.Run(s, ins)
	if sched[1][0] != 1 {
		t.Errorf("slot 2 keeps %d servers, fleet only has 1", sched[1][0])
	}
	if err := ins.Feasible(sched); err != nil {
		t.Fatal(err)
	}
}

func TestLCPRequiresHomogeneous(t *testing.T) {
	if _, err := NewLCP(smallInstance().Types); err == nil {
		t.Error("d=2 should be rejected")
	}
}

func TestLCPFeasibleAndReasonable(t *testing.T) {
	ins := homogeneousInstance()
	l, err := NewLCP(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.Run(l, ins)
	if err := ins.Feasible(sched); err != nil {
		t.Fatal(err)
	}
	// The discrete LCP is 3-competitive on homogeneous instances
	// (Albers–Quedenfeld 2018); assert the bound empirically.
	cost := model.NewEvaluator(ins).Cost(sched).Total()
	opt, err := solver.OptimalCost(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.LessEqual(cost, 3*opt, 1e-9) {
		t.Errorf("LCP cost %g exceeds 3·OPT = %g", cost, 3*opt)
	}
}

func TestLCPLazyness(t *testing.T) {
	// Constant demand: after the initial ramp LCP should never move.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 4, SwitchCost: 5, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{2, 2, 2, 2, 2, 2},
	}
	l, _ := NewLCP(ins.Types)
	sched := core.Run(l, ins)
	for tt := 1; tt < len(sched); tt++ {
		if sched[tt][0] != sched[0][0] {
			t.Fatalf("LCP moved on constant demand: %v", sched)
		}
	}
}

func TestRecedingHorizonWindowValidation(t *testing.T) {
	if _, err := NewLookahead(smallInstance().Types, 0); err == nil {
		t.Error("w=0 should be rejected")
	}
}

func TestRecedingHorizonFullLookaheadIsOptimalPrefixWise(t *testing.T) {
	// With w >= T the first committed decision comes from an exact solve
	// of the entire remaining instance, so the total cost matches OPT.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		ins := randomInstance(rng)
		rh, err := NewLookahead(ins.Types, ins.T())
		if err != nil {
			t.Fatal(err)
		}
		sched := core.Run(rh, ins)
		cost := model.NewEvaluator(ins).Cost(sched).Total()
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(cost, opt, 1e-6) {
			t.Fatalf("case %d: full-lookahead MPC %g != OPT %g", i, cost, opt)
		}
	}
}

func TestRecedingHorizonImprovesWithWindow(t *testing.T) {
	ins := homogeneousInstance()
	eval := model.NewEvaluator(ins)
	costs := map[int]float64{}
	for _, w := range []int{1, 3, ins.T()} {
		rh, err := NewLookahead(ins.Types, w)
		if err != nil {
			t.Fatal(err)
		}
		sched := core.Run(rh, ins)
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		costs[w] = eval.Cost(sched).Total()
	}
	if costs[ins.T()] > costs[1]*(1+1e-9) {
		t.Errorf("full lookahead (%g) should not lose to w=1 (%g)", costs[ins.T()], costs[1])
	}
}

func TestAllBaselinesOnHeterogeneousInstance(t *testing.T) {
	ins := smallInstance()
	allOn, _ := NewAllOn(ins.Types)
	lt, _ := NewLoadTracking(ins.Types)
	sr, _ := NewSkiRental(ins.Types)
	rh, _ := NewLookahead(ins.Types, 2)
	runAll(t, ins, allOn, lt, sr, rh)
}

// Lookahead is the only Buffered baseline: its decisions lag the input by
// w-1 slots and Flush drains the tail, reproducing the batch policy's
// shrinking end-of-horizon windows.
func TestLookaheadBuffersAndFlushes(t *testing.T) {
	ins := smallInstance()
	rh, err := NewLookahead(ins.Types, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got model.Schedule
	for ts := 1; ts <= ins.T(); ts++ {
		x := rh.Step(ins.Slot(ts))
		if ts < 3 {
			if x != nil {
				t.Fatalf("slot %d: decision before the window filled", ts)
			}
			continue
		}
		if x == nil {
			t.Fatalf("slot %d: expected a decision", ts)
		}
		got = append(got, x.Clone())
	}
	if rh.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", rh.Pending())
	}
	for _, x := range rh.Flush() {
		got = append(got, x.Clone())
	}
	if len(got) != ins.T() {
		t.Fatalf("decided %d slots, want %d", len(got), ins.T())
	}
	if err := ins.Feasible(got); err != nil {
		t.Fatal(err)
	}
	var _ core.Buffered = rh
}

func randomInstance(rng *rand.Rand) *model.Instance {
	d := 1 + rng.Intn(2)
	T := 2 + rng.Intn(6)
	types := make([]model.ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(3)
		capacity := 0.5 + rng.Float64()*2
		types[j] = model.ServerType{
			Count:      count,
			SwitchCost: 0.5 + rng.Float64()*6,
			MaxLoad:    capacity,
			Cost: model.Static{F: costfn.Power{
				Idle: 0.1 + rng.Float64(),
				Coef: rng.Float64() * 2,
				Exp:  1 + rng.Float64()*2,
			}},
		}
		totalCap += float64(count) * capacity
	}
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = rng.Float64() * totalCap * 0.9
	}
	return &model.Instance{Types: types, Lambda: lambda}
}

func BenchmarkLoadTrackingT48(b *testing.B) {
	ins := &model.Instance{
		Types: []model.ServerType{
			{Count: 16, SwitchCost: 4, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Count: 8, SwitchCost: 10, MaxLoad: 4,
				Cost: model.Static{F: costfn.Power{Idle: 2, Coef: 1, Exp: 2}}},
		},
		Lambda: workload.Diurnal(48, 2, 40, 24, 0),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lt, err := NewLoadTracking(ins.Types)
		if err != nil {
			b.Fatal(err)
		}
		core.Run(lt, ins)
	}
}
