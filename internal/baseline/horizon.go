package baseline

import (
	"fmt"
	"math"

	"repro/internal/costfn"
	"repro/internal/grid"
	"repro/internal/model"
)

// Lookahead is receding-horizon control (model-predictive control) recast
// for the push-based streaming API: a wrapper that buffers w slots of
// input before committing each decision, making its semi-online nature
// explicit in the interface rather than by convention. The advisory for
// slot t is produced only once slots t..t+w-1 have been ingested (Step
// returns nil while the window fills) or the stream has been flushed; it
// solves the buffered window optimally starting from the current
// configuration, commits only the first decision, and rolls forward —
// exactly the classic receding-horizon policy, which assumed oracle access
// to the next w slots.
//
// The window DP is the naive O(w·|M|²·d) transition; the wrapper runs on
// small lattices, and keeping it independent of the solver package's fast
// sweep gives the tests another differential oracle.
type Lookahead struct {
	fleet []model.ServerType
	w     int
	eval  *model.SlotEval
	buf   []model.SlotInput // ingested, undecided slots (deep copies)
	x     model.Config      // configuration committed for the newest decided slot
	out   model.Config      // scratch returned by Step
}

// NewLookahead builds the wrapper with lookahead window w >= 1 (w = 1 sees
// only the current slot: greedy with switching awareness, and decisions
// never lag).
func NewLookahead(types []model.ServerType, w int) (*Lookahead, error) {
	if err := validateFleet(types); err != nil {
		return nil, err
	}
	if w < 1 {
		return nil, fmt.Errorf("baseline: lookahead window must be >= 1, got %d", w)
	}
	return &Lookahead{
		fleet: append([]model.ServerType(nil), types...),
		w:     w,
		eval:  model.NewSlotEval(types),
		x:     make(model.Config, len(types)),
		out:   make(model.Config, len(types)),
	}, nil
}

// Name implements core.Online. The display name keeps the policy's
// literature name (the Lookahead type is the streaming wrapper around it).
func (l *Lookahead) Name() string { return fmt.Sprintf("RecedingHorizon(w=%d)", l.w) }

// Window returns the lookahead width w.
func (l *Lookahead) Window() int { return l.w }

// Step implements core.Online: it buffers the slot and, once the window
// holds w slots, decides and returns the oldest undecided slot's
// configuration. While the window fills it returns nil.
func (l *Lookahead) Step(in model.SlotInput) model.Config {
	d := len(l.fleet)
	costs := make([]costfn.Func, d)
	counts := make([]int, d)
	l.buf = append(l.buf, resolveInto(in, l.fleet, costs, counts))
	if len(l.buf) < l.w {
		return nil
	}
	return l.decideOne()
}

// Pending implements core.Buffered.
func (l *Lookahead) Pending() int { return len(l.buf) }

// Flush implements core.Buffered: the stream has ended, so the remaining
// windows shrink toward the horizon exactly as the batch policy's do.
func (l *Lookahead) Flush() []model.Config {
	out := make([]model.Config, 0, len(l.buf))
	for len(l.buf) > 0 {
		out = append(out, l.decideOne().Clone())
	}
	return out
}

// decideOne solves the buffered window [t, t+len(buf)-1] by backward DP
// and commits the first decision: V_k[x] = g_k(x) + min_{x'} (sw(x→x') +
// V_{k+1}[x']). The first-slot argmin including the switch from the
// current configuration is the committed decision.
func (l *Lookahead) decideOne() model.Config {
	d := len(l.fleet)
	cfg := make(model.Config, d)
	next := make(model.Config, d)

	var value []float64 // V_{k+1}
	var vGrid *grid.Grid
	for k := len(l.buf) - 1; k >= 0; k-- {
		in := l.buf[k]
		g := grid.NewFull(in.Counts)
		cur := make([]float64, g.Size())
		for idx := range cur {
			g.Decode(idx, cfg)
			op := l.eval.G(in, cfg)
			if math.IsInf(op, 1) {
				cur[idx] = op
				continue
			}
			future := 0.0
			if value != nil {
				best := math.Inf(1)
				for nIdx := range value {
					vGrid.Decode(nIdx, next)
					c := value[nIdx] + model.SwitchCostOf(l.fleet, cfg, next)
					if c < best {
						best = c
					}
				}
				future = best
			}
			cur[idx] = op + future
		}
		value, vGrid = cur, g
	}

	bestIdx, bestVal := -1, math.Inf(1)
	for idx := range value {
		vGrid.Decode(idx, cfg)
		c := value[idx] + model.SwitchCostOf(l.fleet, l.x, cfg)
		if c < bestVal {
			bestVal, bestIdx = c, idx
		}
	}
	if bestIdx < 0 {
		panic(fmt.Sprintf("baseline: no feasible window plan at slot %d", l.buf[0].T))
	}
	vGrid.Decode(bestIdx, l.x)
	l.buf = l.buf[1:]
	copy(l.out, l.x)
	return l.out
}
