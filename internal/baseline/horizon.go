package baseline

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/model"
)

// RecedingHorizon is model-predictive control with a lookahead window: at
// slot t it assumes exact knowledge of the next w slots (a semi-online
// model, strictly stronger than the paper's online model), solves the
// window optimally starting from its current configuration, commits only
// the first decision, and rolls forward. It quantifies how much limited
// lookahead buys relative to the fully online algorithms.
//
// The window DP is the naive O(w·|M|²·d) transition; baselines run on
// small lattices, and keeping it independent of the solver package's fast
// sweep gives the tests another differential oracle.
type RecedingHorizon struct {
	ins  *model.Instance
	w    int
	eval *model.Evaluator
	t    int
	x    model.Config
}

// NewRecedingHorizon builds the baseline with lookahead window w >= 1
// (w = 1 sees only the current slot: greedy with switching awareness).
func NewRecedingHorizon(ins *model.Instance, w int) (*RecedingHorizon, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if w < 1 {
		return nil, fmt.Errorf("baseline: lookahead window must be >= 1, got %d", w)
	}
	return &RecedingHorizon{
		ins:  ins,
		w:    w,
		eval: model.NewEvaluator(ins),
		x:    make(model.Config, ins.D()),
	}, nil
}

// Name implements core.Online.
func (r *RecedingHorizon) Name() string { return fmt.Sprintf("RecedingHorizon(w=%d)", r.w) }

// Done implements core.Online.
func (r *RecedingHorizon) Done() bool { return r.t >= r.ins.T() }

// Step implements core.Online.
func (r *RecedingHorizon) Step() model.Config {
	if r.Done() {
		panic("baseline: RecedingHorizon stepped past the last slot")
	}
	r.t++
	end := r.t + r.w - 1
	if end > r.ins.T() {
		end = r.ins.T()
	}

	// Backward DP over the window: V_k[x] = g_k(x) + min_{x'} (sw(x→x') +
	// V_{k+1}[x']). The first-slot argmin including the switch from the
	// current configuration is the committed decision.
	d := r.ins.D()
	cfg := make(model.Config, d)
	next := make(model.Config, d)

	var value []float64 // V_{k+1}
	var vGrid *grid.Grid
	for k := end; k >= r.t; k-- {
		g := grid.NewFull(countsAt(r.ins, k))
		cur := make([]float64, g.Size())
		for idx := range cur {
			g.Decode(idx, cfg)
			op := r.eval.G(k, cfg)
			if math.IsInf(op, 1) {
				cur[idx] = op
				continue
			}
			future := 0.0
			if value != nil {
				best := math.Inf(1)
				for nIdx := range value {
					vGrid.Decode(nIdx, next)
					c := value[nIdx] + r.ins.SwitchCost(cfg, next)
					if c < best {
						best = c
					}
				}
				future = best
			}
			cur[idx] = op + future
		}
		value, vGrid = cur, g
	}

	bestIdx, bestVal := -1, math.Inf(1)
	for idx := range value {
		vGrid.Decode(idx, cfg)
		c := value[idx] + r.ins.SwitchCost(r.x, cfg)
		if c < bestVal {
			bestVal, bestIdx = c, idx
		}
	}
	if bestIdx < 0 {
		panic(fmt.Sprintf("baseline: no feasible window plan at slot %d", r.t))
	}
	vGrid.Decode(bestIdx, r.x)
	return r.x.Clone()
}
