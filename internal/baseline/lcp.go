package baseline

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/solver"
)

// LCP is discrete lazy capacity provisioning for homogeneous data centers
// (d = 1), after Lin–Wierman–Andrew–Thereska and the discrete treatment of
// Albers–Quedenfeld (SPAA 2018): at every slot the server count is lazily
// clamped into the corridor [x̂_lo(t), x̂_hi(t)] spanned by the smallest
// and largest final configurations of optimal schedules for the prefix
// instance I_t. It serves as the strongest prior-work baseline on
// homogeneous instances; the paper's Algorithm A generalises the idea to
// d > 1.
type LCP struct {
	ins     *model.Instance
	tracker *solver.PrefixTracker
	x       int
}

// NewLCP builds the baseline; it requires a homogeneous instance (d = 1).
func NewLCP(ins *model.Instance) (*LCP, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if ins.D() != 1 {
		return nil, fmt.Errorf("baseline: LCP requires d = 1, got %d server types", ins.D())
	}
	tracker, err := solver.NewPrefixTracker(ins, solver.Options{})
	if err != nil {
		return nil, err
	}
	return &LCP{ins: ins, tracker: tracker}, nil
}

// Name implements core.Online.
func (l *LCP) Name() string { return "LCP" }

// Done implements core.Online.
func (l *LCP) Done() bool { return l.tracker.Done() }

// Step implements core.Online.
func (l *LCP) Step() model.Config {
	l.tracker.Advance()
	lo, hi := l.tracker.OptRange()
	l.x = numeric.ClampInt(l.x, lo[0], hi[0])
	return model.Config{l.x}
}
