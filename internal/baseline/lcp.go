package baseline

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/solver"
)

// LCP is discrete lazy capacity provisioning for homogeneous data centers
// (d = 1), after Lin–Wierman–Andrew–Thereska and the discrete treatment of
// Albers–Quedenfeld (SPAA 2018): at every slot the server count is lazily
// clamped into the corridor [x̂_lo(t), x̂_hi(t)] spanned by the smallest
// and largest final configurations of optimal schedules for the prefix
// instance I_t. It serves as the strongest prior-work baseline on
// homogeneous instances; the paper's Algorithm A generalises the idea to
// d > 1. The corridor is maintained by a streaming prefix tracker, so LCP
// is push-based like every other algorithm here.
type LCP struct {
	tracker *solver.PrefixTracker
	x       int
	optCost float64
	out     model.Config
}

// NewLCP builds the baseline; it requires a homogeneous fleet (d = 1).
func NewLCP(types []model.ServerType) (*LCP, error) {
	if err := validateFleet(types); err != nil {
		return nil, err
	}
	if len(types) != 1 {
		return nil, fmt.Errorf("baseline: LCP requires d = 1, got %d server types", len(types))
	}
	tracker, err := solver.NewStreamTracker(types, solver.Options{})
	if err != nil {
		return nil, err
	}
	return &LCP{tracker: tracker, out: make(model.Config, 1)}, nil
}

// Name implements core.Online.
func (l *LCP) Name() string { return "LCP" }

// Step implements core.Online.
func (l *LCP) Step(in model.SlotInput) model.Config {
	_, optCost, err := l.tracker.Push(in)
	if err != nil {
		panic("baseline: " + err.Error())
	}
	l.optCost = optCost
	lo, hi := l.tracker.OptRange()
	l.x = numeric.ClampInt(l.x, lo[0], hi[0])
	l.out[0] = l.x
	return l.out
}

// PrefixOptCost implements core.OptTracking: LCP's corridor tracker is
// always exact, so sessions reuse it for telemetry.
func (l *LCP) PrefixOptCost() (float64, bool) { return l.optCost, true }
