package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// RandomizedTimeout is the classic randomized ski-rental policy applied
// per server: like SkiRental it follows the load-tracking target upward
// immediately, but each surplus server draws its idle-cost budget from the
// optimal ski-rental density p(x) = e^{x/β}/(β(e−1)) on [0, β] instead of
// using the deterministic budget β. Against an oblivious adversary the
// per-server rent-or-buy subproblem becomes e/(e−1) ≈ 1.58-competitive
// instead of 2-competitive — the randomized counterpart the online
// literature (and the paper's discussion of its randomized 2-competitive
// homogeneous algorithm) motivates.
//
// Seeded explicitly so experiments remain reproducible.
type RandomizedTimeout struct {
	lt    *LoadTracking
	fleet []model.ServerType
	rng   *rand.Rand
	t     int
	x     model.Config
	acc   []float64 // accumulated idle cost while surplus, per type
	cut   []float64 // sampled budget for the current surplus episode
}

// NewRandomizedTimeout builds the baseline with the given seed.
func NewRandomizedTimeout(types []model.ServerType, seed int64) (*RandomizedTimeout, error) {
	lt, err := NewLoadTracking(types)
	if err != nil {
		return nil, err
	}
	r := &RandomizedTimeout{
		lt:    lt,
		fleet: lt.fleet,
		rng:   rand.New(rand.NewSource(seed)),
		x:     make(model.Config, len(types)),
		acc:   make([]float64, len(types)),
		cut:   make([]float64, len(types)),
	}
	for j := range r.cut {
		r.cut[j] = -1 // no active episode
	}
	return r, nil
}

// Name implements core.Online.
func (r *RandomizedTimeout) Name() string { return "RandomizedTimeout" }

// Step implements core.Online.
func (r *RandomizedTimeout) Step(in model.SlotInput) model.Config {
	target := r.lt.Step(in)
	r.t++
	for j := range r.x {
		if m := in.Count(j, r.fleet[j].Count); r.x[j] > m {
			r.x[j] = m
			r.endEpisode(j)
		}
		switch {
		case r.x[j] < target[j]:
			r.x[j] = target[j]
			r.endEpisode(j)
		case r.x[j] == target[j]:
			r.endEpisode(j)
		default:
			if r.cut[j] < 0 {
				r.cut[j] = r.sampleBudget(r.fleet[j].SwitchCost)
				r.acc[j] = 0
			}
			r.acc[j] += in.Cost(j, r.fleet[j].Cost).Value(0)
			if r.acc[j] > r.cut[j] {
				r.x[j] = target[j]
				r.endEpisode(j)
			}
		}
	}
	return r.x
}

func (r *RandomizedTimeout) endEpisode(j int) {
	r.acc[j] = 0
	r.cut[j] = -1
}

// sampleBudget draws from the optimal ski-rental distribution on [0, β]
// with density e^{x/β}/(β(e−1)), via inverse-transform sampling:
// X = β·ln(1 + (e−1)·U).
func (r *RandomizedTimeout) sampleBudget(beta float64) float64 {
	if beta <= 0 {
		return 0
	}
	u := r.rng.Float64()
	return beta * math.Log(1+(math.E-1)*u)
}

// String aids debugging.
func (r *RandomizedTimeout) String() string {
	return fmt.Sprintf("RandomizedTimeout(t=%d, x=%v)", r.t, r.x)
}
