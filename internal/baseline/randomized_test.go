package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
)

func TestRandomizedTimeoutFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 25; i++ {
		ins := randomInstance(rng)
		alg, err := NewRandomizedTimeout(ins.Types, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		sched := core.Run(alg, ins)
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestRandomizedTimeoutDeterministicPerSeed(t *testing.T) {
	ins := smallInstance()
	a, _ := NewRandomizedTimeout(ins.Types, 42)
	b, _ := NewRandomizedTimeout(smallInstance().Types, 42)
	sa := core.Run(a, ins)
	sb := core.Run(b, ins)
	for i := range sa {
		if !sa[i].Equal(sb[i]) {
			t.Fatal("same seed must reproduce the schedule")
		}
	}
}

func TestRandomizedTimeoutBudgetDistribution(t *testing.T) {
	// The sampled budget must lie in [0, β]. With X = β·ln(1+(e−1)U),
	// E[X] = β·∫₀¹ ln(1+(e−1)u) du = β/(e−1) ≈ 0.582β.
	ins := smallInstance()
	r, _ := NewRandomizedTimeout(ins.Types, 7)
	const n = 20000
	beta := 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.sampleBudget(beta)
		if x < 0 || x > beta {
			t.Fatalf("sample %g outside [0, %g]", x, beta)
		}
		sum += x
	}
	mean := sum / n
	want := beta / (math.E - 1)
	if math.Abs(mean-want) > 0.03*beta {
		t.Errorf("sample mean %g, want ≈ %g", mean, want)
	}
	if r.sampleBudget(0) != 0 {
		t.Error("β=0 should sample 0")
	}
}

func TestRandomizedTimeoutReleasesEventually(t *testing.T) {
	// Surplus servers must be gone once accumulated idle cost exceeds β
	// (the sampled budget never exceeds β).
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 3, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{3, 0, 0, 0, 0, 0},
	}
	alg, _ := NewRandomizedTimeout(ins.Types, 1)
	sched := core.Run(alg, ins)
	if sched[0][0] != 3 {
		t.Fatalf("slot 1: %v", sched[0])
	}
	// After idle costs 1+1+1 > β = 2, the surplus must be released.
	if sched[3][0] != 0 {
		t.Errorf("slot 4 still has %d servers; budget <= β forces release by then", sched[3][0])
	}
}

func TestRandomizedTimeoutMeanBehaviour(t *testing.T) {
	// Averaged over seeds, the randomized policy should not be wildly
	// worse than the deterministic SkiRental on a bursty trace.
	ins := smallInstance()
	det, _ := NewSkiRental(smallInstance().Types)
	detCost := model.NewEvaluator(ins).Cost(core.Run(det, ins)).Total()
	sum := 0.0
	const seeds = 20
	for s := int64(0); s < seeds; s++ {
		alg, _ := NewRandomizedTimeout(smallInstance().Types, s)
		sum += model.NewEvaluator(ins).Cost(core.Run(alg, ins)).Total()
	}
	mean := sum / seeds
	if mean > detCost*1.6 {
		t.Errorf("randomized mean %g far above deterministic %g", mean, detCost)
	}
}
