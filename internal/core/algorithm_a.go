package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/solver"
)

// noTimeout marks server types that never power down (idle cost zero:
// their accumulated idle cost can never exceed β_j).
const noTimeout = math.MaxInt / 4

// TypeA is the per-type state machine of Algorithm A for one server type:
// a server powered up at slot s runs for exactly t̄ slots — the block
// A_{j,i} = [s : s+t̄−1] — and is then powered down regardless of use,
// where t̄ = ⌈β_j / f_j(0)⌉ (ski-rental: power down once the idle cost
// spent would have paid for the power-up).
//
// TypeA is exported so the paper's Figure 1 can be reproduced from the
// production state machine; AlgorithmA composes d of them with the
// prefix-optimum tracker.
type TypeA struct {
	tbar int
	t    int   // slots processed
	w    []int // w[s-1]: servers powered up at slot s
	x    int   // currently active servers
}

// NewTypeA builds the state machine for timeout t̄ >= 1; pass
// TimeoutA(beta, idle) to derive t̄ from the model parameters.
func NewTypeA(tbar int) *TypeA {
	if tbar < 1 {
		panic("core: t̄ must be at least 1")
	}
	return &TypeA{tbar: tbar}
}

// TimeoutA returns t̄ = ⌈β / f(0)⌉, the run length of Algorithm A's
// servers. Zero idle cost yields an effectively infinite timeout (servers
// are never powered down); t̄ is at least 1 so a powered-up server serves
// its mandated slot.
func TimeoutA(beta, idle float64) int {
	if beta < 0 || idle < 0 {
		panic("core: negative cost parameters")
	}
	if idle == 0 {
		return noTimeout
	}
	t := int(math.Ceil(beta / idle))
	if t < 1 {
		t = 1
	}
	return t
}

// Tbar returns the timeout t̄.
func (s *TypeA) Tbar() int { return s.tbar }

// PowerUps returns a copy of w_{1..t}: the number of servers powered up at
// each processed slot. Used by the proof-decomposition analysis (the
// blocks A_{j,i} of Section 2 start at slots with w > 0).
func (s *TypeA) PowerUps() []int {
	return append([]int(nil), s.w...)
}

// Step advances one slot with prefix-optimum target xhat and returns the
// number of active servers x^A_{t,j}. It implements lines 4–8 of
// Algorithm 1: expire the servers powered up t̄ slots ago, then top up to
// xhat.
func (s *TypeA) Step(xhat int) int {
	s.t++
	s.w = append(s.w, 0)
	if expired := s.t - s.tbar; expired >= 1 {
		s.x -= s.w[expired-1]
	}
	if s.x <= xhat {
		s.w[s.t-1] = xhat - s.x
		s.x = xhat
	}
	return s.x
}

// ClampTo forcibly powers down servers so at most m stay active,
// releasing the most recently powered-up servers first (their book-keeping
// entries shrink so they no longer expire later). It extends the paper's
// algorithm — which assumes static fleet sizes — to the time-varying
// fleets of Section 4.3; the competitive analysis does not cover this
// case, but feasibility is preserved because prefix optima never exceed
// the available counts.
func (s *TypeA) ClampTo(m int) int {
	// Only power-ups within the live window [t−t̄+1, t] are still active;
	// older entries already expired and must stay untouched.
	lo := s.t - s.tbar + 1
	if lo < 1 {
		lo = 1
	}
	for t := s.t; t >= lo && s.x > m; t-- {
		drop := s.w[t-1]
		if drop > s.x-m {
			drop = s.x - m
		}
		s.w[t-1] -= drop
		s.x -= drop
	}
	if s.x > m {
		// Servers older than any recorded power-up cannot exist; guard
		// against inconsistent use.
		panic("core: ClampTo accounting mismatch")
	}
	return s.x
}

// AlgorithmA is the (2d+1)-competitive online algorithm of Section 2 for
// time-independent operating cost functions.
type AlgorithmA struct {
	fleet   []model.ServerType
	tracker *solver.PrefixTracker
	types   []*TypeA
	lastOpt model.Config
	optCost float64
	out     model.Config // scratch returned by Step
}

// Options tunes the online algorithms' internal prefix-optimum tracker.
// The zero value reproduces the paper exactly.
type Options struct {
	// TrackerGamma > 1 tracks prefix optima over the γ-reduced lattice
	// instead of the full one, shrinking the per-slot work from
	// O(Π m_j) to O(Π log_γ m_j). The power-up targets then come from a
	// (2γ−1)-approximate prefix schedule; the paper's competitive proof
	// assumes exact targets, so this is a *scalable heuristic variant* —
	// experiment E10 measures how little it costs in practice.
	TrackerGamma float64
	// TrackerWorkers parallelises the tracker's layer evaluations
	// (solver.Options.Workers semantics).
	TrackerWorkers int
}

func (o Options) solverOptions() solver.Options {
	return solver.Options{Gamma: o.TrackerGamma, Workers: o.TrackerWorkers}
}

// NewAlgorithmA prepares Algorithm A for a fleet template. Every type must
// carry a time-independent (model.Static) cost profile — Algorithm B or C
// handles the general case — because t̄_j is derived from f_j(0) before
// the first slot arrives.
func NewAlgorithmA(types []model.ServerType) (*AlgorithmA, error) {
	return NewAlgorithmAWithOptions(types, Options{})
}

// NewAlgorithmAWithOptions is NewAlgorithmA with tracker tuning.
func NewAlgorithmAWithOptions(types []model.ServerType, opts Options) (*AlgorithmA, error) {
	for j, st := range types {
		if st.Cost == nil {
			return nil, fmt.Errorf("core: type %d has no cost profile", j)
		}
		if _, ok := st.Cost.(model.Static); !ok {
			return nil, fmt.Errorf("core: Algorithm A requires time-independent operating costs")
		}
	}
	tracker, err := solver.NewStreamTracker(types, opts.solverOptions())
	if err != nil {
		return nil, err
	}
	a := &AlgorithmA{
		fleet:   append([]model.ServerType(nil), types...),
		tracker: tracker,
		types:   make([]*TypeA, len(types)),
		out:     make(model.Config, len(types)),
	}
	for j, st := range types {
		a.types[j] = NewTypeA(TimeoutA(st.SwitchCost, st.Cost.At(1).Value(0)))
	}
	return a, nil
}

// Name implements Online.
func (a *AlgorithmA) Name() string { return "AlgorithmA" }

// Step implements Online.
func (a *AlgorithmA) Step(in model.SlotInput) model.Config {
	xhat, optCost, err := a.tracker.Push(in)
	if err != nil {
		panic("core: " + err.Error())
	}
	a.optCost = optCost
	a.lastOpt = append(a.lastOpt[:0], xhat...)
	for j, st := range a.types {
		st.Step(xhat[j])
		// Fleet shrinkage (Section 4.3 extension): release the newest
		// power-ups down to the available count. x̂ respects the counts,
		// so the invariant out[j] >= x̂[j] survives; with static fleets
		// the clamp is a no-op.
		a.out[j] = st.ClampTo(in.Count(j, a.fleet[j].Count))
	}
	return a.out
}

// PrefixOpt returns x̂^t_t from the most recent Step: the final
// configuration of an optimal schedule for the prefix instance. Useful for
// instrumentation and for verifying the invariant x^A_{t,j} >= x̂^t_{t,j}.
func (a *AlgorithmA) PrefixOpt() model.Config { return a.lastOpt }

// PrefixOptCost implements OptTracking: the optimal cost of the consumed
// prefix, exact iff the tracker follows the full lattice.
func (a *AlgorithmA) PrefixOptCost() (float64, bool) { return a.optCost, a.tracker.Exact() }

// Timeout returns t̄_j for server type j.
func (a *AlgorithmA) Timeout(j int) int { return a.types[j].Tbar() }

// PowerUpHistory returns, per type, the number of servers powered up at
// each processed slot (the w_{t,j} of Algorithm 1).
func (a *AlgorithmA) PowerUpHistory() [][]int {
	out := make([][]int, len(a.types))
	for j, st := range a.types {
		out[j] = st.PowerUps()
	}
	return out
}
