package core

import (
	"math"

	"repro/internal/model"
	"repro/internal/solver"
)

// TypeB is the per-type state machine of Algorithm B for one server type
// with time-dependent idle costs l_{t,j} = f_{t,j}(0). A server powered up
// at slot u runs for t̄_{u,j} further slots, where t̄_{u,j} is the largest
// t̄ with Σ_{v=u+1}^{u+t̄} l_v <= β — i.e. it is powered down at the first
// slot t whose accumulated idle cost since the power-up exceeds β
// (the set W_t of Algorithm 2, line 5).
//
// Because the idle-cost prefix sums are non-decreasing, power-ups expire in
// FIFO order, so the pending power-ups form a queue and each Step costs
// amortised O(1).
//
// TypeB is exported so the paper's Figure 3 can be reproduced from the
// production state machine.
type TypeB struct {
	beta float64
	t    int
	lsum float64 // L[t] = Σ_{v<=t} l_v
	x    int
	// pending power-up events: slot u and count, with L[u] snapshotted.
	events []eventB
	head   int
}

type eventB struct {
	slot  int
	count int
	lsum  float64 // L[u] at the power-up slot
}

// NewTypeB builds the state machine for switching cost beta >= 0.
func NewTypeB(beta float64) *TypeB {
	if beta < 0 {
		panic("core: negative switching cost")
	}
	return &TypeB{beta: beta}
}

// Step advances one slot with idle cost l = f_{t}(0) and prefix-optimum
// target xhat, returning the active-server count x^B_{t,j}. Power-downs
// (expirations) happen before the top-up, mirroring lines 5–9 of
// Algorithm 2.
func (s *TypeB) Step(l float64, xhat int) int {
	s.t++
	s.lsum += l
	// Expire power-ups whose accumulated idle cost Σ_{v=u+1}^{t} l_v
	// exceeds β. The set W_t contains exactly these (first crossing), and
	// FIFO order is safe because L is non-decreasing.
	for s.head < len(s.events) && s.lsum-s.events[s.head].lsum > s.beta {
		s.x -= s.events[s.head].count
		s.head++
	}
	if s.x <= xhat {
		if up := xhat - s.x; up > 0 {
			s.events = append(s.events, eventB{slot: s.t, count: up, lsum: s.lsum})
		}
		s.x = xhat
	}
	return s.x
}

// Active returns the current number of active servers.
func (s *TypeB) Active() int { return s.x }

// ClampTo forcibly powers down servers so at most m stay active, releasing
// the most recently powered-up servers first. Extension for time-varying
// fleet sizes; see TypeA.ClampTo.
func (s *TypeB) ClampTo(m int) int {
	for i := len(s.events) - 1; i >= s.head && s.x > m; i-- {
		drop := s.events[i].count
		if drop > s.x-m {
			drop = s.x - m
		}
		s.events[i].count -= drop
		s.x -= drop
	}
	if s.x > m {
		panic("core: ClampTo accounting mismatch")
	}
	return s.x
}

// AlgorithmB is the (2d+1+c(I))-competitive online algorithm of
// Section 3.1 for time-dependent operating cost functions, where
// c(I) = Σ_j max_t f_{t,j}(0)/β_j.
type AlgorithmB struct {
	fleet   []model.ServerType
	tracker *solver.PrefixTracker
	types   []*TypeB
	lastOpt model.Config
	optCost float64
	out     model.Config // scratch returned by Step
}

// NewAlgorithmB prepares Algorithm B for a fleet template. Per-slot cost
// functions arrive through Step; types whose SlotInputs omit costs fall
// back to the template profile.
func NewAlgorithmB(types []model.ServerType) (*AlgorithmB, error) {
	return NewAlgorithmBWithOptions(types, Options{})
}

// NewAlgorithmBWithOptions is NewAlgorithmB with tracker tuning (see
// Options).
func NewAlgorithmBWithOptions(types []model.ServerType, opts Options) (*AlgorithmB, error) {
	tracker, err := solver.NewStreamTracker(types, opts.solverOptions())
	if err != nil {
		return nil, err
	}
	b := &AlgorithmB{
		fleet:   append([]model.ServerType(nil), types...),
		tracker: tracker,
		types:   make([]*TypeB, len(types)),
		out:     make(model.Config, len(types)),
	}
	for j, st := range types {
		b.types[j] = NewTypeB(st.SwitchCost)
	}
	return b, nil
}

// Name implements Online.
func (b *AlgorithmB) Name() string { return "AlgorithmB" }

// Step implements Online.
func (b *AlgorithmB) Step(in model.SlotInput) model.Config {
	xhat, optCost, err := b.tracker.Push(in)
	if err != nil {
		panic("core: " + err.Error())
	}
	b.optCost = optCost
	b.lastOpt = append(b.lastOpt[:0], xhat...)
	for j, st := range b.types {
		l := in.Cost(j, b.fleet[j].Cost).Value(0)
		st.Step(l, xhat[j])
		// Fleet shrinkage extension; see AlgorithmA.Step.
		b.out[j] = st.ClampTo(in.Count(j, b.fleet[j].Count))
	}
	return b.out
}

// PrefixOpt returns x̂^t_t from the most recent Step.
func (b *AlgorithmB) PrefixOpt() model.Config { return b.lastOpt }

// PrefixOptCost implements OptTracking: the optimal cost of the consumed
// prefix, exact iff the tracker follows the full lattice.
func (b *AlgorithmB) PrefixOptCost() (float64, bool) { return b.optCost, b.tracker.Exact() }

// CI returns the instance-dependent constant c(I) = Σ_j max_t l_{t,j}/β_j
// appearing in Theorem 13's competitive ratio 2d+1+c(I). Types with
// β_j = 0 and some positive idle cost make c(I) infinite (Algorithm C's
// subdivision assumes β_j > 0); this is reported faithfully.
func CI(ins *model.Instance) float64 {
	c := 0.0
	for _, st := range ins.Types {
		maxRatio := 0.0
		for t := 1; t <= ins.T(); t++ {
			l := st.Cost.At(t).Value(0)
			if st.SwitchCost > 0 {
				if r := l / st.SwitchCost; r > maxRatio {
					maxRatio = r
				}
			} else if l > 0 {
				maxRatio = math.Inf(1)
			}
		}
		c += maxRatio
	}
	return c
}
