package core

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// AlgorithmC is the (2d+1+ε)-competitive online algorithm of Section 3.2
// for time-dependent operating cost functions. It splits each original
// slot t into
//
//	ñ_t = ⌈ (d/ε) · max_j l_{t,j}/β_j ⌉   (at least 1)
//
// sub-slots carrying cost f_{t,j}/ñ_t, runs Algorithm B on the modified
// instance Ĩ — whose constant c(Ĩ) <= d/(d/ε) = ε — and then keeps, for
// each original slot, the sub-slot configuration x^B_{µ(t)} of minimal
// operating cost (Algorithm 3). Lemma 14 shows the projection never
// increases the cost.
//
// The subdivision counts ñ_t depend only on slot-t data, so the algorithm
// is a valid online algorithm; the modified instance is materialised
// up-front purely as an implementation convenience.
type AlgorithmC struct {
	ins   *model.Instance
	eps   float64
	sub   *model.Subdivision
	inner *AlgorithmB
	eval  *model.Evaluator // evaluator on the modified instance
	t     int              // original slots processed
	u     int              // sub-slots processed by the inner algorithm
	maxN  int
}

// NewAlgorithmC prepares Algorithm C for accuracy parameter eps > 0.
// Every type needs β_j > 0: with a free power-up, the subdivision count
// ñ_t is unbounded (and the 2d+1+c(I) analysis of Algorithm B already
// degenerates). MaxSubdivision caps ñ_t defensively; instances that would
// exceed it are rejected rather than silently degraded.
func NewAlgorithmC(ins *model.Instance, eps float64) (*AlgorithmC, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("core: Algorithm C needs eps > 0, got %g", eps)
	}
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	for j, st := range ins.Types {
		if st.SwitchCost <= 0 {
			return nil, fmt.Errorf("core: Algorithm C requires β_j > 0 (type %d has %g)", j, st.SwitchCost)
		}
	}
	d := float64(ins.D())
	ns := make([]int, ins.T())
	maxN := 1
	for t := 1; t <= ins.T(); t++ {
		ratio := 0.0
		for _, st := range ins.Types {
			if r := st.Cost.At(t).Value(0) / st.SwitchCost; r > ratio {
				ratio = r
			}
		}
		n := int(math.Ceil(d / eps * ratio))
		if n < 1 {
			n = 1
		}
		if n > MaxSubdivision {
			return nil, fmt.Errorf("core: slot %d needs ñ_t = %d sub-slots (cap %d); idle costs are too large relative to switching costs for eps=%g",
				t, n, MaxSubdivision, eps)
		}
		ns[t-1] = n
		if n > maxN {
			maxN = n
		}
	}
	sub, err := model.Subdivide(ins, ns)
	if err != nil {
		return nil, err
	}
	inner, err := NewAlgorithmB(sub.Mod)
	if err != nil {
		return nil, err
	}
	return &AlgorithmC{
		ins:   ins,
		eps:   eps,
		sub:   sub,
		inner: inner,
		eval:  model.NewEvaluator(sub.Mod),
		maxN:  maxN,
	}, nil
}

// MaxSubdivision bounds ñ_t; beyond this the modified instance would be
// impractically large. The cap corresponds to c(Ĩ) contributions below
// ε/d per slot for any reasonable instance.
const MaxSubdivision = 1 << 20

// Name implements Online.
func (c *AlgorithmC) Name() string { return fmt.Sprintf("AlgorithmC(eps=%g)", c.eps) }

// Done implements Online.
func (c *AlgorithmC) Done() bool { return c.t >= c.ins.T() }

// Step implements Online: it executes the ñ_t sub-slots of the next
// original slot in the embedded Algorithm B and returns
// x^C_t = x^B_{µ(t)}, µ(t) = argmin_{u ∈ U(t)} g̃_u(x^B_u).
func (c *AlgorithmC) Step() model.Config {
	if c.Done() {
		panic("core: Algorithm C stepped past the last slot")
	}
	c.t++
	n := c.sub.N(c.t)
	var best model.Config
	bestVal := math.Inf(1)
	for k := 0; k < n; k++ {
		x := c.inner.Step()
		c.u++
		// All sub-slots of an original slot have identical g̃_u up to the
		// 1/ñ_t factor, so comparing g̃ values is comparing g values.
		if v := c.eval.G(c.u, x); v < bestVal {
			bestVal = v
			best = x
		}
	}
	return best
}

// Subdivision exposes the modified-instance mapping (for tests and
// instrumentation).
func (c *AlgorithmC) Subdivision() *model.Subdivision { return c.sub }

// MaxN returns the largest ñ_t used.
func (c *AlgorithmC) MaxN() int { return c.maxN }

// RatioBound returns the proven competitive ratio 2d+1+ε of Theorem 15.
func (c *AlgorithmC) RatioBound() float64 { return 2*float64(c.ins.D()) + 1 + c.eps }

// RatioBoundA returns Theorem 8's bound 2d+1 for instances with
// time-independent costs, for comparison tables.
func RatioBoundA(ins *model.Instance) float64 { return 2*float64(ins.D()) + 1 }

// RatioBoundB returns Theorem 13's bound 2d+1+c(I).
func RatioBoundB(ins *model.Instance) float64 {
	return 2*float64(ins.D()) + 1 + CI(ins)
}
