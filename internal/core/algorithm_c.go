package core

import (
	"fmt"
	"math"

	"repro/internal/costfn"
	"repro/internal/model"
)

// AlgorithmC is the (2d+1+ε)-competitive online algorithm of Section 3.2
// for time-dependent operating cost functions. It splits each arriving
// slot t into
//
//	ñ_t = ⌈ (d/ε) · max_j l_{t,j}/β_j ⌉   (at least 1)
//
// sub-slots carrying cost f_{t,j}/ñ_t, feeds them to an embedded
// Algorithm B — the modified instance Ĩ has constant c(Ĩ) <= d/(d/ε) = ε —
// and keeps, per original slot, the sub-slot configuration x^B_{µ(t)} of
// minimal operating cost (Algorithm 3). Lemma 14 shows the projection
// never increases the cost.
//
// The subdivision count ñ_t depends only on slot-t data, so the push-based
// implementation is a valid online algorithm with no materialised modified
// instance at all: sub-slots are synthesised and consumed on the fly.
type AlgorithmC struct {
	fleet []model.ServerType
	eps   float64
	inner *AlgorithmB
	eval  *model.SlotEval
	t     int // original slots processed
	u     int // sub-slots pushed into the inner algorithm
	maxN  int

	best   model.Config  // scratch returned by Step
	costs  []costfn.Func // scratch: scaled sub-slot cost functions
	counts []int         // scratch: resolved sub-slot counts
}

// NewAlgorithmC prepares Algorithm C for accuracy parameter eps > 0.
// Every type needs β_j > 0: with a free power-up, the subdivision count
// ñ_t is unbounded (and the 2d+1+c(I) analysis of Algorithm B already
// degenerates). MaxSubdivision caps ñ_t defensively; slots that would
// exceed it are rejected rather than silently degraded.
func NewAlgorithmC(types []model.ServerType, eps float64) (*AlgorithmC, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("core: Algorithm C needs eps > 0, got %g", eps)
	}
	for j, st := range types {
		if st.SwitchCost <= 0 {
			return nil, fmt.Errorf("core: Algorithm C requires β_j > 0 (type %d has %g)", j, st.SwitchCost)
		}
	}
	inner, err := NewAlgorithmB(types)
	if err != nil {
		return nil, err
	}
	return &AlgorithmC{
		fleet:  append([]model.ServerType(nil), types...),
		eps:    eps,
		inner:  inner,
		eval:   model.NewSlotEval(types),
		maxN:   1,
		best:   make(model.Config, len(types)),
		costs:  make([]costfn.Func, len(types)),
		counts: make([]int, len(types)),
	}, nil
}

// MaxSubdivision bounds ñ_t; beyond this the modified instance would be
// impractically large. The cap corresponds to c(Ĩ) contributions below
// ε/d per slot for any reasonable instance.
const MaxSubdivision = 1 << 20

// Name implements Online.
func (c *AlgorithmC) Name() string { return fmt.Sprintf("AlgorithmC(eps=%g)", c.eps) }

// Step implements Online: it synthesises the ñ_t sub-slots of the arrived
// slot, drives the embedded Algorithm B through them, and returns
// x^C_t = x^B_{µ(t)}, µ(t) = argmin_{u ∈ U(t)} g̃_u(x^B_u).
func (c *AlgorithmC) Step(in model.SlotInput) model.Config {
	c.t++
	if in.T != 0 && in.T != c.t {
		panic(fmt.Sprintf("core: Algorithm C fed slot %d out of order, want %d", in.T, c.t))
	}
	d := float64(len(c.fleet))
	ratio := 0.0
	for j := range c.fleet {
		c.counts[j] = in.Count(j, c.fleet[j].Count)
		if r := in.Cost(j, c.fleet[j].Cost).Value(0) / c.fleet[j].SwitchCost; r > ratio {
			ratio = r
		}
	}
	n := int(math.Ceil(d / c.eps * ratio))
	if n < 1 {
		n = 1
	}
	if n > MaxSubdivision {
		panic(fmt.Sprintf("core: slot %d needs ñ_t = %d sub-slots (cap %d); idle costs are too large relative to switching costs for eps=%g",
			c.t, n, MaxSubdivision, c.eps))
	}
	if n > c.maxN {
		c.maxN = n
	}

	factor := 1.0 / float64(n)
	for j := range c.fleet {
		c.costs[j] = costfn.Scaled{F: in.Cost(j, c.fleet[j].Cost), Factor: factor}
	}
	bestVal := math.Inf(1)
	for k := 0; k < n; k++ {
		c.u++
		sub := model.SlotInput{T: c.u, Lambda: in.Lambda, Costs: c.costs, Counts: c.counts}
		x := c.inner.Step(sub)
		// All sub-slots of an original slot have identical g̃_u up to the
		// 1/ñ_t factor, so comparing g̃ values is comparing g values.
		if v := c.eval.G(sub, x); v < bestVal {
			bestVal = v
			copy(c.best, x)
		}
	}
	return c.best
}

// MaxN returns the largest ñ_t used so far.
func (c *AlgorithmC) MaxN() int { return c.maxN }

// RatioBound returns the proven competitive ratio 2d+1+ε of Theorem 15.
func (c *AlgorithmC) RatioBound() float64 { return 2*float64(len(c.fleet)) + 1 + c.eps }

// RatioBoundA returns Theorem 8's bound 2d+1 for instances with
// time-independent costs, for comparison tables.
func RatioBoundA(ins *model.Instance) float64 { return 2*float64(ins.D()) + 1 }

// RatioBoundB returns Theorem 13's bound 2d+1+c(I).
func RatioBoundB(ins *model.Instance) float64 {
	return 2*float64(ins.D()) + 1 + CI(ins)
}
