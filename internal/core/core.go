// Package core implements the paper's primary contribution: the online
// algorithms for right-sizing heterogeneous data centers.
//
//   - Algorithm A (Section 2): time-independent operating costs,
//     (2d+1)-competitive; 2d when the costs are also load-independent
//     (Corollary 9).
//   - Algorithm B (Section 3.1): time-dependent operating costs,
//     (2d+1+c(I))-competitive with c(I) = Σ_j max_t f_{t,j}(0)/β_j.
//   - Algorithm C (Section 3.2): time-dependent operating costs,
//     (2d+1+ε)-competitive for any ε > 0 via sub-slot subdivision.
//
// All three share the same power-up rule — never run fewer servers of any
// type than the final configuration x̂^t_t of an optimal schedule for the
// prefix instance I_t — and differ in their power-down rule (a ski-rental
// style timeout measured in accumulated idle cost).
//
// The API is push-based: algorithms are constructed from the fleet
// template ([]model.ServerType) alone and receive each slot's demand, cost
// functions and fleet counts through Step as they arrive, so the online
// information model holds by construction. Batch replay over a recorded
// instance is a thin driver (Run) on top of the same streaming path.
package core

import (
	"repro/internal/model"
)

// Online is a deterministic push-based online right-sizing algorithm. A
// Step consumes exactly one time slot's observable data — the
// implementation never sees further into the future.
type Online interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Step consumes slot in.T (slots must arrive consecutively, starting
	// at 1) and returns the configuration the algorithm keeps active
	// during it. The returned slice is algorithm-owned scratch, valid only
	// until the next Step; clone it to retain. Step panics on infeasible
	// or out-of-order input — live drivers validate before stepping (see
	// internal/stream.Session).
	//
	// Semi-online algorithms (see Buffered) may return nil while their
	// lookahead window fills; the returned configuration is then always
	// for the oldest undecided slot, not necessarily for in.T.
	Step(in model.SlotInput) model.Config
}

// OptTracking is the optional interface of online algorithms that already
// maintain a streaming prefix-optimum tracker as part of their decision
// rule (Algorithms A and B, LCP). Live drivers (stream.Session) reuse it
// for their Opt/Ratio telemetry instead of running a second tracker —
// halving steady-state per-slot work — and fall back to a dedicated
// tracker for algorithms that do not implement it.
type OptTracking interface {
	Online
	// PrefixOptCost returns C(X̂^t), the optimal cost of serving the
	// prefix consumed by the most recent Step (0 before the first), and
	// whether the value is exact. Reduced-lattice tracker variants
	// (Options.TrackerGamma > 1) report exact == false and consumers fall
	// back to their own exact tracker. The method is callable at any
	// point, including before the first Step.
	PrefixOptCost() (cost float64, exact bool)
}

// Buffered is the optional interface of semi-online algorithms whose
// decisions lag their inputs: a Lookahead(w) controller needs slots
// t..t+w-1 before it can commit slot t, so its Step returns nil for the
// first w-1 slots and drivers must Flush once the stream ends. Fully
// online algorithms never implement Buffered.
type Buffered interface {
	Online
	// Pending reports the number of ingested slots not yet decided.
	Pending() int
	// Flush decides every pending slot as if the stream had ended and
	// returns their configurations in slot order. The returned
	// configurations are fresh copies.
	Flush() []model.Config
}

// Run drives an online algorithm over a pre-recorded instance — the batch
// facade over the streaming API. The schedule is preallocated and each
// slot's scratch configuration is cloned exactly once into it.
func Run(a Online, ins *model.Instance) model.Schedule {
	T := ins.T()
	out := make(model.Schedule, 0, T)
	var in model.SlotInput
	for t := 1; t <= T; t++ {
		ins.SlotInto(t, &in)
		if x := a.Step(in); x != nil {
			out = append(out, x.Clone())
		}
	}
	if b, ok := a.(Buffered); ok {
		for _, x := range b.Flush() {
			out = append(out, x.Clone())
		}
	}
	return out
}
