// Package core implements the paper's primary contribution: the online
// algorithms for right-sizing heterogeneous data centers.
//
//   - Algorithm A (Section 2): time-independent operating costs,
//     (2d+1)-competitive; 2d when the costs are also load-independent
//     (Corollary 9).
//   - Algorithm B (Section 3.1): time-dependent operating costs,
//     (2d+1+c(I))-competitive with c(I) = Σ_j max_t f_{t,j}(0)/β_j.
//   - Algorithm C (Section 3.2): time-dependent operating costs,
//     (2d+1+ε)-competitive for any ε > 0 via sub-slot subdivision.
//
// All three share the same power-up rule — never run fewer servers of any
// type than the final configuration x̂^t_t of an optimal schedule for the
// prefix instance I_t — and differ in their power-down rule (a ski-rental
// style timeout measured in accumulated idle cost).
package core

import (
	"repro/internal/model"
)

// Online is a deterministic online right-sizing algorithm. A Step consumes
// exactly one time slot: the implementation reads only that slot's job
// volume and cost functions, honouring the online information model.
type Online interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Done reports whether every slot has been consumed.
	Done() bool
	// Step consumes the next slot and returns the configuration the
	// algorithm keeps active during it. The returned value is a fresh
	// copy. Step panics when Done.
	Step() model.Config
}

// Run drives an online algorithm over its whole instance and returns the
// resulting schedule.
func Run(a Online) model.Schedule {
	var out model.Schedule
	for !a.Done() {
		out = append(out, a.Step())
	}
	return out
}
