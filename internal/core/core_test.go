package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/solver"
)

// randomStaticInstance builds a feasible instance with time-independent
// costs and strictly positive switching costs.
func randomStaticInstance(rng *rand.Rand, maxD, maxM, maxT int) *model.Instance {
	d := 1 + rng.Intn(maxD)
	T := 1 + rng.Intn(maxT)
	types := make([]model.ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(maxM)
		capacity := 0.5 + rng.Float64()*2
		var f costfn.Func
		switch rng.Intn(3) {
		case 0:
			f = costfn.Constant{C: 0.1 + rng.Float64()*3}
		case 1:
			f = costfn.Affine{Idle: 0.1 + rng.Float64()*2, Rate: rng.Float64() * 3}
		default:
			f = costfn.Power{Idle: 0.1 + rng.Float64(), Coef: 0.1 + rng.Float64()*2, Exp: 1 + rng.Float64()*2}
		}
		types[j] = model.ServerType{
			Count:      count,
			SwitchCost: 0.5 + rng.Float64()*8,
			MaxLoad:    capacity,
			Cost:       model.Static{F: f},
		}
		totalCap += float64(count) * capacity
	}
	lambda := make([]float64, T)
	for t := range lambda {
		if rng.Intn(4) == 0 {
			lambda[t] = 0 // idle periods exercise power-down logic
		} else {
			lambda[t] = rng.Float64() * totalCap * 0.9
		}
	}
	return &model.Instance{Types: types, Lambda: lambda}
}

// randomVaryingInstance additionally randomises per-slot cost scaling
// (time-dependent idle costs).
func randomVaryingInstance(rng *rand.Rand, maxD, maxM, maxT int) *model.Instance {
	ins := randomStaticInstance(rng, maxD, maxM, maxT)
	for j := range ins.Types {
		base := ins.Types[j].Cost.(model.Static).F
		scale := make([]float64, ins.T())
		for t := range scale {
			scale[t] = 0.25 + rng.Float64()*2
		}
		ins.Types[j].Cost = model.Modulated{F: base, Scale: scale}
	}
	return ins
}

// ---------- TypeA state machine ----------

func TestTypeAPowersDownAfterTbar(t *testing.T) {
	s := NewTypeA(3)
	// Power up 2 servers at slot 1; they must expire at slot 4.
	got := []int{s.Step(2), s.Step(0), s.Step(0), s.Step(0), s.Step(0)}
	want := []int{2, 2, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

func TestTypeAOverlappingBlocks(t *testing.T) {
	s := NewTypeA(2)
	// Slot 1: up to 1. Slot 2: up to 3 (2 more). Slot 3: the first
	// expires (x 3→2), target 0 keeps 2. Slot 4: the two from slot 2
	// expire → 0.
	got := []int{s.Step(1), s.Step(3), s.Step(0), s.Step(0)}
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

func TestTypeARepeatedDemandKeepsServerUp(t *testing.T) {
	s := NewTypeA(2)
	// Demand 1 every slot: expiry at slot 3 dips to 0 then tops back up
	// within the same slot, so the visible count never drops.
	for i := 0; i < 6; i++ {
		if got := s.Step(1); got != 1 {
			t.Fatalf("slot %d: x = %d, want 1", i+1, got)
		}
	}
}

func TestTimeoutA(t *testing.T) {
	cases := []struct {
		beta, idle float64
		want       int
	}{
		{6, 2, 3},
		{6, 4, 2}, // ⌈1.5⌉
		{5, 5, 1},
		{0, 3, 1},  // β=0 still serves the mandated slot
		{3, 0, -1}, // infinite: checked separately
	}
	for _, c := range cases {
		got := TimeoutA(c.beta, c.idle)
		if c.want == -1 {
			if got < 1<<40 {
				t.Errorf("TimeoutA(%g,%g) = %d, want effectively infinite", c.beta, c.idle, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("TimeoutA(%g,%g) = %d, want %d", c.beta, c.idle, got, c.want)
		}
	}
	for _, bad := range [][2]float64{{-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative parameters should panic")
				}
			}()
			TimeoutA(bad[0], bad[1])
		}()
	}
}

func TestNewTypeAPanicsOnBadTbar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTypeA(0)
}

// ---------- TypeB state machine: the paper's Figure 3 example ----------

// Figure 3: β_j = 6, idle costs l and prefix-optimal targets x̂ as printed
// in the figure. The expected x^B trace follows the figure's plot, and the
// expirations match the printed W_t sets (only slots with actual power-ups
// matter: W_5 = {1,2}, W_9 ∋ 4, W_10 ∋ 8).
func TestTypeBPaperFigure3(t *testing.T) {
	ls := []float64{3, 1, 4, 1, 2, 1, 1, 2, 3, 5, 1, 3}
	xhat := []int{1, 2, 1, 3, 0, 0, 1, 2, 0, 0, 0, 0}
	want := []int{1, 2, 2, 3, 1, 1, 1, 2, 1, 0, 0, 0}
	s := NewTypeB(6)
	for i := range ls {
		if got := s.Step(ls[i], xhat[i]); got != want[i] {
			t.Fatalf("slot %d: x^B = %d, want %d", i+1, got, want[i])
		}
	}
}

func TestTypeBZeroBetaExpiresOnNextPositiveIdleCost(t *testing.T) {
	s := NewTypeB(0)
	if got := s.Step(1, 2); got != 2 {
		t.Fatalf("power up failed: %d", got)
	}
	// β = 0: the next slot with positive idle cost exceeds the budget.
	if got := s.Step(1, 0); got != 0 {
		t.Errorf("x = %d, want 0 after immediate expiry", got)
	}
	if s.Active() != 0 {
		t.Error("Active should be 0")
	}
}

func TestTypeBZeroIdleCostNeverExpires(t *testing.T) {
	s := NewTypeB(2)
	s.Step(0, 3)
	for i := 0; i < 10; i++ {
		if got := s.Step(0, 0); got != 3 {
			t.Fatalf("x = %d, want 3 (zero idle cost never crosses β)", got)
		}
	}
}

func TestTypeBNegativeBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTypeB(-1)
}

// ---------- Algorithm A ----------

func TestAlgorithmARejectsTimeDependentCosts(t *testing.T) {
	ins := randomVaryingInstance(rand.New(rand.NewSource(1)), 2, 2, 4)
	if _, err := NewAlgorithmA(ins.Types); err == nil {
		t.Error("expected error for time-dependent costs")
	}
}

func TestAlgorithmAFeasibleAndInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		ins := randomStaticInstance(rng, 3, 3, 10)
		a, err := NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		var sched model.Schedule
		for ts := 1; ts <= ins.T(); ts++ {
			x := a.Step(ins.Slot(ts)).Clone()
			// Power-up rule: x^A >= x̂^t_t (Lemma 1's key invariant).
			xhat := a.PrefixOpt()
			for j := range x {
				if x[j] < xhat[j] {
					t.Fatalf("case %d slot %d: x^A=%v below x̂=%v", i, len(sched)+1, x, xhat)
				}
			}
			sched = append(sched, x)
		}
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: infeasible schedule: %v", i, err)
		}
	}
}

// Theorem 8: C(X^A) <= (2d+1) · C(X̂^T).
func TestAlgorithmACompetitiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 40; i++ {
		ins := randomStaticInstance(rng, 2, 3, 8)
		a, err := NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		sched := Run(a, ins)
		cost := model.NewEvaluator(ins).Cost(sched).Total()
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		bound := RatioBoundA(ins) * opt
		if !numeric.LessEqual(cost, bound, 1e-9) {
			t.Fatalf("case %d: C(X^A)=%g exceeds (2d+1)·OPT=%g (d=%d, opt=%g)",
				i, cost, bound, ins.D(), opt)
		}
	}
}

// Corollary 9: with load- and time-independent costs the ratio is 2d.
func TestAlgorithmAConstantCostBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		ins := randomStaticInstance(rng, 2, 3, 8)
		for j := range ins.Types {
			ins.Types[j].Cost = model.Static{F: costfn.Constant{C: 0.1 + rng.Float64()*3}}
		}
		a, err := NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		sched := Run(a, ins)
		cost := model.NewEvaluator(ins).Cost(sched).Total()
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * float64(ins.D()) * opt
		if !numeric.LessEqual(cost, bound, 1e-9) {
			t.Fatalf("case %d: C(X^A)=%g exceeds 2d·OPT=%g", i, cost, bound)
		}
	}
}

func TestAlgorithmATimeoutAccessor(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 2, SwitchCost: 6, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 2}},
		}},
		Lambda: []float64{1, 1},
	}
	a, err := NewAlgorithmA(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	if a.Timeout(0) != 3 {
		t.Errorf("t̄ = %d, want 3", a.Timeout(0))
	}
	if a.Name() != "AlgorithmA" {
		t.Error("Name")
	}
}

// ---------- Algorithm B ----------

func TestAlgorithmBFeasibleAndInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		ins := randomVaryingInstance(rng, 3, 3, 10)
		b, err := NewAlgorithmB(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		var sched model.Schedule
		for ts := 1; ts <= ins.T(); ts++ {
			x := b.Step(ins.Slot(ts)).Clone()
			xhat := b.PrefixOpt()
			for j := range x {
				if x[j] < xhat[j] {
					t.Fatalf("case %d slot %d: x^B=%v below x̂=%v", i, len(sched)+1, x, xhat)
				}
			}
			sched = append(sched, x)
		}
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: infeasible schedule: %v", i, err)
		}
	}
}

// Theorem 13: C(X^B) <= (2d+1+c(I)) · OPT.
func TestAlgorithmBCompetitiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 40; i++ {
		ins := randomVaryingInstance(rng, 2, 3, 8)
		b, err := NewAlgorithmB(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		sched := Run(b, ins)
		cost := model.NewEvaluator(ins).Cost(sched).Total()
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		bound := RatioBoundB(ins) * opt
		if !numeric.LessEqual(cost, bound, 1e-9) {
			t.Fatalf("case %d: C(X^B)=%g exceeds (2d+1+c)·OPT=%g (c=%g)",
				i, cost, bound, CI(ins))
		}
	}
}

func TestAlgorithmBMatchesAOnStaticInstances(t *testing.T) {
	// On time-independent costs, B's accumulated-idle-cost rule gives
	// run lengths within one slot of A's ⌈β/l⌉ rule (B excludes the
	// power-up slot, A includes it); both satisfy A's bound. Here we just
	// check B stays within (2d+1)·OPT too on static instances.
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 20; i++ {
		ins := randomStaticInstance(rng, 2, 3, 8)
		b, err := NewAlgorithmB(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		cost := model.NewEvaluator(ins).Cost(Run(b, ins)).Total()
		opt, _ := solver.OptimalCost(ins)
		// B's guarantee on static instances: 2d+1+c(I).
		if !numeric.LessEqual(cost, RatioBoundB(ins)*opt, 1e-9) {
			t.Fatalf("case %d: B exceeded its bound on a static instance", i)
		}
	}
}

func TestCI(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{
			{Count: 1, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Varying{Fs: []costfn.Func{
					costfn.Constant{C: 1}, costfn.Constant{C: 4},
				}}},
			{Count: 1, SwitchCost: 8, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 2}}},
		},
		Lambda: []float64{1, 1},
	}
	// c(I) = max(1/2, 4/2) + 2/8 = 2.25.
	if got := CI(ins); math.Abs(got-2.25) > 1e-12 {
		t.Errorf("c(I) = %g, want 2.25", got)
	}
}

func TestCIZeroBeta(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 0, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 2}},
		}},
		Lambda: []float64{1},
	}
	if !math.IsInf(CI(ins), 1) {
		t.Error("β=0 with positive idle cost should give infinite c(I)")
	}
}

// ---------- Algorithm C ----------

func TestAlgorithmCArgValidation(t *testing.T) {
	ins := randomVaryingInstance(rand.New(rand.NewSource(2)), 2, 2, 4)
	if _, err := NewAlgorithmC(ins.Types, 0); err == nil {
		t.Error("eps = 0 should error")
	}
	ins.Types[0].SwitchCost = 0
	if _, err := NewAlgorithmC(ins.Types, 0.5); err == nil {
		t.Error("β = 0 should error")
	}
}

func TestAlgorithmCSubdivisionCounts(t *testing.T) {
	// d=1, eps=0.5 → d/eps = 2; idle costs 1 and 3 with β=2 give ratios
	// 0.5 and 1.5 → ñ = ⌈1⌉=1 and ⌈3⌉=3.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Varying{Fs: []costfn.Func{
				costfn.Constant{C: 1}, costfn.Constant{C: 3},
			}},
		}},
		Lambda: []float64{1, 1},
	}
	c, err := NewAlgorithmC(ins.Types, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(ins.Slot(1))
	if c.MaxN() != 1 {
		t.Errorf("ñ_1 = %d, want 1", c.MaxN())
	}
	c.Step(ins.Slot(2))
	if c.MaxN() != 3 {
		t.Errorf("max ñ = %d, want 3", c.MaxN())
	}
	// Equation (16): c(Ĩ) <= eps (here d=1, n=d/eps) on the materialised
	// modified instance the push-based run corresponds to.
	sub, err := model.Subdivide(ins, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := CI(sub.Mod); got > 0.5+1e-9 {
		t.Errorf("c(Ĩ) = %g, want <= 0.5", got)
	}
}

func TestAlgorithmCFeasibleSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for i := 0; i < 25; i++ {
		ins := randomVaryingInstance(rng, 2, 3, 6)
		c, err := NewAlgorithmC(ins.Types, 1)
		if err != nil {
			t.Fatal(err)
		}
		sched := Run(c, ins)
		if len(sched) != ins.T() {
			t.Fatalf("case %d: schedule has %d slots, want %d", i, len(sched), ins.T())
		}
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: infeasible: %v", i, err)
		}
	}
}

// Theorem 15: C(X^C) <= (2d+1+ε) · OPT.
func TestAlgorithmCCompetitiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for i := 0; i < 25; i++ {
		ins := randomVaryingInstance(rng, 2, 2, 6)
		for _, eps := range []float64{2, 0.5} {
			c, err := NewAlgorithmC(ins.Types, eps)
			if err != nil {
				t.Fatal(err)
			}
			sched := Run(c, ins)
			cost := model.NewEvaluator(ins).Cost(sched).Total()
			opt, err := solver.OptimalCost(ins)
			if err != nil {
				t.Fatal(err)
			}
			bound := (2*float64(ins.D()) + 1 + eps) * opt
			if !numeric.LessEqual(cost, bound, 1e-9) {
				t.Fatalf("case %d eps=%g: C(X^C)=%g exceeds bound %g", i, eps, cost, bound)
			}
		}
	}
}

// Lemma 14: the projected schedule costs no more (on I) than X^B costs on Ĩ.
func TestAlgorithmCProjectionLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 20; i++ {
		ins := randomVaryingInstance(rng, 2, 2, 5)
		c, err := NewAlgorithmC(ins.Types, 1)
		if err != nil {
			t.Fatal(err)
		}
		cSched := Run(c, ins)
		// Rebuild the modified instance Ĩ the push-based run synthesised
		// (ñ_t from slot-t data alone) and rerun B on it (deterministic).
		ns := make([]int, ins.T())
		d := float64(ins.D())
		for t := 1; t <= ins.T(); t++ {
			ratio := 0.0
			for _, st := range ins.Types {
				if r := st.Cost.At(t).Value(0) / st.SwitchCost; r > ratio {
					ratio = r
				}
			}
			ns[t-1] = int(math.Ceil(d / 1 * ratio))
			if ns[t-1] < 1 {
				ns[t-1] = 1
			}
		}
		sub, err := model.Subdivide(ins, ns)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewAlgorithmB(sub.Mod.Types)
		if err != nil {
			t.Fatal(err)
		}
		bSched := Run(b, sub.Mod)
		cCost := model.NewEvaluator(ins).Cost(cSched).Total()
		bCost := model.NewEvaluator(sub.Mod).Cost(bSched).Total()
		if !numeric.LessEqual(cCost, bCost, 1e-6) {
			t.Fatalf("case %d: C(X^C)=%g exceeds C(X^B on Ĩ)=%g", i, cCost, bCost)
		}
	}
}

func TestAlgorithmCOutOfOrderSlotPanics(t *testing.T) {
	ins := randomVaryingInstance(rand.New(rand.NewSource(3)), 1, 2, 2)
	c, err := NewAlgorithmC(ins.Types, 1)
	if err != nil {
		t.Fatal(err)
	}
	Run(c, ins)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Step(ins.Slot(1)) // slot 1 again: protocol violation
}

func TestAlgorithmCNameAndBound(t *testing.T) {
	ins := randomVaryingInstance(rand.New(rand.NewSource(4)), 2, 2, 3)
	c, err := NewAlgorithmC(ins.Types, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() == "" {
		t.Error("empty name")
	}
	want := 2*float64(ins.D()) + 1 + 0.25
	if math.Abs(c.RatioBound()-want) > 1e-12 {
		t.Errorf("RatioBound = %g, want %g", c.RatioBound(), want)
	}
}

// ---------- Run helper ----------

func TestRunCollectsFullSchedule(t *testing.T) {
	ins := randomStaticInstance(rand.New(rand.NewSource(5)), 2, 3, 7)
	a, err := NewAlgorithmA(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	sched := Run(a, ins)
	if len(sched) != ins.T() {
		t.Fatalf("schedule length %d, want %d", len(sched), ins.T())
	}
}

// ---------- benchmarks ----------

func benchStaticInstance(T, m int) *model.Instance {
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = float64(m) / 2 * (1 + math.Sin(2*math.Pi*float64(t)/24)) * 0.9
	}
	return &model.Instance{
		Types: []model.ServerType{
			{Count: m, SwitchCost: 4, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Count: m / 2, SwitchCost: 10, MaxLoad: 4,
				Cost: model.Static{F: costfn.Power{Idle: 2, Coef: 1, Exp: 2}}},
		},
		Lambda: lambda,
	}
}

func BenchmarkAlgorithmAT48M16(b *testing.B) {
	ins := benchStaticInstance(48, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := NewAlgorithmA(ins.Types)
		if err != nil {
			b.Fatal(err)
		}
		Run(a, ins)
	}
}

func BenchmarkAlgorithmBT48M16(b *testing.B) {
	ins := benchStaticInstance(48, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg, err := NewAlgorithmB(ins.Types)
		if err != nil {
			b.Fatal(err)
		}
		Run(alg, ins)
	}
}

func TestAlgorithmCRejectsExcessiveSubdivision(t *testing.T) {
	// Idle cost vastly above β forces ñ_t beyond MaxSubdivision.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 1e-3, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1e7}},
		}},
		Lambda: []float64{0.5},
	}
	c, err := NewAlgorithmC(ins.Types, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected MaxSubdivision rejection")
		}
	}()
	Run(c, ins)
}

func TestAlgorithmAWithOptionsParallelTracker(t *testing.T) {
	ins := benchStaticInstance(24, 8)
	exact, err := NewAlgorithmA(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewAlgorithmAWithOptions(ins.Types, Options{TrackerWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	se, sp := Run(exact, ins), Run(par, ins)
	for i := range se {
		if !se[i].Equal(sp[i]) {
			t.Fatalf("slot %d: parallel tracker changed decisions", i+1)
		}
	}
}
