package core

import (
	"math/rand"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
)

// The paper's online algorithms assume static fleets; the implementation
// extends them to time-varying sizes (Section 4.3) by releasing the newest
// power-ups when the fleet shrinks. These tests pin the extension's
// contract: feasibility and the x >= x̂ invariant.

func timeVaryingInstance(rng *rand.Rand) *model.Instance {
	T := 4 + rng.Intn(8)
	types := []model.ServerType{
		{Count: 4, SwitchCost: 1 + rng.Float64()*5, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 0.5 + rng.Float64(), Rate: rng.Float64()}}},
		{Count: 2, SwitchCost: 1 + rng.Float64()*8, MaxLoad: 3,
			Cost: model.Static{F: costfn.Affine{Idle: 1 + rng.Float64(), Rate: rng.Float64()}}},
	}
	lambda := make([]float64, T)
	counts := make([][]int, T)
	for t := range lambda {
		counts[t] = []int{1 + rng.Intn(4), rng.Intn(3)}
		cap := float64(counts[t][0]) + 3*float64(counts[t][1])
		lambda[t] = rng.Float64() * cap * 0.9
	}
	return &model.Instance{Types: types, Lambda: lambda, Counts: counts}
}

func TestAlgorithmATimeVaryingFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 30; i++ {
		ins := timeVaryingInstance(rng)
		a, err := NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		var sched model.Schedule
		for ts := 1; ts <= ins.T(); ts++ {
			x := a.Step(ins.Slot(ts)).Clone()
			xhat := a.PrefixOpt()
			for j := range x {
				if x[j] < xhat[j] {
					t.Fatalf("case %d: invariant broken: x=%v x̂=%v", i, x, xhat)
				}
			}
			sched = append(sched, x)
		}
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestAlgorithmBTimeVaryingFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for i := 0; i < 30; i++ {
		ins := timeVaryingInstance(rng)
		b, err := NewAlgorithmB(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		var sched model.Schedule
		for ts := 1; ts <= ins.T(); ts++ {
			x := b.Step(ins.Slot(ts)).Clone()
			xhat := b.PrefixOpt()
			for j := range x {
				if x[j] < xhat[j] {
					t.Fatalf("case %d: invariant broken: x=%v x̂=%v", i, x, xhat)
				}
			}
			sched = append(sched, x)
		}
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestTypeAClampReleasesNewestFirst(t *testing.T) {
	s := NewTypeA(5)
	s.Step(2) // slot 1: +2
	s.Step(3) // slot 2: +1
	// Clamp to 2: the slot-2 power-up goes first.
	if got := s.ClampTo(2); got != 2 {
		t.Fatalf("clamped to %d, want 2", got)
	}
	// Advance: at slot 6 the two slot-1 servers expire; nothing remains
	// of slot 2's power-up (it was released by the clamp).
	s.Step(0) // 3
	s.Step(0) // 4
	s.Step(0) // 5
	if got := s.Step(0); got != 0 {
		t.Errorf("slot 6 count = %d, want 0 (slot-1 pair expired, slot-2 released)", got)
	}
}

func TestTypeBClampReleasesNewestFirst(t *testing.T) {
	s := NewTypeB(10)
	s.Step(1, 2) // slot 1: +2 (expire once idle cost since slot 1 > 10)
	s.Step(1, 3) // slot 2: +1
	if got := s.ClampTo(1); got != 1 {
		t.Fatalf("clamped to %d, want 1", got)
	}
	// Accumulate idle cost 9 more (total 10 since slot 1, not > β): the
	// remaining slot-1 server stays; then the next unit crosses.
	for i := 0; i < 9; i++ {
		if got := s.Step(1, 0); got != 1 {
			t.Fatalf("step %d: %d, want 1", i, got)
		}
	}
	if got := s.Step(1, 0); got != 0 {
		t.Errorf("after crossing β: %d, want 0", got)
	}
}

func TestClampToNoOpWhenUnderLimit(t *testing.T) {
	s := NewTypeA(3)
	s.Step(2)
	if got := s.ClampTo(5); got != 2 {
		t.Errorf("clamp above current count should be a no-op, got %d", got)
	}
	b := NewTypeB(3)
	b.Step(1, 2)
	if got := b.ClampTo(5); got != 2 {
		t.Errorf("clamp above current count should be a no-op, got %d", got)
	}
}
