// Package costfn provides the library of per-server operating-cost
// functions used by the right-sizing model.
//
// The paper models the operating cost of one server of type j running at
// load z ∈ [0, zmax_j] during one time slot as a convex, increasing,
// non-negative function f(z). f(0) is the idle cost. Different capacities
// are expressed through zmax (model layer), not through the function itself.
//
// All implementations in this package are immutable values, safe for
// concurrent use, and valid on the whole non-negative axis (the model layer
// never evaluates beyond the server capacity).
package costfn

import (
	"fmt"
	"math"
	"sort"
)

// Func is a per-server operating-cost function of the load z for a single
// time slot. Implementations must be convex, non-decreasing and
// non-negative on the domain where they are evaluated.
type Func interface {
	// Value returns the operating cost at load z >= 0.
	Value(z float64) float64
}

// Differentiable is implemented by cost functions exposing their
// right-derivative. The dispatch solver uses it for an exact water-filling
// fast path; functions without it are handled by derivative-free search.
type Differentiable interface {
	Func
	// Deriv returns the right-derivative of the cost at load z >= 0.
	// For a convex function it is non-decreasing in z.
	Deriv(z float64) float64
}

// Constant is the load-independent cost f(z) = C. It models the special
// case of the paper's Corollary 9 (ratio 2d) and of the predecessor paper
// [Albers–Quedenfeld, CIAC 2021].
type Constant struct {
	C float64
}

// Value implements Func.
func (c Constant) Value(float64) float64 { return c.C }

// Deriv implements Differentiable.
func (c Constant) Deriv(float64) float64 { return 0 }

// String describes the function.
func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.C) }

// Affine is f(z) = Idle + Rate·z: an idle floor plus energy proportional to
// load. This is the classic "servers idle at half peak power" model from the
// data-center measurement literature cited in the paper's introduction.
type Affine struct {
	Idle float64 // f(0), the idle operating cost
	Rate float64 // marginal cost per unit load
}

// Value implements Func.
func (a Affine) Value(z float64) float64 { return a.Idle + a.Rate*z }

// Deriv implements Differentiable.
func (a Affine) Deriv(float64) float64 { return a.Rate }

// String describes the function.
func (a Affine) String() string { return fmt.Sprintf("affine(%g+%g·z)", a.Idle, a.Rate) }

// Power is f(z) = Idle + Coef·z^Exp with Exp >= 1, the superlinear
// dynamic-power model (CPU voltage/frequency scaling): the paper's
// introduction cites cubic-like growth of power with frequency. Exp = 2
// gives the common quadratic speed-scaling cost.
type Power struct {
	Idle float64 // f(0)
	Coef float64 // coefficient of the load-dependent term, >= 0
	Exp  float64 // exponent, >= 1 for convexity
}

// Value implements Func.
func (p Power) Value(z float64) float64 {
	if z <= 0 {
		return p.Idle
	}
	return p.Idle + p.Coef*math.Pow(z, p.Exp)
}

// Deriv implements Differentiable.
func (p Power) Deriv(z float64) float64 {
	if p.Exp == 1 {
		return p.Coef
	}
	if z <= 0 {
		return 0
	}
	return p.Coef * p.Exp * math.Pow(z, p.Exp-1)
}

// String describes the function.
func (p Power) String() string {
	return fmt.Sprintf("power(%g+%g·z^%g)", p.Idle, p.Coef, p.Exp)
}

// PiecewiseLinear is a convex increasing piecewise-linear cost given by
// breakpoints. It models measured (tabulated) energy curves. Construct it
// with NewPiecewiseLinear, which validates convexity and monotonicity.
type PiecewiseLinear struct {
	zs []float64 // breakpoint loads, strictly increasing, zs[0] == 0
	vs []float64 // cost at each breakpoint
}

// NewPiecewiseLinear builds a piecewise-linear cost from breakpoints
// (z_i, v_i). Requirements: at least one point, z strictly increasing
// starting at 0, values non-negative and non-decreasing, and slopes
// non-decreasing (convexity). Beyond the last breakpoint the final slope is
// extrapolated.
func NewPiecewiseLinear(zs, vs []float64) (PiecewiseLinear, error) {
	if len(zs) == 0 || len(zs) != len(vs) {
		return PiecewiseLinear{}, fmt.Errorf("costfn: need equal, non-empty breakpoint slices (got %d, %d)", len(zs), len(vs))
	}
	if zs[0] != 0 {
		return PiecewiseLinear{}, fmt.Errorf("costfn: first breakpoint must be at z=0, got %g", zs[0])
	}
	if vs[0] < 0 {
		return PiecewiseLinear{}, fmt.Errorf("costfn: negative cost %g at z=0", vs[0])
	}
	prevSlope := math.Inf(-1)
	for i := 1; i < len(zs); i++ {
		if zs[i] <= zs[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("costfn: breakpoints must be strictly increasing (index %d)", i)
		}
		if vs[i] < vs[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("costfn: cost must be non-decreasing (index %d)", i)
		}
		slope := (vs[i] - vs[i-1]) / (zs[i] - zs[i-1])
		if slope < prevSlope-1e-12 {
			return PiecewiseLinear{}, fmt.Errorf("costfn: slopes must be non-decreasing for convexity (index %d)", i)
		}
		prevSlope = slope
	}
	p := PiecewiseLinear{zs: append([]float64(nil), zs...), vs: append([]float64(nil), vs...)}
	return p, nil
}

// MustPiecewiseLinear is NewPiecewiseLinear that panics on invalid input.
// Intended for package-level declarations of known-good curves.
func MustPiecewiseLinear(zs, vs []float64) PiecewiseLinear {
	p, err := NewPiecewiseLinear(zs, vs)
	if err != nil {
		panic(err)
	}
	return p
}

// Value implements Func.
func (p PiecewiseLinear) Value(z float64) float64 {
	n := len(p.zs)
	if z <= 0 {
		return p.vs[0]
	}
	if z >= p.zs[n-1] {
		if n == 1 {
			return p.vs[0]
		}
		slope := (p.vs[n-1] - p.vs[n-2]) / (p.zs[n-1] - p.zs[n-2])
		return p.vs[n-1] + slope*(z-p.zs[n-1])
	}
	// First breakpoint strictly greater than z.
	i := sort.SearchFloat64s(p.zs, z)
	if p.zs[i] == z {
		return p.vs[i]
	}
	frac := (z - p.zs[i-1]) / (p.zs[i] - p.zs[i-1])
	return p.vs[i-1] + frac*(p.vs[i]-p.vs[i-1])
}

// Deriv implements Differentiable (right-derivative at breakpoints).
func (p PiecewiseLinear) Deriv(z float64) float64 {
	n := len(p.zs)
	if n == 1 {
		return 0
	}
	if z >= p.zs[n-1] {
		return (p.vs[n-1] - p.vs[n-2]) / (p.zs[n-1] - p.zs[n-2])
	}
	if z < 0 {
		z = 0
	}
	i := sort.SearchFloat64s(p.zs, z)
	if i < n && p.zs[i] == z {
		// right-derivative: slope of the segment starting at z.
		return (p.vs[i+1] - p.vs[i]) / (p.zs[i+1] - p.zs[i])
	}
	return (p.vs[i] - p.vs[i-1]) / (p.zs[i] - p.zs[i-1])
}

// String describes the function.
func (p PiecewiseLinear) String() string {
	return fmt.Sprintf("piecewise(%d points)", len(p.zs))
}

// NumBreakpoints returns the number of breakpoints.
func (p PiecewiseLinear) NumBreakpoints() int { return len(p.zs) }

// Breakpoint returns the i-th breakpoint (z_i, v_i). Together with
// NumBreakpoints it exposes the curve's content (the solver's layer memo
// fingerprints cost functions by value).
func (p PiecewiseLinear) Breakpoint(i int) (z, v float64) { return p.zs[i], p.vs[i] }

// Scaled multiplies an underlying cost function by a positive Factor.
// The paper's Section 3.2 uses it to build the modified instance Ĩ, where
// each sub-slot carries cost f̃(z) = f(z)/ñ_t; scaling preserves convexity,
// monotonicity and non-negativity.
type Scaled struct {
	F      Func
	Factor float64
}

// Value implements Func.
func (s Scaled) Value(z float64) float64 { return s.Factor * s.F.Value(z) }

// Deriv implements Differentiable when the underlying function does;
// otherwise it panics (the dispatch layer checks with a type assertion on
// the wrapper only after checking the wrapped function).
func (s Scaled) Deriv(z float64) float64 {
	d, ok := s.F.(Differentiable)
	if !ok {
		panic("costfn: Scaled.Deriv on non-differentiable inner function")
	}
	return s.Factor * d.Deriv(z)
}

// String describes the function.
func (s Scaled) String() string { return fmt.Sprintf("%g×%v", s.Factor, s.F) }

// differentiable returns whether f exposes a usable derivative, unwrapping
// Scaled.
func differentiable(f Func) bool {
	switch v := f.(type) {
	case Scaled:
		return differentiable(v.F)
	case Differentiable:
		return true
	default:
		return false
	}
}

// AsDifferentiable returns f as Differentiable if it (after unwrapping
// Scaled layers) exposes a derivative.
func AsDifferentiable(f Func) (Differentiable, bool) {
	if !differentiable(f) {
		return nil, false
	}
	return f.(Differentiable), true
}

// Validate samples f on [0, zmax] and checks the model contract:
// non-negative, non-decreasing, and midpoint-convex up to tolerance. It is
// a test/fuzzing helper for user-supplied cost functions; the built-in
// families satisfy the contract by construction.
func Validate(f Func, zmax float64, samples int) error {
	if samples < 3 {
		samples = 3
	}
	step := zmax / float64(samples-1)
	prev := math.Inf(-1)
	vals := make([]float64, samples)
	for i := 0; i < samples; i++ {
		z := float64(i) * step
		v := f.Value(z)
		if v < 0 {
			return fmt.Errorf("costfn: negative cost %g at z=%g", v, z)
		}
		if v < prev-1e-9*(1+math.Abs(prev)) {
			return fmt.Errorf("costfn: decreasing cost at z=%g (%g -> %g)", z, prev, v)
		}
		vals[i] = v
		prev = v
	}
	for i := 1; i+1 < samples; i++ {
		mid := vals[i]
		chord := (vals[i-1] + vals[i+1]) / 2
		if mid > chord+1e-9*(1+math.Abs(chord)) {
			return fmt.Errorf("costfn: convexity violated near z=%g", float64(i)*step)
		}
	}
	return nil
}
