package costfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	f := Constant{C: 4}
	for _, z := range []float64{0, 0.5, 1, 100} {
		if f.Value(z) != 4 {
			t.Errorf("Value(%g) = %g, want 4", z, f.Value(z))
		}
		if f.Deriv(z) != 0 {
			t.Errorf("Deriv(%g) = %g, want 0", z, f.Deriv(z))
		}
	}
	if err := Validate(f, 10, 50); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAffine(t *testing.T) {
	f := Affine{Idle: 2, Rate: 3}
	if f.Value(0) != 2 {
		t.Errorf("idle cost = %g, want 2", f.Value(0))
	}
	if f.Value(2) != 8 {
		t.Errorf("Value(2) = %g, want 8", f.Value(2))
	}
	if f.Deriv(1) != 3 {
		t.Errorf("Deriv = %g, want 3", f.Deriv(1))
	}
	if err := Validate(f, 10, 50); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPower(t *testing.T) {
	f := Power{Idle: 1, Coef: 2, Exp: 2}
	if f.Value(0) != 1 {
		t.Errorf("Value(0) = %g, want 1", f.Value(0))
	}
	if f.Value(3) != 19 {
		t.Errorf("Value(3) = %g, want 19", f.Value(3))
	}
	if got := f.Deriv(3); math.Abs(got-12) > 1e-12 {
		t.Errorf("Deriv(3) = %g, want 12", got)
	}
	if err := Validate(f, 5, 100); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPowerLinearExponent(t *testing.T) {
	f := Power{Idle: 0, Coef: 5, Exp: 1}
	if f.Deriv(0) != 5 || f.Deriv(2) != 5 {
		t.Error("Exp=1 power function should have constant derivative")
	}
}

func TestPowerDerivAtZero(t *testing.T) {
	f := Power{Idle: 0, Coef: 1, Exp: 3}
	if f.Deriv(0) != 0 {
		t.Errorf("Deriv(0) = %g, want 0 for Exp>1", f.Deriv(0))
	}
}

func TestPowerNumericDerivativeAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		f := Power{Idle: rng.Float64(), Coef: rng.Float64() * 5, Exp: 1 + rng.Float64()*3}
		z := rng.Float64()*4 + 0.1
		h := 1e-6
		numeric := (f.Value(z+h) - f.Value(z-h)) / (2 * h)
		if math.Abs(numeric-f.Deriv(z)) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("derivative mismatch for %v at z=%g: numeric %g, analytic %g",
				f, z, numeric, f.Deriv(z))
		}
	}
}

func TestPiecewiseLinearBasics(t *testing.T) {
	f := MustPiecewiseLinear([]float64{0, 1, 2}, []float64{1, 2, 5})
	cases := []struct{ z, want float64 }{
		{0, 1}, {0.5, 1.5}, {1, 2}, {1.5, 3.5}, {2, 5},
		{3, 8},  // extrapolated with final slope 3
		{-1, 1}, // clamped to f(0)
	}
	for _, c := range cases {
		if got := f.Value(c.z); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Value(%g) = %g, want %g", c.z, got, c.want)
		}
	}
	if got := f.Deriv(0.5); got != 1 {
		t.Errorf("Deriv(0.5) = %g, want 1", got)
	}
	if got := f.Deriv(1); got != 3 {
		t.Errorf("right-deriv at breakpoint = %g, want 3", got)
	}
	if got := f.Deriv(5); got != 3 {
		t.Errorf("Deriv beyond last point = %g, want 3", got)
	}
	if err := Validate(f, 3, 100); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPiecewiseLinearSinglePoint(t *testing.T) {
	f := MustPiecewiseLinear([]float64{0}, []float64{2})
	if f.Value(0) != 2 || f.Value(5) != 2 {
		t.Error("single-point curve should be constant")
	}
	if f.Deriv(1) != 0 {
		t.Error("single-point curve should have zero derivative")
	}
}

func TestNewPiecewiseLinearValidation(t *testing.T) {
	cases := []struct {
		name   string
		zs, vs []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []float64{0, 1}, []float64{1}},
		{"first not zero", []float64{1, 2}, []float64{1, 2}},
		{"negative cost", []float64{0, 1}, []float64{-1, 2}},
		{"not increasing z", []float64{0, 1, 1}, []float64{1, 2, 3}},
		{"decreasing cost", []float64{0, 1}, []float64{2, 1}},
		{"concave", []float64{0, 1, 2}, []float64{0, 10, 11}},
	}
	for _, c := range cases {
		if _, err := NewPiecewiseLinear(c.zs, c.vs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMustPiecewiseLinearPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustPiecewiseLinear([]float64{1}, []float64{1})
}

func TestScaled(t *testing.T) {
	f := Scaled{F: Affine{Idle: 2, Rate: 4}, Factor: 0.5}
	if f.Value(1) != 3 {
		t.Errorf("Value(1) = %g, want 3", f.Value(1))
	}
	if f.Deriv(1) != 2 {
		t.Errorf("Deriv(1) = %g, want 2", f.Deriv(1))
	}
}

type opaque struct{ Func }

func TestScaledDerivPanicsOnOpaque(t *testing.T) {
	f := Scaled{F: opaque{Constant{1}}, Factor: 2}
	// opaque embeds Func only; the embedded Constant does satisfy
	// Differentiable through promotion, so build a truly opaque one.
	_ = f
	g := Scaled{F: valueOnly{}, Factor: 2}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Deriv(1)
}

type valueOnly struct{}

func (valueOnly) Value(z float64) float64 { return z }

func TestAsDifferentiable(t *testing.T) {
	if _, ok := AsDifferentiable(Affine{1, 1}); !ok {
		t.Error("Affine should be differentiable")
	}
	if _, ok := AsDifferentiable(Scaled{F: Power{0, 1, 2}, Factor: 3}); !ok {
		t.Error("Scaled over Power should be differentiable")
	}
	if _, ok := AsDifferentiable(Scaled{F: Scaled{F: Affine{1, 1}, Factor: 2}, Factor: 3}); !ok {
		t.Error("nested Scaled should be differentiable")
	}
	if _, ok := AsDifferentiable(valueOnly{}); ok {
		t.Error("valueOnly should not be differentiable")
	}
	if _, ok := AsDifferentiable(Scaled{F: valueOnly{}, Factor: 2}); ok {
		t.Error("Scaled over opaque should not be differentiable")
	}
}

func TestValidateRejectsBadFunctions(t *testing.T) {
	if err := Validate(valueOnlyNeg{}, 1, 10); err == nil {
		t.Error("negative function should fail validation")
	}
	if err := Validate(decreasing{}, 1, 10); err == nil {
		t.Error("decreasing function should fail validation")
	}
	if err := Validate(concave{}, 1, 10); err == nil {
		t.Error("concave function should fail validation")
	}
}

type valueOnlyNeg struct{}

func (valueOnlyNeg) Value(z float64) float64 { return -1 }

type decreasing struct{}

func (decreasing) Value(z float64) float64 { return 10 - z }

type concave struct{}

func (concave) Value(z float64) float64 { return math.Sqrt(z) }

// Property: every built-in family passes Validate for random parameters.
func TestFamiliesAlwaysValidProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := []Func{
			Constant{C: rng.Float64() * 10},
			Affine{Idle: rng.Float64() * 5, Rate: rng.Float64() * 5},
			Power{Idle: rng.Float64() * 5, Coef: rng.Float64() * 5, Exp: 1 + rng.Float64()*3},
			Scaled{F: Affine{Idle: rng.Float64(), Rate: rng.Float64()}, Factor: rng.Float64()*2 + 0.01},
		}
		for _, f := range fs {
			if Validate(f, 4, 60) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PiecewiseLinear built from a random convex sequence evaluates
// exactly at its breakpoints.
func TestPiecewiseLinearInterpolatesBreakpoints(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		zs := make([]float64, n)
		vs := make([]float64, n)
		slope := rng.Float64()
		for i := 1; i < n; i++ {
			zs[i] = zs[i-1] + rng.Float64() + 0.1
			vs[i] = vs[i-1] + slope*(zs[i]-zs[i-1])
			slope += rng.Float64() // slopes non-decreasing
		}
		f, err := NewPiecewiseLinear(zs, vs)
		if err != nil {
			return false
		}
		for i := range zs {
			if math.Abs(f.Value(zs[i])-vs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringMethods(t *testing.T) {
	for _, f := range []interface{ String() string }{
		Constant{1}, Affine{1, 2}, Power{1, 2, 3},
		MustPiecewiseLinear([]float64{0, 1}, []float64{0, 1}),
		Scaled{F: Constant{1}, Factor: 2},
	} {
		if f.String() == "" {
			t.Errorf("%T has empty String()", f)
		}
	}
}

func BenchmarkPowerValue(b *testing.B) {
	f := Power{Idle: 1, Coef: 2, Exp: 2.5}
	for i := 0; i < b.N; i++ {
		_ = f.Value(float64(i%100) / 100)
	}
}

func BenchmarkPiecewiseLinearValue(b *testing.B) {
	f := MustPiecewiseLinear(
		[]float64{0, 0.25, 0.5, 0.75, 1},
		[]float64{1, 1.2, 1.5, 2.0, 3.0},
	)
	for i := 0; i < b.N; i++ {
		_ = f.Value(float64(i%100) / 100)
	}
}
