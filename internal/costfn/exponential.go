package costfn

import (
	"fmt"
	"math"
)

// Exponential is f(z) = Idle + Amp·(e^{Rate·z} − 1), a sharply convex
// cost modelling thermal/cooling blow-up at high utilisation: near-linear
// at low load, explosive near saturation. Amp and Rate must be positive.
type Exponential struct {
	Idle float64 // f(0)
	Amp  float64 // amplitude of the exponential term, > 0
	Rate float64 // growth rate, > 0
}

// Value implements Func.
func (e Exponential) Value(z float64) float64 {
	if z <= 0 {
		return e.Idle
	}
	return e.Idle + e.Amp*(math.Exp(e.Rate*z)-1)
}

// Deriv implements Differentiable: f'(z) = Amp·Rate·e^{Rate·z}.
func (e Exponential) Deriv(z float64) float64 {
	if z < 0 {
		z = 0
	}
	return e.Amp * e.Rate * math.Exp(e.Rate*z)
}

// InvDeriv implements Invertible: f'(z) <= ν ⇔ z <= ln(ν/(Amp·Rate))/Rate.
func (e Exponential) InvDeriv(nu float64) float64 {
	base := e.Amp * e.Rate
	if nu <= base {
		return 0
	}
	return math.Log(nu/base) / e.Rate
}

// String describes the function.
func (e Exponential) String() string {
	return fmt.Sprintf("exp(%g+%g·(e^{%g·z}-1))", e.Idle, e.Amp, e.Rate)
}
