package costfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialBasics(t *testing.T) {
	f := Exponential{Idle: 2, Amp: 1, Rate: 1}
	if f.Value(0) != 2 {
		t.Errorf("Value(0) = %g, want 2", f.Value(0))
	}
	want := 2 + math.E - 1
	if math.Abs(f.Value(1)-want) > 1e-12 {
		t.Errorf("Value(1) = %g, want %g", f.Value(1), want)
	}
	if f.Value(-1) != 2 {
		t.Error("negative load clamps to idle")
	}
	if err := Validate(f, 3, 100); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestExponentialDerivative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		f := Exponential{Idle: rng.Float64(), Amp: 0.1 + rng.Float64(), Rate: 0.2 + rng.Float64()*2}
		z := rng.Float64() * 3
		h := 1e-6
		numeric := (f.Value(z+h) - f.Value(z-h)) / (2 * h)
		if math.Abs(numeric-f.Deriv(z)) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("derivative mismatch at z=%g: numeric %g vs analytic %g", z, numeric, f.Deriv(z))
		}
	}
}

func TestExponentialInvDeriv(t *testing.T) {
	f := Exponential{Idle: 0, Amp: 2, Rate: 3} // f'(z) = 6·e^{3z}
	if f.InvDeriv(6) != 0 {
		t.Errorf("InvDeriv at f'(0) should be 0, got %g", f.InvDeriv(6))
	}
	if f.InvDeriv(1) != 0 {
		t.Error("nu below f'(0) should give 0")
	}
	z := f.InvDeriv(6 * math.E) // f'(z) = 6e ⇒ z = 1/3
	if math.Abs(z-1.0/3) > 1e-12 {
		t.Errorf("InvDeriv(6e) = %g, want 1/3", z)
	}
}

// Property: InvDeriv inverts Deriv exactly.
func TestExponentialInvDerivProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := Exponential{Idle: rng.Float64(), Amp: 0.1 + rng.Float64()*3, Rate: 0.2 + rng.Float64()*3}
		z := rng.Float64() * 4
		nu := f.Deriv(z)
		back := f.InvDeriv(nu)
		return math.Abs(back-z) < 1e-9*(1+z)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExponentialIsInvertibleFamily(t *testing.T) {
	if _, ok := AsInvertible(Exponential{Idle: 1, Amp: 1, Rate: 1}); !ok {
		t.Error("Exponential should be invertible")
	}
	if (Exponential{Idle: 1, Amp: 1, Rate: 1}).String() == "" {
		t.Error("empty String")
	}
}
