package costfn

import (
	"math"
	"sort"
)

// Invertible is implemented by cost functions that can invert their
// derivative analytically. The dispatch solver's water-filling uses it to
// evaluate the optimal per-type volume for a dual multiplier ν in O(1),
// which keeps g_t(x) evaluation fast inside the DP solvers.
type Invertible interface {
	Differentiable
	// InvDeriv returns the largest load z >= 0 whose right-derivative is
	// <= nu, +Inf if the derivative never exceeds nu, and 0 if already
	// Deriv(0) > nu. For convex f this is well defined (the sublevel set
	// of a non-decreasing derivative is an interval starting at 0).
	InvDeriv(nu float64) float64
}

// InvDeriv implements Invertible. The derivative is identically 0, so any
// load satisfies Deriv <= nu for nu >= 0.
func (c Constant) InvDeriv(nu float64) float64 {
	if nu >= 0 {
		return math.Inf(1)
	}
	return 0
}

// InvDeriv implements Invertible: the derivative is the constant Rate.
func (a Affine) InvDeriv(nu float64) float64 {
	if nu >= a.Rate {
		return math.Inf(1)
	}
	return 0
}

// InvDeriv implements Invertible: f'(z) = Coef·Exp·z^(Exp−1).
func (p Power) InvDeriv(nu float64) float64 {
	if nu < 0 {
		return 0
	}
	if p.Coef == 0 {
		return math.Inf(1)
	}
	if p.Exp == 1 {
		if nu >= p.Coef {
			return math.Inf(1)
		}
		return 0
	}
	// z = (nu / (Coef·Exp))^(1/(Exp−1)); nu = 0 gives z = 0.
	return math.Pow(nu/(p.Coef*p.Exp), 1/(p.Exp-1))
}

// InvDeriv implements Invertible: scan breakpoints for the last segment
// whose slope is <= nu.
func (p PiecewiseLinear) InvDeriv(nu float64) float64 {
	n := len(p.zs)
	if n == 1 {
		if nu >= 0 {
			return math.Inf(1)
		}
		return 0
	}
	// slopes[i] is the slope of the segment [zs[i], zs[i+1]); they are
	// non-decreasing by construction, so binary-search the first slope
	// exceeding nu.
	i := sort.Search(n-1, func(i int) bool {
		slope := (p.vs[i+1] - p.vs[i]) / (p.zs[i+1] - p.zs[i])
		return slope > nu
	})
	if i == n-1 {
		// Even the final (extrapolated) slope is <= nu.
		return math.Inf(1)
	}
	return p.zs[i]
}

// InvDeriv implements Invertible by delegating with a rescaled multiplier:
// (s·f)'(z) <= nu  ⇔  f'(z) <= nu/s.
func (s Scaled) InvDeriv(nu float64) float64 {
	inv, ok := s.F.(Invertible)
	if !ok {
		panic("costfn: Scaled.InvDeriv on non-invertible inner function")
	}
	return inv.InvDeriv(nu / s.Factor)
}

// AsInvertible returns f as Invertible if it (after unwrapping Scaled
// layers) supports analytic derivative inversion.
func AsInvertible(f Func) (Invertible, bool) {
	switch v := f.(type) {
	case Scaled:
		if _, ok := AsInvertible(v.F); !ok {
			return nil, false
		}
		return v, true
	case Invertible:
		return v, true
	default:
		return nil, false
	}
}
