package costfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstantInvDeriv(t *testing.T) {
	c := Constant{C: 3}
	if !math.IsInf(c.InvDeriv(0), 1) || !math.IsInf(c.InvDeriv(5), 1) {
		t.Error("constant cost: any load has derivative 0 <= nu for nu >= 0")
	}
	if c.InvDeriv(-1) != 0 {
		t.Error("negative nu should give 0")
	}
}

func TestAffineInvDeriv(t *testing.T) {
	a := Affine{Idle: 1, Rate: 2}
	if a.InvDeriv(1.9) != 0 {
		t.Error("nu below rate: 0")
	}
	if !math.IsInf(a.InvDeriv(2), 1) {
		t.Error("nu at rate: +Inf")
	}
	if !math.IsInf(a.InvDeriv(3), 1) {
		t.Error("nu above rate: +Inf")
	}
}

func TestPowerInvDeriv(t *testing.T) {
	p := Power{Idle: 0, Coef: 1, Exp: 2} // f'(z) = 2z
	if got := p.InvDeriv(4); math.Abs(got-2) > 1e-12 {
		t.Errorf("InvDeriv(4) = %g, want 2", got)
	}
	if got := p.InvDeriv(0); got != 0 {
		t.Errorf("InvDeriv(0) = %g, want 0", got)
	}
	if got := p.InvDeriv(-1); got != 0 {
		t.Errorf("negative nu: got %g, want 0", got)
	}
}

func TestPowerInvDerivEdgeCases(t *testing.T) {
	if !math.IsInf(Power{Idle: 1, Coef: 0, Exp: 2}.InvDeriv(1), 1) {
		t.Error("zero coefficient behaves like constant")
	}
	lin := Power{Idle: 0, Coef: 3, Exp: 1}
	if lin.InvDeriv(2) != 0 {
		t.Error("nu below linear slope: 0")
	}
	if !math.IsInf(lin.InvDeriv(3), 1) {
		t.Error("nu at linear slope: +Inf")
	}
}

func TestPiecewiseLinearInvDeriv(t *testing.T) {
	// slopes: 1 on [0,1), 3 on [1,2), extrapolated 3 beyond.
	f := MustPiecewiseLinear([]float64{0, 1, 2}, []float64{0, 1, 4})
	if got := f.InvDeriv(0.5); got != 0 {
		t.Errorf("nu=0.5: got %g, want 0", got)
	}
	if got := f.InvDeriv(1); got != 1 {
		t.Errorf("nu=1 (equal to first slope): got %g, want 1", got)
	}
	if got := f.InvDeriv(2); got != 1 {
		t.Errorf("nu=2: got %g, want 1", got)
	}
	if !math.IsInf(f.InvDeriv(3), 1) {
		t.Error("nu at final slope: +Inf")
	}
	single := MustPiecewiseLinear([]float64{0}, []float64{2})
	if !math.IsInf(single.InvDeriv(0), 1) || single.InvDeriv(-1) != 0 {
		t.Error("single-point curve derivative inversion")
	}
}

func TestScaledInvDeriv(t *testing.T) {
	f := Scaled{F: Power{Idle: 0, Coef: 1, Exp: 2}, Factor: 2} // f'(z) = 4z
	if got := f.InvDeriv(4); math.Abs(got-1) > 1e-12 {
		t.Errorf("InvDeriv(4) = %g, want 1", got)
	}
}

func TestScaledInvDerivPanicsOnOpaque(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Scaled{F: valueOnly{}, Factor: 2}.InvDeriv(1)
}

func TestAsInvertible(t *testing.T) {
	for _, f := range []Func{
		Constant{1}, Affine{1, 2}, Power{0, 1, 2},
		MustPiecewiseLinear([]float64{0, 1}, []float64{0, 1}),
		Scaled{F: Power{0, 1, 2}, Factor: 2},
		Scaled{F: Scaled{F: Affine{0, 1}, Factor: 2}, Factor: 3},
	} {
		if _, ok := AsInvertible(f); !ok {
			t.Errorf("%v should be invertible", f)
		}
	}
	if _, ok := AsInvertible(valueOnly{}); ok {
		t.Error("opaque function should not be invertible")
	}
	if _, ok := AsInvertible(Scaled{F: valueOnly{}, Factor: 2}); ok {
		t.Error("scaled opaque function should not be invertible")
	}
}

// Property: InvDeriv is consistent with Deriv — for random nu, the returned
// z satisfies Deriv(z) <= nu (when finite) and Deriv(z + eps) "crosses" nu.
func TestInvDerivConsistencyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := []Invertible{
			Power{Idle: rng.Float64(), Coef: rng.Float64()*4 + 0.1, Exp: 1.5 + rng.Float64()*2},
			Affine{Idle: rng.Float64(), Rate: rng.Float64()*4 + 0.1},
			MustPiecewiseLinear(
				[]float64{0, 0.5, 1, 2},
				[]float64{0, 0.25, 1, 4},
			),
		}
		nu := rng.Float64() * 6
		for _, f := range fs {
			z := f.InvDeriv(nu)
			if math.IsInf(z, 1) {
				// Derivative never exceeds nu: check a large sample point.
				if f.Deriv(1e6) > nu+1e-9 {
					return false
				}
				continue
			}
			if z > 0 && f.Deriv(z*(1-1e-9)) > nu+1e-9 {
				return false
			}
			if f.Deriv(z+1e-6) < nu-1e-3 && f.Deriv(z+1) < nu-1e-9 {
				// z should be (near) the largest point with Deriv <= nu;
				// if well beyond z the derivative is still below nu, the
				// inversion under-shot.
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPowerInvDeriv(b *testing.B) {
	p := Power{Idle: 1, Coef: 2, Exp: 2.7}
	for i := 0; i < b.N; i++ {
		_ = p.InvDeriv(float64(i%17) / 3)
	}
}
