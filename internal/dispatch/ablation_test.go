package dispatch

import (
	"math"
	"testing"

	"repro/internal/costfn"
)

// Ablation: the same quadratic cost exposed through each capability tier —
// Invertible (closed-form dual step), Differentiable (derivative
// bisection) and opaque (golden-section) — must agree numerically, and the
// benchmarks quantify what each fast path buys.

// derivOnly wraps Power hiding InvDeriv.
type derivOnly struct{ p costfn.Power }

func (d derivOnly) Value(z float64) float64 { return d.p.Value(z) }
func (d derivOnly) Deriv(z float64) float64 { return d.p.Deriv(z) }

// valueOnlyQuad wraps Power hiding both derivatives.
type valueOnlyQuad struct{ p costfn.Power }

func (v valueOnlyQuad) Value(z float64) float64 { return v.p.Value(z) }

func ablationServers(wrap func(costfn.Power) costfn.Func) []Server {
	q1 := costfn.Power{Idle: 1, Coef: 1, Exp: 2}
	q2 := costfn.Power{Idle: 2, Coef: 0.5, Exp: 2}
	return []Server{
		{Active: 6, Cap: 1, F: wrap(q1)},
		{Active: 3, Cap: 4, F: wrap(q2)},
	}
}

func TestDispatchTiersAgree(t *testing.T) {
	inv := ablationServers(func(p costfn.Power) costfn.Func { return p })
	diff := ablationServers(func(p costfn.Power) costfn.Func { return derivOnly{p} })
	opaque := ablationServers(func(p costfn.Power) costfn.Func { return valueOnlyQuad{p} })
	for _, lambda := range []float64{0.5, 3, 7.7, 12} {
		a := Assign(inv, lambda).Cost
		b := Assign(diff, lambda).Cost
		c := Assign(opaque, lambda).Cost
		if math.Abs(a-b) > 1e-6*(1+a) {
			t.Errorf("λ=%g: invertible %g vs differentiable %g", lambda, a, b)
		}
		if math.Abs(a-c) > 1e-4*(1+a) {
			t.Errorf("λ=%g: invertible %g vs opaque %g", lambda, a, c)
		}
	}
}

func BenchmarkDispatchTierInvertible(b *testing.B) {
	servers := ablationServers(func(p costfn.Power) costfn.Func { return p })
	var sv Solver
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sv.Cost(servers, 7.7)
	}
}

func BenchmarkDispatchTierDifferentiable(b *testing.B) {
	servers := ablationServers(func(p costfn.Power) costfn.Func { return derivOnly{p} })
	var sv Solver
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sv.Cost(servers, 7.7)
	}
}

func BenchmarkDispatchTierOpaque(b *testing.B) {
	servers := ablationServers(func(p costfn.Power) costfn.Func { return valueOnlyQuad{p} })
	var sv Solver
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sv.Cost(servers, 7.7)
	}
}
