// Package dispatch solves the intra-slot load-assignment problem of the
// right-sizing model: given the numbers of active servers per type, split
// the arriving job volume λ across the types so the total operating cost is
// minimal. This evaluates the paper's Equation (1),
//
//	g_t(x_1, …, x_d) = min_{z ∈ Z} Σ_j g_{t,j}(x_j, z_j),
//
// where Z is the probability simplex over the d types and
// g_{t,j}(x, z) = x·f_{t,j}(λ_t z / x). By Lemma 2 (Jensen), jobs assigned
// to a type are spread evenly over its active servers, which is what the
// x·f(λz/x) form encodes.
//
// Substituting y_j = λ z_j turns the problem into a separable convex
// program with one coupling constraint:
//
//	min Σ_j φ_j(y_j)   s.t.  Σ_j y_j = λ,  0 ≤ y_j ≤ x_j·zmax_j,
//	φ_j(y) = x_j · f_j(y / x_j).
//
// The solver performs water-filling on the dual: for a multiplier ν, each
// type's optimal volume y_j(ν) is the largest y with φ'_j(y) ≤ ν, clamped
// to its capacity; Σ_j y_j(ν) is non-decreasing in ν, so an outer root
// search finds the ν* that meets the demand. Cost functions implementing
// costfn.Invertible give y_j(ν) in closed form; differentiable functions
// use derivative bisection; opaque functions fall back to golden-section
// search on the Lagrangian.
//
// # Canonical duals and warm starts
//
// The dual search defines its answer combinatorially so that it does not
// depend on how the root is located: with hi the smallest power of two in
// [1, 2^200] whose absorbed volume covers λ and h = hi/2^47, the canonical
// ν* is the midpoint of the unique dyadic cell [k·h, (k+1)·h] where the
// absorbed volume crosses λ (exactly the final bracket of a classic
// midpoint bisection of [0, hi] to the legacy 1e-14·hi tolerance). Any
// correct bracketing search lands on the same cell, so a Solver may carry
// the previous solve's (hi, ν*) as a warm start — walking a DP lattice
// line in grid order moves ν* monotonically and slowly — and still return
// results bit-for-bit identical to a cold solve.
package dispatch

import (
	"math"

	"repro/internal/costfn"
	"repro/internal/numeric"
)

// Server describes one server type's state within a single time slot.
type Server struct {
	Active int         // number of active servers x_j (>= 0)
	Cap    float64     // per-server capacity zmax_j (> 0)
	F      costfn.Func // operating-cost function f_{t,j} for this slot
}

// Assignment is the result of an optimal load split.
type Assignment struct {
	// Cost is g_t(x): the minimal total operating cost. It is +Inf when
	// the active servers cannot absorb the demand (infeasible slot) and 0
	// only if every type is inactive and the demand is zero.
	Cost float64
	// Y[j] is the job volume routed to type j; Σ Y = λ for feasible calls.
	Y []float64
	// Z[j] is the fraction of λ routed to type j (Y[j]/λ); all zero when
	// λ = 0.
	Z []float64
}

// Assign computes the optimal split of job volume lambda across the server
// types. It never mutates its input. The semantics at the edges follow the
// paper's definition of g_{t,j}:
//   - lambda == 0: nothing to route; cost is the idle cost of all active
//     servers.
//   - lambda > 0 with zero total capacity: cost +Inf (x_j = 0 and
//     λ_t z_j > 0 is forbidden, and capacities bound the rest).
//
// Assign allocates its result; inside hot loops use Solver.Cost or
// Solver.AssignInto, which reuse buffers.
func Assign(servers []Server, lambda float64) Assignment {
	var sv Solver
	var res Assignment
	sv.AssignInto(servers, lambda, &res)
	return res
}

// Warm carries the dual bracket of a previous solve as a starting hint for
// the next one. The zero value means "no hint" (cold solve). Warm starts
// never change results — the dual search's answer is canonical (see the
// package comment) — they only cut the number of water-filling
// evaluations when consecutive solves have nearby duals.
type Warm struct {
	// Hi is the previous solve's dyadic upper bracket (a power of two).
	Hi float64
	// Nu is the previous solve's dual multiplier ν*.
	Nu float64
}

// Solver evaluates optimal assignment costs while reusing internal scratch
// buffers across calls, and carries the previous solve's dual as a warm
// start for the next one. The zero value is ready to use. A Solver is not
// safe for concurrent use; create one per goroutine.
type Solver struct {
	active []int
	lo, hi []float64
	y      []float64
	plans  []plan
	opaque bool // any plan on the golden-section fallback this solve
	warm   Warm
}

// Cost returns g_t(x) — the minimal operating cost of routing volume
// lambda to the given active servers — without allocating. Consecutive
// calls warm-start each other; results are identical to a cold solve.
func (sv *Solver) Cost(servers []Server, lambda float64) float64 {
	if cap(sv.y) < len(servers) {
		sv.y = make([]float64, len(servers))
	}
	return sv.solve(servers, lambda, sv.y[:len(servers)])
}

// AssignInto computes Assign's result into res, reusing its Y/Z buffers —
// the allocation-free path for callers that hold an Assignment across
// calls (model.Evaluator.Split reports per-slot load splits through it).
func (sv *Solver) AssignInto(servers []Server, lambda float64, res *Assignment) {
	d := len(servers)
	if cap(res.Y) < d {
		res.Y = make([]float64, d)
	}
	if cap(res.Z) < d {
		res.Z = make([]float64, d)
	}
	res.Y, res.Z = res.Y[:d], res.Z[:d]
	res.Cost = sv.solve(servers, lambda, res.Y)
	for j := range res.Z {
		res.Z[j] = 0
	}
	if lambda > 0 {
		for j := range res.Z {
			res.Z[j] = res.Y[j] / lambda
		}
	}
}

// Warm returns the dual warm-start state left by the last solve.
func (sv *Solver) Warm() Warm { return sv.warm }

// SetWarm installs a warm-start hint, typically taken from a neighbouring
// solve's Warm(). Invalid hints are ignored by the search.
func (sv *Solver) SetWarm(w Warm) { sv.warm = w }

// ResetWarm clears the warm-start state (the next solve runs cold).
func (sv *Solver) ResetWarm() { sv.warm = Warm{} }

// solve computes the optimal cost and writes the per-type volumes into y
// (which must have len(servers) entries).
func (sv *Solver) solve(servers []Server, lambda float64, y []float64) float64 {
	if lambda < 0 {
		panic("dispatch: negative job volume")
	}
	for j := range y {
		y[j] = 0
	}

	idle := 0.0
	totalCap := 0.0
	for _, s := range servers {
		if s.Active < 0 {
			panic("dispatch: negative active-server count")
		}
		if s.Active > 0 {
			idle += float64(s.Active) * s.F.Value(0)
			totalCap += float64(s.Active) * s.Cap
		}
	}

	if lambda == 0 {
		return idle
	}
	if totalCap < lambda*(1-1e-12) {
		return math.Inf(1)
	}

	sv.active = sv.active[:0]
	for j, s := range servers {
		if s.Active > 0 && s.Cap > 0 {
			sv.active = append(sv.active, j)
		}
	}
	if len(sv.active) == 1 {
		j := sv.active[0]
		y[j] = math.Min(lambda, float64(servers[j].Active)*servers[j].Cap)
		return phi(servers[j], y[j])
	}

	sv.resolvePlans(servers)
	nuStar := sv.solveDual(lambda)
	sv.fillVolumes(servers, lambda, nuStar, y)

	// phi(s, y) is the complete cost (idle + load) of a type's active
	// servers, so summing over active types is the whole slot cost.
	cost := 0.0
	for _, j := range sv.active {
		cost += phi(servers[j], y[j])
	}
	return cost
}

// phi evaluates φ_j(y) = x_j f_j(y/x_j), the total cost of type j's active
// servers when routed volume y.
func phi(s Server, y float64) float64 {
	x := float64(s.Active)
	if y <= 0 {
		return x * s.F.Value(0)
	}
	return x * s.F.Value(y/x)
}

// plan caches the resolved evaluation strategy of one active type for the
// duration of a solve, so the dual search does not re-unwrap cost-function
// interfaces on every probe.
type plan struct {
	kind uint8   // planInvertible | planDifferentiable | planOpaque
	x    float64 // float64(Active)
	cap  float64 // x·Cap
	srv  Server

	inv costfn.Invertible

	deriv    func(float64) float64 // hoisted Deriv for the bisection path
	d0, dcap float64               // Deriv(0), Deriv(Cap)

	lag func(float64) float64 // per-solve Lagrangian for the opaque path
	nu  float64               // multiplier read by lag
}

const (
	planInvertible = iota
	planDifferentiable
	planOpaque
)

// resolvePlans rebuilds sv.plans for the active types, in active order.
func (sv *Solver) resolvePlans(servers []Server) {
	if cap(sv.plans) < len(sv.active) {
		sv.plans = make([]plan, len(sv.active))
	}
	sv.plans = sv.plans[:len(sv.active)]
	sv.opaque = false
	for i, j := range sv.active {
		s := servers[j]
		p := &sv.plans[i]
		x := float64(s.Active)
		p.x, p.cap, p.srv = x, x*s.Cap, s
		p.lag = nil
		if inv, ok := costfn.AsInvertible(s.F); ok {
			p.kind, p.inv = planInvertible, inv
		} else if diff, ok := costfn.AsDifferentiable(s.F); ok {
			p.kind = planDifferentiable
			p.deriv = diff.Deriv
			p.d0, p.dcap = diff.Deriv(0), diff.Deriv(s.Cap)
		} else {
			p.kind = planOpaque
			p.lag = func(y float64) float64 { return phi(p.srv, y) - p.nu*y }
			sv.opaque = true
		}
	}
}

// volumeAt returns y_j(ν): the volume type j absorbs at dual multiplier ν.
// It is the minimiser of φ_j(y) − ν·y over [0, cap_j], which for convex φ
// is the largest y in the capacity interval with φ'_j(y) ≤ ν.
func (p *plan) volumeAt(nu float64) float64 {
	switch p.kind {
	case planInvertible:
		z := p.inv.InvDeriv(nu) // φ'(y) = f'(y/x) ≤ ν  ⇔  y ≤ x·InvDeriv(ν)
		return numeric.Clamp(p.x*z, 0, p.cap)
	case planDifferentiable:
		if p.d0 >= nu {
			return 0
		}
		if p.dcap <= nu {
			return p.cap
		}
		z := numeric.BisectIncreasing(p.deriv, nu, 0, p.srv.Cap, 1e-13*p.srv.Cap)
		return numeric.Clamp(p.x*z, 0, p.cap)
	default:
		// Opaque function: golden-section on the per-type Lagrangian.
		p.nu = nu
		y, _ := numeric.MinimizeConvex(p.lag, 0, p.cap, 1e-13*math.Max(p.cap, 1))
		return y
	}
}

// total returns Σ_j y_j(ν) over the active types, non-decreasing in ν.
func (sv *Solver) total(nu float64) float64 {
	sum := 0.0
	for i := range sv.plans {
		sum += sv.plans[i].volumeAt(nu)
	}
	return sum
}

const (
	// dualBits fixes the dyadic resolution h = hi/2^47 of the canonical
	// dual: 47 halvings are what a midpoint bisection of [0, hi] performs
	// before its width drops under the legacy tolerance 1e-14·max(hi, 1).
	dualBits  = 47
	dualCells = int64(1) << dualBits
)

// maxDualHi caps the geometric bracket growth at 2^200, matching the
// legacy doubling loop's iteration cap.
var maxDualHi = math.Ldexp(1, 200)

// solveDual finds the canonical dual multiplier ν* at which the absorbed
// volume meets lambda. The search is warm-started from sv.warm when
// available and always lands on the same answer as a cold solve: the
// midpoint of the dyadic cell where Σ y_j(ν) crosses lambda.
func (sv *Solver) solveDual(lambda float64) float64 {
	warm := sv.warm
	if sv.opaque {
		// Golden-section-evaluated totals jitter non-monotonically at the
		// ~1e-13 scale — wider than a dyadic cell — so the snap's landing
		// cell would depend on where the hint made it start. Hints are
		// ignored and the solve runs the hint-free reference bisection:
		// slower, but deterministic for any call history.
		warm = Warm{}
	}
	v0 := sv.total(0)
	if v0 >= lambda {
		sv.warm = Warm{Hi: math.Max(warm.Hi, 1), Nu: 0}
		return 0
	}

	// Settle hi on the smallest power of two in [1, 2^200] whose absorbed
	// volume reaches lambda, starting from the warm bracket when present.
	hi := 1.0
	if warm.Hi >= 1 && warm.Hi <= maxDualHi {
		hi = warm.Hi
	}
	v := sv.total(hi)
	if v < lambda {
		for hi < maxDualHi && v < lambda {
			hi *= 2
			v = sv.total(hi)
		}
	} else {
		for hi > 1 {
			vv := sv.total(hi / 2)
			if vv < lambda {
				break
			}
			hi /= 2
			v = vv
		}
	}
	if v <= lambda {
		// Exact hit at the bracket, or demand beyond the growth cap.
		sv.warm = Warm{Hi: hi, Nu: hi}
		return hi
	}
	if sv.opaque {
		nu := sv.dualBisect(hi, lambda)
		sv.warm = Warm{Hi: hi, Nu: nu}
		return nu
	}

	// Bracketed root search on [0, hi] down to one dyadic cell. Secant
	// steps give the fast convergence; interleaved midpoint bisection
	// guarantees geometric shrink on hard (flat or jumpy) totals. The
	// warm dual seeds the bracket when it lies inside.
	h := math.Ldexp(hi, -dualBits)
	a, va := 0.0, v0
	b, vb := hi, v
	if nu := warm.Nu; nu > 0 && nu < hi {
		if vn := sv.total(nu); vn < lambda {
			a, va = nu, vn
		} else {
			b, vb = nu, vn
		}
	}
	for i := 0; b-a > h && i < 256; i++ {
		mid := a + (b-a)/2
		if i%2 == 0 && vb > va {
			if s := a + (lambda-va)*(b-a)/(vb-va); s > a && s < b {
				mid = s
			}
		}
		if vm := sv.total(mid); vm < lambda {
			a, va = mid, vm
		} else {
			b, vb = mid, vm
		}
	}

	// Snap onto the canonical dyadic cell: the unique k with
	// total(k·h) < lambda <= total((k+1)·h). The crossing lies in [a, b],
	// so for a monotone total k is at most a step or two from floor(a/h);
	// the walks also absorb any float rounding in the division. Should a
	// total ever jitter non-monotonically at cell scale regardless (the
	// opaque family is already routed around this path), a small budget
	// stops the walk and falls back to the reference bisection, which
	// terminates unconditionally.
	k := int64(math.Floor(a / h))
	if k < 0 {
		k = 0
	}
	if k > dualCells-1 {
		k = dualCells - 1
	}
	moved := 0
	for k > 0 && moved < snapBudget && sv.total(float64(k)*h) >= lambda {
		k--
		moved++
	}
	for k+1 < dualCells && moved < snapBudget && sv.total(float64(k+1)*h) < lambda {
		k++
		moved++
	}
	var nu float64
	if moved >= snapBudget {
		nu = sv.dualBisect(hi, lambda)
	} else {
		lo := float64(k) * h
		nu = lo + (float64(k+1)*h-lo)/2
	}
	sv.warm = Warm{Hi: hi, Nu: nu}
	return nu
}

// snapBudget bounds the dyadic snap walk; monotone totals need at most a
// couple of steps, so exhausting it signals a noisy (opaque) total.
const snapBudget = 64

// dualBisect is the legacy midpoint bisection of [0, hi]: 47 halvings,
// then the final bracket's midpoint. It is the reference the fast path's
// answer is defined by, and the hint-free fallback when a noisy total
// defeats the snap.
func (sv *Solver) dualBisect(hi, lambda float64) float64 {
	a, b := 0.0, hi
	for i := 0; i < dualBits; i++ {
		mid := a + (b-a)/2
		if sv.total(mid) < lambda {
			a = mid
		} else {
			b = mid
		}
	}
	return a + (b-a)/2
}

// fillVolumes assigns exact volumes at the (approximately) optimal dual
// multiplier. Because Σ y_j(ν) can jump at ν* (ties between linear
// segments), it interpolates between the volumes just below and just above
// ν*; any point on that segment has identical marginal cost, so the
// interpolation preserves optimality while making Σ y_j = λ exact.
func (sv *Solver) fillVolumes(servers []Server, lambda, nuStar float64, y []float64) {
	active := sv.active
	delta := 1e-9 * (1 + math.Abs(nuStar))
	if cap(sv.lo) < len(active) {
		sv.lo = make([]float64, len(active))
		sv.hi = make([]float64, len(active))
	}
	lo, hi := sv.lo[:len(active)], sv.hi[:len(active)]
	var sumLo, sumHi float64
	for i := range active {
		lo[i] = sv.plans[i].volumeAt(nuStar - delta)
		hi[i] = sv.plans[i].volumeAt(nuStar + delta)
		sumLo += lo[i]
		sumHi += hi[i]
	}
	theta := 0.0
	if sumHi > sumLo {
		theta = numeric.Clamp((lambda-sumLo)/(sumHi-sumLo), 0, 1)
	}
	sum := 0.0
	for i, j := range active {
		y[j] = lo[i] + theta*(hi[i]-lo[i])
		sum += y[j]
	}
	// Remove the residual numerically, respecting capacities. The residual
	// is O(search tolerance), so the cost impact is negligible, but an
	// exact sum keeps downstream feasibility checks crisp.
	residual := lambda - sum
	for _, j := range active {
		if residual == 0 {
			break
		}
		cap := float64(servers[j].Active) * servers[j].Cap
		adj := numeric.Clamp(y[j]+residual, 0, cap) - y[j]
		y[j] += adj
		residual -= adj
	}
}
