// Package dispatch solves the intra-slot load-assignment problem of the
// right-sizing model: given the numbers of active servers per type, split
// the arriving job volume λ across the types so the total operating cost is
// minimal. This evaluates the paper's Equation (1),
//
//	g_t(x_1, …, x_d) = min_{z ∈ Z} Σ_j g_{t,j}(x_j, z_j),
//
// where Z is the probability simplex over the d types and
// g_{t,j}(x, z) = x·f_{t,j}(λ_t z / x). By Lemma 2 (Jensen), jobs assigned
// to a type are spread evenly over its active servers, which is what the
// x·f(λz/x) form encodes.
//
// Substituting y_j = λ z_j turns the problem into a separable convex
// program with one coupling constraint:
//
//	min Σ_j φ_j(y_j)   s.t.  Σ_j y_j = λ,  0 ≤ y_j ≤ x_j·zmax_j,
//	φ_j(y) = x_j · f_j(y / x_j).
//
// The solver performs water-filling on the dual: for a multiplier ν, each
// type's optimal volume y_j(ν) is the largest y with φ'_j(y) ≤ ν, clamped
// to its capacity; Σ_j y_j(ν) is non-decreasing in ν, so an outer bisection
// finds the ν* that meets the demand. Cost functions implementing
// costfn.Invertible give y_j(ν) in closed form; differentiable functions
// use derivative bisection; opaque functions fall back to golden-section
// search on the Lagrangian.
package dispatch

import (
	"math"

	"repro/internal/costfn"
	"repro/internal/numeric"
)

// Server describes one server type's state within a single time slot.
type Server struct {
	Active int         // number of active servers x_j (>= 0)
	Cap    float64     // per-server capacity zmax_j (> 0)
	F      costfn.Func // operating-cost function f_{t,j} for this slot
}

// Assignment is the result of an optimal load split.
type Assignment struct {
	// Cost is g_t(x): the minimal total operating cost. It is +Inf when
	// the active servers cannot absorb the demand (infeasible slot) and 0
	// only if every type is inactive and the demand is zero.
	Cost float64
	// Y[j] is the job volume routed to type j; Σ Y = λ for feasible calls.
	Y []float64
	// Z[j] is the fraction of λ routed to type j (Y[j]/λ); all zero when
	// λ = 0.
	Z []float64
}

// Assign computes the optimal split of job volume lambda across the server
// types. It never mutates its input. The semantics at the edges follow the
// paper's definition of g_{t,j}:
//   - lambda == 0: nothing to route; cost is the idle cost of all active
//     servers.
//   - lambda > 0 with zero total capacity: cost +Inf (x_j = 0 and
//     λ_t z_j > 0 is forbidden, and capacities bound the rest).
//
// Assign allocates its result; inside hot loops use Solver.Cost, which is
// allocation-free.
func Assign(servers []Server, lambda float64) Assignment {
	d := len(servers)
	res := Assignment{
		Y: make([]float64, d),
		Z: make([]float64, d),
	}
	var sv Solver
	res.Cost = sv.solve(servers, lambda, res.Y)
	if lambda > 0 {
		for j := range res.Z {
			res.Z[j] = res.Y[j] / lambda
		}
	}
	return res
}

// Solver evaluates optimal assignment costs while reusing internal scratch
// buffers across calls. The zero value is ready to use. A Solver is not
// safe for concurrent use; create one per goroutine.
type Solver struct {
	active []int
	lo, hi []float64
	y      []float64
}

// Cost returns g_t(x) — the minimal operating cost of routing volume
// lambda to the given active servers — without allocating.
func (sv *Solver) Cost(servers []Server, lambda float64) float64 {
	if cap(sv.y) < len(servers) {
		sv.y = make([]float64, len(servers))
	}
	return sv.solve(servers, lambda, sv.y[:len(servers)])
}

// solve computes the optimal cost and writes the per-type volumes into y
// (which must have len(servers) entries).
func (sv *Solver) solve(servers []Server, lambda float64, y []float64) float64 {
	if lambda < 0 {
		panic("dispatch: negative job volume")
	}
	for j := range y {
		y[j] = 0
	}

	idle := 0.0
	totalCap := 0.0
	for _, s := range servers {
		if s.Active < 0 {
			panic("dispatch: negative active-server count")
		}
		if s.Active > 0 {
			idle += float64(s.Active) * s.F.Value(0)
			totalCap += float64(s.Active) * s.Cap
		}
	}

	if lambda == 0 {
		return idle
	}
	if totalCap < lambda*(1-1e-12) {
		return math.Inf(1)
	}

	sv.active = sv.active[:0]
	for j, s := range servers {
		if s.Active > 0 && s.Cap > 0 {
			sv.active = append(sv.active, j)
		}
	}
	if len(sv.active) == 1 {
		j := sv.active[0]
		y[j] = math.Min(lambda, float64(servers[j].Active)*servers[j].Cap)
		return phi(servers[j], y[j])
	}

	nuStar := solveDual(servers, sv.active, lambda)
	sv.fillVolumes(servers, lambda, nuStar, y)

	// phi(s, y) is the complete cost (idle + load) of a type's active
	// servers, so summing over active types is the whole slot cost.
	cost := 0.0
	for _, j := range sv.active {
		cost += phi(servers[j], y[j])
	}
	return cost
}

// phi evaluates φ_j(y) = x_j f_j(y/x_j), the total cost of type j's active
// servers when routed volume y.
func phi(s Server, y float64) float64 {
	x := float64(s.Active)
	if y <= 0 {
		return x * s.F.Value(0)
	}
	return x * s.F.Value(y/x)
}

// volumeAt returns y_j(ν): the volume type j absorbs at dual multiplier ν.
// It is the minimiser of φ_j(y) − ν·y over [0, cap_j], which for convex φ
// is the largest y in the capacity interval with φ'_j(y) ≤ ν.
func volumeAt(s Server, nu float64) float64 {
	x := float64(s.Active)
	cap := x * s.Cap
	if inv, ok := costfn.AsInvertible(s.F); ok {
		z := inv.InvDeriv(nu) // φ'(y) = f'(y/x) ≤ ν  ⇔  y ≤ x·InvDeriv(ν)
		return numeric.Clamp(x*z, 0, cap)
	}
	if diff, ok := costfn.AsDifferentiable(s.F); ok {
		if diff.Deriv(0) >= nu {
			return 0
		}
		if diff.Deriv(s.Cap) <= nu {
			return cap
		}
		z := numeric.BisectIncreasing(diff.Deriv, nu, 0, s.Cap, 1e-13*s.Cap)
		return numeric.Clamp(x*z, 0, cap)
	}
	// Opaque function: golden-section on the per-type Lagrangian.
	y, _ := numeric.MinimizeConvex(func(y float64) float64 {
		return phi(s, y) - nu*y
	}, 0, cap, 1e-13*math.Max(cap, 1))
	return y
}

// solveDual bisects the dual multiplier ν so that total absorbed volume
// meets lambda.
func solveDual(servers []Server, active []int, lambda float64) float64 {
	total := func(nu float64) float64 {
		sum := 0.0
		for _, j := range active {
			sum += volumeAt(servers[j], nu)
		}
		return sum
	}
	// Grow an upper bound: capacities are finite, demand is feasible, and
	// every y_j(ν) reaches its cap once ν clears the largest relevant
	// marginal cost, so geometric growth terminates.
	hi := 1.0
	for i := 0; i < 200 && total(hi) < lambda; i++ {
		hi *= 2
	}
	return numeric.BisectIncreasing(total, lambda, 0, hi, 1e-14*math.Max(hi, 1))
}

// fillVolumes assigns exact volumes at the (approximately) optimal dual
// multiplier. Because Σ y_j(ν) can jump at ν* (ties between linear
// segments), it interpolates between the volumes just below and just above
// ν*; any point on that segment has identical marginal cost, so the
// interpolation preserves optimality while making Σ y_j = λ exact.
func (sv *Solver) fillVolumes(servers []Server, lambda, nuStar float64, y []float64) {
	active := sv.active
	delta := 1e-9 * (1 + math.Abs(nuStar))
	if cap(sv.lo) < len(active) {
		sv.lo = make([]float64, len(active))
		sv.hi = make([]float64, len(active))
	}
	lo, hi := sv.lo[:len(active)], sv.hi[:len(active)]
	var sumLo, sumHi float64
	for i, j := range active {
		lo[i] = volumeAt(servers[j], nuStar-delta)
		hi[i] = volumeAt(servers[j], nuStar+delta)
		sumLo += lo[i]
		sumHi += hi[i]
	}
	theta := 0.0
	if sumHi > sumLo {
		theta = numeric.Clamp((lambda-sumLo)/(sumHi-sumLo), 0, 1)
	}
	sum := 0.0
	for i, j := range active {
		y[j] = lo[i] + theta*(hi[i]-lo[i])
		sum += y[j]
	}
	// Remove the residual numerically, respecting capacities. The residual
	// is O(bisection tolerance), so the cost impact is negligible, but an
	// exact sum keeps downstream feasibility checks crisp.
	residual := lambda - sum
	for _, j := range active {
		if residual == 0 {
			break
		}
		cap := float64(servers[j].Active) * servers[j].Cap
		adj := numeric.Clamp(y[j]+residual, 0, cap) - y[j]
		y[j] += adj
		residual -= adj
	}
}
