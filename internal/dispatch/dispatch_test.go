package dispatch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/costfn"
)

// bruteForce grids the simplex with `steps` subdivisions per dimension and
// returns the best total cost found. It is exponential in d, so tests keep
// d <= 3. Used as the ground truth for the water-filling solver.
func bruteForce(servers []Server, lambda float64, steps int) float64 {
	d := len(servers)
	best := math.Inf(1)
	var rec func(j int, remaining float64, acc float64)
	rec = func(j int, remaining float64, acc float64) {
		if acc >= best {
			return
		}
		if j == d-1 {
			y := remaining
			cap := float64(servers[j].Active) * servers[j].Cap
			if y > cap*(1+1e-9) {
				return
			}
			if servers[j].Active == 0 && y > 1e-12 {
				return
			}
			total := acc + phi(servers[j], y)
			if total < best {
				best = total
			}
			return
		}
		cap := float64(servers[j].Active) * servers[j].Cap
		maxY := math.Min(remaining, cap)
		for i := 0; i <= steps; i++ {
			y := maxY * float64(i) / float64(steps)
			rec(j+1, remaining-y, acc+phi(servers[j], y))
		}
	}
	rec(0, lambda, 0)
	return best
}

func TestAssignZeroDemand(t *testing.T) {
	servers := []Server{
		{Active: 2, Cap: 1, F: costfn.Affine{Idle: 3, Rate: 1}},
		{Active: 1, Cap: 4, F: costfn.Affine{Idle: 5, Rate: 1}},
	}
	a := Assign(servers, 0)
	if a.Cost != 2*3+5 {
		t.Errorf("idle cost = %g, want 11", a.Cost)
	}
	for j, z := range a.Z {
		if z != 0 {
			t.Errorf("Z[%d] = %g, want 0", j, z)
		}
	}
}

func TestAssignInfeasible(t *testing.T) {
	servers := []Server{{Active: 1, Cap: 1, F: costfn.Constant{C: 1}}}
	if a := Assign(servers, 2); !math.IsInf(a.Cost, 1) {
		t.Errorf("cost = %g, want +Inf for demand above capacity", a.Cost)
	}
	if a := Assign(nil, 1); !math.IsInf(a.Cost, 1) {
		t.Errorf("cost = %g, want +Inf with no servers", a.Cost)
	}
	if a := Assign([]Server{{Active: 0, Cap: 1, F: costfn.Constant{C: 1}}}, 1); !math.IsInf(a.Cost, 1) {
		t.Errorf("cost = %g, want +Inf with no active servers", a.Cost)
	}
}

func TestAssignSingleType(t *testing.T) {
	servers := []Server{{Active: 4, Cap: 1, F: costfn.Power{Idle: 1, Coef: 1, Exp: 2}}}
	a := Assign(servers, 2)
	// 4 servers, volume 2: each runs at load 0.5 → cost 4·(1 + 0.25) = 5.
	if math.Abs(a.Cost-5) > 1e-9 {
		t.Errorf("cost = %g, want 5", a.Cost)
	}
	if math.Abs(a.Y[0]-2) > 1e-12 || math.Abs(a.Z[0]-1) > 1e-12 {
		t.Errorf("Y=%v Z=%v, want full volume on the only type", a.Y, a.Z)
	}
}

func TestAssignTwoAffineFillsCheaperFirst(t *testing.T) {
	// Type 0 marginal 1, type 1 marginal 5: all load goes to type 0 until
	// its capacity binds.
	servers := []Server{
		{Active: 2, Cap: 1, F: costfn.Affine{Idle: 1, Rate: 1}},
		{Active: 3, Cap: 1, F: costfn.Affine{Idle: 1, Rate: 5}},
	}
	a := Assign(servers, 1.5)
	if math.Abs(a.Y[0]-1.5) > 1e-9 || math.Abs(a.Y[1]) > 1e-9 {
		t.Errorf("Y = %v, want [1.5 0]", a.Y)
	}
	// Cost: idle 2·1 + 3·1 = 5; load 1.5·1 = 1.5.
	if math.Abs(a.Cost-6.5) > 1e-9 {
		t.Errorf("cost = %g, want 6.5", a.Cost)
	}

	// Demand beyond type 0's capacity spills to type 1.
	a = Assign(servers, 3)
	if math.Abs(a.Y[0]-2) > 1e-9 || math.Abs(a.Y[1]-1) > 1e-9 {
		t.Errorf("Y = %v, want [2 1]", a.Y)
	}
	if math.Abs(a.Cost-(5+2*1+1*5)) > 1e-9 {
		t.Errorf("cost = %g, want 12", a.Cost)
	}
}

func TestAssignIdenticalQuadraticsSplitEvenly(t *testing.T) {
	f := costfn.Power{Idle: 0, Coef: 1, Exp: 2}
	servers := []Server{
		{Active: 1, Cap: 10, F: f},
		{Active: 1, Cap: 10, F: f},
	}
	a := Assign(servers, 4)
	if math.Abs(a.Y[0]-2) > 1e-6 || math.Abs(a.Y[1]-2) > 1e-6 {
		t.Errorf("Y = %v, want even [2 2]", a.Y)
	}
	if math.Abs(a.Cost-8) > 1e-6 {
		t.Errorf("cost = %g, want 8", a.Cost)
	}
}

func TestAssignQuadraticServerCountWeighting(t *testing.T) {
	// Same quadratic type, but 3 vs 1 active servers: marginal cost of a
	// type with x servers at volume y is f'(y/x) = 2y/x, so the optimum
	// equalises y/x → volumes split 3:1.
	f := costfn.Power{Idle: 1, Coef: 2, Exp: 2}
	servers := []Server{
		{Active: 3, Cap: 10, F: f},
		{Active: 1, Cap: 10, F: f},
	}
	a := Assign(servers, 8)
	if math.Abs(a.Y[0]-6) > 1e-6 || math.Abs(a.Y[1]-2) > 1e-6 {
		t.Errorf("Y = %v, want [6 2]", a.Y)
	}
}

func TestAssignMatchesBruteForceMixedFamilies(t *testing.T) {
	servers := []Server{
		{Active: 2, Cap: 1, F: costfn.Affine{Idle: 1, Rate: 2}},
		{Active: 1, Cap: 4, F: costfn.Power{Idle: 2, Coef: 0.5, Exp: 2}},
		{Active: 3, Cap: 0.5, F: costfn.MustPiecewiseLinear(
			[]float64{0, 0.25, 0.5}, []float64{0.5, 0.8, 1.6})},
	}
	for _, lambda := range []float64{0.3, 1, 2.5, 4, 6} {
		got := Assign(servers, lambda)
		want := bruteForce(servers, lambda, 400)
		if !almostLE(got.Cost, want, 1e-3) {
			t.Errorf("λ=%g: water-filling %g worse than brute force %g", lambda, got.Cost, want)
		}
		sum := 0.0
		for _, y := range got.Y {
			sum += y
		}
		if math.Abs(sum-lambda) > 1e-6 {
			t.Errorf("λ=%g: volumes sum to %g", lambda, sum)
		}
	}
}

func almostLE(a, b, tol float64) bool {
	return a <= b+tol*(1+math.Abs(b))
}

func TestAssignOpaqueFunctionFallback(t *testing.T) {
	// Exponential cost is convex increasing but implements neither
	// Differentiable nor Invertible; exercises the golden-section path.
	servers := []Server{
		{Active: 1, Cap: 5, F: expCost{}},
		{Active: 1, Cap: 5, F: costfn.Affine{Idle: 0, Rate: 3}},
	}
	got := Assign(servers, 3)
	want := bruteForce(servers, 3, 3000)
	if math.Abs(got.Cost-want) > 1e-3*(1+want) {
		t.Errorf("cost = %g, brute force %g", got.Cost, want)
	}
}

type expCost struct{}

func (expCost) Value(z float64) float64 { return math.Exp(z) - 1 }

func TestAssignPanicsOnBadInput(t *testing.T) {
	for _, tc := range []struct {
		name    string
		servers []Server
		lambda  float64
	}{
		{"negative lambda", []Server{{Active: 1, Cap: 1, F: costfn.Constant{}}}, -1},
		{"negative count", []Server{{Active: -1, Cap: 1, F: costfn.Constant{}}}, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			Assign(tc.servers, tc.lambda)
		}()
	}
}

func TestAssignCapacityExactlyMet(t *testing.T) {
	servers := []Server{
		{Active: 2, Cap: 1, F: costfn.Affine{Idle: 1, Rate: 1}},
		{Active: 1, Cap: 2, F: costfn.Affine{Idle: 1, Rate: 2}},
	}
	a := Assign(servers, 4) // exactly total capacity
	if math.IsInf(a.Cost, 1) {
		t.Fatal("demand equal to capacity must be feasible")
	}
	if math.Abs(a.Y[0]-2) > 1e-6 || math.Abs(a.Y[1]-2) > 1e-6 {
		t.Errorf("Y = %v, want both types saturated", a.Y)
	}
}

// Property: for random instances (d ≤ 3, mixed cost families), the
// water-filling cost is within tolerance of brute force, volumes respect
// capacities and sum to λ.
func TestAssignOptimalityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		servers := make([]Server, d)
		totalCap := 0.0
		for j := range servers {
			active := rng.Intn(4)
			cap := 0.5 + rng.Float64()*2
			var f costfn.Func
			switch rng.Intn(4) {
			case 0:
				f = costfn.Constant{C: rng.Float64() * 3}
			case 1:
				f = costfn.Affine{Idle: rng.Float64(), Rate: rng.Float64() * 4}
			case 2:
				f = costfn.Power{Idle: rng.Float64(), Coef: rng.Float64()*3 + 0.1, Exp: 1 + rng.Float64()*2}
			default:
				f = costfn.MustPiecewiseLinear(
					[]float64{0, cap / 2, cap},
					[]float64{0.1, 0.1 + rng.Float64(), 0.1 + rng.Float64() + 2},
				)
			}
			servers[j] = Server{Active: active, Cap: cap, F: f}
			totalCap += float64(active) * cap
		}
		lambda := rng.Float64() * totalCap
		got := Assign(servers, lambda)
		if lambda == 0 {
			return !math.IsInf(got.Cost, 1)
		}
		if totalCap == 0 {
			return math.IsInf(got.Cost, 1)
		}
		want := bruteForce(servers, lambda, 120)
		if !almostLE(got.Cost, want, 5e-2) {
			return false
		}
		sum := 0.0
		for j, y := range got.Y {
			if y < -1e-12 || y > float64(servers[j].Active)*servers[j].Cap*(1+1e-9)+1e-12 {
				return false
			}
			sum += y
		}
		return math.Abs(sum-lambda) < 1e-6*(1+lambda)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property (Lemma 2 direction): the reported cost never exceeds the cost of
// any random feasible assignment.
func TestAssignNeverWorseThanRandomSplit(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		servers := []Server{
			{Active: 1 + rng.Intn(3), Cap: 1 + rng.Float64(), F: costfn.Power{Idle: rng.Float64(), Coef: 1, Exp: 2}},
			{Active: 1 + rng.Intn(3), Cap: 1 + rng.Float64(), F: costfn.Affine{Idle: rng.Float64(), Rate: rng.Float64() * 2}},
		}
		cap0 := float64(servers[0].Active) * servers[0].Cap
		cap1 := float64(servers[1].Active) * servers[1].Cap
		lambda := rng.Float64() * (cap0 + cap1)
		opt := Assign(servers, lambda)
		// Random feasible split.
		y0 := math.Min(rng.Float64()*lambda, cap0)
		y1 := lambda - y0
		if y1 > cap1 {
			y1 = cap1
			y0 = lambda - y1
			if y0 > cap0 {
				return true // numerically tight instance; skip
			}
		}
		manual := phi(servers[0], y0) + phi(servers[1], y1)
		return opt.Cost <= manual+1e-6*(1+manual)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAssignInvertibleD2(b *testing.B) {
	servers := []Server{
		{Active: 8, Cap: 1, F: costfn.Power{Idle: 1, Coef: 1, Exp: 2}},
		{Active: 4, Cap: 4, F: costfn.Affine{Idle: 2, Rate: 0.5}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assign(servers, 7.3)
	}
}

func BenchmarkAssignInvertibleD4(b *testing.B) {
	servers := []Server{
		{Active: 8, Cap: 1, F: costfn.Power{Idle: 1, Coef: 1, Exp: 2}},
		{Active: 4, Cap: 4, F: costfn.Affine{Idle: 2, Rate: 0.5}},
		{Active: 2, Cap: 2, F: costfn.Power{Idle: 0.5, Coef: 2, Exp: 3}},
		{Active: 6, Cap: 1, F: costfn.Constant{C: 1}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assign(servers, 11.1)
	}
}

func BenchmarkAssignOpaque(b *testing.B) {
	servers := []Server{
		{Active: 2, Cap: 5, F: expCost{}},
		{Active: 2, Cap: 5, F: expCost{}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assign(servers, 6)
	}
}
