package dispatch

import (
	"math"
	"testing"

	"repro/internal/costfn"
)

// FuzzAssign stresses the water-filling solver with arbitrary parameters:
// it must never panic on well-formed input, and feasible results must
// route exactly the demanded volume within capacity.
func FuzzAssign(f *testing.F) {
	f.Add(2, 1.0, 1.0, 2.0, 4, 3.0, 0.5, 2.0, 3.5)
	f.Add(1, 0.5, 0.0, 1.0, 0, 1.0, 1.0, 1.0, 0.0)
	f.Add(3, 2.0, 0.1, 3.0, 2, 0.7, 2.0, 1.5, 5.0)
	f.Fuzz(func(t *testing.T, x0 int, cap0, idle0, rate0 float64,
		x1 int, cap1, coef1, exp1, lambda float64) {
		// Sanitise into the solver's documented domain.
		if x0 < 0 {
			x0 = -x0
		}
		if x1 < 0 {
			x1 = -x1
		}
		x0 %= 16
		x1 %= 16
		cap0 = sanitize(cap0, 0.1, 8)
		cap1 = sanitize(cap1, 0.1, 8)
		idle0 = sanitize(idle0, 0, 10)
		rate0 = sanitize(rate0, 0, 10)
		coef1 = sanitize(coef1, 0, 10)
		exp1 = sanitize(exp1, 1, 4)
		lambda = sanitize(lambda, 0, 50)

		servers := []Server{
			{Active: x0, Cap: cap0, F: costfn.Affine{Idle: idle0, Rate: rate0}},
			{Active: x1, Cap: cap1, F: costfn.Power{Idle: 0.1, Coef: coef1, Exp: exp1}},
		}
		a := Assign(servers, lambda)

		totalCap := float64(x0)*cap0 + float64(x1)*cap1
		if lambda > totalCap*(1+1e-9) {
			if !math.IsInf(a.Cost, 1) {
				t.Fatalf("demand %g above capacity %g must be infeasible, got cost %g",
					lambda, totalCap, a.Cost)
			}
			return
		}
		if math.IsInf(a.Cost, 1) {
			// Borderline capacity; acceptable only within tolerance.
			if lambda < totalCap*(1-1e-6) {
				t.Fatalf("feasible demand %g (cap %g) reported infeasible", lambda, totalCap)
			}
			return
		}
		if a.Cost < 0 || math.IsNaN(a.Cost) {
			t.Fatalf("invalid cost %g", a.Cost)
		}
		sum := 0.0
		for j, y := range a.Y {
			if y < -1e-9 {
				t.Fatalf("negative volume %g", y)
			}
			capJ := float64(servers[j].Active) * servers[j].Cap
			if y > capJ*(1+1e-6)+1e-9 {
				t.Fatalf("type %d volume %g exceeds capacity %g", j, y, capJ)
			}
			sum += y
		}
		if lambda > 0 && math.Abs(sum-lambda) > 1e-6*(1+lambda) {
			t.Fatalf("volumes sum to %g, want %g", sum, lambda)
		}
	})
}

func sanitize(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	if v < 0 {
		v = -v
	}
	return lo + math.Mod(v, hi-lo)
}
