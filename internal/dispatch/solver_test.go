package dispatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costfn"
)

func TestSolverMatchesAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sv Solver
	for i := 0; i < 300; i++ {
		d := 1 + rng.Intn(4)
		servers := make([]Server, d)
		totalCap := 0.0
		for j := range servers {
			servers[j] = Server{
				Active: rng.Intn(5),
				Cap:    0.5 + rng.Float64()*3,
				F:      costfn.Power{Idle: rng.Float64(), Coef: rng.Float64() * 2, Exp: 1 + rng.Float64()*2},
			}
			totalCap += float64(servers[j].Active) * servers[j].Cap
		}
		lambda := rng.Float64() * totalCap * 1.1 // sometimes infeasible
		want := Assign(servers, lambda).Cost
		got := sv.Cost(servers, lambda)
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			t.Fatalf("case %d: feasibility mismatch: Assign %v, Solver %v", i, want, got)
		}
		if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("case %d: Solver %g != Assign %g", i, got, want)
		}
	}
}

func TestSolverCostDoesNotAllocate(t *testing.T) {
	servers := []Server{
		{Active: 3, Cap: 1, F: costfn.Power{Idle: 1, Coef: 1, Exp: 2}},
		{Active: 2, Cap: 2, F: costfn.Affine{Idle: 1, Rate: 0.3}},
	}
	var sv Solver
	sv.Cost(servers, 3) // warm up scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		sv.Cost(servers, 3)
	})
	if allocs != 0 {
		t.Errorf("Solver.Cost allocates %v times per call, want 0", allocs)
	}
}

func BenchmarkSolverCost(b *testing.B) {
	servers := []Server{
		{Active: 8, Cap: 1, F: costfn.Power{Idle: 1, Coef: 1, Exp: 2}},
		{Active: 4, Cap: 4, F: costfn.Affine{Idle: 2, Rate: 0.5}},
	}
	var sv Solver
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sv.Cost(servers, 7.3)
	}
}
