package dispatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costfn"
)

// diffOnly hides a Power function's InvDeriv so the solver exercises the
// derivative-bisection path (Differentiable but not Invertible).
type diffOnly struct{ p costfn.Power }

func (d diffOnly) Value(z float64) float64 { return d.p.Value(z) }
func (d diffOnly) Deriv(z float64) float64 { return d.p.Deriv(z) }

// opaqueOnly hides everything but Value, forcing the golden-section
// Lagrangian fallback. Its totals are noisy, so the solver must ignore
// warm hints entirely for these solves — which this test suite checks by
// demanding bit-equality all the same.
type opaqueOnly struct{ p costfn.Power }

func (o opaqueOnly) Value(z float64) float64 { return o.p.Value(z) }

// randomFunc draws a cost function; all families must satisfy the
// bit-for-bit warm-start guarantee (monotone families via the canonical
// snap, opaque ones via the hint-free reference bisection).
func randomFunc(rng *rand.Rand) costfn.Func {
	switch rng.Intn(7) {
	case 0:
		return costfn.Constant{C: 5 * rng.Float64()}
	case 1:
		return costfn.Affine{Idle: 3 * rng.Float64(), Rate: 4 * rng.Float64()}
	case 2:
		return costfn.Power{Idle: rng.Float64(), Coef: 0.2 + 2*rng.Float64(), Exp: 1 + 2.5*rng.Float64()}
	case 3:
		return costfn.Exponential{Idle: rng.Float64(), Amp: 0.2 + rng.Float64(), Rate: 0.3 + rng.Float64()}
	case 4:
		return costfn.Scaled{
			F:      costfn.Power{Idle: rng.Float64(), Coef: 0.5 + rng.Float64(), Exp: 2},
			Factor: 0.3 + 2*rng.Float64(),
		}
	case 5:
		return opaqueOnly{p: costfn.Power{Idle: rng.Float64(), Coef: 0.3 + rng.Float64(), Exp: 1.5 + rng.Float64()}}
	default:
		return diffOnly{p: costfn.Power{Idle: rng.Float64(), Coef: 0.3 + rng.Float64(), Exp: 1.5 + rng.Float64()}}
	}
}

// The tentpole's central contract: a Solver that warm-starts every solve
// from the previous one returns bit-for-bit the same costs and volumes as
// a cold Solver created per call, across random fleets, lattice-line
// walks and demand sweeps.
func TestWarmStartMatchesColdBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		d := 1 + rng.Intn(4)
		servers := make([]Server, d)
		for j := range servers {
			servers[j] = Server{
				Active: rng.Intn(8),
				Cap:    0.25 + 4*rng.Float64(),
				F:      randomFunc(rng),
			}
		}
		var warmSolver Solver
		var warmAssign, coldAssign Assignment
		lambda := 0.0
		for step := 0; step < 40; step++ {
			// Mutate like a DP sweep: mostly walk one type's count up or
			// down a lattice line, sometimes jump the demand.
			switch rng.Intn(4) {
			case 0:
				lambda = rng.Float64() * 12
			default:
				j := rng.Intn(d)
				servers[j].Active += rng.Intn(3) - 1
				if servers[j].Active < 0 {
					servers[j].Active = 0
				}
			}
			var coldSolver Solver
			cw := warmSolver.Cost(servers, lambda)
			cc := coldSolver.Cost(servers, lambda)
			if math.Float64bits(cw) != math.Float64bits(cc) {
				t.Fatalf("trial %d step %d: warm cost %v != cold cost %v (λ=%g, servers=%+v, warm=%+v)",
					trial, step, cw, cc, lambda, servers, warmSolver.Warm())
			}
			warmSolver.AssignInto(servers, lambda, &warmAssign)
			var freshSolver Solver
			freshSolver.AssignInto(servers, lambda, &coldAssign)
			for j := range warmAssign.Y {
				if math.Float64bits(warmAssign.Y[j]) != math.Float64bits(coldAssign.Y[j]) {
					t.Fatalf("trial %d step %d: warm volume Y[%d]=%v != cold %v",
						trial, step, j, warmAssign.Y[j], coldAssign.Y[j])
				}
			}
		}
	}
}

// Seeding a solver with an arbitrary (even absurd) warm hint must not
// change results either — hints steer the search, never the answer.
func TestSetWarmHintIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	servers := []Server{
		{Active: 5, Cap: 1.5, F: costfn.Power{Idle: 1, Coef: 0.6, Exp: 2}},
		{Active: 3, Cap: 4, F: costfn.Affine{Idle: 2, Rate: 0.4}},
		{Active: 2, Cap: 2, F: costfn.Exponential{Idle: 0.5, Amp: 0.7, Rate: 0.8}},
	}
	for i := 0; i < 200; i++ {
		lambda := rng.Float64() * 18
		var cold Solver
		want := cold.Cost(servers, lambda)
		var hinted Solver
		hinted.SetWarm(Warm{Hi: math.Ldexp(1, rng.Intn(20)), Nu: rng.Float64() * 1000})
		if got := hinted.Cost(servers, lambda); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("hinted cost %v != cold %v (λ=%g)", got, want, lambda)
		}
		hinted.ResetWarm()
		if w := hinted.Warm(); w != (Warm{}) {
			t.Fatalf("ResetWarm left %+v", w)
		}
	}
}

// AssignInto must agree with Assign and reuse its buffers.
func TestAssignIntoReusesBuffers(t *testing.T) {
	servers := []Server{
		{Active: 3, Cap: 1, F: costfn.Affine{Idle: 1, Rate: 1}},
		{Active: 2, Cap: 2, F: costfn.Power{Idle: 0.5, Coef: 0.3, Exp: 2}},
	}
	var sv Solver
	var res Assignment
	sv.AssignInto(servers, 3.5, &res)
	want := Assign(servers, 3.5)
	if math.Float64bits(res.Cost) != math.Float64bits(want.Cost) {
		t.Fatalf("AssignInto cost %v != Assign %v", res.Cost, want.Cost)
	}
	y0, z0 := &res.Y[0], &res.Z[0]
	sv.AssignInto(servers, 4.25, &res)
	if &res.Y[0] != y0 || &res.Z[0] != z0 {
		t.Error("AssignInto reallocated its buffers on the second call")
	}
	if allocs := testing.AllocsPerRun(50, func() {
		sv.AssignInto(servers, 4.25, &res)
	}); allocs != 0 {
		t.Errorf("AssignInto allocates %v/op, want 0", allocs)
	}
}

// FuzzWarmCold fuzzes the bit-for-bit contract over arbitrary parameter
// soup across every cost-function family, opaque ones included.
func FuzzWarmCold(f *testing.F) {
	f.Add(int64(1), 3.0, 7.0)
	f.Add(int64(99), 0.0, 0.5)
	f.Add(int64(7), 12.0, 11.5)
	f.Fuzz(func(t *testing.T, seed int64, l1, l2 float64) {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		servers := make([]Server, d)
		for j := range servers {
			servers[j] = Server{Active: rng.Intn(6), Cap: 0.2 + 3*rng.Float64(), F: randomFunc(rng)}
		}
		var warm Solver
		for _, lambda := range []float64{l1, l2, l1} {
			lambda = sanitize(lambda, 0, 40)
			var cold Solver
			cw := warm.Cost(servers, lambda)
			cc := cold.Cost(servers, lambda)
			if math.Float64bits(cw) != math.Float64bits(cc) {
				t.Fatalf("warm %v != cold %v (λ=%g, servers=%+v)", cw, cc, lambda, servers)
			}
		}
	})
}
