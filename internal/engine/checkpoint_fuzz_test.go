package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/stream"
)

// FuzzCheckpointResume hardens the resume path the serving layer depends
// on: arbitrary JSON decoded as a stream.Checkpoint and replayed through
// the registry must never panic — malformed algs, impossible demands and
// mismatched counts all surface as errors — and any checkpoint that does
// resume must round-trip: re-checkpointing the resumed session and
// resuming again reproduces the identical session state.
//
// The seed corpus lives under testdata/fuzz/FuzzCheckpointResume.
func FuzzCheckpointResume(f *testing.F) {
	f.Add([]byte(`{"alg":"alg-a","slots":[{"lambda":1},{"lambda":4.5},{"lambda":2}]}`))
	f.Add([]byte(`{"alg":"receding-horizon","slots":[{"lambda":3},{"lambda":0}]}`))
	f.Add([]byte(`{"alg":"alg-b","slots":[{"lambda":2,"counts":[4,1]},{"lambda":1,"counts":[2,0]}]}`))
	f.Add([]byte(`{"alg":"lcp","slots":[{"lambda":1}]}`))
	f.Add([]byte(`{"slots":[{"lambda":1}]}`))
	f.Add([]byte(`not json`))

	sc, ok := Lookup("quickstart")
	if !ok {
		f.Fatal("quickstart scenario missing")
	}
	types := sc.Instance(1).Types

	f.Fuzz(func(t *testing.T, data []byte) {
		var cp stream.Checkpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			return
		}
		// Bound the replay so the fuzzer explores shapes, not scale: huge
		// logs and astronomically sized fleets are legitimate inputs but
		// make single iterations arbitrarily slow.
		if len(cp.Slots) > 24 {
			return
		}
		for _, rec := range cp.Slots {
			if rec.Lambda > 1e6 {
				return
			}
			total := 0
			for _, c := range rec.Counts {
				if c > 64 || c < 0 {
					return
				}
				total += c
			}
			if total > 128 {
				return
			}
		}

		sess, err := ResumeSession(&cp, types, stream.Options{})
		if err != nil {
			return // invalid checkpoints must error, not panic
		}

		// Round-trip: the resumed session's own checkpoint must resume
		// bit-identically (same replay depth, same cost, same decisions).
		cp2 := sess.Checkpoint()
		if len(cp2.Slots) != len(cp.Slots) {
			t.Fatalf("resumed session logs %d slots, fed %d", len(cp2.Slots), len(cp.Slots))
		}
		again, err := ResumeSession(cp2, types, stream.Options{})
		if err != nil {
			t.Fatalf("round-tripped checkpoint failed to resume: %v", err)
		}
		if again.Fed() != sess.Fed() || again.Decided() != sess.Decided() {
			t.Fatalf("round trip changed progress: fed %d/%d decided %d/%d",
				again.Fed(), sess.Fed(), again.Decided(), sess.Decided())
		}
		if again.CumCost() != sess.CumCost() {
			t.Fatalf("round trip changed cum cost: %v != %v", again.CumCost(), sess.CumCost())
		}
	})
}
