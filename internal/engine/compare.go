package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/solver"
)

// Comparison accumulates metrics for several algorithms on one instance,
// with the exact optimum computed once as the shared yardstick. It is the
// incremental counterpart of Evaluate for callers that add algorithms one
// at a time; not safe for concurrent use.
type Comparison struct {
	Ins *model.Instance
	Opt float64
	Row []Metrics

	ev *model.Evaluator
}

// NewComparison solves the instance optimally and seeds the comparison
// with the OPT row.
func NewComparison(ins *model.Instance) (*Comparison, error) {
	res, err := solver.SolveOptimal(ins)
	if err != nil {
		return nil, err
	}
	c := &Comparison{Ins: ins, Opt: res.Cost(), ev: model.NewEvaluator(ins)}
	c.Row = append(c.Row, MeasureWith(c.ev, res.Schedule, "OPT", c.Opt))
	return c, nil
}

// RunOnline drives an online algorithm to completion and records it.
// The schedule is validated for feasibility; an infeasible schedule is a
// bug in the algorithm and panics.
func (c *Comparison) RunOnline(alg core.Online) Metrics {
	sched := core.Run(alg, c.Ins)
	if err := c.Ins.Feasible(sched); err != nil {
		panic(fmt.Sprintf("engine: %s produced an infeasible schedule: %v", alg.Name(), err))
	}
	return c.Add(alg.Name(), sched)
}

// RunSpec runs an AlgSpec and records it; a skipped spec returns
// (Metrics{}, false, nil).
func (c *Comparison) RunSpec(spec AlgSpec) (Metrics, bool, error) {
	if spec.Skip != nil {
		if reason := spec.Skip(c.Ins); reason != "" {
			return Metrics{}, false, nil
		}
	}
	sched, err := spec.Run(c.Ins)
	if err != nil {
		return Metrics{}, false, err
	}
	if err := c.Ins.Feasible(sched); err != nil {
		return Metrics{}, false, fmt.Errorf("engine: %s produced an infeasible schedule: %v", spec.Name, err)
	}
	return c.Add(spec.Name, sched), true, nil
}

// Add records a pre-computed schedule under the given name.
func (c *Comparison) Add(name string, sched model.Schedule) Metrics {
	m := MeasureWith(c.ev, sched, name, c.Opt)
	c.Row = append(c.Row, m)
	return m
}

// Table renders the comparison as an aligned text table.
func (c *Comparison) Table() *Table {
	return metricsTable(c.Row)
}

// metricsTable renders metric rows in the standard column layout shared
// by Comparison and the text sink.
func metricsTable(rows []Metrics) *Table {
	t := NewTable("algorithm", "total", "operating", "switching", "power-ups", "peak", "ratio")
	for _, m := range rows {
		t.Add(m.Name, FmtF(m.Total), FmtF(m.Operating), FmtF(m.Switching),
			fmt.Sprintf("%d", m.PowerUps), fmt.Sprintf("%d", m.PeakActive), FmtRatio(m.Ratio))
	}
	return t
}
