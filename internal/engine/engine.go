// Package engine is the unified scenario engine: one run→measure→report
// pipeline shared by the offline solvers, the online algorithms, the
// baselines, the experiment study and every command-line tool.
//
// The pieces compose bottom-up:
//
//   - AlgSpec names an algorithm and knows how to produce its schedule for
//     an instance (online algorithms via core.Online, offline solvers via
//     their Result), plus an applicability gate (Algorithm A needs
//     time-independent costs, LCP needs d = 1, ...).
//   - Measure turns a schedule into Metrics: cost decomposition, switching
//     activity and the competitive ratio against the exact optimum.
//   - Scenario bundles a named deterministic instance generator with the
//     algorithms to run on it; a registry of stock scenarios (diurnal,
//     bursty, on/off, random walk, heterogeneous fleets, maintenance
//     windows, price-modulated costs) makes new workloads one struct
//     literal instead of a new main.go.
//   - RunSuite fans scenarios out over a bounded worker pool with the
//     determinism discipline of solver/parallel.go: static partition,
//     per-unit model.Evaluators, bit-identical results for any worker
//     count. Each instance's optimum is solved exactly once per run.
//   - Sinks render one result stream as text tables, JSON, CSV or
//     markdown for cmd/rightsize, cmd/experiments, benchmarks and
//     dashboards alike.
package engine

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/solver"
)

// Metrics summarises one algorithm's behaviour on one instance. The JSON
// field names are part of the suite-result format consumed by the JSON
// sink and must stay stable.
type Metrics struct {
	Name       string  `json:"name"`
	Operating  float64 `json:"operating"` // Σ_t g_t(x_t)
	Switching  float64 `json:"switching"` // Σ_t Σ_j β_j (Δ_j)^+
	Total      float64 `json:"total"`     // Operating + Switching
	PowerUps   int     `json:"power_ups"` // individual server power-up operations
	PeakActive int     `json:"peak"`      // max over slots of Σ_j x_{t,j}
	MeanActive float64 `json:"mean"`      // mean over slots of Σ_j x_{t,j}
	Ratio      float64 `json:"ratio"`     // Total / OPT; 0 when OPT is unknown
}

// Measure evaluates a schedule. opt > 0 enables the Ratio field. It
// allocates a fresh evaluator; hot paths with an evaluator at hand should
// call MeasureWith.
func Measure(ins *model.Instance, sched model.Schedule, name string, opt float64) Metrics {
	return MeasureWith(model.NewEvaluator(ins), sched, name, opt)
}

// MeasureWith is Measure with a caller-provided evaluator (evaluators
// carry scratch buffers and are not safe for concurrent use; the suite
// runner keeps one per work unit).
func MeasureWith(ev *model.Evaluator, sched model.Schedule, name string, opt float64) Metrics {
	ins := ev.Instance()
	br := ev.Cost(sched)
	m := Metrics{
		Name:      name,
		Operating: br.Operating,
		Switching: br.Switching,
		Total:     br.Total(),
	}
	prev := make(model.Config, ins.D())
	sumActive := 0
	for _, x := range sched {
		total := x.Total()
		sumActive += total
		if total > m.PeakActive {
			m.PeakActive = total
		}
		for j := range x {
			if up := x[j] - prev[j]; up > 0 {
				m.PowerUps += up
			}
		}
		prev = x
	}
	if len(sched) > 0 {
		m.MeanActive = float64(sumActive) / float64(len(sched))
	}
	if opt > 0 {
		m.Ratio = m.Total / opt
	}
	return m
}

// RatioAgainstOpt runs an online algorithm to completion and returns its
// cost divided by the exact optimal cost. The optimum is computed with the
// memory-light solver since no optimal schedule is needed.
func RatioAgainstOpt(ins *model.Instance, alg core.Online) (float64, error) {
	sched := core.Run(alg)
	if err := ins.Feasible(sched); err != nil {
		return 0, fmt.Errorf("engine: %s produced an infeasible schedule: %v", alg.Name(), err)
	}
	cost := model.NewEvaluator(ins).Cost(sched).Total()
	opt, err := solver.OptimalCost(ins)
	if err != nil {
		return 0, err
	}
	return cost / opt, nil
}

// AlgSpec describes one algorithm of a scenario: a display name, a
// schedule producer and an optional applicability gate.
type AlgSpec struct {
	// Name identifies the algorithm in results; it must be unique within
	// a scenario.
	Name string
	// Run computes the algorithm's schedule for the instance. The engine
	// validates feasibility of whatever it returns.
	Run func(ins *model.Instance) (model.Schedule, error)
	// Skip, when non-nil, reports why the spec does not apply to the
	// instance ("" means it applies). Skipped algorithms are recorded in
	// the result rather than failing the scenario.
	Skip func(ins *model.Instance) string
}

// OnlineSpec wraps a core.Online constructor as an AlgSpec.
func OnlineSpec(name string, mk func(*model.Instance) (core.Online, error)) AlgSpec {
	return AlgSpec{
		Name: name,
		Run: func(ins *model.Instance) (model.Schedule, error) {
			alg, err := mk(ins)
			if err != nil {
				return nil, err
			}
			return core.Run(alg), nil
		},
	}
}

// SpecAlgorithmA is the paper's Algorithm A (Section 2); it applies only
// to time-independent operating costs.
func SpecAlgorithmA() AlgSpec {
	s := OnlineSpec("AlgorithmA", func(ins *model.Instance) (core.Online, error) {
		return core.NewAlgorithmA(ins)
	})
	s.Skip = func(ins *model.Instance) string {
		if !ins.TimeIndependent() {
			return "requires time-independent operating costs"
		}
		return ""
	}
	return s
}

// SpecAlgorithmB is the paper's Algorithm B (Section 3.1).
func SpecAlgorithmB() AlgSpec {
	return OnlineSpec("AlgorithmB", func(ins *model.Instance) (core.Online, error) {
		return core.NewAlgorithmB(ins)
	})
}

// SpecAlgorithmC is the paper's Algorithm C (Section 3.2) with accuracy ε.
func SpecAlgorithmC(eps float64) AlgSpec {
	s := OnlineSpec(fmt.Sprintf("AlgorithmC(ε=%g)", eps), func(ins *model.Instance) (core.Online, error) {
		return core.NewAlgorithmC(ins, eps)
	})
	s.Skip = func(ins *model.Instance) string {
		if eps <= 0 {
			return "requires ε > 0"
		}
		for _, ty := range ins.Types {
			if ty.SwitchCost <= 0 {
				return "requires β_j > 0 for every type"
			}
		}
		return ""
	}
	return s
}

// SpecApprox is the offline (1+ε)-approximation (Section 4.2) run as a
// hindsight policy.
func SpecApprox(eps float64) AlgSpec {
	return AlgSpec{
		Name: fmt.Sprintf("Approx(ε=%g)", eps),
		Run: func(ins *model.Instance) (model.Schedule, error) {
			res, err := solver.SolveApprox(ins, eps)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		},
	}
}

// SpecAllOn keeps the whole fleet powered (static provisioning).
func SpecAllOn() AlgSpec {
	return OnlineSpec("AllOn", func(ins *model.Instance) (core.Online, error) {
		return baseline.NewAllOn(ins)
	})
}

// SpecLoadTracking follows the per-slot operating-cost optimum.
func SpecLoadTracking() AlgSpec {
	return OnlineSpec("LoadTracking", func(ins *model.Instance) (core.Online, error) {
		return baseline.NewLoadTracking(ins)
	})
}

// SpecSkiRental is the ski-rental style release baseline.
func SpecSkiRental() AlgSpec {
	return OnlineSpec("SkiRental", func(ins *model.Instance) (core.Online, error) {
		return baseline.NewSkiRental(ins)
	})
}

// SpecLCP is discrete lazy capacity provisioning; homogeneous d = 1 only.
func SpecLCP() AlgSpec {
	s := OnlineSpec("LCP", func(ins *model.Instance) (core.Online, error) {
		return baseline.NewLCP(ins)
	})
	s.Skip = func(ins *model.Instance) string {
		if ins.D() != 1 {
			return "homogeneous (d = 1) instances only"
		}
		return ""
	}
	return s
}

// SpecRecedingHorizon is model-predictive control with lookahead w.
func SpecRecedingHorizon(w int) AlgSpec {
	return OnlineSpec(fmt.Sprintf("RecedingHorizon(w=%d)", w), func(ins *model.Instance) (core.Online, error) {
		return baseline.NewRecedingHorizon(ins, w)
	})
}

// DefaultAlgorithms is the standard line-up measured against the optimum:
// the paper's three online algorithms plus every baseline. Inapplicable
// entries (Algorithm A on time-dependent costs, LCP on heterogeneous
// fleets) are skipped per instance.
func DefaultAlgorithms() []AlgSpec {
	return []AlgSpec{
		SpecAlgorithmA(),
		SpecAlgorithmB(),
		SpecAlgorithmC(1),
		SpecAllOn(),
		SpecLoadTracking(),
		SpecSkiRental(),
		SpecLCP(),
		SpecRecedingHorizon(3),
	}
}
