// Package engine is the unified scenario engine: one run→measure→report
// pipeline shared by the offline solvers, the online algorithms, the
// baselines, the experiment study and every command-line tool.
//
// The pieces compose bottom-up:
//
//   - AlgSpec names an algorithm and knows how to produce its behaviour
//     for an instance: a push-based streaming constructor (New) for the
//     online algorithms and baselines, or a hindsight schedule producer
//     (Offline) for the offline policies, plus an applicability gate
//     (Algorithm A needs time-independent costs, LCP needs d = 1, ...).
//   - The algorithm registry (RegisterAlgorithm / Algorithms /
//     LookupAlgorithm) mirrors the scenario registry, so scenarios, the
//     CLI, live sessions and the facade all resolve algorithms by name.
//   - Measure turns a schedule into Metrics: cost decomposition, switching
//     activity and the competitive ratio against the exact optimum.
//   - Scenario bundles a named deterministic instance generator with the
//     algorithms to run on it.
//   - RunSuite fans scenarios out over a bounded worker pool with the
//     determinism discipline of solver/parallel.go: static partition,
//     per-unit model.Evaluators, bit-identical results for any worker
//     count. Each instance's optimum is solved exactly once per run.
//   - Sinks render one result stream as text tables, JSON, CSV or
//     markdown for cmd/rightsize, cmd/experiments, benchmarks and
//     dashboards alike.
package engine

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/solver"
)

// Metrics summarises one algorithm's behaviour on one instance. The JSON
// field names are part of the suite-result format consumed by the JSON
// sink and must stay stable.
type Metrics struct {
	Name       string  `json:"name"`
	Operating  float64 `json:"operating"` // Σ_t g_t(x_t)
	Switching  float64 `json:"switching"` // Σ_t Σ_j β_j (Δ_j)^+
	Total      float64 `json:"total"`     // Operating + Switching
	PowerUps   int     `json:"power_ups"` // individual server power-up operations
	PeakActive int     `json:"peak"`      // max over slots of Σ_j x_{t,j}
	MeanActive float64 `json:"mean"`      // mean over slots of Σ_j x_{t,j}
	Ratio      float64 `json:"ratio"`     // Total / OPT; 0 when OPT is unknown
}

// Measure evaluates a schedule. opt > 0 enables the Ratio field. It
// allocates a fresh evaluator; hot paths with an evaluator at hand should
// call MeasureWith.
func Measure(ins *model.Instance, sched model.Schedule, name string, opt float64) Metrics {
	return MeasureWith(model.NewEvaluator(ins), sched, name, opt)
}

// MeasureWith is Measure with a caller-provided evaluator (evaluators
// carry scratch buffers and are not safe for concurrent use; the suite
// runner keeps one per work unit).
func MeasureWith(ev *model.Evaluator, sched model.Schedule, name string, opt float64) Metrics {
	ins := ev.Instance()
	br := ev.Cost(sched)
	m := Metrics{
		Name:      name,
		Operating: br.Operating,
		Switching: br.Switching,
		Total:     br.Total(),
	}
	prev := make(model.Config, ins.D())
	sumActive := 0
	for _, x := range sched {
		total := x.Total()
		sumActive += total
		if total > m.PeakActive {
			m.PeakActive = total
		}
		for j := range x {
			if up := x[j] - prev[j]; up > 0 {
				m.PowerUps += up
			}
		}
		prev = x
	}
	if len(sched) > 0 {
		m.MeanActive = float64(sumActive) / float64(len(sched))
	}
	if opt > 0 {
		m.Ratio = m.Total / opt
	}
	return m
}

// RatioAgainstOpt runs an online algorithm over the instance and returns
// its cost divided by the exact optimal cost. The optimum is computed with
// the memory-light solver since no optimal schedule is needed.
func RatioAgainstOpt(ins *model.Instance, alg core.Online) (float64, error) {
	sched := core.Run(alg, ins)
	if err := ins.Feasible(sched); err != nil {
		return 0, fmt.Errorf("engine: %s produced an infeasible schedule: %v", alg.Name(), err)
	}
	cost := model.NewEvaluator(ins).Cost(sched).Total()
	opt, err := solver.OptimalCost(ins)
	if err != nil {
		return 0, err
	}
	return cost / opt, nil
}

// AlgSpec describes one algorithm: registry identity, documentation, a
// streaming constructor and/or an offline schedule producer, and an
// optional applicability gate.
type AlgSpec struct {
	// Key is the registry key (kebab-case by convention, e.g. "alg-a").
	// Lookup is normalisation-insensitive, so "algA" finds "alg-a".
	Key string
	// Name identifies the algorithm in results; it must be unique within
	// a scenario and stays stable across releases (the suite-result format
	// depends on it).
	Name string
	// Doc is a one-line description for listings and README tables.
	Doc string
	// Bound is the proven competitive ratio, informational ("2d+1",
	// "2d+1+c(I)", "—" for heuristics).
	Bound string
	// Applies is the human-readable applicability gate for tables ("any
	// instance", "time-independent costs", "d = 1").
	Applies string
	// New constructs the push-based online algorithm for a fleet
	// template; nil for offline-only policies.
	New func(types []model.ServerType) (core.Online, error)
	// NewTuned, when non-nil, constructs the algorithm with solver tuning
	// (core.Options). Session openers use it to plumb a worker count into
	// the algorithm's internal prefix tracker; plain New remains the
	// batch/default path.
	NewTuned func(types []model.ServerType, opts core.Options) (core.Online, error)
	// Offline, when non-nil, computes a hindsight schedule directly and
	// takes precedence over New in batch runs.
	Offline func(ins *model.Instance) (model.Schedule, error)
	// Skip, when non-nil, reports why the spec does not apply to the
	// instance ("" means it applies). Skipped algorithms are recorded in
	// the result rather than failing the scenario.
	Skip func(ins *model.Instance) string
}

// Streamable reports whether the algorithm can serve a live session.
func (s AlgSpec) Streamable() bool { return s.New != nil }

// Run computes the algorithm's schedule for the instance: offline policies
// solve in hindsight, online algorithms are constructed for the instance's
// fleet and driven through the streaming path (batch replay is a thin
// driver over Step). Step panics from per-slot rejections (e.g. Algorithm
// C's subdivision cap) are converted into ordinary errors, matching the
// construction-time errors the pre-streaming API reported (Evaluate still
// treats any algorithm error as a scenario failure).
func (s AlgSpec) Run(ins *model.Instance) (sched model.Schedule, err error) {
	if s.Offline != nil {
		return s.Offline(ins)
	}
	if s.New == nil {
		return nil, fmt.Errorf("engine: algorithm %q has no constructor", s.Name)
	}
	alg, err := s.New(ins.Types)
	if err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			sched, err = nil, fmt.Errorf("engine: %s rejected the instance: %v", s.Name, r)
		}
	}()
	return core.Run(alg, ins), nil
}

// OnlineSpec wraps a push-based constructor as an AlgSpec.
func OnlineSpec(name string, mk func(types []model.ServerType) (core.Online, error)) AlgSpec {
	return AlgSpec{Name: name, New: mk}
}

// AlgorithmCSpec is the paper's Algorithm C (Section 3.2) with accuracy ε.
func AlgorithmCSpec(eps float64) AlgSpec {
	s := AlgSpec{
		Key:     "alg-c",
		Name:    fmt.Sprintf("AlgorithmC(ε=%g)", eps),
		Doc:     "online, sub-slot subdivision for time-dependent costs (Section 3.2)",
		Bound:   "2d+1+ε",
		Applies: "β_j > 0 for every type",
		New: func(types []model.ServerType) (core.Online, error) {
			return core.NewAlgorithmC(types, eps)
		},
	}
	s.Skip = func(ins *model.Instance) string {
		if eps <= 0 {
			return "requires ε > 0"
		}
		for _, ty := range ins.Types {
			if ty.SwitchCost <= 0 {
				return "requires β_j > 0 for every type"
			}
		}
		return ""
	}
	return s
}

// ApproxSpec is the offline (1+ε)-approximation (Section 4.2) run as a
// hindsight policy.
func ApproxSpec(eps float64) AlgSpec {
	return AlgSpec{
		Key:     "approx",
		Name:    fmt.Sprintf("Approx(ε=%g)", eps),
		Doc:     "offline (1+ε)-approximation on the γ-reduced lattice (Section 4.2)",
		Bound:   "1+ε (hindsight)",
		Applies: "any instance",
		Offline: func(ins *model.Instance) (model.Schedule, error) {
			res, err := solver.SolveApprox(ins, eps)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		},
	}
}

// LookaheadSpec is receding-horizon control with lookahead window w,
// streamed through the buffering Lookahead wrapper (decisions lag inputs
// by w−1 slots).
func LookaheadSpec(w int) AlgSpec {
	return AlgSpec{
		Key:     "receding-horizon",
		Name:    fmt.Sprintf("RecedingHorizon(w=%d)", w),
		Doc:     fmt.Sprintf("semi-online model-predictive control, %d-slot lookahead buffer", w),
		Bound:   "—",
		Applies: "any instance (decisions lag w−1 slots)",
		New: func(types []model.ServerType) (core.Online, error) {
			return baseline.NewLookahead(types, w)
		},
	}
}

// stock registry entries.
func init() {
	mustRegisterAlgorithm(AlgSpec{
		Key:     "alg-a",
		Name:    "AlgorithmA",
		Doc:     "online, (2d+1)-competitive for time-independent costs (Section 2)",
		Bound:   "2d+1",
		Applies: "time-independent costs",
		New: func(types []model.ServerType) (core.Online, error) {
			return core.NewAlgorithmA(types)
		},
		NewTuned: func(types []model.ServerType, opts core.Options) (core.Online, error) {
			return core.NewAlgorithmAWithOptions(types, opts)
		},
		Skip: func(ins *model.Instance) string {
			if !ins.TimeIndependent() {
				return "requires time-independent operating costs"
			}
			return ""
		},
	})
	mustRegisterAlgorithm(AlgSpec{
		Key:     "alg-b",
		Name:    "AlgorithmB",
		Doc:     "online, (2d+1+c(I))-competitive for time-dependent costs (Section 3.1)",
		Bound:   "2d+1+c(I)",
		Applies: "any instance",
		New: func(types []model.ServerType) (core.Online, error) {
			return core.NewAlgorithmB(types)
		},
		NewTuned: func(types []model.ServerType, opts core.Options) (core.Online, error) {
			return core.NewAlgorithmBWithOptions(types, opts)
		},
	})
	mustRegisterAlgorithm(AlgorithmCSpec(1))
	mustRegisterAlgorithm(ApproxSpec(0.5))
	mustRegisterAlgorithm(AlgSpec{
		Key:     "all-on",
		Name:    "AllOn",
		Doc:     "static provisioning: every available server stays powered",
		Bound:   "—",
		Applies: "any instance",
		New: func(types []model.ServerType) (core.Online, error) {
			return baseline.NewAllOn(types)
		},
	})
	mustRegisterAlgorithm(AlgSpec{
		Key:     "load-tracking",
		Name:    "LoadTracking",
		Doc:     "memoryless per-slot operating-cost optimiser (ignores switching)",
		Bound:   "—",
		Applies: "any instance",
		New: func(types []model.ServerType) (core.Online, error) {
			return baseline.NewLoadTracking(types)
		},
	})
	mustRegisterAlgorithm(AlgSpec{
		Key:     "ski-rental",
		Name:    "SkiRental",
		Doc:     "follow load up instantly, release surplus after idle cost β_j",
		Bound:   "—",
		Applies: "any instance",
		New: func(types []model.ServerType) (core.Online, error) {
			return baseline.NewSkiRental(types)
		},
	})
	mustRegisterAlgorithm(AlgSpec{
		Key:     "lcp",
		Name:    "LCP",
		Doc:     "lazy capacity provisioning corridor (prior work, homogeneous)",
		Bound:   "3 (homogeneous)",
		Applies: "d = 1",
		New: func(types []model.ServerType) (core.Online, error) {
			return baseline.NewLCP(types)
		},
		Skip: func(ins *model.Instance) string {
			if ins.D() != 1 {
				return "homogeneous (d = 1) instances only"
			}
			return ""
		},
	})
	mustRegisterAlgorithm(LookaheadSpec(3))
}

// DefaultAlgorithms is the standard line-up measured against the optimum:
// the paper's three online algorithms plus every baseline, resolved from
// the registry in the canonical result order. Inapplicable entries
// (Algorithm A on time-dependent costs, LCP on heterogeneous fleets) are
// skipped per instance.
func DefaultAlgorithms() []AlgSpec {
	return algorithmsByKey("alg-a", "alg-b", "alg-c", "all-on", "load-tracking",
		"ski-rental", "lcp", "receding-horizon")
}
