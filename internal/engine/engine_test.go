package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/workload"
)

// smallScenarios keeps determinism tests fast: a slice of the stock
// registry with modest lattices.
func smallScenarios(t *testing.T) []Scenario {
	t.Helper()
	var out []Scenario
	for _, name := range []string{"quickstart", "onoff", "price-modulated"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("stock scenario %q missing", name)
		}
		out = append(out, sc)
	}
	return out
}

func TestSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	scs := smallScenarios(t)
	emit := func(workers int) []byte {
		res, err := RunSuite(scs, SuiteOptions{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := (JSONSink{Indent: true}).Emit(&b, res); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial := emit(1)
	for _, workers := range []int{2, 3, 8, AutoWorkers} {
		if got := emit(workers); !bytes.Equal(serial, got) {
			t.Errorf("Workers=%d JSON differs from serial run:\nserial:\n%s\nparallel:\n%s",
				workers, serial, got)
		}
	}
}

func TestStockScenariosValidateAndSolve(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 7 {
		t.Fatalf("stock registry has %d scenarios, want at least 7", len(scs))
	}
	for _, sc := range scs {
		t.Run(sc.Name, func(t *testing.T) {
			ins := sc.Instance(3)
			if err := ins.Validate(); err != nil {
				t.Fatalf("instance invalid: %v", err)
			}
			// Instance generation must be deterministic in the seed.
			again := sc.Instance(3)
			for i := range ins.Lambda {
				if ins.Lambda[i] != again.Lambda[i] {
					t.Fatalf("instance generator is not deterministic (slot %d)", i)
				}
			}
			res, err := Evaluate(sc, 3, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Opt <= 0 {
				t.Errorf("OPT = %g, want > 0", res.Opt)
			}
			if len(res.Rows) < 2 {
				t.Fatalf("only %d rows measured, want OPT plus at least one algorithm", len(res.Rows))
			}
			if res.Rows[0].Name != "OPT" || res.Rows[0].Ratio != 1 {
				t.Errorf("first row = %+v, want OPT with ratio 1", res.Rows[0])
			}
			for _, m := range res.Rows[1:] {
				if m.Ratio < 1-1e-9 {
					t.Errorf("%s ratio %g below 1 (beat the optimum?)", m.Name, m.Ratio)
				}
			}
		})
	}
}

func TestSuiteSolvesOptOncePerInstance(t *testing.T) {
	scs := smallScenarios(t)
	before := optSolves.Load()
	res, err := RunSuite(scs, SuiteOptions{Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	solves := optSolves.Load() - before
	if int(solves) != len(scs) {
		t.Errorf("suite solved OPT %d times for %d scenarios, want exactly one each", solves, len(scs))
	}
	for _, r := range res.Results {
		if len(r.Rows) < 3 {
			t.Errorf("scenario %s measured %d rows; several algorithms should share the one OPT solve",
				r.Scenario, len(r.Rows))
		}
	}
}

func TestEvaluateRecordsSkips(t *testing.T) {
	sc, ok := Lookup("price-modulated")
	if !ok {
		t.Fatal("price-modulated scenario missing")
	}
	res, err := Evaluate(sc, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	var foundA bool
	for _, s := range res.Skipped {
		if strings.HasPrefix(s, "AlgorithmA:") {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("Algorithm A should be skipped on time-dependent costs; skipped = %v", res.Skipped)
	}
	// An invalid ε must gate, not error the scenario (cmd/rightsize
	// -compare relies on this to keep printing the table).
	algB, ok := LookupAlgorithm("alg-b")
	if !ok {
		t.Fatal("alg-b missing from the registry")
	}
	sc.Algorithms = []AlgSpec{algB, AlgorithmCSpec(0)}
	res, err = Evaluate(sc, 1, false)
	if err != nil {
		t.Fatalf("eps<=0 should skip Algorithm C, not fail: %v", err)
	}
	if len(res.Skipped) != 1 || !strings.HasPrefix(res.Skipped[0], "AlgorithmC") {
		t.Errorf("skipped = %v, want an AlgorithmC entry", res.Skipped)
	}
	for _, m := range res.Rows {
		if m.Name == "AlgorithmA" {
			t.Error("skipped algorithm must not be measured")
		}
	}
}

func TestKeepSchedules(t *testing.T) {
	sc, _ := Lookup("quickstart")
	res, err := Evaluate(sc, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedules) != len(res.Rows) {
		t.Fatalf("%d schedules for %d rows", len(res.Schedules), len(res.Rows))
	}
	ins := sc.Instance(1)
	for i, sched := range res.Schedules {
		if len(sched) != ins.T() {
			t.Errorf("row %d: schedule has %d slots, want %d", i, len(sched), ins.T())
		}
	}
}

func TestRegisterRejectsDuplicatesAndBlanks(t *testing.T) {
	if err := Register(Scenario{}); err == nil {
		t.Error("blank scenario should be rejected")
	}
	if err := Register(Scenario{Name: "quickstart", Instance: func(int64) *model.Instance { return nil }}); err == nil {
		t.Error("duplicate name should be rejected")
	}
}

func TestSinkFormats(t *testing.T) {
	res, err := RunSuite([]Scenario{mustLookup(t, "onoff")}, SuiteOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for format, want := range map[string]string{
		"text":     "algorithm",
		"json":     `"scenario": "onoff"`,
		"csv":      "scenario,seed,types,slots,opt,algorithm",
		"markdown": "### Scenario `onoff`",
	} {
		sink, err := SinkFor(format)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := sink.Emit(&b, res); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), want) {
			t.Errorf("%s sink output missing %q:\n%s", format, want, b.String())
		}
	}
	if _, err := SinkFor("yaml"); err == nil {
		t.Error("unknown format should error")
	}
	// LCP applies on the homogeneous onoff fleet and must appear in CSV.
	var b bytes.Buffer
	if err := (CSVSink{}).Emit(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "LCP") {
		t.Errorf("csv missing LCP row:\n%s", b.String())
	}
}

func mustLookup(t *testing.T, name string) Scenario {
	t.Helper()
	sc, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %q missing", name)
	}
	return sc
}

func TestRatioAgainstOpt(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "std", Count: 4, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}},
		}},
		Lambda: workload.OnOff(12, 3, 0.5, 3, 3),
	}
	alg, err := core.NewAlgorithmA(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RatioAgainstOpt(ins, alg)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1-1e-9 || r > 2*float64(ins.D())+1+1e-9 {
		t.Errorf("ratio %g outside [1, 2d+1]", r)
	}
}
