package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stream"
)

// The algorithm registry mirrors the scenario registry: registering an
// AlgSpec is all it takes to make an algorithm available to scenarios,
// cmd/rightsize (-alg / -list-algs), live advisory sessions and the
// facade. Lookup normalises names, so the registry key ("alg-a"), the
// display name ("AlgorithmA") and convenient spellings ("algA") all
// resolve to the same entry.

var (
	algMu  sync.RWMutex
	algReg = map[string]AlgSpec{}
	algSeq []string // registration order of keys
)

// normalizeAlg canonicalises an algorithm name for lookup: lower-case,
// alphanumerics only ("alg-a", "algA" and "AlgorithmA(ε=1)"-style display
// names all collapse predictably).
func normalizeAlg(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		}
	}
	return string(out)
}

// RegisterAlgorithm adds an algorithm to the registry; the key must be
// unused (after normalisation) and the spec must be runnable.
func RegisterAlgorithm(s AlgSpec) error {
	if s.Key == "" || s.Name == "" {
		return fmt.Errorf("engine: algorithm needs a key and a display name")
	}
	if s.New == nil && s.Offline == nil {
		return fmt.Errorf("engine: algorithm %q needs a constructor or an offline producer", s.Key)
	}
	norm := normalizeAlg(s.Key)
	algMu.Lock()
	defer algMu.Unlock()
	if _, dup := algReg[norm]; dup {
		return fmt.Errorf("engine: algorithm %q already registered", s.Key)
	}
	algReg[norm] = s
	algSeq = append(algSeq, norm)
	return nil
}

// mustRegisterAlgorithm is RegisterAlgorithm for the stock library, where
// a duplicate is a programming error.
func mustRegisterAlgorithm(s AlgSpec) {
	if err := RegisterAlgorithm(s); err != nil {
		panic(err)
	}
}

// LookupAlgorithm retrieves a registered algorithm by key, display name or
// any normalisation-equivalent spelling ("algA" finds "alg-a").
func LookupAlgorithm(name string) (AlgSpec, bool) {
	norm := normalizeAlg(name)
	algMu.RLock()
	defer algMu.RUnlock()
	if s, ok := algReg[norm]; ok {
		return s, true
	}
	// Fall back to display names (e.g. "AlgorithmC(ε=1)").
	for _, s := range algReg {
		if normalizeAlg(s.Name) == norm {
			return s, true
		}
	}
	return AlgSpec{}, false
}

// Algorithms returns every registered algorithm in registration order
// (stock entries first, in their canonical line-up), so listings and
// README tables are deterministic.
func Algorithms() []AlgSpec {
	algMu.RLock()
	defer algMu.RUnlock()
	out := make([]AlgSpec, 0, len(algSeq))
	for _, k := range algSeq {
		out = append(out, algReg[k])
	}
	return out
}

// AlgorithmsSorted returns every registered algorithm sorted by key.
func AlgorithmsSorted() []AlgSpec {
	out := Algorithms()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// algorithmsByKey resolves keys that are guaranteed registered (stock
// line-ups); it panics on a miss, which is a programming error.
func algorithmsByKey(keys ...string) []AlgSpec {
	out := make([]AlgSpec, len(keys))
	for i, k := range keys {
		s, ok := LookupAlgorithm(k)
		if !ok {
			panic(fmt.Sprintf("engine: stock algorithm %q not registered", k))
		}
		out[i] = s
	}
	return out
}

// OpenSession resolves an algorithm by name and opens a live advisory
// session over the fleet template. A non-zero opts.Workers is plumbed into
// the algorithm's internal prefix tracker when the spec supports tuning
// (and into the session's fallback telemetry tracker either way).
func OpenSession(name string, types []model.ServerType, opts stream.Options) (*stream.Session, error) {
	spec, ok := LookupAlgorithm(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q", name)
	}
	if !spec.Streamable() {
		return nil, fmt.Errorf("engine: algorithm %q is offline-only and cannot serve a live session", spec.Name)
	}
	alg, err := construct(spec, types, opts)
	if err != nil {
		return nil, err
	}
	if opts.Alg == "" {
		opts.Alg = spec.Key
	}
	return stream.New(alg, types, opts)
}

// construct builds the spec's algorithm, using the tuned constructor when
// the session options ask for a specific tracker worker count.
func construct(spec AlgSpec, types []model.ServerType, opts stream.Options) (core.Online, error) {
	if opts.Workers != 0 && spec.NewTuned != nil {
		return spec.NewTuned(types, core.Options{TrackerWorkers: opts.Workers})
	}
	return spec.New(types)
}

// ResumeSession rebuilds a live session from a checkpoint, resolving the
// algorithm recorded in it and replaying the log.
func ResumeSession(cp *stream.Checkpoint, types []model.ServerType, opts stream.Options) (*stream.Session, error) {
	spec, ok := LookupAlgorithm(cp.Alg)
	if !ok {
		return nil, fmt.Errorf("engine: checkpoint names unknown algorithm %q", cp.Alg)
	}
	if !spec.Streamable() {
		return nil, fmt.Errorf("engine: algorithm %q is offline-only and cannot serve a live session", spec.Name)
	}
	alg, err := construct(spec, types, opts)
	if err != nil {
		return nil, err
	}
	if opts.Alg == "" {
		opts.Alg = spec.Key
	}
	return stream.Resume(alg, types, opts, cp)
}
