package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/workload"
)

// Scenario is a named, reproducible workload: an instance generator plus
// the algorithms to run on it. Registering one is all it takes to make a
// workload available to cmd/rightsize, the suite runner, the benchmarks
// and the examples.
type Scenario struct {
	// Name is the registry key (kebab-case by convention).
	Name string
	// Doc is a one-line description for listings and README tables.
	Doc string
	// Instance builds the scenario's instance. It must be deterministic
	// in seed: the suite runner relies on this for bit-identical results
	// across worker counts. Scenarios without randomness ignore the seed.
	Instance func(seed int64) *model.Instance
	// Algorithms to run and measure against the optimum; nil means
	// DefaultAlgorithms().
	Algorithms []AlgSpec
}

// specs returns the scenario's algorithm line-up.
func (sc Scenario) specs() []AlgSpec {
	if sc.Algorithms != nil {
		return sc.Algorithms
	}
	return DefaultAlgorithms()
}

// ---------- registry ----------

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the registry; the name must be unused.
func Register(sc Scenario) error {
	if sc.Name == "" || sc.Instance == nil {
		return fmt.Errorf("engine: scenario needs a name and an instance generator")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[sc.Name]; dup {
		return fmt.Errorf("engine: scenario %q already registered", sc.Name)
	}
	registry[sc.Name] = sc
	return nil
}

// mustRegister is Register for the stock library, where a duplicate is a
// programming error.
func mustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

// Lookup retrieves a registered scenario by name.
func Lookup(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sc, ok := registry[name]
	return sc, ok
}

// Scenarios returns every registered scenario sorted by name, so suite
// runs and listings are deterministic.
func Scenarios() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ---------- stock library ----------

// maintenanceLineup is the maintenance scenario's algorithm selection:
// the two applicable online algorithms, the offline approximation as a
// hindsight yardstick, and the cheap baselines.
func maintenanceLineup() []AlgSpec {
	out := algorithmsByKey("alg-a", "alg-b")
	out = append(out, ApproxSpec(0.5))
	return append(out, algorithmsByKey("all-on", "load-tracking")...)
}

// cpuGPU is the CPU+GPU cluster used across the experiment study: cheap
// slow web servers and expensive fast accelerators (the paper's
// heterogeneity motivation).
func cpuGPU(lambda []float64) *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{
			{Name: "cpu", Count: 16, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Power{Idle: 1, Coef: 0.6, Exp: 2}}},
			{Name: "gpu", Count: 4, SwitchCost: 15, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 4, Rate: 0.3}}},
		},
		Lambda: lambda,
	}
}

func init() {
	mustRegister(Scenario{
		Name: "quickstart",
		Doc:  "two-type cluster under clean diurnal load (the README example)",
		Instance: func(int64) *model.Instance {
			return &model.Instance{
				Types: []model.ServerType{
					{Name: "slow", Count: 8, SwitchCost: 3, MaxLoad: 1,
						Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
					{Name: "fast", Count: 3, SwitchCost: 12, MaxLoad: 4,
						Cost: model.Static{F: costfn.Power{Idle: 3, Coef: 0.4, Exp: 2}}},
				},
				Lambda: workload.Diurnal(48, 2, 16, 24, 0),
			}
		},
	})

	mustRegister(Scenario{
		Name: "diurnal",
		Doc:  "CPU+GPU cluster, two days of noisy day/night load",
		Instance: func(seed int64) *model.Instance {
			rng := rand.New(rand.NewSource(seed))
			return cpuGPU(workload.DiurnalNoisy(rng, 48, 4, 20, 24, 0.2))
		},
	})

	mustRegister(Scenario{
		Name: "bursty",
		Doc:  "flat base load with random spikes (cache-miss storms)",
		Instance: func(seed int64) *model.Instance {
			rng := rand.New(rand.NewSource(seed))
			return cpuGPU(workload.Bursty(rng, 48, 5, 16, 0.15))
		},
	})

	mustRegister(Scenario{
		Name: "onoff",
		Doc:  "adversarial on/off phases on a homogeneous fleet (LCP applies)",
		Instance: func(int64) *model.Instance {
			return &model.Instance{
				Types: []model.ServerType{
					{Name: "std", Count: 12, SwitchCost: 4, MaxLoad: 1,
						Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 0.8}}},
				},
				Lambda: workload.OnOff(48, 10, 1, 5, 3),
			}
		},
	})

	mustRegister(Scenario{
		Name: "random-walk",
		Doc:  "bounded mean-reverting demand drift",
		Instance: func(seed int64) *model.Instance {
			rng := rand.New(rand.NewSource(seed))
			return cpuGPU(workload.RandomWalk(rng, 48, 8, 3, 0, 28))
		},
	})

	mustRegister(Scenario{
		Name: "heterogeneous",
		Doc:  "three server generations with mixed convex cost families",
		Instance: func(seed int64) *model.Instance {
			rng := rand.New(rand.NewSource(seed))
			trace := workload.Add(
				workload.DiurnalNoisy(rng, 48, 3, 14, 24, 0.15),
				workload.Bursty(rng, 48, 0, 6, 0.1),
			)
			return &model.Instance{
				Types: []model.ServerType{
					{Name: "gen1", Count: 10, SwitchCost: 1.5, MaxLoad: 1,
						Cost: model.Static{F: costfn.Constant{C: 1.2}}},
					{Name: "gen2", Count: 6, SwitchCost: 4, MaxLoad: 2,
						Cost: model.Static{F: costfn.Affine{Idle: 1.5, Rate: 0.6}}},
					{Name: "gen3", Count: 3, SwitchCost: 11, MaxLoad: 4,
						Cost: model.Static{F: costfn.Power{Idle: 2.5, Coef: 0.3, Exp: 2}}},
				},
				Lambda: workload.Clamp(trace, 30),
			}
		},
	})

	mustRegister(Scenario{
		Name: "maintenance",
		Doc:  "time-varying fleet sizes: maintenance window then commissioning (Section 4.3)",
		Instance: func(int64) *model.Instance {
			const T = 36
			counts := make([][]int, T)
			for t := 0; t < T; t++ {
				old, fresh := 24, 4
				switch {
				case t >= 12 && t < 18:
					old = 10 // maintenance: most old servers offline
				case t >= 24:
					fresh = 8 // commissioning: the new rack doubles
				}
				counts[t] = []int{old, fresh}
			}
			return &model.Instance{
				Types: []model.ServerType{
					{Name: "old", Count: 24, SwitchCost: 2, MaxLoad: 1,
						Cost: model.Static{F: costfn.Affine{Idle: 1.2, Rate: 1}}},
					{Name: "new", Count: 8, SwitchCost: 9, MaxLoad: 4,
						Cost: model.Static{F: costfn.Affine{Idle: 2.5, Rate: 0.4}}},
				},
				Lambda: workload.Diurnal(T, 4, 20, 12, 0),
				Counts: counts,
			}
		},
		Algorithms: maintenanceLineup(),
	})

	mustRegister(Scenario{
		Name: "price-modulated",
		Doc:  "electricity-price signal scaling all operating costs (time-dependent f_{t,j})",
		Instance: func(seed int64) *model.Instance {
			rng := rand.New(rand.NewSource(seed))
			const T = 48
			price := make([]float64, T)
			for t := range price {
				hour := t % 24
				switch {
				case hour >= 18 && hour <= 21:
					price[t] = 1.8
				case hour <= 5:
					price[t] = 0.6
				default:
					price[t] = 1.0
				}
			}
			return &model.Instance{
				Types: []model.ServerType{
					{Name: "standard", Count: 10, SwitchCost: 4, MaxLoad: 1,
						Cost: model.Modulated{F: costfn.Affine{Idle: 1, Rate: 0.8}, Scale: price}},
					{Name: "highmem", Count: 4, SwitchCost: 10, MaxLoad: 3,
						Cost: model.Modulated{F: costfn.Affine{Idle: 2.5, Rate: 0.4}, Scale: price}},
				},
				Lambda: workload.DiurnalNoisy(rng, T, 1, 10, 24, 0.3),
			}
		},
	})
}
