package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Sink renders a suite result stream to a writer. Every emitter is
// deterministic: same SuiteResult, same bytes — the determinism tests and
// the committed experiment reports rely on this.
type Sink interface {
	Emit(w io.Writer, res *SuiteResult) error
}

// SinkFor returns the sink registered under the given format name
// (text, json, csv, markdown).
func SinkFor(format string) (Sink, error) {
	switch format {
	case "text":
		return TextSink{}, nil
	case "json":
		return JSONSink{Indent: true}, nil
	case "csv":
		return CSVSink{}, nil
	case "markdown":
		return MarkdownSink{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown sink format %q (want text, json, csv or markdown)", format)
	}
}

// TextSink renders one aligned table per scenario.
type TextSink struct{}

// Emit implements Sink.
func (TextSink) Emit(w io.Writer, res *SuiteResult) error {
	for i := range res.Results {
		r := &res.Results[i]
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "scenario %s (seed %d, %d types, %d slots, OPT %.2f)\n",
			r.Scenario, r.Seed, r.Types, r.Slots, r.Opt); err != nil {
			return err
		}
		r.Table().Render(w)
		for _, s := range r.Skipped {
			if _, err := fmt.Fprintf(w, "(skipped %s)\n", s); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSONSink marshals the suite result as one JSON document.
type JSONSink struct {
	// Indent pretty-prints with two-space indentation.
	Indent bool
}

// Emit implements Sink.
func (s JSONSink) Emit(w io.Writer, res *SuiteResult) error {
	enc := json.NewEncoder(w)
	if s.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(res)
}

// CSVSink emits one flat row per (scenario, algorithm) pair — the shape
// spreadsheet and dashboard ingestion wants.
type CSVSink struct{}

// Emit implements Sink.
func (CSVSink) Emit(w io.Writer, res *SuiteResult) error {
	if _, err := fmt.Fprintln(w,
		"scenario,seed,types,slots,opt,algorithm,total,operating,switching,power_ups,peak,mean,ratio"); err != nil {
		return err
	}
	for i := range res.Results {
		r := &res.Results[i]
		for _, m := range r.Rows {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%g,%s,%g,%g,%g,%d,%d,%g,%g\n",
				csvEscape(r.Scenario), r.Seed, r.Types, r.Slots, r.Opt,
				csvEscape(m.Name), m.Total, m.Operating, m.Switching,
				m.PowerUps, m.PeakActive, m.MeanActive, m.Ratio); err != nil {
				return err
			}
		}
	}
	return nil
}

// csvEscape guards the free-form CSV fields (scenario and algorithm
// names, both user-definable) against commas and quotes.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// MarkdownSink renders one GitHub-flavoured markdown table per scenario,
// for EXPERIMENTS.md-style reports.
type MarkdownSink struct{}

// Emit implements Sink.
func (MarkdownSink) Emit(w io.Writer, res *SuiteResult) error {
	for i := range res.Results {
		r := &res.Results[i]
		if _, err := fmt.Fprintf(w, "### Scenario `%s` (seed %d, %d types, %d slots, OPT %.2f)\n\n",
			r.Scenario, r.Seed, r.Types, r.Slots, r.Opt); err != nil {
			return err
		}
		if _, err := io.WriteString(w, r.Table().Markdown()); err != nil {
			return err
		}
		for _, s := range r.Skipped {
			if _, err := fmt.Fprintf(w, "\n*skipped: %s*\n", s); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
