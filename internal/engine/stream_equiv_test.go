package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/stream"
)

// feedInput builds the demand-only stream input for slot t of a recorded
// instance: costs resolve from the fleet template (the session's
// accumulator holds the same profiles), counts are passed explicitly only
// when the instance has time-varying sizes.
func feedInput(ins *model.Instance, t int) model.SlotInput {
	in := model.SlotInput{Lambda: ins.Lambda[t-1]}
	if ins.Counts != nil {
		in.Counts = ins.Counts[t-1]
	}
	return in
}

// The tentpole's central contract: for every registered streamable
// algorithm on every registered scenario, feeding the trace slot-by-slot
// through a live session yields bit-identical configurations to the batch
// Run, and the session's compensated running cost equals the batch
// schedule cost exactly — including when the session is checkpointed
// mid-trace, JSON round-tripped, and resumed into a fresh algorithm.
func TestStreamingMatchesBatchForAllAlgorithmsAndScenarios(t *testing.T) {
	const seed = 3
	for _, sc := range Scenarios() {
		for _, spec := range Algorithms() {
			if !spec.Streamable() {
				continue
			}
			spec := spec
			sc := sc
			t.Run(sc.Name+"/"+spec.Key, func(t *testing.T) {
				ins := sc.Instance(seed)
				if spec.Skip != nil && spec.Skip(ins) != "" {
					t.Skipf("inapplicable: %s", spec.Skip(ins))
				}
				batch, err := spec.Run(ins)
				if err != nil {
					t.Fatal(err)
				}
				ev := model.NewEvaluator(ins)
				batchCost := ev.Cost(batch).Total()

				// Straight-through streaming.
				sess, err := OpenSession(spec.Key, ins.Types, stream.Options{})
				if err != nil {
					t.Fatal(err)
				}
				streamed := collect(t, sess, ins, 1, ins.T())
				checkSchedules(t, "stream", batch, streamed)
				if got := sess.CumCost(); got != batchCost {
					t.Errorf("stream cum cost %v != batch cost %v", got, batchCost)
				}

				// Mid-trace checkpoint → JSON round-trip → resume.
				half := ins.T() / 2
				sessA, err := OpenSession(spec.Key, ins.Types, stream.Options{})
				if err != nil {
					t.Fatal(err)
				}
				resumed := collectOpen(t, sessA, ins, 1, half)
				cp := sessA.Checkpoint()
				if !cp.Portable() {
					t.Fatal("demand-only checkpoint should be JSON-portable")
				}
				data, err := json.Marshal(cp)
				if err != nil {
					t.Fatal(err)
				}
				var cp2 stream.Checkpoint
				if err := json.Unmarshal(data, &cp2); err != nil {
					t.Fatal(err)
				}
				sessB, err := ResumeSession(&cp2, ins.Types, stream.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if sessB.Fed() != half {
					t.Fatalf("resumed session fed %d slots, want %d", sessB.Fed(), half)
				}
				resumed = append(resumed, collect(t, sessB, ins, half+1, ins.T())...)
				checkSchedules(t, "checkpoint/resume", batch, resumed)
				if got := sessB.CumCost(); got != batchCost {
					t.Errorf("resumed cum cost %v != batch cost %v", got, batchCost)
				}
			})
		}
	}
}

// collectOpen feeds slots [from, to] and returns the decided configs
// without closing the session. Advisory slots must stay consecutive with
// the session's decided count (semi-online algorithms lag behind the
// feed, so the decided counter — not the fed slot — is the reference).
func collectOpen(t *testing.T, sess *stream.Session, ins *model.Instance, from, to int) []model.Config {
	t.Helper()
	var out []model.Config
	next := sess.Decided() + 1
	for ts := from; ts <= to; ts++ {
		advs, err := sess.Feed(feedInput(ins, ts))
		if err != nil {
			t.Fatalf("slot %d: %v", ts, err)
		}
		for _, adv := range advs {
			if adv.Slot != next {
				t.Fatalf("advisory for slot %d, want %d", adv.Slot, next)
			}
			next++
			out = append(out, adv.Config)
		}
	}
	return out
}

// collect is collectOpen plus Close (flushing semi-online tails).
func collect(t *testing.T, sess *stream.Session, ins *model.Instance, from, to int) []model.Config {
	t.Helper()
	out := collectOpen(t, sess, ins, from, to)
	advs, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, adv := range advs {
		out = append(out, adv.Config)
	}
	return out
}

func checkSchedules(t *testing.T, label string, batch model.Schedule, streamed []model.Config) {
	t.Helper()
	if len(streamed) != len(batch) {
		t.Fatalf("%s decided %d slots, batch has %d", label, len(streamed), len(batch))
	}
	for i := range batch {
		if !batch[i].Equal(streamed[i]) {
			t.Fatalf("%s slot %d: stream %v != batch %v", label, i+1, streamed[i], batch[i])
		}
	}
}

// A worker count in the session options reaches the algorithm's tracker
// (NewTuned) and must not change a single bit of the advisory stream.
func TestOpenSessionWorkersBitIdentical(t *testing.T) {
	sc, _ := Lookup("quickstart")
	ins := sc.Instance(1)
	open := func(workers int) *stream.Session {
		sess, err := OpenSession("alg-b", ins.Types, stream.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	serial, pooled := open(0), open(4)
	if !serial.SharesOptTracker() || !pooled.SharesOptTracker() {
		t.Fatal("Algorithm B sessions should share the algorithm's tracker")
	}
	for ts := 1; ts <= ins.T(); ts++ {
		a, err := serial.Feed(feedInput(ins, ts))
		if err != nil {
			t.Fatal(err)
		}
		b, err := pooled.Feed(feedInput(ins, ts))
		if err != nil {
			t.Fatal(err)
		}
		if !a[0].Config.Equal(b[0].Config) || a[0].CumCost != b[0].CumCost || a[0].Opt != b[0].Opt {
			t.Fatalf("slot %d: workers change the advisory: %+v vs %+v", ts, a[0], b[0])
		}
	}
}

// The registry resolves keys, display names and convenient spellings:
// lookup normalises to lower-case alphanumerics, so punctuation, case and
// separators never matter, and near-misses still fail loudly.
func TestLookupAlgorithmSpellings(t *testing.T) {
	cases := []struct {
		in      string
		wantKey string // "" means the lookup must fail
	}{
		// registry keys and case variants
		{"alg-a", "alg-a"},
		{"ALG-A", "alg-a"},
		{"alg-b", "alg-b"},
		{"receding-horizon", "receding-horizon"},
		// separator-free and alternate-separator spellings
		{"algA", "alg-a"},
		{"alg_b", "alg-b"},
		{"alg c", "alg-c"},
		{"skirental", "ski-rental"},
		{"Load-Tracking", "load-tracking"},
		{"ALLON", "all-on"},
		// display names, with and without their decorations
		{"AlgorithmA", "alg-a"},
		{"AlgorithmC(ε=1)", "alg-c"},
		{"algorithmc1", "alg-c"},
		{"RecedingHorizon(w=3)", "receding-horizon"},
		{"SkiRental", "ski-rental"},
		{"LCP", "lcp"},
		{"Approx(ε=0.5)", "approx"},
		// misses: unknown names, near-misses, junk
		{"no-such-alg", ""},
		{"alg", ""},
		{"alg-d", ""},
		{"algorithmc2", ""}, // wrong ε is a different algorithm
		{"", ""},
		{"α β γ", ""},
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			s, ok := LookupAlgorithm(tc.in)
			if tc.wantKey == "" {
				if ok {
					t.Fatalf("LookupAlgorithm(%q) resolved to %q, want a miss", tc.in, s.Key)
				}
				return
			}
			if !ok || s.Key != tc.wantKey {
				t.Fatalf("LookupAlgorithm(%q) = (%q, %v), want key %q", tc.in, s.Key, ok, tc.wantKey)
			}
		})
	}
}

func TestRegisterAlgorithmValidation(t *testing.T) {
	if err := RegisterAlgorithm(AlgSpec{}); err == nil {
		t.Error("blank spec should be rejected")
	}
	if err := RegisterAlgorithm(AlgSpec{Key: "x", Name: "X"}); err == nil {
		t.Error("spec without constructor should be rejected")
	}
	if err := RegisterAlgorithm(AlgorithmCSpec(1)); err == nil {
		t.Error("duplicate key should be rejected")
	}
}

// DefaultAlgorithms must keep the canonical result order the experiment
// study and EXPERIMENTS.md depend on.
func TestDefaultAlgorithmsOrder(t *testing.T) {
	want := []string{"AlgorithmA", "AlgorithmB", "AlgorithmC(ε=1)", "AllOn",
		"LoadTracking", "SkiRental", "LCP", "RecedingHorizon(w=3)"}
	got := DefaultAlgorithms()
	if len(got) != len(want) {
		t.Fatalf("%d default algorithms, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Errorf("position %d: %s, want %s", i, got[i].Name, want[i])
		}
	}
}

// Per-slot algorithm rejections (Algorithm C's subdivision cap) surface
// as per-algorithm errors, not panics that would abort a whole suite run.
func TestAlgSpecRunConvertsStepPanics(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 1, SwitchCost: 1e-3, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1e7}},
		}},
		Lambda: []float64{0.5},
	}
	spec := AlgorithmCSpec(0.5)
	if reason := spec.Skip(ins); reason != "" {
		t.Fatalf("gate should pass (β > 0), got %q", reason)
	}
	if _, err := spec.Run(ins); err == nil {
		t.Error("expected a per-algorithm error for the subdivision cap")
	}
}

// A session whose algorithm rejects a slot degrades to a sticky error
// instead of crashing the advisory loop.
func TestSessionSurvivesAlgorithmRejection(t *testing.T) {
	types := []model.ServerType{{
		Name: "srv", Count: 1, SwitchCost: 1e-3, MaxLoad: 1,
		Cost: model.Static{F: costfn.Constant{C: 1e7}},
	}}
	sess, err := OpenSession("alg-c", types, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.FeedDemand(0.5); err == nil {
		t.Fatal("expected the subdivision cap to surface as an error")
	}
	if _, err := sess.FeedDemand(0.5); err == nil {
		t.Error("failed session must keep refusing feeds")
	}
	// The rejected slot must not poison the replay log: the checkpoint
	// covers only successfully-stepped slots and resumes cleanly.
	cp := sess.Checkpoint()
	if len(cp.Slots) != 0 {
		t.Errorf("checkpoint holds %d slots, want 0 (rejected slot excluded)", len(cp.Slots))
	}
	if _, err := ResumeSession(cp, types, stream.Options{}); err != nil {
		t.Errorf("post-failure checkpoint must resume cleanly: %v", err)
	}
}

// Offline-only entries cannot serve live sessions.
func TestOpenSessionRejectsOfflineOnly(t *testing.T) {
	sc, _ := Lookup("quickstart")
	ins := sc.Instance(1)
	if _, err := OpenSession("approx", ins.Types, stream.Options{}); err == nil {
		t.Error("approx is offline-only and must not open a session")
	}
	if _, err := OpenSession("no-such", ins.Types, stream.Options{}); err == nil {
		t.Error("unknown algorithm must not open a session")
	}
}
