package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/solver"
)

// AutoWorkers selects one suite worker per available CPU; it shares the
// solver's sentinel so the facade can expose a single constant.
const AutoWorkers = solver.AutoWorkers

// SuiteOptions controls a suite run.
type SuiteOptions struct {
	// Workers bounds the worker pool: 0 or 1 runs serially, AutoWorkers
	// uses one worker per CPU. Results are bit-identical regardless of
	// the worker count: scenarios are statically partitioned, every work
	// unit owns its evaluator, and each unit depends only on (scenario,
	// seed).
	Workers int
	// Seed parameterises every scenario's instance generator.
	Seed int64
	// KeepSchedules retains each algorithm's schedule on the result
	// (memory O(T·d) per row) for rendering and post-processing.
	KeepSchedules bool
}

// Result is one scenario's outcome: the optimum plus one metrics row per
// algorithm, OPT first.
type Result struct {
	Scenario string    `json:"scenario"`
	Seed     int64     `json:"seed"`
	Types    int       `json:"types"`
	Slots    int       `json:"slots"`
	Opt      float64   `json:"opt"`
	Rows     []Metrics `json:"rows"`
	// Skipped lists inapplicable algorithms as "name: reason".
	Skipped []string `json:"skipped,omitempty"`

	// Schedules holds one schedule per row (when requested via
	// SuiteOptions.KeepSchedules); excluded from JSON.
	Schedules []model.Schedule `json:"-"`
}

// Table renders the result's metric rows as an aligned text table.
func (r *Result) Table() *Table { return metricsTable(r.Rows) }

// SuiteResult is the outcome of a whole suite run, ordered like the input
// scenario slice.
type SuiteResult struct {
	Seed    int64    `json:"seed"`
	Results []Result `json:"results"`
}

// optSolves counts exact-optimum solves for the engine-level invariant
// "OPT is solved once per instance per suite run"; tests read it.
var optSolves atomic.Int64

// Evaluate runs one scenario: it builds the instance, solves the optimum
// exactly once, then runs and measures every applicable algorithm with a
// single shared evaluator.
func Evaluate(sc Scenario, seed int64, keepSchedules bool) (Result, error) {
	ins := sc.Instance(seed)
	if err := ins.Validate(); err != nil {
		return Result{}, fmt.Errorf("engine: scenario %q: %v", sc.Name, err)
	}
	optSolves.Add(1)
	opt, err := solver.SolveOptimal(ins)
	if err != nil {
		return Result{}, fmt.Errorf("engine: scenario %q: %v", sc.Name, err)
	}
	res := Result{
		Scenario: sc.Name,
		Seed:     seed,
		Types:    ins.D(),
		Slots:    ins.T(),
		Opt:      opt.Cost(),
	}
	ev := model.NewEvaluator(ins)
	record := func(name string, sched model.Schedule) {
		res.Rows = append(res.Rows, MeasureWith(ev, sched, name, res.Opt))
		if keepSchedules {
			res.Schedules = append(res.Schedules, sched)
		}
	}
	record("OPT", opt.Schedule)
	for _, spec := range sc.specs() {
		if spec.Skip != nil {
			if reason := spec.Skip(ins); reason != "" {
				res.Skipped = append(res.Skipped, spec.Name+": "+reason)
				continue
			}
		}
		sched, err := spec.Run(ins)
		if err != nil {
			return Result{}, fmt.Errorf("engine: scenario %q, algorithm %s: %v", sc.Name, spec.Name, err)
		}
		if err := ins.Feasible(sched); err != nil {
			return Result{}, fmt.Errorf("engine: scenario %q: %s produced an infeasible schedule: %v",
				sc.Name, spec.Name, err)
		}
		record(spec.Name, sched)
	}
	return res, nil
}

// RunSuite fans the scenarios out over a bounded worker pool and collects
// one Result per scenario, in input order. It reuses the determinism
// discipline of the DP layer evaluator (solver/parallel.go): a static
// chunk partition and per-unit state make the output bit-identical for
// any worker count. The first scenario error aborts the run.
//
// Cross-core audit: each worker owns everything it writes. Work units
// share only read-only scenario specs and the process-global layer memo,
// whose read path is lock-free (solver/gcache.go — its sharded RCU
// design exists for exactly this fan-out plus the serving tier); results
// land in worker-local chunk buffers and are copied into the ordered
// output after the barrier, so no two workers ever store into the same
// slice backing array while running. The optSolves probe below is the
// one shared write left — one atomic add per scenario, far off any hot
// path.
func RunSuite(scenarios []Scenario, opts SuiteOptions) (*SuiteResult, error) {
	workers := opts.Workers
	if workers == AutoWorkers {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	out := &SuiteResult{Seed: opts.Seed}
	results := make([]Result, len(scenarios))
	if workers <= 1 {
		for i := range scenarios {
			var err error
			if results[i], err = Evaluate(scenarios[i], opts.Seed, opts.KeepSchedules); err != nil {
				return nil, err
			}
		}
		out.Results = results
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(scenarios) + workers - 1) / workers
	type chunkOut struct {
		lo      int
		results []Result
		err     error
	}
	chunks := make([]*chunkOut, 0, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(scenarios) {
			break
		}
		hi := lo + chunk
		if hi > len(scenarios) {
			hi = len(scenarios)
		}
		co := &chunkOut{lo: lo, results: make([]Result, hi-lo)}
		chunks = append(chunks, co)
		wg.Add(1)
		go func(lo, hi int, co *chunkOut) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var err error
				if co.results[i-lo], err = Evaluate(scenarios[i], opts.Seed, opts.KeepSchedules); err != nil {
					co.err = err
					return
				}
			}
		}(lo, hi, co)
	}
	wg.Wait()
	for _, co := range chunks {
		if co.err != nil {
			return nil, co.err
		}
		copy(results[co.lo:], co.results)
	}
	out.Results = results
	return out, nil
}
