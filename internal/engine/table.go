package engine

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a minimal aligned text-table builder used by the result sinks,
// the experiment binaries and the EXPERIMENTS.md generator.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Add appends a row; missing cells render empty, surplus cells panic.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("engine: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the table, aligned with spaces, first column
// left-justified and the rest right-justified (numeric convention).
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (no quoting; cells never contain
// commas in this codebase).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// FmtF formats a cost for tables.
func FmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// FmtRatio formats a competitive ratio.
func FmtRatio(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
