package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/costfn"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/workload"
)

// ---------- E5: Theorems 16/21 ----------

// E5ApproxRatio sweeps γ and compares the reduced-lattice schedule's cost
// to the exact optimum, checking C(X^γ) <= (2γ−1)·C(X*).
func E5ApproxRatio(seed int64, instances int) Report {
	rep := Report{
		ID:    "E5a",
		Title: "(1+ε)-approximation: measured factor vs. Theorem 16 bound (2γ−1)",
		Paper: "Theorem 16: the shortest path in G^γ is a (2γ−1)-approximation; γ = 1+ε/2 gives 1+ε (Theorem 21)",
		Pass:  true,
	}
	rep.Table = engine.NewTable("gamma", "eps=2γ-2", "instances", "mean factor", "max factor", "bound 2γ-1", "holds")
	for _, gamma := range []float64{1.1, 1.25, 1.5, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		var sum, max float64
		holds := true
		for i := 0; i < instances; i++ {
			ins := randomStatic(rng, 2, 14, 10+rng.Intn(6))
			opt, err := solver.SolveOptimal(ins)
			if err != nil {
				panic(err)
			}
			apx, err := solver.Solve(ins, solver.Options{Gamma: gamma})
			if err != nil {
				panic(err)
			}
			f := apx.Cost() / opt.Cost()
			holds = holds && f <= (2*gamma-1)+tol
			sum += f
			if f > max {
				max = f
			}
		}
		rep.Pass = rep.Pass && holds
		rep.Table.Add(fmt.Sprintf("%g", gamma), fmt.Sprintf("%g", 2*gamma-2),
			fmt.Sprintf("%d", instances),
			fmt.Sprintf("%.4f", sum/float64(instances)), fmt.Sprintf("%.4f", max),
			fmt.Sprintf("%.2f", 2*gamma-1), fmt.Sprintf("%v", holds))
	}
	rep.Notes = append(rep.Notes,
		"Measured factors sit near 1 even for large γ: the reduced lattice keeps {0, 1, m_j} and both roundings of every γ-power, which is plenty for diurnal-style optima. The bound is worst-case.")
	return rep
}

// E5ApproxRuntime demonstrates the runtime claim of Theorem 21: lattice
// size and solve time scale with Π_j log m_j instead of Π_j m_j.
func E5ApproxRuntime() Report {
	rep := Report{
		ID:    "E5b",
		Title: "(1+ε)-approximation: lattice size and runtime vs. fleet size",
		Paper: "Theorem 21: runtime O(T·ε^{-d}·Π_j log m_j) — polynomial despite the exponential full lattice",
		Pass:  true,
	}
	rep.Table = engine.NewTable("m per type", "full lattice", "reduced (ε=0.5)", "reduced (ε=0.1)", "solve ms (ε=0.5)")
	T := 48
	for _, m := range []int{64, 256, 1024, 4096} {
		lambda := workload.Diurnal(T, float64(m)/20, float64(m), 24, 0)
		ins := &model.Instance{
			Types: []model.ServerType{
				{Count: m, SwitchCost: 3, MaxLoad: 1,
					Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
				{Count: m / 2, SwitchCost: 8, MaxLoad: 4,
					Cost: model.Static{F: costfn.Affine{Idle: 2.5, Rate: 0.4}}},
			},
			Lambda: lambda,
		}
		full := (m + 1) * (m/2 + 1)
		red05 := latticeSize(ins, 1.25)
		red01 := latticeSize(ins, 1.05)
		start := time.Now()
		apx, err := solver.SolveApprox(ins, 0.5)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		if apx.LatticeSize != red05 {
			rep.Pass = false
		}
		rep.Table.Add(fmt.Sprintf("%d", m), fmt.Sprintf("%d", full),
			fmt.Sprintf("%d", red05), fmt.Sprintf("%d", red01),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000))
	}
	rep.Notes = append(rep.Notes,
		"Quadrupling the fleet multiplies the full lattice ~16x but adds only a few levels per reduced axis — the log² growth of Theorem 21 for d = 2.")
	return rep
}

func latticeSize(ins *model.Instance, gamma float64) int {
	size := 1
	for _, st := range ins.Types {
		size *= len(grid.ReducedAxis(st.Count, gamma))
	}
	return size
}

// ---------- E6: Theorem 22 ----------

// E6TimeVarying exercises time-dependent fleet sizes: a maintenance window
// and a commissioning event, solved exactly and approximately.
func E6TimeVarying(seed int64, instances int) Report {
	rep := Report{
		ID:    "E6",
		Title: "Time-varying fleet sizes: exactness and approximation (Section 4.3)",
		Paper: "Theorem 22: the (1+ε)-approximation extends to time-dependent m_{t,j} in O(ε^{-d}·Σ_t Π_j log m_{t,j}) time",
		Pass:  true,
	}
	rep.Table = engine.NewTable("instance", "opt cost", "approx (ε=0.5)", "factor", "bound", "feasible", "holds")
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < instances; i++ {
		ins := randomStatic(rng, 2, 6, 12)
		counts := make([][]int, ins.T())
		for t := 1; t <= ins.T(); t++ {
			row := []int{ins.Types[0].Count, ins.Types[1].Count}
			// Random maintenance: shrink one type if feasibility allows.
			j := rng.Intn(2)
			for row[j] > 0 {
				row[j]--
				cap := float64(row[0])*ins.Types[0].MaxLoad + float64(row[1])*ins.Types[1].MaxLoad
				if cap < ins.Lambda[t-1] || rng.Intn(2) == 0 {
					if cap < ins.Lambda[t-1] {
						row[j]++
					}
					break
				}
			}
			counts[t-1] = row
		}
		ins.Counts = counts
		opt, err := solver.SolveOptimal(ins)
		if err != nil {
			panic(err)
		}
		apx, err := solver.SolveApprox(ins, 0.5)
		if err != nil {
			panic(err)
		}
		factor := apx.Cost() / opt.Cost()
		feasible := ins.Feasible(apx.Schedule) == nil && ins.Feasible(opt.Schedule) == nil
		holds := factor <= 1.5+tol && feasible
		rep.Pass = rep.Pass && holds
		rep.Table.Add(fmt.Sprintf("random #%d", i+1), engine.FmtF(opt.Cost()), engine.FmtF(apx.Cost()),
			fmt.Sprintf("%.4f", factor), "1.50", fmt.Sprintf("%v", feasible), fmt.Sprintf("%v", holds))
	}
	return rep
}
