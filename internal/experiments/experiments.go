// Package experiments defines the reproduction study: one experiment per
// paper artefact (its five figures and every quantitative theorem), each
// producing a table with the paper's proven bound next to the measured
// value. cmd/experiments renders the full study as EXPERIMENTS.md;
// bench_test.go at the repository root exposes each experiment as a
// testing.B benchmark.
//
// The paper proves worst-case guarantees rather than reporting empirical
// tables, so "reproduction" here means: (a) regenerate every figure from
// the production code, pinning the values the paper prints, and
// (b) measure the quantities each theorem bounds — competitive ratios,
// approximation factors, lattice sizes, runtimes — and verify the bounds
// hold while recording where typical-case behaviour lands.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	Paper string // the paper's claim being checked
	Table *engine.Table
	Notes []string
	Pass  bool // measured values respect every proven bound
}

// tol absorbs float accumulation when checking proven inequalities.
const tol = 1e-9

// ---------- shared instance generators ----------

// randomStatic generates a feasible instance with time-independent costs,
// mixed cost families and strictly positive switching costs.
func randomStatic(rng *rand.Rand, d, maxM, T int) *model.Instance {
	types := make([]model.ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(maxM)
		capacity := 0.5 + rng.Float64()*2
		var f costfn.Func
		switch rng.Intn(3) {
		case 0:
			f = costfn.Constant{C: 0.2 + rng.Float64()*2}
		case 1:
			f = costfn.Affine{Idle: 0.2 + rng.Float64(), Rate: rng.Float64() * 2}
		default:
			f = costfn.Power{Idle: 0.2 + rng.Float64(), Coef: 0.2 + rng.Float64(), Exp: 1 + rng.Float64()*2}
		}
		types[j] = model.ServerType{
			Count:      count,
			SwitchCost: 0.5 + rng.Float64()*6,
			MaxLoad:    capacity,
			Cost:       model.Static{F: f},
		}
		totalCap += float64(count) * capacity
	}
	lambda := make([]float64, T)
	for t := range lambda {
		if rng.Intn(4) == 0 {
			lambda[t] = 0
		} else {
			lambda[t] = rng.Float64() * totalCap * 0.9
		}
	}
	return &model.Instance{Types: types, Lambda: lambda}
}

// modulate turns a static instance into one with time-dependent idle
// costs (price-signal style).
func modulate(rng *rand.Rand, ins *model.Instance) *model.Instance {
	for j := range ins.Types {
		base := ins.Types[j].Cost.(model.Static).F
		scale := make([]float64, ins.T())
		for t := range scale {
			scale[t] = 0.25 + rng.Float64()*1.75
		}
		ins.Types[j].Cost = model.Modulated{F: base, Scale: scale}
	}
	return ins
}

// ratioAgainstOpt runs an online algorithm and returns C(alg)/OPT.
func ratioAgainstOpt(ins *model.Instance, alg core.Online) float64 {
	r, err := engine.RatioAgainstOpt(ins, alg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return r
}

// ---------- E1: Theorem 8 ----------

// E1CompetitiveA measures Algorithm A's competitive ratio on random
// instances with time-independent costs against the proven bound 2d+1.
func E1CompetitiveA(seed int64, perD int) Report {
	rep := Report{
		ID:    "E1",
		Title: "Algorithm A: competitive ratio vs. Theorem 8 bound (2d+1)",
		Paper: "Theorem 8: C(X^A) <= (2d+1)·C(OPT) for time-independent operating costs",
		Pass:  true,
	}
	rep.Table = engine.NewTable("d", "instances", "mean ratio", "max ratio", "bound 2d+1", "holds")
	rng := rand.New(rand.NewSource(seed))
	for d := 1; d <= 3; d++ {
		var sum, max float64
		for i := 0; i < perD; i++ {
			ins := randomStatic(rng, d, 4-d+1, 8+rng.Intn(6))
			a, err := core.NewAlgorithmA(ins.Types)
			if err != nil {
				panic(err)
			}
			r := ratioAgainstOpt(ins, a)
			sum += r
			if r > max {
				max = r
			}
		}
		bound := 2*float64(d) + 1
		holds := max <= bound+tol
		rep.Pass = rep.Pass && holds
		rep.Table.Add(fmt.Sprintf("%d", d), fmt.Sprintf("%d", perD),
			fmt.Sprintf("%.3f", sum/float64(perD)), fmt.Sprintf("%.3f", max),
			fmt.Sprintf("%.0f", bound), fmt.Sprintf("%v", holds))
	}
	rep.Notes = append(rep.Notes,
		"Random mixed-cost instances (constant/affine/power families); the measured ratio is far below the worst-case bound, as expected off adversarial inputs.")
	return rep
}

// ---------- E2: Corollary 9 ----------

// E2ConstantCosts is E1 restricted to load- and time-independent costs,
// where the bound tightens to 2d.
func E2ConstantCosts(seed int64, perD int) Report {
	rep := Report{
		ID:    "E2",
		Title: "Algorithm A on constant costs: ratio vs. Corollary 9 bound (2d)",
		Paper: "Corollary 9: with load- and time-independent costs, Algorithm A is 2d-competitive (optimal)",
		Pass:  true,
	}
	rep.Table = engine.NewTable("d", "instances", "mean ratio", "max ratio", "bound 2d", "holds")
	rng := rand.New(rand.NewSource(seed))
	for d := 1; d <= 3; d++ {
		var sum, max float64
		for i := 0; i < perD; i++ {
			ins := randomStatic(rng, d, 4-d+1, 8+rng.Intn(6))
			for j := range ins.Types {
				ins.Types[j].Cost = model.Static{F: costfn.Constant{C: 0.2 + rng.Float64()*2}}
			}
			a, err := core.NewAlgorithmA(ins.Types)
			if err != nil {
				panic(err)
			}
			r := ratioAgainstOpt(ins, a)
			sum += r
			if r > max {
				max = r
			}
		}
		bound := 2 * float64(d)
		holds := max <= bound+tol
		rep.Pass = rep.Pass && holds
		rep.Table.Add(fmt.Sprintf("%d", d), fmt.Sprintf("%d", perD),
			fmt.Sprintf("%.3f", sum/float64(perD)), fmt.Sprintf("%.3f", max),
			fmt.Sprintf("%.0f", bound), fmt.Sprintf("%v", holds))
	}
	return rep
}

// ---------- E3: Theorem 13 ----------

// E3CompetitiveB measures Algorithm B on time-dependent costs against
// 2d+1+c(I).
func E3CompetitiveB(seed int64, perD int) Report {
	rep := Report{
		ID:    "E3",
		Title: "Algorithm B: competitive ratio vs. Theorem 13 bound (2d+1+c(I))",
		Paper: "Theorem 13: C(X^B) <= (2d+1+c(I))·C(OPT), c(I) = Σ_j max_t f_{t,j}(0)/β_j",
		Pass:  true,
	}
	rep.Table = engine.NewTable("d", "instances", "mean ratio", "max ratio", "max bound", "holds")
	rng := rand.New(rand.NewSource(seed))
	for d := 1; d <= 3; d++ {
		var sum, max, maxBound float64
		holds := true
		for i := 0; i < perD; i++ {
			ins := modulate(rng, randomStatic(rng, d, 4-d+1, 8+rng.Intn(6)))
			b, err := core.NewAlgorithmB(ins.Types)
			if err != nil {
				panic(err)
			}
			r := ratioAgainstOpt(ins, b)
			bound := core.RatioBoundB(ins)
			if bound > maxBound {
				maxBound = bound
			}
			holds = holds && r <= bound+tol
			sum += r
			if r > max {
				max = r
			}
		}
		rep.Pass = rep.Pass && holds
		rep.Table.Add(fmt.Sprintf("%d", d), fmt.Sprintf("%d", perD),
			fmt.Sprintf("%.3f", sum/float64(perD)), fmt.Sprintf("%.3f", max),
			fmt.Sprintf("%.2f", maxBound), fmt.Sprintf("%v", holds))
	}
	rep.Notes = append(rep.Notes,
		"c(I) varies per instance; the bound column reports the largest 2d+1+c(I) in the batch, and each instance was checked against its own bound.")
	return rep
}

// ---------- E4: Theorem 15 ----------

// E4CompetitiveC sweeps ε for Algorithm C on a fixed batch of
// time-dependent instances.
func E4CompetitiveC(seed int64, instances int) Report {
	rep := Report{
		ID:    "E4",
		Title: "Algorithm C: ratio vs. Theorem 15 bound (2d+1+ε) across ε",
		Paper: "Theorem 15: for any ε > 0, Algorithm C is (2d+1+ε)-competitive",
		Pass:  true,
	}
	rep.Table = engine.NewTable("eps", "instances", "mean ratio", "max ratio", "max ñ_t", "bound (d=2)", "holds")
	for _, eps := range []float64{2, 1, 0.5, 0.25} {
		rng := rand.New(rand.NewSource(seed)) // same instances per ε
		var sum, max float64
		maxN := 1
		holds := true
		for i := 0; i < instances; i++ {
			ins := modulate(rng, randomStatic(rng, 2, 3, 8+rng.Intn(4)))
			c, err := core.NewAlgorithmC(ins.Types, eps)
			if err != nil {
				panic(err)
			}
			r := ratioAgainstOpt(ins, c)
			if c.MaxN() > maxN {
				maxN = c.MaxN()
			}
			holds = holds && r <= c.RatioBound()+tol
			sum += r
			if r > max {
				max = r
			}
		}
		rep.Pass = rep.Pass && holds
		rep.Table.Add(fmt.Sprintf("%g", eps), fmt.Sprintf("%d", instances),
			fmt.Sprintf("%.3f", sum/float64(instances)), fmt.Sprintf("%.3f", max),
			fmt.Sprintf("%d", maxN), fmt.Sprintf("%.2f", 5+eps), fmt.Sprintf("%v", holds))
	}
	rep.Notes = append(rep.Notes,
		"Smaller ε tightens the guarantee but multiplies the sub-slot count ñ_t (and hence Algorithm B invocations) — the accuracy/effort trade-off of Section 3.2.")
	return rep
}

// ---------- E7: lower-bound pressure ----------

// E7Adversarial measures Algorithm A on adversarial traces designed to
// approach the 2d lower bound of the predecessor paper [5]: the analytic
// d=1 spike train (with a β sweep showing the ratio climbing toward 2)
// plus a hill-climbing search over d=2 on/off traces.
func E7Adversarial() Report {
	rep := Report{
		ID:    "E7",
		Title: "Adversarial traces: pushing Algorithm A toward the 2d lower bound",
		Paper: "[Albers–Quedenfeld CIAC 2021]: no deterministic online algorithm beats 2d; Theorems 8/13 are nearly tight",
		Pass:  true,
	}
	rep.Table = engine.NewTable("instance", "d", "measured ratio", "predicted", "lower bound 2d", "upper bound", "within")

	// d=1 ski-rental spike trains: Algorithm A pays ≈ 2β per spike while
	// OPT power-cycles for β+1; the ratio 2β/(β+1) → 2 = 2d.
	for _, beta := range []float64{4, 9, 19, 49} {
		ins, predicted := adversary.SkiRentalSpikes(beta, 6)
		a, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			panic(err)
		}
		r := ratioAgainstOpt(ins, a)
		ok := r <= 3+tol
		rep.Pass = rep.Pass && ok
		rep.Table.Add(fmt.Sprintf("spike train β=%g", beta), "1",
			fmt.Sprintf("%.3f", r), fmt.Sprintf("%.3f", predicted), "2", "3",
			fmt.Sprintf("%v", ok))
	}

	// d=2 hill-climbing adversary search.
	res, err := adversary.HillClimb(adversary.Config{
		Types: []model.ServerType{
			{Count: 1, SwitchCost: 8, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 1}}},
			{Count: 1, SwitchCost: 14, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 0.6}}},
		},
		T:    36,
		Peak: 1, Iters: 150, Seed: 1337,
		NewAlg: func(ins *model.Instance) (core.Online, error) {
			return core.NewAlgorithmA(ins.Types)
		},
	})
	if err != nil {
		panic(err)
	}
	ok := res.Ratio <= 5+tol
	rep.Pass = rep.Pass && ok
	rep.Table.Add(fmt.Sprintf("hill climb (%d evals)", res.Evals), "2",
		fmt.Sprintf("%.3f", res.Ratio), "-", "4", "5", fmt.Sprintf("%v", ok))
	rep.Notes = append(rep.Notes,
		"The spike trains certify near-tightness for d=1 (ratio → 2 with growing β); the d=2 local search is weaker than the recursive adversary of [5] and lands below 4 while still respecting the 2d+1 upper bound.")
	return rep
}

// ---------- E8: cost savings ----------

// E8CostSavings is the Lin-et-al-style evaluation: savings of each policy
// relative to static provisioning on diurnal CPU+GPU workloads.
func E8CostSavings(seed int64) Report {
	rep := Report{
		ID:    "E8",
		Title: "Cost savings vs. static provisioning (diurnal CPU+GPU cluster)",
		Paper: "Motivation (Section 1, after Lin et al.): right-sizing saves the idle cost of overnight troughs",
		Pass:  true,
	}
	rep.Table = engine.NewTable("peak/mean", "algorithm", "cost", "saving vs AllOn", "ratio vs OPT")
	rng := rand.New(rand.NewSource(seed))
	for _, ptm := range []float64{2, 4, 8} {
		peak := 24.0
		base := peak * (2/ptm - 1)
		if base < 0 {
			base = 0
		}
		trace := workload.DiurnalNoisy(rng, 72, base, peak, 24, 0.2)
		ins := &model.Instance{
			Types: []model.ServerType{
				{Name: "cpu", Count: 16, SwitchCost: 2, MaxLoad: 1,
					Cost: model.Static{F: costfn.Power{Idle: 1, Coef: 0.6, Exp: 2}}},
				{Name: "gpu", Count: 4, SwitchCost: 15, MaxLoad: 4,
					Cost: model.Static{F: costfn.Affine{Idle: 4, Rate: 0.3}}},
			},
			Lambda: trace,
		}
		cmp, err := engine.NewComparison(ins)
		if err != nil {
			panic(err)
		}
		algA, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			panic(err)
		}
		cmp.RunOnline(algA)
		for _, mk := range []func(*model.Instance) (core.Online, error){
			func(i *model.Instance) (core.Online, error) { return baseline.NewAllOn(i.Types) },
			func(i *model.Instance) (core.Online, error) { return baseline.NewLoadTracking(i.Types) },
			func(i *model.Instance) (core.Online, error) { return baseline.NewSkiRental(i.Types) },
			func(i *model.Instance) (core.Online, error) { return baseline.NewLookahead(i.Types, 3) },
		} {
			alg, err := mk(ins)
			if err != nil {
				panic(err)
			}
			cmp.RunOnline(alg)
		}
		var allOn float64
		for _, m := range cmp.Row {
			if m.Name == "AllOn" {
				allOn = m.Total
			}
		}
		for _, m := range cmp.Row {
			saving := (1 - m.Total/allOn) * 100
			rep.Table.Add(fmt.Sprintf("%gx", ptm), m.Name, engine.FmtF(m.Total),
				fmt.Sprintf("%.1f%%", saving), engine.FmtRatio(m.Ratio))
			if m.Name == "AlgorithmA" && m.Ratio > core.RatioBoundA(ins)+tol {
				rep.Pass = false
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"Higher peak-to-mean ratios leave more idle capacity overnight, so every dynamic policy saves more; Algorithm A tracks the offline optimum within a few percent while honouring its worst-case guarantee.")
	return rep
}
