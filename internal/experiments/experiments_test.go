package experiments

import (
	"strings"
	"testing"
)

// Every experiment must pass its own bound checks; these are the
// regression gates for the whole reproduction study (small parameters to
// keep the test suite fast — the benchmarks run the full sizes).

func TestFigureExperimentsPass(t *testing.T) {
	for _, rep := range []Report{F1(), F2(), F3(), F4(), F5()} {
		if !rep.Pass {
			t.Errorf("%s failed its golden check", rep.ID)
		}
		if rep.Table == nil || rep.Title == "" || rep.Paper == "" {
			t.Errorf("%s report incomplete", rep.ID)
		}
	}
}

func TestE1Pass(t *testing.T) {
	rep := E1CompetitiveA(99, 4)
	if !rep.Pass {
		t.Fatalf("E1 bound violated:\n%s", rep.Table)
	}
}

func TestE2Pass(t *testing.T) {
	rep := E2ConstantCosts(99, 4)
	if !rep.Pass {
		t.Fatalf("E2 bound violated:\n%s", rep.Table)
	}
}

func TestE3Pass(t *testing.T) {
	rep := E3CompetitiveB(99, 4)
	if !rep.Pass {
		t.Fatalf("E3 bound violated:\n%s", rep.Table)
	}
}

func TestE4Pass(t *testing.T) {
	rep := E4CompetitiveC(99, 3)
	if !rep.Pass {
		t.Fatalf("E4 bound violated:\n%s", rep.Table)
	}
}

func TestE5RatioPass(t *testing.T) {
	rep := E5ApproxRatio(99, 4)
	if !rep.Pass {
		t.Fatalf("E5a bound violated:\n%s", rep.Table)
	}
}

func TestE6Pass(t *testing.T) {
	rep := E6TimeVarying(99, 3)
	if !rep.Pass {
		t.Fatalf("E6 bound violated:\n%s", rep.Table)
	}
}

func TestE7Pass(t *testing.T) {
	rep := E7Adversarial()
	if !rep.Pass {
		t.Fatalf("E7 bound violated:\n%s", rep.Table)
	}
	// The spike trains must demonstrate the ratio climbing toward 2.
	md := rep.Table.Markdown()
	if !strings.Contains(md, "1.960") {
		t.Errorf("β=49 spike train should measure 1.960:\n%s", md)
	}
}

func TestE8Pass(t *testing.T) {
	rep := E8CostSavings(99)
	if !rep.Pass {
		t.Fatalf("E8 bound violated:\n%s", rep.Table)
	}
	// AllOn must never beat OPT.
	md := rep.Table.Markdown()
	if !strings.Contains(md, "AllOn") || !strings.Contains(md, "OPT") {
		t.Error("expected AllOn and OPT rows")
	}
}

func TestReportRender(t *testing.T) {
	rep := F3()
	out := rep.Render()
	for _, want := range []string{"## F3", "**Paper:**", "Bound respected", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := E1CompetitiveA(5, 3)
	b := E1CompetitiveA(5, 3)
	if a.Table.Markdown() != b.Table.Markdown() {
		t.Error("same seed must reproduce the experiment")
	}
}

func TestE9Pass(t *testing.T) {
	rep := E9IntegralityGap(99, 3)
	if !rep.Pass {
		t.Fatalf("E9 violated: fractional relaxation must lower-bound the discrete optimum:\n%s", rep.Table)
	}
}

func TestE10Pass(t *testing.T) {
	rep := E10ScaledTracker(99, 2)
	if !rep.Pass {
		t.Fatalf("E10 violated:\n%s", rep.Table)
	}
}

func TestE11Pass(t *testing.T) {
	rep := E11RoundingBlowup(99, 4)
	if !rep.Pass {
		t.Fatalf("E11 violated:\n%s", rep.Table)
	}
	md := rep.Table.Markdown()
	if !strings.Contains(md, "oscillation") {
		t.Error("expected the oscillation pathology rows")
	}
}

func TestE12Pass(t *testing.T) {
	rep := E12ProofTerms(99, 6)
	if !rep.Pass {
		t.Fatalf("E12 violated a proof-step inequality:\n%s", rep.Table)
	}
}
