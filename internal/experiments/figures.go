package experiments

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/figures"
)

// figureReport wraps a figure rendering as an experiment, with Pass
// asserting the golden values the paper prints.
func figureReport(id, title, paper string, render func() string, golden func() bool) Report {
	rep := Report{
		ID:    id,
		Title: title,
		Paper: paper,
		Pass:  golden(),
	}
	rep.Table = engine.NewTable("rendering")
	rep.Table.Add("(see cmd/paperfig -fig " + id[1:] + ")")
	rep.Notes = append(rep.Notes, "```\n"+render()+"```")
	return rep
}

// F1 reproduces Figure 1 (Algorithm A behaviour, t̄ = 5).
func F1() Report {
	return figureReport("F1",
		"Figure 1: Algorithm A behaviour for one type, t̄_j = 5",
		"Each power-up runs exactly t̄_j = ⌈β_j/f_j(0)⌉ slots and x^A >= x̂ throughout",
		figures.RenderFigure1,
		func() bool {
			d := figures.Figure1()
			for i := range d.XHat {
				if d.XAlgo[i] < d.XHat[i] {
					return false
				}
			}
			return d.Tbar == 5
		})
}

// F2 reproduces Figure 2 (blocks and special time slots).
func F2() Report {
	return figureReport("F2",
		"Figure 2: blocks A_{j,i} and special time slots τ_{j,k}",
		"Index sets B_{j,1} = {1,2}, B_{j,2} = {3,4}, B_{j,3} = {5,6,7}; consecutive τ at least t̄ apart",
		figures.RenderFigure2,
		func() bool {
			d := figures.Figure2()
			want := [][]int{{1, 2}, {3, 4}, {5, 6, 7}}
			if len(d.BSets) != len(want) {
				return false
			}
			for k := range want {
				if len(d.BSets[k]) != len(want[k]) {
					return false
				}
				for i := range want[k] {
					if d.BSets[k][i] != want[k][i] {
						return false
					}
				}
			}
			return true
		})
}

// F3 reproduces Figure 3 (Algorithm B on the paper's exact trace).
func F3() Report {
	return figureReport("F3",
		"Figure 3: Algorithm B behaviour, β_j = 6, the paper's exact 12-slot trace",
		"t̄_{2,j} = 2, W_5 = {1,2}, W_9 ∋ 4, W_10 ∋ 8, and the plotted x^B staircase",
		figures.RenderFigure3,
		func() bool {
			d := figures.Figure3()
			if d.TBars[1] != 2 {
				return false
			}
			if len(d.WSets[4]) != 2 || d.WSets[4][0] != 1 || d.WSets[4][1] != 2 {
				return false
			}
			want := []int{1, 2, 2, 3, 1, 1, 1, 2, 1, 0, 0, 0}
			for i := range want {
				if d.XAlgo[i] != want[i] {
					return false
				}
			}
			return true
		})
}

// F4 reproduces Figure 4 (graph representation and its shortest path).
func F4() Report {
	return figureReport("F4",
		"Figure 4: graph representation, d = 2, T = 2, m = (2,1)",
		"24 vertices; shortest path realises x_1 = (2,0), x_2 = (1,1)",
		figures.RenderFigure4,
		func() bool {
			out := figures.RenderFigure4()
			return strings.Contains(out, "x_1=(2, 0)") && strings.Contains(out, "x_2=(1, 1)")
		})
}

// F5 reproduces Figure 5 (construction of X', γ = 2, m = 10).
func F5() Report {
	return figureReport("F5",
		"Figure 5: construction of X', γ = 2, m_j = 10",
		"M^γ_j = {0,1,2,4,8,10}; X' stays within [x*, (2γ−1)x*] on the lattice",
		figures.RenderFigure5,
		func() bool {
			d := figures.Figure5()
			want := []int{0, 1, 2, 4, 8, 10}
			if len(d.Axis) != len(want) {
				return false
			}
			for i := range want {
				if d.Axis[i] != want[i] {
					return false
				}
			}
			for i := range d.XStar {
				if d.XPrime[i] < d.XStar[i] || float64(d.XPrime[i]) > 3*float64(d.XStar[i]) {
					return false
				}
			}
			return true
		})
}

// All runs the complete reproduction study with default parameters.
func All() []Report {
	return []Report{
		F1(), F2(), F3(), F4(), F5(),
		E1CompetitiveA(1, 12),
		E2ConstantCosts(2, 12),
		E3CompetitiveB(3, 12),
		E4CompetitiveC(4, 8),
		E5ApproxRatio(5, 10),
		E5ApproxRuntime(),
		E6TimeVarying(6, 6),
		E7Adversarial(),
		E8CostSavings(8),
		E9IntegralityGap(9, 5),
		E10ScaledTracker(10, 4),
		E11RoundingBlowup(11, 8),
		E12ProofTerms(12, 12),
	}
}

// Render formats a report as a markdown section.
func (r Report) Render() string {
	out := fmt.Sprintf("## %s — %s\n\n**Paper:** %s\n\n**Bound respected:** %v\n\n%s\n",
		r.ID, r.Title, r.Paper, r.Pass, r.Table.Markdown())
	for _, n := range r.Notes {
		out += "\n" + n + "\n"
	}
	return out
}
