package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/engine"
	"repro/internal/fractional"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/workload"
)

// ---------- E9: integrality gap (open problem, related work) ----------

// E9IntegralityGap measures discrete-vs-fractional optimal costs. The
// paper's related-work section calls rounding fractional schedules without
// blowing up the switching cost an open problem; this experiment measures
// how large the gap actually gets on random and structured instances.
func E9IntegralityGap(seed int64, instances int) Report {
	rep := Report{
		ID:    "E9",
		Title: "Integrality gap: discrete optimum vs. fractional relaxation",
		Paper: "Related work: rounding fractional schedules is open; the gap quantifies what rounding must pay",
		Pass:  true,
	}
	rep.Table = engine.NewTable("workload", "instances", "mean gap", "max gap", "note")
	rng := rand.New(rand.NewSource(seed))

	measure := func(name string, gen func(i int) *model.Instance, note string) {
		var sum, max float64
		for i := 0; i < instances; i++ {
			ins := gen(i)
			gap, _, _, err := fractional.IntegralityGap(ins, 4, 0)
			if err != nil {
				panic(err)
			}
			if gap < 1-1e-6 { // scaled-function bisection noise
				rep.Pass = false // fractional relaxation can never cost more
			}
			sum += gap
			if gap > max {
				max = gap
			}
		}
		rep.Table.Add(name, fmt.Sprintf("%d", instances),
			fmt.Sprintf("%.4f", sum/float64(instances)), fmt.Sprintf("%.4f", max), note)
	}

	measure("random mixed", func(i int) *model.Instance {
		return randomStatic(rng, 1+i%2, 3, 6)
	}, "small fleets: rounding up costs a fraction of a server")

	measure("sub-server demand", func(i int) *model.Instance {
		// Demands far below one server's capacity maximise the gap: the
		// discrete setting must run whole servers.
		return &model.Instance{
			Types: []model.ServerType{{
				Count: 2, SwitchCost: 1 + float64(i),
				MaxLoad: 1,
				Cost:    mustStatic(0.5, 1),
			}},
			Lambda: []float64{0.1, 0.3, 0.2, 0.15},
		}
	}, "adversarial for rounding: x* ≪ 1")

	measure("diurnal fleet", func(i int) *model.Instance {
		return &model.Instance{
			Types: []model.ServerType{{
				Count: 8, SwitchCost: 3, MaxLoad: 1,
				Cost: mustStatic(1, 1),
			}},
			Lambda: workload.Diurnal(8, 1, 7, 8, float64(i)),
		}
	}, "realistic loads: gap nearly vanishes")

	rep.Notes = append(rep.Notes,
		"Gap = OPT_discrete / OPT_fractional(1/4 grid). The relaxation is computed by K-refinement (Package fractional), so the reported gap slightly *underestimates* the true one. Large gaps need sub-server demands; at fleet scale the relaxation is nearly tight, explaining why fractional algorithms guide practice despite the open rounding problem.")
	return rep
}

func mustStatic(idle, rate float64) model.CostProfile {
	return model.Static{F: affine(idle, rate)}
}

// ---------- E10: scalable online variant ----------

// E10ScaledTracker compares the paper-exact online Algorithm A against the
// heuristic variant whose prefix-optimum tracker runs on the γ-reduced
// lattice, on fleets where the exact tracker is already expensive.
func E10ScaledTracker(seed int64, instances int) Report {
	rep := Report{
		ID:    "E10",
		Title: "Scalable online variant: γ-reduced prefix tracker vs. exact (Algorithm A)",
		Paper: "Beyond the paper: the proofs need exact prefix optima; this measures the cost of approximating them",
		Pass:  true,
	}
	rep.Table = engine.NewTable("gamma", "instances", "mean ratio", "max ratio", "mean ratio (exact)", "lattice shrink")
	rng := rand.New(rand.NewSource(seed))

	type insCase struct {
		ins   *model.Instance
		exact float64
	}
	cases := make([]insCase, instances)
	for i := range cases {
		ins := &model.Instance{
			Types: []model.ServerType{
				{Count: 60, SwitchCost: 2 + rng.Float64()*4, MaxLoad: 1,
					Cost: mustStatic(1, 1)},
				{Count: 30, SwitchCost: 6 + rng.Float64()*8, MaxLoad: 4,
					Cost: mustStatic(2.5, 0.4)},
			},
			Lambda: workload.DiurnalNoisy(rng, 36, 5, 100, 24, 0.2),
		}
		a, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			panic(err)
		}
		cases[i] = insCase{ins: ins, exact: ratioAgainstOpt(ins, a)}
	}
	var exactSum float64
	for _, c := range cases {
		exactSum += c.exact
	}

	for _, gamma := range []float64{1.25, 1.5, 2} {
		var sum, max float64
		shrink := 0.0
		for _, c := range cases {
			a, err := core.NewAlgorithmAWithOptions(c.ins.Types, core.Options{TrackerGamma: gamma})
			if err != nil {
				panic(err)
			}
			r := ratioAgainstOpt(c.ins, a)
			sum += r
			if r > max {
				max = r
			}
			full := float64((60 + 1) * (30 + 1))
			shrink = full / float64(reducedSize(c.ins, gamma))
		}
		// Sanity: the heuristic should stay within a small multiple of
		// the exact variant on these benign workloads.
		if max > 3*(exactSum/float64(len(cases))) {
			rep.Pass = false
		}
		rep.Table.Add(fmt.Sprintf("%g", gamma), fmt.Sprintf("%d", len(cases)),
			fmt.Sprintf("%.3f", sum/float64(len(cases))), fmt.Sprintf("%.3f", max),
			fmt.Sprintf("%.3f", exactSum/float64(len(cases))),
			fmt.Sprintf("%.0fx", shrink))
	}
	rep.Notes = append(rep.Notes,
		"The reduced tracker trades a provable guarantee for a 30-100x smaller per-slot DP; on diurnal fleets the measured ratios barely move. The paper's guarantee applies only to the exact tracker (γ column 'exact').")
	return rep
}

func reducedSize(ins *model.Instance, gamma float64) int {
	size := 1
	for _, st := range ins.Types {
		size *= len(grid.ReducedAxis(st.Count, gamma))
	}
	return size
}

func affine(idle, rate float64) costfn.Func { return costfn.Affine{Idle: idle, Rate: rate} }
