package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/solver"
)

// ---------- E12: proof-term decomposition (Theorem 8's anatomy) ----------

// E12ProofTerms measures every intermediate inequality in Theorem 8's
// proof on random instances: Lemma 5 (the load-dependent cost of X^A is at
// most OPT), Lemma 7 (per-type block costs at most 2·OPT), and the final
// assembly C(X^A) <= ΣH + L <= (2d+1)·OPT. The table reports how much
// slack each proof step leaves in practice — where the analysis is tight
// and where it is generous.
func E12ProofTerms(seed int64, instances int) Report {
	rep := Report{
		ID:    "E12",
		Title: "Anatomy of Theorem 8: measured slack in every proof step",
		Paper: "Lemma 5: Σ L(X^A) <= OPT; Lemma 7: Σ_i H_{j,i} <= 2·OPT per type; Theorem 8: C(X^A) <= ΣH + L <= (2d+1)·OPT",
		Pass:  true,
	}
	rep.Table = engine.NewTable("quantity", "mean /OPT", "max /OPT", "proof bound /OPT", "holds")
	rng := rand.New(rand.NewSource(seed))

	var sumL, maxL float64          // Lemma 5 term
	var sumHmax, maxHmax float64    // Lemma 7 worst type
	var sumTotal, maxTotal float64  // actual C(X^A)
	var sumAssembly, maxAsm float64 // ΣH + L
	d := 2
	for i := 0; i < instances; i++ {
		ins := randomStatic(rng, d, 3, 10)
		a, err := core.NewAlgorithmA(ins.Types)
		if err != nil {
			panic(err)
		}
		sched := core.Run(a, ins)
		opt, err := solver.OptimalCost(ins)
		if err != nil {
			panic(err)
		}
		p, err := analysis.Decompose(ins, sched)
		if err != nil {
			panic(err)
		}
		tbars := make([]int, ins.D())
		for j := range tbars {
			tbars[j] = a.Timeout(j)
		}
		hs, err := analysis.BlockCostsA(ins, a.PowerUpHistory(), tbars)
		if err != nil {
			panic(err)
		}
		hMax, hSum := 0.0, 0.0
		for _, h := range hs {
			hSum += h
			if h > hMax {
				hMax = h
			}
		}

		l := p.LoadDependent / opt
		hm := hMax / opt
		tot := p.Total() / opt
		asm := (hSum + p.LoadDependent) / opt
		rep.Pass = rep.Pass && l <= 1+tol && hm <= 2+tol &&
			tot <= asm+tol && asm <= float64(2*ins.D()+1)+tol

		sumL += l
		sumHmax += hm
		sumTotal += tot
		sumAssembly += asm
		if l > maxL {
			maxL = l
		}
		if hm > maxHmax {
			maxHmax = hm
		}
		if tot > maxTotal {
			maxTotal = tot
		}
		if asm > maxAsm {
			maxAsm = asm
		}
	}
	n := float64(instances)
	rep.Table.Add("L(X^A) — Lemma 5", fmt.Sprintf("%.3f", sumL/n),
		fmt.Sprintf("%.3f", maxL), "1", fmt.Sprintf("%v", maxL <= 1+tol))
	rep.Table.Add("max_j ΣH_{j,i} — Lemma 7", fmt.Sprintf("%.3f", sumHmax/n),
		fmt.Sprintf("%.3f", maxHmax), "2", fmt.Sprintf("%v", maxHmax <= 2+tol))
	rep.Table.Add("C(X^A) actual", fmt.Sprintf("%.3f", sumTotal/n),
		fmt.Sprintf("%.3f", maxTotal), fmt.Sprintf("%d", 2*d+1),
		fmt.Sprintf("%v", maxTotal <= float64(2*d+1)+tol))
	rep.Table.Add("ΣH + L assembly", fmt.Sprintf("%.3f", sumAssembly/n),
		fmt.Sprintf("%.3f", maxAsm), fmt.Sprintf("%d", 2*d+1),
		fmt.Sprintf("%v", maxAsm <= float64(2*d+1)+tol))

	rep.Notes = append(rep.Notes,
		"The slack lives almost entirely in Lemma 7's block bound (H charges every block a full β + t̄·f(0) even when blocks abut and pay no switching) — the actual cost sits near 1.1·OPT while the assembly term is far larger. Lemma 4's per-type comparison holds under a common load split (the prefix optimum's dispatch); the naive per-config-optimal-split reading is false — see internal/analysis.")
	return rep
}
