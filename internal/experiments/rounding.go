package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/fractional"
	"repro/internal/model"
	"repro/internal/rounding"
	"repro/internal/solver"
	"repro/internal/workload"
)

// ---------- E11: the rounding blow-up (related work) ----------

// E11RoundingBlowup reproduces two *claims* from the paper's related-work
// discussion: (a) naively ceiling-rounding a fractional schedule can make
// the switching cost arbitrarily large (the 1 ↔ 1+ε oscillation), and
// (b) threshold rounding avoids it on homogeneous instances, while
// heterogeneous per-type rounding needs feasibility repair (their
// (1/d, …, 1/d) example). Measured, not just cited.
func E11RoundingBlowup(seed int64, instances int) Report {
	rep := Report{
		ID:    "E11",
		Title: "Rounding fractional schedules: the switching blow-up and its mitigation",
		Paper: "Related work: 'If the number of active servers is simply rounded up, the total switching cost can get arbitrarily large…'",
		Pass:  true,
	}
	rep.Table = engine.NewTable("scenario", "strategy", "power-ups", "total cost", "vs fractional", "feasible pre-repair")

	// (a) The oscillation pathology, measured on the literal example.
	T := 60
	frac := rounding.OscillatingFraction(T, 1, 0.05)
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 2, SwitchCost: 10, MaxLoad: 1,
			Cost: mustStatic(1, 0.5),
		}},
		Lambda: make([]float64, T), // demand 1 every slot (covered by 1 server)
	}
	for t := range ins.Lambda {
		ins.Lambda[t] = 1
	}
	fracCost := fractionalCostOf(ins, frac)
	eval := model.NewEvaluator(ins)
	for _, sc := range []struct {
		name     string
		strategy rounding.Strategy
		theta    float64
	}{
		{"ceil", rounding.Ceil, 0},
		{"threshold θ=0.5", rounding.Threshold, 0.5},
	} {
		pre, err := rounding.Round(frac, sc.strategy, sc.theta)
		if err != nil {
			panic(err)
		}
		feasiblePre := ins.Feasible(pre) == nil
		sched, err := rounding.Repair(ins, pre)
		if err != nil {
			panic(err)
		}
		cost := eval.Cost(sched).Total()
		rep.Table.Add("1↔1+ε oscillation", sc.name,
			fmt.Sprintf("%d", rounding.SwitchCount(sched)),
			engine.FmtF(cost), fmt.Sprintf("%.2fx", cost/fracCost),
			fmt.Sprintf("%v", feasiblePre))
	}

	// (b) Random homogeneous instances: round the true fractional optimum.
	rng := rand.New(rand.NewSource(seed))
	type agg struct {
		ups  int
		cost float64
		feas int
	}
	sums := map[string]*agg{"ceil": {}, "floor": {}, "threshold θ=0.5": {}}
	fracSum := 0.0
	optSum := 0.0
	for i := 0; i < instances; i++ {
		m := 4 + rng.Intn(3)
		insR := &model.Instance{
			Types: []model.ServerType{{
				Name: "srv", Count: m, SwitchCost: 1 + rng.Float64()*6, MaxLoad: 1,
				Cost: mustStatic(0.5+rng.Float64(), rng.Float64()),
			}},
			Lambda: workload.DiurnalNoisy(rng, 16, 0.4, float64(m)-0.5, 8, 0.3),
		}
		fres, err := fractional.Solve(insR, 4, 0)
		if err != nil {
			panic(err)
		}
		fracSum += fres.Cost
		opt, err := solver.OptimalCost(insR)
		if err != nil {
			panic(err)
		}
		optSum += opt
		evalR := model.NewEvaluator(insR)
		for name, sc := range map[string]struct {
			strategy rounding.Strategy
			theta    float64
		}{
			"ceil":            {rounding.Ceil, 0},
			"floor":           {rounding.Floor, 0},
			"threshold θ=0.5": {rounding.Threshold, 0.5},
		} {
			pre, err := rounding.Round(fres.X, sc.strategy, sc.theta)
			if err != nil {
				panic(err)
			}
			if insR.Feasible(pre) == nil {
				sums[name].feas++
			}
			sched, err := rounding.Repair(insR, pre)
			if err != nil {
				panic(err)
			}
			c := evalR.Cost(sched).Total()
			if c < fres.Cost*(1-1e-6) {
				rep.Pass = false // integral can never beat fractional
			}
			sums[name].ups += rounding.SwitchCount(sched)
			sums[name].cost += c
		}
	}
	for _, name := range []string{"ceil", "floor", "threshold θ=0.5"} {
		a := sums[name]
		rep.Table.Add(fmt.Sprintf("random homogeneous (%d)", instances), name,
			fmt.Sprintf("%d", a.ups), engine.FmtF(a.cost/float64(instances)),
			fmt.Sprintf("%.2fx", a.cost/fracSum),
			fmt.Sprintf("%d/%d", a.feas, instances))
	}
	rep.Table.Add("(discrete OPT reference)", "-", "-",
		engine.FmtF(optSum/float64(instances)), fmt.Sprintf("%.2fx", optSum/fracSum), "-")

	rep.Notes = append(rep.Notes,
		"On the oscillation pathology, ceiling-rounding pays a power-up every other slot while threshold rounding stays put — the exact blow-up the paper warns about. On random instances the threshold scheme lands near the discrete optimum; floor always needs repair (the paper's heterogeneous counterexample is in the rounding package's tests).")
	return rep
}

// fractionalCostOf evaluates a fractional schedule's cost directly via the
// refined-instance encoding.
func fractionalCostOf(ins *model.Instance, frac [][]float64) float64 {
	const K = 64
	ref, err := fractional.Refine(ins, K)
	if err != nil {
		panic(err)
	}
	sched := make(model.Schedule, len(frac))
	for t, row := range frac {
		cfg := make(model.Config, len(row))
		for j, x := range row {
			cfg[j] = int(x*K + 0.5)
		}
		sched[t] = cfg
	}
	return model.NewEvaluator(ref).Cost(sched).Total()
}
