package figures

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Differential tests: the production state machines (queue-based TypeB,
// window-based TypeA) against independent reference simulations built
// directly from the paper's formulas (W_t sets, block windows). Two
// implementations of the same math must agree on arbitrary inputs.

// referenceB simulates Algorithm B's single-type dynamics literally from
// Algorithm 2: w_t bookkeeping plus the W_t sets computed by formula.
func referenceB(beta float64, ls []float64, xhat []int) []int {
	T := len(ls)
	w := make([]int, T+1)
	wsets := WSetsB(beta, ls)
	x := 0
	out := make([]int, T)
	for t := 1; t <= T; t++ {
		for _, u := range wsets[t-1] {
			x -= w[u]
			w[u] = 0
		}
		if x <= xhat[t-1] {
			w[t] = xhat[t-1] - x
			x = xhat[t-1]
		}
		out[t-1] = x
	}
	return out
}

// referenceA simulates Algorithm A per its block semantics: x_t is the
// total of power-ups within the live window (t−t̄, t].
func referenceA(tbar int, xhat []int) []int {
	T := len(xhat)
	w := make([]int, T+1)
	out := make([]int, T)
	liveAt := func(t int) int {
		sum := 0
		lo := t - tbar + 1
		if lo < 1 {
			lo = 1
		}
		for u := lo; u <= t; u++ {
			sum += w[u]
		}
		return sum
	}
	for t := 1; t <= T; t++ {
		x := liveAt(t) // power-ups from t−t̄+1..t−1 still alive; w[t]=0 yet
		if x <= xhat[t-1] {
			w[t] = xhat[t-1] - x
			x = xhat[t-1]
		}
		out[t-1] = x
	}
	return out
}

func TestTypeBMatchesFormulaReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := 3 + rng.Intn(30)
		beta := rng.Float64() * 10
		ls := make([]float64, T)
		xhat := make([]int, T)
		for i := range ls {
			ls[i] = rng.Float64() * 4
			xhat[i] = rng.Intn(5)
		}
		s := core.NewTypeB(beta)
		want := referenceB(beta, ls, xhat)
		for i := range ls {
			if got := s.Step(ls[i], xhat[i]); got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTypeAMatchesWindowReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := 3 + rng.Intn(30)
		tbar := 1 + rng.Intn(8)
		xhat := make([]int, T)
		for i := range xhat {
			xhat[i] = rng.Intn(5)
		}
		s := core.NewTypeA(tbar)
		want := referenceA(tbar, xhat)
		for i := range xhat {
			if got := s.Step(xhat[i]); got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TBarsB and WSetsB are two views of the same timeout structure: u ∈ W_t
// exactly when t = u + t̄_{u} + 1 (for determined t̄), and undetermined
// t̄ means u appears in no W_t.
func TestTBarsConsistentWithWSets(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := 3 + rng.Intn(25)
		beta := rng.Float64() * 8
		ls := make([]float64, T)
		for i := range ls {
			ls[i] = rng.Float64() * 3
		}
		tbars := TBarsB(beta, ls)
		wsets := WSetsB(beta, ls)
		// Build the inverse map: for each u, the t with u ∈ W_t.
		shutdown := map[int]int{}
		for tt := 1; tt <= T; tt++ {
			for _, u := range wsets[tt-1] {
				if _, dup := shutdown[u]; dup {
					return false // W sets must partition
				}
				shutdown[u] = tt
			}
		}
		for u := 1; u <= T; u++ {
			tb := tbars[u-1]
			st, ok := shutdown[u]
			if tb < 0 {
				if ok {
					return false // undetermined yet scheduled for shutdown
				}
				continue
			}
			if !ok || st != u+tb+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
