// Package figures programmatically reproduces the five figures of the
// paper as ASCII renderings, driven by the production algorithm code. Each
// figure has a data function (tested against the values the paper prints)
// and a Render function returning the drawing.
//
//   - Figure 1: Algorithm A's behaviour for one type with t̄_j = 5.
//   - Figure 2: blocks A_{j,i} and special time slots τ_{j,k}.
//   - Figure 3: Algorithm B's behaviour (β_j = 6, the paper's exact trace).
//   - Figure 4: the graph representation (d = 2, T = 2, m = (2,1)).
//   - Figure 5: construction of X' for γ = 2, m_j = 10.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// ---------- Figure 1 ----------

// Figure1Data is the single-type input/output pair of Figure 1: a
// prefix-optimum staircase x̂^t_t and the resulting Algorithm A counts
// with t̄_j = 5. The paper prints no numeric values for this figure, so
// the staircase is a representative trace exercising the same features:
// overlapping blocks, expiry re-ups, and a trailing idle stretch.
type Figure1Data struct {
	Tbar  int
	XHat  []int
	XAlgo []int
}

// Figure1 computes the data with the production TypeA state machine.
func Figure1() Figure1Data {
	xhat := []int{1, 2, 2, 1, 3, 1, 0, 2, 1, 0, 0, 1, 0, 0}
	s := core.NewTypeA(5)
	xa := make([]int, len(xhat))
	for i, v := range xhat {
		xa[i] = s.Step(v)
	}
	return Figure1Data{Tbar: 5, XHat: xhat, XAlgo: xa}
}

// RenderFigure1 draws both staircases.
func RenderFigure1() string {
	d := Figure1()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Algorithm A, one server type, t̄_j = %d\n\n", d.Tbar)
	b.WriteString("prefix optimum x̂^t_t:\n")
	b.WriteString(plotSteps(d.XHat))
	b.WriteString("\nresulting x^A_t (each power-up runs exactly t̄ slots):\n")
	b.WriteString(plotSteps(d.XAlgo))
	return b.String()
}

// ---------- Figure 2 ----------

// Figure2Data reproduces the block/special-slot structure of Figure 2:
// seven blocks with power-up slots chosen so the index sets come out as
// the figure's B_{j,1} = {1,2}, B_{j,2} = {3,4}, B_{j,3} = {5,6,7}.
type Figure2Data struct {
	Tbar   int
	Starts []int   // s_{j,i}, ascending
	Taus   []int   // special time slots τ_{j,k}
	BSets  [][]int // B_{j,k}: 1-based block indices containing τ_{j,k}
}

// BlocksAndTaus computes the special time slots τ_{j,k} and index sets
// B_{j,k} for blocks [s_i : s_i + tbar − 1] per the definitions before
// Lemma 7: τ_{n'} is the last power-up slot, and each previous τ_k is the
// last power-up at or before τ_{k+1} − t̄.
func BlocksAndTaus(starts []int, tbar int) (taus []int, bsets [][]int) {
	if len(starts) == 0 {
		return nil, nil
	}
	if !sort.IntsAreSorted(starts) {
		panic("figures: power-up slots must be ascending")
	}
	// Build τ in reverse.
	tau := starts[len(starts)-1]
	taus = []int{tau}
	for {
		// Last start <= tau − tbar.
		idx := sort.SearchInts(starts, tau-tbar+1) - 1
		if idx < 0 {
			break
		}
		tau = starts[idx]
		taus = append(taus, tau)
	}
	// Reverse to ascending.
	for i, j := 0, len(taus)-1; i < j; i, j = i+1, j-1 {
		taus[i], taus[j] = taus[j], taus[i]
	}
	bsets = make([][]int, len(taus))
	for k, tk := range taus {
		for i, s := range starts {
			if s <= tk && tk <= s+tbar-1 {
				bsets[k] = append(bsets[k], i+1)
			}
		}
	}
	return taus, bsets
}

// Figure2 computes the figure's block layout.
func Figure2() Figure2Data {
	starts := []int{0, 2, 6, 8, 12, 14, 15}
	tbar := 5
	taus, bsets := BlocksAndTaus(starts, tbar)
	return Figure2Data{Tbar: tbar, Starts: starts, Taus: taus, BSets: bsets}
}

// RenderFigure2 draws the blocks as horizontal bars with the special time
// slots marked.
func RenderFigure2() string {
	d := Figure2()
	maxT := 0
	for _, s := range d.Starts {
		if e := s + d.Tbar - 1; e > maxT {
			maxT = e
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: blocks A_{j,i} (t̄_j = %d) and special time slots τ_{j,k}\n\n", d.Tbar)
	for i, s := range d.Starts {
		fmt.Fprintf(&b, "A_%d  ", i+1)
		line := make([]byte, maxT+1)
		for t := 0; t <= maxT; t++ {
			line[t] = ' '
			if t >= s && t <= s+d.Tbar-1 {
				line[t] = '#'
			}
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString("tau  ")
	mark := make([]byte, maxT+1)
	for t := range mark {
		mark[t] = ' '
	}
	for _, tau := range d.Taus {
		mark[tau] = '|'
	}
	b.Write(mark)
	b.WriteByte('\n')
	for k, set := range d.BSets {
		fmt.Fprintf(&b, "B_%d = %v (τ = %d)\n", k+1, set, d.Taus[k])
	}
	return b.String()
}

// ---------- Figure 3 ----------

// Figure3Data is the paper's exact Algorithm B example: β_j = 6 with the
// printed idle costs and prefix optima. TBars[t-1] is t̄_{t,j} (-1 when it
// depends on slots beyond the horizon, printed "…" in the paper), and
// WSets[t-1] is W_t.
type Figure3Data struct {
	Beta  float64
	L     []float64
	XHat  []int
	XAlgo []int
	TBars []int
	WSets [][]int
}

// TBarsB computes t̄_{t,j} = max{t̄ ∈ [T−t] : Σ_{v=t+1}^{t+t̄} l_v <= β}
// for every t, with -1 marking values undetermined within the horizon
// (the whole remaining idle cost fits under β, so the true t̄ depends on
// future slots). A t with l_{t+1} > β gets t̄ = 0.
func TBarsB(beta float64, ls []float64) []int {
	T := len(ls)
	out := make([]int, T)
	for t := 1; t <= T; t++ {
		sum := 0.0
		tbar := 0
		determined := false
		for u := t + 1; u <= T; u++ {
			sum += ls[u-1]
			if sum > beta {
				determined = true
				break
			}
			tbar = u - t
		}
		if determined {
			out[t-1] = tbar
		} else {
			out[t-1] = -1
		}
	}
	return out
}

// WSetsB computes W_t = {u ∈ [t−1] : Σ_{v=u+1}^{t−1} l_v <= β < Σ_{v=u+1}^t l_v}
// for every t ∈ [T] directly from the definition in Algorithm 2.
func WSetsB(beta float64, ls []float64) [][]int {
	T := len(ls)
	out := make([][]int, T)
	prefix := make([]float64, T+1)
	for t := 1; t <= T; t++ {
		prefix[t] = prefix[t-1] + ls[t-1]
	}
	for t := 1; t <= T; t++ {
		for u := 1; u <= t-1; u++ {
			upToPrev := prefix[t-1] - prefix[u]
			upToT := prefix[t] - prefix[u]
			if upToPrev <= beta && beta < upToT {
				out[t-1] = append(out[t-1], u)
			}
		}
	}
	return out
}

// Figure3 runs the production TypeB machine on the paper's trace.
func Figure3() Figure3Data {
	ls := []float64{3, 1, 4, 1, 2, 1, 1, 2, 3, 5, 1, 3}
	xhat := []int{1, 2, 1, 3, 0, 0, 1, 2, 0, 0, 0, 0}
	s := core.NewTypeB(6)
	xa := make([]int, len(ls))
	for i := range ls {
		xa[i] = s.Step(ls[i], xhat[i])
	}
	return Figure3Data{
		Beta:  6,
		L:     ls,
		XHat:  xhat,
		XAlgo: xa,
		TBars: TBarsB(6, ls),
		WSets: WSetsB(6, ls),
	}
}

// RenderFigure3 draws the example with the annotation rows of the paper.
func RenderFigure3() string {
	d := Figure3()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Algorithm B, one server type, β_j = %g\n\n", d.Beta)
	row := func(label string, cell func(i int) string) {
		fmt.Fprintf(&b, "%-8s", label)
		for i := range d.L {
			fmt.Fprintf(&b, "%6s", cell(i))
		}
		b.WriteByte('\n')
	}
	row("t", func(i int) string { return fmt.Sprintf("%d", i+1) })
	row("x̂^t_t", func(i int) string { return fmt.Sprintf("%d", d.XHat[i]) })
	row("l_t", func(i int) string { return fmt.Sprintf("%g", d.L[i]) })
	row("t̄_t", func(i int) string {
		if d.TBars[i] < 0 {
			return "…"
		}
		return fmt.Sprintf("%d", d.TBars[i])
	})
	row("W_t", func(i int) string {
		if len(d.WSets[i]) == 0 {
			return "∅"
		}
		parts := make([]string, len(d.WSets[i]))
		for k, u := range d.WSets[i] {
			parts[k] = fmt.Sprintf("%d", u)
		}
		return "{" + strings.Join(parts, ",") + "}"
	})
	row("x^B_t", func(i int) string { return fmt.Sprintf("%d", d.XAlgo[i]) })
	b.WriteString("\nx^B_t staircase:\n")
	b.WriteString(plotSteps(d.XAlgo))
	return b.String()
}

// plotSteps renders an integer series as a vertical-bar chart, one column
// per slot, highest level on top.
func plotSteps(xs []int) string {
	max := 0
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for level := max; level >= 1; level-- {
		fmt.Fprintf(&b, "%2d |", level)
		for _, v := range xs {
			if v >= level {
				b.WriteString(" ##")
			} else {
				b.WriteString("   ")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("   +")
	for range xs {
		b.WriteString("---")
	}
	b.WriteString("\n    ")
	for i := range xs {
		fmt.Fprintf(&b, "%3d", i+1)
	}
	b.WriteByte('\n')
	return b.String()
}
