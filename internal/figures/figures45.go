package figures

import (
	"fmt"
	"strings"

	"repro/internal/costfn"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/solver"
)

// ---------- Figure 4 ----------

// Figure4Instance mirrors the shape of the paper's Figure 4 (d = 2, T = 2,
// m = (2,1)): the figure's operating costs are symbolic, so the concrete
// costs here are chosen to make the depicted shortest path — x_1 = (2,0),
// x_2 = (1,1) — the optimum.
func Figure4Instance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{
			{Name: "type1", Count: 2, SwitchCost: 1, MaxLoad: 1,
				Cost: model.Varying{Fs: []costfn.Func{
					costfn.Constant{C: 1}, costfn.Constant{C: 3},
				}}},
			{Name: "type2", Count: 1, SwitchCost: 1, MaxLoad: 1,
				Cost: model.Varying{Fs: []costfn.Func{
					costfn.Constant{C: 10}, costfn.Constant{C: 1},
				}}},
		},
		Lambda: []float64{2, 2},
	}
}

// RenderFigure4 lists the graph representation: the vertex grid, one line
// per edge gadget, and the shortest path with its schedule.
func RenderFigure4() string {
	ins := Figure4Instance()
	g, err := solver.BuildGraph(ins)
	if err != nil {
		panic(err) // static well-formed instance; cannot fail
	}
	cost, sched, err := g.ShortestPath()
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	b.WriteString("Figure 4: graph representation, d=2, T=2, m=(2,1)\n\n")
	fmt.Fprintf(&b, "vertices: %d (two per (t, x) pair)\n", g.NumVertices)
	counts := map[string]int{}
	for _, e := range g.Edges {
		counts[e.Kind]++
	}
	fmt.Fprintf(&b, "edges: %d operating, %d power-up, %d power-down, %d slot-transition\n\n",
		counts["op"], counts["up"], counts["down"], counts["next"])

	cfg := make(model.Config, ins.D())
	b.WriteString("operating-cost edges g_t(x):\n")
	eval := model.NewEvaluator(ins)
	for t := 1; t <= ins.T(); t++ {
		for idx := 0; idx < g.Grid.Size(); idx++ {
			g.Grid.Decode(idx, cfg)
			v := eval.G(t, cfg)
			fmt.Fprintf(&b, "  v↑_{%d,%v} → v↓_{%d,%v}  weight %s\n",
				t, cfg, t, cfg, fmtWeight(v))
		}
	}
	fmt.Fprintf(&b, "\nshortest path: cost %.0f, schedule x_1=%v, x_2=%v\n",
		cost, sched[0], sched[1])
	return b.String()
}

func fmtWeight(v float64) string {
	if v > 1e300 {
		return "∞"
	}
	return fmt.Sprintf("%.0f", v)
}

// ---------- Figure 5 ----------

// Figure5Data is the X' construction of Theorem 16's proof for the
// figure's parameters: γ = 2, m_j = 10, so M^γ_j = {0,1,2,4,8,10}, with a
// single-type optimal schedule X* and its corridor (2γ−1)·x* = 3·x*.
type Figure5Data struct {
	Gamma   float64
	Axis    grid.Axis
	XStar   []int
	XPrime  []int
	Ceiling []int // min(m, floor((2γ−1)x*)) — the dotted blue line
}

// Figure5 builds the construction with the production ApproxReference.
// The x* staircase follows the figure's red curve qualitatively (the paper
// prints no numbers): rising to m, dropping sharply, and recovering.
func Figure5() Figure5Data {
	xstar := []int{1, 2, 3, 5, 7, 10, 10, 8, 4, 2, 1, 1, 2, 3, 2, 1, 0}
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 10, SwitchCost: 1, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: make([]float64, len(xstar)),
	}
	opt := make(model.Schedule, len(xstar))
	for i, v := range xstar {
		opt[i] = model.Config{v}
		ins.Lambda[i] = float64(v)
	}
	gamma := 2.0
	xprime, err := solver.ApproxReference(ins, opt, gamma)
	if err != nil {
		panic(err)
	}
	d := Figure5Data{
		Gamma: gamma,
		Axis:  grid.ReducedAxis(10, gamma),
		XStar: xstar,
	}
	for _, c := range xprime {
		d.XPrime = append(d.XPrime, c[0])
	}
	for _, v := range xstar {
		ceil := int((2*gamma - 1) * float64(v))
		if ceil > 10 {
			ceil = 10
		}
		d.Ceiling = append(d.Ceiling, ceil)
	}
	return d
}

// RenderFigure5 draws x* and X' against the reduced-axis levels.
func RenderFigure5() string {
	d := Figure5()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: construction of X', γ = %g, m_j = 10\n", d.Gamma)
	fmt.Fprintf(&b, "allowed levels M^γ_j = %v\n\n", []int(d.Axis))
	b.WriteString("x*_t (optimal), x'_t (lattice-restricted), corridor top (2γ−1)x*:\n\n")
	fmt.Fprintf(&b, "%-4s %-6s %-6s %-8s\n", "t", "x*", "x'", "ceil")
	for i := range d.XStar {
		fmt.Fprintf(&b, "%-4d %-6d %-6d %-8d\n", i+1, d.XStar[i], d.XPrime[i], d.Ceiling[i])
	}
	b.WriteString("\nx'_t staircase:\n")
	b.WriteString(plotSteps(d.XPrime))
	return b.String()
}
