package figures

import (
	"strings"
	"testing"
)

func TestFigure1InvariantAndExpiry(t *testing.T) {
	d := Figure1()
	if d.Tbar != 5 {
		t.Fatalf("t̄ = %d, want 5", d.Tbar)
	}
	for i := range d.XHat {
		if d.XAlgo[i] < d.XHat[i] {
			t.Errorf("slot %d: x^A=%d below x̂=%d", i+1, d.XAlgo[i], d.XHat[i])
		}
	}
	// A server powered up at slot 1 must be gone by slot 6 unless re-upped;
	// the trailing zeros of x̂ eventually drain the fleet.
	last := d.XAlgo[len(d.XAlgo)-1]
	if last > d.XHat[len(d.XHat)-1]+3 {
		t.Errorf("trailing count %d suggests servers never expire", last)
	}
}

// Figure 2's caption: B_{j,1} = {1,2}, B_{j,2} = {3,4}, B_{j,3} = {5,6,7},
// with consecutive special slots at least t̄ apart.
func TestFigure2MatchesPaper(t *testing.T) {
	d := Figure2()
	want := [][]int{{1, 2}, {3, 4}, {5, 6, 7}}
	if len(d.BSets) != len(want) {
		t.Fatalf("B sets = %v, want %v", d.BSets, want)
	}
	for k := range want {
		if len(d.BSets[k]) != len(want[k]) {
			t.Fatalf("B_%d = %v, want %v", k+1, d.BSets[k], want[k])
		}
		for i := range want[k] {
			if d.BSets[k][i] != want[k][i] {
				t.Fatalf("B_%d = %v, want %v", k+1, d.BSets[k], want[k])
			}
		}
	}
	// Every block contains exactly one τ.
	for i, s := range d.Starts {
		n := 0
		for _, tau := range d.Taus {
			if tau >= s && tau <= s+d.Tbar-1 {
				n++
			}
		}
		if n != 1 {
			t.Errorf("block %d contains %d special slots, want 1", i+1, n)
		}
	}
	// Consecutive τ at least t̄ apart.
	for k := 1; k < len(d.Taus); k++ {
		if d.Taus[k]-d.Taus[k-1] < d.Tbar {
			t.Errorf("τ_%d − τ_%d = %d < t̄", k+1, k, d.Taus[k]-d.Taus[k-1])
		}
	}
}

func TestBlocksAndTausEdgeCases(t *testing.T) {
	taus, bsets := BlocksAndTaus(nil, 3)
	if taus != nil || bsets != nil {
		t.Error("empty input should give empty output")
	}
	taus, bsets = BlocksAndTaus([]int{5}, 3)
	if len(taus) != 1 || taus[0] != 5 || len(bsets[0]) != 1 {
		t.Errorf("single block: taus=%v bsets=%v", taus, bsets)
	}
	defer func() {
		if recover() == nil {
			t.Error("unsorted starts should panic")
		}
	}()
	BlocksAndTaus([]int{3, 1}, 2)
}

// Figure 3: every annotation the paper prints is reproduced exactly.
func TestFigure3MatchesPaper(t *testing.T) {
	d := Figure3()
	// t̄ values for t = 1..9 as printed; t >= 10 undetermined ("…").
	wantTbar := []int{3, 2, 4, 4, 3, 3, 2, 1, 2, -1, -1, -1}
	for i, want := range wantTbar {
		if d.TBars[i] != want {
			t.Errorf("t̄_%d = %d, want %d", i+1, d.TBars[i], want)
		}
	}
	// W sets: W_5 = {1,2}, W_8 = {3}, W_9 = {4,5}, W_10 = {6,7,8},
	// W_12 = {9}, all others empty.
	wantW := map[int][]int{5: {1, 2}, 8: {3}, 9: {4, 5}, 10: {6, 7, 8}, 12: {9}}
	for tt := 1; tt <= 12; tt++ {
		got := d.WSets[tt-1]
		want := wantW[tt]
		if len(got) != len(want) {
			t.Errorf("W_%d = %v, want %v", tt, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("W_%d = %v, want %v", tt, got, want)
			}
		}
	}
	// The x^B trace (figure plot).
	wantX := []int{1, 2, 2, 3, 1, 1, 1, 2, 1, 0, 0, 0}
	for i := range wantX {
		if d.XAlgo[i] != wantX[i] {
			t.Errorf("x^B_%d = %d, want %d", i+1, d.XAlgo[i], wantX[i])
		}
	}
}

func TestFigure4ShortestPathMatchesPaper(t *testing.T) {
	out := RenderFigure4()
	if !strings.Contains(out, "x_1=(2, 0)") || !strings.Contains(out, "x_2=(1, 1)") {
		t.Errorf("figure 4 shortest path wrong:\n%s", out)
	}
	if !strings.Contains(out, "∞") {
		t.Error("figure 4 should show infinite-weight edges for infeasible configurations")
	}
}

// Figure 5: the reduced axis matches the paper ({0,1,2,4,8,10}), X' stays
// on the lattice and inside the corridor.
func TestFigure5MatchesPaper(t *testing.T) {
	d := Figure5()
	wantAxis := []int{0, 1, 2, 4, 8, 10}
	if len(d.Axis) != len(wantAxis) {
		t.Fatalf("axis = %v, want %v", d.Axis, wantAxis)
	}
	for i := range wantAxis {
		if d.Axis[i] != wantAxis[i] {
			t.Fatalf("axis = %v, want %v", d.Axis, wantAxis)
		}
	}
	for i := range d.XStar {
		if !d.Axis.Contains(d.XPrime[i]) {
			t.Errorf("slot %d: x'=%d not on the lattice", i+1, d.XPrime[i])
		}
		if d.XPrime[i] < d.XStar[i] {
			t.Errorf("slot %d: x'=%d below x*=%d", i+1, d.XPrime[i], d.XStar[i])
		}
		if float64(d.XPrime[i]) > 3*float64(d.XStar[i])+1e-9 {
			t.Errorf("slot %d: x'=%d above corridor 3·x*=%d", i+1, d.XPrime[i], 3*d.XStar[i])
		}
	}
}

func TestRenderersProduceDrawings(t *testing.T) {
	for name, render := range map[string]func() string{
		"fig1": RenderFigure1,
		"fig2": RenderFigure2,
		"fig3": RenderFigure3,
		"fig4": RenderFigure4,
		"fig5": RenderFigure5,
	} {
		out := render()
		if len(out) < 100 {
			t.Errorf("%s: suspiciously short rendering (%d bytes)", name, len(out))
		}
		if !strings.Contains(out, "Figure") {
			t.Errorf("%s: missing caption", name)
		}
	}
}

func TestRenderFigure2Layout(t *testing.T) {
	out := RenderFigure2()
	if !strings.Contains(out, "B_1 = [1 2]") {
		t.Errorf("missing B set annotation:\n%s", out)
	}
	if !strings.Contains(out, "A_7") {
		t.Error("missing block 7")
	}
}

func TestRenderFigure3Table(t *testing.T) {
	out := RenderFigure3()
	for _, want := range []string{"W_t", "{1,2}", "∅", "…"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 3 rendering missing %q", want)
		}
	}
}
