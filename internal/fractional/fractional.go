// Package fractional approximates the fractional relaxation of the
// right-sizing problem, where the number of active servers x_{t,j} may be
// any real in [0, m_j]. The paper's related-work discussion contrasts the
// discrete setting (this repository's main subject) with the fractional
// one — Lin et al.'s 3-competitive LCP and Bansal et al.'s 2-competitive
// algorithm live there — and notes that rounding fractional schedules
// without blowing up the switching cost is an open problem. This package
// exists to *measure* that integrality gap empirically.
//
// The relaxation is computed by refinement: each server of type j is split
// into K "mini-servers" of capacity zmax_j/K with operating cost
// f̃(z̃) = f(K·z̃)/K and switching cost β_j/K. Active mini-server counts
// u ∈ {0, …, K·m_j} then encode fractional counts x = u/K, and the cost of
// any mini-schedule equals the fractional cost of its encoding exactly:
//
//	u·f̃(λz/u) = (u/K)·f(λz/(u/K)),  (β/K)·Δu = β·Δ(u/K).
//
// Solving the refined instance with the exact DP therefore yields the
// optimal fractional schedule *on the grid of multiples of 1/K*, which
// converges to the true fractional optimum from above as K → ∞ (the
// objective is continuous in x and the feasible grids are nested for
// doubling K).
package fractional

import (
	"fmt"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/solver"
)

// Result is a fractional solve outcome.
type Result struct {
	// Cost is the optimal cost over the 1/K grid (an upper bound on the
	// true fractional optimum, non-increasing in K).
	Cost float64
	// X[t-1][j] is the fractional server count at slot t.
	X [][]float64
	// K is the refinement used.
	K int
}

// refined scales the cost function of one type.
type refined struct {
	f costfn.Func
	k float64
}

// Value implements costfn.Func: f̃(z̃) = f(K·z̃)/K.
func (r refined) Value(z float64) float64 { return r.f.Value(r.k*z) / r.k }

// refinedProfile wraps a CostProfile slot-wise.
type refinedProfile struct {
	p model.CostProfile
	k float64
}

func (rp refinedProfile) At(t int) costfn.Func { return refined{f: rp.p.At(t), k: rp.k} }

// Refine builds the K-refined instance encoding fractional counts as
// multiples of 1/K.
func Refine(ins *model.Instance, K int) (*model.Instance, error) {
	if K < 1 {
		return nil, fmt.Errorf("fractional: refinement K must be >= 1, got %d", K)
	}
	out := &model.Instance{Lambda: ins.Lambda}
	for _, st := range ins.Types {
		out.Types = append(out.Types, model.ServerType{
			Name:       st.Name,
			Count:      st.Count * K,
			SwitchCost: st.SwitchCost / float64(K),
			MaxLoad:    st.MaxLoad / float64(K),
			Cost:       refinedProfile{p: st.Cost, k: float64(K)},
		})
	}
	if ins.Counts != nil {
		out.Counts = make([][]int, ins.T())
		for t := range ins.Counts {
			row := make([]int, ins.D())
			for j, c := range ins.Counts[t] {
				row[j] = c * K
			}
			out.Counts[t] = row
		}
	}
	return out, nil
}

// Solve computes the optimal fractional schedule on the 1/K grid. The
// refined lattice has Π_j (K·m_j + 1) configurations; to keep the solve
// polynomial the DP runs on the γ-reduced lattice with the given eps
// (eps <= 0 solves the refined instance exactly — exponential in d, only
// for tiny instances).
func Solve(ins *model.Instance, K int, eps float64) (*Result, error) {
	ref, err := Refine(ins, K)
	if err != nil {
		return nil, err
	}
	var res *solver.Result
	if eps > 0 {
		res, err = solver.SolveApprox(ref, eps)
	} else {
		res, err = solver.SolveOptimal(ref)
	}
	if err != nil {
		return nil, err
	}
	out := &Result{Cost: res.Cost(), K: K}
	out.X = make([][]float64, len(res.Schedule))
	for t, cfg := range res.Schedule {
		row := make([]float64, len(cfg))
		for j, u := range cfg {
			row[j] = float64(u) / float64(K)
		}
		out.X[t] = row
	}
	return out, nil
}

// IntegralityGap returns discreteOPT / fractionalOPT(K grid) for an
// instance: a measured lower bound on nothing and upper bound on the true
// gap... precisely, since the grid optimum over-estimates the fractional
// optimum, the returned ratio *under-estimates* the true integrality gap
// by at most the grid refinement error. Values near 1 mean rounding the
// relaxation loses little on this instance.
func IntegralityGap(ins *model.Instance, K int, eps float64) (gap, discrete, fractional float64, err error) {
	discrete, err = solver.OptimalCost(ins)
	if err != nil {
		return 0, 0, 0, err
	}
	fres, err := Solve(ins, K, eps)
	if err != nil {
		return 0, 0, 0, err
	}
	return discrete / fres.Cost, discrete, fres.Cost, nil
}
