package fractional

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/solver"
)

func smallInstance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 2, SwitchCost: 4, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}},
		}},
		Lambda: []float64{0.5, 1.5, 0.2, 1.8},
	}
}

func TestRefineEncodesCostsExactly(t *testing.T) {
	ins := smallInstance()
	ref, err := Refine(ins, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Types[0].Count != 8 {
		t.Errorf("refined count = %d, want 8", ref.Types[0].Count)
	}
	if ref.Types[0].SwitchCost != 1 {
		t.Errorf("refined β = %g, want 1", ref.Types[0].SwitchCost)
	}
	// Cost equivalence: u mini-servers at volume y must cost the same as
	// x = u/K real servers at volume y.
	evalRef := model.NewEvaluator(ref)
	evalOrig := model.NewEvaluator(ins)
	// 6 mini-servers = 1.5 servers; at λ = 1.5 full schedule comparison:
	// original with integral 2 servers vs refined with 6.
	gRef := evalRef.G(2, model.Config{6})
	// Direct formula: x·f(λ/x) with x = 1.5, λ = 1.5: 1.5·(1+1) = 3.
	if math.Abs(gRef-3) > 1e-9 {
		t.Errorf("refined g = %g, want 3 (fractional x=1.5 at λ=1.5)", gRef)
	}
	gInt := evalOrig.G(2, model.Config{2})
	if math.Abs(gInt-(2*(1+0.75))) > 1e-9 {
		t.Errorf("integral g = %g, want 3.5", gInt)
	}
}

func TestRefineValidation(t *testing.T) {
	if _, err := Refine(smallInstance(), 0); err == nil {
		t.Error("K=0 should error")
	}
}

func TestFractionalNeverWorseThanDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 15; i++ {
		ins := randomInstance(rng)
		discrete, err := solver.OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		frac, err := Solve(ins, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if frac.Cost > discrete*(1+1e-6) { // 1e-6: scaled-function bisection noise
			t.Fatalf("case %d: fractional %g worse than discrete %g", i, frac.Cost, discrete)
		}
	}
}

func TestFractionalCostDecreasesWithRefinement(t *testing.T) {
	ins := smallInstance()
	prev := math.Inf(1)
	for _, K := range []int{1, 2, 4, 8} {
		res, err := Solve(ins, K, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Doubling K nests the grids, so the optimum cannot increase.
		if res.Cost > prev*(1+1e-6) {
			t.Fatalf("K=%d: cost %g above coarser grid %g", K, res.Cost, prev)
		}
		prev = res.Cost
	}
}

func TestFractionalScheduleValuesOnGrid(t *testing.T) {
	ins := smallInstance()
	res, err := Solve(ins, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for t2, row := range res.X {
		for j, x := range row {
			if x < 0 || x > float64(ins.Types[j].Count)+1e-12 {
				t.Fatalf("slot %d type %d: x = %g out of range", t2+1, j, x)
			}
			scaled := x * 4
			if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
				t.Fatalf("x = %g not a multiple of 1/4", x)
			}
		}
	}
}

func TestIntegralityGap(t *testing.T) {
	// λ = 0.5 with one server: discrete must run a whole server (cost
	// 1.5 op + β) while the fractional solution runs half a server
	// at double relative load... f affine: 0.5·(1+1) = 1 op. Gap > 1.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 1, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}},
		}},
		Lambda: []float64{0.5},
	}
	gap, discrete, frac, err := IntegralityGap(ins, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gap < 1 {
		t.Errorf("gap %g below 1", gap)
	}
	if discrete <= frac {
		t.Logf("discrete %g, fractional %g (gap %g)", discrete, frac, gap)
	}
	// Discrete: 1 + 0.5 + β = 3.5. Fractional best x: minimize
	// x(1 + 0.5/x) + 2x = x + 0.5 + 2x → x → smallest on grid covering
	// capacity x >= 0.5: x = 0.5 → 0.5 + 0.5 + 1 = 2.
	if math.Abs(discrete-3.5) > 1e-9 || math.Abs(frac-2) > 1e-9 {
		t.Errorf("discrete %g (want 3.5), fractional %g (want 2)", discrete, frac)
	}
	if math.Abs(gap-1.75) > 1e-9 {
		t.Errorf("gap = %g, want 1.75", gap)
	}
}

func TestSolveWithReducedLattice(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 30, SwitchCost: 4, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}},
		}},
		Lambda: []float64{5, 20, 11, 2},
	}
	exact, err := Solve(ins, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := Solve(ins, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if apx.Cost < exact.Cost*(1-1e-9) || apx.Cost > exact.Cost*1.5*(1+1e-9) {
		t.Errorf("reduced-lattice fractional %g outside [exact, 1.5·exact] for %g",
			apx.Cost, exact.Cost)
	}
}

func randomInstance(rng *rand.Rand) *model.Instance {
	d := 1 + rng.Intn(2)
	T := 2 + rng.Intn(5)
	types := make([]model.ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(2)
		capacity := 0.5 + rng.Float64()
		types[j] = model.ServerType{
			Count: count, SwitchCost: 0.5 + rng.Float64()*4, MaxLoad: capacity,
			Cost: model.Static{F: costfn.Power{
				Idle: 0.2 + rng.Float64(), Coef: rng.Float64(), Exp: 1 + rng.Float64(),
			}},
		}
		totalCap += float64(count) * capacity
	}
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = rng.Float64() * totalCap * 0.8
	}
	return &model.Instance{Types: types, Lambda: lambda}
}
