package fractional

import (
	"math"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
)

func TestRefineTimeVaryingCounts(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: 3, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}},
		}},
		Lambda: []float64{1, 2, 1},
		Counts: [][]int{{3}, {2}, {3}},
	}
	ref, err := Refine(ins, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.TimeVarying() {
		t.Fatal("refined instance should keep time-varying sizes")
	}
	if ref.CountAt(2, 0) != 4 {
		t.Errorf("refined count at slot 2 = %d, want 4", ref.CountAt(2, 0))
	}
	if err := ref.Validate(); err != nil {
		t.Fatalf("refined instance invalid: %v", err)
	}
	res, err := Solve(ins, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 2's fractional count cannot exceed the shrunken fleet.
	if res.X[1][0] > 2+1e-12 {
		t.Errorf("slot 2 fractional count %g exceeds available 2", res.X[1][0])
	}
}

func TestSolveErrors(t *testing.T) {
	ins := smallInstance()
	if _, err := Solve(ins, 0, 0); err == nil {
		t.Error("K=0 should error")
	}
	bad := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 1, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{5}, // infeasible
	}
	if _, err := Solve(bad, 2, 0); err == nil {
		t.Error("infeasible instance should error")
	}
	if _, _, _, err := IntegralityGap(bad, 2, 0); err == nil {
		t.Error("IntegralityGap should propagate infeasibility")
	}
	if _, _, _, err := IntegralityGap(ins, 0, 0); err == nil {
		t.Error("IntegralityGap should propagate bad K")
	}
}

func TestRefinedProfileScaling(t *testing.T) {
	base := costfn.Power{Idle: 2, Coef: 1, Exp: 2}
	rp := refinedProfile{p: model.Static{F: base}, k: 4}
	f := rp.At(1)
	// f̃(z̃) = f(4·z̃)/4: at z̃ = 0.25, f(1)/4 = 3/4.
	if got := f.Value(0.25); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("refined value = %g, want 0.75", got)
	}
	if got := f.Value(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("refined idle = %g, want 0.5", got)
	}
}
