// Package grid provides the configuration lattices over which the offline
// solvers run: the full grid M = Π_j {0, …, m_j} of Section 4.1 and the
// γ-reduced grid M^γ = Π_j M^γ_j of Section 4.2, where
//
//	M^γ_j = {0, m_j} ∪ {⌊γ^k⌋ ∈ M_j} ∪ {⌈γ^k⌉ ∈ M_j}
//	      = {0, 1, ⌊γ⌋, ⌈γ⌉, ⌊γ²⌋, ⌈γ²⌉, …, m_j}.
//
// A Grid flattens the lattice into a dense index space with mixed-radix
// strides so that DP layers are plain []float64 and per-dimension sweeps
// are cache-friendly strided loops.
package grid

import (
	"fmt"
	"math"
	"sort"
)

// Axis is the ordered set of admissible active-server counts for one type:
// strictly increasing, non-empty, starting at 0.
type Axis []int

// FullAxis returns {0, 1, …, m}.
func FullAxis(m int) Axis {
	if m < 0 {
		panic("grid: negative server count")
	}
	a := make(Axis, m+1)
	for i := range a {
		a[i] = i
	}
	return a
}

// ReducedAxis returns the paper's M^γ_j for m servers: zero, every
// ⌊γ^k⌋ and ⌈γ^k⌉ not exceeding m, and m itself. Including both the
// rounded-down and rounded-up powers keeps consecutive levels within a
// factor γ wherever integrality permits (Section 4.2); where it does not
// (counts below 1/(γ−1), whose successor integer already exceeds the γ
// ratio), consecutive levels are adjacent integers — the finest resolution
// the discrete setting allows. Gamma must exceed 1.
func ReducedAxis(m int, gamma float64) Axis {
	if m < 0 {
		panic("grid: negative server count")
	}
	if gamma <= 1 {
		panic("grid: ReducedAxis needs gamma > 1")
	}
	set := map[int]bool{0: true, m: true}
	// γ^0 = 1 is included by the paper's definition (k ∈ N with 1 listed
	// explicitly); iterate powers until they clear m.
	for p := 1.0; p <= float64(m); p *= gamma {
		lo := int(math.Floor(p))
		hi := int(math.Ceil(p))
		if lo <= m {
			set[lo] = true
		}
		if hi <= m {
			set[hi] = true
		}
		if lo == 0 { // guard against gamma rounding oddities
			break
		}
	}
	a := make(Axis, 0, len(set))
	for v := range set {
		a = append(a, v)
	}
	sort.Ints(a)
	return a
}

// MaxRatio returns the largest ratio between consecutive non-zero levels
// that are not adjacent integers. For a ReducedAxis it is at most γ
// (adjacent integers are excluded because, below 1/(γ−1), no integer can
// satisfy the γ ratio — see ReducedAxis). Axes with fewer than two
// non-zero levels return 1.
func (a Axis) MaxRatio() float64 {
	ratio := 1.0
	prev := 0
	for _, v := range a {
		if v == 0 {
			continue
		}
		if prev != 0 && v != prev+1 {
			if r := float64(v) / float64(prev); r > ratio {
				ratio = r
			}
		}
		prev = v
	}
	return ratio
}

// Contains reports whether the axis includes value v.
func (a Axis) Contains(v int) bool {
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Next returns N_j(v): the smallest axis value strictly greater than v.
// ok is false when v is at or beyond the maximum.
func (a Axis) Next(v int) (next int, ok bool) {
	i := sort.SearchInts(a, v+1)
	if i == len(a) {
		return 0, false
	}
	return a[i], true
}

// FloorIndex returns the index of the largest axis value <= v, or -1 if v
// is below the first value.
func (a Axis) FloorIndex(v int) int {
	return sort.SearchInts(a, v+1) - 1
}

// CeilIndex returns the index of the smallest axis value >= v, or len(a)
// if v is above the last value.
func (a Axis) CeilIndex(v int) int {
	return sort.SearchInts(a, v)
}

// validate checks the Axis contract.
func (a Axis) validate() error {
	if len(a) == 0 {
		return fmt.Errorf("grid: empty axis")
	}
	if a[0] != 0 {
		return fmt.Errorf("grid: axis must start at 0, got %d", a[0])
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			return fmt.Errorf("grid: axis not strictly increasing at %d", i)
		}
	}
	return nil
}

// Grid is the cartesian product of d axes, flattened into indices
// 0 … Size()-1. Dimension 0 varies slowest (largest stride); the last
// dimension is contiguous.
type Grid struct {
	axes    []Axis
	strides []int
	size    int
}

// New builds a grid from the given axes (one per server type). The axes
// are retained, not copied.
func New(axes []Axis) *Grid {
	if len(axes) == 0 {
		panic("grid: no axes")
	}
	g := &Grid{axes: axes, strides: make([]int, len(axes))}
	size := 1
	for j := len(axes) - 1; j >= 0; j-- {
		if err := axes[j].validate(); err != nil {
			panic(err)
		}
		g.strides[j] = size
		size *= len(axes[j])
	}
	g.size = size
	return g
}

// NewFull builds the complete lattice for counts m (Section 4.1).
func NewFull(m []int) *Grid {
	axes := make([]Axis, len(m))
	for j, mj := range m {
		axes[j] = FullAxis(mj)
	}
	return New(axes)
}

// NewReduced builds the γ-reduced lattice M^γ (Section 4.2).
func NewReduced(m []int, gamma float64) *Grid {
	axes := make([]Axis, len(m))
	for j, mj := range m {
		axes[j] = ReducedAxis(mj, gamma)
	}
	return New(axes)
}

// D returns the number of dimensions.
func (g *Grid) D() int { return len(g.axes) }

// Size returns the number of lattice points.
func (g *Grid) Size() int { return g.size }

// Axis returns dimension j's axis.
func (g *Grid) Axis(j int) Axis { return g.axes[j] }

// Stride returns the index stride of dimension j.
func (g *Grid) Stride(j int) int { return g.strides[j] }

// Decode writes the configuration (actual server counts) of index idx
// into out, which must have length D().
func (g *Grid) Decode(idx int, out []int) {
	if idx < 0 || idx >= g.size {
		panic(fmt.Sprintf("grid: index %d out of range [0, %d)", idx, g.size))
	}
	for j := range g.axes {
		level := idx / g.strides[j]
		idx -= level * g.strides[j]
		out[j] = g.axes[j][level]
	}
}

// Encode returns the index of configuration x, which must lie exactly on
// the lattice. ok is false if any coordinate is not an axis value.
func (g *Grid) Encode(x []int) (idx int, ok bool) {
	if len(x) != len(g.axes) {
		return 0, false
	}
	for j, v := range x {
		i := sort.SearchInts(g.axes[j], v)
		if i == len(g.axes[j]) || g.axes[j][i] != v {
			return 0, false
		}
		idx += i * g.strides[j]
	}
	return idx, true
}

// Value returns the server count of dimension j at lattice index idx.
func (g *Grid) Value(idx, j int) int {
	return g.axes[j][(idx/g.strides[j])%len(g.axes[j])]
}

// Equal reports whether two grids have identical axes.
func (g *Grid) Equal(o *Grid) bool {
	if g.D() != o.D() {
		return false
	}
	for j := range g.axes {
		if len(g.axes[j]) != len(o.axes[j]) {
			return false
		}
		for i := range g.axes[j] {
			if g.axes[j][i] != o.axes[j][i] {
				return false
			}
		}
	}
	return true
}
