package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullAxis(t *testing.T) {
	a := FullAxis(3)
	want := Axis{0, 1, 2, 3}
	if len(a) != len(want) {
		t.Fatalf("len = %d, want %d", len(a), len(want))
	}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
	if len(FullAxis(0)) != 1 {
		t.Error("FullAxis(0) should be {0}")
	}
}

// The paper's running example (Section 4.2 / Figure 5): γ = 2, m = 10
// yields M^γ_j = {0, 1, 2, 4, 8, 10}.
func TestReducedAxisPaperExample(t *testing.T) {
	a := ReducedAxis(10, 2)
	want := []int{0, 1, 2, 4, 8, 10}
	if len(a) != len(want) {
		t.Fatalf("axis = %v, want %v", a, want)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("axis = %v, want %v", a, want)
		}
	}
}

func TestReducedAxisNonIntegerGamma(t *testing.T) {
	// γ = 1.5, m = 8: powers 1, 1.5, 2.25, 3.375, 5.06, 7.59, 11.4…
	// floors/ceils within [0,8]: 1, 1,2, 2,3, 3,4, 5,6, 7,8 → plus 0 and m.
	a := ReducedAxis(8, 1.5)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	if len(a) != len(want) {
		t.Fatalf("axis = %v, want %v", a, want)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("axis = %v, want %v", a, want)
		}
	}
}

func TestReducedAxisEdges(t *testing.T) {
	if got := ReducedAxis(0, 2); len(got) != 1 || got[0] != 0 {
		t.Errorf("m=0: %v, want {0}", got)
	}
	if got := ReducedAxis(1, 2); len(got) != 2 || got[1] != 1 {
		t.Errorf("m=1: %v, want {0,1}", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("gamma <= 1 should panic")
		}
	}()
	ReducedAxis(5, 1)
}

// Property (Section 4.2): consecutive non-zero levels of a reduced axis
// either stay within ratio γ or are adjacent integers (integrality makes a
// finer step impossible), and the axis size is O(m) ∩ O(log_γ m + 1/(γ−1)).
func TestReducedAxisRatioProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(100000)
		gamma := 1.01 + rng.Float64()*3
		a := ReducedAxis(m, gamma)
		if a[0] != 0 || a[len(a)-1] != m {
			return false
		}
		prev := 0
		for _, v := range a {
			if v != 0 && prev != 0 && v != prev+1 &&
				float64(v) > gamma*float64(prev)+1e-9 {
				return false
			}
			prev = v
		}
		if a.MaxRatio() > gamma+1e-9 {
			return false
		}
		// |M^γ_j| ∈ O(log_γ m + 1/(γ−1)): allow a generous constant.
		bound := 2*math.Log(float64(m))/math.Log(gamma) + 2/(gamma-1) + 8
		return float64(len(a)) <= math.Min(bound, float64(m)+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAxisQueries(t *testing.T) {
	a := Axis{0, 1, 2, 4, 8, 10}
	if !a.Contains(4) || a.Contains(5) {
		t.Error("Contains misbehaves")
	}
	if n, ok := a.Next(4); !ok || n != 8 {
		t.Errorf("Next(4) = %d,%v; want 8,true", n, ok)
	}
	if n, ok := a.Next(5); !ok || n != 8 {
		t.Errorf("Next(5) = %d,%v; want 8,true", n, ok)
	}
	if _, ok := a.Next(10); ok {
		t.Error("Next at max should report !ok")
	}
	if a.FloorIndex(5) != 3 { // value 4
		t.Errorf("FloorIndex(5) = %d, want 3", a.FloorIndex(5))
	}
	if a.FloorIndex(-1) != -1 {
		t.Errorf("FloorIndex(-1) = %d, want -1", a.FloorIndex(-1))
	}
	if a.CeilIndex(5) != 4 { // value 8
		t.Errorf("CeilIndex(5) = %d, want 4", a.CeilIndex(5))
	}
	if a.CeilIndex(11) != len(a) {
		t.Errorf("CeilIndex(11) = %d, want len", a.CeilIndex(11))
	}
}

func TestGridEncodeDecodeRoundTrip(t *testing.T) {
	g := New([]Axis{FullAxis(2), ReducedAxis(10, 2), FullAxis(1)})
	if g.Size() != 3*6*2 {
		t.Fatalf("size = %d, want 36", g.Size())
	}
	out := make([]int, 3)
	seen := map[[3]int]bool{}
	for idx := 0; idx < g.Size(); idx++ {
		g.Decode(idx, out)
		back, ok := g.Encode(out)
		if !ok || back != idx {
			t.Fatalf("round trip failed at %d: decoded %v, encoded %d/%v", idx, out, back, ok)
		}
		var key [3]int
		copy(key[:], out)
		if seen[key] {
			t.Fatalf("duplicate configuration %v", out)
		}
		seen[key] = true
		for j := range out {
			if g.Value(idx, j) != out[j] {
				t.Fatalf("Value(%d,%d) = %d, want %d", idx, j, g.Value(idx, j), out[j])
			}
		}
	}
}

func TestGridEncodeRejectsOffLattice(t *testing.T) {
	g := New([]Axis{ReducedAxis(10, 2)})
	if _, ok := g.Encode([]int{5}); ok {
		t.Error("5 is not on the reduced axis")
	}
	if _, ok := g.Encode([]int{1, 1}); ok {
		t.Error("dimension mismatch should fail")
	}
}

func TestGridDecodePanicsOutOfRange(t *testing.T) {
	g := NewFull([]int{1, 1})
	out := make([]int, 2)
	for _, idx := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decode(%d) should panic", idx)
				}
			}()
			g.Decode(idx, out)
		}()
	}
}

func TestGridStrides(t *testing.T) {
	g := NewFull([]int{2, 3}) // axes sizes 3 and 4
	if g.Stride(1) != 1 || g.Stride(0) != 4 {
		t.Errorf("strides = %d,%d; want 4,1", g.Stride(0), g.Stride(1))
	}
	if g.D() != 2 {
		t.Error("D")
	}
}

func TestGridEqual(t *testing.T) {
	a := NewFull([]int{2, 3})
	b := NewFull([]int{2, 3})
	c := NewFull([]int{3, 2})
	d := NewReduced([]int{2, 3}, 2)
	if !a.Equal(b) {
		t.Error("identical grids should be equal")
	}
	if a.Equal(c) {
		t.Error("different axes should differ")
	}
	if a.Equal(NewFull([]int{2})) {
		t.Error("different dimensionality should differ")
	}
	_ = d
}

func TestNewPanicsOnBadAxes(t *testing.T) {
	cases := [][]Axis{
		nil,
		{Axis{}},
		{Axis{1, 2}},
		{Axis{0, 2, 2}},
	}
	for i, axes := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(axes)
		}()
	}
}

func TestNewReducedMatchesPerAxis(t *testing.T) {
	g := NewReduced([]int{10, 7}, 2)
	if g.D() != 2 {
		t.Fatal("D")
	}
	if got := g.Axis(0); len(got) != 6 {
		t.Errorf("axis 0 = %v", got)
	}
	// m=7, γ=2: {0,1,2,4,7}
	a1 := g.Axis(1)
	want := []int{0, 1, 2, 4, 7}
	if len(a1) != len(want) {
		t.Fatalf("axis 1 = %v, want %v", a1, want)
	}
	for i := range want {
		if a1[i] != want[i] {
			t.Fatalf("axis 1 = %v, want %v", a1, want)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	g := NewFull([]int{9, 9, 9})
	out := make([]int, 3)
	for i := 0; i < b.N; i++ {
		g.Decode(i%g.Size(), out)
	}
}

func BenchmarkEncode(b *testing.B) {
	g := NewFull([]int{9, 9, 9})
	x := []int{3, 7, 2}
	for i := 0; i < b.N; i++ {
		g.Encode(x)
	}
}
