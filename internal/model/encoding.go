package model

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/costfn"
)

// The JSON instance codec lives in the model layer so every consumer —
// the public facade, the CLI tools and the serving layer — shares one
// wire format for instances and fleet templates. The root package
// re-exports the types under their historical names.

// InstanceJSON is the on-disk description of a problem instance consumed
// by cmd/rightsize and produced by EncodeInstance. Time-dependence can be
// expressed per type either with an explicit per-slot cost list ("costs")
// or a base cost plus per-slot scale factors ("cost" + "scale").
type InstanceJSON struct {
	Types  []ServerTypeJSON `json:"types"`
	Lambda []float64        `json:"lambda"`
	Counts [][]int          `json:"counts,omitempty"`
}

// ServerTypeJSON mirrors ServerType.
type ServerTypeJSON struct {
	Name       string         `json:"name"`
	Count      int            `json:"count"`
	SwitchCost float64        `json:"switchCost"`
	MaxLoad    float64        `json:"maxLoad"`
	Cost       *CostFuncJSON  `json:"cost,omitempty"`
	Costs      []CostFuncJSON `json:"costs,omitempty"`
	Scale      []float64      `json:"scale,omitempty"`
}

// CostFuncJSON is a tagged union of the cost-function families.
type CostFuncJSON struct {
	Kind string `json:"kind"` // "constant" | "affine" | "power" | "piecewise"

	// constant
	C float64 `json:"c,omitempty"`
	// affine / power
	Idle float64 `json:"idle,omitempty"`
	Rate float64 `json:"rate,omitempty"`
	Coef float64 `json:"coef,omitempty"`
	Exp  float64 `json:"exp,omitempty"`
	// piecewise
	Z []float64 `json:"z,omitempty"`
	V []float64 `json:"v,omitempty"`
}

// Func materialises the described cost function.
func (c *CostFuncJSON) Func() (costfn.Func, error) {
	switch c.Kind {
	case "constant":
		return costfn.Constant{C: c.C}, nil
	case "affine":
		return costfn.Affine{Idle: c.Idle, Rate: c.Rate}, nil
	case "power":
		return costfn.Power{Idle: c.Idle, Coef: c.Coef, Exp: c.Exp}, nil
	case "piecewise":
		return costfn.NewPiecewiseLinear(c.Z, c.V)
	default:
		return nil, fmt.Errorf("model: unknown cost kind %q", c.Kind)
	}
}

// ParseInstance decodes and validates an instance from JSON.
func ParseInstance(r io.Reader) (*Instance, error) {
	var spec InstanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("model: decoding instance: %w", err)
	}
	return spec.Instance()
}

// Instance materialises and validates the described instance.
func (spec *InstanceJSON) Instance() (*Instance, error) {
	ins := &Instance{
		Lambda: spec.Lambda,
		Counts: spec.Counts,
	}
	for i, st := range spec.Types {
		profile, err := st.profile(len(spec.Lambda))
		if err != nil {
			return nil, fmt.Errorf("model: type %d (%s): %w", i, st.Name, err)
		}
		ins.Types = append(ins.Types, ServerType{
			Name:       st.Name,
			Count:      st.Count,
			SwitchCost: st.SwitchCost,
			MaxLoad:    st.MaxLoad,
			Cost:       profile,
		})
	}
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return ins, nil
}

func (st *ServerTypeJSON) profile(T int) (CostProfile, error) {
	switch {
	case st.Cost != nil && len(st.Costs) > 0:
		return nil, fmt.Errorf("specify either cost or costs, not both")
	case len(st.Costs) > 0:
		if len(st.Costs) != T {
			return nil, fmt.Errorf("costs has %d entries, want %d", len(st.Costs), T)
		}
		fs := make([]costfn.Func, T)
		for t, c := range st.Costs {
			f, err := c.Func()
			if err != nil {
				return nil, fmt.Errorf("slot %d: %w", t+1, err)
			}
			fs[t] = f
		}
		return Varying{Fs: fs}, nil
	case st.Cost != nil:
		f, err := st.Cost.Func()
		if err != nil {
			return nil, err
		}
		if len(st.Scale) > 0 {
			if len(st.Scale) != T {
				return nil, fmt.Errorf("scale has %d entries, want %d", len(st.Scale), T)
			}
			return Modulated{F: f, Scale: st.Scale}, nil
		}
		return Static{F: f}, nil
	default:
		return nil, fmt.Errorf("missing cost specification")
	}
}

// Template materialises the type as a streaming fleet template. Unlike
// profile, a template has no horizon: it must be well-defined for every
// future slot, so only static cost profiles are accepted ("costs" lists
// and "scale" factors are finite and therefore rejected). Time-dependent
// costs reach a live session per slot, through SlotInput.Costs.
func (st *ServerTypeJSON) Template() (ServerType, error) {
	out := ServerType{
		Name:       st.Name,
		Count:      st.Count,
		SwitchCost: st.SwitchCost,
		MaxLoad:    st.MaxLoad,
	}
	if len(st.Costs) > 0 || len(st.Scale) > 0 {
		return out, fmt.Errorf("fleet templates are unbounded in time; per-slot costs/scale lists are not allowed")
	}
	if st.Cost == nil {
		return out, fmt.Errorf("missing cost specification")
	}
	f, err := st.Cost.Func()
	if err != nil {
		return out, err
	}
	out.Cost = Static{F: f}
	return out, nil
}

// FleetTemplate materialises a streaming fleet template from its portable
// description (the inverse of EncodeFleet).
func FleetTemplate(types []ServerTypeJSON) ([]ServerType, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("model: fleet template needs at least one server type")
	}
	out := make([]ServerType, len(types))
	for i := range types {
		st, err := types[i].Template()
		if err != nil {
			return nil, fmt.Errorf("model: type %d (%s): %w", i, types[i].Name, err)
		}
		out[i] = st
	}
	return out, nil
}

// EncodeFleet describes a fleet template portably. Only static cost
// profiles of the built-in families round-trip; anything time-dependent
// or user-defined is rejected (see Template).
func EncodeFleet(types []ServerType) ([]ServerTypeJSON, error) {
	out := make([]ServerTypeJSON, len(types))
	for i, st := range types {
		p, ok := st.Cost.(Static)
		if !ok {
			return nil, fmt.Errorf("model: type %d (%s): cannot encode %T as a fleet template (static profiles only)", i, st.Name, st.Cost)
		}
		cj, err := encodeFunc(p.F)
		if err != nil {
			return nil, fmt.Errorf("model: type %d (%s): %w", i, st.Name, err)
		}
		out[i] = ServerTypeJSON{
			Name:       st.Name,
			Count:      st.Count,
			SwitchCost: st.SwitchCost,
			MaxLoad:    st.MaxLoad,
			Cost:       &cj,
		}
	}
	return out, nil
}

// EncodeInstance writes an instance as JSON. Cost profiles round-trip for
// the built-in families; opaque user-defined CostFuncs are rejected.
func EncodeInstance(w io.Writer, ins *Instance) error {
	spec := InstanceJSON{Lambda: ins.Lambda, Counts: ins.Counts}
	for i, st := range ins.Types {
		stj := ServerTypeJSON{
			Name:       st.Name,
			Count:      st.Count,
			SwitchCost: st.SwitchCost,
			MaxLoad:    st.MaxLoad,
		}
		switch p := st.Cost.(type) {
		case Static:
			cj, err := encodeFunc(p.F)
			if err != nil {
				return fmt.Errorf("model: type %d: %w", i, err)
			}
			stj.Cost = &cj
		case Modulated:
			cj, err := encodeFunc(p.F)
			if err != nil {
				return fmt.Errorf("model: type %d: %w", i, err)
			}
			stj.Cost = &cj
			stj.Scale = p.Scale
		case Varying:
			for t, f := range p.Fs {
				cj, err := encodeFunc(f)
				if err != nil {
					return fmt.Errorf("model: type %d slot %d: %w", i, t+1, err)
				}
				stj.Costs = append(stj.Costs, cj)
			}
		default:
			return fmt.Errorf("model: type %d: cannot encode cost profile %T", i, st.Cost)
		}
		spec.Types = append(spec.Types, stj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

func encodeFunc(f costfn.Func) (CostFuncJSON, error) {
	switch v := f.(type) {
	case costfn.Constant:
		return CostFuncJSON{Kind: "constant", C: v.C}, nil
	case costfn.Affine:
		return CostFuncJSON{Kind: "affine", Idle: v.Idle, Rate: v.Rate}, nil
	case costfn.Power:
		return CostFuncJSON{Kind: "power", Idle: v.Idle, Coef: v.Coef, Exp: v.Exp}, nil
	default:
		return CostFuncJSON{}, fmt.Errorf("cannot encode cost function %T", f)
	}
}
