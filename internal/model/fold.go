package model

import "fmt"

// The paper charges switching costs only for powering up and remarks that
// this loses no generality: because every schedule starts and ends with
// all servers off, each type powers down exactly as often as it powers up,
// so a per-down cost folds into the per-up cost. This file implements the
// folding and the extended cost semantics needed to verify it.

// SwitchCostWithDown returns Σ_j [ up_j (cur_j − prev_j)^+ +
// down_j (prev_j − cur_j)^+ ]: the switching cost of the move when
// power-downs cost too.
func (ins *Instance) SwitchCostWithDown(prev, cur Config, down []float64) float64 {
	total := 0.0
	for j := range ins.Types {
		if up := cur[j] - prev[j]; up > 0 {
			total += ins.Types[j].SwitchCost * float64(up)
		} else if up < 0 {
			total += down[j] * float64(-up)
		}
	}
	return total
}

// CostWithDown evaluates a schedule under the extended model where
// powering down a server of type j costs down[j], including the final
// power-down into the boundary state x_{T+1} = 0.
func (e *Evaluator) CostWithDown(s Schedule, down []float64) CostBreakdown {
	if len(down) != e.ins.D() {
		panic(fmt.Sprintf("model: %d down-costs for %d types", len(down), e.ins.D()))
	}
	br := e.Cost(s) // operating cost and power-up part
	prev := make(Config, e.ins.D())
	for t := 1; t <= len(s); t++ {
		for j := range e.ins.Types {
			if d := prev[j] - s[t-1][j]; d > 0 {
				br.Switching += down[j] * float64(d)
			}
		}
		prev = s[t-1]
	}
	// Final transition to the all-off boundary state.
	for j := range e.ins.Types {
		br.Switching += down[j] * float64(prev[j])
	}
	return br
}

// FoldDownCosts returns an equivalent instance in the paper's up-only
// model: β'_j = β_j + down_j. For every schedule, its cost under the
// returned instance equals its CostWithDown under the original — so every
// algorithm and guarantee in this repository applies verbatim to the
// extended model.
func FoldDownCosts(ins *Instance, down []float64) (*Instance, error) {
	if len(down) != ins.D() {
		return nil, fmt.Errorf("model: %d down-costs for %d types", len(down), ins.D())
	}
	out := &Instance{Lambda: ins.Lambda, Counts: ins.Counts}
	for j, st := range ins.Types {
		if down[j] < 0 {
			return nil, fmt.Errorf("model: negative down-cost %g for type %d", down[j], j)
		}
		st.SwitchCost += down[j]
		out.Types = append(out.Types, st)
	}
	return out, nil
}
