package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSwitchCostWithDown(t *testing.T) {
	ins := twoTypeInstance() // β = (2, 8)
	down := []float64{1, 3}
	if got := ins.SwitchCostWithDown(Config{0, 0}, Config{2, 1}, down); got != 2*2+8 {
		t.Errorf("pure up = %g, want 12", got)
	}
	if got := ins.SwitchCostWithDown(Config{2, 1}, Config{0, 0}, down); got != 2*1+3 {
		t.Errorf("pure down = %g, want 5", got)
	}
	if got := ins.SwitchCostWithDown(Config{2, 0}, Config{1, 1}, down); got != 1+8 {
		t.Errorf("mixed = %g, want 9", got)
	}
}

// The folding equivalence (paper, after Equation 2): any schedule's cost
// with explicit down-costs equals its cost under the folded instance.
func TestFoldDownCostsEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomInstance(rng, 3, 3, 6)
		down := make([]float64, ins.D())
		for j := range down {
			down[j] = rng.Float64() * 5
		}
		folded, err := FoldDownCosts(ins, down)
		if err != nil {
			return false
		}
		s := randomFeasibleSchedule(rng, ins)
		extended := NewEvaluator(ins).CostWithDown(s, down)
		plain := NewEvaluator(folded).Cost(s)
		return math.Abs(extended.Total()-plain.Total()) < 1e-9*(1+plain.Total()) &&
			math.Abs(extended.Operating-plain.Operating) < 1e-9*(1+plain.Operating)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFoldDownCostsValidation(t *testing.T) {
	ins := twoTypeInstance()
	if _, err := FoldDownCosts(ins, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FoldDownCosts(ins, []float64{1, -1}); err == nil {
		t.Error("negative down-cost should error")
	}
	folded, err := FoldDownCosts(ins, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if folded.Types[0].SwitchCost != 3 || folded.Types[1].SwitchCost != 11 {
		t.Errorf("folded β = (%g, %g), want (3, 11)",
			folded.Types[0].SwitchCost, folded.Types[1].SwitchCost)
	}
	// Original untouched.
	if ins.Types[0].SwitchCost != 2 {
		t.Error("folding must not mutate the input")
	}
}

func TestCostWithDownPanicsOnBadLength(t *testing.T) {
	ins := twoTypeInstance()
	e := NewEvaluator(ins)
	s := Schedule{{1, 0}, {0, 1}, {2, 0}, {0, 0}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.CostWithDown(s, []float64{1})
}

func TestCostWithDownCountsFinalPowerDown(t *testing.T) {
	ins := &Instance{
		Types: []ServerType{{
			Count: 2, SwitchCost: 1, MaxLoad: 1,
			Cost: Static{F: zeroCost{}},
		}},
		Lambda: []float64{1},
	}
	e := NewEvaluator(ins)
	br := e.CostWithDown(Schedule{{2}}, []float64{5})
	// 2 ups (β=1) + 2 final downs (5 each) = 12 switching.
	if math.Abs(br.Switching-12) > 1e-12 {
		t.Errorf("switching = %g, want 12", br.Switching)
	}
}

type zeroCost struct{}

func (zeroCost) Value(float64) float64 { return 0 }
