// Package model defines the data-center right-sizing problem of
// Albers–Quedenfeld (SPAA 2021): problem instances
// I = (T, d, m, β, F, Λ), integral server configurations, schedules, and
// the cost semantics of Equation (2),
//
//	C(X) = Σ_t [ g_t(x_t) + Σ_j β_j (x_{t,j} − x_{t−1,j})^+ ],
//
// with x_0 = x_{T+1} = 0. Time slots are 1-based throughout, matching the
// paper; slice indices shift by one internally.
package model

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/costfn"
	"repro/internal/dispatch"
	"repro/internal/numeric"
)

// CostProfile yields the operating-cost function f_{t,j} of a server type
// for time slot t (1-based). Implementations must return functions that are
// convex, non-decreasing and non-negative.
type CostProfile interface {
	At(t int) costfn.Func
}

// Static is a time-independent cost profile: f_{t,j} = f_j for all t.
// Algorithm A (Section 2) requires all profiles to be Static.
type Static struct {
	F costfn.Func
}

// At implements CostProfile.
func (s Static) At(int) costfn.Func { return s.F }

// Varying is a fully time-dependent cost profile with one function per
// slot. Fs[t-1] is the function for slot t.
type Varying struct {
	Fs []costfn.Func
}

// At implements CostProfile.
func (v Varying) At(t int) costfn.Func { return v.Fs[t-1] }

// Modulated scales a base function by a per-slot factor (e.g. an
// electricity price signal): f_{t,j}(z) = Scale[t-1] · F(z).
type Modulated struct {
	F     costfn.Func
	Scale []float64
}

// At implements CostProfile.
func (m Modulated) At(t int) costfn.Func {
	return costfn.Scaled{F: m.F, Factor: m.Scale[t-1]}
}

// ServerType describes one of the d heterogeneous server types.
type ServerType struct {
	Name       string      // informational label ("cpu", "gpu", …)
	Count      int         // m_j: number of servers of this type
	SwitchCost float64     // β_j: cost of powering one server up
	MaxLoad    float64     // zmax_j: per-server capacity per slot
	Cost       CostProfile // f_{t,j}
}

// Instance is a problem instance I = (T, d, m, β, F, Λ). The zero value is
// not usable; construct instances with struct literals and call Validate.
type Instance struct {
	Types  []ServerType
	Lambda []float64 // job volumes λ_1..λ_T; Lambda[t-1] is slot t

	// Counts optionally makes the data-center size time-dependent
	// (Section 4.3): Counts[t-1][j] overrides Types[j].Count for slot t.
	// nil means the sizes are static.
	Counts [][]int
}

// T returns the number of time slots.
func (ins *Instance) T() int { return len(ins.Lambda) }

// D returns the number of server types.
func (ins *Instance) D() int { return len(ins.Types) }

// CountAt returns m_{t,j}, the number of available servers of type j
// (0-based) during slot t (1-based).
func (ins *Instance) CountAt(t, j int) int {
	if ins.Counts != nil {
		return ins.Counts[t-1][j]
	}
	return ins.Types[j].Count
}

// TimeVarying reports whether the instance has time-dependent data-center
// sizes.
func (ins *Instance) TimeVarying() bool { return ins.Counts != nil }

// Validate checks the structural invariants of the instance: positive
// dimensions, non-negative parameters, per-slot feasibility (total capacity
// covers each λ_t), and well-formed Counts if present.
func (ins *Instance) Validate() error {
	if ins.D() == 0 {
		return fmt.Errorf("model: instance has no server types")
	}
	if ins.T() == 0 {
		return fmt.Errorf("model: instance has no time slots")
	}
	for j, st := range ins.Types {
		if st.Count < 0 {
			return fmt.Errorf("model: type %d has negative count %d", j, st.Count)
		}
		if st.SwitchCost < 0 {
			return fmt.Errorf("model: type %d has negative switching cost %g", j, st.SwitchCost)
		}
		if st.MaxLoad <= 0 {
			return fmt.Errorf("model: type %d has non-positive capacity %g", j, st.MaxLoad)
		}
		if st.Cost == nil {
			return fmt.Errorf("model: type %d has no cost profile", j)
		}
	}
	if ins.Counts != nil && len(ins.Counts) != ins.T() {
		return fmt.Errorf("model: Counts has %d slots, want %d", len(ins.Counts), ins.T())
	}
	for t := 1; t <= ins.T(); t++ {
		if ins.Lambda[t-1] < 0 {
			return fmt.Errorf("model: negative job volume %g at slot %d", ins.Lambda[t-1], t)
		}
		if ins.Counts != nil && len(ins.Counts[t-1]) != ins.D() {
			return fmt.Errorf("model: Counts[%d] has %d types, want %d", t-1, len(ins.Counts[t-1]), ins.D())
		}
		cap := 0.0
		for j := range ins.Types {
			c := ins.CountAt(t, j)
			if c < 0 {
				return fmt.Errorf("model: negative count at slot %d type %d", t, j)
			}
			cap += float64(c) * ins.Types[j].MaxLoad
		}
		if cap < ins.Lambda[t-1]*(1-1e-12) {
			return fmt.Errorf("model: slot %d demand %g exceeds total capacity %g",
				t, ins.Lambda[t-1], cap)
		}
	}
	return nil
}

// Prefix returns the shortened instance I_t = (t, d, m, β, F, Λ_t) of
// Section 2. The returned instance shares underlying slices with ins.
func (ins *Instance) Prefix(t int) *Instance {
	if t < 0 || t > ins.T() {
		panic(fmt.Sprintf("model: prefix length %d out of range [0, %d]", t, ins.T()))
	}
	p := &Instance{
		Types:  ins.Types,
		Lambda: ins.Lambda[:t],
	}
	if ins.Counts != nil {
		p.Counts = ins.Counts[:t]
	}
	return p
}

// TimeIndependent reports whether every type's cost profile is Static, the
// precondition of Algorithm A.
func (ins *Instance) TimeIndependent() bool {
	for _, st := range ins.Types {
		if _, ok := st.Cost.(Static); !ok {
			return false
		}
	}
	return true
}

// Config is a server configuration x = (x_1, …, x_d): the number of active
// servers of each type during one slot.
type Config []int

// Clone returns a copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two configurations are identical.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no server is active.
func (c Config) IsZero() bool {
	for _, v := range c {
		if v != 0 {
			return false
		}
	}
	return true
}

// Total returns the total number of active servers.
func (c Config) Total() int {
	sum := 0
	for _, v := range c {
		sum += v
	}
	return sum
}

// String renders the configuration as "(x1, x2, …)".
func (c Config) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range c {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Schedule is a sequence of configurations X = (x_1, …, x_T).
// Schedule[t-1] is the configuration during slot t. The boundary states
// x_0 = x_{T+1} = 0 are implicit.
type Schedule []Config

// Clone deep-copies the schedule.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	for i, c := range s {
		out[i] = c.Clone()
	}
	return out
}

// CostBreakdown decomposes a schedule's total cost per Equation (2).
type CostBreakdown struct {
	Operating float64 // C_op = Σ_t g_t(x_t)
	Switching float64 // C_sw = Σ_t Σ_j β_j (x_{t,j} − x_{t−1,j})^+
}

// Total returns C = C_op + C_sw.
func (b CostBreakdown) Total() float64 { return b.Operating + b.Switching }

// Evaluator computes operating costs g_t(x) and schedule costs for one
// instance, reusing scratch buffers. Create one per goroutine with
// NewEvaluator; it is not safe for concurrent use.
type Evaluator struct {
	ins     *Instance
	servers []dispatch.Server
	solver  dispatch.Solver
}

// NewEvaluator returns an evaluator for the instance.
func NewEvaluator(ins *Instance) *Evaluator {
	return &Evaluator{
		ins:     ins,
		servers: make([]dispatch.Server, ins.D()),
	}
}

// Instance returns the instance the evaluator was built for.
func (e *Evaluator) Instance() *Instance { return e.ins }

// G returns the operating cost g_t(x) for slot t (1-based). Configurations
// exceeding the per-slot server counts yield +Inf (they correspond to
// vertices absent from the paper's graph).
func (e *Evaluator) G(t int, x Config) float64 {
	if len(x) != e.ins.D() {
		panic("model: configuration dimension mismatch")
	}
	for j := range e.servers {
		if x[j] < 0 || x[j] > e.ins.CountAt(t, j) {
			return math.Inf(1)
		}
		e.servers[j] = dispatch.Server{
			Active: x[j],
			Cap:    e.ins.Types[j].MaxLoad,
			F:      e.ins.Types[j].Cost.At(t),
		}
	}
	return e.solver.Cost(e.servers, e.ins.Lambda[t-1])
}

// Split returns the optimal load split (volumes and fractions) behind
// g_t(x) as a fresh Assignment; SplitInto is the buffer-reusing variant
// for per-slot reporting loops.
func (e *Evaluator) Split(t int, x Config) dispatch.Assignment {
	var res dispatch.Assignment
	e.SplitInto(t, x, &res)
	return res
}

// SplitInto computes the optimal load split behind g_t(x) into res,
// reusing its volume/fraction buffers and the evaluator's scratch — the
// allocation-free counterpart of Split.
func (e *Evaluator) SplitInto(t int, x Config, res *dispatch.Assignment) {
	d := e.ins.D()
	for j := range e.servers {
		if x[j] < 0 || x[j] > e.ins.CountAt(t, j) {
			if cap(res.Y) < d {
				res.Y = make([]float64, d)
			}
			if cap(res.Z) < d {
				res.Z = make([]float64, d)
			}
			res.Y, res.Z = res.Y[:d], res.Z[:d]
			res.Cost = math.Inf(1)
			for i := 0; i < d; i++ {
				res.Y[i], res.Z[i] = 0, 0
			}
			return
		}
		e.servers[j] = dispatch.Server{
			Active: x[j],
			Cap:    e.ins.Types[j].MaxLoad,
			F:      e.ins.Types[j].Cost.At(t),
		}
	}
	e.solver.AssignInto(e.servers, e.ins.Lambda[t-1], res)
}

// SwitchCost returns Σ_j β_j (cur_j − prev_j)^+, the cost of moving from
// configuration prev to cur.
func (ins *Instance) SwitchCost(prev, cur Config) float64 {
	return SwitchCostOf(ins.Types, prev, cur)
}

// SwitchCostOf is SwitchCost for a bare fleet template — the single
// definition of the switching semantics shared by batch evaluation, the
// lookahead window DP and the session's streaming cost accounting.
func SwitchCostOf(types []ServerType, prev, cur Config) float64 {
	total := 0.0
	for j := range types {
		if up := cur[j] - prev[j]; up > 0 {
			total += types[j].SwitchCost * float64(up)
		}
	}
	return total
}

// Cost evaluates the full cost of a schedule per Equation (2). Infeasible
// slots (demand not covered) surface as +Inf operating cost.
func (e *Evaluator) Cost(s Schedule) CostBreakdown {
	if len(s) != e.ins.T() {
		panic(fmt.Sprintf("model: schedule has %d slots, instance has %d", len(s), e.ins.T()))
	}
	var br CostBreakdown
	prev := make(Config, e.ins.D())
	opCosts := make([]float64, 0, len(s))
	for t := 1; t <= len(s); t++ {
		opCosts = append(opCosts, e.G(t, s[t-1]))
		br.Switching += e.ins.SwitchCost(prev, s[t-1])
		prev = s[t-1]
	}
	br.Operating = numeric.SumKahan(opCosts)
	return br
}

// Feasible checks the paper's feasibility conditions for every slot:
// 0 <= x_{t,j} <= m_{t,j} and Σ_j x_{t,j}·zmax_j >= λ_t. It returns a
// descriptive error for the first violation.
func (ins *Instance) Feasible(s Schedule) error {
	if len(s) != ins.T() {
		return fmt.Errorf("model: schedule has %d slots, instance has %d", len(s), ins.T())
	}
	for t := 1; t <= ins.T(); t++ {
		x := s[t-1]
		if len(x) != ins.D() {
			return fmt.Errorf("model: slot %d config has %d types, want %d", t, len(x), ins.D())
		}
		cap := 0.0
		for j := range ins.Types {
			if x[j] < 0 || x[j] > ins.CountAt(t, j) {
				return fmt.Errorf("model: slot %d type %d count %d out of [0, %d]",
					t, j, x[j], ins.CountAt(t, j))
			}
			cap += float64(x[j]) * ins.Types[j].MaxLoad
		}
		if cap < ins.Lambda[t-1]*(1-1e-12) {
			return fmt.Errorf("model: slot %d capacity %g below demand %g",
				t, cap, ins.Lambda[t-1])
		}
	}
	return nil
}
