package model

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/costfn"
)

// twoTypeInstance is a small heterogeneous instance used across tests:
// type 0 "slow" (cap 1), type 1 "fast" (cap 4), as in the paper's intro.
func twoTypeInstance() *Instance {
	return &Instance{
		Types: []ServerType{
			{Name: "slow", Count: 3, SwitchCost: 2, MaxLoad: 1,
				Cost: Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Name: "fast", Count: 2, SwitchCost: 8, MaxLoad: 4,
				Cost: Static{F: costfn.Affine{Idle: 3, Rate: 0.5}}},
		},
		Lambda: []float64{1, 4, 2, 0},
	}
}

func TestInstanceBasics(t *testing.T) {
	ins := twoTypeInstance()
	if ins.T() != 4 || ins.D() != 2 {
		t.Fatalf("T=%d D=%d, want 4, 2", ins.T(), ins.D())
	}
	if err := ins.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !ins.TimeIndependent() {
		t.Error("static profiles should be time-independent")
	}
	if ins.TimeVarying() {
		t.Error("no Counts: not time-varying")
	}
	if ins.CountAt(1, 0) != 3 || ins.CountAt(4, 1) != 2 {
		t.Error("CountAt should return static counts")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"no types", func(i *Instance) { i.Types = nil }},
		{"no slots", func(i *Instance) { i.Lambda = nil }},
		{"negative count", func(i *Instance) { i.Types[0].Count = -1 }},
		{"negative beta", func(i *Instance) { i.Types[0].SwitchCost = -1 }},
		{"zero capacity", func(i *Instance) { i.Types[0].MaxLoad = 0 }},
		{"nil profile", func(i *Instance) { i.Types[0].Cost = nil }},
		{"negative lambda", func(i *Instance) { i.Lambda[0] = -1 }},
		{"excess demand", func(i *Instance) { i.Lambda[0] = 100 }},
		{"bad counts length", func(i *Instance) { i.Counts = [][]int{{1, 1}} }},
		{"bad counts width", func(i *Instance) {
			i.Counts = [][]int{{1}, {1}, {1}, {1}}
		}},
		{"negative varying count", func(i *Instance) {
			i.Counts = [][]int{{3, 2}, {3, 2}, {-1, 2}, {3, 2}}
		}},
		{"varying capacity shortfall", func(i *Instance) {
			i.Counts = [][]int{{3, 2}, {0, 0}, {3, 2}, {3, 2}}
		}},
	}
	for _, c := range cases {
		ins := twoTypeInstance()
		c.mutate(ins)
		if err := ins.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestPrefix(t *testing.T) {
	ins := twoTypeInstance()
	p := ins.Prefix(2)
	if p.T() != 2 || p.D() != 2 {
		t.Fatalf("prefix T=%d D=%d", p.T(), p.D())
	}
	if p.Lambda[1] != 4 {
		t.Error("prefix should share job volumes")
	}
	if ins.Prefix(0).T() != 0 {
		t.Error("empty prefix should have no slots")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range prefix should panic")
		}
	}()
	ins.Prefix(5)
}

func TestPrefixTimeVarying(t *testing.T) {
	ins := twoTypeInstance()
	ins.Counts = [][]int{{3, 2}, {2, 2}, {3, 1}, {3, 2}}
	p := ins.Prefix(3)
	if !p.TimeVarying() || p.CountAt(3, 1) != 1 {
		t.Error("prefix should keep time-varying counts")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{1, 2, 0}
	if c.Total() != 3 {
		t.Error("Total")
	}
	if c.IsZero() {
		t.Error("IsZero on non-zero config")
	}
	if !(Config{0, 0}).IsZero() {
		t.Error("IsZero on zero config")
	}
	d := c.Clone()
	d[0] = 9
	if c[0] == 9 {
		t.Error("Clone should not share storage")
	}
	if !c.Equal(Config{1, 2, 0}) || c.Equal(Config{1, 2}) || c.Equal(Config{1, 2, 1}) {
		t.Error("Equal misbehaves")
	}
	if got := c.String(); got != "(1, 2, 0)" {
		t.Errorf("String = %q", got)
	}
}

func TestEvaluatorOperatingCost(t *testing.T) {
	ins := twoTypeInstance()
	e := NewEvaluator(ins)
	// Slot 4 has λ=0: idle costs only.
	if got := e.G(4, Config{2, 1}); math.Abs(got-(2*1+3)) > 1e-9 {
		t.Errorf("idle-only cost = %g, want 5", got)
	}
	// Slot 1, λ=1: one slow server suffices; cost 1 idle + 1 load.
	if got := e.G(1, Config{1, 0}); math.Abs(got-2) > 1e-9 {
		t.Errorf("G = %g, want 2", got)
	}
	// Infeasible: zero servers for positive demand.
	if got := e.G(1, Config{0, 0}); !math.IsInf(got, 1) {
		t.Errorf("G = %g, want +Inf", got)
	}
	// Over-count is +Inf (vertex not in the graph).
	if got := e.G(1, Config{4, 0}); !math.IsInf(got, 1) {
		t.Errorf("over-count G = %g, want +Inf", got)
	}
	// Negative count is +Inf as well.
	if got := e.G(1, Config{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("negative count G = %g, want +Inf", got)
	}
}

func TestEvaluatorSplit(t *testing.T) {
	ins := twoTypeInstance()
	e := NewEvaluator(ins)
	a := e.Split(2, Config{3, 1}) // λ=4
	sum := 0.0
	for _, y := range a.Y {
		sum += y
	}
	if math.Abs(sum-4) > 1e-6 {
		t.Errorf("split volumes sum to %g, want 4", sum)
	}
	// The fast type has the lower marginal rate (0.5 < 1): it should
	// absorb everything (capacity 4 suffices).
	if math.Abs(a.Y[1]-4) > 1e-6 {
		t.Errorf("fast-type volume = %g, want 4", a.Y[1])
	}
	bad := e.Split(1, Config{9, 9})
	if !math.IsInf(bad.Cost, 1) {
		t.Error("invalid config should cost +Inf")
	}
}

func TestSwitchCost(t *testing.T) {
	ins := twoTypeInstance()
	if got := ins.SwitchCost(Config{0, 0}, Config{2, 1}); got != 2*2+8 {
		t.Errorf("switch cost = %g, want 12", got)
	}
	if got := ins.SwitchCost(Config{2, 1}, Config{1, 0}); got != 0 {
		t.Errorf("power-down cost = %g, want 0", got)
	}
	if got := ins.SwitchCost(Config{1, 0}, Config{0, 2}); got != 16 {
		t.Errorf("mixed move = %g, want 16", got)
	}
}

func TestScheduleCost(t *testing.T) {
	ins := twoTypeInstance()
	e := NewEvaluator(ins)
	s := Schedule{
		Config{1, 0}, // λ=1 on one slow server: 1+1 = 2; switch 2
		Config{0, 1}, // λ=4 on one fast: 3+2 = 5; switch 8
		Config{0, 1}, // λ=2 on one fast: 3+1 = 4
		Config{0, 0}, // λ=0, nothing active
	}
	br := e.Cost(s)
	if math.Abs(br.Operating-(2+5+4)) > 1e-9 {
		t.Errorf("operating = %g, want 11", br.Operating)
	}
	if math.Abs(br.Switching-(2+8)) > 1e-9 {
		t.Errorf("switching = %g, want 10", br.Switching)
	}
	if math.Abs(br.Total()-21) > 1e-9 {
		t.Errorf("total = %g, want 21", br.Total())
	}
}

func TestFeasible(t *testing.T) {
	ins := twoTypeInstance()
	good := Schedule{{1, 0}, {0, 1}, {2, 0}, {0, 0}}
	if err := ins.Feasible(good); err != nil {
		t.Errorf("good schedule rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Schedule
	}{
		{"wrong length", Schedule{{1, 0}}},
		{"wrong width", Schedule{{1}, {0, 1}, {2, 0}, {0, 0}}},
		{"negative", Schedule{{-1, 1}, {0, 1}, {2, 0}, {0, 0}}},
		{"over count", Schedule{{4, 0}, {0, 1}, {2, 0}, {0, 0}}},
		{"under capacity", Schedule{{1, 0}, {3, 0}, {2, 0}, {0, 0}}},
	}
	for _, c := range cases {
		if err := ins.Feasible(c.s); err == nil {
			t.Errorf("%s: expected feasibility error", c.name)
		}
	}
}

func TestFeasibleTimeVarying(t *testing.T) {
	ins := twoTypeInstance()
	ins.Counts = [][]int{{3, 2}, {3, 2}, {1, 2}, {3, 2}}
	bad := Schedule{{1, 0}, {0, 1}, {2, 0}, {0, 0}} // slot 3 allows only 1 slow
	if err := ins.Feasible(bad); err == nil {
		t.Error("expected violation of time-varying count")
	}
	if !strings.Contains(ins.Feasible(bad).Error(), "slot 3") {
		t.Error("error should pinpoint slot 3")
	}
}

func TestCostProfiles(t *testing.T) {
	static := Static{F: costfn.Constant{C: 2}}
	if static.At(1).Value(0) != 2 || static.At(99).Value(0) != 2 {
		t.Error("Static should ignore t")
	}
	varying := Varying{Fs: []costfn.Func{costfn.Constant{C: 1}, costfn.Constant{C: 5}}}
	if varying.At(1).Value(0) != 1 || varying.At(2).Value(0) != 5 {
		t.Error("Varying should index by slot")
	}
	mod := Modulated{F: costfn.Affine{Idle: 2, Rate: 1}, Scale: []float64{1, 0.5}}
	if mod.At(2).Value(0) != 1 {
		t.Errorf("Modulated idle at t=2 = %g, want 1", mod.At(2).Value(0))
	}
}

func TestEvaluatorCostMatchesManualSum(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomInstance(rng, 3, 4, 6)
		e := NewEvaluator(ins)
		s := randomFeasibleSchedule(rng, ins)
		br := e.Cost(s)
		// Manual recomputation.
		op, sw := 0.0, 0.0
		prev := make(Config, ins.D())
		for t := 1; t <= ins.T(); t++ {
			op += e.G(t, s[t-1])
			sw += ins.SwitchCost(prev, s[t-1])
			prev = s[t-1]
		}
		return math.Abs(br.Operating-op) < 1e-9*(1+op) &&
			math.Abs(br.Switching-sw) < 1e-9*(1+sw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomInstance builds a feasible random instance with d <= maxD types,
// T <= maxT slots, counts <= maxM.
func randomInstance(rng *rand.Rand, maxD, maxM, maxT int) *Instance {
	d := 1 + rng.Intn(maxD)
	T := 1 + rng.Intn(maxT)
	types := make([]ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(maxM)
		cap := 0.5 + rng.Float64()*2
		var f costfn.Func
		switch rng.Intn(3) {
		case 0:
			f = costfn.Constant{C: rng.Float64() * 3}
		case 1:
			f = costfn.Affine{Idle: rng.Float64() * 2, Rate: rng.Float64() * 3}
		default:
			f = costfn.Power{Idle: rng.Float64(), Coef: 0.1 + rng.Float64()*2, Exp: 1 + rng.Float64()*2}
		}
		types[j] = ServerType{
			Name:       "t",
			Count:      count,
			SwitchCost: rng.Float64() * 10,
			MaxLoad:    cap,
			Cost:       Static{F: f},
		}
		totalCap += float64(count) * cap
	}
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = rng.Float64() * totalCap * 0.9
	}
	return &Instance{Types: types, Lambda: lambda}
}

// randomFeasibleSchedule draws random configurations and repairs them to
// meet each slot's demand by raising counts greedily.
func randomFeasibleSchedule(rng *rand.Rand, ins *Instance) Schedule {
	s := make(Schedule, ins.T())
	for t := 1; t <= ins.T(); t++ {
		x := make(Config, ins.D())
		for j := range x {
			x[j] = rng.Intn(ins.CountAt(t, j) + 1)
		}
		for cap := capOf(ins, x); cap < ins.Lambda[t-1]; cap = capOf(ins, x) {
			j := rng.Intn(ins.D())
			if x[j] < ins.CountAt(t, j) {
				x[j]++
			}
		}
		s[t-1] = x
	}
	return s
}

func capOf(ins *Instance, x Config) float64 {
	cap := 0.0
	for j := range x {
		cap += float64(x[j]) * ins.Types[j].MaxLoad
	}
	return cap
}

func TestEvaluatorPanicsOnDimensionMismatch(t *testing.T) {
	e := NewEvaluator(twoTypeInstance())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.G(1, Config{1})
}

func TestCostPanicsOnLengthMismatch(t *testing.T) {
	e := NewEvaluator(twoTypeInstance())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.Cost(Schedule{{1, 0}})
}

func TestScheduleClone(t *testing.T) {
	s := Schedule{{1, 0}, {2, 1}}
	c := s.Clone()
	c[0][0] = 9
	if s[0][0] == 9 {
		t.Error("Clone should deep-copy")
	}
}
