package model

import (
	"fmt"
	"math"

	"repro/internal/costfn"
	"repro/internal/dispatch"
	"repro/internal/numeric"
)

// SlotInput is everything an online algorithm may observe about one time
// slot as it arrives: the slot index, the job volume, the slot's operating
// cost functions and the available fleet sizes. It is the unit of the
// push-based streaming API — algorithms consume SlotInputs in order and
// never see further into the future, so the online information model holds
// by construction.
type SlotInput struct {
	// T is the 1-based slot index. Slots must be pushed consecutively,
	// starting at 1.
	T int
	// Lambda is the slot's job volume λ_t.
	Lambda float64
	// Costs holds f_{t,j} per server type. nil means "each type's template
	// profile applies" (consumers resolve Cost.At(T) themselves).
	Costs []costfn.Func
	// Counts holds m_{t,j} per server type. nil means the template counts
	// apply.
	Counts []int
}

// Cost returns f_{T,j}: the input's function when provided, else the
// template profile's At(T).
func (in SlotInput) Cost(j int, tpl CostProfile) costfn.Func {
	if in.Costs != nil && in.Costs[j] != nil {
		return in.Costs[j]
	}
	return tpl.At(in.T)
}

// Count returns m_{T,j}: the input's count when provided, else tpl.
func (in SlotInput) Count(j, tpl int) int {
	if in.Counts != nil {
		return in.Counts[j]
	}
	return tpl
}

// SlotInto materialises slot t's observable data into in, reusing its
// Costs/Counts buffers. It is the batch driver's per-slot bridge from a
// pre-recorded instance to the streaming API.
func (ins *Instance) SlotInto(t int, in *SlotInput) {
	d := ins.D()
	if cap(in.Costs) < d {
		in.Costs = make([]costfn.Func, d)
	}
	in.Costs = in.Costs[:d]
	if cap(in.Counts) < d {
		in.Counts = make([]int, d)
	}
	in.Counts = in.Counts[:d]
	in.T = t
	in.Lambda = ins.Lambda[t-1]
	for j := range ins.Types {
		in.Costs[j] = ins.Types[j].Cost.At(t)
		in.Counts[j] = ins.CountAt(t, j)
	}
}

// Slot returns slot t's observable data as a fresh SlotInput.
func (ins *Instance) Slot(t int) SlotInput {
	var in SlotInput
	ins.SlotInto(t, &in)
	return in
}

// growingProfile is the CostProfile of an Accumulator's types: one function
// per pushed slot.
type growingProfile struct {
	fs []costfn.Func
}

// At implements CostProfile.
func (g *growingProfile) At(t int) costfn.Func { return g.fs[t-1] }

// Accumulator builds an Instance incrementally from pushed SlotInputs: the
// streaming counterpart of a struct-literal Instance. The instance it
// exposes grows by one slot per Push and is safe to read through any
// component holding the same *Instance pointer (Evaluator, PrefixTracker),
// because all per-slot data is append-only.
type Accumulator struct {
	ins      *Instance
	profiles []*growingProfile
	template []ServerType
	fnBuf    []costfn.Func // per-push resolution scratch
	cntBuf   []int         // per-push counts scratch
}

// NewAccumulator prepares an accumulator for the fleet template. The
// template's per-type Count, SwitchCost and MaxLoad must be valid; Cost
// profiles are optional fallbacks for pushes that omit Costs.
func NewAccumulator(types []ServerType) (*Accumulator, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("model: accumulator needs at least one server type")
	}
	acc := &Accumulator{
		template: append([]ServerType(nil), types...),
		profiles: make([]*growingProfile, len(types)),
	}
	cloned := make([]ServerType, len(types))
	for j, st := range types {
		if st.Count < 0 {
			return nil, fmt.Errorf("model: type %d has negative count %d", j, st.Count)
		}
		if st.SwitchCost < 0 {
			return nil, fmt.Errorf("model: type %d has negative switching cost %g", j, st.SwitchCost)
		}
		if st.MaxLoad <= 0 {
			return nil, fmt.Errorf("model: type %d has non-positive capacity %g", j, st.MaxLoad)
		}
		acc.profiles[j] = &growingProfile{}
		cloned[j] = st
		cloned[j].Cost = acc.profiles[j]
	}
	acc.ins = &Instance{Types: cloned, Counts: [][]int{}}
	return acc, nil
}

// Instance returns the live growing instance. Its T() equals the number of
// slots pushed so far.
func (a *Accumulator) Instance() *Instance { return a.ins }

// T returns the number of slots pushed so far.
func (a *Accumulator) T() int { return a.ins.T() }

// resolve returns slot input's cost function for type j, falling back to
// the template profile.
func (a *Accumulator) resolve(in SlotInput, j int) (costfn.Func, error) {
	if in.Costs != nil {
		if len(in.Costs) != len(a.template) {
			return nil, fmt.Errorf("model: slot %d carries %d cost functions, want %d", in.T, len(in.Costs), len(a.template))
		}
		if f := in.Costs[j]; f != nil {
			return f, nil
		}
	}
	if tpl := a.template[j].Cost; tpl != nil {
		return tpl.At(in.T), nil
	}
	return nil, fmt.Errorf("model: slot %d has no cost function for type %d and the template has no profile", in.T, j)
}

// Push appends one slot. It validates the protocol (consecutive 1-based
// slots) and the slot's feasibility: non-negative demand covered by the
// slot's total capacity.
func (a *Accumulator) Push(in SlotInput) error {
	t := a.T() + 1
	if in.T != 0 && in.T != t {
		return fmt.Errorf("model: pushed slot %d out of order, want %d", in.T, t)
	}
	in.T = t
	if in.Lambda < 0 {
		return fmt.Errorf("model: negative job volume %g at slot %d", in.Lambda, t)
	}
	if in.Counts != nil && len(in.Counts) != len(a.template) {
		return fmt.Errorf("model: slot %d carries %d counts, want %d", t, len(in.Counts), len(a.template))
	}
	if cap(a.cntBuf) < len(a.template) {
		a.cntBuf = make([]int, len(a.template))
		a.fnBuf = make([]costfn.Func, len(a.template))
	}
	counts, fs := a.cntBuf[:len(a.template)], a.fnBuf[:len(a.template)]
	capacity := 0.0
	for j := range a.template {
		c := a.template[j].Count
		if in.Counts != nil {
			c = in.Counts[j]
		}
		if c < 0 {
			return fmt.Errorf("model: negative count at slot %d type %d", t, j)
		}
		counts[j] = c
		capacity += float64(c) * a.template[j].MaxLoad
	}
	if capacity < in.Lambda*(1-1e-12) {
		return fmt.Errorf("model: slot %d demand %g exceeds total capacity %g", t, in.Lambda, capacity)
	}
	for j := range a.template {
		f, err := a.resolve(in, j)
		if err != nil {
			return err
		}
		fs[j] = f
	}
	// All checks passed; commit append-only. Rows never mutate after the
	// append, so a slot whose counts repeat the previous slot's aliases
	// the same backing row — steady-state pushes on a static fleet stay
	// allocation-free.
	row := a.cntBuf[:len(a.template)]
	if last := len(a.ins.Counts) - 1; last >= 0 && numeric.EqualInts(a.ins.Counts[last], row) {
		row = a.ins.Counts[last]
	} else {
		row = append([]int(nil), row...)
	}
	for j, f := range fs {
		a.profiles[j].fs = append(a.profiles[j].fs, f)
	}
	a.ins.Counts = append(a.ins.Counts, row)
	a.ins.Lambda = append(a.ins.Lambda, in.Lambda)
	return nil
}

// MustPush is Push for drivers that have already validated the input;
// it panics on error.
func (a *Accumulator) MustPush(in SlotInput) {
	if err := a.Push(in); err != nil {
		panic(err)
	}
}

// SlotEval computes the operating cost g(x) of a configuration against one
// SlotInput, without materialising an Instance. It reuses scratch buffers
// and is not safe for concurrent use. Costs must be resolved (non-nil) in
// the inputs it evaluates.
type SlotEval struct {
	caps    []float64
	servers []dispatch.Server
	solver  dispatch.Solver
}

// NewSlotEval builds an evaluator for the fleet template (only the
// per-type MaxLoad capacities are read).
func NewSlotEval(types []ServerType) *SlotEval {
	caps := make([]float64, len(types))
	for j, st := range types {
		caps[j] = st.MaxLoad
	}
	return &SlotEval{caps: caps, servers: make([]dispatch.Server, len(types))}
}

// G returns g(x) for the slot: +Inf when x exceeds the slot's counts (or
// is negative), else the optimal dispatch cost. It mirrors Evaluator.G
// bit-for-bit for equal inputs.
func (e *SlotEval) G(in SlotInput, x Config) float64 {
	if len(x) != len(e.caps) {
		panic("model: configuration dimension mismatch")
	}
	for j := range e.servers {
		if x[j] < 0 || x[j] > in.Counts[j] {
			return math.Inf(1)
		}
		e.servers[j] = dispatch.Server{
			Active: x[j],
			Cap:    e.caps[j],
			F:      in.Costs[j],
		}
	}
	return e.solver.Cost(e.servers, in.Lambda)
}
