package model

import (
	"fmt"

	"repro/internal/costfn"
)

// Subdivision relates a problem instance I to the modified instance Ĩ of
// Section 3.2, in which each original slot t is split into ñ_t equal
// sub-slots carrying operating cost f̃_{u,j} = f_{t,j}/ñ_t and the same job
// volume. Algorithm C runs Algorithm B on Ĩ and projects the result back.
type Subdivision struct {
	Orig *Instance
	Mod  *Instance

	ns     []int // ñ_t per original slot
	starts []int // starts[t-1]: number of sub-slots strictly before slot t
	origOf []int // origOf[u-1] = t (1-based original slot of sub-slot u)
}

// Subdivide builds the modified instance for the given sub-slot counts
// (ns[t-1] = ñ_t >= 1). The modified instance owns fresh slices; cost
// functions are shared via costfn.Scaled wrappers.
func Subdivide(ins *Instance, ns []int) (*Subdivision, error) {
	if len(ns) != ins.T() {
		return nil, fmt.Errorf("model: got %d sub-slot counts for %d slots", len(ns), ins.T())
	}
	total := 0
	starts := make([]int, ins.T())
	for t := 1; t <= ins.T(); t++ {
		if ns[t-1] < 1 {
			return nil, fmt.Errorf("model: ñ_%d = %d, want >= 1", t, ns[t-1])
		}
		starts[t-1] = total
		total += ns[t-1]
	}

	sub := &Subdivision{
		Orig:   ins,
		ns:     append([]int(nil), ns...),
		starts: starts,
		origOf: make([]int, total),
	}

	lambda := make([]float64, total)
	perType := make([][]costfn.Func, ins.D())
	for j := range perType {
		perType[j] = make([]costfn.Func, total)
	}
	var counts [][]int
	if ins.Counts != nil {
		counts = make([][]int, total)
	}

	u := 0
	for t := 1; t <= ins.T(); t++ {
		factor := 1.0 / float64(ns[t-1])
		for k := 0; k < ns[t-1]; k++ {
			sub.origOf[u] = t
			lambda[u] = ins.Lambda[t-1]
			for j := range ins.Types {
				perType[j][u] = costfn.Scaled{F: ins.Types[j].Cost.At(t), Factor: factor}
			}
			if counts != nil {
				counts[u] = ins.Counts[t-1]
			}
			u++
		}
	}

	types := make([]ServerType, ins.D())
	for j, st := range ins.Types {
		types[j] = ServerType{
			Name:       st.Name,
			Count:      st.Count,
			SwitchCost: st.SwitchCost,
			MaxLoad:    st.MaxLoad,
			Cost:       Varying{Fs: perType[j]},
		}
	}
	sub.Mod = &Instance{Types: types, Lambda: lambda, Counts: counts}
	return sub, nil
}

// N returns ñ_t for original slot t (1-based).
func (s *Subdivision) N(t int) int { return s.ns[t-1] }

// U returns the 1-based sub-slot range [lo, hi] of Ĩ corresponding to the
// original slot t, i.e. the set U(t) of the paper.
func (s *Subdivision) U(t int) (lo, hi int) {
	return s.starts[t-1] + 1, s.starts[t-1] + s.ns[t-1]
}

// UInv returns U^{-1}(u): the original slot of sub-slot u (both 1-based).
func (s *Subdivision) UInv(u int) int { return s.origOf[u-1] }

// Lift converts a schedule for the original instance into the schedule
// x̃_u = x_{U^{-1}(u)} for the modified instance. By the argument in
// Theorem 15 this conversion preserves the total cost exactly.
func (s *Subdivision) Lift(x Schedule) Schedule {
	if len(x) != s.Orig.T() {
		panic("model: Lift: schedule length mismatch")
	}
	out := make(Schedule, s.Mod.T())
	for u := 1; u <= s.Mod.T(); u++ {
		out[u-1] = x[s.UInv(u)-1]
	}
	return out
}
