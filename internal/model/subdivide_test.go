package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestSubdivideStructure(t *testing.T) {
	ins := twoTypeInstance() // T = 4
	sub, err := Subdivide(ins, []int{2, 1, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Mod.T() != 7 {
		t.Fatalf("modified T = %d, want 7", sub.Mod.T())
	}
	// U(1) = [1,2], U(2) = [3,3], U(3) = [4,6], U(4) = [7,7].
	wantU := [][2]int{{1, 2}, {3, 3}, {4, 6}, {7, 7}}
	for tt := 1; tt <= 4; tt++ {
		lo, hi := sub.U(tt)
		if lo != wantU[tt-1][0] || hi != wantU[tt-1][1] {
			t.Errorf("U(%d) = [%d,%d], want %v", tt, lo, hi, wantU[tt-1])
		}
		for u := lo; u <= hi; u++ {
			if sub.UInv(u) != tt {
				t.Errorf("UInv(%d) = %d, want %d", u, sub.UInv(u), tt)
			}
		}
		if sub.N(tt) != hi-lo+1 {
			t.Errorf("N(%d) = %d, want %d", tt, sub.N(tt), hi-lo+1)
		}
	}
	// Job volumes copy over.
	if sub.Mod.Lambda[0] != 1 || sub.Mod.Lambda[1] != 1 || sub.Mod.Lambda[3] != 2 {
		t.Errorf("modified volumes wrong: %v", sub.Mod.Lambda)
	}
	if err := sub.Mod.Validate(); err != nil {
		t.Errorf("modified instance invalid: %v", err)
	}
}

func TestSubdivideScalesCosts(t *testing.T) {
	ins := twoTypeInstance()
	sub, err := Subdivide(ins, []int{2, 1, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Sub-slot 1 belongs to original slot 1 with ñ=2: idle cost halves.
	f := sub.Mod.Types[0].Cost.At(1)
	if math.Abs(f.Value(0)-0.5) > 1e-12 {
		t.Errorf("scaled idle cost = %g, want 0.5", f.Value(0))
	}
	// Sub-slot 4 belongs to slot 3 with ñ=3.
	f = sub.Mod.Types[1].Cost.At(4)
	if math.Abs(f.Value(0)-1.0) > 1e-12 { // 3 / 3
		t.Errorf("scaled idle cost = %g, want 1", f.Value(0))
	}
}

func TestSubdivideErrors(t *testing.T) {
	ins := twoTypeInstance()
	if _, err := Subdivide(ins, []int{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Subdivide(ins, []int{1, 0, 1, 1}); err == nil {
		t.Error("ñ_t = 0 should error")
	}
}

// Lemma 14 / Theorem 15 direction: lifting a schedule into the modified
// instance preserves its total cost exactly.
func TestLiftPreservesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		ins := randomInstance(rng, 3, 3, 5)
		ns := make([]int, ins.T())
		for t := range ns {
			ns[t] = 1 + rng.Intn(4)
		}
		sub, err := Subdivide(ins, ns)
		if err != nil {
			t.Fatal(err)
		}
		s := randomFeasibleSchedule(rng, ins)
		lifted := sub.Lift(s)
		if err := sub.Mod.Feasible(lifted); err != nil {
			t.Fatalf("lifted schedule infeasible: %v", err)
		}
		orig := NewEvaluator(ins).Cost(s)
		mod := NewEvaluator(sub.Mod).Cost(lifted)
		if math.Abs(orig.Total()-mod.Total()) > 1e-6*(1+orig.Total()) {
			t.Fatalf("case %d: cost changed under lift: %g vs %g",
				i, orig.Total(), mod.Total())
		}
		if math.Abs(orig.Switching-mod.Switching) > 1e-9*(1+orig.Switching) {
			t.Fatalf("case %d: switching cost changed under lift", i)
		}
	}
}

func TestSubdivideTimeVaryingCounts(t *testing.T) {
	ins := twoTypeInstance()
	ins.Counts = [][]int{{3, 2}, {2, 1}, {3, 2}, {3, 2}}
	sub, err := Subdivide(ins, []int{1, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Mod.TimeVarying() {
		t.Fatal("modified instance should stay time-varying")
	}
	// Sub-slots 2 and 3 both map to original slot 2 with counts (2,1).
	if sub.Mod.CountAt(2, 0) != 2 || sub.Mod.CountAt(3, 1) != 1 {
		t.Error("per-sub-slot counts should replicate the original slot")
	}
}

func TestLiftPanicsOnLengthMismatch(t *testing.T) {
	ins := twoTypeInstance()
	sub, _ := Subdivide(ins, []int{1, 1, 1, 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sub.Lift(Schedule{{0, 0}})
}

func TestSubdivideIdentity(t *testing.T) {
	// ñ_t = 1 everywhere: the modified instance is cost-equivalent.
	ins := twoTypeInstance()
	sub, err := Subdivide(ins, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Mod.T() != ins.T() {
		t.Fatal("identity subdivision should keep T")
	}
	s := Schedule{{1, 0}, {0, 1}, {0, 1}, {0, 0}}
	a := NewEvaluator(ins).Cost(s)
	b := NewEvaluator(sub.Mod).Cost(sub.Lift(s))
	if math.Abs(a.Total()-b.Total()) > 1e-9 {
		t.Errorf("identity subdivision changed cost: %g vs %g", a.Total(), b.Total())
	}
}
