// Package numeric provides the scalar numerical routines used by the
// right-sizing library: minimisation of one-dimensional convex functions,
// root finding for monotone functions, and tolerant float comparison.
//
// All algorithms are deterministic and allocation-free so they can sit in
// the hot path of the dynamic-programming solvers.
package numeric

import "math"

// Eps is the default relative tolerance used throughout the library when
// comparing computed costs. Costs are sums of O(T·d) convex-function
// evaluations, each accurate to roughly 1e-12, so 1e-9 comfortably absorbs
// accumulated error without hiding real violations.
const Eps = 1e-9

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// AlmostEqual reports whether a and b are equal up to the relative
// tolerance tol (with an absolute floor of tol for values near zero).
// Infinities compare equal only to themselves.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// LessEqual reports whether a <= b up to the relative tolerance tol.
// It is used when asserting proved inequalities on floating-point sums.
func LessEqual(a, b, tol float64) bool {
	if a <= b {
		return true
	}
	return AlmostEqual(a, b, tol)
}

// MinimizeConvex minimises the convex function f over the closed interval
// [lo, hi] using golden-section search and returns the minimising argument
// and the minimum value. The search runs until the bracket is narrower than
// tol (absolute, in argument space) and is robust to flat regions: for a
// convex f it converges to a global minimiser.
//
// MinimizeConvex panics if lo > hi. If lo == hi it returns that point.
func MinimizeConvex(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if lo > hi {
		panic("numeric: MinimizeConvex called with lo > hi")
	}
	if lo == hi {
		return lo, f(lo)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	a, b := lo, hi
	// Interior probe points at the golden ratio split.
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	// 200 iterations shrink the bracket by invPhi^200 ≈ 1e-42; the tol
	// check exits far earlier in practice. The cap guards against
	// pathological tol values (e.g. denormals) causing an infinite loop.
	for i := 0; i < 200 && b-a > tol; i++ {
		if fc <= fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	fx = f(x)
	// The endpoints can beat the midpoint when the minimum sits exactly on
	// the boundary (common for monotone f): check them explicitly.
	if flo := f(lo); flo < fx {
		x, fx = lo, flo
	}
	if fhi := f(hi); fhi < fx {
		x, fx = hi, fhi
	}
	return x, fx
}

// BisectIncreasing finds x in [lo, hi] with g(x) ≈ target for a
// non-decreasing function g. It returns the midpoint of the final bracket.
// If g(lo) >= target it returns lo; if g(hi) <= target it returns hi.
// The bracket is shrunk until narrower than tol or 200 iterations pass.
func BisectIncreasing(g func(float64) float64, target, lo, hi, tol float64) float64 {
	if lo > hi {
		panic("numeric: BisectIncreasing called with lo > hi")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	glo := g(lo)
	if glo >= target {
		return lo
	}
	ghi := g(hi)
	if ghi <= target {
		return hi
	}
	a, b := lo, hi
	for i := 0; i < 200 && b-a > tol; i++ {
		mid := a + (b-a)/2
		if mid <= a || mid >= b { // float exhaustion
			break
		}
		if g(mid) < target {
			a = mid
		} else {
			b = mid
		}
	}
	return a + (b-a)/2
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// EqualInts reports whether two int slices are elementwise identical
// (per-slot fleet-count rows, lattice shapes).
func EqualInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ClampInt limits v to the integer interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SumKahan returns the sum of xs using Kahan compensated summation, which
// keeps the error independent of len(xs). Schedules can span tens of
// thousands of slots, so naive summation would drift.
func SumKahan(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Kahan is the incremental form of SumKahan for streaming consumers:
// feeding x_1..x_n through Add yields exactly SumKahan({x_1..x_n}).
type Kahan struct {
	sum, comp float64
}

// Add accumulates one term.
func (k *Kahan) Add(x float64) {
	y := x - k.comp
	t := k.sum + y
	k.comp = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated running sum.
func (k *Kahan) Sum() float64 { return k.sum }

// CeilDiv returns ⌈a/b⌉ for positive b and non-negative a.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("numeric: CeilDiv with non-positive divisor")
	}
	if a < 0 {
		panic("numeric: CeilDiv with negative dividend")
	}
	return (a + b - 1) / b
}
