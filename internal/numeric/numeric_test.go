package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-9, false},
		{0, 1e-12, 1e-9, true},
		{0, 1e-3, 1e-9, false},
		{1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e308, 1e-9, false},
		{-5, -5, 1e-9, true},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestLessEqual(t *testing.T) {
	if !LessEqual(1, 2, 1e-9) {
		t.Error("1 <= 2 should hold")
	}
	if !LessEqual(2, 2, 1e-9) {
		t.Error("2 <= 2 should hold")
	}
	if !LessEqual(2+1e-12, 2, 1e-9) {
		t.Error("2+1e-12 <= 2 should hold within tolerance")
	}
	if LessEqual(2.1, 2, 1e-9) {
		t.Error("2.1 <= 2 should fail")
	}
	if !LessEqual(1, math.Inf(1), 1e-9) {
		t.Error("1 <= +Inf should hold")
	}
}

func TestMinimizeConvexQuadratic(t *testing.T) {
	// minimum of (x-3)^2 + 2 on [0, 10] is at x=3.
	f := func(x float64) float64 { return (x-3)*(x-3) + 2 }
	x, fx := MinimizeConvex(f, 0, 10, 1e-12)
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("argmin = %v, want 3", x)
	}
	if math.Abs(fx-2) > 1e-9 {
		t.Errorf("min = %v, want 2", fx)
	}
}

func TestMinimizeConvexBoundary(t *testing.T) {
	// increasing function: minimum at left endpoint.
	f := func(x float64) float64 { return math.Exp(x) }
	x, fx := MinimizeConvex(f, 1, 5, 1e-12)
	if x != 1 {
		t.Errorf("argmin = %v, want boundary 1", x)
	}
	if math.Abs(fx-math.E) > 1e-9 {
		t.Errorf("min = %v, want e", fx)
	}
	// decreasing function: minimum at right endpoint.
	g := func(x float64) float64 { return -x }
	x, fx = MinimizeConvex(g, 1, 5, 1e-12)
	if x != 5 || fx != -5 {
		t.Errorf("argmin, min = %v, %v; want 5, -5", x, fx)
	}
}

func TestMinimizeConvexDegenerateInterval(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, fx := MinimizeConvex(f, 2, 2, 1e-12)
	if x != 2 || fx != 4 {
		t.Errorf("got %v, %v; want 2, 4", x, fx)
	}
}

func TestMinimizeConvexPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for lo > hi")
		}
	}()
	MinimizeConvex(func(x float64) float64 { return x }, 2, 1, 1e-12)
}

func TestMinimizeConvexFlatRegion(t *testing.T) {
	// Flat bottom on [2,4]: any point in [2,4] is optimal.
	f := func(x float64) float64 {
		if x < 2 {
			return 2 - x
		}
		if x > 4 {
			return x - 4
		}
		return 0
	}
	x, fx := MinimizeConvex(f, 0, 10, 1e-12)
	if fx != 0 {
		t.Errorf("min = %v, want 0", fx)
	}
	if x < 2-1e-6 || x > 4+1e-6 {
		t.Errorf("argmin = %v, want within [2,4]", x)
	}
}

func TestMinimizeConvexRandomQuadratics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := rng.Float64()*10 + 0.1
		center := rng.Float64()*20 - 10
		off := rng.Float64() * 5
		f := func(x float64) float64 { return a*(x-center)*(x-center) + off }
		lo := center - 1 - rng.Float64()*10
		hi := center + 1 + rng.Float64()*10
		x, fx := MinimizeConvex(f, lo, hi, 1e-12)
		if math.Abs(x-center) > 1e-5 {
			t.Fatalf("case %d: argmin %v, want %v", i, x, center)
		}
		if math.Abs(fx-off) > 1e-8 {
			t.Fatalf("case %d: min %v, want %v", i, fx, off)
		}
	}
}

func TestBisectIncreasing(t *testing.T) {
	g := func(x float64) float64 { return x * x * x } // increasing
	x := BisectIncreasing(g, 8, 0, 10, 1e-12)
	if math.Abs(x-2) > 1e-6 {
		t.Errorf("root = %v, want 2", x)
	}
}

func TestBisectIncreasingClampsToEndpoints(t *testing.T) {
	g := func(x float64) float64 { return x }
	if got := BisectIncreasing(g, -5, 0, 10, 1e-12); got != 0 {
		t.Errorf("target below range: got %v, want 0", got)
	}
	if got := BisectIncreasing(g, 50, 0, 10, 1e-12); got != 10 {
		t.Errorf("target above range: got %v, want 10", got)
	}
}

func TestBisectIncreasingStepFunction(t *testing.T) {
	// Non-strictly increasing step: g jumps from 0 to 1 at x=5.
	g := func(x float64) float64 {
		if x < 5 {
			return 0
		}
		return 1
	}
	x := BisectIncreasing(g, 0.5, 0, 10, 1e-9)
	if math.Abs(x-5) > 1e-6 {
		t.Errorf("step location = %v, want 5", x)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt misbehaves")
	}
}

func TestSumKahan(t *testing.T) {
	// 1 + 1e-16 * 1e6 would lose the small terms with naive summation order.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := SumKahan(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("SumKahan = %.17g, want %.17g", got, want)
	}
}

func TestSumKahanEmpty(t *testing.T) {
	if SumKahan(nil) != 0 {
		t.Error("empty sum should be 0")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 3, 0}, {1, 3, 1}, {3, 3, 1}, {4, 3, 2}, {9, 3, 3}, {10, 3, 4},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanics(t *testing.T) {
	for _, bad := range [][2]int{{1, 0}, {1, -1}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CeilDiv(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			CeilDiv(bad[0], bad[1])
		}()
	}
}

// Property: the golden-section minimiser never returns a value above either
// endpoint or above the true quadratic minimum by more than tolerance.
func TestMinimizeConvexProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*5 + 0.01
		c := rng.Float64()*10 - 5
		f := func(x float64) float64 { return a * (x - c) * (x - c) }
		lo := -10.0
		hi := 10.0
		_, fx := MinimizeConvex(f, lo, hi, 1e-12)
		best := 0.0
		if c < lo {
			best = f(lo)
		} else if c > hi {
			best = f(hi)
		}
		return fx <= best+1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: bisection solves g(x) = target for random increasing cubics.
func TestBisectIncreasingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*3 + 0.1
		b := rng.Float64() * 2
		g := func(x float64) float64 { return a*x*x*x + b*x }
		root := rng.Float64() * 5
		target := g(root)
		x := BisectIncreasing(g, target, 0, 5, 1e-13)
		return math.Abs(x-root) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMinimizeConvex(b *testing.B) {
	f := func(x float64) float64 { return (x-3)*(x-3) + math.Exp(x/10) }
	for i := 0; i < b.N; i++ {
		MinimizeConvex(f, 0, 10, 1e-10)
	}
}

func BenchmarkBisectIncreasing(b *testing.B) {
	g := func(x float64) float64 { return x*x*x + x }
	for i := 0; i < b.N; i++ {
		BisectIncreasing(g, 10, 0, 10, 1e-10)
	}
}
