// Package promlint validates Prometheus text exposition (format 0.0.4)
// without importing the prometheus client libraries. It checks what a
// scraper would choke on plus the conventions the ecosystem expects:
//
//   - every sample line parses (name, optional {labels}, float value)
//   - metric and label names match the prometheus grammar
//   - a # TYPE line precedes its metric's samples, at most once, and
//     samples of one metric are contiguous (no interleaving)
//   - counters end in _total; histograms expose _bucket/_sum/_count,
//     their buckets are cumulative, and the +Inf bucket is present and
//     equals _count
//
// The serve tests lint every /metrics scrape through Lint, and
// scripts/promcheck wraps it for CI's curl | promcheck step.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// sample is one parsed exposition line.
type sample struct {
	name   string // metric name as written (histogram suffixes included)
	labels map[string]string
	value  float64
	line   int
}

// metricState tracks one metric family while linting.
type metricState struct {
	typ     string // from # TYPE; "" if untyped
	done    bool   // a different family's samples have appeared since
	samples []sample
}

// Lint reads one exposition from r and returns the first problem found,
// or nil for a clean scrape.
func Lint(r io.Reader) error {
	families := map[string]*metricState{}
	var order []string
	var last string

	base := func(name string) string {
		// Histogram/summary series share a family under the base name.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok {
				if st, exists := families[b]; exists && (st.typ == "histogram" || st.typ == "summary") {
					return b
				}
			}
		}
		return name
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	sawAny := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			if !metricNameRe.MatchString(name) {
				return fmt.Errorf("line %d: invalid metric name %q in # %s", lineNo, name, kind)
			}
			st := families[name]
			if st == nil {
				st = &metricState{}
				families[name] = st
				order = append(order, name)
			}
			if kind == "TYPE" {
				if st.typ != "" {
					return fmt.Errorf("line %d: second TYPE line for %q", lineNo, name)
				}
				if len(st.samples) > 0 {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					st.typ = rest
				default:
					return fmt.Errorf("line %d: unknown type %q for %q", lineNo, rest, name)
				}
			}
			continue
		}

		s, err := parseSample(line, lineNo)
		if err != nil {
			return err
		}
		sawAny = true
		fam := base(s.name)
		st := families[fam]
		if st == nil {
			st = &metricState{}
			families[fam] = st
			order = append(order, fam)
		}
		if st.done {
			return fmt.Errorf("line %d: samples of %q are not contiguous", lineNo, fam)
		}
		if last != "" && last != fam {
			families[last].done = true
		}
		last = fam
		st.samples = append(st.samples, s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawAny {
		return fmt.Errorf("no samples in exposition")
	}

	for _, name := range order {
		if err := checkFamily(name, families[name]); err != nil {
			return err
		}
	}
	return nil
}

// parseComment splits a # line into (HELP|TYPE, name, remainder); kind
// is empty for ordinary comments.
func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#"), " ", 4)
	// "# HELP name text..." -> ["", "HELP", "name", "text..."]
	if len(fields) < 2 {
		return "", "", "", nil
	}
	switch fields[1] {
	case "HELP", "TYPE":
		if len(fields) < 3 || fields[2] == "" {
			return "", "", "", fmt.Errorf("malformed # %s line", fields[1])
		}
		kind, name = fields[1], fields[2]
		if len(fields) == 4 {
			rest = fields[3]
		}
		if kind == "TYPE" && rest == "" {
			return "", "", "", fmt.Errorf("TYPE line for %q names no type", name)
		}
		return kind, name, rest, nil
	default:
		return "", "", "", nil
	}
}

// parseSample parses `name{l="v",...} value` (timestamp tolerated).
func parseSample(line string, lineNo int) (sample, error) {
	s := sample{line: lineNo, labels: nil}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("line %d: no value on sample line %q", lineNo, line)
	}
	s.name = rest[:i]
	if !metricNameRe.MatchString(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("line %d: unterminated label set", lineNo)
		}
		var err error
		if s.labels, err = parseLabels(rest[1:end]); err != nil {
			return s, fmt.Errorf("line %d: %v", lineNo, err)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: want `value [timestamp]` after name, got %q", lineNo, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		// The text format spells specials Go's parser already accepts
		// (+Inf, -Inf, NaN), so any failure is malformed.
		return s, fmt.Errorf("line %d: bad sample value %q: %v", lineNo, fields[0], err)
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("line %d: bad timestamp %q", lineNo, fields[1])
		}
	}
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no =", body)
		}
		name := body[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		body = body[eq+1:]
		if body == "" || body[0] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", name)
		}
		// Find the closing quote, honoring backslash escapes.
		i := 1
		for ; i < len(body); i++ {
			if body[i] == '\\' {
				i++
				continue
			}
			if body[i] == '"' {
				break
			}
		}
		if i >= len(body) {
			return nil, fmt.Errorf("label %q value is unterminated", name)
		}
		val := body[1:i]
		val = strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(val)
		labels[name] = val
		body = body[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, nil
}

// checkFamily applies the per-type conventions.
func checkFamily(name string, st *metricState) error {
	if len(st.samples) == 0 {
		return fmt.Errorf("metric %q has HELP/TYPE but no samples", name)
	}
	switch st.typ {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %q does not end in _total", name)
		}
		for _, s := range st.samples {
			if s.value < 0 {
				return fmt.Errorf("line %d: counter %q is negative", s.line, name)
			}
		}
	case "histogram":
		return checkHistogram(name, st)
	}
	return nil
}

func checkHistogram(name string, st *metricState) error {
	var bucketVals []float64
	var les []float64
	sum, count := -1.0, -1.0
	sawInf := false
	for _, s := range st.samples {
		switch s.name {
		case name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("line %d: %s_bucket without le label", s.line, name)
			}
			if le == "+Inf" {
				sawInf = true
				les = append(les, 0)
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", s.line, le)
				}
				if sawInf {
					return fmt.Errorf("line %d: bucket after +Inf", s.line)
				}
				les = append(les, v)
			}
			bucketVals = append(bucketVals, s.value)
		case name + "_sum":
			sum = s.value
		case name + "_count":
			count = s.value
		default:
			return fmt.Errorf("line %d: sample %q inside histogram %q", s.line, s.name, name)
		}
	}
	if !sawInf {
		return fmt.Errorf("histogram %q has no +Inf bucket", name)
	}
	if count < 0 {
		return fmt.Errorf("histogram %q has no _count", name)
	}
	if sum < 0 && count > 0 {
		return fmt.Errorf("histogram %q has no _sum", name)
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			return fmt.Errorf("histogram %q buckets are not cumulative (le=%v)", name, les[i])
		}
		if i < len(les) && les[i] != 0 && les[i] <= les[i-1] {
			return fmt.Errorf("histogram %q le bounds are not increasing", name)
		}
	}
	if inf := bucketVals[len(bucketVals)-1]; inf != count {
		return fmt.Errorf("histogram %q +Inf bucket %v != _count %v", name, inf, count)
	}
	return nil
}
