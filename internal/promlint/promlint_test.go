package promlint

import (
	"strings"
	"testing"
)

const good = `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_live_things Things alive now.
# TYPE app_live_things gauge
app_live_things{shard="0"} 3
app_live_things{shard="1"} 0
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.001"} 10
app_latency_seconds_bucket{le="0.01"} 15
app_latency_seconds_bucket{le="+Inf"} 20
app_latency_seconds_sum 0.5
app_latency_seconds_count 20
`

func TestLintAcceptsClean(t *testing.T) {
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Fatalf("clean exposition rejected: %v", err)
	}
}

func TestLintRejects(t *testing.T) {
	cases := map[string]struct {
		in   string
		want string // substring of the error
	}{
		"empty": {"", "no samples"},
		"counter without _total": {
			"# TYPE app_requests counter\napp_requests 1\n", "_total"},
		"bad metric name": {
			"app-requests 1\n", "invalid metric name"},
		"bad value": {
			"app_requests_total one\n", "bad sample value"},
		"unterminated labels": {
			"app_x{shard=\"0\" 1\n", "unterminated"},
		"duplicate label": {
			"app_x{a=\"1\",a=\"2\"} 1\n", "duplicate label"},
		"second TYPE": {
			"# TYPE app_x gauge\n# TYPE app_x counter\napp_x 1\n", "second TYPE"},
		"type after samples": {
			"app_x 1\n# TYPE app_x gauge\n", "after its samples"},
		"interleaved families": {
			"app_x 1\napp_y 2\napp_x 3\n", "not contiguous"},
		"histogram missing +Inf": {
			"# TYPE app_h histogram\napp_h_bucket{le=\"1\"} 1\napp_h_sum 1\napp_h_count 1\n",
			"+Inf"},
		"histogram not cumulative": {
			"# TYPE app_h histogram\napp_h_bucket{le=\"1\"} 5\napp_h_bucket{le=\"2\"} 3\n" +
				"app_h_bucket{le=\"+Inf\"} 5\napp_h_sum 1\napp_h_count 5\n",
			"cumulative"},
		"histogram inf != count": {
			"# TYPE app_h histogram\napp_h_bucket{le=\"+Inf\"} 5\napp_h_sum 1\napp_h_count 7\n",
			"_count"},
		"histogram missing count": {
			"# TYPE app_h histogram\napp_h_bucket{le=\"+Inf\"} 5\napp_h_sum 1\n",
			"no _count"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := Lint(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("lint accepted:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
