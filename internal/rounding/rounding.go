// Package rounding explores the paper's open problem: converting
// fractional schedules into integral ones without blowing up the cost.
//
// The related-work section observes that naively rounding a fractional
// schedule up can make the switching cost arbitrarily large — a fractional
// schedule oscillating between 1 and 1+ε servers pays O(ε) switching per
// slot, but its ceiling oscillates between 1 and 2 and pays β per slot.
// For homogeneous data centers the authors' earlier work rounds with a
// single random threshold, which preserves expected switching cost; for
// heterogeneous ones per-type thresholding can break feasibility (their
// example: x = (1/d, …, 1/d) rounds down to all-zero under λ = 1).
//
// This package implements the three rounding strategies the discussion
// implies — Ceil, Floor and Threshold — plus the feasibility repair that
// heterogeneous instances need, so the blow-ups and the open problem can
// be measured instead of just cited (experiment E11).
package rounding

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Strategy converts one fractional count into an integer.
type Strategy int

const (
	// Ceil always rounds up: trivially feasible, switching cost can
	// explode (the paper's oscillation example).
	Ceil Strategy = iota
	// Floor always rounds down: cheap but usually infeasible until
	// repaired.
	Floor
	// Threshold rounds x up iff frac(x) > θ for a fixed θ ∈ [0, 1):
	// oscillations within a fractional band smaller than the distance to
	// the threshold produce no switching at all, which is the essence of
	// the randomized scheme for homogeneous data centers.
	Threshold
)

// Round converts a fractional schedule (X[t-1][j] = fractional count) into
// an integral schedule using the strategy; theta is only used by
// Threshold. The result is NOT necessarily feasible — callers follow up
// with Repair.
func Round(frac [][]float64, strategy Strategy, theta float64) (model.Schedule, error) {
	if strategy == Threshold && (theta < 0 || theta >= 1) {
		return nil, fmt.Errorf("rounding: threshold theta must be in [0, 1), got %g", theta)
	}
	out := make(model.Schedule, len(frac))
	for t, row := range frac {
		cfg := make(model.Config, len(row))
		for j, x := range row {
			if x < 0 {
				return nil, fmt.Errorf("rounding: negative fractional count %g at slot %d", x, t+1)
			}
			switch strategy {
			case Ceil:
				cfg[j] = int(math.Ceil(x - 1e-12))
			case Floor:
				cfg[j] = int(math.Floor(x + 1e-12))
			case Threshold:
				fl := math.Floor(x + 1e-12)
				if x-fl > theta {
					cfg[j] = int(fl) + 1
				} else {
					cfg[j] = int(fl)
				}
			default:
				return nil, fmt.Errorf("rounding: unknown strategy %d", strategy)
			}
		}
		out[t] = cfg
	}
	return out, nil
}

// Repair makes a rounded schedule feasible slot by slot: while a slot's
// capacity falls short of its demand, it powers up one more server of the
// type with the cheapest marginal capacity (β_j amortised over zmax_j,
// then idle cost) among those with head-room. The repair is greedy and
// per-slot — it deliberately mirrors what a practitioner would bolt onto a
// fractional controller, not an attempt at the open problem's solution.
func Repair(ins *model.Instance, sched model.Schedule) (model.Schedule, error) {
	if len(sched) != ins.T() {
		return nil, fmt.Errorf("rounding: schedule has %d slots, want %d", len(sched), ins.T())
	}
	out := sched.Clone()
	for t := 1; t <= ins.T(); t++ {
		cfg := out[t-1]
		for {
			cap := 0.0
			for j := range cfg {
				if cfg[j] > ins.CountAt(t, j) {
					cfg[j] = ins.CountAt(t, j) // also clamp over-counts
				}
				cap += float64(cfg[j]) * ins.Types[j].MaxLoad
			}
			if cap >= ins.Lambda[t-1]*(1-1e-12) {
				break
			}
			best := -1
			bestScore := math.Inf(1)
			for j := range cfg {
				if cfg[j] >= ins.CountAt(t, j) {
					continue
				}
				score := (ins.Types[j].SwitchCost + ins.Types[j].Cost.At(t).Value(0)) /
					ins.Types[j].MaxLoad
				if score < bestScore {
					bestScore = score
					best = j
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("rounding: slot %d cannot be repaired (demand %g)", t, ins.Lambda[t-1])
			}
			cfg[best]++
		}
	}
	return out, nil
}

// RoundAndRepair is the full pipeline: round, then repair feasibility.
func RoundAndRepair(ins *model.Instance, frac [][]float64, strategy Strategy, theta float64) (model.Schedule, error) {
	sched, err := Round(frac, strategy, theta)
	if err != nil {
		return nil, err
	}
	return Repair(ins, sched)
}

// SwitchCount returns the number of individual power-up operations in a
// schedule — the quantity the paper's oscillation example blows up.
func SwitchCount(sched model.Schedule) int {
	if len(sched) == 0 {
		return 0
	}
	prev := make(model.Config, len(sched[0]))
	n := 0
	for _, cfg := range sched {
		for j := range cfg {
			if up := cfg[j] - prev[j]; up > 0 {
				n += up
			}
		}
		prev = cfg
	}
	return n
}

// OscillatingFraction builds the paper's pathological fractional schedule
// for one type: x̄_t alternates between base and base+eps. Its ceiling
// switches every other slot; a threshold above eps never switches.
func OscillatingFraction(T int, base float64, eps float64) [][]float64 {
	out := make([][]float64, T)
	for t := range out {
		x := base
		if t%2 == 1 {
			x = base + eps
		}
		out[t] = []float64{x}
	}
	return out
}
