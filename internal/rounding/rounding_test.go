package rounding

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costfn"
	"repro/internal/fractional"
	"repro/internal/model"
	"repro/internal/workload"
)

func homog(T int, m int, beta float64, lambda []float64) *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{{
			Name: "srv", Count: m, SwitchCost: beta, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 0.5}},
		}},
		Lambda: lambda,
	}
}

// The paper's oscillation example: ceiling-rounding a 1 ↔ 1+ε fractional
// schedule switches every cycle, threshold rounding (θ > ε) never does.
func TestPaperOscillationExample(t *testing.T) {
	frac := OscillatingFraction(40, 1, 0.1)
	ceil, err := Round(frac, Ceil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Ceil: 1, 2, 1, 2, … → 21 power-ups (the initial one plus one per
	// of the 20 odd slots).
	if got := SwitchCount(ceil); got != 21 {
		t.Errorf("ceil switch count = %d, want 21", got)
	}
	thr, err := Round(frac, Threshold, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0.5 > ε: constant 1 server → a single power-up.
	if got := SwitchCount(thr); got != 1 {
		t.Errorf("threshold switch count = %d, want 1", got)
	}
	floor, err := Round(frac, Floor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := SwitchCount(floor); got != 1 {
		t.Errorf("floor switch count = %d, want 1", got)
	}
}

func TestRoundStrategies(t *testing.T) {
	frac := [][]float64{{1.4, 0.6}}
	ceil, _ := Round(frac, Ceil, 0)
	if ceil[0][0] != 2 || ceil[0][1] != 1 {
		t.Errorf("ceil = %v", ceil[0])
	}
	floor, _ := Round(frac, Floor, 0)
	if floor[0][0] != 1 || floor[0][1] != 0 {
		t.Errorf("floor = %v", floor[0])
	}
	thrLow, _ := Round(frac, Threshold, 0.3)
	if thrLow[0][0] != 2 || thrLow[0][1] != 1 {
		t.Errorf("threshold 0.3 = %v", thrLow[0])
	}
	thrHigh, _ := Round(frac, Threshold, 0.7)
	if thrHigh[0][0] != 1 || thrHigh[0][1] != 0 {
		t.Errorf("threshold 0.7 = %v", thrHigh[0])
	}
	// Integers stay put under any strategy.
	exact, _ := Round([][]float64{{2, 0}}, Threshold, 0.0)
	if exact[0][0] != 2 || exact[0][1] != 0 {
		t.Errorf("integer counts must round to themselves, got %v", exact[0])
	}
}

func TestRoundValidation(t *testing.T) {
	if _, err := Round([][]float64{{1}}, Threshold, 1); err == nil {
		t.Error("theta = 1 should error")
	}
	if _, err := Round([][]float64{{-0.5}}, Ceil, 0); err == nil {
		t.Error("negative count should error")
	}
	if _, err := Round([][]float64{{1}}, Strategy(9), 0); err == nil {
		t.Error("unknown strategy should error")
	}
}

// The paper's heterogeneous counterexample: x = (1/d, …, 1/d) under λ = 1
// rounds down to all-zero — infeasible — and Repair must fix it.
func TestRepairHeterogeneousCounterexample(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{
			{Count: 1, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 1}}},
			{Count: 1, SwitchCost: 4, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 1}}},
		},
		Lambda: []float64{1},
	}
	frac := [][]float64{{0.5, 0.5}}
	floor, err := Round(frac, Floor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(floor); err == nil {
		t.Fatal("floor-rounded schedule should be infeasible before repair")
	}
	repaired, err := Repair(ins, floor)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(repaired); err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	// The cheaper type (β=2) should be chosen.
	if repaired[0][0] != 1 || repaired[0][1] != 0 {
		t.Errorf("repair picked %v, want the cheaper type", repaired[0])
	}
}

func TestRepairClampsOverCounts(t *testing.T) {
	ins := homog(1, 2, 1, []float64{1})
	repaired, err := Repair(ins, model.Schedule{{5}})
	if err != nil {
		t.Fatal(err)
	}
	if repaired[0][0] != 2 {
		t.Errorf("over-count should clamp to fleet size, got %d", repaired[0][0])
	}
}

func TestRepairImpossible(t *testing.T) {
	ins := homog(1, 1, 1, []float64{1})
	ins.Lambda = []float64{5} // exceeds total capacity
	if _, err := Repair(ins, model.Schedule{{0}}); err == nil {
		t.Error("unrepairable slot should error")
	}
}

// End-to-end: round the fractional optimum of random homogeneous
// instances with every strategy; after repair all schedules are feasible,
// and the best threshold beats ceiling on switching-heavy traces.
func TestRoundFractionalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		T := 6 + rng.Intn(6)
		m := 3 + rng.Intn(3)
		lambda := workload.Diurnal(T, 0.3, float64(m)-0.5, T/2+1, rng.Float64())
		ins := homog(T, m, 1+rng.Float64()*5, lambda)
		frac, err := fractional.Solve(ins, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		eval := model.NewEvaluator(ins)
		for _, s := range []Strategy{Ceil, Floor, Threshold} {
			sched, err := RoundAndRepair(ins, frac.X, s, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if err := ins.Feasible(sched); err != nil {
				t.Fatalf("case %d strategy %d: %v", i, s, err)
			}
			cost := eval.Cost(sched).Total()
			if cost < frac.Cost*(1-1e-6) {
				t.Fatalf("case %d: integral cost %g below fractional %g", i, cost, frac.Cost)
			}
		}
	}
}

func TestSwitchCountEmpty(t *testing.T) {
	if SwitchCount(nil) != 0 {
		t.Error("empty schedule has no switches")
	}
}

func TestOscillatingFractionShape(t *testing.T) {
	f := OscillatingFraction(4, 2, 0.25)
	want := []float64{2, 2.25, 2, 2.25}
	for i := range want {
		if math.Abs(f[i][0]-want[i]) > 1e-12 {
			t.Fatalf("got %v", f)
		}
	}
}
