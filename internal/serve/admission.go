package serve

import (
	"errors"
	"sync/atomic"
	"time"
)

// Admission control: the overload layer between the HTTP handlers and
// the session manager. Three independent gates run before any session
// work — a global token bucket (slots/sec across all sessions), a
// bounded in-flight budget (concurrent push requests), and a
// per-session token bucket checked once the session is held. All three
// are wait-free on the accept path (atomic loads and CAS, no locks, no
// allocations — BenchmarkAdmission/admit gates 0 allocs/op in
// scripts/benchsmoke.sh), so shedding stays far cheaper than serving:
// a denied request costs one small error allocation and touches no
// algorithm state.
//
// A denied request carries a computed Retry-After: for a rate-limit
// deny it is the exact time until the bucket accrues the charge; for
// an in-flight deny it is a fixed hint (the budget frees on the next
// request completion, which the bucket cannot predict). The HTTP layer
// surfaces it as a Retry-After header on the 429/503.

// Sentinel errors of the admission layer; http.go maps them onto
// status codes (429 and 503) and both carry a Retry-After.
var (
	ErrThrottled  = errors.New("serve: rate limit exceeded")
	ErrOverloaded = errors.New("serve: in-flight push budget exhausted")
)

// ErrDeadline is the push-deadline timeout (Options.PushDeadline or a
// canceled request context): the push fed nothing and is safe to
// retry. The HTTP layer maps it to 504.
var ErrDeadline = errors.New("serve: push deadline exceeded")

// retryAfterError decorates a shed error with the computed wait.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// RetryAfter extracts the computed retry hint from a shed error
// (ErrThrottled, ErrOverloaded). ok is false for errors that carry
// none.
func RetryAfter(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// overloadRetryAfter is the Retry-After hint on an in-flight-budget
// deny: the budget frees as soon as any in-flight push completes, so
// the hint is a coarse "come back shortly", not a computed wait.
const overloadRetryAfter = 100 * time.Millisecond

// tokenBucket is a wait-free token bucket over a virtual "zero time":
// the nanosecond at which the bucket last held zero tokens. Tokens
// available at now are (now-zero)/interval, capped at burst by
// clamping zero on read; taking n tokens advances zero by n*interval
// under CAS. A deny leaves the state untouched (no debt) and reports
// exactly how long until the charge would fit.
type tokenBucket struct {
	zero     atomic.Int64 // ns timestamp at which the bucket holds 0 tokens
	interval int64        // ns per token
	burst    int64        // token capacity
}

// newTokenBucket returns a full bucket refilling at rate tokens/sec
// with the given capacity; nil when rate <= 0 (unlimited).
func newTokenBucket(rate float64, burst int, now int64) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		// Default capacity: one second's worth of tokens, at least 1.
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	b := &tokenBucket{interval: int64(float64(time.Second) / rate), burst: int64(burst)}
	if b.interval < 1 {
		b.interval = 1
	}
	b.zero.Store(now - b.burst*b.interval) // start full
	return b
}

// take admits n tokens at time now (ns), or reports how long until
// they would fit. Charges larger than the capacity are clamped to it —
// an oversized batch drains the bucket fully rather than being
// undeliverable forever.
func (b *tokenBucket) take(now int64, n int64) (time.Duration, bool) {
	if n > b.burst {
		n = b.burst
	}
	charge := n * b.interval
	for {
		old := b.zero.Load()
		z := old
		if floor := now - b.burst*b.interval; z < floor {
			z = floor // cap accrual at burst
		}
		nz := z + charge
		if nz > now {
			return time.Duration(nz - now), false
		}
		if b.zero.CompareAndSwap(old, nz) {
			return 0, true
		}
	}
}

// admission is the Manager's gate state.
type admission struct {
	global       *tokenBucket // nil = unlimited
	maxInFlight  int64        // 0 = unlimited
	inFlight     atomic.Int64
	sessionRate  float64 // per-session bucket template; 0 = unlimited
	sessionBurst int
}

// admitPush runs the pre-acquire gates (global rate, in-flight budget)
// for a push of n slots, charging the id's counter stripe on a deny.
// On success the caller owes one releasePush.
func (m *Manager) admitPush(met *counterStripe, now time.Time, n int) error {
	if g := m.adm.global; g != nil {
		if d, ok := g.take(now.UnixNano(), int64(n)); !ok {
			met.shed.Add(1)
			return &retryAfterError{err: ErrThrottled, after: d}
		}
	}
	if mx := m.adm.maxInFlight; mx > 0 {
		if m.adm.inFlight.Add(1) > mx {
			m.adm.inFlight.Add(-1)
			met.shed.Add(1)
			return &retryAfterError{err: ErrOverloaded, after: overloadRetryAfter}
		}
	}
	return nil
}

// releasePush returns an admitted push's in-flight slot.
func (m *Manager) releasePush() {
	if m.adm.maxInFlight > 0 {
		m.adm.inFlight.Add(-1)
	}
}

// newSessionBucket builds one session's rate limiter (nil when
// per-session limiting is off). Eviction drops it with the rest of the
// resident state, so a resumed session restarts with a full bucket —
// the limit bounds sustained rates, not lifetime totals.
func (m *Manager) newSessionBucket() *tokenBucket {
	return newTokenBucket(m.adm.sessionRate, m.adm.sessionBurst, m.nowFn().UnixNano())
}

// admitSession runs the per-session gate; the caller holds ls.mu. It
// sits after acquire so the charge lands on the session that will be
// served — the global gates already shed the bulk of an overload
// before any registry or store work.
func (m *Manager) admitSession(ls *liveSession, met *counterStripe, now time.Time, n int) error {
	if ls.bucket == nil {
		return nil
	}
	if d, ok := ls.bucket.take(now.UnixNano(), int64(n)); !ok {
		met.shed.Add(1)
		return &retryAfterError{err: ErrThrottled, after: d}
	}
	return nil
}

// shedErr reports whether err is an admission deny (counted in
// PushesShed, never in PushErrors).
func shedErr(err error) bool {
	return errors.Is(err, ErrThrottled) || errors.Is(err, ErrOverloaded)
}
