package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// tokenBucket semantics, on synthetic clocks: exact admits, exact
// waits, burst capping, and charge clamping.
func TestTokenBucket(t *testing.T) {
	const sec = int64(time.Second)

	// 2 tokens/sec, burst 4, starting full at t=0.
	b := newTokenBucket(2, 4, 0)
	for i := 0; i < 4; i++ {
		if d, ok := b.take(0, 1); !ok {
			t.Fatalf("take %d of the initial burst denied (wait %v)", i+1, d)
		}
	}
	d, ok := b.take(0, 1)
	if ok {
		t.Fatal("5th take from a burst-4 bucket admitted")
	}
	if d != 500*time.Millisecond {
		t.Fatalf("wait after draining = %v, want 500ms (one 2/sec token)", d)
	}
	// Half a second later exactly one token is back.
	if _, ok := b.take(sec/2, 1); !ok {
		t.Fatal("token not back after its exact refill interval")
	}
	if _, ok := b.take(sec/2, 1); ok {
		t.Fatal("second token admitted before accrual")
	}

	// Accrual is capped at burst: after a long idle stretch, exactly
	// burst tokens are available.
	if _, ok := b.take(1000*sec, 4); !ok {
		t.Fatal("burst not available after long idle")
	}
	if _, ok := b.take(1000*sec, 1); ok {
		t.Fatal("more than burst accrued over idle time")
	}

	// An oversized charge is clamped to the capacity: it drains the
	// bucket fully instead of being undeliverable forever.
	if _, ok := b.take(2000*sec, 100); !ok {
		t.Fatal("oversized charge never admittable")
	}
	if _, ok := b.take(2000*sec, 1); ok {
		t.Fatal("bucket not drained by clamped oversized charge")
	}

	if nb := newTokenBucket(0, 10, 0); nb != nil {
		t.Fatal("rate 0 must mean unlimited (nil bucket)")
	}
}

// The global rate gate: pushes beyond the burst shed with ErrThrottled
// (HTTP 429) carrying a computed Retry-After, count as PushesShed (not
// PushErrors), and feed nothing.
func TestAdmissionGlobalRate(t *testing.T) {
	// 1 token per 1000s: the burst is all a test run ever gets, so the
	// outcome is deterministic on a real clock.
	m := NewManager(Options{GlobalRate: 0.001, GlobalBurst: 2})
	if _, err := m.Open(OpenRequest{ID: "g", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	trace := quickstartTrace(t)
	pushAll(t, m, "g", trace, 0, 2)

	_, err := m.Push("g", PushRequest{Lambda: trace[2]})
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("push past the burst: err %v, want ErrThrottled", err)
	}
	if status := httpStatus(err); status != http.StatusTooManyRequests {
		t.Fatalf("throttled status %d, want 429", status)
	}
	d, ok := RetryAfter(err)
	if !ok || d <= 0 {
		t.Fatalf("throttled Retry-After = %v, %v; want a positive wait", d, ok)
	}
	met := m.Metrics()
	if met.PushesShed != 1 || met.PushErrors != 0 {
		t.Fatalf("metrics after shed: %+v (want 1 shed, 0 errors)", met)
	}
	if info, _ := m.Info("g"); info.Fed != 2 {
		t.Fatalf("shed push fed something: %d slots, want 2", info.Fed)
	}
}

// The per-session gate throttles one session without touching its
// neighbors.
func TestAdmissionSessionRate(t *testing.T) {
	m := NewManager(Options{SessionRate: 0.001, SessionBurst: 2})
	trace := quickstartTrace(t)
	for _, id := range []string{"s1", "s2"} {
		if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
			t.Fatal(err)
		}
	}
	pushAll(t, m, "s1", trace, 0, 2)
	if _, err := m.Push("s1", PushRequest{Lambda: trace[2]}); !errors.Is(err, ErrThrottled) {
		t.Fatalf("s1 past its burst: err %v, want ErrThrottled", err)
	}
	// s2's bucket is untouched by s1's exhaustion.
	pushAll(t, m, "s2", trace, 0, 2)
	if met := m.Metrics(); met.PushesShed != 1 {
		t.Fatalf("metrics: %+v, want exactly 1 shed", met)
	}
}

// The in-flight budget: with MaxInFlight=1 and one push parked on a
// held session lock, the next push sheds immediately with ErrOverloaded
// (HTTP 503) instead of queueing without bound.
func TestAdmissionMaxInFlight(t *testing.T) {
	m := NewManager(Options{MaxInFlight: 1})
	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "mif", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}

	// Wedge the session: hold its lock from a helper goroutine.
	release := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = m.withSession("mif", func(*liveSession) { close(held); <-release })
	}()
	<-held

	// First push is admitted and parks on the lock.
	go func() {
		defer wg.Done()
		if _, err := m.Push("mif", PushRequest{Lambda: trace[0]}); err != nil {
			t.Errorf("parked push failed: %v", err)
		}
	}()
	for m.adm.inFlight.Load() != 1 {
		time.Sleep(50 * time.Microsecond)
	}

	// Second push finds the budget spent.
	_, err := m.Push("mif", PushRequest{Lambda: trace[0]})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("push over the in-flight budget: err %v, want ErrOverloaded", err)
	}
	if status := httpStatus(err); status != http.StatusServiceUnavailable {
		t.Fatalf("overloaded status %d, want 503", status)
	}
	if d, ok := RetryAfter(err); !ok || d <= 0 {
		t.Fatalf("overloaded Retry-After = %v, %v; want a positive hint", d, ok)
	}

	close(release)
	wg.Wait()
	met := m.Metrics()
	if met.PushesShed != 1 || met.SlotsPushed != 1 {
		t.Fatalf("metrics: %+v (want 1 shed, 1 pushed)", met)
	}
}

// Options.PushDeadline turns a wedged session into a clean ErrDeadline
// (HTTP 504): the push feeds nothing, counts as a timeout, and the
// session serves normally once unwedged.
func TestPushDeadlineWedgedSession(t *testing.T) {
	m := NewManager(Options{PushDeadline: 25 * time.Millisecond})
	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "wedge", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "wedge", trace, 0, 3)

	release := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = m.withSession("wedge", func(*liveSession) { close(held); <-release })
	}()
	<-held

	_, err := m.Push("wedge", PushRequest{Lambda: trace[3]})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("push against a wedged session: err %v, want ErrDeadline", err)
	}
	if status := httpStatus(err); status != http.StatusGatewayTimeout {
		t.Fatalf("deadline status %d, want 504", status)
	}
	close(release)
	wg.Wait()

	// Nothing was fed by the timed-out push; the retry lands cleanly.
	if info, _ := m.Info("wedge"); info.Fed != 3 {
		t.Fatalf("timed-out push fed something: %d slots, want 3", info.Fed)
	}
	pushAll(t, m, "wedge", trace, 3, 5)
	met := m.Metrics()
	if met.PushTimeouts != 1 || met.PushErrors != 0 || met.SlotsPushed != 5 {
		t.Fatalf("metrics: %+v (want 1 timeout, 0 errors, 5 pushed)", met)
	}
}

// hookStore lets a test intercept store calls: the hooks run at entry,
// so a blocking hook wedges the operation deterministically.
type hookStore struct {
	*MemStore
	mu       sync.Mutex
	onLoad   func()
	onDelete func()
}

func (s *hookStore) set(onLoad, onDelete func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onLoad, s.onDelete = onLoad, onDelete
}

func (s *hookStore) Load(id string) (*Snapshot, bool, error) {
	s.mu.Lock()
	h := s.onLoad
	s.mu.Unlock()
	if h != nil {
		h()
	}
	return s.MemStore.Load(id)
}

func (s *hookStore) Delete(id string) error {
	s.mu.Lock()
	h := s.onDelete
	s.mu.Unlock()
	if h != nil {
		h()
	}
	return s.MemStore.Delete(id)
}

// A wedged store read is bounded by the push deadline too: a resume
// whose Load hangs answers ErrDeadline, and the session resumes
// normally once the store recovers.
func TestPushDeadlineWedgedStore(t *testing.T) {
	st := &hookStore{MemStore: NewMemStore()}
	m := NewManager(Options{Store: st, PushDeadline: 25 * time.Millisecond})
	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "ws", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "ws", trace, 0, 3)
	if err := m.Evict("ws"); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	st.set(func() { <-release }, nil)
	_, err := m.Push("ws", PushRequest{Lambda: trace[3]})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("push with a hung store: err %v, want ErrDeadline", err)
	}
	close(release)
	st.set(nil, nil)

	// The store recovered; the retry resumes and feeds.
	pushAll(t, m, "ws", trace, 3, 5)
	info, err := m.Info("ws")
	if err != nil || info.Fed != 5 {
		t.Fatalf("after store recovery: info %+v err %v", info, err)
	}
	if met := m.Metrics(); met.PushTimeouts != 1 {
		t.Fatalf("metrics: %+v, want 1 timeout", met)
	}
}

// A caller-canceled context answers ErrDeadline even with no
// PushDeadline configured (an HTTP client disconnect mid-push).
func TestPushCanceledContext(t *testing.T) {
	m := NewManager(Options{})
	if _, err := m.Open(OpenRequest{ID: "cx", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.PushCtx(ctx, "cx", PushRequest{Lambda: 1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("push under a canceled context: err %v, want ErrDeadline", err)
	}
	if info, _ := m.Info("cx"); info.Fed != 0 {
		t.Fatal("canceled push fed a slot")
	}
}

// Evict vs. an in-flight push: the eviction must answer ErrBusy, not
// block and not win — deterministically, with the push parked first.
func TestEvictBusyAgainstInFlightPush(t *testing.T) {
	m := NewManager(Options{})
	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "busy", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "busy", trace, 0, 2)

	release := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = m.withSession("busy", func(*liveSession) { close(held); <-release })
	}()
	<-held
	if err := m.Evict("busy"); !errors.Is(err, ErrBusy) {
		t.Fatalf("evict against a held session: err %v, want ErrBusy", err)
	}
	close(release)
	wg.Wait()
	if err := m.Evict("busy"); err != nil {
		t.Fatalf("evict after the push drained: %v", err)
	}
}

// Evict vs. a PushBatch mid-resume: the placeholder holds the session
// lock for the whole store read, so a concurrent evict answers ErrBusy
// and the batch lands intact.
func TestEvictBusyAgainstResumingBatch(t *testing.T) {
	st := &hookStore{MemStore: NewMemStore()}
	m := NewManager(Options{Store: st})
	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "rb", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "rb", trace, 0, 3)
	if err := m.Evict("rb"); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	entered := make(chan struct{})
	st.set(func() { close(entered); <-release }, nil)

	reqs := []PushRequest{{Lambda: trace[3]}, {Lambda: trace[4]}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := m.PushBatch("rb", reqs)
		if err != nil || len(res) != 2 {
			t.Errorf("resuming batch: %d results, err %v", len(res), err)
		}
	}()
	<-entered // the batch is inside the store read, placeholder locked

	if err := m.Evict("rb"); !errors.Is(err, ErrBusy) {
		t.Fatalf("evict against a resuming session: err %v, want ErrBusy", err)
	}
	close(release)
	st.set(nil, nil)
	wg.Wait()

	info, err := m.Info("rb")
	if err != nil || info.Fed != 5 {
		t.Fatalf("after resume+batch: info %+v err %v", info, err)
	}
}

// A double delete has exactly one winner: the loser sees
// ErrUnknownSession (404), never a half-deleted session and never a
// hang — pinned with the store's Delete wedged mid-flight.
func TestDoubleDelete(t *testing.T) {
	st := &hookStore{MemStore: NewMemStore()}
	m := NewManager(Options{Store: st})
	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "dd", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "dd", trace, 0, 2)

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	st.set(nil, func() { once.Do(func() { close(entered) }); <-release })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := m.Delete("dd"); err != nil {
			t.Errorf("winning delete failed: %v", err)
		}
	}()
	<-entered // the winner closed the session and is inside store.Delete

	if _, err := m.Delete("dd"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("losing delete: err %v, want ErrUnknownSession", err)
	}
	close(release)
	st.set(nil, nil)
	wg.Wait()

	if _, err := m.Info("dd"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("deleted session still answers: %v", err)
	}
}

// Shed responses carry Retry-After over HTTP, identically under both
// codecs: 429 from the rate limiter with the computed wait.
func TestHTTPRetryAfterThrottle(t *testing.T) {
	forEachCodec(t, func(t *testing.T, reflectCodec bool) {
		m := NewManager(Options{GlobalRate: 0.001, GlobalBurst: 1, ReflectCodec: reflectCodec})
		srv := httptest.NewServer(NewHandler(m))
		defer srv.Close()
		cl := &httpClient{t: t, base: srv.URL}

		cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "ra", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
		cl.mustDo("POST", "/v1/sessions/ra/push", PushRequest{Lambda: 1}, nil, http.StatusOK)

		resp := rawPost(t, srv.URL+"/v1/sessions/ra/push", `{"lambda": 1}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("throttled push: HTTP %d, want 429", resp.StatusCode)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || secs < 1 {
			t.Fatalf("throttled Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
		}
		var mt struct {
			OK      bool    `json:"ok"`
			Metrics Metrics `json:"metrics"`
		}
		cl.mustDo("GET", "/v1/healthz", nil, &mt, http.StatusOK)
		if mt.Metrics.PushesShed != 1 {
			t.Fatalf("healthz after shed: %+v, want pushes_shed 1", mt.Metrics)
		}
	})
}

// The admission fast path must stay allocation-free on accept —
// shedding is only cheaper than serving if admission itself is ~free.
// scripts/benchsmoke.sh gates admit at ~0 allocs/op.
func BenchmarkAdmission(b *testing.B) {
	b.Run("admit", func(b *testing.B) {
		m := NewManager(Options{GlobalRate: 1e12, MaxInFlight: 1 << 30, SessionRate: 1e12})
		met := m.stripeFor("bench")
		now := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.admitPush(met, now, 1); err != nil {
				b.Fatal(err)
			}
			m.releasePush()
		}
	})
	b.Run("deny", func(b *testing.B) {
		m := NewManager(Options{GlobalRate: 0.001, GlobalBurst: 1})
		met := m.stripeFor("bench")
		now := time.Now().Add(time.Hour)
		_, _ = m.adm.global.take(now.UnixNano(), 1) // drain the burst
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.admitPush(met, now, 1); err == nil {
				b.Fatal("deny bench admitted")
			}
		}
	})
}
