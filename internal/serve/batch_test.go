package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stream"
)

// pushReqs converts one trace slice into push requests.
func pushReqs(ins *model.Instance, from, to int) []PushRequest {
	out := make([]PushRequest, 0, to-from)
	for ts := from + 1; ts <= to; ts++ {
		req := PushRequest{Lambda: ins.Lambda[ts-1]}
		if ins.Counts != nil {
			req.Counts = ins.Counts[ts-1]
		}
		out = append(out, req)
	}
	return out
}

// The batch differential: for every streamable algorithm on every stock
// scenario, the full trace fed through Manager.PushBatch — including a
// mid-batch checkpoint→evict→transparent-resume cycle — produces
// advisories, telemetry and a final checkpoint bit-identical to the
// serial slot-at-a-time stream.Session path. Jobs run concurrently
// across a 4-shard manager, so the striping is exercised under real
// parallelism in the -race -cpu 4 CI job.
func TestPushBatchDifferential(t *testing.T) {
	const seed = 7
	const batch = 7 // odd: batch boundaries straddle lookahead windows

	type job struct {
		id   string
		sc   string
		spec engine.AlgSpec
		ins  *model.Instance
	}
	var jobs []job
	for _, sc := range engine.Scenarios() {
		ins := sc.Instance(seed)
		for _, spec := range engine.Algorithms() {
			if !spec.Streamable() {
				continue
			}
			if spec.Skip != nil && spec.Skip(ins) != "" {
				continue
			}
			jobs = append(jobs, job{
				id: fmt.Sprintf("%s-%s", sc.Name, spec.Key),
				sc: sc.Name, spec: spec, ins: ins,
			})
		}
	}
	if len(jobs) < 40 {
		t.Fatalf("only %d algorithm x scenario jobs; the stock registry should yield >= 40", len(jobs))
	}

	m := NewManager(Options{MaxSessions: len(jobs) + 1, Shards: 4})
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	totalSlots := 0
	for _, jb := range jobs {
		totalSlots += jb.ins.T()
		wg.Add(1)
		go func(jb job) {
			defer wg.Done()
			if err := runBatchDifferentialJob(t, m, jb.id, jb.sc, seed, batch, jb.spec, jb.ins); err != nil {
				errs <- fmt.Errorf("%s: %w", jb.id, err)
			}
		}(jb)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	met := m.Metrics()
	if met.SessionsOpened != uint64(len(jobs)) || met.SessionsDeleted != uint64(len(jobs)) ||
		met.SessionsEvicted != uint64(len(jobs)) || met.SessionsResumed != uint64(len(jobs)) {
		t.Errorf("merged metrics: %+v, want %d opened/deleted/evicted/resumed", met, len(jobs))
	}
	if met.SlotsPushed != uint64(totalSlots) {
		t.Errorf("merged SlotsPushed = %d, want %d (batched pushes count per slot)", met.SlotsPushed, totalSlots)
	}
	if met.PushErrors != 0 {
		t.Errorf("merged PushErrors = %d, want 0", met.PushErrors)
	}
}

// runBatchDifferentialJob drives one session's trace in batches against
// the serial reference. Failures are returned, not t.Fatal'd: it runs
// off the test goroutine.
func runBatchDifferentialJob(t *testing.T, m *Manager, id, scenario string, seed int64, batch int, spec engine.AlgSpec, ins *model.Instance) error {
	want := serialAdvisories(t, spec, ins)
	refSess, err := engine.OpenSession(spec.Key, ins.Types, stream.Options{})
	if err != nil {
		return err
	}
	for ts := 1; ts <= ins.T(); ts++ {
		in := model.SlotInput{Lambda: ins.Lambda[ts-1]}
		if ins.Counts != nil {
			in.Counts = ins.Counts[ts-1]
		}
		if _, err := refSess.Feed(in); err != nil {
			return err
		}
	}
	wantCp := refSess.Checkpoint()

	info, err := m.Open(OpenRequest{ID: id, Alg: spec.Key, Fleet: FleetJSON{Scenario: scenario, Seed: seed}})
	if err != nil {
		return err
	}
	if info.ID != id {
		return fmt.Errorf("open returned %+v", info)
	}

	var got []stream.Advisory
	half := ins.T() / 2
	evicted := false
	for start := 0; start < ins.T(); start += batch {
		end := min(start+batch, ins.T())
		results, err := m.PushBatch(id, pushReqs(ins, start, end))
		if err != nil {
			return fmt.Errorf("batch [%d,%d): %v", start, end, err)
		}
		if len(results) != end-start {
			return fmt.Errorf("batch [%d,%d) returned %d results", start, end, len(results))
		}
		for _, res := range results {
			if res.Decided {
				got = append(got, *res.Advisory)
			}
		}
		if !evicted && end >= half {
			// Mid-trace lifecycle between two batches: persist a snapshot,
			// shed the live session, and let the next PushBatch resume it
			// transparently (mid-batch from the client's point of view).
			snap, err := m.Checkpoint(id)
			if err != nil {
				return fmt.Errorf("checkpoint: %v", err)
			}
			if len(snap.Checkpoint.Slots) != end {
				return fmt.Errorf("checkpoint at slot %d holds %d slots", end, len(snap.Checkpoint.Slots))
			}
			if err := m.Evict(id); err != nil {
				return fmt.Errorf("evict: %v", err)
			}
			evicted = true
		}
	}

	// The final checkpoint replays the identical log.
	snap, err := m.Checkpoint(id)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(snap.Checkpoint, wantCp) {
		return fmt.Errorf("final checkpoint diverged from the serial session's")
	}

	closed, err := m.Delete(id)
	if err != nil {
		return err
	}
	got = append(got, closed.Advisories...)

	if len(got) != len(want) {
		return fmt.Errorf("decided %d slots, serial reference decided %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Errorf("slot %d advisory diverged:\n batch: %+v\nserial: %+v", i+1, got[i], want[i])
		}
	}
	if closed.Info.CumCost != want[len(want)-1].CumCost {
		return fmt.Errorf("close cum cost %v != serial %v", closed.Info.CumCost, want[len(want)-1].CumCost)
	}
	return nil
}

// Shard count is behaviorally invisible: N ∈ {1, 4, 16} produce
// bit-identical per-session advisories and checkpoints and identical
// merged metrics counts for the same workload (sessions, batches,
// checkpoint/evict/resume cycles, deletes).
func TestShardCountInvariance(t *testing.T) {
	sc, ok := engine.Lookup("quickstart")
	if !ok {
		t.Fatal("quickstart scenario missing")
	}
	ins := sc.Instance(1)

	type outcome struct {
		advisories map[string][]stream.Advisory
		checkpoint map[string]*stream.Checkpoint
		met        Metrics
	}
	run := func(shards int) outcome {
		m := NewManager(Options{Shards: shards, MaxSessions: 32})
		out := outcome{
			advisories: map[string][]stream.Advisory{},
			checkpoint: map[string]*stream.Checkpoint{},
		}
		algs := []string{"alg-a", "alg-b", "receding-horizon", "all-on"}
		var ids []string
		for i := 0; i < 12; i++ {
			id := fmt.Sprintf("inv-%02d", i)
			ids = append(ids, id)
			if _, err := m.Open(OpenRequest{ID: id, Alg: algs[i%len(algs)], Fleet: FleetJSON{Scenario: "quickstart", Seed: 1}}); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			// Mixed single and batch pushes with a mid-trace evict cycle.
			for ts := 0; ts < 8; ts++ {
				res, err := m.Push(id, PushRequest{Lambda: ins.Lambda[ts]})
				if err != nil {
					t.Fatal(err)
				}
				if res.Decided {
					out.advisories[id] = append(out.advisories[id], *res.Advisory)
				}
			}
			if _, err := m.Checkpoint(id); err != nil {
				t.Fatal(err)
			}
			if err := m.Evict(id); err != nil {
				t.Fatal(err)
			}
			for start := 8; start < ins.T(); start += 5 {
				results, err := m.PushBatch(id, pushReqs(ins, start, min(start+5, ins.T())))
				if err != nil {
					t.Fatal(err)
				}
				for _, res := range results {
					if res.Decided {
						out.advisories[id] = append(out.advisories[id], *res.Advisory)
					}
				}
			}
			snap, err := m.Checkpoint(id)
			if err != nil {
				t.Fatal(err)
			}
			out.checkpoint[id] = snap.Checkpoint
		}
		for _, id := range ids {
			closed, err := m.Delete(id)
			if err != nil {
				t.Fatal(err)
			}
			out.advisories[id] = append(out.advisories[id], closed.Advisories...)
		}
		met := m.Metrics()
		met.PushP50Micros, met.PushP99Micros = 0, 0 // timing, not behavior
		out.met = met
		return out
	}

	ref := run(1)
	if ref.met.SessionsOpened != 12 || ref.met.SessionsEvicted != 12 || ref.met.SessionsResumed != 12 {
		t.Fatalf("reference run metrics: %+v", ref.met)
	}
	for _, shards := range []int{4, 16} {
		got := run(shards)
		if !reflect.DeepEqual(got.met, ref.met) {
			t.Errorf("shards=%d merged metrics diverged:\n got %+v\nwant %+v", shards, got.met, ref.met)
		}
		for id := range ref.advisories {
			if !reflect.DeepEqual(got.advisories[id], ref.advisories[id]) {
				t.Errorf("shards=%d session %s advisories diverged", shards, id)
			}
			if !reflect.DeepEqual(got.checkpoint[id], ref.checkpoint[id]) {
				t.Errorf("shards=%d session %s checkpoint diverged", shards, id)
			}
		}
	}
}

// The HTTP push endpoint's response shape mirrors the request: an array
// body answers with an array of results, fed as one batch; a single
// object stays a single object; errors keep their statuses.
func TestHTTPBatchPush(t *testing.T) {
	m := NewManager(Options{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}
	trace := quickstartTrace(t)

	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "batch", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)

	// Array in, array out.
	reqs := []PushRequest{{Lambda: trace[0]}, {Lambda: trace[1]}, {Lambda: trace[2]}}
	var batch []PushResult
	cl.mustDo("POST", "/v1/sessions/batch/push", reqs, &batch, http.StatusOK)
	if len(batch) != 3 {
		t.Fatalf("array push returned %d results, want 3", len(batch))
	}
	for i, res := range batch {
		if !res.Decided || res.Advisory == nil || res.Advisory.Slot != i+1 {
			t.Fatalf("batch result %d: %+v", i, res)
		}
	}

	// Single object in, single object out (not a 1-element array).
	resp := rawPost(t, srv.URL+"/v1/sessions/batch/push", fmt.Sprintf(`{"lambda": %g}`, trace[3]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single push: HTTP %d", resp.StatusCode)
	}
	var single PushResult
	status, raw := cl.do("POST", "/v1/sessions/batch/push", PushRequest{Lambda: trace[4]}, &single)
	if status != http.StatusOK || !single.Decided || single.Advisory.Slot != 5 {
		t.Fatalf("single push: HTTP %d %s", status, raw)
	}
	if strings.HasPrefix(strings.TrimSpace(raw), "[") {
		t.Fatalf("single push answered with an array: %s", raw)
	}

	// Whitespace before the bracket still selects the batch form.
	resp = rawPost(t, srv.URL+"/v1/sessions/batch/push", fmt.Sprintf("  \n\t[{\"lambda\": %g}]", trace[5]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whitespace-led array push: HTTP %d", resp.StatusCode)
	}

	// An empty array answers with an empty array, feeding nothing — but
	// still validates the session like any push would.
	status, raw = cl.do("POST", "/v1/sessions/batch/push", []PushRequest{}, nil)
	if status != http.StatusOK || strings.TrimSpace(raw) != "[]" {
		t.Fatalf("empty batch: HTTP %d %q, want 200 []", status, raw)
	}
	if status, _ = cl.do("POST", "/v1/sessions/no-such-session/push", []PushRequest{}, nil); status != http.StatusNotFound {
		t.Fatalf("empty batch to unknown session: HTTP %d, want 404", status)
	}

	// Unknown fields and malformed elements are 400s, batch or not.
	for _, body := range []string{`[{"lambdo": 1}]`, `[{"lambda": "x"}]`, `[{`} {
		if resp := rawPost(t, srv.URL+"/v1/sessions/batch/push", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}

	// A mid-batch infeasible slot fails the batch with 422; the slots
	// before it were committed, the rest were not — and the committed
	// slots' results ride along with the error so their advisories are
	// not lost (a repeated-push client would have received them before
	// the error).
	var before SessionInfo
	cl.mustDo("GET", "/v1/sessions/batch", nil, &before, http.StatusOK)
	bad := []PushRequest{{Lambda: trace[6]}, {Lambda: -1}, {Lambda: trace[7]}}
	var partial struct {
		Error   string       `json:"error"`
		Results []PushResult `json:"results"`
	}
	status, raw = cl.do("POST", "/v1/sessions/batch/push", bad, nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible mid-batch: HTTP %d %s, want 422", status, raw)
	}
	if err := json.Unmarshal([]byte(raw), &partial); err != nil {
		t.Fatalf("partial-batch error body %q: %v", raw, err)
	}
	if partial.Error == "" || len(partial.Results) != 1 {
		t.Fatalf("partial-batch error body %q: want the error and the 1 committed result", raw)
	}
	if !partial.Results[0].Decided || partial.Results[0].Advisory.Slot != before.Fed+1 {
		t.Fatalf("committed result lost or wrong: %+v", partial.Results[0])
	}
	var after SessionInfo
	cl.mustDo("GET", "/v1/sessions/batch", nil, &after, http.StatusOK)
	if after.Fed != before.Fed+1 {
		t.Fatalf("mid-batch error committed %d slots, want exactly the 1 before the bad slot", after.Fed-before.Fed)
	}

	cl.mustDo("DELETE", "/v1/sessions/batch", nil, nil, http.StatusOK)

	met := m.Metrics()
	if met.PushErrors != 2 {
		t.Errorf("PushErrors = %d, want 2 (the unknown-session empty batch and the failed batch)", met.PushErrors)
	}
}

// The batch path over HTTP is the same bytes as repeated single pushes:
// a full trace pushed as arrays decodes to the same advisories the
// serial differential checks, so clients can switch freely.
func TestHTTPBatchMatchesSingle(t *testing.T) {
	m := NewManager(Options{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}
	trace := quickstartTrace(t)

	for _, mode := range []string{"single", "batched"} {
		cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: mode, Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	}
	var single, batched []json.RawMessage
	for _, lambda := range trace {
		var res struct {
			Decided  bool            `json:"decided"`
			Advisory json.RawMessage `json:"advisory"`
		}
		cl.mustDo("POST", "/v1/sessions/single/push", PushRequest{Lambda: lambda}, &res, http.StatusOK)
		single = append(single, res.Advisory)
	}
	for start := 0; start < len(trace); start += 11 {
		var results []struct {
			Decided  bool            `json:"decided"`
			Advisory json.RawMessage `json:"advisory"`
		}
		reqs := []PushRequest{}
		for _, lambda := range trace[start:min(start+11, len(trace))] {
			reqs = append(reqs, PushRequest{Lambda: lambda})
		}
		cl.mustDo("POST", "/v1/sessions/batched/push", reqs, &results, http.StatusOK)
		for _, res := range results {
			batched = append(batched, res.Advisory)
		}
	}
	if len(single) != len(batched) {
		t.Fatalf("decided %d batched vs %d single", len(batched), len(single))
	}
	for i := range single {
		if string(single[i]) != string(batched[i]) {
			t.Fatalf("slot %d advisory JSON diverged:\nbatched: %s\n single: %s", i+1, batched[i], single[i])
		}
	}
}
