package serve

import (
	"fmt"
	"testing"
)

// BenchmarkServePush measures the serving layer's overhead over a raw
// stream session: one op opens a managed session, drives the 48-slot
// quickstart trace through Manager.Push (acquire, per-session lock,
// metrics) and deletes it — the manager-path counterpart of the root
// package's BenchmarkStreamSession, without HTTP. Gated by
// scripts/benchsmoke.sh against BENCH_serve.json.
func BenchmarkServePush(b *testing.B) {
	m := NewManager(Options{})
	trace := quickstartTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
			b.Fatal(err)
		}
		for _, lambda := range trace {
			if _, err := m.Push(id, PushRequest{Lambda: lambda}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
}
