package serve

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkServePush measures the serving layer's overhead over a raw
// stream session: one op opens a managed session, drives the 48-slot
// quickstart trace through Manager.Push (acquire, per-session lock,
// metrics) and deletes it — the manager-path counterpart of the root
// package's BenchmarkStreamSession, without HTTP. Gated by
// scripts/benchsmoke.sh against BENCH_serve.json.
func BenchmarkServePush(b *testing.B) {
	m := NewManager(Options{})
	trace := quickstartTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
			b.Fatal(err)
		}
		for _, lambda := range trace {
			if _, err := m.Push(id, PushRequest{Lambda: lambda}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePushParallel measures aggregate serving throughput: one
// op opens 16 managed sessions and drives the 48-slot quickstart trace
// through all of them concurrently — unbatched (one Manager.Push per
// slot) and batched (Manager.PushBatch in runs of 16 slots). With the
// sharded registry the sessions spread across 16 lock stripes, so on a
// multi-core box the op scales with GOMAXPROCS; the batched variant
// additionally amortizes the acquire/metrics overhead. The batch=1
// variant is gated by scripts/benchsmoke.sh against BENCH_serve.json.
func BenchmarkServePushParallel(b *testing.B) {
	const nSessions = 16
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			m := NewManager(Options{MaxSessions: nSessions + 1, Shards: nSessions})
			trace := quickstartTrace(b)
			reqs := make([]PushRequest, len(trace))
			for i, lambda := range trace {
				reqs[i] = PushRequest{Lambda: lambda}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, nSessions)
				for s := 0; s < nSessions; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						id := fmt.Sprintf("p%d-%d-%d", batch, i, s)
						if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
							errs <- err
							return
						}
						if batch == 1 {
							for _, req := range reqs {
								if _, err := m.Push(id, req); err != nil {
									errs <- err
									return
								}
							}
						} else {
							for start := 0; start < len(reqs); start += batch {
								if _, err := m.PushBatch(id, reqs[start:min(start+batch, len(reqs))]); err != nil {
									errs <- err
									return
								}
							}
						}
						if _, err := m.Delete(id); err != nil {
							errs <- err
						}
					}(s)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
		})
	}
}
