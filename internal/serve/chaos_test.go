package serve

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stream"
)

// The chaos acceptance test: with the snapshot store injecting 20%
// save/load failures, torn writes and latency, every streamable
// algorithm's full trace — fed concurrently, with evictions forced
// mid-trace and an EvictIdle janitor hammering from the side — still
// produces advisories bit-identical to a fault-free serial feed, and
// no session is ever silently lost (every one ends with the full trace
// fed). Store failures are allowed to surface as errors; they are
// never allowed to corrupt or drop state.
func TestChaosDifferential(t *testing.T) {
	const seed = 7
	scenarios := []string{"quickstart", "onoff"}

	type job struct {
		id   string
		sc   string
		spec engine.AlgSpec
		ins  *model.Instance
	}
	var jobs []job
	for _, name := range scenarios {
		sc, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		ins := sc.Instance(seed)
		for _, spec := range engine.Algorithms() {
			if !spec.Streamable() {
				continue
			}
			if spec.Skip != nil && spec.Skip(ins) != "" {
				continue
			}
			jobs = append(jobs, job{
				id: fmt.Sprintf("chaos-%s-%s", name, spec.Key),
				sc: name, spec: spec, ins: ins,
			})
		}
	}
	if len(jobs) < 8 {
		t.Fatalf("only %d chaos jobs; want >= 8", len(jobs))
	}

	fs := NewFaultStore(NewMemStore(), FaultConfig{
		Seed:          42,
		SaveErrRate:   0.2,
		LoadErrRate:   0.2,
		TornWriteRate: 0.5,
		MaxLatency:    200 * time.Microsecond,
	})
	m := NewManager(Options{
		MaxSessions: len(jobs) + 1,
		Store:       fs,
		// Fast backoff so injected failures cost microseconds, not test time.
		StoreBackoff:    50 * time.Microsecond,
		StoreBackoffCap: 200 * time.Microsecond,
	})

	// Janitor chaos: keep evicting everything idle while the traces run.
	// Injected save failures surface as ErrStore here — tolerated, the
	// sessions must simply stay live and correct.
	var chaosWg sync.WaitGroup
	var done atomic.Bool
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		for !done.Load() {
			if _, err := m.EvictIdle(0); err != nil && !errors.Is(err, ErrStore) {
				t.Errorf("EvictIdle: %v", err)
				return
			}
			m.Metrics()
		}
	}()

	// retryStore runs op until it stops failing with ErrStore (the
	// manager guarantees an ErrStore push/open changed nothing, so the
	// retry is always safe); anything else is the job's problem.
	retryStore := func(op func() error) error {
		var lastErr error
		for attempt := 0; attempt < 50; attempt++ {
			err := op()
			if err == nil || !errors.Is(err, ErrStore) {
				return err
			}
			lastErr = err
		}
		return fmt.Errorf("never recovered: %w", lastErr)
	}

	// tails carries each job's streamed-advisory count and serial
	// reference across the disarm barrier to the delete-tail comparison.
	type tailCheck struct {
		got  int
		want []stream.Advisory
	}
	tails := struct {
		sync.Mutex
		m map[string]tailCheck
	}{m: map[string]tailCheck{}}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, jb := range jobs {
		wg.Add(1)
		go func(jb job) {
			defer wg.Done()
			if err := retryStore(func() error {
				_, err := m.Open(OpenRequest{ID: jb.id, Alg: jb.spec.Key, Fleet: FleetJSON{Scenario: jb.sc, Seed: seed}})
				return err
			}); err != nil {
				errs <- fmt.Errorf("%s: open: %w", jb.id, err)
				return
			}
			var got []stream.Advisory
			for ts := 1; ts <= jb.ins.T(); ts++ {
				req := PushRequest{Lambda: jb.ins.Lambda[ts-1]}
				if jb.ins.Counts != nil {
					req.Counts = jb.ins.Counts[ts-1]
				}
				var res PushResult
				if err := retryStore(func() error {
					var perr error
					res, perr = m.Push(jb.id, req)
					return perr
				}); err != nil {
					errs <- fmt.Errorf("%s: slot %d: %w", jb.id, ts, err)
					return
				}
				if res.Decided {
					got = append(got, *res.Advisory)
				}
				if ts%7 == 3 {
					// Force an eviction: ErrBusy (janitor races), ErrStore
					// (injected save failure after retries — the session must
					// stay live) and ErrUnknownSession (the janitor evicted it
					// first; the next push resumes it) are all fine.
					if err := m.Evict(jb.id); err != nil && !errors.Is(err, ErrBusy) && !errors.Is(err, ErrStore) && !errors.Is(err, ErrUnknownSession) {
						errs <- fmt.Errorf("%s: evict at %d: %w", jb.id, ts, err)
						return
					}
				}
				if ts%11 == 5 {
					if _, err := m.Checkpoint(jb.id); err != nil && !errors.Is(err, ErrStore) {
						errs <- fmt.Errorf("%s: checkpoint at %d: %w", jb.id, ts, err)
						return
					}
				}
			}
			// No session silently lost: the full trace must be accounted for.
			info, err := m.Info(jb.id)
			if err != nil {
				errs <- fmt.Errorf("%s: info: %w", jb.id, err)
				return
			}
			if info.Fed != jb.ins.T() {
				errs <- fmt.Errorf("%s: fed %d slots, want %d — session state lost under faults", jb.id, info.Fed, jb.ins.T())
				return
			}

			// Bit-identical to the fault-free serial reference.
			want := serialAdvisories(t, jb.spec, jb.ins)
			gotN := len(got)
			// The close tail flushes after injection is disarmed (below);
			// compare the streamed prefix now and stash the rest.
			if gotN > len(want) {
				errs <- fmt.Errorf("%s: decided %d slots, serial reference decided %d", jb.id, gotN, len(want))
				return
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					errs <- fmt.Errorf("%s: advisory %d diverged under faults:\nchaos:  %+v\nserial: %+v", jb.id, i+1, got[i], want[i])
					return
				}
			}
			tails.Lock()
			tails.m[jb.id] = tailCheck{got: gotN, want: want}
			tails.Unlock()
		}(jb)
	}
	wg.Wait()
	done.Store(true)
	chaosWg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// The injection must actually have fired, or this test proves nothing.
	st := fs.Stats()
	if st.SaveErrs == 0 || st.LoadErrs == 0 {
		t.Fatalf("fault injection never fired: %+v", st)
	}
	met := m.Metrics()
	if met.StoreRetries == 0 {
		t.Errorf("no store retries recorded under %d injected save failures", st.SaveErrs)
	}
	if met.SessionsResumed == 0 {
		t.Error("no session ever resumed — evictions never survived the faults")
	}

	// Heal the store and close every session: the semi-online tails must
	// match the serial reference too, completing the bit-identical claim.
	fs.Disarm()
	tails.Lock()
	defer tails.Unlock()
	for id, tc := range tails.m {
		// The janitor may have evicted the session after its last push;
		// deleting a snapshot discards the semi-online tail by design, so
		// resume it first (Info acquires) — the janitor is stopped, so it
		// stays live through the delete.
		if _, err := m.Info(id); err != nil {
			t.Errorf("%s: info after disarm: %v", id, err)
			continue
		}
		closed, err := m.Delete(id)
		if err != nil {
			t.Errorf("%s: delete after disarm: %v", id, err)
			continue
		}
		full := append([]stream.Advisory{}, tc.want[:tc.got]...)
		full = append(full, closed.Advisories...)
		if len(full) != len(tc.want) {
			t.Errorf("%s: %d advisories with tail, serial reference has %d", id, len(full), len(tc.want))
			continue
		}
		for i := tc.got; i < len(full); i++ {
			if !reflect.DeepEqual(full[i], tc.want[i]) {
				t.Errorf("%s: tail advisory %d diverged:\nchaos:  %+v\nserial: %+v", id, i+1, full[i], tc.want[i])
				break
			}
		}
	}
}

// A FaultStore's decisions are a pure function of (seed, op, id,
// ordinal): two stores with the same seed fail the same calls in the
// same order, regardless of what happened in between.
func TestFaultStoreDeterminism(t *testing.T) {
	run := func() []bool {
		fs := NewFaultStore(NewMemStore(), FaultConfig{Seed: 99, SaveErrRate: 0.5, LoadErrRate: 0.5})
		var outcomes []bool
		for i := 0; i < 20; i++ {
			id := fmt.Sprintf("s%d", i%3)
			err := fs.Save(&Snapshot{ID: id, Fleet: quickstartFleet()})
			outcomes = append(outcomes, err == nil)
			_, _, lerr := fs.Load(id)
			outcomes = append(outcomes, lerr == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different outcomes:\n%v\n%v", a, b)
	}
	allSame := true
	for _, ok := range a {
		if !ok {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("injection at 50% never fired in 40 ops")
	}
}

// scriptStore fails the first failN saves, then behaves; it records
// every call so tests can assert the retry cadence.
type scriptStore struct {
	*MemStore
	saves atomic.Int64
	failN int64
}

func (s *scriptStore) Save(snap *Snapshot) error {
	if s.saves.Add(1) <= s.failN {
		return errors.New("scripted save failure")
	}
	return s.MemStore.Save(snap)
}

// An eviction whose save fails transiently retries with the configured
// backoff and succeeds; the retries land in the metrics and the
// session is resumable afterwards.
func TestEvictRetriesThenSucceeds(t *testing.T) {
	st := &scriptStore{MemStore: NewMemStore(), failN: 2}
	m := NewManager(Options{Store: st, StoreRetries: 3, StoreBackoff: time.Millisecond, StoreBackoffCap: 4 * time.Millisecond})
	var slept []time.Duration
	m.sleepFn = func(d time.Duration) { slept = append(slept, d) }

	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "retry-me", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "retry-me", trace, 0, 5)
	if err := m.Evict("retry-me"); err != nil {
		t.Fatalf("evict should have succeeded on the third save: %v", err)
	}
	if want := []time.Duration{time.Millisecond, 2 * time.Millisecond}; !reflect.DeepEqual(slept, want) {
		t.Fatalf("backoff sequence %v, want %v", slept, want)
	}
	if met := m.Metrics(); met.StoreRetries != 2 || met.SessionsEvicted != 1 {
		t.Fatalf("metrics after retried evict: %+v", met)
	}
	// The session resumes transparently and continues.
	pushAll(t, m, "retry-me", trace, 5, 8)
	info, err := m.Info("retry-me")
	if err != nil || info.Fed != 8 {
		t.Fatalf("after resume: info %+v err %v", info, err)
	}
}

// An eviction whose saves all fail gives up with ErrStore — and the
// session stays live with nothing lost, shadowing whatever garbage the
// failed (possibly torn) writes left in the store.
func TestEvictFailedSaveKeepsSessionLive(t *testing.T) {
	st := &scriptStore{MemStore: NewMemStore(), failN: 1 << 30}
	m := NewManager(Options{Store: st, StoreRetries: 2, StoreBackoff: time.Microsecond})

	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "sticky", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "sticky", trace, 0, 6)
	if err := m.Evict("sticky"); !errors.Is(err, ErrStore) {
		t.Fatalf("evict with a dead store: err %v, want ErrStore", err)
	}
	met := m.Metrics()
	if met.SessionsEvicted != 0 || met.LiveSessions != 1 || met.StoreRetries != 2 {
		t.Fatalf("metrics after failed evict: %+v", met)
	}
	// Still live, still correct, still pushable — no resume involved.
	pushAll(t, m, "sticky", trace, 6, 10)
	info, err := m.Info("sticky")
	if err != nil || info.Fed != 10 {
		t.Fatalf("after failed evict: info %+v err %v", info, err)
	}
	if st.saves.Load() != 3 {
		t.Fatalf("store saw %d saves, want 3 (1 + 2 retries)", st.saves.Load())
	}
}

// A torn write (Save fails after persisting a truncated snapshot) must
// never surface: the live session shadows the store, and the next
// successful save overwrites the damage before anything can load it.
func TestTornWriteNeverServed(t *testing.T) {
	inner := NewMemStore()
	fs := NewFaultStore(inner, FaultConfig{Seed: 1, SaveErrRate: 1, TornWriteRate: 1})
	m := NewManager(Options{Store: fs, StoreRetries: -1})

	trace := quickstartTrace(t)
	if _, err := m.Open(OpenRequest{ID: "torn", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "torn", trace, 0, 8)
	if err := m.Evict("torn"); !errors.Is(err, ErrStore) {
		t.Fatalf("evict: err %v, want ErrStore", err)
	}
	if st := fs.Stats(); st.TornSaves != 1 {
		t.Fatalf("stats %+v, want exactly one torn save", st)
	}
	// The store now holds a half-length checkpoint; the live session must
	// shadow it entirely.
	if snap, ok, _ := inner.Load("torn"); !ok || len(snap.Checkpoint.Slots) != 4 {
		t.Fatalf("expected a torn 4-slot snapshot in the store, got ok=%v snap=%+v", ok, snap)
	}
	info, err := m.Info("torn")
	if err != nil || info.Fed != 8 {
		t.Fatalf("live session after torn write: info %+v err %v", info, err)
	}
	// Heal the store; the next eviction overwrites the torn snapshot and
	// a resume replays the full eight slots.
	fs.Disarm()
	if err := m.Evict("torn"); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "torn", trace, 8, 9)
	info, err = m.Info("torn")
	if err != nil || info.Fed != 9 {
		t.Fatalf("after heal+resume: info %+v err %v", info, err)
	}
}
