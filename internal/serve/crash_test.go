package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/wal"
)

// crashJob is one algorithm × scenario pair of the crash suite.
type crashJob struct {
	id   string
	sc   string
	spec engine.AlgSpec
	ins  *model.Instance
}

// crashJobs enumerates every streamable algorithm on the two stock
// scenarios the chaos suite uses.
func crashJobs(t *testing.T, seed int64) []crashJob {
	t.Helper()
	var jobs []crashJob
	for _, name := range []string{"quickstart", "onoff"} {
		sc, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		ins := sc.Instance(seed)
		for _, spec := range engine.Algorithms() {
			if !spec.Streamable() {
				continue
			}
			if spec.Skip != nil && spec.Skip(ins) != "" {
				continue
			}
			jobs = append(jobs, crashJob{
				id: fmt.Sprintf("crash-%s-%s", name, spec.Key),
				sc: name, spec: spec, ins: ins,
			})
		}
	}
	return jobs
}

// feedSlots drives slots [from, to] (1-based, inclusive) through a mix
// of single pushes and 3-slot batches, checkpointing once after slot
// ckpt (0 = never), and returns the advisories decided along the way.
func feedSlots(t *testing.T, m *Manager, jb crashJob, from, to, ckpt int) []stream.Advisory {
	t.Helper()
	req := func(ts int) PushRequest {
		r := PushRequest{Lambda: jb.ins.Lambda[ts-1]}
		if jb.ins.Counts != nil {
			r.Counts = jb.ins.Counts[ts-1]
		}
		return r
	}
	var out []stream.Advisory
	checkpointed := ckpt <= 0
	for ts := from; ts <= to; {
		if (ts-from)%5 == 3 && ts+2 <= to {
			results, err := m.PushBatch(jb.id, []PushRequest{req(ts), req(ts + 1), req(ts + 2)})
			if err != nil {
				t.Fatalf("%s: batch at %d: %v", jb.id, ts, err)
			}
			for i := range results {
				if results[i].Decided {
					out = append(out, *results[i].Advisory)
				}
			}
			ts += 3
		} else {
			res, err := m.Push(jb.id, req(ts))
			if err != nil {
				t.Fatalf("%s: slot %d: %v", jb.id, ts, err)
			}
			if res.Decided {
				out = append(out, *res.Advisory)
			}
			ts++
		}
		if !checkpointed && ts > ckpt {
			if _, err := m.Checkpoint(jb.id); err != nil {
				t.Fatalf("%s: checkpoint after %d: %v", jb.id, ts-1, err)
			}
			checkpointed = true
		}
	}
	return out
}

// The crash acceptance test: every streamable algorithm × two stock
// scenarios, each under two crash shapes. "midstream" feeds two thirds
// of the trace (singles and batches, one compacting checkpoint), then
// hard-stops the manager — no Close, no drain, the WAL and the snapshot
// dir are all that survive. "midbatch-torn" additionally forges the
// crash landing inside a batch: two more slots appended to the log
// whose push never returned, the second torn by the crash. A fresh
// manager recovers, and the continuation — advisories, the semi-online
// close tail, the fed count — must be bit-identical to an uninterrupted
// serial feed.
func TestCrashDifferential(t *testing.T) {
	jobs := crashJobs(t, 7)
	if len(jobs) < 8 {
		t.Fatalf("only %d crash jobs; want >= 8", len(jobs))
	}
	for i, jb := range jobs {
		// Split the sync policies across the matrix: both must recover
		// identically here (the process hard-stops but the page cache
		// survives; only power loss distinguishes them).
		sync := wal.SyncAlways
		if i%2 == 1 {
			sync = wal.SyncNever
		}
		t.Run(jb.id+"/"+sync.String(), func(t *testing.T) {
			t.Run("midstream", func(t *testing.T) { runCrash(t, jb, sync, false) })
			t.Run("midbatch-torn", func(t *testing.T) { runCrash(t, jb, sync, true) })
		})
	}
}

func runCrash(t *testing.T, jb crashJob, sync wal.SyncPolicy, tornBatch bool) {
	want := serialAdvisories(t, jb.spec, jb.ins)
	total := jb.ins.T()
	cut := total * 2 / 3
	if cut < 4 || cut+2 >= total {
		t.Fatalf("trace too short for a crash cut: T=%d", total)
	}

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	store1, err := NewDirStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Options{Store: store1, WALDir: walDir, WALSync: sync})
	if _, err := m1.Open(OpenRequest{ID: jb.id, Alg: jb.spec.Key, Fleet: FleetJSON{Scenario: jb.sc, Seed: 7}}); err != nil {
		t.Fatal(err)
	}
	pre := feedSlots(t, m1, jb, 1, cut, cut/2)
	if len(pre) > len(want) || !reflect.DeepEqual(pre, want[:len(pre)]) {
		t.Fatalf("pre-crash advisories diverged from serial (%d decided)", len(pre))
	}
	// Hard stop: m1 is abandoned — no Close, no drain, no final save.

	wantFed := cut
	if tornBatch {
		walPath := filepath.Join(walDir, jb.id+".wal")
		hdr, _, _, err := wal.Read(walPath)
		if err != nil || hdr == nil {
			t.Fatalf("reading WAL for torn-batch forge: hdr=%v err=%v", hdr, err)
		}
		l, _, err := wal.Open(walPath, hdr, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for _, ts := range []int{cut + 1, cut + 2} {
			rec := wal.Record{T: ts, Lambda: jb.ins.Lambda[ts-1]}
			if jb.ins.Counts != nil {
				rec.Counts = jb.ins.Counts[ts-1]
			}
			if _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		wantFed = cut + 1 // slot cut+2's record is torn away
	}

	store2, err := NewDirStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Options{Store: store2, WALDir: walDir, WALSync: sync})
	defer m2.Close()
	rep, err := m2.RecoverWAL()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 || len(rep.Failed) != 0 || rep.Corrupt != 0 {
		t.Fatalf("recovery report %+v, want exactly one clean session", rep)
	}
	if tornBatch && rep.TornTails != 1 {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	info, err := m2.Info(jb.id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fed != wantFed {
		t.Fatalf("recovered fed=%d, want %d", info.Fed, wantFed)
	}
	if got := m2.Metrics().WALRecoveredSessions; got != 1 {
		t.Fatalf("wal_recovered_sessions = %d, want 1", got)
	}

	post := feedSlots(t, m2, jb, info.Fed+1, total, 0)
	res, err := m2.Delete(jb.id)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([]stream.Advisory{}, post...), res.Advisories...)
	wantPost := want[info.Decided:]
	if !reflect.DeepEqual(full, wantPost) {
		t.Fatalf("post-crash stream diverged: %d advisories vs serial %d (from decided=%d)",
			len(full), len(wantPost), info.Decided)
	}
}

// Honest injected WAL faults — short writes and fsync failures — must
// fail the push with nothing fed (rollback) and nothing lost: retries
// land the slot, the stream stays bit-identical, and after a hard stop
// every acknowledged slot is still there (sync=always, honest disk).
func TestWALFaultInjectionNoAckedLoss(t *testing.T) {
	jobs := crashJobs(t, 7)
	jb := jobs[0]
	want := serialAdvisories(t, jb.spec, jb.ins)

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	store, err := NewDirStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	fs := wal.NewFaultFS(wal.FaultConfig{Seed: 11, ShortWriteRate: 0.15, SyncErrRate: 0.15})
	m1 := NewManager(Options{Store: store, WALDir: walDir, WALSync: wal.SyncAlways, WALOpenFile: fs.Open})
	if _, err := m1.Open(OpenRequest{ID: jb.id, Alg: jb.spec.Key, Fleet: FleetJSON{Scenario: jb.sc, Seed: 7}}); err != nil {
		t.Fatal(err)
	}

	var got []stream.Advisory
	retries := 0
	for ts := 1; ts <= jb.ins.T(); ts++ {
		req := PushRequest{Lambda: jb.ins.Lambda[ts-1]}
		if jb.ins.Counts != nil {
			req.Counts = jb.ins.Counts[ts-1]
		}
		var res PushResult
		for attempt := 0; ; attempt++ {
			var perr error
			if res, perr = m1.Push(jb.id, req); perr == nil {
				break
			}
			if !errors.Is(perr, ErrStore) || attempt > 50 {
				t.Fatalf("slot %d: %v", ts, perr)
			}
			retries++
		}
		if res.Decided {
			got = append(got, *res.Advisory)
		}
	}
	st := fs.Stats()
	if st.ShortWrites == 0 || st.SyncErrs == 0 || retries == 0 {
		t.Fatalf("fault injection never fired: %+v, %d retries", st, retries)
	}
	if len(got) > len(want) || !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatalf("advisories diverged under WAL faults (%d decided)", len(got))
	}
	// Hard stop, recover on a healthy disk: the log must carry every
	// acknowledged slot — honest failures rolled back before the ack.
	m2 := NewManager(Options{Store: store, WALDir: walDir})
	defer m2.Close()
	rep, err := m2.RecoverWAL()
	if err != nil || rep.Sessions != 1 {
		t.Fatalf("recovery: %+v, %v", rep, err)
	}
	info, err := m2.Info(jb.id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fed != jb.ins.T() {
		t.Fatalf("recovered fed=%d, want %d — acked slots lost under honest faults", info.Fed, jb.ins.T())
	}
	res, err := m2.Delete(jb.id)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([]stream.Advisory{}, got...), res.Advisories...)
	if !reflect.DeepEqual(full, want) {
		t.Fatalf("stream + close tail diverged after recovery")
	}
}

// Torn WAL writes — the disk acking bytes it never persisted — may lose
// the lied-about suffix, but never consistency: recovery lands on a
// whole-record prefix of what was acknowledged, and the continuation
// from there is bit-identical to serial.
func TestWALTornWriteConsistentPrefix(t *testing.T) {
	jobs := crashJobs(t, 7)
	jb := jobs[1%len(jobs)]
	want := serialAdvisories(t, jb.spec, jb.ins)

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	store, err := NewDirStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	fs := wal.NewFaultFS(wal.FaultConfig{Seed: 23, TornWriteRate: 0.2})
	m1 := NewManager(Options{Store: store, WALDir: walDir, WALSync: wal.SyncAlways, WALOpenFile: fs.Open})
	if _, err := m1.Open(OpenRequest{ID: jb.id, Alg: jb.spec.Key, Fleet: FleetJSON{Scenario: jb.sc, Seed: 7}}); err != nil {
		t.Fatal(err)
	}
	for ts := 1; ts <= jb.ins.T(); ts++ {
		req := PushRequest{Lambda: jb.ins.Lambda[ts-1]}
		if jb.ins.Counts != nil {
			req.Counts = jb.ins.Counts[ts-1]
		}
		if _, err := m1.Push(jb.id, req); err != nil {
			t.Fatalf("slot %d: %v", ts, err)
		}
	}
	if st := fs.Stats(); st.TornWrites == 0 {
		t.Fatalf("torn-write injection never fired: %+v", st)
	}
	// Hard stop; recover on a healthy disk.
	m2 := NewManager(Options{Store: store, WALDir: walDir})
	defer m2.Close()
	rep, err := m2.RecoverWAL()
	if err != nil || rep.Sessions != 1 {
		t.Fatalf("recovery: %+v, %v", rep, err)
	}
	info, err := m2.Info(jb.id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fed < 1 || info.Fed > jb.ins.T() {
		t.Fatalf("recovered fed=%d outside [1, %d]", info.Fed, jb.ins.T())
	}
	if info.Fed == jb.ins.T() {
		t.Fatalf("no slots lost to %d torn writes — injection proves nothing", fs.Stats().TornWrites)
	}
	post := feedSlots(t, m2, jb, info.Fed+1, jb.ins.T(), 0)
	res, err := m2.Delete(jb.id)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([]stream.Advisory{}, post...), res.Advisories...)
	if !reflect.DeepEqual(full, want[info.Decided:]) {
		t.Fatalf("continuation after torn-write recovery diverged (fed=%d decided=%d)", info.Fed, info.Decided)
	}
}

// A quarantined snapshot leaves the WAL delta starting past slot 1:
// replay onto the fresh session gaps. Recovery must quarantine the log —
// the only remaining record of the session's slots — rather than save a
// near-empty snapshot under the id and delete it.
func TestRecoverReplayGapQuarantinesWAL(t *testing.T) {
	jb := crashJobs(t, 7)[0]

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(dir, "snaps")
	store1, err := NewDirStore(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Options{Store: store1, WALDir: walDir, WALSync: wal.SyncNever})
	if _, err := m1.Open(OpenRequest{ID: jb.id, Alg: jb.spec.Key, Fleet: FleetJSON{Scenario: jb.sc, Seed: 7}}); err != nil {
		t.Fatal(err)
	}
	// Checkpoint after slot 3 compacts the log, so the surviving delta
	// starts at slot 4 — replayable only on top of the snapshot.
	feedSlots(t, m1, jb, 1, 6, 3)
	// Hard stop; the snapshot rots on disk.
	snapPath := filepath.Join(snapDir, jb.id+".json")
	if err := os.WriteFile(snapPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDirStore(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Options{Store: store2, WALDir: walDir, WALSync: wal.SyncNever})
	defer m2.Close()
	rep, err := m2.RecoverWAL()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 0 || rep.Corrupt != 1 || len(rep.Failed) != 0 {
		t.Fatalf("recovery report %+v, want the gapped log quarantined and no session rebuilt", rep)
	}
	walPath := filepath.Join(walDir, jb.id+".wal")
	if _, err := os.Stat(walPath + ".corrupt"); err != nil {
		t.Fatalf("gapped WAL not quarantined: %v", err)
	}
	if _, err := os.Stat(walPath); !os.IsNotExist(err) {
		t.Fatalf("original WAL still present: %v", err)
	}
	// The id must read as unknown, not as a silently empty session.
	if _, err := m2.Info(jb.id); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Info after gap recovery = %v, want ErrUnknownSession", err)
	}
}

// SyncWALs flushes the dirty tail of idle interval-policy logs: the
// bounded-loss promise must not depend on a steady append stream.
func TestSyncWALsFlushesIdleIntervalLog(t *testing.T) {
	jb := crashJobs(t, 7)[0]
	walDir := t.TempDir()
	m := NewManager(Options{WALDir: walDir, WALSync: wal.SyncInterval, WALSyncInterval: time.Hour})
	defer m.Close()
	if _, err := m.Open(OpenRequest{ID: jb.id, Alg: jb.spec.Key, Fleet: FleetJSON{Scenario: jb.sc, Seed: 7}}); err != nil {
		t.Fatal(err)
	}
	feedSlots(t, m, jb, 1, 2, 0)
	if got := m.Metrics().WALFsyncs; got != 0 {
		t.Fatalf("appends under a 1h interval fsynced %d times", got)
	}
	n, err := m.SyncWALs()
	if err != nil || n != 1 {
		t.Fatalf("SyncWALs = (%d, %v), want one dirty log flushed", n, err)
	}
	if got := m.Metrics().WALFsyncs; got != 1 {
		t.Fatalf("wal_fsyncs = %d after the sweep, want 1", got)
	}
	// Nothing dirty left: the sweep is idempotent between pushes.
	if n, err := m.SyncWALs(); err != nil || n != 0 {
		t.Fatalf("second SyncWALs = (%d, %v), want a no-op", n, err)
	}
}
