package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stream"
)

// httpClient drives the serve API in tests, failing the owning test on
// transport errors and decoding every response strictly.
type httpClient struct {
	t    *testing.T
	base string
}

func (c *httpClient) do(method, path string, body, into any) (int, string) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode < 300 && into != nil {
		if err := json.Unmarshal(data, into); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode, string(data)
}

// mustDo is do with a required status.
func (c *httpClient) mustDo(method, path string, body, into any, want int) {
	c.t.Helper()
	if got, raw := c.do(method, path, body, into); got != want {
		c.t.Fatalf("%s %s: HTTP %d (want %d): %s", method, path, got, want, raw)
	}
}

// serialAdvisories is the reference: the full trace through one in-process
// stream session, exactly as the pre-serve CLI would run it.
func serialAdvisories(t *testing.T, spec engine.AlgSpec, ins *model.Instance) []stream.Advisory {
	t.Helper()
	sess, err := engine.OpenSession(spec.Key, ins.Types, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out []stream.Advisory
	for ts := 1; ts <= ins.T(); ts++ {
		in := model.SlotInput{Lambda: ins.Lambda[ts-1]}
		if ins.Counts != nil {
			in.Counts = ins.Counts[ts-1]
		}
		advs, err := sess.Feed(in)
		if err != nil {
			t.Fatalf("serial slot %d: %v", ts, err)
		}
		out = append(out, advs...)
	}
	tail, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, tail...)
}

// forEachCodec runs a subtest under both wire codecs: the default
// zero-reflection internal/wire path and the encoding/json reference
// (Options.ReflectCodec). Any behavioural difference between the two is
// a codec bug by definition.
func forEachCodec(t *testing.T, run func(t *testing.T, reflectCodec bool)) {
	t.Run("codec=wire", func(t *testing.T) { run(t, false) })
	t.Run("codec=reflect", func(t *testing.T) { run(t, true) })
}

// The tentpole's acceptance test: for every registered streamable
// algorithm on three stock scenarios, the full trace driven through the
// HTTP API — interleaved across all sessions at once — produces
// advisories bit-identical to a serial stream.Session.Feed, including
// across a mid-trace checkpoint→evict→transparent-resume cycle. It runs
// under both codecs (PR 7): the hand-rolled wire path and the
// encoding/json reference must be indistinguishable end to end.
func TestHTTPDifferentialAllAlgorithms(t *testing.T) {
	forEachCodec(t, testHTTPDifferentialAllAlgorithms)
}

func testHTTPDifferentialAllAlgorithms(t *testing.T, reflectCodec bool) {
	const seed = 7
	scenarios := []string{"quickstart", "onoff", "heterogeneous"}

	type job struct {
		id   string
		spec engine.AlgSpec
		ins  *model.Instance
		sc   string
	}
	var jobs []job
	for _, name := range scenarios {
		sc, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		ins := sc.Instance(seed)
		for _, spec := range engine.Algorithms() {
			if !spec.Streamable() {
				continue
			}
			if spec.Skip != nil && spec.Skip(ins) != "" {
				continue
			}
			jobs = append(jobs, job{
				id:   fmt.Sprintf("%s-%s", name, spec.Key),
				spec: spec, ins: ins, sc: name,
			})
		}
	}
	if len(jobs) < 8 {
		t.Fatalf("only %d applicable algorithm x scenario sessions; want >= 8 for the concurrency requirement", len(jobs))
	}

	m := NewManager(Options{MaxSessions: len(jobs) + 1, ReflectCodec: reflectCodec})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, jb := range jobs {
		wg.Add(1)
		go func(jb job) {
			defer wg.Done()
			if err := runDifferentialJob(t, m, srv.URL, jb.id, jb.sc, seed, jb.spec, jb.ins); err != nil {
				errs <- fmt.Errorf("%s: %w", jb.id, err)
			}
		}(jb)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	met := m.Metrics()
	if met.SessionsEvicted != uint64(len(jobs)) || met.SessionsResumed != uint64(len(jobs)) {
		t.Errorf("metrics: evicted %d resumed %d, want %d each (one mid-trace cycle per session)",
			met.SessionsEvicted, met.SessionsResumed, len(jobs))
	}
	if met.SessionsOpened != uint64(len(jobs)) || met.SessionsDeleted != uint64(len(jobs)) {
		t.Errorf("metrics: opened %d deleted %d, want %d each", met.SessionsOpened, met.SessionsDeleted, len(jobs))
	}
}

// runDifferentialJob drives one session's full trace over HTTP (with the
// mid-trace evict cycle) and compares against the serial reference.
// Failures are returned, not t.Fatal'd: it runs off the test goroutine.
func runDifferentialJob(t *testing.T, m *Manager, baseURL, id, scenario string, seed int64, spec engine.AlgSpec, ins *model.Instance) error {
	want := serialAdvisories(t, spec, ins)
	cl := &httpClient{t: t, base: baseURL}

	var info SessionInfo
	cl.mustDo("POST", "/v1/sessions", OpenRequest{
		ID: id, Alg: spec.Key, Fleet: FleetJSON{Scenario: scenario, Seed: seed},
	}, &info, http.StatusCreated)
	if info.ID != id || info.Alg != spec.Key {
		return fmt.Errorf("open returned %+v", info)
	}

	var got []stream.Advisory
	half := ins.T() / 2
	for ts := 1; ts <= ins.T(); ts++ {
		req := PushRequest{Lambda: ins.Lambda[ts-1]}
		if ins.Counts != nil {
			req.Counts = ins.Counts[ts-1]
		}
		var res PushResult
		cl.mustDo("POST", "/v1/sessions/"+id+"/push", req, &res, http.StatusOK)
		if res.Decided {
			got = append(got, *res.Advisory)
		}

		if ts == half {
			// Mid-trace lifecycle: persist a snapshot, shed the live
			// session, and let the next push resume it transparently.
			var snap Snapshot
			cl.mustDo("POST", "/v1/sessions/"+id+"/checkpoint", nil, &snap, http.StatusOK)
			if len(snap.Checkpoint.Slots) != ts {
				return fmt.Errorf("checkpoint at slot %d holds %d slots", ts, len(snap.Checkpoint.Slots))
			}
			if err := m.Evict(id); err != nil {
				return fmt.Errorf("evict: %v", err)
			}
		}
	}

	var closed CloseResult
	cl.mustDo("DELETE", "/v1/sessions/"+id, nil, &closed, http.StatusOK)
	got = append(got, closed.Advisories...)

	if len(got) != len(want) {
		return fmt.Errorf("decided %d slots, serial reference decided %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Errorf("slot %d advisory diverged:\n http: %+v\nserial: %+v", i+1, got[i], want[i])
		}
	}
	if closed.Info.CumCost != want[len(want)-1].CumCost {
		return fmt.Errorf("close cum cost %v != serial %v", closed.Info.CumCost, want[len(want)-1].CumCost)
	}
	// The deleted id must be gone for good.
	if status, _ := cl.do("GET", "/v1/sessions/"+id, nil, nil); status != http.StatusNotFound {
		return fmt.Errorf("deleted session still answers with HTTP %d", status)
	}
	return nil
}

// Time-varying fleet sizes flow through the HTTP push path: the
// maintenance scenario's per-slot counts produce the same advisories as
// the serial session, including across the mid-trace evict cycle.
func TestHTTPDifferentialTimeVaryingCounts(t *testing.T) {
	forEachCodec(t, testHTTPDifferentialTimeVaryingCounts)
}

func testHTTPDifferentialTimeVaryingCounts(t *testing.T, reflectCodec bool) {
	m := NewManager(Options{ReflectCodec: reflectCodec})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	sc, _ := engine.Lookup("maintenance")
	ins := sc.Instance(1)
	spec, ok := engine.LookupAlgorithm("alg-b")
	if !ok {
		t.Fatal("alg-b not registered")
	}
	if err := runDifferentialJob(t, m, srv.URL, "maintenance-counts", "maintenance", 1, spec, ins); err != nil {
		t.Fatal(err)
	}
}
