package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FaultStore wraps a SnapshotStore with deterministic, seeded fault
// injection: per-operation error rates, injected latency, and torn
// writes (a Save that fails *after* persisting a corrupted snapshot —
// the crash-mid-write case an atomic-rename store is supposed to make
// impossible, injected here on purpose so the manager's shadowing and
// retry logic is proven against it). The chaos suite
// (chaos_test.go) drives the manager through one and requires served
// advisories to stay bit-identical to a fault-free serial feed.
//
// Determinism: every decision is a pure function of (seed, op, id,
// per-(op,id) call ordinal), so a session's k-th Save sees the same
// fate on every run regardless of goroutine interleaving — the chaos
// tests replay identically under -race and -count=N.
type FaultStore struct {
	inner SnapshotStore
	cfg   FaultConfig

	mu    sync.Mutex
	calls map[string]uint64 // op+id -> calls so far

	saveErrs  atomic.Uint64
	loadErrs  atomic.Uint64
	tornSaves atomic.Uint64
	ops       atomic.Uint64
}

// FaultConfig tunes a FaultStore. Rates are probabilities in [0, 1].
type FaultConfig struct {
	Seed int64
	// SaveErrRate / LoadErrRate / DeleteErrRate fail the operation with
	// an injected error.
	SaveErrRate   float64
	LoadErrRate   float64
	DeleteErrRate float64
	// TornWriteRate is the fraction of *failed* saves that additionally
	// persist a corrupted snapshot (checkpoint truncated to half its
	// slots) before reporting the error.
	TornWriteRate float64
	// MaxLatency sleeps a deterministic per-call duration in
	// [0, MaxLatency) before every operation; 0 disables.
	MaxLatency time.Duration

	// Sleep replaces time.Sleep for latency injection (test hook; nil
	// means time.Sleep).
	Sleep func(time.Duration)
}

// FaultStats is a FaultStore's injection tally.
type FaultStats struct {
	Ops       uint64 // total operations seen
	SaveErrs  uint64 // saves failed by injection
	LoadErrs  uint64 // loads failed by injection
	TornSaves uint64 // failed saves that left a torn snapshot behind
}

// NewFaultStore wraps inner with the given fault profile.
func NewFaultStore(inner SnapshotStore, cfg FaultConfig) *FaultStore {
	return &FaultStore{inner: inner, cfg: cfg, calls: map[string]uint64{}}
}

// Stats snapshots the injection counters.
func (s *FaultStore) Stats() FaultStats {
	return FaultStats{
		Ops:       s.ops.Load(),
		SaveErrs:  s.saveErrs.Load(),
		LoadErrs:  s.loadErrs.Load(),
		TornSaves: s.tornSaves.Load(),
	}
}

// Disarm switches all injection off (rates and latency to zero) —
// chaos tests use it to prove a degraded store heals without losing
// sessions.
func (s *FaultStore) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.SaveErrRate, s.cfg.LoadErrRate, s.cfg.DeleteErrRate = 0, 0, 0
	s.cfg.TornWriteRate, s.cfg.MaxLatency = 0, 0
}

// roll draws the deterministic uniform values for this (op, id) call:
// u decides the error, v the torn write, and the latency is derived
// from a third draw.
func (s *FaultStore) roll(op, id string) (u, v float64, latency time.Duration) {
	s.mu.Lock()
	key := op + "\x00" + id
	n := s.calls[key]
	s.calls[key] = n + 1
	cfg := s.cfg
	s.mu.Unlock()
	s.ops.Add(1)

	h := splitmix(uint64(cfg.Seed) ^ fnv64(key) ^ (n * 0x9e3779b97f4a7c15))
	u = float64(h>>11) / (1 << 53)
	h = splitmix(h)
	v = float64(h>>11) / (1 << 53)
	if cfg.MaxLatency > 0 {
		h = splitmix(h)
		latency = time.Duration(float64(h>>11) / (1 << 53) * float64(cfg.MaxLatency))
	}
	return u, v, latency
}

func (s *FaultStore) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.cfg.Sleep != nil {
		s.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Save implements SnapshotStore with injected latency, errors and torn
// writes.
func (s *FaultStore) Save(snap *Snapshot) error {
	u, v, lat := s.roll("save", snap.ID)
	s.sleep(lat)
	s.mu.Lock()
	saveRate, tornRate := s.cfg.SaveErrRate, s.cfg.TornWriteRate
	s.mu.Unlock()
	if u < saveRate {
		s.saveErrs.Add(1)
		if v < tornRate {
			s.tornSaves.Add(1)
			// A torn write: persist a corrupted snapshot, then fail.
			// The truncation must not alias the caller's checkpoint.
			torn := *snap
			if snap.Checkpoint != nil {
				cp := *snap.Checkpoint
				cp.Slots = cp.Slots[:len(cp.Slots)/2]
				torn.Checkpoint = &cp
			}
			_ = s.inner.Save(&torn)
		}
		return fmt.Errorf("faultstore: injected save failure for %q", snap.ID)
	}
	return s.inner.Save(snap)
}

// Load implements SnapshotStore with injected latency and errors.
func (s *FaultStore) Load(id string) (*Snapshot, bool, error) {
	u, _, lat := s.roll("load", id)
	s.sleep(lat)
	s.mu.Lock()
	loadRate := s.cfg.LoadErrRate
	s.mu.Unlock()
	if u < loadRate {
		s.loadErrs.Add(1)
		return nil, false, fmt.Errorf("faultstore: injected load failure for %q", id)
	}
	return s.inner.Load(id)
}

// Delete implements SnapshotStore with injected latency and errors.
func (s *FaultStore) Delete(id string) error {
	u, _, lat := s.roll("delete", id)
	s.sleep(lat)
	s.mu.Lock()
	delRate := s.cfg.DeleteErrRate
	s.mu.Unlock()
	if u < delRate {
		return fmt.Errorf("faultstore: injected delete failure for %q", id)
	}
	return s.inner.Delete(id)
}

// fnv64 is FNV-1a over s (the same mix the registry sharding uses).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix advances a splitmix64 state: a cheap, well-mixed hash step
// for deriving independent uniforms from one seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
