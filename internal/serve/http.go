package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

// The HTTP JSON API over a Manager:
//
//	POST   /v1/sessions                 open (or resume from a client checkpoint)
//	GET    /v1/sessions                 list live sessions
//	GET    /v1/sessions/{id}            session state
//	POST   /v1/sessions/{id}/push       feed one slot — or a JSON array of slots
//	POST   /v1/sessions/{id}/checkpoint persist + return the session snapshot
//	DELETE /v1/sessions/{id}            close the session (flushes semi-online tails)
//	GET    /v1/algs                     the algorithm registry
//	GET    /v1/healthz                  liveness + aggregate counters
//
// Every response is JSON; errors are {"error": "..."} with a status from
// httpStatus. Request bodies are decoded strictly (unknown fields are
// errors), so client typos fail loudly with 400 instead of serving with
// defaults. The push endpoint's response shape mirrors the request: a
// single slot object answers with a single result object, a slot array
// with a result array (one entry per fed slot, in order). A mid-batch
// per-slot error keeps the error status but carries the committed
// slots' results in the body ({"error": ..., "results": [...]}) —
// batch semantics are exactly those of pushing one at a time, where
// each committed slot's advisory was delivered before the error.
//
// Request body buffers and response encoders are pooled (sync.Pool),
// and the hot path — push in both forms, session info, healthz — runs
// on the zero-reflection internal/wire codec: the request is scanned in
// place and the response is appended into a pooled byte slice, with no
// encoding/json anywhere on a well-formed request. Malformed input
// falls back to the strict reflection decoder so clients see
// encoding/json's exact error prose; Options.ReflectCodec routes the
// whole hot path back through encoding/json (the two are byte-for-byte
// interchangeable — see internal/wire's package doc). Push bodies are
// bounded by maxPushBody and answer 413 beyond it.

// maxPushBody bounds a push request body. The largest legitimate bodies
// are batch pushes — a full 768-slot trace with per-slot counts is
// still under 64 KiB — so 1 MiB is far past any real request while
// keeping hostile bodies from ballooning the pooled buffers (putBody
// drops oversized ones rather than pinning them).
const maxPushBody = 1 << 20

// NewHandler wires a Manager into an http.Handler.
func NewHandler(m *Manager) http.Handler {
	reflectCodec := m.opts.ReflectCodec
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req OpenRequest
		if !decodeBody(w, r, &req) {
			return
		}
		info, err := m.Open(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Sessions []SessionInfo `json:"sessions"`
		}{m.Sessions()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := m.Info(r.PathValue("id"))
		if err != nil {
			writePushError(w, err, reflectCodec)
			return
		}
		if reflectCodec {
			writeJSON(w, http.StatusOK, info)
			return
		}
		bp := wireBuf()
		b, werr := appendSessionInfo(*bp, &info)
		*bp = b
		writeWire(w, http.StatusOK, bp, werr)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/push", func(w http.ResponseWriter, r *http.Request) {
		buf := bodyPool.Get().(*bytes.Buffer)
		defer putBody(buf)
		buf.Reset()
		if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxPushBody)); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorBody{fmt.Sprintf("request body exceeds %d bytes", maxPushBody)})
				return
			}
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("reading request body: %v", err)})
			return
		}
		data := bytes.TrimLeft(buf.Bytes(), " \t\r\n")
		if len(data) > 0 && data[0] == '[' {
			// Batch form: an array of slots answers with an array of
			// results, fed under one session acquire.
			reqs, ok := decodePushBatch(w, data, reflectCodec)
			if !ok {
				return
			}
			res, err := m.PushBatchCtx(r.Context(), r.PathValue("id"), reqs)
			if err != nil {
				// A mid-batch per-slot error: the slots before it were
				// committed exactly as repeated single pushes would have,
				// so their results ride along with the error — the client
				// must not lose advisories the session already accounted.
				if len(res) > 0 {
					if reflectCodec {
						writeJSON(w, httpStatus(err), batchErrorBody{Error: err.Error(), Results: res})
						return
					}
					bp := wireBuf()
					b, werr := wire.AppendBatchError(*bp, err.Error(), res)
					*bp = b
					writeWire(w, httpStatus(err), bp, werr)
					return
				}
				writePushError(w, err, reflectCodec)
				return
			}
			if reflectCodec {
				writeJSON(w, http.StatusOK, res)
				return
			}
			bp := wireBuf()
			b, werr := wire.AppendPushResults(*bp, res)
			*bp = b
			writeWire(w, http.StatusOK, bp, werr)
			return
		}
		req, ok := decodePushOne(w, data, reflectCodec)
		if !ok {
			return
		}
		res, err := m.PushCtx(r.Context(), r.PathValue("id"), req)
		if err != nil {
			writePushError(w, err, reflectCodec)
			return
		}
		if reflectCodec {
			writeJSON(w, http.StatusOK, res)
			return
		}
		bp := wireBuf()
		b, werr := wire.AppendPushResult(*bp, &res)
		*bp = b
		writeWire(w, http.StatusOK, bp, werr)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		snap, err := m.Checkpoint(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		res, err := m.Delete(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/algs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Algorithms []AlgInfo `json:"algorithms"`
		}{algInfos()})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if reflectCodec {
			writeJSON(w, http.StatusOK, struct {
				OK      bool    `json:"ok"`
				Metrics Metrics `json:"metrics"`
			}{true, m.Metrics()})
			return
		}
		mt := m.Metrics()
		bp := wireBuf()
		b, werr := appendHealthz(*bp, true, &mt)
		*bp = b
		writeWire(w, http.StatusOK, bp, werr)
	})
	return mux
}

// writePushError answers a manager error on the hot path under the
// selected codec; both emit the identical {"error":"..."} body.
func writePushError(w http.ResponseWriter, err error, reflectCodec bool) {
	if reflectCodec {
		writeError(w, err)
		return
	}
	writeWireError(w, err)
}

// decodePushOne decodes a single-slot push body: the wire scanner on
// the happy path, with a fallback through the strict reflection decoder
// when the scanner rejects — the input is already known malformed (the
// codecs accept identical inputs), so the second pass exists purely to
// reproduce encoding/json's error prose, and reflection cost is paid
// only on bad requests. It returns by value with a wire-path-only local
// so the happy path's target stays off the heap; the fallback declares
// its own, which escapes into encoding/json's any but is reached only
// on malformed input or under the reference codec.
func decodePushOne(w http.ResponseWriter, data []byte, reflectCodec bool) (PushRequest, bool) {
	if !reflectCodec {
		var req PushRequest
		if wire.DecodePushRequest(data, &req) == nil {
			return req, true
		}
	}
	var req PushRequest
	ok := decodeStrict(w, data, &req)
	return req, ok
}

// decodePushBatch is decodePushOne's batch-form twin.
func decodePushBatch(w http.ResponseWriter, data []byte, reflectCodec bool) ([]PushRequest, bool) {
	if !reflectCodec {
		var reqs []PushRequest
		if wire.DecodePushRequests(data, &reqs) == nil {
			return reqs, true
		}
	}
	var reqs []PushRequest
	ok := decodeStrict(w, data, &reqs)
	return reqs, ok
}

// AlgInfo is one registry entry as served by GET /v1/algs.
type AlgInfo struct {
	Key        string `json:"key"`
	Name       string `json:"name"`
	Bound      string `json:"bound"`
	Applies    string `json:"applies"`
	Streamable bool   `json:"streamable"`
	Doc        string `json:"doc"`
}

func algInfos() []AlgInfo {
	specs := engine.Algorithms()
	out := make([]AlgInfo, len(specs))
	for i, s := range specs {
		out[i] = AlgInfo{
			Key: s.Key, Name: s.Name, Bound: s.Bound,
			Applies: s.Applies, Streamable: s.Streamable(), Doc: s.Doc,
		}
	}
	return out
}

// httpStatus maps manager errors onto status codes. Anything unmapped is
// a client mistake in the request itself (unknown algorithm, bad fleet,
// malformed id) and reports 400. The README's "Reliability" section
// documents the full taxonomy; keep the two in sync.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionExists), errors.Is(err, ErrSessionFailed), errors.Is(err, ErrBusy):
		return http.StatusConflict
	case errors.Is(err, ErrSessionLimit), errors.Is(err, ErrThrottled):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBadSlot):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrStore):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// setRetryAfter stamps the Retry-After header on shed responses: the
// admission layer's computed wait (ErrThrottled, ErrOverloaded) rounded
// up to whole seconds — the header's granularity, so never below 1 —
// or a fixed 1 on the session-cap 429 (ErrSessionLimit), whose true
// wait depends on another client's delete or the idle janitor and
// cannot be computed. Both codec paths run through it, so the header
// set is identical under wire and reflect encoding.
func setRetryAfter(w http.ResponseWriter, err error) {
	var secs int64
	if d, ok := RetryAfter(err); ok {
		secs = int64((d + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
	} else if errors.Is(err, ErrSessionLimit) {
		secs = 1
	} else {
		return
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// bodyPool recycles request-body buffers; encPool recycles response
// buffers with their bound JSON encoders. Oversized buffers (huge
// checkpoint payloads) are dropped instead of pinned.
const pooledBufMax = 64 << 10

var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func putBody(buf *bytes.Buffer) {
	if buf.Cap() <= pooledBufMax {
		bodyPool.Put(buf)
	}
}

type pooledEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &pooledEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// decodeBody strictly decodes a JSON request body, answering 400 itself
// when it cannot; the caller proceeds only on true.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	buf := bodyPool.Get().(*bytes.Buffer)
	defer putBody(buf)
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("reading request body: %v", err)})
		return false
	}
	return decodeStrict(w, buf.Bytes(), into)
}

// decodeStrict decodes one JSON value with unknown fields rejected,
// answering 400 itself on failure.
func decodeStrict(w http.ResponseWriter, data []byte, into any) bool {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("malformed request body: %v", err)})
		return false
	}
	return true
}

type errorBody struct {
	Error string `json:"error"`
}

// batchErrorBody is a failed batch push's response when some leading
// slots were committed first: the usual error plus their results.
type batchErrorBody struct {
	Error   string       `json:"error"`
	Results []PushResult `json:"results"`
}

func writeError(w http.ResponseWriter, err error) {
	setRetryAfter(w, err)
	writeJSON(w, httpStatus(err), errorBody{err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*pooledEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Encoding failed before anything was written: answer a plain 500
		// instead of a torn body.
		encPool.Put(e)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes()) // the status line is out; nothing useful to do on error
	if e.buf.Cap() <= pooledBufMax {
		encPool.Put(e)
	}
}
