package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
)

// The HTTP API over a Manager:
//
//	POST   /v1/sessions                 open (or resume from a client checkpoint)
//	GET    /v1/sessions                 list live sessions
//	GET    /v1/sessions/{id}            session state
//	POST   /v1/sessions/{id}/push       feed one slot — or a JSON array of slots
//	GET    /v1/sessions/{id}/stream     subscribe to the session's advisories (SSE)
//	POST   /v1/sessions/{id}/checkpoint persist + return the session snapshot
//	DELETE /v1/sessions/{id}            close the session (flushes semi-online tails)
//	GET    /v1/algs                     the algorithm registry
//	GET    /v1/healthz                  liveness + aggregate counters
//	GET    /metrics                     Prometheus text exposition
//
// The handlers here are the transport-agnostic core: they own the
// request/response *semantics* — status codes, error taxonomy,
// Retry-After, batch partial-commit behavior — and delegate framing to
// the encoder seam in respond.go, which both the JSON API and the SSE
// stream transport (sse.go) share. Every JSON response body is
// identical under the two codecs; errors are {"error": "..."} with a
// status from httpStatus. Request bodies are decoded strictly (unknown
// fields are errors), so client typos fail loudly with 400 instead of
// serving with defaults. The push endpoint's response shape mirrors
// the request: a single slot object answers with a single result
// object, a slot array with a result array (one entry per fed slot, in
// order). A mid-batch per-slot error keeps the error status but
// carries the committed slots' results in the body
// ({"error": ..., "results": [...]}) — batch semantics are exactly
// those of pushing one at a time, where each committed slot's advisory
// was delivered before the error.
//
// Request body buffers and response encoders are pooled (sync.Pool),
// and the hot path — push in both forms, session info, healthz — runs
// on the zero-reflection internal/wire codec unless Options.ReflectCodec
// routes it back through encoding/json. Every request body is bounded:
// pushes by maxPushBody, open/checkpoint-resume bodies by maxOpenBody,
// both answering 413 beyond the cap.

// maxPushBody bounds a push request body. The largest legitimate bodies
// are batch pushes — a full 768-slot trace with per-slot counts is
// still under 64 KiB — so 1 MiB is far past any real request while
// keeping hostile bodies from ballooning the pooled buffers (putBody
// drops oversized ones rather than pinning them).
const maxPushBody = 1 << 20

// maxOpenBody bounds an open request body. Opens can carry a full
// client-held checkpoint — a replay log on the order of 50 bytes per
// slot once the numbers are printed — so the cap is deliberately wider
// than the push cap: 16 MiB admits a ~300k-slot replay, far past any
// real session, while still denying a hostile body the unbounded read
// this path used to do.
const maxOpenBody = 16 << 20

// api is the transport-agnostic request core: a Manager plus the codec
// chosen at construction. Handler methods never encode bytes
// themselves — hot-path responses go through a.enc, cold ones through
// the shared writeJSON.
type api struct {
	m   *Manager
	enc encoder
}

// NewHandler wires a Manager into an http.Handler.
func NewHandler(m *Manager) http.Handler {
	a := &api{m: m, enc: codecFor(m.opts)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", a.open)
	mux.HandleFunc("GET /v1/sessions", a.list)
	mux.HandleFunc("GET /v1/sessions/{id}", a.info)
	mux.HandleFunc("POST /v1/sessions/{id}/push", a.push)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", a.streamAdvisories)
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", a.checkpoint)
	mux.HandleFunc("DELETE /v1/sessions/{id}", a.delete)
	mux.HandleFunc("GET /v1/algs", a.algs)
	mux.HandleFunc("GET /v1/healthz", a.healthz)
	mux.HandleFunc("GET /metrics", a.promMetrics)
	return mux
}

func (a *api) open(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	info, err := a.m.Open(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (a *api) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sessions []SessionInfo `json:"sessions"`
	}{a.m.Sessions()})
}

func (a *api) info(w http.ResponseWriter, r *http.Request) {
	info, err := a.m.Info(r.PathValue("id"))
	if err != nil {
		a.enc.writeErr(w, err)
		return
	}
	a.enc.writeSessionInfo(w, info)
}

func (a *api) push(w http.ResponseWriter, r *http.Request) {
	buf := bodyPool.Get().(*bytes.Buffer)
	defer putBody(buf)
	buf.Reset()
	if !readBounded(w, r, buf, maxPushBody) {
		return
	}
	data := bytes.TrimLeft(buf.Bytes(), " \t\r\n")
	if len(data) > 0 && data[0] == '[' {
		// Batch form: an array of slots answers with an array of
		// results, fed under one session acquire.
		reqs, ok := a.enc.decodePushBatch(w, data)
		if !ok {
			return
		}
		res, err := a.m.PushBatchCtx(r.Context(), r.PathValue("id"), reqs)
		if err != nil {
			// A mid-batch per-slot error: the slots before it were
			// committed exactly as repeated single pushes would have,
			// so their results ride along with the error — the client
			// must not lose advisories the session already accounted.
			if len(res) > 0 {
				a.enc.writeBatchError(w, err, res)
				return
			}
			a.enc.writeErr(w, err)
			return
		}
		a.enc.writePushResults(w, res)
		return
	}
	req, ok := a.enc.decodePushOne(w, data)
	if !ok {
		return
	}
	res, err := a.m.PushCtx(r.Context(), r.PathValue("id"), req)
	if err != nil {
		a.enc.writeErr(w, err)
		return
	}
	a.enc.writePushResult(w, res)
}

func (a *api) checkpoint(w http.ResponseWriter, r *http.Request) {
	snap, err := a.m.Checkpoint(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (a *api) delete(w http.ResponseWriter, r *http.Request) {
	res, err := a.m.Delete(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *api) algs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Algorithms []AlgInfo `json:"algorithms"`
	}{algInfos()})
}

func (a *api) healthz(w http.ResponseWriter, r *http.Request) {
	mt := a.m.Metrics()
	a.enc.writeHealthz(w, mt)
}

// AlgInfo is one registry entry as served by GET /v1/algs.
type AlgInfo struct {
	Key        string `json:"key"`
	Name       string `json:"name"`
	Bound      string `json:"bound"`
	Applies    string `json:"applies"`
	Streamable bool   `json:"streamable"`
	Doc        string `json:"doc"`
}

func algInfos() []AlgInfo {
	specs := engine.Algorithms()
	out := make([]AlgInfo, len(specs))
	for i, s := range specs {
		out[i] = AlgInfo{
			Key: s.Key, Name: s.Name, Bound: s.Bound,
			Applies: s.Applies, Streamable: s.Streamable(), Doc: s.Doc,
		}
	}
	return out
}

// httpStatus maps manager errors onto status codes. Anything unmapped is
// a client mistake in the request itself (unknown algorithm, bad fleet,
// malformed id) and reports 400. The README's "Reliability" section
// documents the full taxonomy; keep the two in sync.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionExists), errors.Is(err, ErrSessionFailed), errors.Is(err, ErrBusy):
		return http.StatusConflict
	case errors.Is(err, ErrSessionLimit), errors.Is(err, ErrThrottled):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBadSlot):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrStore):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// setRetryAfter stamps the Retry-After header on shed responses: the
// admission layer's computed wait (ErrThrottled, ErrOverloaded) rounded
// up to whole seconds — the header's granularity, so never below 1 —
// or a fixed 1 on the session-cap 429 (ErrSessionLimit), whose true
// wait depends on another client's delete or the idle janitor and
// cannot be computed. Every error-writing path — writeError,
// writeWireError, both writeBatchError implementations — runs through
// it, so the header set is identical under wire and reflect encoding
// and survives batch partial commits.
func setRetryAfter(w http.ResponseWriter, err error) {
	var secs int64
	if d, ok := RetryAfter(err); ok {
		secs = int64((d + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
	} else if errors.Is(err, ErrSessionLimit) {
		secs = 1
	} else {
		return
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// bodyPool recycles request-body buffers; encPool recycles response
// buffers with their bound JSON encoders. Oversized buffers (huge
// checkpoint payloads) are dropped instead of pinned.
const pooledBufMax = 64 << 10

var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func putBody(buf *bytes.Buffer) {
	if buf.Cap() <= pooledBufMax {
		bodyPool.Put(buf)
	}
}

type pooledEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &pooledEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// readBounded reads a request body into buf with a hard cap, answering
// 413 past the cap and 400 on any other read failure; the caller
// proceeds only on true.
func readBounded(w http.ResponseWriter, r *http.Request, buf *bytes.Buffer, limit int64) bool {
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, limit)); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{fmt.Sprintf("request body exceeds %d bytes", limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("reading request body: %v", err)})
		return false
	}
	return true
}

// decodeBody strictly decodes a JSON request body — bounded by
// maxOpenBody — answering 400/413 itself when it cannot; the caller
// proceeds only on true.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	buf := bodyPool.Get().(*bytes.Buffer)
	defer putBody(buf)
	buf.Reset()
	if !readBounded(w, r, buf, maxOpenBody) {
		return false
	}
	return decodeStrict(w, buf.Bytes(), into)
}

// decodeStrict decodes one JSON value with unknown fields rejected,
// answering 400 itself on failure.
func decodeStrict(w http.ResponseWriter, data []byte, into any) bool {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("malformed request body: %v", err)})
		return false
	}
	return true
}

type errorBody struct {
	Error string `json:"error"`
}

// batchErrorBody is a failed batch push's response when some leading
// slots were committed first: the usual error plus their results.
type batchErrorBody struct {
	Error   string       `json:"error"`
	Results []PushResult `json:"results"`
}

func writeError(w http.ResponseWriter, err error) {
	setRetryAfter(w, err)
	writeJSON(w, httpStatus(err), errorBody{err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*pooledEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Encoding failed before anything was written: answer a clean 500
		// instead of a torn body.
		encPool.Put(e)
		encodeFailure(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes()) // the status line is out; nothing useful to do on error
	if e.buf.Cap() <= pooledBufMax {
		encPool.Put(e)
	}
}
