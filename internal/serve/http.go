package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/engine"
)

// The HTTP JSON API over a Manager:
//
//	POST   /v1/sessions                 open (or resume from a client checkpoint)
//	GET    /v1/sessions                 list live sessions
//	GET    /v1/sessions/{id}            session state
//	POST   /v1/sessions/{id}/push       feed one slot, get the advisory
//	POST   /v1/sessions/{id}/checkpoint persist + return the session snapshot
//	DELETE /v1/sessions/{id}            close the session (flushes semi-online tails)
//	GET    /v1/algs                     the algorithm registry
//	GET    /v1/healthz                  liveness + aggregate counters
//
// Every response is JSON; errors are {"error": "..."} with a status from
// httpStatus. Request bodies are decoded strictly (unknown fields are
// errors), so client typos fail loudly with 400 instead of serving with
// defaults.

// NewHandler wires a Manager into an http.Handler.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req OpenRequest
		if !decodeBody(w, r, &req) {
			return
		}
		info, err := m.Open(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Sessions []SessionInfo `json:"sessions"`
		}{m.Sessions()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := m.Info(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/push", func(w http.ResponseWriter, r *http.Request) {
		var req PushRequest
		if !decodeBody(w, r, &req) {
			return
		}
		res, err := m.Push(r.PathValue("id"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		snap, err := m.Checkpoint(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		res, err := m.Delete(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/algs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Algorithms []AlgInfo `json:"algorithms"`
		}{algInfos()})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			OK      bool    `json:"ok"`
			Metrics Metrics `json:"metrics"`
		}{true, m.Metrics()})
	})
	return mux
}

// AlgInfo is one registry entry as served by GET /v1/algs.
type AlgInfo struct {
	Key        string `json:"key"`
	Name       string `json:"name"`
	Bound      string `json:"bound"`
	Applies    string `json:"applies"`
	Streamable bool   `json:"streamable"`
	Doc        string `json:"doc"`
}

func algInfos() []AlgInfo {
	specs := engine.Algorithms()
	out := make([]AlgInfo, len(specs))
	for i, s := range specs {
		out[i] = AlgInfo{
			Key: s.Key, Name: s.Name, Bound: s.Bound,
			Applies: s.Applies, Streamable: s.Streamable(), Doc: s.Doc,
		}
	}
	return out
}

// httpStatus maps manager errors onto status codes. Anything unmapped is
// a client mistake in the request itself (unknown algorithm, bad fleet,
// malformed id) and reports 400.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionExists), errors.Is(err, ErrSessionFailed), errors.Is(err, ErrBusy):
		return http.StatusConflict
	case errors.Is(err, ErrSessionLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBadSlot):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStore):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// decodeBody strictly decodes a JSON request body, answering 400 itself
// when it cannot; the caller proceeds only on true.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("malformed request body: %v", err)})
		return false
	}
	return true
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), errorBody{err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is out; nothing useful to do on error
}
