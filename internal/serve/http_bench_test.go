package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/wire"
)

// The HTTP push benchmarks close the measurement gap above the Manager:
// BenchmarkServePush stops at the manager boundary, these drive real
// requests through a live httptest server (TCP loopback, net/http
// serving stack, wire codec, manager) under both codecs. The client is
// a raw-socket harness — preassembled request bytes on a persistent
// connection, responses read into a reused buffer — so allocs/op is the
// server-side cost, not client churn; BenchmarkHTTPPush/codec=wire is
// gated by scripts/benchsmoke.sh against BENCH_serve.json and the
// parallel variant is swept across -cpu by scripts/benchscale.sh, with
// codec=reflect doubling as the recorded "previous".

// pushConn is the benchmark's raw HTTP/1.1 client: one keep-alive
// connection, hand-assembled requests, zero per-request allocation
// beyond the response scan.
type pushConn struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialPush(b *testing.B, srv *httptest.Server) *pushConn {
	b.Helper()
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	return &pushConn{conn: conn, br: bufio.NewReaderSize(conn, 16<<10)}
}

// request assembles one complete POST request for path.
func pushRequest(path string, body []byte) []byte {
	return fmt.Appendf(nil, "POST %s HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		path, len(body), body)
}

// roundTrip writes a preassembled request and consumes the response,
// returning its status code. Small responses carry Content-Length;
// bodies past net/http's buffering threshold arrive chunked.
func (c *pushConn) roundTrip(req []byte) (int, error) {
	if _, err := c.conn.Write(req); err != nil {
		return 0, err
	}
	status := 0
	contentLength := -1
	for first := true; ; first = false {
		line, err := c.br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		if first {
			// "HTTP/1.1 200 OK" — the status is bytes 9-12.
			if len(line) < 12 {
				return 0, fmt.Errorf("short status line %q", line)
			}
			status = int(line[9]-'0')*100 + int(line[10]-'0')*10 + int(line[11]-'0')
			continue
		}
		if len(line) <= 2 { // bare CRLF: end of headers
			break
		}
		if len(line) > 16 && (line[0] == 'C' || line[0] == 'c') &&
			string(line[1:15]) == "ontent-Length:" {
			n, err := strconv.Atoi(string(bytes.TrimSpace(line[15:])))
			if err != nil {
				return 0, err
			}
			contentLength = n
		}
	}
	if contentLength >= 0 {
		if _, err := c.br.Discard(contentLength); err != nil {
			return 0, err
		}
		return status, nil
	}
	// Chunked transfer coding: size line, data + CRLF, until the zero
	// chunk and its terminating blank line.
	for {
		line, err := c.br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		size := 0
		for _, ch := range bytes.TrimSpace(line) {
			switch {
			case ch >= '0' && ch <= '9':
				size = size<<4 | int(ch-'0')
			case ch >= 'a' && ch <= 'f':
				size = size<<4 | int(ch-'a'+10)
			default:
				return 0, fmt.Errorf("bad chunk size line %q", line)
			}
		}
		if size == 0 {
			if _, err := c.br.Discard(2); err != nil { // trailing CRLF
				return 0, err
			}
			return status, nil
		}
		if _, err := c.br.Discard(size + 2); err != nil {
			return 0, err
		}
	}
}

func (c *pushConn) close() { c.conn.Close() }

// benchServer starts a server with an opened session per id and returns it.
func benchServer(b *testing.B, reflectCodec bool, ids []string) *httptest.Server {
	b.Helper()
	m := NewManager(Options{MaxSessions: len(ids) + 1, Shards: 16, ReflectCodec: reflectCodec})
	srv := httptest.NewServer(NewHandler(m))
	b.Cleanup(srv.Close)
	for _, id := range ids {
		if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

// traceBodies wire-encodes the quickstart trace as request bodies:
// batch=1 yields one single-slot object per slot, batch>1 yields array
// bodies of that many slots.
func traceBodies(b *testing.B, batch int) [][]byte {
	b.Helper()
	trace := quickstartTrace(b)
	var bodies [][]byte
	if batch == 1 {
		for _, lambda := range trace {
			body, err := wire.AppendPushRequest(nil, &PushRequest{Lambda: lambda})
			if err != nil {
				b.Fatal(err)
			}
			bodies = append(bodies, body)
		}
		return bodies
	}
	for start := 0; start < len(trace); start += batch {
		reqs := make([]PushRequest, 0, batch)
		for _, lambda := range trace[start:min(start+batch, len(trace))] {
			reqs = append(reqs, PushRequest{Lambda: lambda})
		}
		body, err := wire.AppendPushRequests(nil, reqs)
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	return bodies
}

// BenchmarkHTTPPush measures one serial push request end to end —
// loopback TCP, net/http, codec, manager — under both codecs. One
// long-lived session absorbs all pushes (the trace repeats), so the op
// is the steady-state per-request cost: for batch=1 one slot per
// request, for batch=16 a 16-slot array. codec=reflect is the
// reflection reference recorded as "previous" in BENCH_serve.json;
// codec=wire/batch=1 is gated by scripts/benchsmoke.sh.
func BenchmarkHTTPPush(b *testing.B) {
	for _, codec := range []struct {
		name    string
		reflect bool
	}{{"wire", false}, {"reflect", true}} {
		b.Run("codec="+codec.name, func(b *testing.B) {
			for _, batch := range []int{1, 16} {
				b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
					srv := benchServer(b, codec.reflect, []string{"bench"})
					reqs := make([][]byte, 0, 48)
					for _, body := range traceBodies(b, batch) {
						reqs = append(reqs, pushRequest("/v1/sessions/bench/push", body))
					}
					conn := dialPush(b, srv)
					defer conn.close()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						status, err := conn.roundTrip(reqs[i%len(reqs)])
						if err != nil {
							b.Fatal(err)
						}
						if status != http.StatusOK {
							b.Fatalf("HTTP %d", status)
						}
					}
				})
			}
		})
	}
}

// BenchmarkHTTPPushParallel is BenchmarkServePushParallel moved up to
// the HTTP layer: 16 persistent sessions on 16 keep-alive connections,
// each op drives the full 48-slot trace through every session
// concurrently (768 slots per op, matching scripts/benchscale.sh's
// -slots), unbatched and in 16-slot batches.
func BenchmarkHTTPPushParallel(b *testing.B) {
	const nSessions = 16
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ids := make([]string, nSessions)
			for s := range ids {
				ids[s] = fmt.Sprintf("bench-%d", s)
			}
			srv := benchServer(b, false, ids)
			bodies := traceBodies(b, batch)
			conns := make([]*pushConn, nSessions)
			reqs := make([][][]byte, nSessions)
			for s := range conns {
				conns[s] = dialPush(b, srv)
				defer conns[s].close()
				for _, body := range bodies {
					reqs[s] = append(reqs[s], pushRequest("/v1/sessions/"+ids[s]+"/push", body))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, nSessions)
				for s := 0; s < nSessions; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						for _, req := range reqs[s] {
							status, err := conns[s].roundTrip(req)
							if err != nil {
								errs <- err
								return
							}
							if status != http.StatusOK {
								errs <- fmt.Errorf("HTTP %d", status)
								return
							}
						}
					}(s)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHTTPPushHandler isolates the handler + codec from the
// network: ServeHTTP invoked directly with a reused request and a
// discarding response writer, so the two codecs' allocation delta is
// undiluted by the ~24 allocs/op of net/http connection machinery that
// both pay end to end. This is where the wire codec's >=2x allocs/op
// reduction is measured and gated; the e2e benchmarks above carry the
// same absolute delta on top of the shared serving floor.
func BenchmarkHTTPPushHandler(b *testing.B) {
	for _, codec := range []struct {
		name    string
		reflect bool
	}{{"wire", false}, {"reflect", true}} {
		b.Run("codec="+codec.name, func(b *testing.B) {
			m := NewManager(Options{ReflectCodec: codec.reflect})
			if _, err := m.Open(OpenRequest{ID: "bench", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
				b.Fatal(err)
			}
			h := NewHandler(m)
			bodies := traceBodies(b, 1)
			rd := bytes.NewReader(nil)
			body := io.NopCloser(rd)
			req, err := http.NewRequest("POST", "/v1/sessions/bench/push", body)
			if err != nil {
				b.Fatal(err)
			}
			w := &discardResponseWriter{header: make(http.Header, 4)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rd.Reset(bodies[i%len(bodies)])
				req.Body = body
				req.ContentLength = int64(len(bodies[i%len(bodies)]))
				w.status = 0
				clear(w.header)
				h.ServeHTTP(w, req)
				if w.status != http.StatusOK {
					b.Fatalf("HTTP %d", w.status)
				}
			}
		})
	}
}

type discardResponseWriter struct {
	header http.Header
	status int
}

func (w *discardResponseWriter) Header() http.Header         { return w.header }
func (w *discardResponseWriter) WriteHeader(status int)      { w.status = status }
func (w *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
