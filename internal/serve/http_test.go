package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// rawPost posts a raw body (possibly invalid JSON).
func rawPost(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// Every error path answers with the right status code and a JSON error
// body. The manager is shared across cases on purpose: later rows depend
// on the state earlier rows set up (a full manager, a deleted session).
func TestHTTPErrorPaths(t *testing.T) {
	m := NewManager(Options{MaxSessions: 2})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}

	// Fixture sessions: "held" occupies a slot for the whole test;
	// "doomed" is deleted to exercise push-after-close.
	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "held", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "doomed", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	cl.mustDo("DELETE", "/v1/sessions/doomed", nil, nil, http.StatusOK)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
	}{
		{"unknown algorithm", "POST", "/v1/sessions",
			OpenRequest{Alg: "no-such-alg", Fleet: quickstartFleet()}, http.StatusBadRequest},
		{"offline-only algorithm", "POST", "/v1/sessions",
			OpenRequest{Alg: "approx", Fleet: quickstartFleet()}, http.StatusBadRequest},
		{"missing algorithm", "POST", "/v1/sessions",
			OpenRequest{Fleet: quickstartFleet()}, http.StatusBadRequest},
		{"unknown fleet scenario", "POST", "/v1/sessions",
			OpenRequest{Alg: "alg-b", Fleet: FleetJSON{Scenario: "no-such-scenario"}}, http.StatusBadRequest},
		{"empty fleet", "POST", "/v1/sessions",
			OpenRequest{Alg: "alg-b"}, http.StatusBadRequest},
		{"invalid session id", "POST", "/v1/sessions",
			OpenRequest{ID: "../escape", Alg: "alg-b", Fleet: quickstartFleet()}, http.StatusBadRequest},
		{"duplicate session id", "POST", "/v1/sessions",
			OpenRequest{ID: "held", Alg: "alg-b", Fleet: quickstartFleet()}, http.StatusConflict},
		{"push to unknown session", "POST", "/v1/sessions/nope/push",
			PushRequest{Lambda: 1}, http.StatusNotFound},
		{"push after close", "POST", "/v1/sessions/doomed/push",
			PushRequest{Lambda: 1}, http.StatusNotFound},
		{"infeasible demand", "POST", "/v1/sessions/held/push",
			PushRequest{Lambda: 1e9}, http.StatusUnprocessableEntity},
		{"negative demand", "POST", "/v1/sessions/held/push",
			PushRequest{Lambda: -1}, http.StatusUnprocessableEntity},
		{"wrong counts arity", "POST", "/v1/sessions/held/push",
			PushRequest{Lambda: 1, Counts: []int{1, 2, 3}}, http.StatusUnprocessableEntity},
		{"path-traversal id", "DELETE", "/v1/sessions/%2e%2e%2fsecret", nil, http.StatusNotFound},
		{"get unknown session", "GET", "/v1/sessions/nope", nil, http.StatusNotFound},
		{"get deleted session", "GET", "/v1/sessions/doomed", nil, http.StatusNotFound},
		{"checkpoint unknown session", "POST", "/v1/sessions/nope/checkpoint", nil, http.StatusNotFound},
		{"delete unknown session", "DELETE", "/v1/sessions/nope", nil, http.StatusNotFound},
		{"delete already-deleted session", "DELETE", "/v1/sessions/doomed", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := cl.do(tc.method, tc.path, tc.body, nil)
			if status != tc.status {
				t.Fatalf("%s %s: HTTP %d, want %d: %s", tc.method, tc.path, status, tc.status, raw)
			}
			if !strings.Contains(raw, `"error"`) {
				t.Fatalf("error response has no error body: %s", raw)
			}
		})
	}

	t.Run("session cap hit", func(t *testing.T) {
		// One slot is held; fill the second, then the third open must 429
		// — and carry a Retry-After so well-behaved clients back off
		// instead of hammering the cap.
		cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "filler", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
		defer cl.mustDo("DELETE", "/v1/sessions/filler", nil, nil, http.StatusOK)
		resp := rawPost(t, srv.URL+"/v1/sessions", `{"alg": "alg-b", "fleet": {"scenario": "quickstart", "seed": 1}}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("open over the cap: HTTP %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("session-cap 429 Retry-After = %q, want \"1\"", ra)
		}
	})

	t.Run("malformed bodies", func(t *testing.T) {
		for _, body := range []string{"{", `{"alg": 7}`, `{"algo": "alg-b"}`, `{"lambda": "x"}`} {
			if resp := rawPost(t, srv.URL+"/v1/sessions", body); resp.StatusCode != http.StatusBadRequest {
				t.Errorf("open with body %q: HTTP %d, want 400", body, resp.StatusCode)
			}
		}
		if resp := rawPost(t, srv.URL+"/v1/sessions/held/push", `{"lambda": "NaN"}`); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("push with non-numeric lambda: HTTP %d, want 400", resp.StatusCode)
		}
	})

	t.Run("sticky algorithm failure", func(t *testing.T) {
		// Algorithm C's subdivision cap rejects this degenerate fleet at
		// the first slot; the session degrades to 409s instead of crashing
		// the server.
		body := `{"id": "sticky", "alg": "alg-c", "fleet": {"types": [
			{"name": "srv", "count": 1, "switchCost": 0.001, "maxLoad": 1,
			 "cost": {"kind": "constant", "c": 10000000}}]}}`
		if resp := rawPost(t, srv.URL+"/v1/sessions", body); resp.StatusCode != http.StatusCreated {
			t.Fatalf("open sticky fleet: HTTP %d", resp.StatusCode)
		}
		for range 2 { // the failure and the refusal after it
			status, raw := cl.do("POST", "/v1/sessions/sticky/push", PushRequest{Lambda: 0.5}, nil)
			if status != http.StatusConflict {
				t.Fatalf("push to failed session: HTTP %d, want 409: %s", status, raw)
			}
		}
		var info SessionInfo
		cl.mustDo("GET", "/v1/sessions/sticky", nil, &info, http.StatusOK)
		if info.Failed == "" {
			t.Error("session info should carry the sticky failure")
		}
		cl.mustDo("DELETE", "/v1/sessions/sticky", nil, nil, http.StatusOK)
	})
}

// The read-only endpoints serve the registry and the counters.
func TestHTTPAlgsAndHealthz(t *testing.T) {
	m := NewManager(Options{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}

	var algs struct {
		Algorithms []AlgInfo `json:"algorithms"`
	}
	cl.mustDo("GET", "/v1/algs", nil, &algs, http.StatusOK)
	seen := map[string]AlgInfo{}
	for _, a := range algs.Algorithms {
		seen[a.Key] = a
	}
	if a, ok := seen["alg-a"]; !ok || !a.Streamable || a.Bound != "2d+1" {
		t.Errorf("alg-a entry: %+v (ok=%v)", seen["alg-a"], ok)
	}
	if a, ok := seen["approx"]; !ok || a.Streamable {
		t.Errorf("approx must be listed as not streamable: %+v (ok=%v)", seen["approx"], ok)
	}

	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "h", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	for _, lambda := range quickstartTrace(t)[:5] {
		cl.mustDo("POST", "/v1/sessions/h/push", PushRequest{Lambda: lambda}, nil, http.StatusOK)
	}
	var health struct {
		OK      bool    `json:"ok"`
		Metrics Metrics `json:"metrics"`
	}
	cl.mustDo("GET", "/v1/healthz", nil, &health, http.StatusOK)
	if !health.OK || health.Metrics.LiveSessions != 1 || health.Metrics.SlotsPushed != 5 {
		t.Fatalf("healthz: %+v", health)
	}
	if health.Metrics.PushP50Micros <= 0 || health.Metrics.PushP99Micros < health.Metrics.PushP50Micros {
		t.Fatalf("latency quantiles look wrong: %+v", health.Metrics)
	}
}
