// Package serve multiplexes many live advisory sessions behind one
// long-running service: the serving layer over the streaming core
// (internal/stream) and the algorithm registry (internal/engine).
//
// A Manager owns a bounded set of named sessions. Pushes to one session
// are serialized by a per-session lock while different sessions proceed
// concurrently; the session registry is lock-striped across shards (hash
// of the session id), so Open/Push/Delete on distinct sessions contend
// on a shard lock only when their ids collide — never on a global lock.
// The shard count is a pure contention knob: any value produces
// bit-identical advisories (covered by a shard-invariance test). Idle
// sessions are evicted to a pluggable SnapshotStore in
// stream.Checkpoint's portable form and are transparently resumed by the
// next push — callers cannot tell eviction happened except through the
// aggregate counters.
//
// Lock ordering: a shard lock may be taken first and a session lock
// second only without blocking (TryLock, or a freshly created session's
// lock); a session lock is never held while a shard lock is taken.
// That discipline makes the two-level scheme deadlock-free: slow
// algorithm steps on one session never stall the registry or other
// sessions. The cross-shard state — the live-session count against
// MaxSessions, the generated-id sequence, the closed flag and all
// metrics — is atomic, so no path takes two shard locks at once.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Sentinel errors; the HTTP layer maps them onto status codes.
var (
	ErrUnknownSession = errors.New("serve: unknown session")
	ErrSessionExists  = errors.New("serve: session id already in use")
	ErrSessionLimit   = errors.New("serve: live session limit reached")
	ErrSessionFailed  = errors.New("serve: session algorithm failed")
	ErrBadSlot        = errors.New("serve: slot rejected")
	ErrBusy           = errors.New("serve: session is busy")
	ErrClosed         = errors.New("serve: manager is shut down")
	ErrStore          = errors.New("serve: snapshot store")
)

// Options tunes a Manager. The zero value serves with defaults: 256 live
// sessions, an in-memory snapshot store, serial trackers and one
// registry shard per CPU.
type Options struct {
	// MaxSessions bounds the live (in-memory) session set; <= 0 means 256.
	// Snapshotted sessions do not count: the bound is on resident
	// algorithm state, not on session identities.
	MaxSessions int
	// Store receives evicted sessions; nil means a fresh MemStore.
	Store SnapshotStore
	// Workers is plumbed into each session's solver trackers
	// (stream.Options.Workers).
	Workers int
	// Shards sets the number of lock stripes of the session registry,
	// rounded up to a power of two; <= 0 means GOMAXPROCS. Purely a
	// contention knob — behaviorally invisible.
	Shards int
	// ReflectCodec makes the HTTP handler encode and decode the push
	// hot path (push, session info, healthz) with reflection-based
	// encoding/json instead of the hand-rolled internal/wire codec.
	// The two are byte-for-byte interchangeable (wire's contract,
	// enforced by FuzzWireCodec and the differential HTTP suite run
	// under both); this switch exists as the reference escape hatch
	// for debugging and for measuring the codec delta.
	ReflectCodec bool

	// GlobalRate admits at most this many slots/sec across all sessions
	// (a batch of n slots charges n); <= 0 means unlimited. Denied
	// pushes fail with ErrThrottled carrying a computed Retry-After.
	GlobalRate float64
	// GlobalBurst is the global bucket's capacity; <= 0 means one
	// second's worth of GlobalRate (at least 1).
	GlobalBurst int
	// SessionRate / SessionBurst are the per-session counterparts,
	// applied to every session independently.
	SessionRate  float64
	SessionBurst int
	// MaxInFlight bounds concurrent push requests (admission's
	// in-flight budget); <= 0 means unlimited. Beyond it pushes fail
	// with ErrOverloaded (HTTP 503 + Retry-After).
	MaxInFlight int

	// PushDeadline bounds one Push/PushBatch end to end — admission,
	// session-lock wait, a store resume, and the algorithm steps are
	// all under it; 0 means no deadline. A push that times out fed
	// nothing (the deadline is checked before the first slot, never
	// between slots of a locked batch) and fails with ErrDeadline, so
	// clients can always retry it.
	PushDeadline time.Duration

	// StoreRetries is how many times a failed eviction save is retried
	// (with capped exponential backoff) before the eviction gives up
	// and the session stays live; 0 means the default 3, negative
	// disables retries. Explicit Checkpoint calls are not retried —
	// the client sees the error and owns the retry.
	StoreRetries int
	// StoreBackoff is the first retry's backoff (doubling per attempt,
	// default 5ms); StoreBackoffCap caps it (default 80ms).
	StoreBackoff    time.Duration
	StoreBackoffCap time.Duration

	// WALDir enables the per-session write-ahead log: every accepted
	// slot is appended (length- and CRC-framed) to <WALDir>/<id>.wal
	// before the algorithm steps, so a crash loses at most the appends
	// the sync policy had not yet made durable. A successful snapshot
	// save (eviction, checkpoint, drain) compacts the log. Empty
	// disables the WAL.
	WALDir string
	// WALSync is the append durability policy: wal.SyncAlways (the zero
	// value — every append fsynced before the push is acknowledged),
	// wal.SyncInterval (group fsync on a timer) or wal.SyncNever (page
	// cache only; durability against process death, not power loss).
	WALSync wal.SyncPolicy
	// WALSyncInterval is SyncInterval's cadence; <= 0 means 100ms.
	WALSyncInterval time.Duration
	// WALOpenFile overrides how WAL files are opened — the fault
	// injection seam (see wal.FaultFS); nil means the real filesystem.
	WALOpenFile func(path string) (wal.File, error)

	// StreamBuffer is each advisory subscription's channel capacity —
	// the slack between the push path producing advisories and an SSE
	// consumer draining them. A subscriber that falls this far behind
	// is disconnected (end reason "lagged") rather than allowed to
	// block or slow pushes. <= 0 means 256.
	StreamBuffer int
	// StreamHeartbeat is the cadence of SSE keep-alive comments on an
	// otherwise idle stream, so proxies and clients can tell a quiet
	// session from a dead connection; <= 0 means 15s.
	StreamHeartbeat time.Duration
}

// OpenRequest describes a session to open. It doubles as the POST
// /v1/sessions wire format.
type OpenRequest struct {
	// ID optionally names the session (URL- and file-safe, <= 64 chars);
	// empty means the manager assigns one.
	ID string `json:"id,omitempty"`
	// Alg names the algorithm (registry lookup, spelling-tolerant). May be
	// empty when Checkpoint carries the algorithm.
	Alg string `json:"alg,omitempty"`
	// Fleet is the session's fleet template.
	Fleet FleetJSON `json:"fleet"`
	// Checkpoint, when non-nil, opens the session by replaying a
	// client-held checkpoint instead of starting fresh.
	Checkpoint *stream.Checkpoint `json:"checkpoint,omitempty"`
}

// PushRequest is one slot for a session. It doubles as the POST
// /v1/sessions/{id}/push wire format (alone, or as an element of a JSON
// array for batch pushes). The type lives in internal/wire so the
// hand-rolled codec and the manager share it; the alias keeps serve's
// API unchanged.
type PushRequest = wire.PushRequest

// PushResult is a push's outcome: Decided reports whether the slot
// unlocked an advisory (semi-online algorithms buffer their lookahead
// window first). Aliased from internal/wire like PushRequest.
type PushResult = wire.PushResult

// SessionInfo is a session's externally visible state.
type SessionInfo struct {
	ID      string  `json:"id"`
	Alg     string  `json:"alg"`  // registry key
	Name    string  `json:"name"` // algorithm display name
	Fed     int     `json:"fed"`
	Decided int     `json:"decided"`
	Pending int     `json:"pending,omitempty"`
	CumCost float64 `json:"cum_cost"`
	// Failed carries the session's sticky algorithm failure, if any.
	Failed string `json:"failed,omitempty"`
}

// CloseResult is a deleted session's final word: the advisories flushed
// by semi-online algorithms (empty for fully online ones and for
// snapshot-only deletions) and the closing state.
type CloseResult struct {
	Advisories []stream.Advisory `json:"advisories,omitempty"`
	Info       SessionInfo       `json:"info"`
}

// liveSession is one resident session. mu serializes all access to the
// session and doubles as the push queue; gone marks a session that was
// evicted or deleted after a waiter obtained the pointer — waiters
// re-acquire through the manager.
type liveSession struct {
	id     string
	alg    string // registry key
	fleet  FleetJSON
	types  []model.ServerType
	bucket *tokenBucket // per-session admission; nil = unlimited

	mu       sync.Mutex
	sess     *stream.Session
	lastUsed time.Time
	gone     bool
	// wal is the session's write-ahead log (nil when disabled); guarded
	// by mu like the session, appended before every algorithm step and
	// compacted whenever a snapshot save succeeds.
	wal *wal.Log
	// subs are the session's live advisory subscriptions (see
	// subscribe.go); guarded by mu like the session itself, and always
	// emptied — every subscriber ended with a reason — before the
	// session goes away.
	subs []*Subscriber
}

// infoLocked snapshots the session's state; callers hold ls.mu (or own
// the session exclusively, as on the open path).
func (ls *liveSession) infoLocked() SessionInfo {
	info := SessionInfo{
		ID:      ls.id,
		Alg:     ls.alg,
		Name:    ls.sess.Name(),
		Fed:     ls.sess.Fed(),
		Decided: ls.sess.Decided(),
		Pending: ls.sess.Fed() - ls.sess.Decided(),
		CumCost: ls.sess.CumCost(),
	}
	if err := ls.sess.Err(); err != nil {
		info.Failed = err.Error()
	}
	return info
}

// shard is one lock stripe of the session registry. Padded to a cache
// line so neighbouring shards' locks do not false-share under write
// traffic.
type shard struct {
	mu   sync.Mutex
	live map[string]*liveSession
	_    [64 - 16]byte
}

// Manager multiplexes live advisory sessions. All methods are safe for
// concurrent use.
type Manager struct {
	opts    Options
	store   SnapshotStore
	nowFn   func() time.Time    // test hook
	sleepFn func(time.Duration) // test hook (store-retry backoff)
	adm     admission

	shards []shard
	mask   uint64 // len(shards)-1; len is a power of two

	// The cross-shard atomics are spaced so the rarely written closed
	// flag — read by every acquire — does not ride the cache line that
	// liveN write traffic (opens, evictions, deletes, resumes)
	// invalidates.
	liveN      atomic.Int64  // resident sessions across all shards (vs MaxSessions)
	seq        atomic.Uint64 // generated-id sequence
	streamSubs atomic.Int64  // live advisory subscriptions (gauge)
	_          [40]byte
	closed     atomic.Bool

	// met is striped in lockstep with shards (see counterStripe).
	met counters
}

// NewManager prepares a session manager.
func NewManager(opts Options) *Manager {
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 256
	}
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = 1 << bits.Len(uint(n-1)) // round up to a power of two; 1 stays 1
	switch {
	case opts.StoreRetries == 0:
		opts.StoreRetries = 3
	case opts.StoreRetries < 0:
		opts.StoreRetries = 0
	}
	if opts.StoreBackoff <= 0 {
		opts.StoreBackoff = 5 * time.Millisecond
	}
	if opts.StoreBackoffCap <= 0 {
		opts.StoreBackoffCap = 80 * time.Millisecond
	}
	if opts.StreamBuffer <= 0 {
		opts.StreamBuffer = 256
	}
	if opts.StreamHeartbeat <= 0 {
		opts.StreamHeartbeat = 15 * time.Second
	}
	m := &Manager{
		opts:    opts,
		store:   opts.Store,
		nowFn:   time.Now,
		sleepFn: time.Sleep,
		shards:  make([]shard, n),
		mask:    uint64(n - 1),
		met:     newCounters(n),
	}
	m.adm = admission{
		global:       newTokenBucket(opts.GlobalRate, opts.GlobalBurst, m.nowFn().UnixNano()),
		maxInFlight:  int64(opts.MaxInFlight),
		sessionRate:  opts.SessionRate,
		sessionBurst: opts.SessionBurst,
	}
	for i := range m.shards {
		m.shards[i].live = map[string]*liveSession{}
	}
	return m
}

// shardIdx hashes a session id onto its stripe index (FNV-1a); the
// registry shard and the counter stripe share the index.
func (m *Manager) shardIdx(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h & m.mask
}

// shardFor returns a session id's registry lock stripe.
func (m *Manager) shardFor(id string) *shard {
	return &m.shards[m.shardIdx(id)]
}

// stripeFor returns a session id's counter stripe.
func (m *Manager) stripeFor(id string) *counterStripe {
	return &m.met.stripes[m.shardIdx(id)]
}

func (m *Manager) streamOpts() stream.Options {
	return stream.Options{Workers: m.opts.Workers}
}

// Open creates (or, with a checkpoint, replays) a session. The algorithm
// resolves through the registry and the fleet through the descriptor; the
// new session counts against MaxSessions immediately.
func (m *Manager) Open(req OpenRequest) (SessionInfo, error) {
	if req.ID != "" && !validID(req.ID) {
		return SessionInfo{}, fmt.Errorf("serve: invalid session id %q (want <= 64 chars of [a-zA-Z0-9._-], no leading dot)", req.ID)
	}
	// Reject cheaply before constructing anything: a full manager, a
	// taken id or a closed manager must not cost a checkpoint replay.
	// The same checks re-run under the shard lock before the insert.
	if err := m.openable(req.ID); err != nil {
		return SessionInfo{}, err
	}

	types, err := req.Fleet.Resolve()
	if err != nil {
		return SessionInfo{}, err
	}

	alg := req.Alg
	var sess *stream.Session
	if cp := req.Checkpoint; cp != nil {
		if alg != "" && !sameAlgorithm(alg, cp.Alg) {
			return SessionInfo{}, fmt.Errorf("serve: request algorithm %q conflicts with checkpoint algorithm %q", alg, cp.Alg)
		}
		alg = cp.Alg
		sess, err = engine.ResumeSession(cp, types, m.streamOpts())
	} else {
		if alg == "" {
			return SessionInfo{}, fmt.Errorf("serve: open request names no algorithm")
		}
		sess, err = engine.OpenSession(alg, types, m.streamOpts())
	}
	if err != nil {
		return SessionInfo{}, err
	}
	if spec, ok := engine.LookupAlgorithm(alg); ok {
		alg = spec.Key
	}

	ls := &liveSession{alg: alg, fleet: req.Fleet, types: types, sess: sess, bucket: m.newSessionBucket()}
	// Hold the session lock across the insert so the WAL attaches before
	// any concurrent pusher can reach the session — otherwise a push
	// could race in unlogged. Safe against the lock-ordering discipline:
	// ls is unpublished until the insert, so no other goroutine can hold
	// or want ls.mu, and every shard-lock holder only TryLocks sessions.
	ls.mu.Lock()
	if err := m.insert(req.ID, ls); err != nil {
		ls.mu.Unlock()
		return SessionInfo{}, err
	}
	if _, err := m.attachWAL(ls, true); err != nil {
		ls.gone = true
		ls.mu.Unlock()
		m.unlink(ls)
		return SessionInfo{}, fmt.Errorf("%w: wal: %v", ErrStore, err)
	}
	// A checkpoint-opened session already holds slots the WAL will never
	// see; persist them now so a crash recovers snapshot + WAL delta, not
	// a session missing its imported prefix.
	if m.walEnabled() && req.Checkpoint != nil {
		if err := m.saveWithRetry(&Snapshot{ID: ls.id, Fleet: ls.fleet, Checkpoint: sess.Checkpoint()}); err != nil {
			ls.gone = true
			ls.closeWALLocked()
			ls.mu.Unlock()
			m.unlink(ls)
			return SessionInfo{}, fmt.Errorf("%w: %v", ErrStore, err)
		}
	}
	m.stripeFor(ls.id).opened.Add(1)
	info := ls.infoLocked()
	ls.mu.Unlock()
	return info, nil
}

// insert links a constructed session into the registry under the given
// id (or a generated one), enforcing id uniqueness and the live-session
// cap atomically with the link.
func (m *Manager) insert(id string, ls *liveSession) error {
	now := m.nowFn()
	for {
		generated := false
		if id == "" {
			id = fmt.Sprintf("s-%06d", m.seq.Add(1))
			generated = true
		}
		sh := m.shardFor(id)
		sh.mu.Lock()
		err := m.insertableLocked(sh, id)
		if err == nil {
			// Reserve a cap slot; release it if over.
			if m.liveN.Add(1) > int64(m.opts.MaxSessions) {
				n := m.liveN.Add(-1)
				err = fmt.Errorf("%w (%d live)", ErrSessionLimit, n)
			} else {
				ls.id = id
				ls.lastUsed = now
				sh.live[id] = ls
				m.stripeFor(id).live.Add(1)
			}
		}
		sh.mu.Unlock()
		if err != nil && generated && errors.Is(err, ErrSessionExists) {
			id = "" // lost a race for the generated id; draw the next one
			continue
		}
		return err
	}
}

// insertableLocked checks manager liveness and id freedom; the caller
// holds sh.mu, which makes the checks atomic with the insert.
func (m *Manager) insertableLocked(sh *shard, id string) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if _, live := sh.live[id]; live {
		return fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	if _, ok, err := m.mapCorrupt(id)(m.store.Load(id)); err != nil {
		return fmt.Errorf("%w: %v", ErrStore, err)
	} else if ok {
		return fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	return nil
}

// openable is the cheap pre-construction screen of an open request:
// manager liveness, the id being free and the cap having room. Nothing
// is reserved — the insert re-checks under the shard lock.
func (m *Manager) openable(id string) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if id != "" {
		sh := m.shardFor(id)
		sh.mu.Lock()
		err := m.insertableLocked(sh, id)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if n := m.liveN.Load(); n >= int64(m.opts.MaxSessions) {
		return fmt.Errorf("%w (%d live)", ErrSessionLimit, n)
	}
	return nil
}

// unlink removes a session from its shard if it is still the linked one,
// releasing its cap slot exactly once.
func (m *Manager) unlink(ls *liveSession) {
	sh := m.shardFor(ls.id)
	sh.mu.Lock()
	if sh.live[ls.id] == ls {
		delete(sh.live, ls.id)
		m.liveN.Add(-1)
		m.stripeFor(ls.id).live.Add(-1)
	}
	sh.mu.Unlock()
}

// deadlineErr converts a context's end into the package's sentinel: a
// timed-out or canceled push answers ErrDeadline (the slot was never
// fed, so the caller can retry).
func deadlineErr(ctx context.Context) error {
	return fmt.Errorf("%w: %v", ErrDeadline, context.Cause(ctx))
}

// loadCtx is store.Load bounded by ctx: when ctx can end, the load
// runs on its own goroutine and a wedged store turns into a clean
// ErrDeadline instead of an unbounded stall (the goroutine drains into
// a buffered channel whenever the store does return).
func (m *Manager) loadCtx(ctx context.Context, id string) (*Snapshot, bool, error) {
	if ctx.Done() == nil {
		return m.mapCorrupt(id)(m.store.Load(id))
	}
	type loadResult struct {
		snap *Snapshot
		ok   bool
		err  error
	}
	ch := make(chan loadResult, 1)
	go func() {
		snap, ok, err := m.store.Load(id)
		ch <- loadResult{snap, ok, err}
	}()
	select {
	case r := <-ch:
		return m.mapCorrupt(id)(r.snap, r.ok, r.err)
	case <-ctx.Done():
		return nil, false, deadlineErr(ctx)
	}
}

// mapCorrupt converts a quarantined-snapshot load (ErrSnapshotCorrupt)
// into a clean miss: the store already moved the file aside, so the id
// reads as unknown — a 404, not a wedged 5xx — and the event is counted
// once on the id's stripe.
func (m *Manager) mapCorrupt(id string) func(*Snapshot, bool, error) (*Snapshot, bool, error) {
	return func(snap *Snapshot, ok bool, err error) (*Snapshot, bool, error) {
		if err != nil && errors.Is(err, ErrSnapshotCorrupt) {
			m.stripeFor(id).snapCorrupt.Add(1)
			return nil, false, nil
		}
		return snap, ok, err
	}
}

// lockSessionCtx takes ls.mu, bounded by ctx. Without a deadline it is
// a plain Lock; with one it polls TryLock on a doubling timer (100µs
// up to 2ms), trading strict FIFO hand-off for interruptibility — a
// session wedged by a slow algorithm step turns into ErrDeadline for
// the waiters instead of an unbounded queue.
func lockSessionCtx(ctx context.Context, ls *liveSession) error {
	if ls.mu.TryLock() {
		return nil
	}
	if ctx.Done() == nil {
		ls.mu.Lock()
		return nil
	}
	wait := 100 * time.Microsecond
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return deadlineErr(ctx)
		case <-timer.C:
		}
		if ls.mu.TryLock() {
			return nil
		}
		if wait < 2*time.Millisecond {
			wait *= 2
		}
		timer.Reset(wait)
	}
}

// acquire returns the live session for id, transparently resuming it from
// the snapshot store when it was evicted. The returned session may be
// marked gone by a concurrent evict/delete between return and the
// caller's lock; callers loop on that. ctx bounds the store reads of a
// resume (the session-lock wait is bounded separately, in
// withSessionCtx).
func (m *Manager) acquire(ctx context.Context, id string) (*liveSession, error) {
	// Ids that could never have been opened are 404s before they reach
	// the store: a DirStore uses the id as a file name, so URL-supplied
	// ids like "../backup" must never get that far.
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	if m.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	if ls, ok := sh.live[id]; ok {
		sh.mu.Unlock()
		return ls, nil
	}
	// Reserve a cap slot for the resume.
	if m.liveN.Add(1) > int64(m.opts.MaxSessions) {
		m.liveN.Add(-1)
		sh.mu.Unlock()
		// Unknown ids must stay 404s even at the cap: only a session that
		// exists (snapshotted) and cannot be resumed is a capacity problem.
		if _, ok, err := m.loadCtx(ctx, id); err != nil {
			return nil, storeErr(err)
		} else if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
		}
		return nil, fmt.Errorf("%w (%d live; cannot resume %q)", ErrSessionLimit, m.opts.MaxSessions, id)
	}
	// Reserve the id with a placeholder whose lock is held for the whole
	// resume: concurrent pushers queue on it instead of racing a second
	// replay of the same log.
	ls := &liveSession{id: id}
	ls.mu.Lock()
	sh.live[id] = ls
	m.stripeFor(id).live.Add(1)
	sh.mu.Unlock()

	sess, snap, types, err := m.resumeFromStore(ctx, id)
	if err != nil {
		ls.gone = true
		ls.mu.Unlock()
		m.unlink(ls)
		return nil, err
	}
	ls.alg = snap.Checkpoint.Alg
	if spec, ok := engine.LookupAlgorithm(ls.alg); ok {
		ls.alg = spec.Key
	}
	ls.fleet = snap.Fleet
	ls.types = types
	ls.sess = sess
	ls.bucket = m.newSessionBucket()
	ls.lastUsed = m.nowFn()
	// Attach the session's WAL and replay any delta it holds beyond the
	// snapshot — slots that were acknowledged after the last save. A
	// header mismatch (stale incarnation) already dropped the records
	// inside Open; a torn tail was truncated and is counted here.
	stats, werr := m.attachWAL(ls, false)
	if werr != nil {
		ls.gone = true
		ls.mu.Unlock()
		m.unlink(ls)
		return nil, fmt.Errorf("%w: wal: %v", ErrStore, werr)
	}
	if stats.Torn {
		m.stripeFor(id).walTorn.Add(1)
	}
	replayWALLocked(ls, stats.Records)
	ls.mu.Unlock()
	m.stripeFor(id).resumed.Add(1)
	return ls, nil
}

// storeErr wraps a store failure in ErrStore — except a deadline that
// fired during the store call, which stays ErrDeadline (the caller's
// timeout, not the store's fault; it must keep its 504 and its
// safe-to-retry meaning).
func storeErr(err error) error {
	if errors.Is(err, ErrDeadline) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrStore, err)
}

// resumeFromStore loads and replays a snapshot.
func (m *Manager) resumeFromStore(ctx context.Context, id string) (*stream.Session, *Snapshot, []model.ServerType, error) {
	snap, ok, err := m.loadCtx(ctx, id)
	if err != nil {
		return nil, nil, nil, storeErr(err)
	}
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if snap.Checkpoint == nil {
		return nil, nil, nil, fmt.Errorf("%w: snapshot %q has no checkpoint", ErrStore, id)
	}
	types, err := snap.Fleet.Resolve()
	if err != nil {
		return nil, nil, nil, err
	}
	sess, err := engine.ResumeSession(snap.Checkpoint, types, m.streamOpts())
	if err != nil {
		return nil, nil, nil, err
	}
	return sess, snap, types, nil
}

// withSession runs fn with the session's lock held, transparently
// resuming evicted sessions and re-acquiring when a concurrent
// evict/delete marked the pointer gone between acquire and lock.
func (m *Manager) withSession(id string, fn func(ls *liveSession)) error {
	return m.withSessionCtx(context.Background(), id, fn)
}

// withSessionCtx is withSession bounded by ctx: the resume's store
// reads and the session-lock wait both end in ErrDeadline when ctx
// does. fn itself is never interrupted — once the lock is held the
// work runs to completion, so a timeout can only land before any state
// changed.
func (m *Manager) withSessionCtx(ctx context.Context, id string, fn func(ls *liveSession)) error {
	for {
		ls, err := m.acquire(ctx, id)
		if err != nil {
			return err
		}
		if err := lockSessionCtx(ctx, ls); err != nil {
			return err
		}
		if ls.gone {
			ls.mu.Unlock()
			continue
		}
		fn(ls)
		ls.mu.Unlock()
		return nil
	}
}

// pushContext applies the configured push deadline on top of the
// caller's context; the second return is nil when there is nothing to
// cancel (no deadline configured).
func (m *Manager) pushContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if m.opts.PushDeadline <= 0 {
		return ctx, nil
	}
	return context.WithTimeout(ctx, m.opts.PushDeadline)
}

// pushLocked feeds one slot to a held session, classifying the error.
// With a WAL attached the slot is appended (and made as durable as the
// sync policy promises) before the algorithm sees it: an append or sync
// failure fails the push with nothing fed, and the frame was rolled back
// — a retry appends the same slot index afresh, so replay never sees a
// failed push's payload shadowing an acknowledged one. If the rollback
// itself could not truncate, the log is sticky-broken and every later
// push fails rather than risking an inconsistent tail. Slots the
// algorithm then rejects (validation) stay in the log as orphans; replay
// skips them the same way the live path did.
func (m *Manager) pushLocked(ls *liveSession, met *counterStripe, req PushRequest, res *PushResult) error {
	if ls.wal != nil && ls.sess.Err() == nil {
		synced, werr := ls.wal.Append(wal.Record{T: ls.sess.Fed() + 1, Lambda: req.Lambda, Counts: req.Counts})
		if werr != nil {
			return fmt.Errorf("%w: wal: %v", ErrStore, werr)
		}
		met.walAppends.Add(1)
		if synced {
			met.walFsyncs.Add(1)
		}
	}
	adv := &stream.Advisory{}
	decided, perr := ls.sess.Push(model.SlotInput{Lambda: req.Lambda, Counts: req.Counts}, adv)
	if perr != nil {
		if ls.sess.Err() != nil {
			return fmt.Errorf("%w: %v", ErrSessionFailed, perr)
		}
		return fmt.Errorf("%w: %v", ErrBadSlot, perr)
	}
	res.Decided = decided
	if decided {
		res.Advisory = adv
		m.publishLocked(ls, adv)
	}
	return nil
}

// Push feeds one slot to the session, resuming it from the store first if
// it was evicted. Pushes to the same session are serialized in arrival
// order; pushes to different sessions run concurrently.
func (m *Manager) Push(id string, req PushRequest) (PushResult, error) {
	return m.PushCtx(context.Background(), id, req)
}

// PushCtx is Push under a caller context plus the configured
// Options.PushDeadline: admission (global rate, in-flight budget,
// per-session rate) runs first and sheds with ErrThrottled /
// ErrOverloaded carrying a Retry-After; past admission, the lock wait
// and any store resume are bounded and time out with ErrDeadline
// having fed nothing.
func (m *Manager) PushCtx(ctx context.Context, id string, req PushRequest) (PushResult, error) {
	start := m.nowFn()
	met := m.stripeFor(id)
	if err := m.admitPush(met, start, 1); err != nil {
		return PushResult{}, err
	}
	defer m.releasePush()
	ctx, cancel := m.pushContext(ctx)
	if cancel != nil {
		defer cancel()
	}
	var res PushResult
	var perr error
	err := m.withSessionCtx(ctx, id, func(ls *liveSession) {
		now := m.nowFn()
		if perr = m.admitSession(ls, met, now, 1); perr != nil {
			return
		}
		if ctx.Err() != nil {
			// The deadline passed while waiting for the lock; nothing
			// has been fed, so answer the clean timeout.
			perr = deadlineErr(ctx)
			return
		}
		perr = m.pushLocked(ls, met, req, &res)
		ls.lastUsed = m.nowFn()
	})
	if err == nil {
		err = perr
	}
	if err != nil {
		return PushResult{}, m.countPushErr(met, err)
	}
	met.pushes.Add(1)
	met.observe(m.nowFn().Sub(start))
	return res, nil
}

// countPushErr files a failed push under the right counter: admission
// denies were already counted as shed, deadlines count as timeouts,
// everything else is a push error.
func (m *Manager) countPushErr(met *counterStripe, err error) error {
	switch {
	case shedErr(err):
		// already counted by admitPush/admitSession
	case errors.Is(err, ErrDeadline):
		met.timeout.Add(1)
	default:
		met.pushErr.Add(1)
	}
	return err
}

// PushBatch feeds a run of slots to the session under one acquire and
// one session-lock hold, with one latency observation for the whole
// batch — the amortized counterpart of repeated Push calls with
// identical per-slot semantics. On a per-slot error the results of the
// slots committed before it are returned alongside the error; the
// failing slot and everything after it are not fed (exactly as if the
// same slots had been pushed one by one). An empty batch feeds nothing
// but still validates the session — unknown ids and a closed manager
// answer the same errors any push would.
func (m *Manager) PushBatch(id string, reqs []PushRequest) ([]PushResult, error) {
	return m.PushBatchCtx(context.Background(), id, reqs)
}

// PushBatchCtx is PushBatch under a caller context plus the configured
// Options.PushDeadline. A batch of n slots charges n admission tokens
// but occupies one in-flight slot. The deadline is checked before the
// first slot only: once feeding starts the batch runs to completion,
// so an ErrDeadline always means nothing was committed and the whole
// batch is safe to retry.
func (m *Manager) PushBatchCtx(ctx context.Context, id string, reqs []PushRequest) ([]PushResult, error) {
	start := m.nowFn()
	met := m.stripeFor(id)
	if err := m.admitPush(met, start, len(reqs)); err != nil {
		return nil, err
	}
	defer m.releasePush()
	ctx, cancel := m.pushContext(ctx)
	if cancel != nil {
		defer cancel()
	}
	out := make([]PushResult, 0, len(reqs))
	var perr error
	err := m.withSessionCtx(ctx, id, func(ls *liveSession) {
		now := m.nowFn()
		if perr = m.admitSession(ls, met, now, len(reqs)); perr != nil {
			return
		}
		if ctx.Err() != nil {
			perr = deadlineErr(ctx)
			return
		}
		for i := range reqs {
			var res PushResult
			if perr = m.pushLocked(ls, met, reqs[i], &res); perr != nil {
				break
			}
			out = append(out, res)
		}
		ls.lastUsed = m.nowFn()
	})
	if err != nil {
		return nil, m.countPushErr(met, err)
	}
	met.pushes.Add(uint64(len(out)))
	if perr != nil {
		return out, m.countPushErr(met, perr)
	}
	if len(reqs) > 0 {
		met.observe(m.nowFn().Sub(start))
	}
	return out, nil
}

// Info reports a session's state, transparently resuming it if evicted.
func (m *Manager) Info(id string) (SessionInfo, error) {
	var info SessionInfo
	err := m.withSession(id, func(ls *liveSession) {
		info = ls.infoLocked()
	})
	if err != nil {
		return SessionInfo{}, err
	}
	return info, nil
}

// Checkpoint snapshots the session's replay log, persists it to the store
// and returns it. The session stays live. The save runs under the
// session lock, like eviction's: all store writes for a live session are
// serialized, so a slow checkpoint save can never land after (and
// clobber) a newer eviction snapshot — the chaos suite's torn-write
// injection turns that interleaving into silently lost slots. The save
// is not retried: the client asked for exactly one write and owns the
// retry decision.
func (m *Manager) Checkpoint(id string) (*Snapshot, error) {
	var snap *Snapshot
	var serr error
	err := m.withSession(id, func(ls *liveSession) {
		snap = &Snapshot{ID: ls.id, Fleet: ls.fleet, Checkpoint: ls.sess.Checkpoint()}
		serr = m.store.Save(snap)
		if serr == nil {
			ls.compactWALLocked()
		}
	})
	if err != nil {
		return nil, err
	}
	if serr != nil {
		return nil, fmt.Errorf("%w: %v", ErrStore, serr)
	}
	return snap, nil
}

// Delete ends a session: a live one is closed (semi-online algorithms
// flush their buffered advisories), and its snapshot — live or not — is
// removed from the store. The id becomes unknown afterwards.
func (m *Manager) Delete(id string) (*CloseResult, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	sh := m.shardFor(id)
	for {
		sh.mu.Lock()
		ls, live := sh.live[id]
		sh.mu.Unlock()
		if !live {
			return m.deleteSnapshot(id)
		}
		ls.mu.Lock()
		if ls.gone {
			ls.mu.Unlock()
			continue
		}
		advs, cerr := ls.sess.Close()
		// Subscribers get the flushed semi-online tail — the same
		// advisories the delete response carries — before the stream ends.
		for i := range advs {
			m.publishLocked(ls, &advs[i])
		}
		info := ls.infoLocked()
		ls.gone = true
		ls.closeWALLocked()
		m.closeSubsLocked(ls, StreamEndDeleted)
		ls.mu.Unlock()

		m.unlink(ls)
		if err := m.store.Delete(id); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStore, err)
		}
		m.removeWAL(id)
		m.stripeFor(id).deleted.Add(1)
		if cerr != nil {
			return nil, fmt.Errorf("%w: %v", ErrSessionFailed, cerr)
		}
		return &CloseResult{Advisories: advs, Info: info}, nil
	}
}

// deleteSnapshot removes an evicted session without replaying it; a
// semi-online tail (if any) is discarded with it.
func (m *Manager) deleteSnapshot(id string) (*CloseResult, error) {
	snap, ok, err := m.mapCorrupt(id)(m.store.Load(id))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if err := m.store.Delete(id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	m.removeWAL(id)
	m.stripeFor(id).deleted.Add(1)
	info := SessionInfo{ID: id}
	if snap.Checkpoint != nil {
		info.Alg = snap.Checkpoint.Alg
		info.Fed = len(snap.Checkpoint.Slots)
	}
	return &CloseResult{Info: info}, nil
}

// saveWithRetry writes snap to the store, retrying transient failures
// with capped exponential backoff (Options.StoreRetries / StoreBackoff /
// StoreBackoffCap). Each retry bumps the id's StoreRetries counter. The
// eviction and shutdown paths use it — a flaky store should cost
// latency, not sessions. Checkpoint does not: the client asked for
// exactly one write and owns the retry decision.
func (m *Manager) saveWithRetry(snap *Snapshot) error {
	err := m.store.Save(snap)
	if err == nil || m.opts.StoreRetries < 0 {
		return err
	}
	backoff := m.opts.StoreBackoff
	for attempt := 0; attempt < m.opts.StoreRetries; attempt++ {
		m.stripeFor(snap.ID).retries.Add(1)
		m.sleepFn(backoff)
		if backoff *= 2; backoff > m.opts.StoreBackoffCap {
			backoff = m.opts.StoreBackoffCap
		}
		if err = m.store.Save(snap); err == nil {
			return nil
		}
	}
	return err
}

// evictHoldingBoth completes an eviction of a session the caller holds
// both sh.mu and ls.mu on (ls.mu via TryLock). It releases sh.mu before
// the store write — the write runs under ls.mu alone, serialized against
// pushes to this session but never stalling the registry or other
// sessions — then marks the session gone and unlinks it. Both locks are
// released on return. A failed save (after retries) leaves the session
// live and untouched: the checkpoint may be stale or torn in the store,
// but the resident session still shadows it and the next eviction
// attempt overwrites it.
func (m *Manager) evictHoldingBoth(sh *shard, ls *liveSession) error {
	snap := &Snapshot{ID: ls.id, Fleet: ls.fleet, Checkpoint: ls.sess.Checkpoint()}
	sh.mu.Unlock()
	err := m.saveWithRetry(snap)
	if err == nil {
		ls.gone = true
		ls.compactWALLocked()
		ls.closeWALLocked()
		m.closeSubsLocked(ls, StreamEndEvicted)
	}
	ls.mu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	m.unlink(ls)
	m.stripeFor(ls.id).evicted.Add(1)
	return nil
}

// evictable reports whether a session the caller holds ls.mu on may be
// checkpoint-evicted. Sessions with a sticky algorithm failure are not:
// their checkpoint only replays the good prefix, so an eviction would
// silently erase the failure state a client just observed — they stay
// resident until deleted.
func (ls *liveSession) evictable() bool {
	return !ls.gone && ls.sess != nil && ls.sess.Err() == nil
}

// Evict checkpoints one live session to the store and releases its
// resident state; the next push resumes it transparently. A session
// mid-push is not evictable (ErrBusy), and neither is a failed one
// (ErrSessionFailed) — delete those instead.
func (m *Manager) Evict(id string) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	ls, ok := sh.live[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if !ls.mu.TryLock() {
		sh.mu.Unlock()
		return ErrBusy
	}
	if !ls.evictable() {
		failed := ls.sess != nil && ls.sess.Err() != nil
		ls.mu.Unlock()
		sh.mu.Unlock()
		if failed {
			return fmt.Errorf("%w: evicting would drop the failure state; delete the session instead", ErrSessionFailed)
		}
		return ErrBusy
	}
	return m.evictHoldingBoth(sh, ls) // releases both locks
}

// EvictIdle evicts every live session whose last activity is at least
// olderThan ago and that is not mid-push or failed, returning how many
// went. The daemon's janitor calls this periodically, walking the shards
// one at a time; EvictIdle(0) empties the manager of idle healthy
// sessions.
func (m *Manager) EvictIdle(olderThan time.Duration) (int, error) {
	cutoff := m.nowFn().Add(-olderThan)

	evicted := 0
	var firstErr error
	var cands []*liveSession
	for i := range m.shards {
		sh := &m.shards[i]

		// Collect candidates under the shard lock, then evict one by one,
		// re-validating each: the store writes must not run under sh.mu.
		sh.mu.Lock()
		cands = cands[:0]
		for _, ls := range sh.live {
			if !ls.mu.TryLock() {
				continue // mid-push: by definition not idle
			}
			if ls.evictable() && !ls.lastUsed.After(cutoff) {
				cands = append(cands, ls)
			}
			ls.mu.Unlock()
		}
		sh.mu.Unlock()

		for _, ls := range cands {
			sh.mu.Lock()
			if sh.live[ls.id] != ls {
				sh.mu.Unlock()
				continue // deleted or already evicted since collection
			}
			if !ls.mu.TryLock() {
				sh.mu.Unlock()
				continue
			}
			if !ls.evictable() || ls.lastUsed.After(cutoff) {
				ls.mu.Unlock()
				sh.mu.Unlock()
				continue // touched since collection
			}
			if err := m.evictHoldingBoth(sh, ls); err != nil { // releases both locks
				if firstErr == nil {
					firstErr = err
				}
			} else {
				evicted++
			}
		}
	}
	return evicted, firstErr
}

// Sessions lists the live session ids (sorted by the caller if needed);
// snapshotted sessions are not enumerated — stores are keyed, not
// scanned.
func (m *Manager) Sessions() []SessionInfo {
	var live []*liveSession
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, ls := range sh.live {
			live = append(live, ls)
		}
		sh.mu.Unlock()
	}
	out := make([]SessionInfo, 0, len(live))
	for _, ls := range live {
		ls.mu.Lock()
		if !ls.gone && ls.sess != nil {
			out = append(out, ls.infoLocked())
		}
		ls.mu.Unlock()
	}
	return out
}

// Metrics snapshots the aggregate counters, merging per-shard state (the
// live count is the cross-shard resident total, placeholders included).
func (m *Manager) Metrics() Metrics {
	return m.met.snapshot(int(m.liveN.Load()))
}

// Close shuts the manager down: new requests fail with ErrClosed,
// in-flight pushes finish, and every live session is checkpointed to the
// store (so a durable store resumes them after a restart).
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		live := make([]*liveSession, 0, len(sh.live))
		for _, ls := range sh.live {
			live = append(live, ls)
		}
		sh.mu.Unlock()

		for _, ls := range live {
			ls.mu.Lock() // blocks until any in-flight push completes
			if !ls.gone && ls.sess != nil {
				snap := &Snapshot{ID: ls.id, Fleet: ls.fleet, Checkpoint: ls.sess.Checkpoint()}
				if err := m.saveWithRetry(snap); err == nil {
					ls.compactWALLocked()
				} else if firstErr == nil {
					firstErr = fmt.Errorf("%w: %v", ErrStore, err)
				}
				ls.gone = true
			}
			ls.closeWALLocked()
			m.closeSubsLocked(ls, StreamEndDrain)
			ls.mu.Unlock()
			m.unlink(ls)
		}
	}
	return firstErr
}

// sameAlgorithm reports whether two spellings resolve to the same
// registry entry.
func sameAlgorithm(a, b string) bool {
	sa, oka := engine.LookupAlgorithm(a)
	sb, okb := engine.LookupAlgorithm(b)
	return oka && okb && sa.Key == sb.Key
}
