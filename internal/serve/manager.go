// Package serve multiplexes many live advisory sessions behind one
// long-running service: the serving layer over the streaming core
// (internal/stream) and the algorithm registry (internal/engine).
//
// A Manager owns a bounded set of named sessions. Pushes to one session
// are serialized by a per-session lock while different sessions proceed
// concurrently; the session registry itself is guarded by a manager lock
// that is never held across algorithm work. Idle sessions are evicted to
// a pluggable SnapshotStore in stream.Checkpoint's portable form and are
// transparently resumed by the next push — callers cannot tell eviction
// happened except through the aggregate counters.
//
// Lock ordering: the manager lock may be taken first and a session lock
// second only without blocking (TryLock, or a freshly created session's
// lock); a session lock is never held while the manager lock is taken.
// That discipline makes the two-level scheme deadlock-free: slow
// algorithm steps on one session never stall the registry or other
// sessions.
package serve

import (
	"errors"
	"fmt"
	"time"

	"sync"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stream"
)

// Sentinel errors; the HTTP layer maps them onto status codes.
var (
	ErrUnknownSession = errors.New("serve: unknown session")
	ErrSessionExists  = errors.New("serve: session id already in use")
	ErrSessionLimit   = errors.New("serve: live session limit reached")
	ErrSessionFailed  = errors.New("serve: session algorithm failed")
	ErrBadSlot        = errors.New("serve: slot rejected")
	ErrBusy           = errors.New("serve: session is busy")
	ErrClosed         = errors.New("serve: manager is shut down")
	ErrStore          = errors.New("serve: snapshot store")
)

// Options tunes a Manager. The zero value serves with defaults: 256 live
// sessions, an in-memory snapshot store and serial trackers.
type Options struct {
	// MaxSessions bounds the live (in-memory) session set; <= 0 means 256.
	// Snapshotted sessions do not count: the bound is on resident
	// algorithm state, not on session identities.
	MaxSessions int
	// Store receives evicted sessions; nil means a fresh MemStore.
	Store SnapshotStore
	// Workers is plumbed into each session's solver trackers
	// (stream.Options.Workers).
	Workers int
}

// OpenRequest describes a session to open. It doubles as the POST
// /v1/sessions wire format.
type OpenRequest struct {
	// ID optionally names the session (URL- and file-safe, <= 64 chars);
	// empty means the manager assigns one.
	ID string `json:"id,omitempty"`
	// Alg names the algorithm (registry lookup, spelling-tolerant). May be
	// empty when Checkpoint carries the algorithm.
	Alg string `json:"alg,omitempty"`
	// Fleet is the session's fleet template.
	Fleet FleetJSON `json:"fleet"`
	// Checkpoint, when non-nil, opens the session by replaying a
	// client-held checkpoint instead of starting fresh.
	Checkpoint *stream.Checkpoint `json:"checkpoint,omitempty"`
}

// PushRequest is one slot for a session. It doubles as the POST
// /v1/sessions/{id}/push wire format.
type PushRequest struct {
	// Lambda is the slot's job volume.
	Lambda float64 `json:"lambda"`
	// Counts optionally overrides the fleet sizes for this slot
	// (time-varying data centers, Section 4.3).
	Counts []int `json:"counts,omitempty"`
}

// PushResult is a push's outcome: Decided reports whether the slot
// unlocked an advisory (semi-online algorithms buffer their lookahead
// window first).
type PushResult struct {
	Decided  bool             `json:"decided"`
	Advisory *stream.Advisory `json:"advisory,omitempty"`
}

// SessionInfo is a session's externally visible state.
type SessionInfo struct {
	ID      string  `json:"id"`
	Alg     string  `json:"alg"`  // registry key
	Name    string  `json:"name"` // algorithm display name
	Fed     int     `json:"fed"`
	Decided int     `json:"decided"`
	Pending int     `json:"pending,omitempty"`
	CumCost float64 `json:"cum_cost"`
	// Failed carries the session's sticky algorithm failure, if any.
	Failed string `json:"failed,omitempty"`
}

// CloseResult is a deleted session's final word: the advisories flushed
// by semi-online algorithms (empty for fully online ones and for
// snapshot-only deletions) and the closing state.
type CloseResult struct {
	Advisories []stream.Advisory `json:"advisories,omitempty"`
	Info       SessionInfo       `json:"info"`
}

// liveSession is one resident session. mu serializes all access to the
// session and doubles as the push queue; gone marks a session that was
// evicted or deleted after a waiter obtained the pointer — waiters
// re-acquire through the manager.
type liveSession struct {
	id    string
	alg   string // registry key
	fleet FleetJSON
	types []model.ServerType

	mu       sync.Mutex
	sess     *stream.Session
	lastUsed time.Time
	gone     bool
}

// infoLocked snapshots the session's state; callers hold ls.mu.
func (ls *liveSession) infoLocked() SessionInfo {
	info := SessionInfo{
		ID:      ls.id,
		Alg:     ls.alg,
		Name:    ls.sess.Name(),
		Fed:     ls.sess.Fed(),
		Decided: ls.sess.Decided(),
		Pending: ls.sess.Fed() - ls.sess.Decided(),
		CumCost: ls.sess.CumCost(),
	}
	if err := ls.sess.Err(); err != nil {
		info.Failed = err.Error()
	}
	return info
}

// Manager multiplexes live advisory sessions. All methods are safe for
// concurrent use.
type Manager struct {
	opts  Options
	store SnapshotStore
	nowFn func() time.Time // test hook

	mu     sync.Mutex
	live   map[string]*liveSession
	seq    int
	closed bool

	met counters
}

// NewManager prepares a session manager.
func NewManager(opts Options) *Manager {
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 256
	}
	return &Manager{
		opts:  opts,
		store: opts.Store,
		nowFn: time.Now,
		live:  map[string]*liveSession{},
	}
}

func (m *Manager) streamOpts() stream.Options {
	return stream.Options{Workers: m.opts.Workers}
}

// Open creates (or, with a checkpoint, replays) a session. The algorithm
// resolves through the registry and the fleet through the descriptor; the
// new session counts against MaxSessions immediately.
func (m *Manager) Open(req OpenRequest) (SessionInfo, error) {
	if req.ID != "" && !validID(req.ID) {
		return SessionInfo{}, fmt.Errorf("serve: invalid session id %q (want <= 64 chars of [a-zA-Z0-9._-], no leading dot)", req.ID)
	}
	// Reject cheaply before constructing anything: a full manager, a
	// taken id or a closed manager must not cost a checkpoint replay.
	// The same checks re-run under the lock before the insert below.
	m.mu.Lock()
	err := m.openableLocked(req.ID)
	m.mu.Unlock()
	if err != nil {
		return SessionInfo{}, err
	}

	types, err := req.Fleet.Resolve()
	if err != nil {
		return SessionInfo{}, err
	}

	alg := req.Alg
	var sess *stream.Session
	if cp := req.Checkpoint; cp != nil {
		if alg != "" && !sameAlgorithm(alg, cp.Alg) {
			return SessionInfo{}, fmt.Errorf("serve: request algorithm %q conflicts with checkpoint algorithm %q", alg, cp.Alg)
		}
		alg = cp.Alg
		sess, err = engine.ResumeSession(cp, types, m.streamOpts())
	} else {
		if alg == "" {
			return SessionInfo{}, fmt.Errorf("serve: open request names no algorithm")
		}
		sess, err = engine.OpenSession(alg, types, m.streamOpts())
	}
	if err != nil {
		return SessionInfo{}, err
	}
	if spec, ok := engine.LookupAlgorithm(alg); ok {
		alg = spec.Key
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.openableLocked(req.ID); err != nil {
		return SessionInfo{}, err
	}
	id := req.ID
	if id == "" {
		id, err = m.genIDLocked()
		if err != nil {
			return SessionInfo{}, err
		}
	}
	ls := &liveSession{
		id: id, alg: alg, fleet: req.Fleet, types: types,
		sess: sess, lastUsed: m.nowFn(),
	}
	m.live[id] = ls
	m.met.opened.Add(1)
	return ls.infoLocked(), nil
}

// openableLocked checks everything about an open request that does not
// require the session to exist yet: manager liveness, the id being free
// and a slot under the cap.
func (m *Manager) openableLocked(id string) error {
	if m.closed {
		return ErrClosed
	}
	if id != "" {
		if taken, err := m.idTakenLocked(id); err != nil {
			return err
		} else if taken {
			return fmt.Errorf("%w: %q", ErrSessionExists, id)
		}
	}
	if len(m.live) >= m.opts.MaxSessions {
		return fmt.Errorf("%w (%d live)", ErrSessionLimit, len(m.live))
	}
	return nil
}

// idTakenLocked reports whether an id is in use, live or snapshotted.
func (m *Manager) idTakenLocked(id string) (bool, error) {
	if _, live := m.live[id]; live {
		return true, nil
	}
	_, ok, err := m.store.Load(id)
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrStore, err)
	}
	return ok, nil
}

// genIDLocked assigns the next free generated id.
func (m *Manager) genIDLocked() (string, error) {
	for {
		m.seq++
		id := fmt.Sprintf("s-%06d", m.seq)
		taken, err := m.idTakenLocked(id)
		if err != nil {
			return "", err
		}
		if !taken {
			return id, nil
		}
	}
}

// acquire returns the live session for id, transparently resuming it from
// the snapshot store when it was evicted. The returned session may be
// marked gone by a concurrent evict/delete between return and the
// caller's lock; callers loop on that.
func (m *Manager) acquire(id string) (*liveSession, error) {
	// Ids that could never have been opened are 404s before they reach
	// the store: a DirStore uses the id as a file name, so URL-supplied
	// ids like "../backup" must never get that far.
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if ls, ok := m.live[id]; ok {
		m.mu.Unlock()
		return ls, nil
	}
	if len(m.live) >= m.opts.MaxSessions {
		m.mu.Unlock()
		// Unknown ids must stay 404s even at the cap: only a session that
		// exists (snapshotted) and cannot be resumed is a capacity problem.
		if _, ok, err := m.store.Load(id); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStore, err)
		} else if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
		}
		return nil, fmt.Errorf("%w (%d live; cannot resume %q)", ErrSessionLimit, m.opts.MaxSessions, id)
	}
	// Reserve the id with a placeholder whose lock is held for the whole
	// resume: concurrent pushers queue on it instead of racing a second
	// replay of the same log.
	ls := &liveSession{id: id}
	ls.mu.Lock()
	m.live[id] = ls
	m.mu.Unlock()

	sess, snap, types, err := m.resumeFromStore(id)
	if err != nil {
		ls.gone = true
		ls.mu.Unlock()
		m.mu.Lock()
		if m.live[id] == ls {
			delete(m.live, id)
		}
		m.mu.Unlock()
		return nil, err
	}
	ls.alg = snap.Checkpoint.Alg
	if spec, ok := engine.LookupAlgorithm(ls.alg); ok {
		ls.alg = spec.Key
	}
	ls.fleet = snap.Fleet
	ls.types = types
	ls.sess = sess
	ls.lastUsed = m.nowFn()
	ls.mu.Unlock()
	m.met.resumed.Add(1)
	return ls, nil
}

// resumeFromStore loads and replays a snapshot.
func (m *Manager) resumeFromStore(id string) (*stream.Session, *Snapshot, []model.ServerType, error) {
	snap, ok, err := m.store.Load(id)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if snap.Checkpoint == nil {
		return nil, nil, nil, fmt.Errorf("%w: snapshot %q has no checkpoint", ErrStore, id)
	}
	types, err := snap.Fleet.Resolve()
	if err != nil {
		return nil, nil, nil, err
	}
	sess, err := engine.ResumeSession(snap.Checkpoint, types, m.streamOpts())
	if err != nil {
		return nil, nil, nil, err
	}
	return sess, snap, types, nil
}

// Push feeds one slot to the session, resuming it from the store first if
// it was evicted. Pushes to the same session are serialized in arrival
// order; pushes to different sessions run concurrently.
func (m *Manager) Push(id string, req PushRequest) (PushResult, error) {
	start := m.nowFn()
	for {
		ls, err := m.acquire(id)
		if err != nil {
			m.met.pushErr.Add(1)
			return PushResult{}, err
		}
		ls.mu.Lock()
		if ls.gone {
			ls.mu.Unlock()
			continue
		}
		adv := &stream.Advisory{}
		decided, perr := ls.sess.Push(model.SlotInput{Lambda: req.Lambda, Counts: req.Counts}, adv)
		ls.lastUsed = m.nowFn()
		sticky := ls.sess.Err() != nil
		ls.mu.Unlock()
		if perr != nil {
			m.met.pushErr.Add(1)
			if sticky {
				return PushResult{}, fmt.Errorf("%w: %v", ErrSessionFailed, perr)
			}
			return PushResult{}, fmt.Errorf("%w: %v", ErrBadSlot, perr)
		}
		m.met.pushes.Add(1)
		m.met.lat.observe(m.nowFn().Sub(start))
		res := PushResult{Decided: decided}
		if decided {
			res.Advisory = adv
		}
		return res, nil
	}
}

// Info reports a session's state, transparently resuming it if evicted.
func (m *Manager) Info(id string) (SessionInfo, error) {
	for {
		ls, err := m.acquire(id)
		if err != nil {
			return SessionInfo{}, err
		}
		ls.mu.Lock()
		if ls.gone {
			ls.mu.Unlock()
			continue
		}
		info := ls.infoLocked()
		ls.mu.Unlock()
		return info, nil
	}
}

// Checkpoint snapshots the session's replay log, persists it to the store
// and returns it. The session stays live.
func (m *Manager) Checkpoint(id string) (*Snapshot, error) {
	for {
		ls, err := m.acquire(id)
		if err != nil {
			return nil, err
		}
		ls.mu.Lock()
		if ls.gone {
			ls.mu.Unlock()
			continue
		}
		snap := &Snapshot{ID: ls.id, Fleet: ls.fleet, Checkpoint: ls.sess.Checkpoint()}
		ls.mu.Unlock()
		if err := m.store.Save(snap); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStore, err)
		}
		return snap, nil
	}
}

// Delete ends a session: a live one is closed (semi-online algorithms
// flush their buffered advisories), and its snapshot — live or not — is
// removed from the store. The id becomes unknown afterwards.
func (m *Manager) Delete(id string) (*CloseResult, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	for {
		m.mu.Lock()
		ls, live := m.live[id]
		m.mu.Unlock()
		if !live {
			return m.deleteSnapshot(id)
		}
		ls.mu.Lock()
		if ls.gone {
			ls.mu.Unlock()
			continue
		}
		advs, cerr := ls.sess.Close()
		info := ls.infoLocked()
		ls.gone = true
		ls.mu.Unlock()

		m.mu.Lock()
		if m.live[id] == ls {
			delete(m.live, id)
		}
		m.mu.Unlock()
		if err := m.store.Delete(id); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStore, err)
		}
		m.met.deleted.Add(1)
		if cerr != nil {
			return nil, fmt.Errorf("%w: %v", ErrSessionFailed, cerr)
		}
		return &CloseResult{Advisories: advs, Info: info}, nil
	}
}

// deleteSnapshot removes an evicted session without replaying it; a
// semi-online tail (if any) is discarded with it.
func (m *Manager) deleteSnapshot(id string) (*CloseResult, error) {
	snap, ok, err := m.store.Load(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if err := m.store.Delete(id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}
	m.met.deleted.Add(1)
	info := SessionInfo{ID: id}
	if snap.Checkpoint != nil {
		info.Alg = snap.Checkpoint.Alg
		info.Fed = len(snap.Checkpoint.Slots)
	}
	return &CloseResult{Info: info}, nil
}

// evictHoldingBoth completes an eviction of a session the caller holds
// both m.mu and ls.mu on (ls.mu via TryLock). It releases m.mu before
// the store write — the write runs under ls.mu alone, serialized against
// pushes to this session but never stalling the registry or other
// sessions — then marks the session gone and unlinks it. Both locks are
// released on return.
func (m *Manager) evictHoldingBoth(ls *liveSession) error {
	snap := &Snapshot{ID: ls.id, Fleet: ls.fleet, Checkpoint: ls.sess.Checkpoint()}
	m.mu.Unlock()
	err := m.store.Save(snap)
	if err == nil {
		ls.gone = true
	}
	ls.mu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	m.mu.Lock()
	if m.live[ls.id] == ls {
		delete(m.live, ls.id)
	}
	m.mu.Unlock()
	m.met.evicted.Add(1)
	return nil
}

// evictable reports whether a session the caller holds ls.mu on may be
// checkpoint-evicted. Sessions with a sticky algorithm failure are not:
// their checkpoint only replays the good prefix, so an eviction would
// silently erase the failure state a client just observed — they stay
// resident until deleted.
func (ls *liveSession) evictable() bool {
	return !ls.gone && ls.sess != nil && ls.sess.Err() == nil
}

// Evict checkpoints one live session to the store and releases its
// resident state; the next push resumes it transparently. A session
// mid-push is not evictable (ErrBusy), and neither is a failed one
// (ErrSessionFailed) — delete those instead.
func (m *Manager) Evict(id string) error {
	m.mu.Lock()
	ls, ok := m.live[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if !ls.mu.TryLock() {
		m.mu.Unlock()
		return ErrBusy
	}
	if !ls.evictable() {
		failed := ls.sess != nil && ls.sess.Err() != nil
		ls.mu.Unlock()
		m.mu.Unlock()
		if failed {
			return fmt.Errorf("%w: evicting would drop the failure state; delete the session instead", ErrSessionFailed)
		}
		return ErrBusy
	}
	return m.evictHoldingBoth(ls) // releases both locks
}

// EvictIdle evicts every live session whose last activity is at least
// olderThan ago and that is not mid-push or failed, returning how many
// went. The daemon's janitor calls this periodically; EvictIdle(0)
// empties the manager of idle healthy sessions.
func (m *Manager) EvictIdle(olderThan time.Duration) (int, error) {
	cutoff := m.nowFn().Add(-olderThan)

	// Collect candidates under the registry lock, then evict one by one,
	// re-validating each: the store writes must not run under m.mu.
	m.mu.Lock()
	var cands []*liveSession
	for _, ls := range m.live {
		if !ls.mu.TryLock() {
			continue // mid-push: by definition not idle
		}
		if ls.evictable() && !ls.lastUsed.After(cutoff) {
			cands = append(cands, ls)
		}
		ls.mu.Unlock()
	}
	m.mu.Unlock()

	evicted := 0
	var firstErr error
	for _, ls := range cands {
		m.mu.Lock()
		if m.live[ls.id] != ls {
			m.mu.Unlock()
			continue // deleted or already evicted since collection
		}
		if !ls.mu.TryLock() {
			m.mu.Unlock()
			continue
		}
		if !ls.evictable() || ls.lastUsed.After(cutoff) {
			ls.mu.Unlock()
			m.mu.Unlock()
			continue // touched since collection
		}
		if err := m.evictHoldingBoth(ls); err != nil { // releases both locks
			if firstErr == nil {
				firstErr = err
			}
		} else {
			evicted++
		}
	}
	return evicted, firstErr
}

// Sessions lists the live session ids (sorted by the caller if needed);
// snapshotted sessions are not enumerated — stores are keyed, not
// scanned.
func (m *Manager) Sessions() []SessionInfo {
	m.mu.Lock()
	live := make([]*liveSession, 0, len(m.live))
	for _, ls := range m.live {
		live = append(live, ls)
	}
	m.mu.Unlock()
	out := make([]SessionInfo, 0, len(live))
	for _, ls := range live {
		ls.mu.Lock()
		if !ls.gone && ls.sess != nil {
			out = append(out, ls.infoLocked())
		}
		ls.mu.Unlock()
	}
	return out
}

// Metrics snapshots the aggregate counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	live := len(m.live)
	m.mu.Unlock()
	return m.met.snapshot(live)
}

// Close shuts the manager down: new requests fail with ErrClosed,
// in-flight pushes finish, and every live session is checkpointed to the
// store (so a durable store resumes them after a restart).
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	live := make([]*liveSession, 0, len(m.live))
	for _, ls := range m.live {
		live = append(live, ls)
	}
	m.mu.Unlock()

	var firstErr error
	for _, ls := range live {
		ls.mu.Lock() // blocks until any in-flight push completes
		if !ls.gone && ls.sess != nil {
			snap := &Snapshot{ID: ls.id, Fleet: ls.fleet, Checkpoint: ls.sess.Checkpoint()}
			if err := m.store.Save(snap); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%w: %v", ErrStore, err)
			}
			ls.gone = true
		}
		ls.mu.Unlock()
	}
	m.mu.Lock()
	clear(m.live)
	m.mu.Unlock()
	return firstErr
}

// sameAlgorithm reports whether two spellings resolve to the same
// registry entry.
func sameAlgorithm(a, b string) bool {
	sa, oka := engine.LookupAlgorithm(a)
	sb, okb := engine.LookupAlgorithm(b)
	return oka && okb && sa.Key == sb.Key
}
