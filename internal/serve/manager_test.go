package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
)

// quickstartFleet is the standard test fleet descriptor.
func quickstartFleet() FleetJSON { return FleetJSON{Scenario: "quickstart", Seed: 1} }

// quickstartTrace returns the scenario's demand trace.
func quickstartTrace(t testing.TB) []float64 {
	t.Helper()
	sc, ok := engine.Lookup("quickstart")
	if !ok {
		t.Fatal("quickstart scenario missing")
	}
	return sc.Instance(1).Lambda
}

// pushAll feeds trace[from:to] (0-based) to the session.
func pushAll(t testing.TB, m *Manager, id string, trace []float64, from, to int) {
	t.Helper()
	for _, lambda := range trace[from:to] {
		if _, err := m.Push(id, PushRequest{Lambda: lambda}); err != nil {
			t.Fatalf("push to %s: %v", id, err)
		}
	}
}

// The full manager lifecycle: open with a generated id, push, evict,
// transparent resume, and a buffered algorithm's flush on delete — with
// the aggregate counters tracking every transition.
func TestManagerLifecycle(t *testing.T) {
	m := NewManager(Options{})
	trace := quickstartTrace(t)

	info, err := m.Open(OpenRequest{Alg: "RecedingHorizon(w=3)", Fleet: quickstartFleet()})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Alg != "receding-horizon" {
		t.Fatalf("open: %+v", info)
	}
	id := info.ID

	// The 3-slot lookahead buffers the first two pushes.
	for i, wantDecided := range []bool{false, false, true} {
		res, err := m.Push(id, PushRequest{Lambda: trace[i]})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decided != wantDecided {
			t.Fatalf("push %d decided=%v, want %v", i+1, res.Decided, wantDecided)
		}
	}

	// Reference: the same prefix on an uninterrupted manager session.
	ref := NewManager(Options{})
	rinfo, err := ref.Open(OpenRequest{Alg: "receding-horizon", Fleet: quickstartFleet()})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, ref, rinfo.ID, trace, 0, len(trace))

	if err := m.Evict(id); err != nil {
		t.Fatal(err)
	}
	if got := m.Metrics(); got.LiveSessions != 0 || got.SessionsEvicted != 1 {
		t.Fatalf("after evict: %+v", got)
	}

	// The next push transparently resumes from the snapshot.
	pushAll(t, m, id, trace, 3, len(trace))
	if got := m.Metrics(); got.SessionsResumed != 1 {
		t.Fatalf("resume not counted: %+v", got)
	}
	sinfo, err := m.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if sinfo.Fed != len(trace) || sinfo.Pending != 2 {
		t.Fatalf("info after full trace: %+v", sinfo)
	}

	// Delete flushes the two buffered slots and the final state matches
	// the uninterrupted run bit-for-bit.
	closed, err := m.Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(closed.Advisories) != 2 {
		t.Fatalf("flush produced %d advisories, want 2", len(closed.Advisories))
	}
	rclosed, err := ref.Delete(rinfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Info.CumCost != rclosed.Info.CumCost || closed.Info.Decided != rclosed.Info.Decided {
		t.Fatalf("evict/resume changed the outcome: %+v vs %+v", closed.Info, rclosed.Info)
	}
	if _, err := m.Info(id); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("deleted session Info err = %v, want ErrUnknownSession", err)
	}
}

// Idle eviction is driven by last push time under a fake clock; active
// sessions stay resident.
func TestEvictIdle(t *testing.T) {
	m := NewManager(Options{})
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	m.nowFn = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tick := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	trace := quickstartTrace(t)
	for _, id := range []string{"old", "fresh"} {
		if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-a", Fleet: quickstartFleet()}); err != nil {
			t.Fatal(err)
		}
		pushAll(t, m, id, trace, 0, 4)
	}
	tick(10 * time.Minute)
	pushAll(t, m, "fresh", trace, 4, 5)

	n, err := m.EvictIdle(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("evicted %d sessions, want 1 (only the idle one)", n)
	}
	infos := m.Sessions()
	if len(infos) != 1 || infos[0].ID != "fresh" {
		t.Fatalf("live sessions after idle eviction: %+v", infos)
	}
	// The evicted session is still addressable.
	if got, err := m.Info("old"); err != nil || got.Fed != 4 {
		t.Fatalf("Info(old) = %+v, %v", got, err)
	}
}

// A durable store carries sessions across manager restarts: Close
// checkpoints every live session and a fresh manager over the same
// directory resumes them bit-identically.
func TestDirStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	trace := quickstartTrace(t)

	m1 := NewManager(Options{Store: store})
	if _, err := m1.Open(OpenRequest{ID: "durable", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m1, "durable", trace, 0, 7)
	before, err := m1.Info("durable")
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Info("durable"); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed manager Info err = %v, want ErrClosed", err)
	}

	m2 := NewManager(Options{Store: store})
	after, err := m2.Info("durable")
	if err != nil {
		t.Fatal(err)
	}
	if after.Fed != before.Fed || after.CumCost != before.CumCost || after.Alg != "alg-b" {
		t.Fatalf("restart changed the session: %+v vs %+v", after, before)
	}
	// And it keeps streaming.
	pushAll(t, m2, "durable", trace, 7, len(trace))
}

// A client-held checkpoint opens a new session mid-trace (the HTTP resume
// path), continuing exactly where it was taken.
func TestOpenFromClientCheckpoint(t *testing.T) {
	m := NewManager(Options{})
	trace := quickstartTrace(t)

	if _, err := m.Open(OpenRequest{ID: "orig", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "orig", trace, 0, 10)
	snap, err := m.Checkpoint("orig")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete("orig"); err != nil {
		t.Fatal(err)
	}

	// Conflicting algorithm names are rejected; matching spellings pass.
	if _, err := m.Open(OpenRequest{Alg: "alg-a", Fleet: quickstartFleet(), Checkpoint: snap.Checkpoint}); err == nil {
		t.Fatal("conflicting alg + checkpoint must not open")
	}
	info, err := m.Open(OpenRequest{ID: "copy", Alg: "AlgorithmB", Fleet: quickstartFleet(), Checkpoint: snap.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fed != 10 {
		t.Fatalf("checkpoint open fed %d slots, want 10", info.Fed)
	}
	pushAll(t, m, "copy", trace, 10, len(trace))

	// Reference: uninterrupted session.
	if _, err := m.Open(OpenRequest{ID: "ref", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	pushAll(t, m, "ref", trace, 0, len(trace))
	got, _ := m.Info("copy")
	want, _ := m.Info("ref")
	if got.CumCost != want.CumCost || got.Decided != want.Decided {
		t.Fatalf("checkpoint-opened session diverged: %+v vs %+v", got, want)
	}
}

// URL-supplied ids that could never have been opened are 404s before
// they reach the store: a DirStore uses the id as a file name, so
// traversal ids must not read or unlink files outside the snapshot dir.
func TestTraversalIDsRejected(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	outside := filepath.Join(dir, "secret.json")
	planted := []byte(`{"id":"secret","fleet":{"scenario":"quickstart"},"checkpoint":{"alg":"alg-a","slots":[]}}`)
	if err := os.WriteFile(outside, planted, 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Store: store})
	for _, id := range []string{"../secret", "..", "a/b", ".hidden", ""} {
		if _, err := m.Info(id); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("Info(%q) err = %v, want ErrUnknownSession", id, err)
		}
		if _, err := m.Push(id, PushRequest{Lambda: 1}); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("Push(%q) err = %v, want ErrUnknownSession", id, err)
		}
		if _, err := m.Delete(id); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("Delete(%q) err = %v, want ErrUnknownSession", id, err)
		}
	}
	if data, err := os.ReadFile(outside); err != nil || !bytes.Equal(data, planted) {
		t.Fatalf("file outside the snapshot dir was touched: %v", err)
	}
}

// A session with a sticky algorithm failure is never checkpoint-evicted
// (its checkpoint only replays the good prefix, which would silently
// erase the failure a client observed); it stays resident until deleted.
func TestFailedSessionNotEvicted(t *testing.T) {
	m := NewManager(Options{})
	fleet := FleetJSON{Types: []model.ServerTypeJSON{{
		Name: "srv", Count: 1, SwitchCost: 1e-3, MaxLoad: 1,
		Cost: &model.CostFuncJSON{Kind: "constant", C: 1e7},
	}}}
	if _, err := m.Open(OpenRequest{ID: "sick", Alg: "alg-c", Fleet: fleet}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push("sick", PushRequest{Lambda: 0.5}); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("push err = %v, want ErrSessionFailed", err)
	}
	if err := m.Evict("sick"); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("Evict(failed) err = %v, want ErrSessionFailed", err)
	}
	if n, err := m.EvictIdle(0); err != nil || n != 0 {
		t.Fatalf("EvictIdle evicted %d failed sessions (err %v), want 0", n, err)
	}
	info, err := m.Info("sick")
	if err != nil || info.Failed == "" {
		t.Fatalf("failure state lost: %+v, %v", info, err)
	}
	if _, err := m.Delete("sick"); err != nil {
		t.Fatal(err)
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"s-000001":               true,
		"my.session":             true,
		"A_b-C.9":                true,
		"":                       false,
		".hidden":                false,
		"a/b":                    false,
		"a b":                    false,
		"säsión":                 false,
		string(make([]byte, 65)): false,
	} {
		if got := validID(id); got != want {
			t.Errorf("validID(%q) = %v, want %v", id, got, want)
		}
	}
}

// The race-hardening stress test (run with -race in CI): many goroutines
// hammer one manager — concurrent pushes on distinct sessions, chaotic
// eviction, checkpoint reads and metric scrapes — and determinism must
// survive: every session ends with the identical trace fed, so all final
// costs agree bit-for-bit.
func TestServeStress(t *testing.T) {
	const nSessions = 12
	m := NewManager(Options{MaxSessions: nSessions})
	trace := quickstartTrace(t)

	var pushers, chaosWg sync.WaitGroup
	var done atomic.Bool
	errs := make(chan error, 4*nSessions)

	// Chaos: evict whatever is idle, scrape metrics, list sessions.
	chaos := func() {
		defer chaosWg.Done()
		for !done.Load() {
			if _, err := m.EvictIdle(0); err != nil {
				errs <- err
				return
			}
			m.Metrics()
			m.Sessions()
		}
	}
	chaosWg.Add(2)
	go chaos()
	go chaos()

	ids := make([]string, nSessions)
	for i := range ids {
		if i >= 26 {
			t.Fatal("id scheme exhausted")
		}
		ids[i] = string(rune('a'+i)) + "-stress"
	}
	for _, id := range ids {
		pushers.Add(1)
		go func(id string) {
			defer pushers.Done()
			if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
				errs <- err
				return
			}
			for i, lambda := range trace {
				if _, err := m.Push(id, PushRequest{Lambda: lambda}); err != nil {
					errs <- err
					return
				}
				if i%9 == 3 {
					if _, err := m.Checkpoint(id); err != nil {
						errs <- err
						return
					}
				}
				if i%7 == 5 {
					if _, err := m.Info(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(id)
	}

	pushers.Wait()
	done.Store(true)
	chaosWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var cost float64
	for i, id := range ids {
		info, err := m.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Fed != len(trace) {
			t.Fatalf("%s fed %d slots, want %d", id, info.Fed, len(trace))
		}
		if i == 0 {
			cost = info.CumCost
		} else if info.CumCost != cost {
			t.Fatalf("%s cum cost %v != %v: concurrency broke determinism", id, info.CumCost, cost)
		}
		if _, err := m.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if met := m.Metrics(); met.LiveSessions != 0 || met.PushErrors != 0 {
		t.Fatalf("final metrics: %+v", met)
	}
}
