package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the manager's aggregate-counter snapshot, reported by
// GET /v1/healthz. Latency quantiles cover the most recent pushes (a
// bounded ring, see latencyRing) and are 0 until the first push.
type Metrics struct {
	LiveSessions    int     `json:"live_sessions"`
	SessionsOpened  uint64  `json:"sessions_opened"`
	SessionsResumed uint64  `json:"sessions_resumed"`
	SessionsEvicted uint64  `json:"sessions_evicted"`
	SessionsDeleted uint64  `json:"sessions_deleted"`
	SlotsPushed     uint64  `json:"slots_pushed"`
	PushErrors      uint64  `json:"push_errors"`
	PushP50Micros   float64 `json:"push_p50_us"`
	PushP99Micros   float64 `json:"push_p99_us"`
}

// counters aggregates manager activity. All fields are updated atomically;
// the latency ring has its own lock so a healthz scrape never contends
// with the session locks.
type counters struct {
	opened  atomic.Uint64
	resumed atomic.Uint64
	evicted atomic.Uint64
	deleted atomic.Uint64
	pushes  atomic.Uint64
	pushErr atomic.Uint64
	lat     latencyRing
}

func (c *counters) snapshot(live int) Metrics {
	p50, p99 := c.lat.quantiles()
	return Metrics{
		LiveSessions:    live,
		SessionsOpened:  c.opened.Load(),
		SessionsResumed: c.resumed.Load(),
		SessionsEvicted: c.evicted.Load(),
		SessionsDeleted: c.deleted.Load(),
		SlotsPushed:     c.pushes.Load(),
		PushErrors:      c.pushErr.Load(),
		PushP50Micros:   float64(p50) / float64(time.Microsecond),
		PushP99Micros:   float64(p99) / float64(time.Microsecond),
	}
}

// latencyRing keeps the last ringSize push durations; quantiles sort a
// copy on demand. Exact over a sliding window, O(ringSize) memory, and a
// scrape-time sort is cheap at this size.
const ringSize = 2048

type latencyRing struct {
	mu   sync.Mutex
	buf  [ringSize]time.Duration
	n    int // total observations (buf holds min(n, ringSize))
	sort []time.Duration
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%ringSize] = d
	r.n++
	r.mu.Unlock()
}

func (r *latencyRing) quantiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := min(r.n, ringSize)
	if n == 0 {
		return 0, 0
	}
	r.sort = append(r.sort[:0], r.buf[:n]...)
	sort.Slice(r.sort, func(i, j int) bool { return r.sort[i] < r.sort[j] })
	return r.sort[n/2], r.sort[(n*99)/100]
}
