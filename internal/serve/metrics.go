package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Metrics is the manager's aggregate-counter snapshot, reported by
// GET /v1/healthz. Latency quantiles are interpolated from a lock-free
// log-bucketed histogram over all observations (one observation per
// Push, one per PushBatch) and are 0 until the first observation.
type Metrics struct {
	LiveSessions    int    `json:"live_sessions"`
	SessionsOpened  uint64 `json:"sessions_opened"`
	SessionsResumed uint64 `json:"sessions_resumed"`
	SessionsEvicted uint64 `json:"sessions_evicted"`
	SessionsDeleted uint64 `json:"sessions_deleted"`
	SlotsPushed     uint64 `json:"slots_pushed"`
	PushErrors      uint64 `json:"push_errors"`
	PushesShed      uint64 `json:"pushes_shed"`
	PushTimeouts    uint64 `json:"push_timeouts"`
	StoreRetries    uint64 `json:"store_retries"`
	// The write-ahead-log family (0 unless Options.WALDir is set):
	// appends, fsyncs those appends performed, sessions rebuilt by the
	// startup recovery scan, and torn tails truncated on log open.
	WALAppends           uint64 `json:"wal_appends"`
	WALFsyncs            uint64 `json:"wal_fsyncs"`
	WALRecoveredSessions uint64 `json:"wal_recovered_sessions"`
	WALTornTails         uint64 `json:"wal_torn_tails"`
	// SnapshotCorrupt counts corrupt snapshot or WAL files quarantined
	// (renamed to <name>.corrupt) instead of wedging their session id.
	SnapshotCorrupt uint64  `json:"snapshot_corrupt"`
	PushP50Micros   float64 `json:"push_p50_us"`
	PushP99Micros   float64 `json:"push_p99_us"`
}

// counters aggregates manager activity. The counters are striped in
// lockstep with the registry's lock shards: a push to session X bumps the
// stripe of X's shard, so under cross-core traffic two sessions on
// different shards never write the same counter cache line — global
// atomics would be true sharing, one line ping-ponging between every
// core on every push. Every field — the per-stripe latency histograms
// included — is updated atomically, so the push hot path never takes a
// metrics lock and a healthz scrape (which merges the stripes) never
// stalls pushes.
type counters struct {
	stripes []counterStripe
}

// counterStripe is one registry shard's counter block. The sixteen hot
// words fill exactly two 64-byte cache lines before the histogram, so
// the stripe occupies a whole number of lines and adjacent stripes never
// false-share; TestCounterStripePadding asserts the layout.
type counterStripe struct {
	opened  atomic.Uint64
	resumed atomic.Uint64
	evicted atomic.Uint64
	deleted atomic.Uint64
	pushes  atomic.Uint64
	pushErr atomic.Uint64
	shed    atomic.Uint64
	timeout atomic.Uint64
	retries atomic.Uint64
	// live is this shard's session occupancy, maintained at insert/unlink
	// so a /metrics scrape can report per-shard gauges without touching
	// any shard lock.
	live atomic.Int64
	// latSumNs accumulates observed push latency for the prometheus
	// histogram's _sum series; the bucket counts live in lat.
	latSumNs atomic.Int64
	// The WAL family: appends logged, fsyncs issued for them, sessions
	// rebuilt by recovery, torn tails truncated on open — plus corrupt
	// snapshot/WAL files quarantined.
	walAppends   atomic.Uint64
	walFsyncs    atomic.Uint64
	walRecovered atomic.Uint64
	walTorn      atomic.Uint64
	snapCorrupt  atomic.Uint64
	lat          latencyHist
}

// observe records one push latency on this stripe: the histogram bucket
// and the running sum, both wait-free.
func (s *counterStripe) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.latSumNs.Add(int64(d))
	s.lat.observe(d)
}

func newCounters(stripes int) counters {
	return counters{stripes: make([]counterStripe, stripes)}
}

func (c *counters) snapshot(live int) Metrics {
	m := Metrics{LiveSessions: live}
	var snap [histBuckets]uint64
	total := uint64(0)
	for i := range c.stripes {
		s := &c.stripes[i]
		m.SessionsOpened += s.opened.Load()
		m.SessionsResumed += s.resumed.Load()
		m.SessionsEvicted += s.evicted.Load()
		m.SessionsDeleted += s.deleted.Load()
		m.SlotsPushed += s.pushes.Load()
		m.PushErrors += s.pushErr.Load()
		m.PushesShed += s.shed.Load()
		m.PushTimeouts += s.timeout.Load()
		m.StoreRetries += s.retries.Load()
		m.WALAppends += s.walAppends.Load()
		m.WALFsyncs += s.walFsyncs.Load()
		m.WALRecoveredSessions += s.walRecovered.Load()
		m.WALTornTails += s.walTorn.Load()
		m.SnapshotCorrupt += s.snapCorrupt.Load()
		for b := range snap {
			v := s.lat.buckets[b].Load()
			snap[b] += v
			total += v
		}
	}
	if total > 0 {
		m.PushP50Micros = quantileOf(&snap, total, 0.50) / float64(time.Microsecond)
		m.PushP99Micros = quantileOf(&snap, total, 0.99) / float64(time.Microsecond)
	}
	return m
}

// latencyHist is a lock-free histogram of push latencies: 4 log-spaced
// sub-buckets per power of two of nanoseconds (quarter-octave, so bucket
// bounds are within ~19% of each other across the whole range), counted
// with plain atomic adds. observe is wait-free; quantiles reads a
// best-effort snapshot of the counters and linearly interpolates inside
// the winning bucket, which is exact enough for p50/p99 reporting and
// never blocks a push. Unlike the ring it replaced, the histogram covers
// every observation since start, not a sliding window — and a scrape no
// longer sorts under the same lock the hot path takes (it takes none).
const (
	histSubBits = 2                // sub-buckets per octave = 1<<histSubBits
	histSub     = 1 << histSubBits // 4
	histBuckets = 64 * histSub     // durations up to 2^63 ns
)

type latencyHist struct {
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a duration in nanoseconds onto its bucket index. The top
// histSubBits bits below the leading bit select the sub-bucket, so the
// index is monotone in d.
func bucketOf(d uint64) int {
	if d < 2*histSub {
		return int(d) // the first octaves are exact: one bucket per ns
	}
	top := bits.Len64(d) - 1 // position of the leading bit, >= histSubBits+1
	sub := (d >> (top - histSubBits)) & (histSub - 1)
	return (top-histSubBits+1)*histSub + int(sub)
}

// bucketBounds returns the [lo, hi) duration range of bucket i, the
// inverse of bucketOf.
func bucketBounds(i int) (lo, hi float64) {
	if i < 2*histSub {
		return float64(i), float64(i + 1)
	}
	top := i/histSub + histSubBits - 1
	sub := uint64(i % histSub)
	l := uint64(1)<<top + sub<<(top-histSubBits)
	// Widths are added in float64: the last bucket's upper bound exceeds
	// the uint64 range.
	return float64(l), float64(l) + float64(uint64(1)<<(top-histSubBits))
}

func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(uint64(d))].Add(1)
}

// quantiles interpolates p50 and p99 (in nanoseconds) from one counter
// snapshot, so the pair is mutually consistent (p99 >= p50) even while
// pushes land concurrently.
func (h *latencyHist) quantiles() (p50, p99 float64) {
	var snap [histBuckets]uint64
	total := uint64(0)
	for i := range snap {
		snap[i] = h.buckets[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0, 0
	}
	return quantileOf(&snap, total, 0.50), quantileOf(&snap, total, 0.99)
}

// quantileOf locates the bucket holding the q-th observation and
// interpolates linearly within its bounds.
func quantileOf(snap *[histBuckets]uint64, total uint64, q float64) float64 {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, n := range snap {
		if n == 0 {
			continue
		}
		if rank < cum+n {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)*(float64(rank-cum)+0.5)/float64(n)
		}
		cum += n
	}
	// Unreachable when total matches the snapshot; be defensive.
	lo, _ := bucketBounds(histBuckets - 1)
	return lo
}
