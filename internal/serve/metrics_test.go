package serve

import (
	"sync"
	"testing"
	"time"
)

// Every duration lands in exactly one bucket whose bounds contain it,
// and bucket indices are monotone in the duration.
func TestHistBucketRoundTrip(t *testing.T) {
	prev := -1
	for _, d := range []uint64{
		0, 1, 3, 7, 8, 9, 15, 16, 100, 250, 1000, 4096, 4097,
		1e6, 1e6 + 1, 123456789, 1e9, 1e12, 1e15, 1 << 62,
	} {
		i := bucketOf(d)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", d, i)
		}
		lo, hi := bucketBounds(i)
		if float64(d) < lo || float64(d) >= hi {
			t.Errorf("bucketOf(%d) = %d with bounds [%g, %g): does not contain it", d, i, lo, hi)
		}
		if i < prev {
			t.Errorf("bucketOf(%d) = %d < previous bucket %d: not monotone", d, i, prev)
		}
		prev = i
	}
	// Exhaustive monotonicity + containment over the low range, where the
	// exact and log-spaced regimes meet.
	prev = -1
	for d := uint64(0); d < 4096; d++ {
		i := bucketOf(d)
		lo, hi := bucketBounds(i)
		if float64(d) < lo || float64(d) >= hi {
			t.Fatalf("bucketOf(%d) = %d with bounds [%g, %g)", d, i, lo, hi)
		}
		if i < prev {
			t.Fatalf("bucketOf(%d) = %d < %d", d, i, prev)
		}
		prev = i
	}
}

// Quantiles over a known distribution land within bucket resolution
// (quarter-octave, <= 1/4 relative error) of the exact answer, p99 never
// undercuts p50, and concurrent observes don't corrupt the counters.
func TestHistQuantiles(t *testing.T) {
	var h latencyHist
	if p50, p99 := h.quantiles(); p50 != 0 || p99 != 0 {
		t.Fatalf("empty histogram quantiles = %g, %g, want 0, 0", p50, p99)
	}

	// 1..1000 µs uniformly: p50 ~ 500 µs, p99 ~ 990 µs.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 1000; i += 4 {
				h.observe(time.Duration(i+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()

	p50, p99 := h.quantiles()
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	p50us, p99us := p50/1000, p99/1000
	if p50us < 500*0.75 || p50us > 500*1.25 {
		t.Errorf("p50 = %g µs, want ~500 within bucket resolution", p50us)
	}
	if p99us < 990*0.75 || p99us > 990*1.25 {
		t.Errorf("p99 = %g µs, want ~990 within bucket resolution", p99us)
	}

	// A point mass pins both quantiles to its bucket.
	var point latencyHist
	for i := 0; i < 100; i++ {
		point.observe(5 * time.Millisecond)
	}
	lo, hi := bucketBounds(bucketOf(uint64(5 * time.Millisecond)))
	for _, q := range []float64{0.5, 0.99} {
		p50, p99 = point.quantiles()
		for _, v := range []float64{p50, p99} {
			if v < lo || v > hi {
				t.Errorf("point-mass quantile %g (q=%g) outside its bucket [%g, %g]", v, q, lo, hi)
			}
		}
	}
}
