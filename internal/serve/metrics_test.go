package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// Every duration lands in exactly one bucket whose bounds contain it,
// and bucket indices are monotone in the duration.
func TestHistBucketRoundTrip(t *testing.T) {
	prev := -1
	for _, d := range []uint64{
		0, 1, 3, 7, 8, 9, 15, 16, 100, 250, 1000, 4096, 4097,
		1e6, 1e6 + 1, 123456789, 1e9, 1e12, 1e15, 1 << 62,
	} {
		i := bucketOf(d)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", d, i)
		}
		lo, hi := bucketBounds(i)
		if float64(d) < lo || float64(d) >= hi {
			t.Errorf("bucketOf(%d) = %d with bounds [%g, %g): does not contain it", d, i, lo, hi)
		}
		if i < prev {
			t.Errorf("bucketOf(%d) = %d < previous bucket %d: not monotone", d, i, prev)
		}
		prev = i
	}
	// Exhaustive monotonicity + containment over the low range, where the
	// exact and log-spaced regimes meet.
	prev = -1
	for d := uint64(0); d < 4096; d++ {
		i := bucketOf(d)
		lo, hi := bucketBounds(i)
		if float64(d) < lo || float64(d) >= hi {
			t.Fatalf("bucketOf(%d) = %d with bounds [%g, %g)", d, i, lo, hi)
		}
		if i < prev {
			t.Fatalf("bucketOf(%d) = %d < %d", d, i, prev)
		}
		prev = i
	}
}

// Quantiles over a known distribution land within bucket resolution
// (quarter-octave, <= 1/4 relative error) of the exact answer, p99 never
// undercuts p50, and concurrent observes don't corrupt the counters.
func TestHistQuantiles(t *testing.T) {
	var h latencyHist
	if p50, p99 := h.quantiles(); p50 != 0 || p99 != 0 {
		t.Fatalf("empty histogram quantiles = %g, %g, want 0, 0", p50, p99)
	}

	// 1..1000 µs uniformly: p50 ~ 500 µs, p99 ~ 990 µs.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 1000; i += 4 {
				h.observe(time.Duration(i+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()

	p50, p99 := h.quantiles()
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	p50us, p99us := p50/1000, p99/1000
	if p50us < 500*0.75 || p50us > 500*1.25 {
		t.Errorf("p50 = %g µs, want ~500 within bucket resolution", p50us)
	}
	if p99us < 990*0.75 || p99us > 990*1.25 {
		t.Errorf("p99 = %g µs, want ~990 within bucket resolution", p99us)
	}

	// A point mass pins both quantiles to its bucket.
	var point latencyHist
	for i := 0; i < 100; i++ {
		point.observe(5 * time.Millisecond)
	}
	lo, hi := bucketBounds(bucketOf(uint64(5 * time.Millisecond)))
	for _, q := range []float64{0.5, 0.99} {
		p50, p99 = point.quantiles()
		for _, v := range []float64{p50, p99} {
			if v < lo || v > hi {
				t.Errorf("point-mass quantile %g (q=%g) outside its bucket [%g, %g]", v, q, lo, hi)
			}
		}
	}
}

// The registry shard and its counter stripe are the two structures every
// push writes; both must stay whole numbers of cache lines so adjacent
// stripes in their arrays never false-share across cores.
func TestCounterStripePadding(t *testing.T) {
	if s := unsafe.Sizeof(counterStripe{}); s%64 != 0 {
		t.Errorf("counterStripe is %d bytes, not a multiple of the 64-byte cache line", s)
	}
	if s := unsafe.Sizeof(shard{}); s%64 != 0 {
		t.Errorf("shard is %d bytes, not a multiple of the 64-byte cache line", s)
	}
}

// Counter stripes must merge: activity spread across many shards reports
// identical aggregates to a single-shard manager. (The full behavioral
// invariance across shard counts is TestShardCountInvariance; this is the
// metrics-only fast check.)
func TestMetricsMergeAcrossStripes(t *testing.T) {
	m := NewManager(Options{Shards: 8})
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("merge-%d", i)
		if _, err := m.Open(OpenRequest{ID: id, Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Push(id, PushRequest{Lambda: 2}); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Metrics()
	if got.SessionsOpened != 10 || got.SlotsPushed != 10 || got.LiveSessions != 10 {
		t.Fatalf("merged metrics = %+v; want 10 opened, 10 pushed, 10 live", got)
	}
	if got.PushP50Micros <= 0 || got.PushP99Micros < got.PushP50Micros {
		t.Fatalf("merged quantiles p50=%v p99=%v; want 0 < p50 <= p99", got.PushP50Micros, got.PushP99Micros)
	}
}
