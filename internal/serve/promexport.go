package serve

import (
	"net/http"
	"strconv"

	"repro/internal/solver"
)

// GET /metrics — Prometheus text exposition (format 0.0.4) over the
// same striped atomics /v1/healthz reads, plus surfaces healthz does
// not carry: per-shard occupancy gauges, the live subscription gauge,
// the solver's g-layer memo hit/miss counters, and the full push
// latency histogram instead of two interpolated quantiles.
//
// The scrape is lock-free end to end: every sample is an atomic load
// (counter stripes, the liveN/streamSubs gauges, the memo's sharded
// stats), so a scrape never stalls a push and a wedged session never
// stalls a scrape — BenchmarkMetricsScrape and TestMetricsScrapeLockFree
// hold the exporter to that.
//
// The histogram's le bounds are 2^k nanoseconds (k = promHistMinPow ..
// promHistMaxPow, ~4.1µs to ~8.6s, printed in seconds). Those are
// exactly the quarter-octave histogram's octave boundaries, so each
// cumulative bucket is a plain prefix sum of the atomic buckets — no
// re-binning, no approximation beyond the histogram's own bucket
// granularity.

const (
	promHistMinPow = 12 // 2^12 ns ≈ 4.1 µs
	promHistMaxPow = 33 // 2^33 ns ≈ 8.6 s
)

func (a *api) promMetrics(w http.ResponseWriter, r *http.Request) {
	bp := wireBuf()
	*bp = a.m.appendPromText(*bp)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(*bp)
	putWireBuf(bp)
}

// promCounter appends one HELP/TYPE/sample triple for a counter.
func promCounter(dst []byte, name, help string, v uint64) []byte {
	dst = append(dst, "# HELP "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, help...)
	dst = append(dst, "\n# TYPE "...)
	dst = append(dst, name...)
	dst = append(dst, " counter\n"...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, v, 10)
	return append(dst, '\n')
}

// promGaugeHeader appends a gauge's HELP/TYPE lines; samples follow.
func promGaugeHeader(dst []byte, name, help string) []byte {
	dst = append(dst, "# HELP "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, help...)
	dst = append(dst, "\n# TYPE "...)
	dst = append(dst, name...)
	dst = append(dst, " gauge\n"...)
	return dst
}

// appendPromText appends the full exposition. Values are loaded stripe
// by stripe with plain atomic reads; like every multi-word snapshot in
// this package it is a best-effort cut, not a consistent point in time.
func (m *Manager) appendPromText(dst []byte) []byte {
	// Merge the counter stripes (and the histogram) once.
	var agg Metrics
	var buckets [histBuckets]uint64
	total := uint64(0)
	sumNs := int64(0)
	for i := range m.met.stripes {
		s := &m.met.stripes[i]
		agg.SessionsOpened += s.opened.Load()
		agg.SessionsResumed += s.resumed.Load()
		agg.SessionsEvicted += s.evicted.Load()
		agg.SessionsDeleted += s.deleted.Load()
		agg.SlotsPushed += s.pushes.Load()
		agg.PushErrors += s.pushErr.Load()
		agg.PushesShed += s.shed.Load()
		agg.PushTimeouts += s.timeout.Load()
		agg.StoreRetries += s.retries.Load()
		agg.WALAppends += s.walAppends.Load()
		agg.WALFsyncs += s.walFsyncs.Load()
		agg.WALRecoveredSessions += s.walRecovered.Load()
		agg.WALTornTails += s.walTorn.Load()
		agg.SnapshotCorrupt += s.snapCorrupt.Load()
		sumNs += s.latSumNs.Load()
		for b := range buckets {
			v := s.lat.buckets[b].Load()
			buckets[b] += v
			total += v
		}
	}

	dst = promCounter(dst, "rightsized_sessions_opened_total", "Sessions opened.", agg.SessionsOpened)
	dst = promCounter(dst, "rightsized_sessions_resumed_total", "Sessions transparently resumed from the snapshot store.", agg.SessionsResumed)
	dst = promCounter(dst, "rightsized_sessions_evicted_total", "Sessions checkpoint-evicted to the snapshot store.", agg.SessionsEvicted)
	dst = promCounter(dst, "rightsized_sessions_deleted_total", "Sessions deleted.", agg.SessionsDeleted)
	dst = promCounter(dst, "rightsized_slots_pushed_total", "Slots fed to sessions (batch slots counted individually).", agg.SlotsPushed)
	dst = promCounter(dst, "rightsized_push_errors_total", "Pushes failed past admission (bad slot, failed session, store).", agg.PushErrors)
	dst = promCounter(dst, "rightsized_pushes_shed_total", "Pushes denied by admission control (throttled or overloaded).", agg.PushesShed)
	dst = promCounter(dst, "rightsized_push_timeouts_total", "Pushes that hit the push deadline having fed nothing.", agg.PushTimeouts)
	dst = promCounter(dst, "rightsized_store_retries_total", "Snapshot store save retries.", agg.StoreRetries)
	dst = promCounter(dst, "rightsized_wal_appends_total", "Slot records appended to per-session write-ahead logs.", agg.WALAppends)
	dst = promCounter(dst, "rightsized_wal_fsyncs_total", "fsyncs issued by the WAL append path and the background flush sweep.", agg.WALFsyncs)
	dst = promCounter(dst, "rightsized_wal_recovered_sessions_total", "Sessions rebuilt from snapshot plus WAL replay at startup.", agg.WALRecoveredSessions)
	dst = promCounter(dst, "rightsized_wal_torn_tails_total", "Torn WAL tails truncated to the last whole record on open.", agg.WALTornTails)
	dst = promCounter(dst, "rightsized_snapshot_corrupt_total", "Corrupt snapshot or WAL files quarantined to <name>.corrupt.", agg.SnapshotCorrupt)

	hits, misses := solver.MemoStats()
	dst = promCounter(dst, "rightsized_solver_memo_hits_total", "Solver g-layer memo hits (process-wide).", hits)
	dst = promCounter(dst, "rightsized_solver_memo_misses_total", "Solver g-layer memo misses (process-wide).", misses)

	dst = promGaugeHeader(dst, "rightsized_live_sessions", "Resident sessions (placeholders included), across all shards.")
	dst = append(dst, "rightsized_live_sessions "...)
	dst = strconv.AppendInt(dst, m.liveN.Load(), 10)
	dst = append(dst, '\n')

	dst = promGaugeHeader(dst, "rightsized_stream_subscribers", "Live advisory stream subscriptions.")
	dst = append(dst, "rightsized_stream_subscribers "...)
	dst = strconv.AppendInt(dst, m.streamSubs.Load(), 10)
	dst = append(dst, '\n')

	dst = promGaugeHeader(dst, "rightsized_shard_sessions", "Resident sessions per registry shard.")
	for i := range m.met.stripes {
		dst = append(dst, `rightsized_shard_sessions{shard="`...)
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, `"} `...)
		dst = strconv.AppendInt(dst, m.met.stripes[i].live.Load(), 10)
		dst = append(dst, '\n')
	}

	const hist = "rightsized_push_latency_seconds"
	dst = append(dst, "# HELP "+hist+" Push latency (one observation per Push or PushBatch).\n"...)
	dst = append(dst, "# TYPE "+hist+" histogram\n"...)
	cum := uint64(0)
	next := 0 // first histogram bucket not yet folded into cum
	for k := promHistMinPow; k <= promHistMaxPow; k++ {
		// Fold every quarter-octave bucket strictly below 2^k ns: bucketOf
		// is monotone and 2^k opens a fresh bucket, so the prefix sum is
		// exactly the observations with d < 2^k.
		for lim := bucketOf(uint64(1) << k); next < lim; next++ {
			cum += buckets[next]
		}
		dst = append(dst, hist+`_bucket{le="`...)
		dst = strconv.AppendFloat(dst, float64(uint64(1)<<k)/1e9, 'g', -1, 64)
		dst = append(dst, `"} `...)
		dst = strconv.AppendUint(dst, cum, 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, hist+`_bucket{le="+Inf"} `...)
	dst = strconv.AppendUint(dst, total, 10)
	dst = append(dst, '\n')
	dst = append(dst, hist+"_sum "...)
	dst = strconv.AppendFloat(dst, float64(sumNs)/1e9, 'g', -1, 64)
	dst = append(dst, '\n')
	dst = append(dst, hist+"_count "...)
	dst = strconv.AppendUint(dst, total, 10)
	return append(dst, '\n')
}
