package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/promlint"
)

// scrapeMetrics GETs /metrics and returns the exposition body after
// asserting the content type and a clean promlint pass.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := promlint.Lint(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	return string(body)
}

// promValue pulls one sample's value out of an exposition; series is
// the full name as printed, labels included (e.g. `x{shard="0"}`).
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not in exposition:\n%s", series, body)
	return 0
}

// /metrics must lint clean and agree with /v1/healthz while the server
// is quiescent: same counters, gauge equal to live_sessions, shard
// gauges summing to it, histogram _count equal to push observations.
func TestPromExposition(t *testing.T) {
	m := NewManager(Options{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}

	// Traffic that moves every counter family: two sessions, pushes
	// (single and batch), a checkpoint-evict, a resume, a delete.
	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "a", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "b", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	for _, lam := range quickstartTrace(t)[:6] {
		cl.mustDo("POST", "/v1/sessions/a/push", PushRequest{Lambda: lam}, nil, http.StatusOK)
	}
	cl.mustDo("POST", "/v1/sessions/b/push", []PushRequest{{Lambda: 2}, {Lambda: 3}}, nil, http.StatusOK)
	cl.mustDo("POST", "/v1/sessions/a/checkpoint", nil, nil, http.StatusOK)
	if err := m.Evict("a"); err != nil {
		t.Fatal(err)
	}
	cl.mustDo("POST", "/v1/sessions/a/push", PushRequest{Lambda: 1}, nil, http.StatusOK) // resume
	cl.mustDo("DELETE", "/v1/sessions/b", nil, nil, http.StatusOK)

	var health struct {
		OK      bool    `json:"ok"`
		Metrics Metrics `json:"metrics"`
	}
	cl.mustDo("GET", "/v1/healthz", nil, &health, http.StatusOK)
	body := scrapeMetrics(t, srv.URL)

	counters := map[string]uint64{
		"rightsized_sessions_opened_total":        health.Metrics.SessionsOpened,
		"rightsized_sessions_resumed_total":       health.Metrics.SessionsResumed,
		"rightsized_sessions_evicted_total":       health.Metrics.SessionsEvicted,
		"rightsized_sessions_deleted_total":       health.Metrics.SessionsDeleted,
		"rightsized_slots_pushed_total":           health.Metrics.SlotsPushed,
		"rightsized_push_errors_total":            health.Metrics.PushErrors,
		"rightsized_pushes_shed_total":            health.Metrics.PushesShed,
		"rightsized_push_timeouts_total":          health.Metrics.PushTimeouts,
		"rightsized_store_retries_total":          health.Metrics.StoreRetries,
		"rightsized_wal_appends_total":            health.Metrics.WALAppends,
		"rightsized_wal_fsyncs_total":             health.Metrics.WALFsyncs,
		"rightsized_wal_recovered_sessions_total": health.Metrics.WALRecoveredSessions,
		"rightsized_wal_torn_tails_total":         health.Metrics.WALTornTails,
		"rightsized_snapshot_corrupt_total":       health.Metrics.SnapshotCorrupt,
	}
	for series, want := range counters {
		if got := promValue(t, body, series); got != float64(want) {
			t.Errorf("%s = %v, healthz says %d", series, got, want)
		}
	}
	if health.Metrics.SessionsResumed != 1 || health.Metrics.SessionsEvicted != 1 || health.Metrics.SessionsDeleted != 1 {
		t.Fatalf("traffic did not move the lifecycle counters: %+v", health.Metrics)
	}

	if got := promValue(t, body, "rightsized_live_sessions"); got != float64(health.Metrics.LiveSessions) {
		t.Errorf("live_sessions gauge %v != healthz %d", got, health.Metrics.LiveSessions)
	}
	shardSum := 0.0
	for i := 0; i < len(m.met.stripes); i++ {
		shardSum += promValue(t, body, `rightsized_shard_sessions{shard="`+strconv.Itoa(i)+`"}`)
	}
	if shardSum != float64(health.Metrics.LiveSessions) {
		t.Errorf("shard gauges sum to %v, live_sessions is %d", shardSum, health.Metrics.LiveSessions)
	}
	if got := promValue(t, body, "rightsized_stream_subscribers"); got != 0 {
		t.Errorf("stream_subscribers = %v with no streams open", got)
	}

	// 8 push observations: 6 singles, 1 batch, 1 resume push.
	count := promValue(t, body, "rightsized_push_latency_seconds_count")
	if count != 8 {
		t.Errorf("histogram _count = %v, want 8", count)
	}
	if inf := promValue(t, body, `rightsized_push_latency_seconds_bucket{le="+Inf"}`); inf != count {
		t.Errorf("+Inf bucket %v != _count %v", inf, count)
	}
	if sum := promValue(t, body, "rightsized_push_latency_seconds_sum"); sum <= 0 {
		t.Errorf("histogram _sum = %v, want > 0", sum)
	}

	// The memo counters are present and sane (process-global, so other
	// tests may have grown them — just demand hits+misses > 0 after a
	// solve and non-negative parsing via promValue above).
	if h, ms := promValue(t, body, "rightsized_solver_memo_hits_total"), promValue(t, body, "rightsized_solver_memo_misses_total"); h+ms <= 0 {
		t.Errorf("solver memo counters flat (hits %v, misses %v) after solving pushes", h, ms)
	}
}

// The scrape must stay lock-free: with every shard mutex and a session
// mutex held, appendPromText still completes.
func TestMetricsScrapeLockFree(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	if _, err := m.Open(OpenRequest{ID: "s", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	for i := range m.shards {
		for _, ls := range m.shards[i].live {
			ls.mu.Lock()
			defer ls.mu.Unlock()
		}
	}

	done := make(chan []byte, 1)
	go func() { done <- m.appendPromText(nil) }()
	select {
	case body := <-done:
		if err := promlint.Lint(strings.NewReader(string(body))); err != nil {
			t.Fatalf("exposition under full lock contention fails lint: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("appendPromText blocked on a lock; the scrape must be lock-free")
	}
}

func BenchmarkMetricsScrape(b *testing.B) {
	m := NewManager(Options{})
	defer m.Close()
	if _, err := m.Open(OpenRequest{ID: "s", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		b.Fatal(err)
	}
	for slot := 0; slot < 32; slot++ {
		if _, err := m.Push("s", PushRequest{Lambda: float64(1 + slot%5)}); err != nil {
			b.Fatal(err)
		}
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.appendPromText(buf[:0])
	}
	_ = buf
}
