package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/wal"
)

// RecoverReport summarises a startup WAL recovery scan.
type RecoverReport struct {
	// Sessions is how many sessions were rebuilt (snapshot plus WAL
	// delta) and re-checkpointed to the store.
	Sessions int
	// Slots is how many WAL slots were replayed beyond their snapshots —
	// the work a crash would have lost without the log.
	Slots int
	// TornTails counts logs whose torn tail was truncated to the last
	// whole record.
	TornTails int
	// Corrupt counts files quarantined to <name>.corrupt (undecodable
	// WAL headers or snapshots).
	Corrupt int
	// Failed lists session ids whose recovery failed (store save or read
	// error); their WAL files are left in place for the next attempt.
	Failed []string
}

func (r RecoverReport) String() string {
	return fmt.Sprintf("recovered %d sessions (%d wal slots, %d torn tails, %d quarantined, %d failed)",
		r.Sessions, r.Slots, r.TornTails, r.Corrupt, len(r.Failed))
}

// RecoverWAL scans Options.WALDir for leftover session logs — the
// residue of a crash — and folds each into the snapshot store: load the
// session's snapshot (if any), replay the log's delta on top, save the
// merged snapshot, and truncate the log. Recovered sessions are not made
// resident; the next push resumes them from the store like any evicted
// session. Call before serving traffic. A no-op without a WAL dir.
func (m *Manager) RecoverWAL() (RecoverReport, error) {
	var rep RecoverReport
	if !m.walEnabled() {
		return rep, nil
	}
	paths, err := filepath.Glob(filepath.Join(m.opts.WALDir, "*.wal"))
	if err != nil {
		return rep, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		m.recoverOne(path, &rep)
	}
	return rep, nil
}

// quarantineWAL moves an undecodable log aside and counts it.
func (m *Manager) quarantineWAL(path, id string, rep *RecoverReport) {
	if err := quarantine(path); err != nil {
		rep.Failed = append(rep.Failed, id)
		return
	}
	m.stripeFor(id).snapCorrupt.Add(1)
	rep.Corrupt++
}

func (m *Manager) recoverOne(path string, rep *RecoverReport) {
	id := strings.TrimSuffix(filepath.Base(path), ".wal")
	hdrBytes, recs, torn, err := wal.Read(path)
	if err != nil {
		rep.Failed = append(rep.Failed, id)
		return
	}
	if torn {
		m.stripeFor(id).walTorn.Add(1)
		rep.TornTails++
	}
	if hdrBytes == nil {
		// No whole header frame: an empty or stillborn log holds nothing
		// recoverable. Empty files are simply removed; anything else is
		// quarantined for inspection.
		if fi, serr := os.Stat(path); serr == nil && fi.Size() == 0 {
			os.Remove(path)
		} else {
			m.quarantineWAL(path, id, rep)
		}
		return
	}
	var hdr walHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		m.quarantineWAL(path, id, rep)
		return
	}

	// Rebuild the session: snapshot first (when one exists and decodes),
	// else from nothing using the header's identity. A corrupt snapshot
	// was quarantined by the load and reads as missing — the WAL replays
	// onto a fresh session, recovering what the log alone covers.
	snap, ok, err := m.mapCorrupt(id)(m.store.Load(id))
	if err != nil {
		rep.Failed = append(rep.Failed, id)
		return
	}
	var sess *stream.Session
	fleet := hdr.Fleet
	if ok && snap.Checkpoint != nil {
		fleet = snap.Fleet
		types, rerr := fleet.Resolve()
		if rerr == nil {
			sess, rerr = engine.ResumeSession(snap.Checkpoint, types, m.streamOpts())
		}
		if rerr != nil {
			rep.Failed = append(rep.Failed, id)
			return
		}
	} else {
		types, rerr := fleet.Resolve()
		if rerr == nil {
			sess, rerr = engine.OpenSession(hdr.Alg, types, m.streamOpts())
		}
		if rerr != nil {
			// The header names an algorithm or fleet this build cannot
			// construct: not recoverable, and keeping the file would
			// re-fail every restart.
			m.quarantineWAL(path, id, rep)
			return
		}
	}

	delta := make([]stream.DeltaRecord, len(recs))
	for i, r := range recs {
		delta[i] = stream.DeltaRecord{T: r.T, Lambda: r.Lambda, Counts: r.Counts}
	}
	applied, rerr := sess.ReplayDelta(delta)
	if rerr != nil && sess.Err() == nil {
		// A replay gap: the log does not continue the state we rebuilt —
		// typically the snapshot was quarantined as corrupt (so the load
		// read as a clean miss) and the delta starts past slot 1. Saving
		// the rebuilt session would overwrite the id with a near-empty
		// snapshot, and removing the log would destroy the only remaining
		// record of its slots. Persist whatever prefix did replay, then
		// quarantine the log for inspection. (A sticky algorithm failure
		// is different — rerr with sess.Err() set: the failing record is
		// the unacknowledged orphan tail, so the applied prefix below is
		// exactly the acknowledged stream and the normal path is right.)
		if applied > 0 {
			merged := &Snapshot{ID: id, Fleet: fleet, Checkpoint: sess.Checkpoint()}
			if err := m.saveWithRetry(merged); err != nil {
				rep.Failed = append(rep.Failed, id)
				return
			}
			rep.Slots += applied
		}
		m.quarantineWAL(path, id, rep)
		return
	}

	merged := &Snapshot{ID: id, Fleet: fleet, Checkpoint: sess.Checkpoint()}
	if err := m.saveWithRetry(merged); err != nil {
		// Leave the WAL in place: the snapshot may be stale but the log
		// still carries the delta, so the next restart retries.
		rep.Failed = append(rep.Failed, id)
		return
	}
	// The merged snapshot is durable; the log is spent. Remove it — a
	// later resume recreates it on attach.
	os.Remove(path)
	m.stripeFor(id).walRecovered.Add(1)
	rep.Sessions++
	rep.Slots += applied
}
