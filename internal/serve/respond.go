package serve

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/stream"
	"repro/internal/wire"
)

// encoder is the codec seam between the API core and the bytes on the
// socket. The handlers in http.go (and the SSE transport in sse.go)
// decide *what* to answer — status, error taxonomy, Retry-After,
// response shape — and delegate *how* it is framed to one of the two
// implementations below. wireEncoder runs the zero-reflection
// internal/wire codec; reflectEncoder is the encoding/json reference
// path selected by Options.ReflectCodec. The two are byte-for-byte
// interchangeable (see internal/wire's package doc); the differential
// tests run the full API — streams included — under both.
//
// Hot-path responses (push in both forms, session info, healthz, SSE
// data frames) go through the codec-specific methods. Cold responses
// (open, list, checkpoint, delete, algs) stay on the shared writeJSON,
// where reflection cost is irrelevant.
type encoder interface {
	// writeErr answers a manager error: {"error":"..."} with the
	// httpStatus mapping and Retry-After on shed responses.
	writeErr(w http.ResponseWriter, err error)
	// writeBatchError answers a failed batch push whose leading slots
	// were committed: the error plus their results, keeping the error's
	// status — and, like every shed response, its Retry-After header.
	writeBatchError(w http.ResponseWriter, err error, res []PushResult)
	// The hot-path single results are passed BY VALUE across this
	// interface on purpose: a pointer argument to an interface method
	// cannot be proven non-escaping at the call site, so &local here
	// would heap-allocate every push/status/healthz — the exact alloc
	// the wire codec exists to avoid. The copies are small structs.
	writePushResult(w http.ResponseWriter, res PushResult)
	writePushResults(w http.ResponseWriter, res []PushResult)
	writeSessionInfo(w http.ResponseWriter, info SessionInfo)
	writeHealthz(w http.ResponseWriter, mt Metrics)
	// appendAdvisory appends one advisory's JSON object (no trailing
	// newline) — the payload of an SSE data frame.
	appendAdvisory(dst []byte, adv *stream.Advisory) ([]byte, error)
	// decodePushOne decodes a single-slot push body, answering the 400
	// itself on failure; the caller proceeds only on true.
	decodePushOne(w http.ResponseWriter, data []byte) (PushRequest, bool)
	// decodePushBatch is decodePushOne's batch-form twin.
	decodePushBatch(w http.ResponseWriter, data []byte) ([]PushRequest, bool)
}

// codecFor selects the session's encoder.
func codecFor(opts Options) encoder {
	if opts.ReflectCodec {
		return reflectEncoder{}
	}
	return wireEncoder{}
}

// encodeFailure answers the encode-failed 500. The body is a JSON
// error object like every other error response, so the Content-Type
// must say so — http.Error (the previous fallback) stamped text/plain
// on it, and clients keying dispatch on the header saw a JSON body they
// were told not to parse.
func encodeFailure(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = io.WriteString(w, "{\"error\":\"response encoding failed\"}\n")
}

// wireEncoder frames responses with the zero-reflection appenders:
// pooled byte slices, no encoding/json anywhere on a well-formed
// request. Malformed push input falls back to the strict reflection
// decoder so clients see encoding/json's exact error prose; the
// reflection cost is paid only on bad requests.
type wireEncoder struct{}

func (wireEncoder) writeErr(w http.ResponseWriter, err error) {
	writeWireError(w, err)
}

func (wireEncoder) writeBatchError(w http.ResponseWriter, err error, res []PushResult) {
	setRetryAfter(w, err)
	bp := wireBuf()
	b, werr := wire.AppendBatchError(*bp, err.Error(), res)
	*bp = b
	writeWire(w, httpStatus(err), bp, werr)
}

func (wireEncoder) writePushResult(w http.ResponseWriter, res PushResult) {
	bp := wireBuf()
	b, werr := wire.AppendPushResult(*bp, &res)
	*bp = b
	writeWire(w, http.StatusOK, bp, werr)
}

func (wireEncoder) writePushResults(w http.ResponseWriter, res []PushResult) {
	bp := wireBuf()
	b, werr := wire.AppendPushResults(*bp, res)
	*bp = b
	writeWire(w, http.StatusOK, bp, werr)
}

func (wireEncoder) writeSessionInfo(w http.ResponseWriter, info SessionInfo) {
	bp := wireBuf()
	b, werr := appendSessionInfo(*bp, &info)
	*bp = b
	writeWire(w, http.StatusOK, bp, werr)
}

func (wireEncoder) writeHealthz(w http.ResponseWriter, mt Metrics) {
	bp := wireBuf()
	b, werr := appendHealthz(*bp, true, &mt)
	*bp = b
	writeWire(w, http.StatusOK, bp, werr)
}

func (wireEncoder) appendAdvisory(dst []byte, adv *stream.Advisory) ([]byte, error) {
	return wire.AppendAdvisory(dst, adv)
}

// decodePushOne decodes with the wire scanner on the happy path and
// falls back through the strict reflection decoder when the scanner
// rejects — the input is already known malformed (the codecs accept
// identical inputs), so the second pass exists purely to reproduce
// encoding/json's error prose. It returns by value with a
// wire-path-only local so the happy path's target stays off the heap;
// the fallback declares its own, which escapes into encoding/json's
// any but is reached only on malformed input.
func (wireEncoder) decodePushOne(w http.ResponseWriter, data []byte) (PushRequest, bool) {
	var req PushRequest
	if wire.DecodePushRequest(data, &req) == nil {
		return req, true
	}
	var slow PushRequest
	ok := decodeStrict(w, data, &slow)
	return slow, ok
}

func (wireEncoder) decodePushBatch(w http.ResponseWriter, data []byte) ([]PushRequest, bool) {
	var reqs []PushRequest
	if wire.DecodePushRequests(data, &reqs) == nil {
		return reqs, true
	}
	var slow []PushRequest
	ok := decodeStrict(w, data, &slow)
	return slow, ok
}

// reflectEncoder is the encoding/json reference implementation.
type reflectEncoder struct{}

func (reflectEncoder) writeErr(w http.ResponseWriter, err error) {
	writeError(w, err)
}

func (reflectEncoder) writeBatchError(w http.ResponseWriter, err error, res []PushResult) {
	setRetryAfter(w, err)
	writeJSON(w, httpStatus(err), batchErrorBody{Error: err.Error(), Results: res})
}

func (reflectEncoder) writePushResult(w http.ResponseWriter, res PushResult) {
	writeJSON(w, http.StatusOK, &res)
}

func (reflectEncoder) writePushResults(w http.ResponseWriter, res []PushResult) {
	writeJSON(w, http.StatusOK, res)
}

func (reflectEncoder) writeSessionInfo(w http.ResponseWriter, info SessionInfo) {
	writeJSON(w, http.StatusOK, &info)
}

func (reflectEncoder) writeHealthz(w http.ResponseWriter, mt Metrics) {
	writeJSON(w, http.StatusOK, struct {
		OK      bool    `json:"ok"`
		Metrics Metrics `json:"metrics"`
	}{true, mt})
}

func (reflectEncoder) appendAdvisory(dst []byte, adv *stream.Advisory) ([]byte, error) {
	b, err := json.Marshal(adv)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

func (reflectEncoder) decodePushOne(w http.ResponseWriter, data []byte) (PushRequest, bool) {
	var req PushRequest
	ok := decodeStrict(w, data, &req)
	return req, ok
}

func (reflectEncoder) decodePushBatch(w http.ResponseWriter, data []byte) ([]PushRequest, bool) {
	var reqs []PushRequest
	ok := decodeStrict(w, data, &reqs)
	return reqs, ok
}
