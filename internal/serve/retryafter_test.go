package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/stream"
)

// Every shed/throttle shape carries Retry-After, under both codecs,
// with identical values: the single-push throttle, the throttled batch
// head, and the session-cap 429 end to end; the batch mid-commit path
// (unreachable end to end today — admission runs before any slot is
// fed — but load-bearing the moment a mid-batch shed exists) directly
// against both writeBatchError implementations.
func TestRetryAfterCompleteness(t *testing.T) {
	// header[shape][codec] for the cross-codec parity check.
	headers := map[string]map[bool]string{}
	record := func(shape string, reflectCodec bool, value string) {
		if headers[shape] == nil {
			headers[shape] = map[bool]string{}
		}
		headers[shape][reflectCodec] = value
	}

	forEachCodec(t, func(t *testing.T, reflectCodec bool) {
		newThrottled := func(t *testing.T) (*httptest.Server, *httpClient) {
			// 1 token per 1000s, burst 1: the first push drains the bucket
			// and every later deny computes a ~1000s wait — stable to the
			// second for the duration of a test run, so the header value
			// is deterministic and comparable across codecs.
			m := NewManager(Options{GlobalRate: 0.001, GlobalBurst: 1, ReflectCodec: reflectCodec})
			srv := httptest.NewServer(NewHandler(m))
			t.Cleanup(srv.Close)
			cl := &httpClient{t: t, base: srv.URL}
			cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "ra", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
			cl.mustDo("POST", "/v1/sessions/ra/push", PushRequest{Lambda: 1}, nil, http.StatusOK)
			return srv, cl
		}
		requireRetryAfter := func(t *testing.T, shape string, resp *http.Response, wantStatus int) {
			t.Helper()
			if resp.StatusCode != wantStatus {
				t.Fatalf("%s: HTTP %d, want %d", shape, resp.StatusCode, wantStatus)
			}
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Fatalf("%s: Retry-After = %q, want an integer >= 1", shape, ra)
			}
			record(shape, reflectCodec, ra)
		}

		t.Run("single push", func(t *testing.T) {
			srv, _ := newThrottled(t)
			resp := rawPost(t, srv.URL+"/v1/sessions/ra/push", `{"lambda": 1}`)
			requireRetryAfter(t, "single push", resp, http.StatusTooManyRequests)
		})

		t.Run("batch head", func(t *testing.T) {
			srv, _ := newThrottled(t)
			resp := rawPost(t, srv.URL+"/v1/sessions/ra/push", `[{"lambda": 1}, {"lambda": 2}]`)
			requireRetryAfter(t, "batch head", resp, http.StatusTooManyRequests)
		})

		t.Run("session cap", func(t *testing.T) {
			m := NewManager(Options{MaxSessions: 1, ReflectCodec: reflectCodec})
			srv := httptest.NewServer(NewHandler(m))
			t.Cleanup(srv.Close)
			cl := &httpClient{t: t, base: srv.URL}
			cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "only", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
			resp := rawPost(t, srv.URL+"/v1/sessions", `{"alg": "alg-b", "fleet": {"scenario": "quickstart", "seed": 1}}`)
			requireRetryAfter(t, "session cap", resp, http.StatusTooManyRequests)
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Fatalf("session-cap Retry-After = %q, want the fixed \"1\"", ra)
			}
		})

		t.Run("batch mid-commit", func(t *testing.T) {
			enc := codecFor(Options{ReflectCodec: reflectCodec})
			committed := []PushResult{{Decided: true, Advisory: &stream.Advisory{
				Slot: 1, Lambda: 2, Config: model.Config{1, 0}, Active: 1,
				Operating: 3, Switching: 1, CumCost: 4,
			}}}
			rec := httptest.NewRecorder()
			enc.writeBatchError(rec, &retryAfterError{err: ErrThrottled, after: 2500 * time.Millisecond}, committed)
			resp := rec.Result()
			requireRetryAfter(t, "batch mid-commit", resp, http.StatusTooManyRequests)
			if ra := resp.Header.Get("Retry-After"); ra != "3" {
				t.Fatalf("2.5s wait rounded to Retry-After %q, want \"3\"", ra)
			}
			body, _ := io.ReadAll(resp.Body)
			if !strings.Contains(string(body), `"error"`) || !strings.Contains(string(body), `"results"`) {
				t.Fatalf("partial-commit body lost the error or the committed results: %s", body)
			}
			record("batch mid-commit body", reflectCodec, string(body))
		})
	})

	for shape, byCodec := range headers {
		if byCodec[false] != byCodec[true] {
			t.Errorf("%s: wire %q != reflect %q", shape, byCodec[false], byCodec[true])
		}
	}
}

// Regression (pre-PR bug): open and checkpoint-resume bodies were read
// with no bound at all. They now cap at maxOpenBody and answer 413
// with a JSON error, like oversized pushes always did.
func TestOpenBodyBounded(t *testing.T) {
	m := NewManager(Options{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	huge := strings.Repeat(" ", maxOpenBody+2)
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized open body: HTTP %d, want 413", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("413 Content-Type = %q, want application/json", ct)
	}
	if !strings.Contains(string(body), `"error"`) {
		t.Fatalf("413 body: %s", body)
	}

	// A legitimate open still fits comfortably.
	cl := &httpClient{t: t, base: srv.URL}
	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "ok", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
}

// Regression (pre-PR bug): the encode-failure 500 went through
// http.Error, stamping Content-Type: text/plain on a JSON error body.
// Both codecs' fallbacks now declare the body for what it is.
func TestEncodeFailureContentType(t *testing.T) {
	t.Run("writeJSON", func(t *testing.T) {
		rec := httptest.NewRecorder()
		writeJSON(rec, http.StatusOK, make(chan int)) // unencodable on purpose
		checkEncodeFailure(t, rec)
	})
	t.Run("writeWire", func(t *testing.T) {
		rec := httptest.NewRecorder()
		writeWire(rec, http.StatusOK, wireBuf(), errFakeEncode)
		checkEncodeFailure(t, rec)
	})
}

var errFakeEncode = &encodeTestError{}

type encodeTestError struct{}

func (*encodeTestError) Error() string { return "synthetic encode failure" }

func checkEncodeFailure(t *testing.T, rec *httptest.ResponseRecorder) {
	t.Helper()
	resp := rec.Result()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want 500", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if got := strings.TrimSpace(string(body)); got != `{"error":"response encoding failed"}` {
		t.Fatalf("fallback body: %s", body)
	}
}
