package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/stream"
)

// GET /v1/sessions/{id}/stream — the server-push transport over the
// subscription core in subscribe.go, framed as Server-Sent Events:
//
//	event: advisory
//	id: <slot>
//	data: {"slot":...}        one advisory, the codec's exact JSON
//
//	: hb                      keep-alive comment, Options.StreamHeartbeat
//
//	event: end
//	data: {"reason":"..."}    exactly-once terminal frame
//
// The data payload is produced by the same encoder the push responses
// use, so a subscribed client and a polling client see byte-identical
// advisory JSON under either codec. Frames are flushed in batches: one
// channel wakeup greedily drains everything the subscriber has buffered
// into a single write + flush, so a fast producer costs one syscall per
// burst, not per advisory. The id field carries the slot number —
// contiguous per session — so a client can detect gaps after a
// reconnect.
//
// Reconnect contract: an "evicted" end means the session was
// checkpointed to the store; subscribing again transparently resumes
// it and the stream continues with the next decided slot. "deleted"
// ends follow the flushed semi-online tail advisories; "drain" means
// the server is shutting down; "lagged" means this consumer fell
// Options.StreamBuffer advisories behind and was cut off.

func (a *api) streamAdvisories(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{"streaming unsupported by this server"})
		return
	}
	sub, err := a.m.Subscribe(r.PathValue("id"))
	if err != nil {
		// Subscription failed before the content type switched: the error
		// response is plain JSON like any other endpoint's.
		a.enc.writeErr(w, err)
		return
	}
	defer a.m.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hb := time.NewTicker(a.m.opts.StreamHeartbeat)
	defer hb.Stop()

	bp := wireBuf()
	defer putWireBuf(bp)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case adv, open := <-sub.C:
			if !open {
				writeSSEEnd(w, fl, sub.Reason())
				return
			}
			buf, err := appendSSEAdvisory((*bp)[:0], a.enc, adv)
			if err != nil {
				return // torn mid-stream; the client's gap detection catches it
			}
			// Batched flush: drain whatever else is already buffered into
			// the same write.
		drain:
			for {
				select {
				case adv, open := <-sub.C:
					if !open {
						*bp = buf
						_, _ = w.Write(buf)
						writeSSEEnd(w, fl, sub.Reason())
						return
					}
					if buf, err = appendSSEAdvisory(buf, a.enc, adv); err != nil {
						return
					}
				default:
					break drain
				}
			}
			*bp = buf
			if _, err := w.Write(buf); err != nil {
				return
			}
			fl.Flush()
		case <-hb.C:
			if _, err := w.Write([]byte(": hb\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// appendSSEAdvisory appends one advisory frame.
func appendSSEAdvisory(dst []byte, enc encoder, adv *stream.Advisory) ([]byte, error) {
	dst = append(dst, "event: advisory\nid: "...)
	dst = strconv.AppendInt(dst, int64(adv.Slot), 10)
	dst = append(dst, "\ndata: "...)
	dst, err := enc.appendAdvisory(dst, adv)
	if err != nil {
		return dst, err
	}
	return append(dst, "\n\n"...), nil
}

// writeSSEEnd emits the terminal frame. The reasons are fixed
// identifier-like strings (see subscribe.go), safe to embed verbatim.
func writeSSEEnd(w http.ResponseWriter, fl http.Flusher, reason string) {
	_, _ = w.Write([]byte("event: end\ndata: {\"reason\":\"" + reason + "\"}\n\n"))
	fl.Flush()
}
