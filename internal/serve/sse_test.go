package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/stream"
)

// sseFrame is one parsed server-sent event; heartbeat comments surface
// as event "comment".
type sseFrame struct {
	event string
	id    string
	data  string
}

// sseStream is a test-side SSE consumer: a reader goroutine parses the
// response body into frames.
type sseStream struct {
	t      *testing.T
	resp   *http.Response
	frames chan sseFrame
	cancel context.CancelFunc
}

// sseSubscribe opens GET /v1/sessions/{id}/stream and starts parsing.
func sseSubscribe(t *testing.T, base, id string) *sseStream {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sessions/"+id+"/stream", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe %q: HTTP %d: %s", id, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q, want text/event-stream", ct)
	}
	s := &sseStream{t: t, resp: resp, frames: make(chan sseFrame, 4096), cancel: cancel}
	go s.read()
	t.Cleanup(s.close)
	return s
}

func (s *sseStream) close() { s.cancel() }

func (s *sseStream) read() {
	defer close(s.frames)
	defer s.resp.Body.Close()
	sc := bufio.NewScanner(s.resp.Body)
	var f sseFrame
	pending := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if pending {
				s.frames <- f
				f, pending = sseFrame{}, false
			}
		case strings.HasPrefix(line, ":"):
			s.frames <- sseFrame{event: "comment", data: strings.TrimSpace(line[1:])}
		case strings.HasPrefix(line, "event: "):
			f.event, pending = line[len("event: "):], true
		case strings.HasPrefix(line, "id: "):
			f.id, pending = line[len("id: "):], true
		case strings.HasPrefix(line, "data: "):
			f.data, pending = line[len("data: "):], true
		}
	}
}

// next returns the next frame, failing the test after timeout. ok is
// false when the stream closed.
func (s *sseStream) next(timeout time.Duration) (sseFrame, bool) {
	s.t.Helper()
	select {
	case f, ok := <-s.frames:
		return f, ok
	case <-time.After(timeout):
		s.t.Fatal("timed out waiting for an SSE frame")
		return sseFrame{}, false
	}
}

// collectUntilEnd drains advisory frames (skipping comments) until the
// end frame, returning them and the end reason.
func (s *sseStream) collectUntilEnd(timeout time.Duration) ([]sseFrame, string) {
	s.t.Helper()
	var advs []sseFrame
	for {
		f, ok := s.next(timeout)
		if !ok {
			s.t.Fatal("stream closed without an end frame")
		}
		switch f.event {
		case "comment":
		case "advisory":
			advs = append(advs, f)
		case "end":
			var body struct {
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal([]byte(f.data), &body); err != nil {
				s.t.Fatalf("end frame data %q: %v", f.data, err)
			}
			return advs, body.Reason
		default:
			s.t.Fatalf("unexpected SSE event %q", f.event)
		}
	}
}

const sseWait = 10 * time.Second

// The SSE acceptance test: for a fully online and a semi-online
// algorithm, under both codecs, the advisories delivered over the
// stream are bit-identical — content and order — to the polled push
// results for the same trace, across a mid-stream checkpoint→evict→
// reconnect→resume cycle, with the semi-online tail delivered before
// the "deleted" end frame.
func TestSSEDifferential(t *testing.T) {
	for _, alg := range []string{"alg-b", "receding-horizon"} {
		t.Run(alg, func(t *testing.T) {
			forEachCodec(t, func(t *testing.T, reflectCodec bool) {
				testSSEDifferential(t, alg, reflectCodec)
			})
		})
	}
}

func testSSEDifferential(t *testing.T, alg string, reflectCodec bool) {
	const seed = 7
	sc, ok := engine.Lookup("quickstart")
	if !ok {
		t.Fatal("quickstart not registered")
	}
	ins := sc.Instance(seed)
	spec, ok := engine.LookupAlgorithm(alg)
	if !ok {
		t.Fatalf("%s not registered", alg)
	}
	want := serialAdvisories(t, spec, ins)

	m := NewManager(Options{ReflectCodec: reflectCodec, StreamHeartbeat: time.Hour})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}
	id := "sse-" + alg

	cl.mustDo("POST", "/v1/sessions", OpenRequest{
		ID: id, Alg: alg, Fleet: FleetJSON{Scenario: "quickstart", Seed: seed},
	}, nil, http.StatusCreated)
	sub := sseSubscribe(t, srv.URL, id)

	// Drive the trace with polls, cycling the session through
	// checkpoint→evict at the halfway slot.
	var polled []stream.Advisory
	half := ins.T() / 2
	pushRange := func(from, to int) {
		for ts := from; ts <= to; ts++ {
			var res PushResult
			cl.mustDo("POST", "/v1/sessions/"+id+"/push", PushRequest{Lambda: ins.Lambda[ts-1]}, &res, http.StatusOK)
			if res.Decided {
				polled = append(polled, *res.Advisory)
			}
		}
	}
	pushRange(1, half)
	cl.mustDo("POST", "/v1/sessions/"+id+"/checkpoint", nil, nil, http.StatusOK)
	if err := m.Evict(id); err != nil {
		t.Fatalf("evict: %v", err)
	}

	streamed, reason := sub.collectUntilEnd(sseWait)
	if reason != StreamEndEvicted {
		t.Fatalf("first stream ended %q, want %q", reason, StreamEndEvicted)
	}
	if len(streamed) != len(polled) {
		t.Fatalf("pre-evict stream delivered %d advisories, polls decided %d", len(streamed), len(polled))
	}

	// Reconnect: the subscription resumes the evicted session from the
	// store, exactly as a push would.
	sub2 := sseSubscribe(t, srv.URL, id)
	pushRange(half+1, ins.T())
	var closed CloseResult
	cl.mustDo("DELETE", "/v1/sessions/"+id, nil, &closed, http.StatusOK)
	polled = append(polled, closed.Advisories...)

	s2, reason := sub2.collectUntilEnd(sseWait)
	if reason != StreamEndDeleted {
		t.Fatalf("second stream ended %q, want %q", reason, StreamEndDeleted)
	}
	streamed = append(streamed, s2...)

	// Bit-identity, three ways: the streamed payload bytes must equal
	// the canonical encoding of each polled advisory (wire and reflect
	// emit identical bytes, so json.Marshal is the reference for both),
	// the decoded values must match, and the id field must carry the
	// slot for gap detection.
	if len(streamed) != len(polled) {
		t.Fatalf("stream delivered %d advisories, polls decided %d", len(streamed), len(polled))
	}
	if len(polled) != len(want) {
		t.Fatalf("polls decided %d advisories, serial reference %d", len(polled), len(want))
	}
	for i := range polled {
		ref, err := json.Marshal(&polled[i])
		if err != nil {
			t.Fatal(err)
		}
		if streamed[i].data != string(ref) {
			t.Fatalf("slot %d: stream payload %s != polled %s", i+1, streamed[i].data, ref)
		}
		if streamed[i].id != strconv.Itoa(polled[i].Slot) {
			t.Fatalf("slot %d: frame id %q != slot %d", i+1, streamed[i].id, polled[i].Slot)
		}
		var got stream.Advisory
		if err := json.Unmarshal([]byte(streamed[i].data), &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("slot %d: streamed advisory %+v != serial %+v", i+1, got, want[i])
		}
	}

	if met := m.Metrics(); met.SessionsResumed != 1 {
		t.Errorf("resumed %d sessions, want 1 (the post-evict reconnect)", met.SessionsResumed)
	}
	if n := m.streamSubs.Load(); n != 0 {
		t.Errorf("stream subscriber gauge = %d after both streams ended, want 0", n)
	}
}

// Batched flushes: advisories decided while the consumer is not
// reading arrive in order and complete, and one stream sees everything
// a batch push decides.
func TestSSEBatchPush(t *testing.T) {
	forEachCodec(t, func(t *testing.T, reflectCodec bool) {
		m := NewManager(Options{ReflectCodec: reflectCodec, StreamHeartbeat: time.Hour})
		srv := httptest.NewServer(NewHandler(m))
		defer srv.Close()
		cl := &httpClient{t: t, base: srv.URL}

		cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "b", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
		sub := sseSubscribe(t, srv.URL, "b")

		trace := quickstartTrace(t)[:8]
		batch := make([]PushRequest, len(trace))
		for i, l := range trace {
			batch[i] = PushRequest{Lambda: l}
		}
		var res []PushResult
		cl.mustDo("POST", "/v1/sessions/b/push", batch, &res, http.StatusOK)
		cl.mustDo("DELETE", "/v1/sessions/b", nil, nil, http.StatusOK)

		streamed, reason := sub.collectUntilEnd(sseWait)
		if reason != StreamEndDeleted {
			t.Fatalf("stream ended %q, want %q", reason, StreamEndDeleted)
		}
		if len(streamed) != len(res) {
			t.Fatalf("stream delivered %d advisories for a %d-slot batch", len(streamed), len(res))
		}
		for i, f := range streamed {
			if f.id != strconv.Itoa(res[i].Advisory.Slot) {
				t.Fatalf("frame %d id %q != slot %d", i, f.id, res[i].Advisory.Slot)
			}
		}
	})
}

// Heartbeats keep an idle stream verifiably alive, and a client
// disconnect tears the subscription down server-side.
func TestSSEHeartbeatAndDisconnect(t *testing.T) {
	m := NewManager(Options{StreamHeartbeat: 5 * time.Millisecond})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}

	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "hb", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	sub := sseSubscribe(t, srv.URL, "hb")
	for i := 0; i < 2; i++ {
		if f, ok := sub.next(sseWait); !ok || f.event != "comment" || f.data != "hb" {
			t.Fatalf("frame %d on an idle stream: %+v (ok=%v), want a hb comment", i, f, ok)
		}
	}

	sub.cancel() // client disconnect
	deadline := time.Now().Add(sseWait)
	for m.streamSubs.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber gauge still %d after client disconnect", m.streamSubs.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// Subscribing to an unknown session answers the ordinary JSON 404 —
// the content type never switches to text/event-stream.
func TestSSEUnknownSession(t *testing.T) {
	forEachCodec(t, func(t *testing.T, reflectCodec bool) {
		m := NewManager(Options{ReflectCodec: reflectCodec})
		srv := httptest.NewServer(NewHandler(m))
		defer srv.Close()

		resp, err := http.Get(srv.URL + "/v1/sessions/nope/stream")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("HTTP %d, want 404: %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("error Content-Type = %q, want application/json", ct)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Fatalf("no error body: %s", body)
		}
	})
}

// A subscriber that stops reading is cut off with reason "lagged" once
// it falls StreamBuffer behind — the push path never blocks on it, and
// the session keeps serving.
func TestSubscribeLagged(t *testing.T) {
	m := NewManager(Options{StreamBuffer: 2})
	if _, err := m.Open(OpenRequest{ID: "lag", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("lag")
	if err != nil {
		t.Fatal(err)
	}
	trace := quickstartTrace(t)
	for i := 0; i < 4; i++ { // buffer 2 + the overflow push
		if _, err := m.Push("lag", PushRequest{Lambda: trace[i]}); err != nil {
			t.Fatalf("push %d with a lagging subscriber: %v", i, err)
		}
	}
	got := 0
	for range sub.C {
		got++
	}
	if got != 2 {
		t.Fatalf("lagged subscriber received %d advisories, want the 2 buffered", got)
	}
	if sub.Reason() != StreamEndLagged {
		t.Fatalf("reason %q, want %q", sub.Reason(), StreamEndLagged)
	}
	if n := m.streamSubs.Load(); n != 0 {
		t.Fatalf("subscriber gauge = %d, want 0", n)
	}
	// Unsubscribe after the fact is a harmless no-op.
	m.Unsubscribe(sub)
	if n := m.streamSubs.Load(); n != 0 {
		t.Fatalf("gauge went negative after late Unsubscribe: %d", n)
	}
}

// Manager shutdown ends every subscription with reason "drain".
func TestSubscribeDrain(t *testing.T) {
	m := NewManager(Options{})
	if _, err := m.Open(OpenRequest{ID: "dr", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("dr")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for range sub.C {
	}
	if sub.Reason() != StreamEndDrain {
		t.Fatalf("reason %q, want %q", sub.Reason(), StreamEndDrain)
	}
	if _, err := m.Subscribe("dr"); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after close: %v, want ErrClosed", err)
	}
}

// Concurrent subscribers on one session all see the full advisory
// sequence, in order.
func TestSSEFanOut(t *testing.T) {
	m := NewManager(Options{StreamHeartbeat: time.Hour})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cl := &httpClient{t: t, base: srv.URL}

	cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "fan", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
	subs := make([]*sseStream, 3)
	for i := range subs {
		subs[i] = sseSubscribe(t, srv.URL, "fan")
	}
	trace := quickstartTrace(t)[:6]
	for _, l := range trace {
		cl.mustDo("POST", "/v1/sessions/fan/push", PushRequest{Lambda: l}, nil, http.StatusOK)
	}
	cl.mustDo("DELETE", "/v1/sessions/fan", nil, nil, http.StatusOK)

	var first []sseFrame
	for i, sub := range subs {
		streamed, reason := sub.collectUntilEnd(sseWait)
		if reason != StreamEndDeleted {
			t.Fatalf("subscriber %d ended %q", i, reason)
		}
		if len(streamed) != len(trace) {
			t.Fatalf("subscriber %d got %d advisories, want %d", i, len(streamed), len(trace))
		}
		if i == 0 {
			first = streamed
			continue
		}
		for j := range streamed {
			if streamed[j] != first[j] {
				t.Fatalf("subscriber %d frame %d diverges: %+v != %+v", i, j, streamed[j], first[j])
			}
		}
	}
}
