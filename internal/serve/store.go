package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stream"
)

// ErrSnapshotCorrupt marks a snapshot file that existed but did not
// decode. DirStore quarantines the file (renames it to <name>.corrupt)
// before returning this, so the id is immediately reusable; the manager
// converts the error into a clean miss and counts it.
var ErrSnapshotCorrupt = errors.New("serve: snapshot corrupt")

// FleetJSON is the portable fleet descriptor of a served session: either a
// registered scenario's fleet (by name and seed) or an inline list of
// server types (static cost profiles of the built-in families). It is part
// of every snapshot, so an evicted session can be rebuilt by a process
// that never saw the original open request.
type FleetJSON struct {
	Scenario string                 `json:"scenario,omitempty"`
	Seed     int64                  `json:"seed,omitempty"`
	Types    []model.ServerTypeJSON `json:"types,omitempty"`
}

// Resolve materialises the fleet template the descriptor names.
func (f *FleetJSON) Resolve() ([]model.ServerType, error) {
	switch {
	case f.Scenario != "" && len(f.Types) > 0:
		return nil, fmt.Errorf("serve: fleet names both a scenario and inline types")
	case f.Scenario != "":
		sc, ok := engine.Lookup(f.Scenario)
		if !ok {
			return nil, fmt.Errorf("serve: unknown fleet scenario %q", f.Scenario)
		}
		return sc.Instance(f.Seed).Types, nil
	case len(f.Types) > 0:
		return model.FleetTemplate(f.Types)
	default:
		return nil, fmt.Errorf("serve: fleet needs a scenario name or inline types")
	}
}

// Snapshot is an evicted (or client-checkpointed) session in portable
// form: identity, fleet descriptor and the session's replay log
// (stream.Checkpoint, which already names the algorithm). Resuming it
// reproduces the live session bit-identically.
type Snapshot struct {
	ID         string             `json:"id"`
	Fleet      FleetJSON          `json:"fleet"`
	Checkpoint *stream.Checkpoint `json:"checkpoint"`
}

// SnapshotStore persists evicted sessions. Implementations must be safe
// for concurrent use; Load reports ok=false for unknown ids.
type SnapshotStore interface {
	Save(snap *Snapshot) error
	Load(id string) (snap *Snapshot, ok bool, err error)
	Delete(id string) error
}

// MemStore is the in-memory SnapshotStore: eviction sheds live session
// state (algorithm histories, trackers) down to the replay log, and
// snapshots die with the process.
type MemStore struct {
	mu    sync.Mutex
	snaps map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{snaps: map[string][]byte{}} }

// Save implements SnapshotStore. Snapshots are kept JSON-encoded so the
// in-memory and on-disk stores exercise the identical portable form.
func (s *MemStore) Save(snap *Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snaps[snap.ID] = data
	return nil
}

// Load implements SnapshotStore.
func (s *MemStore) Load(id string) (*Snapshot, bool, error) {
	s.mu.Lock()
	data, ok := s.snaps[id]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, false, err
	}
	return &snap, true, nil
}

// Delete implements SnapshotStore.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.snaps, id)
	return nil
}

// DirStore persists snapshots as one JSON file per session under a
// directory, so an idle-evicted session survives a daemon restart — and,
// because every save fsyncs the data before the rename and the directory
// after it, survives a power cut too, not just a process crash.
type DirStore struct {
	dir string
	// trace, when set, observes each step of the save sequence
	// (write-temp, sync-temp, close-temp, rename, sync-dir) so tests can
	// assert the durability ordering without instrumenting the kernel.
	trace func(op, path string)
}

// NewDirStore creates the directory if needed, fsyncs its parent so the
// creation itself is durable, and returns the store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(dir)); err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// syncDir fsyncs a directory so entries renamed or created in it are on
// disk, not just in the page cache.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *DirStore) traceOp(op, path string) {
	if s.trace != nil {
		s.trace(op, path)
	}
}

// path maps a session id onto a file name. Ids are restricted to a safe
// alphabet at open time (see validID), so the id is the file name.
func (s *DirStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Save implements SnapshotStore with write → fsync → rename → fsync-dir,
// so a crashed daemon never leaves a torn snapshot behind and a power
// cut after Save returns cannot roll the rename back. Without the data
// fsync before the rename, a crash could durably commit the new name to
// an empty file — atomic, but atomically wrong.
func (s *DirStore) Save(snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "."+snap.ID+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	s.traceOp("write-temp", tmp.Name())
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	s.traceOp("sync-temp", tmp.Name())
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.traceOp("close-temp", tmp.Name())
	if err := os.Rename(tmp.Name(), s.path(snap.ID)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.traceOp("rename", s.path(snap.ID))
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.traceOp("sync-dir", s.dir)
	return nil
}

// Load implements SnapshotStore. A file that exists but does not decode
// is quarantined — renamed to <name>.corrupt so it never wedges its id —
// and reported as ErrSnapshotCorrupt.
func (s *DirStore) Load(id string) (*Snapshot, bool, error) {
	data, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		if qerr := quarantine(s.path(id)); qerr != nil {
			return nil, false, fmt.Errorf("serve: snapshot %s: %v (quarantine failed: %v)", id, err, qerr)
		}
		return nil, false, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, id, err)
	}
	return &snap, true, nil
}

// quarantine moves a corrupt file aside to <name>.corrupt, clobbering
// any previous quarantine of the same name.
func quarantine(path string) error {
	return os.Rename(path, path+".corrupt")
}

// Delete implements SnapshotStore.
func (s *DirStore) Delete(id string) error {
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// validID reports whether a client-chosen session id is acceptable: short
// and from a file- and URL-safe alphabet (DirStore uses it verbatim as a
// file name).
func validID(id string) bool {
	if id == "" || len(id) > 64 || strings.HasPrefix(id, ".") {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}
