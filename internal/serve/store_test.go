package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stream"
)

// The save path must hit its durability points in order: data written
// and fsynced before the rename publishes the name, the directory
// fsynced after. Any other order has a crash window where the rename is
// durable but the bytes are not — an atomically-committed empty file.
func TestDirStoreSaveSyncSequence(t *testing.T) {
	store, err := NewDirStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	store.trace = func(op, path string) { ops = append(ops, op) }
	snap := &Snapshot{ID: "seq", Fleet: quickstartFleet(), Checkpoint: &stream.Checkpoint{Alg: "alg-b"}}
	if err := store.Save(snap); err != nil {
		t.Fatal(err)
	}
	want := []string{"write-temp", "sync-temp", "close-temp", "rename", "sync-dir"}
	if len(ops) != len(want) {
		t.Fatalf("save traced %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("save step %d is %q, want %q (full trace %v)", i, ops[i], want[i], ops)
		}
	}
	if _, ok, err := store.Load("seq"); err != nil || !ok {
		t.Fatalf("Load after traced save: ok=%v err=%v", ok, err)
	}
}

// A snapshot file that exists but does not decode is quarantined to
// <name>.corrupt on first load: the load reports ErrSnapshotCorrupt
// once, subsequent loads are clean misses, and the id is immediately
// reusable for a fresh save.
func TestDirStoreQuarantinesCorrupt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"id":"bad","fleet":`), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ok, err := store.Load("bad")
	if ok || !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("Load(corrupt) = ok=%v err=%v, want ErrSnapshotCorrupt", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still at %s after quarantine", path)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}

	if _, ok, err := store.Load("bad"); ok || err != nil {
		t.Fatalf("second Load = ok=%v err=%v, want clean miss", ok, err)
	}
	snap := &Snapshot{ID: "bad", Fleet: quickstartFleet(), Checkpoint: &stream.Checkpoint{Alg: "alg-b"}}
	if err := store.Save(snap); err != nil {
		t.Fatalf("Save over quarantined id: %v", err)
	}
	if _, ok, err := store.Load("bad"); err != nil || !ok {
		t.Fatalf("Load after re-save: ok=%v err=%v", ok, err)
	}
}

// Through the manager a corrupt snapshot reads as an unknown session —
// a clean 404-shaped error, not a wedged 5xx — the event is counted,
// and the id can be opened fresh.
func TestManagerCorruptSnapshotCleanMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hurt.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Store: store})
	defer m.Close()

	if _, err := m.Info("hurt"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Info over corrupt snapshot err = %v, want ErrUnknownSession", err)
	}
	if got := m.Metrics().SnapshotCorrupt; got != 1 {
		t.Fatalf("snapshot_corrupt = %d, want 1", got)
	}
	if _, err := m.Open(OpenRequest{ID: "hurt", Alg: "alg-b", Fleet: quickstartFleet()}); err != nil {
		t.Fatalf("Open over quarantined id: %v", err)
	}
	if _, err := m.Push("hurt", PushRequest{Lambda: 2}); err != nil {
		t.Fatalf("push to reopened id: %v", err)
	}
}
