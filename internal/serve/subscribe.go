package serve

import (
	"repro/internal/stream"
)

// Advisory subscriptions: the server-push counterpart of polling push
// responses. A Subscriber is registered on a live session (resuming it
// from the store first if needed, exactly like a push) and receives
// every advisory the session decides from that point on, in decision
// order — the same *stream.Advisory values the push responses carry,
// so a subscribed client and a polling client see bit-identical
// advisories (the SSE differential test proves it).
//
// Delivery is strictly non-blocking for the push path: pushLocked
// hands the advisory to each subscriber's buffered channel under the
// session lock it already holds, and a subscriber whose buffer is full
// is disconnected (reason "lagged") instead of ever making a push
// wait. Subscriptions end exactly once, with a reason, whenever the
// session stops being resident: eviction ("evicted" — the client
// reconnects and the resume is transparent), deletion ("deleted",
// after the flushed semi-online tail advisories are delivered), and
// manager shutdown ("drain").

// Stream end reasons, as reported in the SSE end frame.
const (
	StreamEndEvicted = "evicted" // checkpointed to the store; reconnect resumes
	StreamEndDeleted = "deleted" // session closed; tail advisories were delivered
	StreamEndDrain   = "drain"   // manager shutting down
	StreamEndLagged  = "lagged"  // subscriber fell StreamBuffer behind
	StreamEndClient  = "unsubscribed"
)

// Subscriber is one live advisory subscription.
type Subscriber struct {
	// C delivers the session's advisories in decision order. It is
	// closed when the subscription ends; Reason then says why.
	C <-chan *stream.Advisory

	ch     chan *stream.Advisory
	ls     *liveSession
	reason string // written under ls.mu before ch is closed
	closed bool   // guarded by ls.mu
}

// Reason reports why the subscription ended. Valid only after C is
// closed (the close is the synchronization point that publishes it).
func (s *Subscriber) Reason() string { return s.reason }

// Subscribe registers a subscriber on the session, transparently
// resuming it from the store like any push would. Unknown ids fail
// with ErrUnknownSession; the session-cap and closed-manager errors
// are the same as a push's.
func (m *Manager) Subscribe(id string) (*Subscriber, error) {
	var sub *Subscriber
	err := m.withSession(id, func(ls *liveSession) {
		ch := make(chan *stream.Advisory, m.opts.StreamBuffer)
		sub = &Subscriber{C: ch, ch: ch, ls: ls}
		ls.subs = append(ls.subs, sub)
		m.streamSubs.Add(1)
	})
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// Unsubscribe ends a subscription from the consumer side (client
// disconnect). Safe to call after the subscription already ended for
// another reason — ending is exactly-once.
func (m *Manager) Unsubscribe(sub *Subscriber) {
	ls := sub.ls
	ls.mu.Lock()
	if !sub.closed {
		sub.endLocked(m, StreamEndClient)
		for i, s := range ls.subs {
			if s == sub {
				last := len(ls.subs) - 1
				ls.subs[i] = ls.subs[last]
				ls.subs[last] = nil
				ls.subs = ls.subs[:last]
				break
			}
		}
	}
	ls.mu.Unlock()
}

// endLocked ends the subscription exactly once: reason first, then the
// channel close that publishes it. Callers hold ls.mu.
func (s *Subscriber) endLocked(m *Manager, reason string) {
	if s.closed {
		return
	}
	s.closed = true
	s.reason = reason
	close(s.ch)
	m.streamSubs.Add(-1)
}

// publishLocked fans one decided advisory out to the session's
// subscribers. Callers hold ls.mu. The send never blocks: a full
// buffer disconnects that subscriber ("lagged") so a stalled consumer
// costs itself, not the push path or the other subscribers.
func (m *Manager) publishLocked(ls *liveSession, adv *stream.Advisory) {
	if len(ls.subs) == 0 {
		return
	}
	keep := ls.subs[:0]
	for _, sub := range ls.subs {
		select {
		case sub.ch <- adv:
			keep = append(keep, sub)
		default:
			sub.endLocked(m, StreamEndLagged)
		}
	}
	for i := len(keep); i < len(ls.subs); i++ {
		ls.subs[i] = nil
	}
	ls.subs = keep
}

// closeSubsLocked ends every subscription on the session with one
// reason. Callers hold ls.mu; the teardown paths (evict, delete,
// drain) run it before the session pointer goes stale so no subscriber
// is ever left on a dead session.
func (m *Manager) closeSubsLocked(ls *liveSession, reason string) {
	for i, sub := range ls.subs {
		sub.endLocked(m, reason)
		ls.subs[i] = nil
	}
	ls.subs = ls.subs[:0]
}
