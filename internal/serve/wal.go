package serve

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/stream"
	"repro/internal/wal"
)

// walHeader is the identity frame at the start of every session WAL:
// enough to rebuild the session from nothing (algorithm plus fleet
// descriptor) when the snapshot store has no record of it. It is
// encoded with encoding/json — the header is written once per log, so
// the hand-rolled codec buys nothing here.
type walHeader struct {
	Alg   string    `json:"alg"`
	Fleet FleetJSON `json:"fleet"`
}

func (m *Manager) walEnabled() bool { return m.opts.WALDir != "" }

// walPath maps a session id onto its log file. Ids pass validID before
// they reach here, so the id is safe as a file name.
func (m *Manager) walPath(id string) string {
	return filepath.Join(m.opts.WALDir, id+".wal")
}

func (m *Manager) walOptions() wal.Options {
	return wal.Options{
		Sync:         m.opts.WALSync,
		SyncInterval: m.opts.WALSyncInterval,
		Now:          m.nowFn,
		OpenFile:     m.opts.WALOpenFile,
	}
}

// attachWAL opens (creating if needed) the session's write-ahead log and
// hangs it on ls; the caller holds ls.mu. fresh marks a newly opened
// session id: leftover records from a previous incarnation of the id are
// truncated rather than kept — the snapshot store has already verified
// the id is unused, so such records belong to a deleted session whose
// WAL removal did not complete. A no-op when the WAL is disabled.
func (m *Manager) attachWAL(ls *liveSession, fresh bool) (wal.ScanStats, error) {
	if !m.walEnabled() {
		return wal.ScanStats{}, nil
	}
	hdr, err := json.Marshal(walHeader{Alg: ls.alg, Fleet: ls.fleet})
	if err != nil {
		return wal.ScanStats{}, err
	}
	l, stats, err := wal.Open(m.walPath(ls.id), hdr, m.walOptions())
	if err != nil {
		return stats, err
	}
	if fresh && len(stats.Records) > 0 {
		if err := l.Reset(); err != nil {
			l.Close()
			return stats, err
		}
		stats.Records = nil
	}
	ls.wal = l
	return stats, nil
}

// replayWALLocked replays a resumed session's WAL delta — the slots
// appended after the snapshot it was just rebuilt from. Replay is
// tolerant (duplicates skip, validation-rejected orphans skip) and a
// replay error leaves the applied prefix standing: the session is then
// exactly as far as the log could carry it, and a sticky algorithm
// failure surfaces to the client the same way it would have live.
func replayWALLocked(ls *liveSession, recs []wal.Record) int {
	if len(recs) == 0 || ls.sess == nil {
		return 0
	}
	delta := make([]stream.DeltaRecord, len(recs))
	for i, r := range recs {
		delta[i] = stream.DeltaRecord{T: r.T, Lambda: r.Lambda, Counts: r.Counts}
	}
	applied, _ := ls.sess.ReplayDelta(delta)
	return applied
}

// compactWALLocked truncates the session's log after a successful
// snapshot save: everything in it is now covered by the snapshot. A
// failed truncate is ignored — stale records are skipped on replay, so
// the log is merely larger than it needs to be.
func (ls *liveSession) compactWALLocked() {
	if ls.wal != nil {
		ls.wal.Reset()
	}
}

// closeWALLocked releases the session's log handle (the file stays).
func (ls *liveSession) closeWALLocked() {
	if ls.wal != nil {
		ls.wal.Close()
		ls.wal = nil
	}
}

// SyncWALs fsyncs every live session's dirty log, regardless of sync
// policy. Append only fsyncs when appends arrive, so without this sweep
// an idle session under SyncInterval would keep its unsynced tail dirty
// indefinitely and the policy's bounded-loss promise would only hold
// under a steady push stream; the daemon runs it on the interval
// cadence. Sessions mid-push are skipped — their own append path syncs
// by policy, and the next sweep retries. Returns how many logs were
// fsynced and the first sync error.
func (m *Manager) SyncWALs() (int, error) {
	if !m.walEnabled() {
		return 0, nil
	}
	synced := 0
	var firstErr error
	var cands []*liveSession
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		cands = cands[:0]
		for _, ls := range sh.live {
			cands = append(cands, ls)
		}
		sh.mu.Unlock()
		for _, ls := range cands {
			if !ls.mu.TryLock() {
				continue
			}
			if !ls.gone && ls.wal != nil && ls.wal.Dirty() {
				if err := ls.wal.Sync(); err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					m.stripeFor(ls.id).walFsyncs.Add(1)
					synced++
				}
			}
			ls.mu.Unlock()
		}
	}
	return synced, firstErr
}

// removeWAL deletes a session's log file, for the delete path — the id
// is gone, so its history must not resurrect it.
func (m *Manager) removeWAL(id string) {
	if m.walEnabled() {
		os.Remove(m.walPath(id))
	}
}
