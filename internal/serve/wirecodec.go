package serve

import (
	"net/http"
	"sync"

	"repro/internal/wire"
)

// Zero-reflection encoders for the serve-owned response types on the
// hot path (push results come straight from internal/wire; session info
// and healthz are encoded here because their types live in this
// package). Each appender produces exactly json.Marshal's bytes —
// TestServeWireEncoders diffs them against the reflection encoder, and
// the HTTP differential suite runs the full API under both codecs.

// wirePool recycles the response buffers of the wire encoders; like
// encPool, oversized buffers are dropped rather than pinned.
var wirePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

func wireBuf() *[]byte {
	bp := wirePool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

func putWireBuf(bp *[]byte) {
	if cap(*bp) <= pooledBufMax {
		wirePool.Put(bp)
	}
}

// writeWire finishes a response whose body was wire-encoded into *bp,
// appending the trailing newline json.Encoder emits so the two codecs
// stay byte-identical on the socket. err is the encode error, if any;
// it answers the same JSON 500 as writeJSON's encode-failure path.
// The buffer is recycled in all cases.
func writeWire(w http.ResponseWriter, status int, bp *[]byte, err error) {
	if err != nil {
		putWireBuf(bp)
		encodeFailure(w)
		return
	}
	*bp = append(*bp, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(*bp) // the status line is out; nothing useful to do on error
	putWireBuf(bp)
}

// writeWireError answers a manager error exactly as writeError does:
// {"error":"..."} with the httpStatus mapping and the same Retry-After
// header on shed responses.
func writeWireError(w http.ResponseWriter, err error) {
	setRetryAfter(w, err)
	bp := wireBuf()
	*bp = wire.AppendError(*bp, err.Error())
	writeWire(w, httpStatus(err), bp, nil)
}

// appendSessionInfo appends one SessionInfo object.
func appendSessionInfo(dst []byte, info *SessionInfo) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = wire.AppendString(dst, info.ID)
	dst = append(dst, `,"alg":`...)
	dst = wire.AppendString(dst, info.Alg)
	dst = append(dst, `,"name":`...)
	dst = wire.AppendString(dst, info.Name)
	dst = append(dst, `,"fed":`...)
	dst = wire.AppendInt(dst, int64(info.Fed))
	dst = append(dst, `,"decided":`...)
	dst = wire.AppendInt(dst, int64(info.Decided))
	if info.Pending != 0 {
		dst = append(dst, `,"pending":`...)
		dst = wire.AppendInt(dst, int64(info.Pending))
	}
	var err error
	dst = append(dst, `,"cum_cost":`...)
	if dst, err = wire.AppendFloat(dst, info.CumCost); err != nil {
		return dst, err
	}
	if info.Failed != "" {
		dst = append(dst, `,"failed":`...)
		dst = wire.AppendString(dst, info.Failed)
	}
	return append(dst, '}'), nil
}

// appendHealthz appends GET /v1/healthz's body: {"ok":...,"metrics":{...}}.
func appendHealthz(dst []byte, ok bool, mt *Metrics) ([]byte, error) {
	dst = append(dst, `{"ok":`...)
	dst = wire.AppendBool(dst, ok)
	dst = append(dst, `,"metrics":{"live_sessions":`...)
	dst = wire.AppendInt(dst, int64(mt.LiveSessions))
	dst = append(dst, `,"sessions_opened":`...)
	dst = wire.AppendUint(dst, mt.SessionsOpened)
	dst = append(dst, `,"sessions_resumed":`...)
	dst = wire.AppendUint(dst, mt.SessionsResumed)
	dst = append(dst, `,"sessions_evicted":`...)
	dst = wire.AppendUint(dst, mt.SessionsEvicted)
	dst = append(dst, `,"sessions_deleted":`...)
	dst = wire.AppendUint(dst, mt.SessionsDeleted)
	dst = append(dst, `,"slots_pushed":`...)
	dst = wire.AppendUint(dst, mt.SlotsPushed)
	dst = append(dst, `,"push_errors":`...)
	dst = wire.AppendUint(dst, mt.PushErrors)
	dst = append(dst, `,"pushes_shed":`...)
	dst = wire.AppendUint(dst, mt.PushesShed)
	dst = append(dst, `,"push_timeouts":`...)
	dst = wire.AppendUint(dst, mt.PushTimeouts)
	dst = append(dst, `,"store_retries":`...)
	dst = wire.AppendUint(dst, mt.StoreRetries)
	dst = append(dst, `,"wal_appends":`...)
	dst = wire.AppendUint(dst, mt.WALAppends)
	dst = append(dst, `,"wal_fsyncs":`...)
	dst = wire.AppendUint(dst, mt.WALFsyncs)
	dst = append(dst, `,"wal_recovered_sessions":`...)
	dst = wire.AppendUint(dst, mt.WALRecoveredSessions)
	dst = append(dst, `,"wal_torn_tails":`...)
	dst = wire.AppendUint(dst, mt.WALTornTails)
	dst = append(dst, `,"snapshot_corrupt":`...)
	dst = wire.AppendUint(dst, mt.SnapshotCorrupt)
	var err error
	dst = append(dst, `,"push_p50_us":`...)
	if dst, err = wire.AppendFloat(dst, mt.PushP50Micros); err != nil {
		return dst, err
	}
	dst = append(dst, `,"push_p99_us":`...)
	if dst, err = wire.AppendFloat(dst, mt.PushP99Micros); err != nil {
		return dst, err
	}
	return append(dst, '}', '}'), nil
}
