package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The serve-owned wire encoders (session info, healthz) must be
// byte-identical to json.Marshal, like everything in internal/wire.
func TestServeWireEncoders(t *testing.T) {
	infos := []SessionInfo{
		{},
		{ID: "s-1", Alg: "alg-b", Name: "Algorithm B", Fed: 48, Decided: 48, CumCost: 1234.5625},
		{ID: "semi", Alg: "alg-c", Name: "Algorithm C", Fed: 10, Decided: 7, Pending: 3,
			CumCost: 1e-9, Failed: `subdivision cap <&> "hit"`},
		{ID: "x", CumCost: math.MaxFloat64, Pending: -1},
	}
	for _, info := range infos {
		got, err := appendSessionInfo(nil, &info)
		want, werr := json.Marshal(info)
		if (err != nil) != (werr != nil) {
			t.Fatalf("appendSessionInfo(%+v): err=%v, json err=%v", info, err, werr)
		}
		if err == nil && !bytes.Equal(got, want) {
			t.Fatalf("appendSessionInfo(%+v):\nwire %s\njson %s", info, got, want)
		}
	}

	metrics := []Metrics{
		{},
		{LiveSessions: 3, SessionsOpened: 100, SessionsResumed: 2, SessionsEvicted: 2,
			SessionsDeleted: 97, SlotsPushed: 4800, PushErrors: 1,
			PushesShed: 12, PushTimeouts: 3, StoreRetries: 5,
			WALAppends: 4800, WALFsyncs: 4795, WALRecoveredSessions: 2,
			WALTornTails: 1, SnapshotCorrupt: 1,
			PushP50Micros: 812.5, PushP99Micros: 1514.2265625},
		{SlotsPushed: math.MaxUint64, PushP50Micros: 1e-7},
		{PushesShed: math.MaxUint64, PushTimeouts: 1, StoreRetries: math.MaxUint64,
			WALAppends: math.MaxUint64, SnapshotCorrupt: math.MaxUint64},
	}
	for _, mt := range metrics {
		got, err := appendHealthz(nil, true, &mt)
		want, werr := json.Marshal(struct {
			OK      bool    `json:"ok"`
			Metrics Metrics `json:"metrics"`
		}{true, mt})
		if (err != nil) != (werr != nil) {
			t.Fatalf("appendHealthz(%+v): err=%v, json err=%v", mt, err, werr)
		}
		if err == nil && !bytes.Equal(got, want) {
			t.Fatalf("appendHealthz(%+v):\nwire %s\njson %s", mt, got, want)
		}
	}
}

// TestHTTPPushBodies drives the same raw bodies — valid, malformed,
// truncated, oversize — at two identically seeded servers, one per
// codec, and requires byte-identical responses: same status, same
// headers that matter, same body down to encoding/json's error prose
// (the wire decoder's fallback re-decode) and trailing newline.
func TestHTTPPushBodies(t *testing.T) {
	type server struct {
		srv *httptest.Server
	}
	var servers []server
	for _, reflectCodec := range []bool{false, true} {
		m := NewManager(Options{ReflectCodec: reflectCodec})
		srv := httptest.NewServer(NewHandler(m))
		defer srv.Close()
		cl := &httpClient{t: t, base: srv.URL}
		cl.mustDo("POST", "/v1/sessions", OpenRequest{ID: "s", Alg: "alg-b", Fleet: quickstartFleet()}, nil, http.StatusCreated)
		servers = append(servers, server{srv})
	}

	post := func(t *testing.T, srv *httptest.Server, path, body string) (int, string, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(data)
	}

	oversize := `{"lambda":1,"counts":[` + strings.Repeat("1,", maxPushBody/2) + `1]}`

	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		// Well-formed pushes: the sessions advance in lockstep, so
		// advisory payloads must match byte for byte too.
		{"single", "/v1/sessions/s/push", `{"lambda":3.5}`, http.StatusOK},
		{"single folded key", "/v1/sessions/s/push", `{"Lambda":2.25}`, http.StatusOK},
		{"single escaped key", "/v1/sessions/s/push", `{"lambd\u0061":1.5}`, http.StatusOK},
		{"single null lambda", "/v1/sessions/s/push", `{"lambda":null,"counts":null}`, http.StatusOK},
		{"single duplicate keys", "/v1/sessions/s/push", `{"lambda":9,"lambda":0.5}`, http.StatusOK},
		{"single trailing garbage", "/v1/sessions/s/push", `{"lambda":1}x[`, http.StatusOK},
		{"batch", "/v1/sessions/s/push", `[{"lambda":1},{"lambda":2.5}]`, http.StatusOK},
		{"batch empty", "/v1/sessions/s/push", `[]`, http.StatusOK},
		{"batch null element", "/v1/sessions/s/push", `[null,{"lambda":1}]`, http.StatusOK},
		{"null body", "/v1/sessions/s/push", `null`, http.StatusOK},
		// Manager-level rejections (wire-encoded error bodies).
		{"unknown session", "/v1/sessions/nope/push", `{"lambda":1}`, http.StatusNotFound},
		{"infeasible slot", "/v1/sessions/s/push", `{"lambda":1e9}`, http.StatusUnprocessableEntity},
		{"mid-batch error", "/v1/sessions/s/push",
			`[{"lambda":0.5},{"lambda":1e9},{"lambda":0.5}]`, http.StatusUnprocessableEntity},
		{"bad counts arity", "/v1/sessions/s/push", `{"lambda":1,"counts":[1,2,3]}`, http.StatusUnprocessableEntity},
		// Malformed bodies: the wire decoder's reflect fallback must
		// reproduce encoding/json's exact error text.
		{"empty body", "/v1/sessions/s/push", ``, http.StatusBadRequest},
		{"truncated object", "/v1/sessions/s/push", `{"lambda":1`, http.StatusBadRequest},
		{"truncated batch", "/v1/sessions/s/push", `[{"lambda":1},`, http.StatusBadRequest},
		{"truncated string", "/v1/sessions/s/push", `{"lambda`, http.StatusBadRequest},
		{"unknown field", "/v1/sessions/s/push", `{"lambda":1,"bogus":2}`, http.StatusBadRequest},
		{"wrong lambda type", "/v1/sessions/s/push", `{"lambda":"x"}`, http.StatusBadRequest},
		{"wrong counts type", "/v1/sessions/s/push", `{"counts":[1.5]}`, http.StatusBadRequest},
		{"float overflow", "/v1/sessions/s/push", `{"lambda":1e309}`, http.StatusBadRequest},
		{"int overflow", "/v1/sessions/s/push", `{"counts":[9223372036854775808]}`, http.StatusBadRequest},
		{"leading zero", "/v1/sessions/s/push", `{"lambda":01}`, http.StatusBadRequest},
		{"bare value", "/v1/sessions/s/push", `12`, http.StatusBadRequest},
		{"batch of scalars", "/v1/sessions/s/push", `[1,2]`, http.StatusBadRequest},
		{"invalid escape", "/v1/sessions/s/push", `{"lambda\x61":1}`, http.StatusBadRequest},
		// Oversize: MaxBytesReader answers 413 without poisoning pools.
		{"oversize body", "/v1/sessions/s/push", oversize, http.StatusRequestEntityTooLarge},
		{"push after oversize", "/v1/sessions/s/push", `{"lambda":0.5}`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wStatus, wCT, wBody := post(t, servers[0].srv, tc.path, tc.body)
			rStatus, rCT, rBody := post(t, servers[1].srv, tc.path, tc.body)
			if wStatus != tc.status {
				t.Errorf("wire codec: HTTP %d, want %d: %s", wStatus, tc.status, wBody)
			}
			if wStatus != rStatus || wBody != rBody || wCT != rCT {
				t.Errorf("codecs diverged:\n wire: %d %s %q\n json: %d %s %q",
					wStatus, wCT, wBody, rStatus, rCT, rBody)
			}
			if tc.status != http.StatusOK && !strings.Contains(wBody, `"error"`) {
				t.Errorf("error response has no error body: %q", wBody)
			}
		})
	}
}
