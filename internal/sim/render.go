package sim

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// RenderSchedule draws a schedule as a stacked ASCII chart: one column per
// slot, one glyph per active server, letters distinguishing types
// (a = type 0, b = type 1, …), with the demand series printed underneath.
// Wide schedules are windowed to the first maxCols slots.
func RenderSchedule(ins *model.Instance, sched model.Schedule, maxCols int) string {
	if maxCols <= 0 {
		maxCols = 72
	}
	T := len(sched)
	if T > maxCols {
		T = maxCols
	}
	peak := 1
	for t := 0; t < T; t++ {
		if tot := sched[t].Total(); tot > peak {
			peak = tot
		}
	}

	var b strings.Builder
	for level := peak; level >= 1; level-- {
		fmt.Fprintf(&b, "%3d |", level)
		for t := 0; t < T; t++ {
			b.WriteByte(glyphAt(sched[t], level))
		}
		b.WriteByte('\n')
	}
	b.WriteString("    +")
	b.WriteString(strings.Repeat("-", T))
	b.WriteByte('\n')

	// Demand sparkline scaled to single digits 0-9.
	maxLoad := 0.0
	for t := 0; t < T; t++ {
		if ins.Lambda[t] > maxLoad {
			maxLoad = ins.Lambda[t]
		}
	}
	b.WriteString("  λ  ")
	for t := 0; t < T; t++ {
		if maxLoad == 0 {
			b.WriteByte('0')
			continue
		}
		d := int(ins.Lambda[t] / maxLoad * 9.999)
		b.WriteByte(byte('0' + d))
	}
	b.WriteString("  (demand, 0-9 scaled)\n")

	names := make([]string, ins.D())
	for j := range names {
		name := ins.Types[j].Name
		if name == "" {
			name = fmt.Sprintf("type%d", j)
		}
		names[j] = fmt.Sprintf("%c = %s", 'a'+j, name)
	}
	b.WriteString("      " + strings.Join(names, ", "))
	if len(sched) > T {
		fmt.Fprintf(&b, "  (showing %d of %d slots)", T, len(sched))
	}
	b.WriteByte('\n')
	return b.String()
}

// glyphAt returns the type letter occupying the given stack level (types
// stack bottom-up in index order), or space above the stack.
func glyphAt(x model.Config, level int) byte {
	acc := 0
	for j, v := range x {
		acc += v
		if level <= acc {
			return byte('a' + j)
		}
	}
	return ' '
}
