package sim

import (
	"strings"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
)

func renderInstance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{
			{Name: "cpu", Count: 3, SwitchCost: 1, MaxLoad: 1,
				Cost: model.Static{F: costfn.Constant{C: 1}}},
			{Name: "gpu", Count: 1, SwitchCost: 1, MaxLoad: 4,
				Cost: model.Static{F: costfn.Constant{C: 2}}},
		},
		Lambda: []float64{1, 3, 5, 2},
	}
}

func TestRenderScheduleShape(t *testing.T) {
	ins := renderInstance()
	sched := model.Schedule{{1, 0}, {3, 0}, {1, 1}, {0, 1}}
	out := RenderSchedule(ins, sched, 0)
	if !strings.Contains(out, "a = cpu") || !strings.Contains(out, "b = gpu") {
		t.Errorf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Peak total is 3 → three level rows plus axis, demand and legend.
	if !strings.HasPrefix(lines[0], "  3 |") {
		t.Errorf("top level wrong: %q", lines[0])
	}
	// Slot 3 (index 2) has 1 cpu + 1 gpu: level 1 shows 'a', level 2 'b'.
	level1 := lines[2] // rows print top-down: 3,2,1
	level2 := lines[1]
	if level1[5+2] != 'a' || level2[5+2] != 'b' {
		t.Errorf("stacking wrong:\n%s", out)
	}
	if !strings.Contains(out, "λ") {
		t.Error("demand sparkline missing")
	}
}

func TestRenderScheduleWindowing(t *testing.T) {
	ins := renderInstance()
	sched := model.Schedule{{1, 0}, {3, 0}, {1, 1}, {0, 1}}
	out := RenderSchedule(ins, sched, 2)
	if !strings.Contains(out, "showing 2 of 4 slots") {
		t.Errorf("windowing note missing:\n%s", out)
	}
}

func TestRenderScheduleZeroDemand(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Name: "", Count: 1, SwitchCost: 1, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{0, 0},
	}
	out := RenderSchedule(ins, model.Schedule{{0}, {1}}, 0)
	if !strings.Contains(out, "type0") {
		t.Error("anonymous types should get a default legend name")
	}
	if !strings.Contains(out, "00") {
		t.Error("zero demand should render as zeros")
	}
}
