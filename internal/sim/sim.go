// Package sim is the experiment harness: it runs offline and online
// algorithms over problem instances, measures cost decompositions,
// switching activity and competitive ratios against the exact optimum, and
// renders aligned text tables (and CSV) for the experiment reports.
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/solver"
)

// Metrics summarises one algorithm's behaviour on one instance.
type Metrics struct {
	Name       string
	Operating  float64 // Σ_t g_t(x_t)
	Switching  float64 // Σ_t Σ_j β_j (Δ_j)^+
	Total      float64
	PowerUps   int     // number of individual server power-up operations
	PeakActive int     // max over slots of Σ_j x_{t,j}
	MeanActive float64 // mean over slots of Σ_j x_{t,j}
	Ratio      float64 // Total / OPT; 0 when OPT is unknown
}

// Measure evaluates a schedule. opt > 0 enables the Ratio field.
func Measure(ins *model.Instance, sched model.Schedule, name string, opt float64) Metrics {
	br := model.NewEvaluator(ins).Cost(sched)
	m := Metrics{
		Name:      name,
		Operating: br.Operating,
		Switching: br.Switching,
		Total:     br.Total(),
	}
	prev := make(model.Config, ins.D())
	sumActive := 0
	for _, x := range sched {
		total := x.Total()
		sumActive += total
		if total > m.PeakActive {
			m.PeakActive = total
		}
		for j := range x {
			if up := x[j] - prev[j]; up > 0 {
				m.PowerUps += up
			}
		}
		prev = x
	}
	if len(sched) > 0 {
		m.MeanActive = float64(sumActive) / float64(len(sched))
	}
	if opt > 0 {
		m.Ratio = m.Total / opt
	}
	return m
}

// Comparison accumulates metrics for several algorithms on one instance,
// with the exact optimum computed once as the shared yardstick.
type Comparison struct {
	Ins *model.Instance
	Opt float64
	Row []Metrics
}

// NewComparison solves the instance optimally and seeds the table with the
// OPT row.
func NewComparison(ins *model.Instance) (*Comparison, error) {
	res, err := solver.SolveOptimal(ins)
	if err != nil {
		return nil, err
	}
	c := &Comparison{Ins: ins, Opt: res.Cost()}
	c.Row = append(c.Row, Measure(ins, res.Schedule, "OPT", c.Opt))
	return c, nil
}

// RunOnline drives an online algorithm to completion and records it.
// The schedule is validated for feasibility; an infeasible schedule is a
// bug in the algorithm and panics.
func (c *Comparison) RunOnline(alg core.Online) Metrics {
	sched := core.Run(alg)
	if err := c.Ins.Feasible(sched); err != nil {
		panic(fmt.Sprintf("sim: %s produced an infeasible schedule: %v", alg.Name(), err))
	}
	m := Measure(c.Ins, sched, alg.Name(), c.Opt)
	c.Row = append(c.Row, m)
	return m
}

// Add records a pre-computed schedule under the given name.
func (c *Comparison) Add(name string, sched model.Schedule) Metrics {
	m := Measure(c.Ins, sched, name, c.Opt)
	c.Row = append(c.Row, m)
	return m
}

// Table renders the comparison as an aligned text table.
func (c *Comparison) Table() *Table {
	t := NewTable("algorithm", "total", "operating", "switching", "power-ups", "peak", "ratio")
	for _, m := range c.Row {
		t.Add(m.Name, FmtF(m.Total), FmtF(m.Operating), FmtF(m.Switching),
			fmt.Sprintf("%d", m.PowerUps), fmt.Sprintf("%d", m.PeakActive), FmtRatio(m.Ratio))
	}
	return t
}

// FmtF formats a cost for tables.
func FmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// FmtRatio formats a competitive ratio.
func FmtRatio(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
