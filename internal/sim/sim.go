// Package sim kept the original measurement harness; the run→measure→
// report pipeline now lives in internal/engine and this package re-exports
// it for source compatibility, keeping only the schedule renderer
// (render.go) as its own code.
package sim

import (
	"repro/internal/engine"
	"repro/internal/model"
)

// Metrics summarises one algorithm's behaviour on one instance.
type Metrics = engine.Metrics

// Measure evaluates a schedule. opt > 0 enables the Ratio field.
func Measure(ins *model.Instance, sched model.Schedule, name string, opt float64) Metrics {
	return engine.Measure(ins, sched, name, opt)
}

// Comparison accumulates metrics for several algorithms on one instance,
// with the exact optimum computed once as the shared yardstick.
type Comparison = engine.Comparison

// NewComparison solves the instance optimally and seeds the table with the
// OPT row.
func NewComparison(ins *model.Instance) (*Comparison, error) {
	return engine.NewComparison(ins)
}

// Table is a minimal aligned text-table builder.
type Table = engine.Table

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return engine.NewTable(headers...) }

// FmtF formats a cost for tables.
func FmtF(v float64) string { return engine.FmtF(v) }

// FmtRatio formats a competitive ratio.
func FmtRatio(v float64) string { return engine.FmtRatio(v) }
