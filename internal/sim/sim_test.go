package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/workload"
)

func testInstance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{
			{Name: "slow", Count: 3, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Name: "fast", Count: 2, SwitchCost: 8, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.5}}},
		},
		Lambda: workload.Diurnal(12, 1, 9, 6, 0),
	}
}

func TestMeasureCountsActivity(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 3, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{1, 3, 2},
	}
	sched := model.Schedule{{1}, {3}, {2}}
	m := Measure(ins, sched, "x", 0)
	if m.PowerUps != 3 { // 1 up, then 2 up
		t.Errorf("PowerUps = %d, want 3", m.PowerUps)
	}
	if m.PeakActive != 3 {
		t.Errorf("PeakActive = %d, want 3", m.PeakActive)
	}
	if math.Abs(m.MeanActive-2) > 1e-12 {
		t.Errorf("MeanActive = %g, want 2", m.MeanActive)
	}
	if m.Ratio != 0 {
		t.Error("Ratio should be 0 when opt unknown")
	}
	if math.Abs(m.Operating-6) > 1e-9 || math.Abs(m.Switching-6) > 1e-9 {
		t.Errorf("cost split = %g/%g, want 6/6", m.Operating, m.Switching)
	}
}

func TestComparisonEndToEnd(t *testing.T) {
	ins := testInstance()
	c, err := NewComparison(ins)
	if err != nil {
		t.Fatal(err)
	}
	if c.Opt <= 0 {
		t.Fatal("OPT must be positive here")
	}
	a, err := core.NewAlgorithmA(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	ma := c.RunOnline(a)
	if ma.Ratio < 1-1e-9 {
		t.Errorf("online ratio %g below 1", ma.Ratio)
	}
	if !numeric.LessEqual(ma.Ratio, 2*float64(ins.D())+1, 1e-9) {
		t.Errorf("ratio %g exceeds theorem bound", ma.Ratio)
	}
	allOn, err := baseline.NewAllOn(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	mAll := c.RunOnline(allOn)
	if mAll.Total < ma.Total {
		t.Log("note: AllOn beat AlgorithmA on this instance (possible on tiny fleets)")
	}
	// OPT row must have ratio exactly 1.
	if math.Abs(c.Row[0].Ratio-1) > 1e-9 {
		t.Errorf("OPT ratio = %g", c.Row[0].Ratio)
	}
	tbl := c.Table().String()
	for _, want := range []string{"OPT", "AlgorithmA", "AllOn", "ratio"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestComparisonAddSchedule(t *testing.T) {
	ins := testInstance()
	c, err := NewComparison(ins)
	if err != nil {
		t.Fatal(err)
	}
	sched := make(model.Schedule, ins.T())
	for i := range sched {
		sched[i] = model.Config{3, 2}
	}
	m := c.Add("static", sched)
	if m.Ratio < 1 {
		t.Errorf("static provisioning ratio %g < 1", m.Ratio)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.Add("a", "1")
	tbl.Add("long-name", "2.5")
	s := tbl.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	// All data lines equal width after alignment.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", s)
	}

	var csv strings.Builder
	tbl.RenderCSV(&csv)
	if !strings.HasPrefix(csv.String(), "name,value\n") {
		t.Errorf("csv = %q", csv.String())
	}

	md := tbl.Markdown()
	if !strings.Contains(md, "| name | value |") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("markdown = %q", md)
	}
}

func TestTableShortRowAndOverflow(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.Add("only")
	if !strings.Contains(tbl.String(), "only") {
		t.Error("short row should render")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow row should panic")
		}
	}()
	tbl.Add("1", "2", "3")
}

func TestFormatters(t *testing.T) {
	if FmtF(math.Inf(1)) != "inf" {
		t.Error("FmtF inf")
	}
	if FmtF(1.234) != "1.23" {
		t.Errorf("FmtF = %s", FmtF(1.234))
	}
	if FmtRatio(0) != "-" {
		t.Error("FmtRatio zero")
	}
	if FmtRatio(1.5) != "1.500" {
		t.Errorf("FmtRatio = %s", FmtRatio(1.5))
	}
}

func TestComparisonPanicsOnInfeasibleAlgorithm(t *testing.T) {
	ins := testInstance()
	c, err := NewComparison(ins)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.RunOnline(&brokenAlg{T: ins.T(), d: ins.D()})
}

type brokenAlg struct{ T, t, d int }

func (b *brokenAlg) Name() string { return "broken" }
func (b *brokenAlg) Step(model.SlotInput) model.Config {
	b.t++
	return make(model.Config, b.d) // all zeros: infeasible under load
}
