package solver

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/model"
)

// ApproxReference builds the schedule X' of Theorem 16's proof
// (Equation 18) from an optimal schedule X*: a lattice-restricted schedule
// that tracks X* while staying inside the corridor
//
//	x*_{t,j} <= x'_{t,j} <= (2γ−1)·x*_{t,j},
//
// moving only when the corridor forces it. X' certifies the (2γ−1)
// approximation bound: the shortest path on G^γ can only be cheaper.
// It is exposed for tests and for reproducing the paper's Figure 5.
func ApproxReference(ins *model.Instance, opt model.Schedule, gamma float64) (model.Schedule, error) {
	if gamma <= 1 {
		return nil, fmt.Errorf("solver: ApproxReference needs gamma > 1, got %g", gamma)
	}
	if len(opt) != ins.T() {
		return nil, fmt.Errorf("solver: optimal schedule has %d slots, want %d", len(opt), ins.T())
	}
	d := ins.D()
	axes := make([]grid.Axis, d)
	for j, st := range ins.Types {
		axes[j] = grid.ReducedAxis(st.Count, gamma)
	}

	out := make(model.Schedule, ins.T())
	prev := make(model.Config, d)
	for t := 1; t <= ins.T(); t++ {
		cur := make(model.Config, d)
		for j := 0; j < d; j++ {
			xStar := opt[t-1][j]
			upper := (2*gamma - 1) * float64(xStar)
			switch {
			case prev[j] <= xStar:
				// Corridor floor violated (or touched): jump to the
				// smallest lattice value covering x*.
				cur[j] = ceilOnAxis(axes[j], xStar)
			case float64(prev[j]) <= upper:
				// Still inside the corridor: stay put (lazy).
				cur[j] = prev[j]
			default:
				// Corridor ceiling violated: drop to the largest lattice
				// value within it.
				cur[j] = floorOnAxisF(axes[j], upper)
			}
		}
		out[t-1] = cur
		prev = cur
	}
	return out, nil
}

// ceilOnAxis returns the smallest axis value >= v. The axis always
// contains m_j >= any feasible x*, so the lookup cannot fail for valid
// inputs; out-of-range values panic.
func ceilOnAxis(a grid.Axis, v int) int {
	i := a.CeilIndex(v)
	if i == len(a) {
		panic(fmt.Sprintf("solver: value %d above axis maximum %d", v, a[len(a)-1]))
	}
	return a[i]
}

// floorOnAxisF returns the largest axis value <= v (a float corridor
// bound). The axis contains 0, so the result is always defined.
func floorOnAxisF(a grid.Axis, v float64) int {
	best := a[0]
	for _, x := range a {
		if float64(x) <= v {
			best = x
		} else {
			break
		}
	}
	return best
}
