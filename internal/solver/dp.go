// Package solver implements the offline algorithms of Section 4: the
// graph-based optimal algorithm (4.1), the (1+ε)-approximation on the
// γ-reduced graph (4.2), and their extension to time-varying data-center
// sizes (4.3).
//
// The paper's graph G(I) has, for every slot t and configuration x, a
// vertex pair (v↑, v↓) joined by an operating-cost edge g_t(x), plus
// power-up edges of weight β_j between neighbouring configurations and free
// power-down edges. A shortest v↑_{1,0} → v↓_{T,0} path is an optimal
// schedule. This package never materialises the graph: the shortest-path
// computation is a layered dynamic program whose transition
//
//	D_t[x] = g_t(x) + min_{x'} ( D_{t−1}[x'] + Σ_j β_j (x_j − x'_j)^+ )
//
// is evaluated one dimension at a time — a free-decrease suffix minimum
// plus a pay-per-level prefix minimum, exactly the reachability structure
// of the up/down edge gadget — in O(|M|·d) per slot instead of O(|M|²).
package solver

import (
	"math"

	"repro/internal/grid"
)

// relaxer performs the min-plus transition between consecutive DP layers,
// including between different lattices (time-varying sizes or γ-reduction
// with per-slot counts). It owns the ping-pong scratch buffers.
type relaxer struct {
	betas []float64    // β_j per dimension
	bufs  [2][]float64 // alternating scratch for intermediate sweeps
	shape []int        // current mixed shape during a sweep
}

func newRelaxer(betas []float64) *relaxer {
	return &relaxer{betas: betas, shape: make([]int, len(betas))}
}

// scratch returns scratch buffer i resized to n elements.
func (r *relaxer) scratch(i, n int) []float64 {
	if cap(r.bufs[i]) < n {
		r.bufs[i] = make([]float64, n)
	}
	return r.bufs[i][:n]
}

// relax returns, for every configuration x of the `to` lattice,
//
//	min_{x' ∈ from} prev[x'] + Σ_j β_j (x_j − x'_j)^+ .
//
// prev is indexed by the `from` lattice. The result is written into dst
// (resized as needed) and returned. prev is left untouched.
//
// The sweep rewrites one dimension at a time: after processing dimension j
// the intermediate array is indexed by `to` levels in dimensions <= j and
// `from` levels in dimensions > j. Correctness follows from the switching
// cost being separable across dimensions: the inner min over x'_j for fixed
// other coordinates commutes with the mins over the remaining dimensions.
func (r *relaxer) relax(prev []float64, from, to *grid.Grid, dst []float64) []float64 {
	d := len(r.betas)
	// Current shape starts as the `from` lattice.
	size := 1
	for j := 0; j < d; j++ {
		r.shape[j] = len(from.Axis(j))
		size *= r.shape[j]
	}

	if d == 0 {
		panic("solver: zero-dimensional lattice")
	}

	// cur aliases prev for the first sweep only; sweep j reads from
	// scratch((j−1)%2) and writes into scratch(j%2) (or dst for the final
	// dimension), so prev is never clobbered and no two live buffers
	// alias. dst must not alias prev.
	cur := prev
	for j := 0; j < d; j++ {
		fromAxis := from.Axis(j)
		toAxis := to.Axis(j)
		newSize := size / len(fromAxis) * len(toAxis)

		var out []float64
		if j == d-1 {
			if cap(dst) < newSize {
				dst = make([]float64, newSize)
			}
			out = dst[:newSize]
		} else {
			out = r.scratch(j%2, newSize)
		}

		r.relaxDim(cur, out, j, fromAxis, toAxis)

		cur = out
		r.shape[j] = len(toAxis)
		size = newSize
	}
	return cur
}

// relaxDim rewrites dimension j: for every line along dimension j,
//
//	out[v] = min( min_{v' >= v} in[v'],                  // free power-down
//	              min_{v' <= v} in[v'] + β_j (v − v') )  // paid power-up
//
// where v ranges over toAxis values and v' over fromAxis values.
// in has dimension-j extent len(fromAxis); out has extent len(toAxis);
// all other dimensions keep the current shape.
func (r *relaxer) relaxDim(in, out []float64, j int, fromAxis, toAxis grid.Axis) {
	beta := r.betas[j]
	n1, n2 := len(fromAxis), len(toAxis)

	// Strides under the "dimension 0 slowest" layout for the current
	// mixed shape.
	inner := 1 // product of extents of dimensions > j
	for k := j + 1; k < len(r.shape); k++ {
		inner *= r.shape[k]
	}
	outerIn := n1 * inner
	outerOut := n2 * inner
	outerCount := len(in) / outerIn
	for a := 0; a < outerCount; a++ {
		for b := 0; b < inner; b++ {
			baseIn := a*outerIn + b
			baseOut := a*outerOut + b

			// Ascending pass: paid power-up. Track the best
			// in[v'] − β·v' over fromAxis values v' <= current target.
			best := math.Inf(1)
			i := 0
			for k := 0; k < n2; k++ {
				v := toAxis[k]
				for i < n1 && fromAxis[i] <= v {
					cand := in[baseIn+i*inner] - beta*float64(fromAxis[i])
					if cand < best {
						best = cand
					}
					i++
				}
				out[baseOut+k*inner] = best + beta*float64(v)
			}

			// Descending pass: free power-down. Track the best in[v']
			// over fromAxis values v' >= current target.
			best = math.Inf(1)
			i = n1 - 1
			for k := n2 - 1; k >= 0; k-- {
				v := toAxis[k]
				for i >= 0 && fromAxis[i] >= v {
					if c := in[baseIn+i*inner]; c < best {
						best = c
					}
					i--
				}
				if idx := baseOut + k*inner; best < out[idx] {
					out[idx] = best
				}
			}
		}
	}
}

// relaxNaive is the O(|from|·|to|·d) reference transition used for
// differential testing of the fast sweep.
func relaxNaive(prev []float64, from, to *grid.Grid, betas []float64) []float64 {
	d := from.D()
	out := make([]float64, to.Size())
	xf := make([]int, d)
	xt := make([]int, d)
	for k := 0; k < to.Size(); k++ {
		to.Decode(k, xt)
		best := math.Inf(1)
		for i := 0; i < from.Size(); i++ {
			from.Decode(i, xf)
			cost := prev[i]
			for j := 0; j < d; j++ {
				if up := xt[j] - xf[j]; up > 0 {
					cost += betas[j] * float64(up)
				}
			}
			if cost < best {
				best = cost
			}
		}
		out[k] = best
	}
	return out
}
