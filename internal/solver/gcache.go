package solver

import (
	"math"
	"sync"

	"repro/internal/costfn"
	"repro/internal/numeric"
)

// The operating-cost layer memo. A DP layer's g-contribution — the vector
// (g_t(x))_{x ∈ M} — depends only on the slot's content: the job volume
// λ_t, the per-type server counts and capacities, the slot's cost
// functions and the lattice-reduction γ. It does not depend on t itself,
// on the algorithm asking, or on which solver instance is sweeping. The
// memo therefore lives at process scope: periodic workloads reuse layers
// across slots, Algorithm C's sub-slots of one slot collapse to a single
// evaluation, and the engine's suite (OPT solve plus every tracker-based
// algorithm on the same instance) computes each distinct layer once.
//
// Determinism: cached vectors are exactly the vectors the evaluator would
// compute (g_t is a pure function and the dispatch dual is canonical, see
// internal/dispatch), so hits and misses — including racy double-computes
// under concurrent suite workers — never change results, only speed.
//
// Cost functions are fingerprinted by value for the stock families
// (Constant, Affine, Power, Exponential, PiecewiseLinear, Scaled); slots
// carrying any other implementation are not memoised. Hash collisions are
// resolved by full structural key comparison, never trusted.

// gcacheMaxFloats bounds the memo's payload (~32 MB of float64s). When an
// insert would exceed it the memo resets — a simple, deterministic
// eviction that keeps unbounded fuzz/property workloads from growing it
// without limit.
const gcacheMaxFloats = 4 << 20

var gcache = struct {
	sync.Mutex
	m      map[uint64]*gcacheEntry
	floats int
}{m: make(map[uint64]*gcacheEntry)}

type gcacheEntry struct {
	sig  gcacheSig
	g    []float64
	next *gcacheEntry
}

// gcacheSig is the full structural key of one slot's layer; hash is the
// FNV-1a digest of the remaining fields.
type gcacheSig struct {
	hash   uint64
	lambda float64
	gamma  float64
	counts []int
	caps   []float64
	fns    []costfn.Func
}

func (s *gcacheSig) equal(o *gcacheSig) bool {
	if s.lambda != o.lambda || s.gamma != o.gamma ||
		!numeric.EqualInts(s.counts, o.counts) || len(s.caps) != len(o.caps) {
		return false
	}
	for i := range s.caps {
		if s.caps[i] != o.caps[i] {
			return false
		}
	}
	if len(s.fns) != len(o.fns) {
		return false
	}
	for i := range s.fns {
		if !fnEqual(s.fns[i], o.fns[i]) {
			return false
		}
	}
	return true
}

// fnv1a is an incremental 64-bit FNV-1a hasher.
type fnv1a uint64

func newFnv() fnv1a { return 0xcbf29ce484222325 }

func (h *fnv1a) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= 0x100000001b3
		v >>= 8
	}
	*h = fnv1a(x)
}

func (h *fnv1a) f64(v float64) { h.u64(math.Float64bits(v)) }

// fnFingerprint mixes f's structural identity into h and reports whether
// the function belongs to a fingerprintable family.
func fnFingerprint(h *fnv1a, f costfn.Func) bool {
	switch v := f.(type) {
	case costfn.Constant:
		h.u64(1)
		h.f64(v.C)
	case costfn.Affine:
		h.u64(2)
		h.f64(v.Idle)
		h.f64(v.Rate)
	case costfn.Power:
		h.u64(3)
		h.f64(v.Idle)
		h.f64(v.Coef)
		h.f64(v.Exp)
	case costfn.Exponential:
		h.u64(4)
		h.f64(v.Idle)
		h.f64(v.Amp)
		h.f64(v.Rate)
	case costfn.PiecewiseLinear:
		h.u64(5)
		n := v.NumBreakpoints()
		h.u64(uint64(n))
		for i := 0; i < n; i++ {
			z, val := v.Breakpoint(i)
			h.f64(z)
			h.f64(val)
		}
	case costfn.Scaled:
		h.u64(6)
		h.f64(v.Factor)
		return fnFingerprint(h, v.F)
	default:
		return false
	}
	return true
}

// fnEqual reports structural equality for fingerprintable families. It
// deliberately avoids interface == (PiecewiseLinear is not comparable).
func fnEqual(a, b costfn.Func) bool {
	switch va := a.(type) {
	case costfn.Constant:
		vb, ok := b.(costfn.Constant)
		return ok && va == vb
	case costfn.Affine:
		vb, ok := b.(costfn.Affine)
		return ok && va == vb
	case costfn.Power:
		vb, ok := b.(costfn.Power)
		return ok && va == vb
	case costfn.Exponential:
		vb, ok := b.(costfn.Exponential)
		return ok && va == vb
	case costfn.PiecewiseLinear:
		vb, ok := b.(costfn.PiecewiseLinear)
		if !ok || va.NumBreakpoints() != vb.NumBreakpoints() {
			return false
		}
		for i := 0; i < va.NumBreakpoints(); i++ {
			za, ca := va.Breakpoint(i)
			zb, cb := vb.Breakpoint(i)
			if za != zb || ca != cb {
				return false
			}
		}
		return true
	case costfn.Scaled:
		vb, ok := b.(costfn.Scaled)
		return ok && va.Factor == vb.Factor && fnEqual(va.F, vb.F)
	default:
		return false
	}
}

// gcacheGet returns the cached layer for sig, if present.
func gcacheGet(sig *gcacheSig) ([]float64, bool) {
	gcache.Lock()
	defer gcache.Unlock()
	for e := gcache.m[sig.hash]; e != nil; e = e.next {
		if e.sig.equal(sig) {
			return e.g, true
		}
	}
	return nil, false
}

// gcachePut stores a layer under sig, copying the key material and the
// vector so callers may reuse their buffers. A concurrent duplicate insert
// is harmless (identical content); the first entry on the chain wins
// lookups.
func gcachePut(sig *gcacheSig, g []float64) {
	stored := gcacheEntry{
		sig: gcacheSig{
			hash:   sig.hash,
			lambda: sig.lambda,
			gamma:  sig.gamma,
			counts: append([]int(nil), sig.counts...),
			caps:   append([]float64(nil), sig.caps...),
			fns:    append([]costfn.Func(nil), sig.fns...),
		},
		g: append([]float64(nil), g...),
	}
	gcache.Lock()
	defer gcache.Unlock()
	if gcache.floats+len(g) > gcacheMaxFloats {
		gcache.m = make(map[uint64]*gcacheEntry)
		gcache.floats = 0
	}
	stored.next = gcache.m[sig.hash]
	gcache.m[sig.hash] = &stored
	gcache.floats += len(g)
}
