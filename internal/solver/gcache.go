package solver

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/costfn"
	"repro/internal/numeric"
)

// The operating-cost layer memo. A DP layer's g-contribution — the vector
// (g_t(x))_{x ∈ M} — depends only on the slot's content: the job volume
// λ_t, the per-type server counts and capacities, the slot's cost
// functions and the lattice-reduction γ. It does not depend on t itself,
// on the algorithm asking, or on which solver instance is sweeping. The
// memo therefore lives at process scope: periodic workloads reuse layers
// across slots, Algorithm C's sub-slots of one slot collapse to a single
// evaluation, and the engine's suite (OPT solve plus every tracker-based
// algorithm on the same instance) computes each distinct layer once.
//
// Determinism: cached vectors are exactly the vectors the evaluator would
// compute (g_t is a pure function and the dispatch dual is canonical, see
// internal/dispatch), so hits and misses — including racy double-computes
// under concurrent suite workers — never change results, only speed.
//
// Cost functions are fingerprinted by value for the stock families
// (Constant, Affine, Power, Exponential, PiecewiseLinear, Scaled); slots
// carrying any other implementation are not memoised. Hash collisions are
// resolved by full structural key comparison, never trusted.
//
// Concurrency: the memo is sharded (power-of-two stripes keyed by the
// structural fingerprint) and each shard publishes an immutable
// generation map through an atomic pointer — reads are lock-free and
// inserts are copy-on-write under a per-shard mutex (RCU). Sixteen
// concurrent serving sessions therefore share read-only cache lines on
// the hit path instead of funnelling through one process-global mutex;
// see BenchmarkGCacheParallel / BENCH_solver.json for the before/after.

// gcacheMaxFloats bounds the memo's payload (~32 MB of float64s) across
// all shards. When an insert would exceed a shard's slice of the budget
// the shard resets — a simple, deterministic eviction that keeps
// unbounded fuzz/property workloads from growing the memo without limit.
const gcacheMaxFloats = 4 << 20

// gcacheShards stripes the memo. Every concurrent session in the process
// funnels its layer lookups through this structure, so the shard count is
// sized for the serving tier's 16-way concurrency, not for GOMAXPROCS.
// Power of two; behaviorally invisible (see gcache_test.go).
const gcacheShards = 16

// gcacheGen is one immutable generation of a shard's merged contents.
// Readers see a generation through one atomic load and never take a
// lock; writers build the next generation copy-on-write under the shard
// mutex and publish it with one atomic store (RCU). Entries and chains
// are never mutated after publication, so a generation loaded by a
// reader stays valid for as long as the reader holds it.
type gcacheGen struct {
	m      map[uint64]*gcacheEntry
	floats int
}

// gcachePendingMax bounds a shard's write-behind buffer. Cloning the
// whole generation map on every insert would make a cold sweep's misses
// O(shard size) each; batching gcachePendingMax inserts per clone
// amortizes the copy to O(size/pendingMax) while keeping the locked
// miss-path scan short.
const gcachePendingMax = 32

// gcacheShard is one stripe of the memo, padded out to a whole number of
// cache lines: the read-hot generation pointer and the write-only mutex
// and pending buffer of neighbouring shards must not false-share under
// cross-core traffic. TestGCacheShardPadding asserts the layout.
type gcacheShard struct {
	cur atomic.Pointer[gcacheGen] // lock-free read path (merged entries)

	mu            sync.Mutex     // serializes inserts, merges, resets
	pending       []*gcacheEntry // inserted but not yet merged into cur
	pendingFloats int
	_             [16]byte // 48 bytes of fields -> one full cache line
}

// gcacheStats is one shard's hit/miss tally, padded to a whole cache
// line: the counters are written on every lookup, so if they shared a
// line with a neighbouring shard's counters (or with the read-hot
// generation pointer) the write traffic would reintroduce exactly the
// cross-core sharing the sharded memo exists to avoid. They live in a
// parallel array, not inside gcacheShard, so the shard's generation
// pointer stays on a line that hit-path writes never touch.
type gcacheStats struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	_      [48]byte // 16 bytes of counters -> one full 64-byte line
}

// gMemo is the sharded layer memo. The zero shard count is invalid; use
// newGMemo. Shard selection reuses the signature's FNV-1a digest: the
// digest's low bits pick the stripe, the full digest keys the map inside.
type gMemo struct {
	shards []gcacheShard
	stats  []gcacheStats // indexed in lockstep with shards
	mask   uint64
	budget int // per-shard float budget
}

// newGMemo builds a memo with the given power-of-two shard count and
// total float budget. A 1-shard memo is semantically the legacy
// single-map design (one global budget, whole-memo resets); the default
// 16-shard memo splits the budget evenly and resets shard-locally —
// either way the memo stays bounded by total and eviction stays a
// deterministic function of the insert sequence per shard.
func newGMemo(shards, totalFloats int) *gMemo {
	return &gMemo{
		shards: make([]gcacheShard, shards),
		stats:  make([]gcacheStats, shards),
		mask:   uint64(shards - 1),
		budget: totalFloats / shards,
	}
}

// gcache is the process-global memo. Tests swap it (see gcache_test.go)
// to prove shard-count invisibility; production code only ever reads it.
var gcache = newGMemo(gcacheShards, gcacheMaxFloats)

type gcacheEntry struct {
	sig  gcacheSig
	g    []float64
	next *gcacheEntry
}

// gcacheSig is the full structural key of one slot's layer; hash is the
// FNV-1a digest of the remaining fields.
type gcacheSig struct {
	hash   uint64
	lambda float64
	gamma  float64
	counts []int
	caps   []float64
	fns    []costfn.Func
}

func (s *gcacheSig) equal(o *gcacheSig) bool {
	if s.lambda != o.lambda || s.gamma != o.gamma ||
		!numeric.EqualInts(s.counts, o.counts) || len(s.caps) != len(o.caps) {
		return false
	}
	for i := range s.caps {
		if s.caps[i] != o.caps[i] {
			return false
		}
	}
	if len(s.fns) != len(o.fns) {
		return false
	}
	for i := range s.fns {
		if !fnEqual(s.fns[i], o.fns[i]) {
			return false
		}
	}
	return true
}

// fnv1a is an incremental 64-bit FNV-1a hasher.
type fnv1a uint64

func newFnv() fnv1a { return 0xcbf29ce484222325 }

func (h *fnv1a) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= 0x100000001b3
		v >>= 8
	}
	*h = fnv1a(x)
}

func (h *fnv1a) f64(v float64) { h.u64(math.Float64bits(v)) }

// fnFingerprint mixes f's structural identity into h and reports whether
// the function belongs to a fingerprintable family.
func fnFingerprint(h *fnv1a, f costfn.Func) bool {
	switch v := f.(type) {
	case costfn.Constant:
		h.u64(1)
		h.f64(v.C)
	case costfn.Affine:
		h.u64(2)
		h.f64(v.Idle)
		h.f64(v.Rate)
	case costfn.Power:
		h.u64(3)
		h.f64(v.Idle)
		h.f64(v.Coef)
		h.f64(v.Exp)
	case costfn.Exponential:
		h.u64(4)
		h.f64(v.Idle)
		h.f64(v.Amp)
		h.f64(v.Rate)
	case costfn.PiecewiseLinear:
		h.u64(5)
		n := v.NumBreakpoints()
		h.u64(uint64(n))
		for i := 0; i < n; i++ {
			z, val := v.Breakpoint(i)
			h.f64(z)
			h.f64(val)
		}
	case costfn.Scaled:
		h.u64(6)
		h.f64(v.Factor)
		return fnFingerprint(h, v.F)
	default:
		return false
	}
	return true
}

// fnEqual reports structural equality for fingerprintable families. It
// deliberately avoids interface == (PiecewiseLinear is not comparable).
func fnEqual(a, b costfn.Func) bool {
	switch va := a.(type) {
	case costfn.Constant:
		vb, ok := b.(costfn.Constant)
		return ok && va == vb
	case costfn.Affine:
		vb, ok := b.(costfn.Affine)
		return ok && va == vb
	case costfn.Power:
		vb, ok := b.(costfn.Power)
		return ok && va == vb
	case costfn.Exponential:
		vb, ok := b.(costfn.Exponential)
		return ok && va == vb
	case costfn.PiecewiseLinear:
		vb, ok := b.(costfn.PiecewiseLinear)
		if !ok || va.NumBreakpoints() != vb.NumBreakpoints() {
			return false
		}
		for i := 0; i < va.NumBreakpoints(); i++ {
			za, ca := va.Breakpoint(i)
			zb, cb := vb.Breakpoint(i)
			if za != zb || ca != cb {
				return false
			}
		}
		return true
	case costfn.Scaled:
		vb, ok := b.(costfn.Scaled)
		return ok && va.Factor == vb.Factor && fnEqual(va.F, vb.F)
	default:
		return false
	}
}

// gcacheGet returns the cached layer for sig, if present. The fast path
// is lock-free: one atomic generation load, one map probe, a chain walk
// over immutable entries — concurrent readers on different cores share
// nothing writable. Only a miss on the merged generation falls back to
// scanning the shard's short write-behind buffer under the shard mutex,
// so recently inserted layers are visible immediately without ever
// putting a lock on the hit path.
func gcacheGet(sig *gcacheSig) ([]float64, bool) {
	return gcache.get(sig)
}

func (c *gMemo) get(sig *gcacheSig) ([]float64, bool) {
	sh := &c.shards[sig.hash&c.mask]
	st := &c.stats[sig.hash&c.mask]
	if gen := sh.cur.Load(); gen != nil {
		for e := gen.m[sig.hash]; e != nil; e = e.next {
			if e.sig.equal(sig) {
				st.hits.Add(1)
				return e.g, true
			}
		}
	}
	sh.mu.Lock()
	for _, e := range sh.pending {
		if e.sig.hash == sig.hash && e.sig.equal(sig) {
			g := e.g
			sh.mu.Unlock()
			st.hits.Add(1)
			return g, true
		}
	}
	sh.mu.Unlock()
	st.misses.Add(1)
	return nil, false
}

// MemoStats reports the process-global layer memo's lifetime lookup
// tally: hits (the layer vector was served from cache) and misses (it
// had to be computed; unmemoisable slots — custom cost-function
// implementations — are not lookups and count in neither). The counters
// are striped with the memo's shards and read without locks, so a
// metrics scrape never contends with the DP hot path. Serving-tier
// exporters (internal/serve's /metrics endpoint) surface these.
func MemoStats() (hits, misses uint64) {
	c := gcache
	for i := range c.stats {
		hits += c.stats[i].hits.Load()
		misses += c.stats[i].misses.Load()
	}
	return hits, misses
}

// gcachePut stores a layer under sig, copying the key material and the
// vector so callers may reuse their buffers. Writes land in the shard's
// pending buffer under the shard mutex; every gcachePendingMax inserts
// the buffer is merged into the next immutable generation copy-on-write
// and published with one atomic store (RCU), so readers never observe a
// map mid-mutation and the clone cost amortizes to O(1) map writes per
// insert. A concurrent duplicate insert — a second session computing the
// same layer between its miss and its put — is detected under the lock
// and dropped (the content would be bit-identical anyway: g_t is pure).
func gcachePut(sig *gcacheSig, g []float64) {
	gcache.put(sig, g)
}

func (c *gMemo) put(sig *gcacheSig, g []float64) {
	stored := &gcacheEntry{
		sig: gcacheSig{
			hash:   sig.hash,
			lambda: sig.lambda,
			gamma:  sig.gamma,
			counts: append([]int(nil), sig.counts...),
			caps:   append([]float64(nil), sig.caps...),
			fns:    append([]costfn.Func(nil), sig.fns...),
		},
		g: append([]float64(nil), g...),
	}
	sh := &c.shards[sig.hash&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	gen := sh.cur.Load()
	genFloats := 0
	if gen != nil {
		for e := gen.m[sig.hash]; e != nil; e = e.next {
			if e.sig.equal(sig) {
				return
			}
		}
		genFloats = gen.floats
	}
	for _, e := range sh.pending {
		if e.sig.hash == sig.hash && e.sig.equal(sig) {
			return
		}
	}
	if genFloats+sh.pendingFloats+len(g) > c.budget {
		// The shard's budget slice is exhausted: drop both the merged
		// generation and the buffer — the sharded form of the legacy
		// whole-memo reset, still a deterministic function of the shard's
		// insert sequence.
		sh.cur.Store(&gcacheGen{m: make(map[uint64]*gcacheEntry)})
		sh.pending = sh.pending[:0]
		sh.pendingFloats = 0
		gen = nil
	}
	sh.pending = append(sh.pending, stored)
	sh.pendingFloats += len(g)
	if len(sh.pending) >= gcachePendingMax {
		c.mergeLocked(sh, gen)
	}
}

// mergeLocked folds the shard's pending buffer into a fresh immutable
// generation and publishes it. Caller holds sh.mu. Chaining mutates the
// pending entries' next pointers, which is safe: buffer readers never
// touch next, and chain readers only reach these entries through the
// atomic store below (release/acquire ordering).
func (c *gMemo) mergeLocked(sh *gcacheShard, gen *gcacheGen) {
	size := len(sh.pending)
	if gen != nil {
		size += len(gen.m)
	}
	next := &gcacheGen{m: make(map[uint64]*gcacheEntry, size)}
	if gen != nil {
		for k, v := range gen.m {
			next.m[k] = v
		}
		next.floats = gen.floats
	}
	for _, e := range sh.pending {
		e.next = next.m[e.sig.hash]
		next.m[e.sig.hash] = e
		next.floats += len(e.g)
	}
	sh.pending = sh.pending[:0]
	sh.pendingFloats = 0
	sh.cur.Store(next)
}
