package solver

import (
	"sync/atomic"
	"testing"

	"repro/internal/costfn"
)

// benchSig builds a distinct, fully fingerprintable layer signature. The
// field layout and hash ordering mirror layerEvaluator.signature, so the
// benchmark exercises exactly the key path production lookups take.
func benchSig(i uint64) *gcacheSig {
	s := &gcacheSig{
		lambda: 1 + float64(i)*1e-9,
		gamma:  0,
		counts: []int{24, 6},
		caps:   []float64{1, 4},
		fns: []costfn.Func{
			costfn.Power{Idle: 1, Coef: 0.6, Exp: 2},
			costfn.Affine{Idle: 4, Rate: 0.3},
		},
	}
	h := newFnv()
	h.f64(s.lambda)
	h.f64(s.gamma)
	for j := range s.counts {
		h.u64(uint64(s.counts[j]))
		h.f64(s.caps[j])
		fnFingerprint(&h, s.fns[j])
	}
	s.hash = uint64(h)
	return s
}

// benchLayerLen matches the facade benchmark fleet's 175-cell lattice, so
// cached vectors have production-shaped payloads.
const benchLayerLen = 175

// BenchmarkGCacheParallel measures memo contention under concurrent
// sessions — the serving tier's steady state, where every push on every
// core consults the process-global layer memo. Run with -cpu 1,2,4,8 via
// scripts/benchscale.sh; recorded in BENCH_solver.json.
//
//	hit:    every lookup is served from a warm memo (periodic traces in
//	        steady state). The reference single-mutex design serializes
//	        all readers here; the sharded RCU design takes no lock.
//	insert: every lookup misses and inserts a fresh layer (cold start,
//	        many distinct fleets). Writers contend on one shard at worst.
func BenchmarkGCacheParallel(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		const warm = 64
		sigs := make([]*gcacheSig, warm)
		g := make([]float64, benchLayerLen)
		for i := range g {
			g[i] = float64(i)
		}
		for i := range sigs {
			sigs[i] = benchSig(uint64(i))
			gcachePut(sigs[i], g)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := gcacheGet(sigs[i%warm]); !ok {
					b.Fatal("warm entry missing")
				}
				i++
			}
		})
	})
	b.Run("insert", func(b *testing.B) {
		var seq atomic.Uint64
		seq.Store(1 << 32) // disjoint from the hit variant's warm keys
		g := make([]float64, benchLayerLen)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				sig := benchSig(seq.Add(1))
				if _, ok := gcacheGet(sig); !ok {
					gcachePut(sig, g)
				}
			}
		})
	})
}
