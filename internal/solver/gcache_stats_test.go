package solver

import (
	"testing"
	"unsafe"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/workload"
)

// The stats stripes must stay whole cache lines (the same false-sharing
// argument as the shards themselves; see gcacheStats).
func TestGCacheStatsPadding(t *testing.T) {
	if s := unsafe.Sizeof(gcacheStats{}); s%64 != 0 {
		t.Errorf("gcacheStats is %d bytes, not a multiple of the 64-byte cache line", s)
	}
}

// MemoStats counts every memoisable lookup exactly once: a cold solve of
// a periodic trace records misses for the distinct layers and hits for
// the repeats, and a second identical solve is all hits. The tally must
// track the swapped memo instance, not a stale one.
func TestMemoStats(t *testing.T) {
	swapGcache(t, gcacheShards, gcacheMaxFloats)

	ins := &model.Instance{
		Types: []model.ServerType{
			{Name: "a", Count: 6, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Power{Idle: 1, Coef: 0.5, Exp: 2}}},
			{Name: "b", Count: 3, SwitchCost: 8, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.4}}},
		},
		Lambda: workload.Diurnal(24, 2, 10, 8, 0),
	}
	h0, m0 := MemoStats()
	if h0 != 0 || m0 != 0 {
		t.Fatalf("fresh memo reports hits=%d misses=%d, want 0, 0", h0, m0)
	}

	if _, err := Solve(ins, Options{}); err != nil {
		t.Fatal(err)
	}
	h1, m1 := MemoStats()
	if m1 == 0 {
		t.Fatalf("cold solve recorded no misses (hits=%d misses=%d)", h1, m1)
	}
	if h1+m1 < 24 {
		t.Fatalf("24-slot solve recorded only %d lookups", h1+m1)
	}
	if h1 == 0 {
		t.Fatalf("periodic trace recorded no hits (misses=%d); layer reuse is broken", m1)
	}

	if _, err := Solve(ins, Options{}); err != nil {
		t.Fatal(err)
	}
	h2, m2 := MemoStats()
	if m2 != m1 {
		t.Errorf("warm solve recorded %d new misses, want 0", m2-m1)
	}
	if h2 <= h1 {
		t.Errorf("warm solve recorded no hits (hits %d -> %d)", h1, h2)
	}
}
