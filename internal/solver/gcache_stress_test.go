package solver

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"unsafe"

	"repro/internal/model"
)

// The shard struct must stay a whole number of cache lines so adjacent
// shards in the array never share a line — the padding the RCU design's
// contention-freedom rests on.
func TestGCacheShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(gcacheShard{}); s%64 != 0 {
		t.Fatalf("gcacheShard is %d bytes, not a multiple of the 64-byte cache line", s)
	}
}

// A layer just inserted must be visible to lookups immediately — served
// from the write-behind buffer before the batch merge, from the merged
// generation after it — and merging must not drop or duplicate entries.
func TestGCachePendingVisibleBeforeMerge(t *testing.T) {
	swapGcache(t, 1, gcacheMaxFloats)
	g := []float64{1, 2, 3}
	first := benchSig(1 << 40)
	gcachePut(first, g)
	if got, ok := gcacheGet(first); !ok || len(got) != len(g) || got[0] != 1 {
		t.Fatalf("pre-merge lookup: got %v, %v; want the pending entry", got, ok)
	}
	for i := 0; i < gcachePendingMax; i++ {
		gcachePut(benchSig(uint64(1<<40+i+1)), g)
	}
	sh := &gcache.shards[0]
	sh.mu.Lock()
	pending := len(sh.pending)
	sh.mu.Unlock()
	if pending >= gcachePendingMax {
		t.Fatalf("pending buffer never merged: %d entries", pending)
	}
	if got, ok := gcacheGet(first); !ok || len(got) != len(g) || got[2] != 3 {
		t.Fatalf("post-merge lookup: got %v, %v; want the merged entry", got, ok)
	}
}

// TestGCacheShardStress hammers the sharded memo from many goroutines
// solving memo-eligible instances concurrently while a starvation-sized
// budget forces shard resets throughout — the darkest corner of the RCU
// design (concurrent lock-free reads racing copy-on-write merges and
// resets). Every concurrent result must be bit-identical to the serially
// computed memo-off answer. CI runs this under -race.
func TestGCacheShardStress(t *testing.T) {
	// A budget of ~2k floats across 4 shards holds only a handful of
	// layers per shard, so inserts trip resets constantly.
	swapGcache(t, 4, 2048)

	rng := rand.New(rand.NewSource(99))
	const nInstances = 6
	type baseline struct {
		cost  uint64
		sched [][]int
	}
	inss := make([]*model.Instance, 0, nInstances)
	wants := make([]baseline, 0, nInstances)
	for i := 0; i < nInstances; i++ {
		ins := randomInstance(rng, 2, 4, 8)
		plain, err := Solve(ins, Options{NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		want := baseline{cost: math.Float64bits(plain.Cost())}
		for _, cfg := range plain.Schedule {
			want.sched = append(want.sched, append([]int(nil), cfg...))
		}
		inss = append(inss, ins)
		wants = append(wants, want)
	}

	goroutines := 8
	rounds := 10
	if testing.Short() {
		goroutines, rounds = 4, 3
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (g + r) % nInstances
				opts := Options{}
				if g%4 == 3 {
					opts.NoMemo = true // mix memo-off traffic into the race
				}
				res, err := Solve(inss[k], opts)
				if err != nil {
					t.Error(err)
					return
				}
				if math.Float64bits(res.Cost()) != wants[k].cost {
					t.Errorf("goroutine %d round %d: cost %v != plain %v",
						g, r, res.Cost(), math.Float64frombits(wants[k].cost))
					return
				}
				for s, cfg := range res.Schedule {
					for j, v := range cfg {
						if v != wants[k].sched[s][j] {
							t.Errorf("goroutine %d round %d slot %d: schedule diverged", g, r, s+1)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
