package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/workload"
)

// opaqueFn is a cost function outside every fingerprintable family; slots
// carrying it must bypass the layer memo and still solve correctly.
type opaqueFn struct{ rate float64 }

func (o opaqueFn) Value(z float64) float64 { return 1 + o.rate*z*z }

// swapGcache replaces the process-global memo with a fresh one of the
// given geometry for the duration of the test. Tests in a package run
// sequentially (none of these call t.Parallel), so the swap is safe; the
// stress test's goroutines all run against the swapped instance.
func swapGcache(t testing.TB, shards, totalFloats int) {
	old := gcache
	gcache = newGMemo(shards, totalFloats)
	t.Cleanup(func() { gcache = old })
}

// The memo must be invisible in results: solving with and without it is
// bit-identical, across periodic traces (heavy reuse), time-varying
// fleets, modulated (Scaled) costs and unmemoisable functions — and
// regardless of the shard geometry: the default 16-shard RCU memo, a
// single shard (the legacy one-map semantics), and a starved memo whose
// budget forces a reset on nearly every insert must all agree with the
// memo-off answer.
func TestLayerMemoBitIdentical(t *testing.T) {
	price := []float64{1, 1, 0.6, 1.8, 1, 0.6, 1.8, 1, 1, 0.6, 1.8, 1}
	counts := make([][]int, 12)
	for i := range counts {
		counts[i] = []int{5, 3}
		if i >= 4 && i < 8 {
			counts[i] = []int{3, 3}
		}
	}
	instances := map[string]*model.Instance{
		"periodic": {
			Types: []model.ServerType{
				{Name: "a", Count: 6, SwitchCost: 2, MaxLoad: 1,
					Cost: model.Static{F: costfn.Power{Idle: 1, Coef: 0.5, Exp: 2}}},
				{Name: "b", Count: 3, SwitchCost: 8, MaxLoad: 4,
					Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.4}}},
			},
			Lambda: workload.Diurnal(24, 2, 10, 8, 0),
		},
		"time-varying": {
			Types: []model.ServerType{
				{Name: "a", Count: 5, SwitchCost: 1.5, MaxLoad: 1,
					Cost: model.Modulated{F: costfn.Affine{Idle: 1, Rate: 0.7}, Scale: price}},
				{Name: "b", Count: 3, SwitchCost: 6, MaxLoad: 2,
					Cost: model.Static{F: costfn.MustPiecewiseLinear(
						[]float64{0, 1, 2}, []float64{1, 1.5, 3})}},
			},
			Lambda: workload.Diurnal(12, 1, 8, 6, 0),
			Counts: counts,
		},
		"unmemoisable": {
			Types: []model.ServerType{
				{Name: "a", Count: 4, SwitchCost: 2, MaxLoad: 1.5,
					Cost: model.Static{F: opaqueFn{rate: 0.8}}},
				{Name: "b", Count: 3, SwitchCost: 4, MaxLoad: 2,
					Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 0.5}}},
			},
			Lambda: workload.Diurnal(10, 1, 7, 5, 0),
		},
	}
	geometries := []struct {
		name   string
		shards int
		floats int
	}{
		{"sharded", gcacheShards, gcacheMaxFloats},
		{"single-shard", 1, gcacheMaxFloats},
		{"starved", 4, 256}, // a reset on nearly every insert
	}
	for name, ins := range instances {
		t.Run(name, func(t *testing.T) {
			plain, err := Solve(ins, Options{NoMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, geo := range geometries {
				t.Run(geo.name, func(t *testing.T) {
					swapGcache(t, geo.shards, geo.floats)
					for round := 0; round < 2; round++ { // second round hits the memo
						memo, err := Solve(ins, Options{})
						if err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(memo.Cost()) != math.Float64bits(plain.Cost()) {
							t.Fatalf("round %d: memoised cost %v != plain %v", round, memo.Cost(), plain.Cost())
						}
						for i := range plain.Schedule {
							if !memo.Schedule[i].Equal(plain.Schedule[i]) {
								t.Fatalf("round %d slot %d: schedules diverge", round, i+1)
							}
						}
					}
				})
			}
		})
	}
}

// Trackers must agree with and without the memo, slot by slot.
func TestTrackerMemoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 5; trial++ {
		ins := randomInstance(rng, 2, 5, 10)
		a, err := NewPrefixTracker(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewPrefixTracker(ins, Options{NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		for !a.Done() {
			ca, va := a.Advance()
			cb, vb := b.Advance()
			if math.Float64bits(va) != math.Float64bits(vb) || !ca.Equal(cb) {
				t.Fatalf("trial %d slot %d: memo (%v, %v) != plain (%v, %v)",
					trial, a.T(), ca, va, cb, vb)
			}
		}
	}
}

// Distinct slot content must never collide: demand, counts, capacities,
// gamma and every fingerprintable family's parameters all key the memo.
func TestMemoKeySeparates(t *testing.T) {
	base := func() *model.Instance {
		return &model.Instance{
			Types: []model.ServerType{{Name: "a", Count: 4, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}}},
			Lambda: []float64{2, 2},
		}
	}
	ins1 := base()
	r1, err := Solve(ins1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins2 := base()
	ins2.Types[0].MaxLoad = 2 // same counts and λ, different capacity
	r2, err := Solve(ins2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := Solve(ins2, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cost() != want2.Cost() {
		t.Fatalf("capacity change served from stale memo: %v != %v", r2.Cost(), want2.Cost())
	}
	if r1.Cost() == r2.Cost() {
		t.Fatal("test vectors should differ")
	}
}
