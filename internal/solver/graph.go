package solver

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/model"
)

// Graph is the paper's explicit graph representation G(I) of Section 4.1:
// for every slot t and configuration x a vertex pair v↑_{t,x} → v↓_{t,x}
// connected by an operating-cost edge of weight g_t(x); power-up edges of
// weight β_j between v↑ neighbours; free power-down edges between v↓
// neighbours; and free slot-transition edges v↓_{t,x} → v↑_{t+1,x}.
//
// The production solver never materialises this graph (see dp.go); Graph
// exists as the paper-faithful reference implementation — a differential
// oracle for the DP — and to render Figure 4. Its size is
// 2T·Π_j(m_j+1) vertices, so callers should keep instances small.
type Graph struct {
	Ins  *model.Instance
	Grid *grid.Grid // configuration lattice (shared across slots)

	// Vertices are indexed by (t, s, cfgIdx) with s ∈ {up, down}:
	// index = ((t-1)*2 + s) * Grid.Size() + cfgIdx.
	NumVertices int
	Edges       []Edge

	adj [][]int32 // adjacency: vertex → edge indices
}

// Edge is a weighted directed edge of G(I).
type Edge struct {
	From, To int
	Weight   float64
	// Kind documents which gadget the edge belongs to: "op" (operating
	// cost), "up" (power-up, weight β_j), "down" (free power-down), or
	// "next" (slot transition).
	Kind string
	Type int // server type for up/down edges, -1 otherwise
}

const (
	dirUp   = 0
	dirDown = 1
)

// BuildGraph materialises G(I) for an instance with static fleet sizes.
func BuildGraph(ins *model.Instance) (*Graph, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if ins.TimeVarying() {
		return nil, fmt.Errorf("solver: BuildGraph supports static sizes only (Section 4.3 removes vertices per slot; use Solve)")
	}
	m := make([]int, ins.D())
	for j, st := range ins.Types {
		m[j] = st.Count
	}
	g := grid.NewFull(m)
	T := ins.T()
	gr := &Graph{
		Ins:         ins,
		Grid:        g,
		NumVertices: 2 * T * g.Size(),
	}
	eval := model.NewEvaluator(ins)
	cfg := make(model.Config, ins.D())

	for t := 1; t <= T; t++ {
		for idx := 0; idx < g.Size(); idx++ {
			g.Decode(idx, cfg)
			// Operating edge v↑ → v↓.
			gr.Edges = append(gr.Edges, Edge{
				From:   gr.Vertex(t, dirUp, idx),
				To:     gr.Vertex(t, dirDown, idx),
				Weight: eval.G(t, cfg),
				Kind:   "op",
				Type:   -1,
			})
			// Power-up and power-down edges along each dimension.
			for j := 0; j < ins.D(); j++ {
				if cfg[j] >= m[j] {
					continue
				}
				nIdx := idx + g.Stride(j) // one more server of type j
				gr.Edges = append(gr.Edges, Edge{
					From:   gr.Vertex(t, dirUp, idx),
					To:     gr.Vertex(t, dirUp, nIdx),
					Weight: ins.Types[j].SwitchCost,
					Kind:   "up",
					Type:   j,
				})
				gr.Edges = append(gr.Edges, Edge{
					From:   gr.Vertex(t, dirDown, nIdx),
					To:     gr.Vertex(t, dirDown, idx),
					Weight: 0,
					Kind:   "down",
					Type:   j,
				})
			}
			// Slot transition v↓_{t,x} → v↑_{t+1,x}.
			if t < T {
				gr.Edges = append(gr.Edges, Edge{
					From:   gr.Vertex(t, dirDown, idx),
					To:     gr.Vertex(t+1, dirUp, idx),
					Weight: 0,
					Kind:   "next",
					Type:   -1,
				})
			}
		}
	}

	gr.adj = make([][]int32, gr.NumVertices)
	for i, e := range gr.Edges {
		gr.adj[e.From] = append(gr.adj[e.From], int32(i))
	}
	return gr, nil
}

// Vertex returns the index of v^dir_{t,x} for lattice index cfgIdx.
func (g *Graph) Vertex(t, dir, cfgIdx int) int {
	return ((t-1)*2+dir)*g.Grid.Size() + cfgIdx
}

// ShortestPath computes a shortest v↑_{1,0} → v↓_{T,0} path and returns
// its cost and the corresponding schedule (the configurations of the "op"
// edges along the path). Edge weights are non-negative and the graph is
// acyclic along time but cyclic within a layer only through paired up/down
// chains, which are acyclic per direction; Bellman–Ford-style relaxation
// over a topological-ish sweep would do, but the graph is small by
// construction, so plain Dijkstra without a heap (O(V²)) keeps the code
// transparent.
func (g *Graph) ShortestPath() (float64, model.Schedule, error) {
	start := g.Vertex(1, dirUp, 0)
	zeroIdx, ok := g.Grid.Encode(make([]int, g.Ins.D()))
	if !ok {
		return 0, nil, fmt.Errorf("solver: zero configuration missing from lattice")
	}
	goal := g.Vertex(g.Ins.T(), dirDown, zeroIdx)

	dist := make([]float64, g.NumVertices)
	prevEdge := make([]int32, g.NumVertices)
	visited := make([]bool, g.NumVertices)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[start] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < g.NumVertices; v++ {
			if !visited[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 || u == goal {
			break
		}
		visited[u] = true
		for _, ei := range g.adj[u] {
			e := g.Edges[ei]
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = ei
			}
		}
	}
	if math.IsInf(dist[goal], 1) {
		return 0, nil, fmt.Errorf("solver: no finite path (infeasible instance)")
	}

	// Walk back collecting the op edges.
	sched := make(model.Schedule, g.Ins.T())
	for v := goal; v != start; {
		ei := prevEdge[v]
		if ei < 0 {
			return 0, nil, fmt.Errorf("solver: broken shortest-path chain")
		}
		e := g.Edges[ei]
		if e.Kind == "op" {
			t := e.From/(2*g.Grid.Size()) + 1
			cfg := make(model.Config, g.Ins.D())
			g.Grid.Decode(e.From%(2*g.Grid.Size())%g.Grid.Size(), cfg)
			sched[t-1] = cfg
		}
		v = e.From
	}
	return dist[goal], sched, nil
}
