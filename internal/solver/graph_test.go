package solver

import (
	"math/rand"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/numeric"
)

// The explicit graph is the paper-faithful reference: its shortest path
// must agree with the DP solver on every instance.
func TestGraphShortestPathMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 40; i++ {
		ins := randomInstance(rng, 2, 3, 4)
		g, err := BuildGraph(ins)
		if err != nil {
			t.Fatal(err)
		}
		cost, sched, err := g.ShortestPath()
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveOptimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(cost, res.Cost(), 1e-6) {
			t.Fatalf("case %d: graph %g vs DP %g", i, cost, res.Cost())
		}
		if err := ins.Feasible(sched); err != nil {
			t.Fatalf("case %d: graph schedule infeasible: %v", i, err)
		}
		// The path length must equal the schedule's cost.
		if got := model.NewEvaluator(ins).Cost(sched).Total(); !numeric.AlmostEqual(got, cost, 1e-6) {
			t.Fatalf("case %d: path weight %g != schedule cost %g", i, cost, got)
		}
	}
}

// Figure 4's dimensions: d=2, T=2, m=(2,1) gives 2·2·(2+1)·(1+1) = 24
// vertices.
func TestGraphFigure4Dimensions(t *testing.T) {
	ins := figure4Instance()
	g, err := BuildGraph(ins)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 24 {
		t.Errorf("vertices = %d, want 24", g.NumVertices)
	}
	// Edge census: op edges 2·6 = 12; up edges per layer: type 0 has
	// 2 per column × 2 columns = 4, type 1 has 3; ×2 slots = 14; same
	// count of down edges = 14; next edges = 6. Total 46.
	counts := map[string]int{}
	for _, e := range g.Edges {
		counts[e.Kind]++
	}
	if counts["op"] != 12 || counts["up"] != 14 || counts["down"] != 14 || counts["next"] != 6 {
		t.Errorf("edge census = %v, want op:12 up:14 down:14 next:6", counts)
	}
}

func TestGraphRejectsTimeVarying(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(1)), 2, 2, 3)
	counts := make([][]int, ins.T())
	for i := range counts {
		counts[i] = countsAt(ins, 1)
	}
	ins.Counts = counts
	if _, err := BuildGraph(ins); err == nil {
		t.Error("time-varying sizes should be rejected")
	}
}

// figure4Instance mirrors the shape of the paper's Figure 4 (d=2, T=2,
// m=(2,1)) with concrete costs chosen so the depicted shortest path —
// x_1 = (2,0), x_2 = (1,1) — is optimal. (internal/figures builds the same
// instance for rendering; duplicated here to avoid an import cycle.)
func figure4Instance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{
			{Name: "type1", Count: 2, SwitchCost: 1, MaxLoad: 1,
				Cost: model.Varying{Fs: []costfn.Func{
					costfn.Constant{C: 1}, costfn.Constant{C: 3},
				}}},
			{Name: "type2", Count: 1, SwitchCost: 1, MaxLoad: 1,
				Cost: model.Varying{Fs: []costfn.Func{
					costfn.Constant{C: 10}, costfn.Constant{C: 1},
				}}},
		},
		Lambda: []float64{2, 2},
	}
}

// The depicted shortest path of Figure 4 — x_1 = (2,0), x_2 = (1,1) — must
// be what both the graph and the DP compute on the concrete instance.
func TestGraphFigure4ShortestPath(t *testing.T) {
	ins := figure4Instance()
	g, err := BuildGraph(ins)
	if err != nil {
		t.Fatal(err)
	}
	cost, sched, err := g.ShortestPath()
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(cost, 9, 1e-9) {
		t.Errorf("cost = %g, want 9", cost)
	}
	if !sched[0].Equal(model.Config{2, 0}) || !sched[1].Equal(model.Config{1, 1}) {
		t.Errorf("path schedule = %v, want [(2,0) (1,1)]", sched)
	}
}
