package solver

import (
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/workload"
)

// benchLayerInstance mirrors the facade benchmark fleet (24 CPUs + 6
// GPUs, two days of diurnal load): a 175-cell lattice per slot.
func benchLayerInstance() *model.Instance {
	return &model.Instance{
		Types: []model.ServerType{
			{Name: "cpu", Count: 24, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Power{Idle: 1, Coef: 0.6, Exp: 2}}},
			{Name: "gpu", Count: 6, SwitchCost: 15, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 4, Rate: 0.3}}},
		},
		Lambda: workload.Diurnal(48, 3, 40, 24, 0),
	}
}

// benchmarkLayerEval sweeps all T layers of the instance through one
// layerEvaluator — the solver's dominant kernel (every cell solves a
// dispatch program, warm-started along lattice lines).
func benchmarkLayerEval(b *testing.B, opts Options) {
	ins := benchLayerInstance()
	grids, err := buildGrids(ins, opts.Gamma)
	if err != nil {
		b.Fatal(err)
	}
	le := newLayerEvaluator(ins, opts)
	defer le.close()
	layer := make([]float64, grids.at(1).Size())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for t := 1; t <= ins.T(); t++ {
			for j := range layer {
				layer[j] = 0
			}
			le.addG(layer, t, grids.at(t))
		}
	}
}

// BenchmarkLayerEval measures the raw warm-started sweep (memo off: every
// cell of every slot is solved).
func BenchmarkLayerEval(b *testing.B) { benchmarkLayerEval(b, Options{NoMemo: true}) }

// BenchmarkLayerEvalMemo measures the steady-state path with the layer
// memo on: the periodic trace repeats slot content, so most layers are
// served from cache.
func BenchmarkLayerEvalMemo(b *testing.B) { benchmarkLayerEval(b, Options{}) }
