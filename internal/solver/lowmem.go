package solver

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// solveLowMem is the checkpointed variant of Solve: instead of storing all
// T DP layers for the backward reconstruction (O(T·|M|) memory), it keeps
// one checkpoint layer every ⌈√T⌉ slots and recomputes each block's
// interior layers on demand during the backward walk. Memory drops to
// O(√T·|M|) at the price of one extra forward sweep — the classic
// space/time checkpointing trade-off, essential when T reaches months of
// minute-granularity slots.
func solveLowMem(ins *model.Instance, opts Options) (*Result, error) {
	grids, err := buildGrids(ins, opts.Gamma)
	if err != nil {
		return nil, err
	}
	T := ins.T()
	d := ins.D()
	stride := int(math.Ceil(math.Sqrt(float64(T))))
	fw := newForward(ins, opts, grids)
	defer fw.le.close()

	// Forward sweep, checkpointing layers at slots 1, 1+stride, … and T.
	checkpoints := map[int][]float64{}
	maxSize := 0
	var last []float64
	for t := 1; t <= T; t++ {
		last = fw.step()
		if g := grids.at(t); g.Size() > maxSize {
			maxSize = g.Size()
		}
		if (t-1)%stride == 0 || t == T {
			checkpoints[t] = append([]float64(nil), last...)
		}
	}

	bestIdx, bestVal := argmin(last)
	if math.IsInf(bestVal, 1) {
		return nil, fmt.Errorf("solver: instance is infeasible (no finite schedule)")
	}

	sched := make(model.Schedule, T)
	cur := make(model.Config, d)
	grids.at(T).Decode(bestIdx, cur)
	sched[T-1] = cur.Clone()

	betas := fw.betas
	prevCfg := make(model.Config, d)
	t := T
	for t >= 2 {
		// Identify the checkpoint opening the block that contains slot
		// t-1 and recompute the block's layers [blockStart .. t-1] from
		// it (block starts are checkpoint slots by construction).
		blockStart := ((t-2)/stride)*stride + 1
		cp, ok := checkpoints[blockStart]
		if !ok {
			return nil, fmt.Errorf("solver: missing checkpoint at slot %d", blockStart)
		}
		block := make([][]float64, 0, stride)
		block = append(block, cp)
		fwb := newForward(ins, opts, grids)
		fwb.t = blockStart
		fwb.layer = append([]float64(nil), cp...)
		for u := blockStart + 1; u <= t-1; u++ {
			block = append(block, append([]float64(nil), fwb.step()...))
		}
		fwb.le.close()
		// Walk backward through the block.
		for ; t >= 2 && t-1 >= blockStart; t-- {
			layer := block[t-1-blockStart]
			prevGrid := grids.at(t - 1)
			bIdx, bVal := -1, math.Inf(1)
			for i := range layer {
				prevGrid.Decode(i, prevCfg)
				c := layer[i]
				for j := 0; j < d; j++ {
					if up := cur[j] - prevCfg[j]; up > 0 {
						c += betas[j] * float64(up)
					}
				}
				if c < bVal {
					bVal, bIdx = c, i
				}
			}
			prevGrid.Decode(bIdx, cur)
			sched[t-2] = cur.Clone()
		}
	}

	eval := model.NewEvaluator(ins)
	return &Result{
		Schedule:    sched,
		Breakdown:   eval.Cost(sched),
		LatticeSize: maxSize,
	}, nil
}

// forward encapsulates one forward DP sweep so Solve and solveLowMem share
// the exact same step semantics.
type forward struct {
	ins   *model.Instance
	opts  Options
	grids *gridSeq
	rx    *relaxer
	le    *layerEvaluator
	betas []float64
	layer []float64
	spare []float64
	cfg   model.Config
	t     int
}

func newForward(ins *model.Instance, opts Options, grids *gridSeq) *forward {
	betas := make([]float64, ins.D())
	for j, st := range ins.Types {
		betas[j] = st.SwitchCost
	}
	return &forward{
		ins:   ins,
		opts:  opts,
		grids: grids,
		rx:    newRelaxer(betas),
		le:    newLayerEvaluator(ins, opts),
		betas: betas,
		cfg:   make(model.Config, ins.D()),
	}
}

// step advances the sweep one slot and returns the new layer D_t. The
// returned slice is owned by the forward state and overwritten two steps
// later; callers keeping it must copy.
func (f *forward) step() []float64 {
	f.t++
	t := f.t
	g := f.grids.at(t)
	var layer []float64
	if t == 1 {
		layer = growBuf(&f.spare, g.Size())
		for idx := range layer {
			g.Decode(idx, f.cfg)
			sw := 0.0
			for j := range f.betas {
				sw += f.betas[j] * float64(f.cfg[j])
			}
			layer[idx] = sw
		}
	} else if f.opts.Naive {
		layer = relaxNaive(f.layer, f.grids.at(t-1), g, f.betas)
	} else {
		layer = f.rx.relax(f.layer, f.grids.at(t-1), g, growBuf(&f.spare, g.Size()))
	}
	f.le.addG(layer, t, g)
	f.layer, f.spare = layer, f.layer
	return layer
}

func growBuf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}
