package solver

import (
	"math/rand"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/workload"
)

// The checkpointed solver must return exactly the same cost as the
// default path, and an equally optimal (tie-breaks may differ in theory,
// but both use lowest-index argmin deterministically) schedule.
func TestSolveLowMemoryMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 30; i++ {
		ins := randomInstance(rng, 2, 4, 12)
		def, err := Solve(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		low, err := Solve(ins, Options{LowMemory: true})
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(def.Cost(), low.Cost(), 1e-12) {
			t.Fatalf("case %d: low-memory %v != default %v", i, low.Cost(), def.Cost())
		}
		for tt := range def.Schedule {
			if !def.Schedule[tt].Equal(low.Schedule[tt]) {
				t.Fatalf("case %d slot %d: schedules differ (%v vs %v)",
					i, tt+1, def.Schedule[tt], low.Schedule[tt])
			}
		}
	}
}

func TestSolveLowMemoryWithGammaAndTimeVarying(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{
			{Count: 20, SwitchCost: 3, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Count: 10, SwitchCost: 8, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.5}}},
		},
		Lambda: workload.Diurnal(30, 2, 18, 10, 0),
	}
	counts := make([][]int, ins.T())
	for t := range counts {
		counts[t] = []int{20, 10}
		if t >= 10 && t < 15 {
			counts[t] = []int{8, 10}
		}
	}
	ins.Counts = counts

	def, err := Solve(ins, Options{Gamma: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Solve(ins, Options{Gamma: 1.5, LowMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(def.Cost(), low.Cost(), 1e-12) {
		t.Fatalf("low-memory %v != default %v", low.Cost(), def.Cost())
	}
	if err := ins.Feasible(low.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLowMemorySingleSlot(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 2, SwitchCost: 1, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{1},
	}
	low, err := Solve(ins, Options{LowMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(low.Cost(), 2, 1e-12) { // β + idle
		t.Errorf("cost = %v, want 2", low.Cost())
	}
}

func TestSolveLowMemoryInfeasible(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 1, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{2},
	}
	if _, err := Solve(ins, Options{LowMemory: true}); err == nil {
		t.Error("expected infeasibility error")
	}
}

func BenchmarkSolveLowMemoryT96(b *testing.B) {
	ins := benchInstance(96, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ins, Options{LowMemory: true}); err != nil {
			b.Fatal(err)
		}
	}
}
