package solver

import (
	"runtime"
	"sync"

	"repro/internal/grid"
	"repro/internal/model"
)

// layerEvaluator adds the operating costs g_t(x) of a whole DP layer,
// optionally fanning the evaluation out over a pool of goroutines. The
// g_t evaluations dominate the solver's runtime (each one solves a convex
// dispatch program), are independent across lattice cells, and write to
// disjoint indices — an embarrassingly parallel map. Workers own their
// model.Evaluator (it carries scratch buffers and is not safe for
// concurrent use), and the static chunk partition keeps the computation
// deterministic bit-for-bit regardless of worker count.
type layerEvaluator struct {
	ins     *model.Instance
	workers int
	evals   []*model.Evaluator
	cfgs    []model.Config
}

// newLayerEvaluator builds an evaluator pool. workers <= 1 evaluates
// serially; workers == AutoWorkers uses one worker per available CPU.
func newLayerEvaluator(ins *model.Instance, workers int) *layerEvaluator {
	if workers == AutoWorkers {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	le := &layerEvaluator{ins: ins, workers: workers}
	le.evals = make([]*model.Evaluator, workers)
	le.cfgs = make([]model.Config, workers)
	for i := range le.evals {
		le.evals[i] = model.NewEvaluator(ins)
		le.cfgs[i] = make(model.Config, ins.D())
	}
	return le
}

// AutoWorkers selects one DP worker per available CPU.
const AutoWorkers = -1

// addG adds g_t(x) to every cell of the layer (indexed by g's lattice).
func (le *layerEvaluator) addG(layer []float64, t int, g *grid.Grid) {
	if le.workers == 1 || len(layer) < 2*le.workers {
		le.addGRange(layer, t, g, 0, len(layer), 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(layer) + le.workers - 1) / le.workers
	for w := 0; w < le.workers; w++ {
		lo := w * chunk
		if lo >= len(layer) {
			break
		}
		hi := lo + chunk
		if hi > len(layer) {
			hi = len(layer)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			le.addGRange(layer, t, g, lo, hi, w)
		}(w, lo, hi)
	}
	wg.Wait()
}

// addGRange evaluates cells [lo, hi) with worker w's scratch state.
func (le *layerEvaluator) addGRange(layer []float64, t int, g *grid.Grid, lo, hi, w int) {
	eval := le.evals[w]
	cfg := le.cfgs[w]
	for idx := lo; idx < hi; idx++ {
		g.Decode(idx, cfg)
		layer[idx] += eval.G(t, cfg)
	}
}
