package solver

import (
	"runtime"
	"sync"

	"repro/internal/costfn"
	"repro/internal/grid"
	"repro/internal/model"
)

// layerEvaluator adds the operating costs g_t(x) of a whole DP layer. It
// owns the two fast paths of the solver's dominant kernel:
//
//   - A slot-keyed layer memo: slots with identical content (λ, counts,
//     capacities, cost functions, γ) share one evaluation process-wide
//     (see gcache.go) — periodic traces, Algorithm C's sub-slots and the
//     suite's OPT-plus-trackers pile-up all collapse to single sweeps.
//   - A persistent worker pool: with Workers > 1 the lattice lines are
//     statically partitioned over goroutines started once per evaluator
//     (not per layer). Workers own their model.Evaluator (scratch buffers
//     and the dispatch warm-start state are not safe for concurrent use)
//     and walk their lines in grid order, so the dispatch dual moves
//     monotonically along each line and successive solves warm-start each
//     other. Results are bit-identical for any worker count: g_t is a pure
//     function and the warm-started dual is canonical (hint-independent).
type layerEvaluator struct {
	ins     *model.Instance
	gamma   float64
	noMemo  bool
	workers int
	pool    *gWorkerPool // non-nil when workers > 1

	eval *model.Evaluator // serial path
	cfg  model.Config
	gbuf []float64 // pure g-layer scratch for memoised slots
	sig  gcacheSig // reusable signature buffers
}

// newLayerEvaluator builds an evaluator; opts.Workers <= 1 evaluates
// serially, Workers == AutoWorkers uses one worker per available CPU.
func newLayerEvaluator(ins *model.Instance, opts Options) *layerEvaluator {
	workers := opts.Workers
	if workers == AutoWorkers {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	le := &layerEvaluator{
		ins:     ins,
		gamma:   opts.Gamma,
		noMemo:  opts.NoMemo,
		workers: workers,
		eval:    model.NewEvaluator(ins),
		cfg:     make(model.Config, ins.D()),
	}
	le.sig.gamma = opts.Gamma
	le.sig.caps = make([]float64, ins.D())
	for j, st := range ins.Types {
		le.sig.caps[j] = st.MaxLoad
	}
	le.sig.counts = make([]int, 0, ins.D())
	le.sig.fns = make([]costfn.Func, 0, ins.D())
	if workers > 1 {
		le.pool = newGWorkerPool(ins, workers)
		// The pool's goroutines reference only the pool, so the cleanup
		// can stop them once the evaluator itself becomes unreachable
		// (long-lived PrefixTrackers are never explicitly closed).
		runtime.AddCleanup(le, func(p *gWorkerPool) { p.close() }, le.pool)
	}
	return le
}

// close releases the worker pool early (function-scoped solvers defer it;
// the AddCleanup above covers everyone else). Idempotent.
func (le *layerEvaluator) close() {
	if le.pool != nil {
		le.pool.close()
	}
}

// AutoWorkers selects one DP worker per available CPU.
const AutoWorkers = -1

// signature keys slot t's layer content for the memo, reusing the
// evaluator's buffers. ok is false when the slot is not memoisable (a
// cost-function family the fingerprint does not know).
func (le *layerEvaluator) signature(t int) (*gcacheSig, bool) {
	if le.noMemo {
		return nil, false
	}
	s := &le.sig
	s.lambda = le.ins.Lambda[t-1]
	s.counts = s.counts[:0]
	s.fns = s.fns[:0]
	h := newFnv()
	h.f64(s.lambda)
	h.f64(s.gamma)
	for j := 0; j < le.ins.D(); j++ {
		c := le.ins.CountAt(t, j)
		s.counts = append(s.counts, c)
		h.u64(uint64(c))
		h.f64(s.caps[j])
		f := le.ins.Types[j].Cost.At(t)
		if !fnFingerprint(&h, f) {
			return nil, false
		}
		s.fns = append(s.fns, f)
	}
	s.hash = uint64(h)
	return s, true
}

// addG adds g_t(x) to every cell of the layer (indexed by g's lattice).
func (le *layerEvaluator) addG(layer []float64, t int, g *grid.Grid) {
	if sig, ok := le.signature(t); ok {
		if cached, hit := gcacheGet(sig); hit && len(cached) == len(layer) {
			for i, v := range cached {
				layer[i] += v
			}
			return
		}
		if cap(le.gbuf) < len(layer) {
			le.gbuf = make([]float64, len(layer))
		}
		gb := le.gbuf[:len(layer)]
		le.evalCells(gb, t, g, false)
		gcachePut(sig, gb)
		for i, v := range gb {
			layer[i] += v
		}
		return
	}
	le.evalCells(layer, t, g, true)
}

// evalCells computes g_t over the lattice into dst (add=false) or adds it
// in place (add=true), fanning lattice lines out over the pool when one is
// attached.
func (le *layerEvaluator) evalCells(dst []float64, t int, g *grid.Grid, add bool) {
	lineLen := len(g.Axis(g.D() - 1))
	lines := len(dst) / lineLen
	if le.pool == nil || lines < 2 || len(dst) < 2*le.workers {
		walkLines(le.eval, le.cfg, dst, t, g, 0, lines, add)
		return
	}
	le.pool.run(dst, t, g, lines, add)
}

// walkLines evaluates lattice lines [loLine, hiLine): one Decode per line,
// then the contiguous last-dimension run with only the final coordinate
// changing — cheap decodes and monotone dual movement for the dispatch
// warm start.
func walkLines(eval *model.Evaluator, cfg model.Config, dst []float64, t int, g *grid.Grid, loLine, hiLine int, add bool) {
	d := g.D()
	last := g.Axis(d - 1)
	for ln := loLine; ln < hiLine; ln++ {
		base := ln * len(last)
		g.Decode(base, cfg)
		for i, v := range last {
			cfg[d-1] = v
			gv := eval.G(t, cfg)
			if add {
				dst[base+i] += gv
			} else {
				dst[base+i] = gv
			}
		}
	}
}

// gWorkerPool is a persistent pool of layer-evaluation goroutines. One
// task per worker and per layer is sent over a buffered channel; the
// static line partition keeps the output independent of scheduling.
type gWorkerPool struct {
	workers int
	evals   []*model.Evaluator
	cfgs    []model.Config
	tasks   chan gTask
	wg      sync.WaitGroup
	once    sync.Once
	stop    chan struct{}
}

// gTask is one worker's share of a layer: lattice lines [loLine, hiLine).
type gTask struct {
	dst            []float64
	t              int
	g              *grid.Grid
	loLine, hiLine int
	w              int
	add            bool
}

func newGWorkerPool(ins *model.Instance, workers int) *gWorkerPool {
	p := &gWorkerPool{
		workers: workers,
		evals:   make([]*model.Evaluator, workers),
		cfgs:    make([]model.Config, workers),
		tasks:   make(chan gTask, workers),
		stop:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.evals[i] = model.NewEvaluator(ins)
		p.cfgs[i] = make(model.Config, ins.D())
	}
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

func (p *gWorkerPool) work() {
	for {
		select {
		case task := <-p.tasks:
			walkLines(p.evals[task.w], p.cfgs[task.w], task.dst, task.t, task.g,
				task.loLine, task.hiLine, task.add)
			p.wg.Done()
		case <-p.stop:
			return
		}
	}
}

// run evaluates one layer through the pool and blocks until it is done.
// Chunks are static (worker w always gets the same lines for the same
// layer shape) and each task uses its own evaluator, so the computation
// is deterministic regardless of scheduling.
func (p *gWorkerPool) run(dst []float64, t int, g *grid.Grid, lines int, add bool) {
	chunk := (lines + p.workers - 1) / p.workers
	n := 0
	for w := 0; w < p.workers && w*chunk < lines; w++ {
		n++
	}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > lines {
			hi = lines
		}
		p.tasks <- gTask{dst: dst, t: t, g: g, loLine: lo, hiLine: hi, w: w, add: add}
	}
	p.wg.Wait()
}

func (p *gWorkerPool) close() {
	p.once.Do(func() { close(p.stop) })
}
