package solver

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/workload"
)

// Determinism contract: the parallel layer evaluation must produce
// bit-identical results to the serial one for any worker count.
func TestSolveParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 20; i++ {
		ins := randomInstance(rng, 3, 4, 8)
		serial, err := Solve(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, AutoWorkers} {
			par, err := Solve(ins, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Cost() != serial.Cost() {
				t.Fatalf("case %d workers=%d: parallel %v != serial %v (must be bit-identical)",
					i, workers, par.Cost(), serial.Cost())
			}
			for tt := range serial.Schedule {
				if !par.Schedule[tt].Equal(serial.Schedule[tt]) {
					t.Fatalf("case %d workers=%d slot %d: schedules diverge", i, workers, tt+1)
				}
			}
		}
	}
}

func TestPrefixTrackerParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 10; i++ {
		ins := randomInstance(rng, 2, 5, 8)
		a, err := NewPrefixTracker(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewPrefixTracker(ins, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for !a.Done() {
			xa, va := a.Advance()
			xb, vb := b.Advance()
			if va != vb || !xa.Equal(xb) {
				t.Fatalf("case %d t=%d: parallel tracker diverged", i, a.T())
			}
		}
	}
}

func TestLayerEvaluatorSmallLayerStaysSerial(t *testing.T) {
	// Layers smaller than 2× the worker count skip the fan-out; this just
	// exercises the code path.
	ins := randomInstance(rand.New(rand.NewSource(83)), 1, 1, 2)
	le := newLayerEvaluator(ins, Options{Workers: 8})
	g, err := buildGrids(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	layer := make([]float64, g.at(1).Size())
	le.addG(layer, 1, g.at(1))
	le2 := newLayerEvaluator(ins, Options{Workers: 1})
	layer2 := make([]float64, g.at(1).Size())
	le2.addG(layer2, 1, g.at(1))
	for i := range layer {
		if layer[i] != layer2[i] {
			t.Fatal("small-layer path diverged from serial")
		}
	}
}

func TestAutoWorkersResolves(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(84)), 2, 3, 3)
	le := newLayerEvaluator(ins, Options{Workers: AutoWorkers})
	if le.workers != runtime.GOMAXPROCS(0) {
		t.Errorf("AutoWorkers resolved to %d, want GOMAXPROCS %d", le.workers, runtime.GOMAXPROCS(0))
	}
	if newLayerEvaluator(ins, Options{}).workers != 1 {
		t.Error("0 workers should clamp to 1")
	}
}

// Ablation benchmark: parallel speedup on a large lattice where the
// dispatch programs dominate.
func parallelBenchInstance() *model.Instance {
	m := 40
	return &model.Instance{
		Types: []model.ServerType{
			{Count: m, SwitchCost: 4, MaxLoad: 1,
				Cost: model.Static{F: costfn.Power{Idle: 1, Coef: 1, Exp: 2.3}}},
			{Count: m / 2, SwitchCost: 10, MaxLoad: 4,
				Cost: model.Static{F: costfn.Power{Idle: 2, Coef: 0.7, Exp: 1.8}}},
		},
		Lambda: workload.Diurnal(24, 2, float64(m), 24, 0),
	}
}

func BenchmarkSolveSerial(b *testing.B) {
	ins := parallelBenchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ins, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveParallelAuto(b *testing.B) {
	ins := parallelBenchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ins, Options{Workers: AutoWorkers}); err != nil {
			b.Fatal(err)
		}
	}
}
