package solver

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/numeric"
)

// Options controls the offline solvers.
type Options struct {
	// Gamma selects the lattice. Values <= 1 (including 0) solve exactly
	// on the full lattice M (Section 4.1). Values > 1 solve on the
	// γ-reduced lattice M^γ (Section 4.2), yielding a (2γ−1)-approximation
	// by Theorem 16.
	Gamma float64

	// Naive switches the layer transition to the O(|M|²) reference
	// implementation. Exposed for differential testing and benchmarks.
	Naive bool

	// Workers fans the per-layer operating-cost evaluations (the convex
	// dispatch programs dominating the runtime) out over a goroutine
	// pool: 0 or 1 evaluates serially, AutoWorkers uses one worker per
	// CPU. Results are deterministic regardless of the worker count.
	Workers int

	// LowMemory reconstructs the schedule with ⌈√T⌉-strided layer
	// checkpointing: memory drops from O(T·|M|) to O(√T·|M|) for one
	// extra forward sweep. Results are identical to the default path.
	LowMemory bool

	// NoMemo disables the process-global operating-cost layer memo (see
	// gcache.go). Results are identical either way; the switch exists for
	// differential testing and memory-austere runs.
	NoMemo bool
}

// Result is an offline solver's output.
type Result struct {
	// Schedule is the computed schedule, feasible for the instance.
	Schedule model.Schedule
	// Breakdown decomposes the schedule's cost.
	Breakdown model.CostBreakdown
	// LatticeSize is the number of configurations per slot examined by
	// the DP (the maximum over slots when sizes vary over time). It
	// drives the runtime bound of Theorems 21/22.
	LatticeSize int
}

// Cost returns the schedule's total cost.
func (r *Result) Cost() float64 { return r.Breakdown.Total() }

// SolveOptimal computes an optimal schedule via the graph/DP of
// Section 4.1.
func SolveOptimal(ins *model.Instance) (*Result, error) {
	return Solve(ins, Options{})
}

// SolveApprox computes a (1+ε)-approximation by Theorem 21: it runs the
// reduced-lattice solver with γ = 1 + ε/2, so 2γ−1 = 1+ε.
func SolveApprox(ins *model.Instance, eps float64) (*Result, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("solver: approximation needs eps > 0, got %g", eps)
	}
	return Solve(ins, Options{Gamma: 1 + eps/2})
}

// Solve runs the layered shortest-path DP with the given options.
func Solve(ins *model.Instance, opts Options) (*Result, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if opts.LowMemory {
		return solveLowMem(ins, opts)
	}
	grids, err := buildGrids(ins, opts.Gamma)
	if err != nil {
		return nil, err
	}

	T := ins.T()
	d := ins.D()
	eval := model.NewEvaluator(ins)
	le := newLayerEvaluator(ins, opts)
	defer le.close()
	betas := make([]float64, d)
	for j, st := range ins.Types {
		betas[j] = st.SwitchCost
	}
	rx := newRelaxer(betas)

	// Forward sweep, storing every layer for reconstruction. All layers
	// are carved out of a single arena (one allocation for the whole
	// sweep instead of one per slot).
	layers := make([][]float64, T)
	arenaSize := 0
	for t := 1; t <= T; t++ {
		arenaSize += grids.at(t).Size()
	}
	arena := make([]float64, arenaSize)
	maxSize := 0
	cfg := make(model.Config, d)
	for t := 1; t <= T; t++ {
		g := grids.at(t)
		if g.Size() > maxSize {
			maxSize = g.Size()
		}
		layer := arena[:g.Size():g.Size()]
		arena = arena[g.Size():]
		if t == 1 {
			// Transition from the all-off boundary state x_0 = 0:
			// switching cost Σ_j β_j x_j.
			for idx := range layer {
				g.Decode(idx, cfg)
				sw := 0.0
				for j := 0; j < d; j++ {
					sw += betas[j] * float64(cfg[j])
				}
				layer[idx] = sw
			}
		} else if opts.Naive {
			layer = relaxNaive(layers[t-2], grids.at(t-1), g, betas)
		} else {
			layer = rx.relax(layers[t-2], grids.at(t-1), g, layer)
		}
		le.addG(layer, t, g)
		layers[t-1] = layer
	}

	// The final power-down to x_{T+1} = 0 is free, so the optimal cost is
	// the minimum over the last layer.
	lastGrid := grids.at(T)
	bestIdx, bestVal := argmin(layers[T-1])
	if math.IsInf(bestVal, 1) {
		return nil, fmt.Errorf("solver: instance is infeasible (no finite schedule)")
	}

	// Backward reconstruction: re-find an argmin predecessor per slot.
	sched := make(model.Schedule, T)
	cur := make(model.Config, d)
	lastGrid.Decode(bestIdx, cur)
	sched[T-1] = cur.Clone()
	prevCfg := make(model.Config, d)
	for t := T; t >= 2; t-- {
		prevGrid := grids.at(t - 1)
		layer := layers[t-2]
		bIdx, bVal := -1, math.Inf(1)
		for i := range layer {
			prevGrid.Decode(i, prevCfg)
			c := layer[i]
			for j := 0; j < d; j++ {
				if up := cur[j] - prevCfg[j]; up > 0 {
					c += betas[j] * float64(up)
				}
			}
			if c < bVal {
				bVal, bIdx = c, i
			}
		}
		prevGrid.Decode(bIdx, cur)
		sched[t-2] = cur.Clone()
	}

	res := &Result{
		Schedule:    sched,
		Breakdown:   eval.Cost(sched),
		LatticeSize: maxSize,
	}
	return res, nil
}

// OptimalCost returns only the optimal total cost (no schedule); it avoids
// storing DP layers, so memory is O(|M|) instead of O(T·|M|).
func OptimalCost(ins *model.Instance) (float64, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	tr, err := NewPrefixTracker(ins, Options{})
	if err != nil {
		return 0, err
	}
	var last float64
	for t := 1; t <= ins.T(); t++ {
		_, last = tr.Advance()
	}
	if math.IsInf(last, 1) {
		return 0, fmt.Errorf("solver: instance is infeasible")
	}
	return last, nil
}

// gridSeq yields the per-slot lattice. For static sizes a single grid is
// shared across slots.
type gridSeq struct {
	static *grid.Grid
	perT   []*grid.Grid
}

func (s *gridSeq) at(t int) *grid.Grid {
	if s.static != nil {
		return s.static
	}
	return s.perT[t-1]
}

// buildGrids constructs the lattice sequence for an instance. gamma <= 1
// selects full lattices; gamma > 1 selects M^γ (Sections 4.2/4.3).
func buildGrids(ins *model.Instance, gamma float64) (*gridSeq, error) {
	axisFor := func(m int) grid.Axis {
		if gamma > 1 {
			return grid.ReducedAxis(m, gamma)
		}
		return grid.FullAxis(m)
	}
	if !ins.TimeVarying() {
		axes := make([]grid.Axis, ins.D())
		for j, st := range ins.Types {
			axes[j] = axisFor(st.Count)
		}
		return &gridSeq{static: grid.New(axes)}, nil
	}
	seq := &gridSeq{perT: make([]*grid.Grid, ins.T())}
	// Counts often repeat across consecutive slots; reuse the previous
	// grid when the row is identical to keep memory proportional to the
	// number of distinct size regimes.
	for t := 1; t <= ins.T(); t++ {
		if t > 1 && numeric.EqualInts(ins.Counts[t-1], ins.Counts[t-2]) {
			seq.perT[t-1] = seq.perT[t-2]
			continue
		}
		axes := make([]grid.Axis, ins.D())
		for j := range ins.Types {
			axes[j] = axisFor(ins.CountAt(t, j))
		}
		seq.perT[t-1] = grid.New(axes)
	}
	return seq, nil
}

// argmin returns the lowest index attaining the minimum value.
func argmin(xs []float64) (int, float64) {
	bi, bv := 0, math.Inf(1)
	for i, v := range xs {
		if v < bv {
			bi, bv = i, v
		}
	}
	return bi, bv
}
